// Claim C16: ablations on the design choices the paper calls out.
//
//   1. k-wise vs pairwise scaling factors (the paper strengthens [1]'s
//      pairwise independence to k = 10 ceil(1/|p-1|) so Lemma 3's
//      concentration holds; with k = 2 *and the narrow sketch our analysis
//      permits*, the conditional distribution degrades).
//   2. Nisan PRG vs random oracle in the L0 sampler (Theorem 2's
//      derandomization must not change the output law).
//   3. The residual-inflation constant in the recovery stage (s must land
//      in [||z-zhat||, 2||z-zhat||]; too small an inflation breaks the
//      abort test's soundness, too large wastes success probability).
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/l0_sampler.h"
#include "src/core/lp_sampler.h"
#include "src/stats/stats.h"
#include "src/stream/exact_vector.h"
#include "src/stream/generators.h"

namespace {

using lps::bench::Table;

struct DistResult {
  double tv;
  double success;
};

DistResult DistributionError(double p, double eps, int k_override, int trials) {
  const uint64_t n = 64;
  lps::stream::UpdateStream stream;
  lps::stream::ExactVector x(n);
  for (uint64_t i = 0; i < 32; ++i) {
    const int64_t v =
        (i % 2 == 0 ? 1 : -1) * static_cast<int64_t>(1 + i * i / 4);
    stream.push_back({i, v});
    x.Apply({i, v});
  }
  const auto exact = x.LpDistribution(p);
  std::vector<uint64_t> counts(n, 0);
  uint64_t samples = 0;
  for (int trial = 0; trial < trials; ++trial) {
    lps::core::LpSamplerParams params;
    params.n = n;
    params.p = p;
    params.eps = eps;
    params.repetitions = 1;
    params.seed = 40000 + static_cast<uint64_t>(trial);
    if (k_override > 0) params.k = k_override;
    lps::core::LpSampler sampler(params);
    for (const auto& u : stream) {
      sampler.Update(u.index, static_cast<double>(u.delta));
    }
    auto res = sampler.Sample();
    if (res.ok()) {
      ++counts[res.value().index];
      ++samples;
    }
  }
  return {lps::stats::TotalVariation(counts, exact),
          static_cast<double>(samples) / trials};
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = lps::bench::Quick(argc, argv);

  lps::bench::Section("C16a: independence of the scaling factors (p = 1.5)");
  {
    const int trials = lps::bench::Scaled(quick, 8000, 1200);
    Table table({"eps", "k (Fig.1)", "TV k-wise", "TV pairwise",
                 "success k-wise", "success pairwise"});
    for (double eps : {0.5, 0.25}) {
      const auto full = DistributionError(1.5, eps, 0, trials);
      const auto pairwise = DistributionError(1.5, eps, 2, trials);
      table.AddRow({Table::Fmt("%.2f", eps), "20",
                    Table::Fmt("%.4f", full.tv),
                    Table::Fmt("%.4f", pairwise.tv),
                    Table::Fmt("%.3f", full.success),
                    Table::Fmt("%.3f", pairwise.success)});
    }
    table.Print();
    std::printf(
        "Measured finding: on benign (random-sign Zipfian-like) inputs the\n"
        "two are statistically indistinguishable — Lemma 3's k-wise\n"
        "requirement guards *worst-case* tail concentration, and the\n"
        "stronger hash costs only k field-multiplies per update, so the\n"
        "paper's choice is cheap insurance rather than a measurable win\n"
        "on average-case streams.\n\n");
  }

  lps::bench::Section("C16b: Nisan PRG vs random oracle in the L0 sampler");
  {
    const int trials = lps::bench::Scaled(quick, 1500, 250);
    const uint64_t n = 512;
    const auto stream = lps::stream::SparseVector(n, 48, 1000, 3);
    lps::stream::ExactVector x(n);
    x.Apply(stream);
    const auto exact = x.LpDistribution(0.0);
    Table table({"randomness", "success", "TV vs uniform", "seed bits"});
    for (bool use_nisan : {false, true}) {
      std::vector<uint64_t> counts(n, 0);
      uint64_t samples = 0;
      size_t seed_bits = 0;
      for (int trial = 0; trial < trials; ++trial) {
        lps::core::L0SamplerParams params;
        params.n = n;
        params.delta = 0.25;
        params.seed = 41000 + static_cast<uint64_t>(trial);
        params.use_nisan = use_nisan;
        lps::core::L0Sampler sampler(params);
        for (const auto& u : stream) sampler.Update(u.index, u.delta);
        auto res = sampler.Sample();
        if (res.ok()) {
          ++counts[res.value().index];
          ++samples;
        }
        seed_bits = sampler.SpaceBits();
      }
      table.AddRow({use_nisan ? "Nisan PRG (O(log^2 n) seed)" : "random oracle",
                    Table::Fmt("%.3f", static_cast<double>(samples) / trials),
                    Table::Fmt("%.4f", lps::stats::TotalVariation(counts, exact)),
                    Table::Fmt("%zu", seed_bits)});
    }
    table.Print();
    std::printf("Expected: indistinguishable success and TV — the PRG fools\n"
                "the sampler as Theorem 2 requires.\n\n");
  }

  lps::bench::Section("C16c: per-round success vs repetitions (Theorem 1)");
  {
    const int trials = lps::bench::Scaled(quick, 300, 60);
    const uint64_t n = 256;
    const auto stream = lps::stream::SignVector(n, 64, 11);
    Table table({"repetitions", "success rate"});
    for (int reps : {1, 2, 4, 8, 16, 32}) {
      int successes = 0;
      for (int trial = 0; trial < trials; ++trial) {
        lps::core::LpSamplerParams params;
        params.n = n;
        params.p = 1.0;
        params.eps = 0.25;
        params.repetitions = reps;
        params.seed = 42000 + static_cast<uint64_t>(trial);
        lps::core::LpSampler sampler(params);
        for (const auto& u : stream) {
          sampler.Update(u.index, static_cast<double>(u.delta));
        }
        successes += sampler.Sample().ok();
      }
      table.AddRow({Table::Fmt("%d", reps),
                    Table::Fmt("%.3f", static_cast<double>(successes) / trials)});
    }
    table.Print();
    std::printf("Expected: failure decays geometrically in the repetition\n"
                "count — the v = O(log(1/delta)/eps) of Theorem 1.\n");
  }
  return 0;
}
