// Sliding-window economics: what the checkpoint ring costs and what it
// buys. Three tables per structure:
//
//   1. ingest overhead — WindowManager-owned ingestion (seal every
//      checkpoint_interval updates) vs the raw UpdateBatch path, so the
//      price of window-capability on the hot path is tracked;
//   2. materialization latency — WindowSketch(w) across window sizes:
//      the whole point of subtraction is that this is O(sketch size),
//      FLAT in both w and the stream length (re-ingestion would be
//      linear in w);
//   3. checkpoint memory — ring footprint vs checkpoint interval for a
//      fixed stream, the granularity/memory trade.
//
// Emits BENCH_window.json next to the other BENCH_*.json artifacts the
// CI uploads. Exits non-zero if materializing the LARGEST window costs
// more than kMaxMaterializeRatio x the smallest — the signature of
// re-ingestion sneaking into the window path — with the assertion (not
// the measurement) skipped under sanitizer instrumentation via the
// shared bench gate.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/lp_sampler.h"
#include "src/sketch/count_sketch.h"
#include "src/stream/generators.h"
#include "src/stream/linear_sketch.h"
#include "src/stream/window_manager.h"

namespace {

using lps::bench::Table;
using lps::stream::UpdateStream;
using lps::stream::WindowManager;

constexpr uint64_t kN = 1 << 16;

// Largest-vs-smallest window materialization latency must stay within
// this factor: subtraction is O(sketch size) and both ends of the sweep
// deserialize the same two sketches, so the true ratio is ~1; the slack
// absorbs timer noise on shared runners.
constexpr double kMaxMaterializeRatio = 4.0;

struct IngestRow {
  std::string name;
  uint64_t interval = 0;
  double raw_ips = 0;
  double windowed_ips = 0;
  double overhead() const {
    return raw_ips > 0 ? 1.0 - windowed_ips / raw_ips : 0.0;
  }
};

struct MaterializeRow {
  std::string name;
  uint64_t window = 0;
  double micros = 0;
};

struct MemoryRow {
  std::string name;
  uint64_t interval = 0;
  size_t checkpoints = 0;
  size_t bytes = 0;
};

template <typename Fn>
double BestSeconds(int passes, Fn&& fn) {
  double best = 1e300;
  for (int p = 0; p < passes; ++p) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(stop - start).count();
    if (seconds < best) best = seconds;
  }
  return best;
}

/// Ingest overhead + materialization sweep + memory sweep for one
/// structure. `make` builds identically-seeded instances.
template <typename Sink, typename MakeFn>
void MeasureStructure(const std::string& name, const UpdateStream& stream,
                      int passes, uint64_t interval, MakeFn make,
                      std::vector<IngestRow>* ingest,
                      std::vector<MaterializeRow>* materialize,
                      std::vector<MemoryRow>* memory) {
  // 1. Ingest: raw UpdateBatch vs WindowManager-owned (seal on the fly).
  IngestRow row;
  row.name = name;
  row.interval = interval;
  {
    Sink sink = make();
    row.raw_ips = static_cast<double>(stream.size()) /
                  BestSeconds(passes, [&] {
                    sink.Reset();
                    sink.UpdateBatch(stream.data(), stream.size());
                  });
  }
  {
    Sink sink = make();
    row.windowed_ips = static_cast<double>(stream.size()) /
                       BestSeconds(passes, [&] {
                         sink.Reset();
                         WindowManager::Options options;
                         options.checkpoint_interval = interval;
                         WindowManager wm(&sink, options);
                         wm.PushBatch(stream.data(), stream.size());
                       });
  }
  ingest->push_back(row);

  // 2. Materialization latency across window sizes (one manager, one
  // sealed history; each call deserializes now + expired and subtracts).
  Sink sink = make();
  WindowManager::Options options;
  options.checkpoint_interval = interval;
  WindowManager wm(&sink, options);
  wm.PushBatch(stream.data(), stream.size());
  for (uint64_t w = interval; w <= stream.size(); w *= 4) {
    const double seconds = BestSeconds(passes, [&] {
      const auto window = wm.WindowSketch(w);
      if (window.sketch == nullptr) std::abort();
    });
    materialize->push_back({name, w, seconds * 1e6});
  }

  // 3. Checkpoint memory vs interval (granularity/memory trade).
  for (uint64_t iv = interval; iv <= stream.size(); iv *= 8) {
    Sink mem_sink = make();
    WindowManager::Options mopts;
    mopts.checkpoint_interval = iv;
    WindowManager mem_wm(&mem_sink, mopts);
    mem_wm.PushBatch(stream.data(), stream.size());
    memory->push_back(
        {name, iv, mem_wm.checkpoint_count(), mem_wm.CheckpointBytes()});
  }
}

void WriteJson(const char* path, const std::vector<IngestRow>& ingest,
               const std::vector<MaterializeRow>& materialize,
               const std::vector<MemoryRow>& memory, bool quick) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"window\",\n  \"quick\": %s,\n",
               quick ? "true" : "false");
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"window_ingest\": [\n");
  for (size_t r = 0; r < ingest.size(); ++r) {
    const IngestRow& row = ingest[r];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"interval\": %llu, "
                 "\"raw_items_per_sec\": %.0f, "
                 "\"windowed_items_per_sec\": %.0f, \"overhead\": %.4f}%s\n",
                 row.name.c_str(),
                 static_cast<unsigned long long>(row.interval), row.raw_ips,
                 row.windowed_ips, row.overhead(),
                 r + 1 < ingest.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"window_materialize\": [\n");
  for (size_t r = 0; r < materialize.size(); ++r) {
    const MaterializeRow& row = materialize[r];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"window\": %llu, "
                 "\"micros_per_call\": %.3f}%s\n",
                 row.name.c_str(),
                 static_cast<unsigned long long>(row.window), row.micros,
                 r + 1 < materialize.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"checkpoint_memory\": [\n");
  for (size_t r = 0; r < memory.size(); ++r) {
    const MemoryRow& row = memory[r];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"interval\": %llu, "
                 "\"checkpoints\": %zu, \"bytes\": %zu}%s\n",
                 row.name.c_str(),
                 static_cast<unsigned long long>(row.interval),
                 row.checkpoints, row.bytes,
                 r + 1 < memory.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

/// The window-scaling gate: materializing the largest window must not
/// cost materially more than the smallest — windows are subtraction, not
/// re-ingestion.
bool CheckMaterializeFlat(const std::vector<MaterializeRow>& rows,
                          const std::string& name) {
  double smallest = -1, largest = -1;
  for (const auto& row : rows) {
    if (row.name != name) continue;
    if (smallest < 0) smallest = row.micros;
    largest = row.micros;
  }
  if (smallest <= 0 || largest <= 0) {
    std::fprintf(stderr, "window scaling check: missing rows for %s\n",
                 name.c_str());
    return false;
  }
  if (!lps::bench::PerfGateEligible("window scaling check")) return true;
  if (largest > kMaxMaterializeRatio * smallest) {
    std::fprintf(stderr,
                 "WINDOW SCALING REGRESSION: %s materializes its largest "
                 "window in %.1f us vs %.1f us for its smallest (ratio "
                 "%.2f > %.2f) — re-ingestion is back in the window "
                 "path\n",
                 name.c_str(), largest, smallest, largest / smallest,
                 kMaxMaterializeRatio);
    return false;
  }
  std::printf("window scaling check: %s largest/smallest = %.2fx\n",
              name.c_str(), largest / smallest);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = lps::bench::Quick(argc, argv);
  const int passes = lps::bench::Scaled(quick, 7, 3);
  const uint64_t len = quick ? (1 << 16) : (1 << 20);
  const uint64_t interval = quick ? (1 << 10) : (1 << 14);

  const auto stream = lps::stream::UniformTurnstile(kN, len, 100, 7);

  std::vector<IngestRow> ingest;
  std::vector<MaterializeRow> materialize;
  std::vector<MemoryRow> memory;

  MeasureStructure<lps::sketch::CountSketch>(
      "count_sketch[17x96]", stream, passes, interval,
      [] { return lps::sketch::CountSketch(17, 96, 1); }, &ingest,
      &materialize, &memory);
  MeasureStructure<lps::core::LpSampler>(
      "lp_sampler[v=8]", stream, passes, interval,
      [] {
        lps::core::LpSamplerParams params;
        params.n = kN;
        params.p = 1.0;
        params.eps = 0.25;
        params.repetitions = 8;
        params.seed = 10;
        return lps::core::LpSampler(params);
      },
      &ingest, &materialize, &memory);

  lps::bench::Section("windowed ingest: raw UpdateBatch vs checkpoint ring");
  Table ingest_table(
      {"structure", "interval", "raw Mitem/s", "windowed Mitem/s",
       "overhead"});
  for (const IngestRow& row : ingest) {
    ingest_table.AddRow({row.name, Table::Fmt("%llu", (unsigned long long)
                                                          row.interval),
                         Table::Fmt("%.2f", row.raw_ips / 1e6),
                         Table::Fmt("%.2f", row.windowed_ips / 1e6),
                         Table::Fmt("%.1f%%", row.overhead() * 100)});
  }
  ingest_table.Print();

  lps::bench::Section(
      "window materialization (subtraction, O(sketch size) — flat in w)");
  Table mat_table({"structure", "window", "us/call"});
  for (const MaterializeRow& row : materialize) {
    mat_table.AddRow({row.name,
                      Table::Fmt("%llu", (unsigned long long)row.window),
                      Table::Fmt("%.1f", row.micros)});
  }
  mat_table.Print();

  lps::bench::Section("checkpoint ring memory vs interval");
  Table mem_table({"structure", "interval", "checkpoints", "KiB"});
  for (const MemoryRow& row : memory) {
    mem_table.AddRow({row.name,
                      Table::Fmt("%llu", (unsigned long long)row.interval),
                      Table::Fmt("%zu", row.checkpoints),
                      Table::Fmt("%.1f", row.bytes / 1024.0)});
  }
  mem_table.Print();

  WriteJson("BENCH_window.json", ingest, materialize, memory, quick);
  std::printf("machine-readable results written to BENCH_window.json\n");

  bool ok = true;
  ok &= CheckMaterializeFlat(materialize, "count_sketch[17x96]");
  ok &= CheckMaterializeFlat(materialize, "lp_sampler[v=8]");
  return ok ? 0 : 1;
}
