// Distributed aggregation tier economics: what epoch-shipping workers
// buy and what the fold costs. One table:
//
//   workers ∈ {1, 2, 4, 8} each ingest a disjoint residue class of the
//   planted stream (src/dist/planted.h) through a real Worker — local
//   sketch, epoch seal, TCP ship — into one root aggregator; the row
//   reports aggregate ingest throughput (wall time from first worker
//   start to the last epoch folded), the aggregator's mean fold latency
//   per epoch (DIST_STATS fold_ns / epochs_folded), and whether the
//   folded global state is BIT-IDENTICAL to a solo sketch fed the same
//   stream in one process — the linearity contract the tier rests on.
//
// On un-instrumented builds every node is a real forked process over
// loopback (the deployment shape); under sanitizers the topology runs
// as in-process threads — fork + sanitizer runtimes don't mix, and the
// numbers are for coverage, not comparison.
//
// Emits BENCH_distributed.json; ci/compare_bench.py --dist gates the
// workers=4 vs workers=1 scaling ratio. Bit-identity is deterministic
// (no timing), so it is asserted even under sanitizers.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "bench/bench_common.h"
#include "src/api/sketch_spec.h"
#include "src/dist/aggregator.h"
#include "src/dist/planted.h"
#include "src/dist/worker.h"
#include "src/server/client.h"
#include "src/server/server.h"
#include "src/util/serialize.h"

namespace {

using lps::BitWriter;
using lps::MakeSketch;
using lps::bench::Table;
using lps::dist::Aggregator;
using lps::dist::kPlantedUniverse;
using lps::dist::PlantedConfig;
using lps::dist::PlantedUpdate;
using lps::dist::Worker;

constexpr uint64_t kEpochInterval = 4096;
constexpr size_t kPushBatch = 4096;
constexpr int kWorkerCounts[] = {1, 2, 4, 8};

struct Row {
  int workers = 0;
  double seconds = 0;
  double updates_per_sec = 0;
  uint64_t epochs_folded = 0;
  double fold_micros_per_epoch = 0;
  bool bit_identical = false;
};

struct SoloState {
  std::vector<uint64_t> words;
  size_t bits = 0;
};

/// The single-process oracle: the whole planted stream through one
/// sketch. The folded aggregator state must equal this byte for byte.
SoloState BuildSolo(uint64_t total) {
  auto sketch = MakeSketch(PlantedConfig().spec);
  std::vector<lps::stream::Update> batch;
  batch.reserve(kPushBatch);
  for (uint64_t position = 0; position < total; ++position) {
    batch.push_back(PlantedUpdate(position, kPlantedUniverse));
    if (batch.size() == kPushBatch) {
      sketch->UpdateBatch(batch.data(), batch.size());
      batch.clear();
    }
  }
  if (!batch.empty()) sketch->UpdateBatch(batch.data(), batch.size());
  BitWriter writer;
  sketch->Serialize(&writer);
  return {writer.words(), writer.bit_count()};
}

/// One worker's share: positions {offset, offset + stride, ...} of the
/// planted stream, pushed through a real Worker (seal + TCP ship at
/// every epoch boundary, final marker at the end). Returns false on any
/// failure.
bool DriveWorker(int port, uint64_t total, uint64_t offset, uint64_t stride) {
  Worker::Options options;
  options.uplink.port = port;
  options.tenant = "dist";
  options.key = "planted";
  options.config = PlantedConfig();
  options.epoch_interval = kEpochInterval;
  options.worker_id = "w" + std::to_string(offset);
  options.session = 1000 + offset;
  auto built = Worker::Create(std::move(options));
  if (!built.ok()) return false;
  std::vector<lps::stream::Update> batch;
  batch.reserve(kPushBatch);
  for (uint64_t position = offset; position < total; position += stride) {
    batch.push_back(PlantedUpdate(position, kPlantedUniverse));
    if (batch.size() == kPushBatch) {
      if (!built.value()->Push(batch).ok()) return false;
      batch.clear();
    }
  }
  if (!batch.empty() && !built.value()->Push(batch).ok()) return false;
  return built.value()->Finish().ok();
}

/// Waits until the root has folded every shipped update, then fills the
/// row's fold stats and bit-identity verdict. Returns false on timeout
/// or divergence.
bool Settle(lps::server::Client* client, uint64_t total,
            const SoloState& solo, Row* row) {
  for (int tries = 0; tries < 3000; ++tries) {
    const auto stats = client->FetchDistStats();
    if (!stats.ok()) return false;
    if (stats->updates_folded == total) {
      row->epochs_folded = stats->epochs_folded;
      row->fold_micros_per_epoch =
          stats->epochs_folded > 0
              ? double(stats->fold_ns) / double(stats->epochs_folded) / 1e3
              : 0.0;
      const auto snapshot = client->Snapshot("dist", "planted");
      if (!snapshot.ok()) return false;
      row->bit_identical = snapshot->updates_seen == total &&
                           snapshot->state_bits == solo.bits &&
                           snapshot->state_words == solo.words;
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  std::fprintf(stderr, "timed out waiting for %llu updates to fold\n",
               static_cast<unsigned long long>(total));
  return false;
}

/// Deployment shape: root and every worker a real forked process, all
/// traffic over loopback TCP.
bool RunForked(int workers, uint64_t total, const SoloState& solo, Row* row) {
  int ports[2];
  if (::pipe(ports) != 0) return false;
  const pid_t root = ::fork();
  if (root < 0) return false;
  if (root == 0) {
    ::close(ports[0]);
    lps::server::Server::Options options;
    options.port = 0;
    lps::server::Server daemon(options);
    Aggregator::Options dist_options;
    dist_options.registry = &daemon.registry();
    Aggregator aggregator(dist_options);
    daemon.set_extension(&aggregator);
    if (!daemon.Start().ok()) ::_exit(3);
    const int bound = daemon.port();
    if (::write(ports[1], &bound, sizeof(bound)) != ssize_t(sizeof(bound))) {
      ::_exit(4);
    }
    for (;;) ::pause();
  }
  ::close(ports[1]);
  int port = 0;
  const bool got_port =
      ::read(ports[0], &port, sizeof(port)) == ssize_t(sizeof(port));
  ::close(ports[0]);
  bool ok = got_port;

  const auto start = std::chrono::steady_clock::now();
  std::vector<pid_t> children;
  for (int w = 0; ok && w < workers; ++w) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      ok = false;
      break;
    }
    if (pid == 0) {
      ::_exit(DriveWorker(port, total, uint64_t(w), uint64_t(workers)) ? 0
                                                                       : 1);
    }
    children.push_back(pid);
  }
  for (const pid_t child : children) {
    int status = 0;
    if (::waitpid(child, &status, 0) != child || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      ok = false;
    }
  }
  if (ok) {
    auto client = lps::server::Client::Connect("127.0.0.1", port);
    ok = client.ok() && Settle(&client.value(), total, solo, row);
  }
  const auto stop = std::chrono::steady_clock::now();
  row->seconds = std::chrono::duration<double>(stop - start).count();
  row->updates_per_sec = ok ? double(total) / row->seconds : 0.0;
  ::kill(root, SIGKILL);
  int status = 0;
  ::waitpid(root, &status, 0);
  return ok;
}

/// Sanitizer shape: same topology as in-process threads (fork and the
/// sanitizer runtimes don't mix); measures nothing trustworthy, but
/// runs the identical code paths for memory/race coverage.
bool RunThreaded(int workers, uint64_t total, const SoloState& solo,
                 Row* row) {
  lps::server::Server::Options options;
  options.port = 0;
  lps::server::Server daemon(options);
  Aggregator::Options dist_options;
  dist_options.registry = &daemon.registry();
  Aggregator aggregator(dist_options);
  daemon.set_extension(&aggregator);
  if (!daemon.Start().ok()) return false;
  const int port = daemon.port();

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  std::vector<char> worker_ok(size_t(workers), 0);
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      worker_ok[size_t(w)] =
          DriveWorker(port, total, uint64_t(w), uint64_t(workers)) ? 1 : 0;
    });
  }
  for (std::thread& thread : threads) thread.join();
  bool ok = true;
  for (const char flag : worker_ok) ok = ok && flag != 0;
  if (ok) {
    auto client = lps::server::Client::Connect("127.0.0.1", port);
    ok = client.ok() && Settle(&client.value(), total, solo, row);
  }
  const auto stop = std::chrono::steady_clock::now();
  row->seconds = std::chrono::duration<double>(stop - start).count();
  row->updates_per_sec = ok ? double(total) / row->seconds : 0.0;
  daemon.Stop();
  aggregator.Stop();
  return ok;
}

void WriteJson(const char* path, const std::vector<Row>& rows, bool quick,
               bool forked, uint64_t total) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"distributed\",\n  \"quick\": %s,\n",
               quick ? "true" : "false");
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"forked_processes\": %s,\n", forked ? "true" : "false");
  std::fprintf(f, "  \"total_updates\": %llu,\n",
               static_cast<unsigned long long>(total));
  std::fprintf(f, "  \"epoch_interval\": %llu,\n",
               static_cast<unsigned long long>(kEpochInterval));
  std::fprintf(f, "  \"rows\": [\n");
  for (size_t r = 0; r < rows.size(); ++r) {
    const Row& row = rows[r];
    std::fprintf(f,
                 "    {\"workers\": %d, \"seconds\": %.3f, "
                 "\"updates_per_sec\": %.0f, \"epochs_folded\": %llu, "
                 "\"fold_micros_per_epoch\": %.1f, "
                 "\"bit_identical\": %s}%s\n",
                 row.workers, row.seconds, row.updates_per_sec,
                 static_cast<unsigned long long>(row.epochs_folded),
                 row.fold_micros_per_epoch,
                 row.bit_identical ? "true" : "false",
                 r + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = lps::bench::Quick(argc, argv);
  const int passes = lps::bench::Scaled(quick, 2, 1);
  const uint64_t total = quick ? (uint64_t{1} << 15) : (uint64_t{1} << 19);
  const bool forked = !lps::bench::Sanitized();

  const SoloState solo = BuildSolo(total);

  std::vector<Row> rows;
  for (const int workers : kWorkerCounts) {
    Row best;
    best.workers = workers;
    for (int pass = 0; pass < passes; ++pass) {
      Row row;
      row.workers = workers;
      const bool ok = forked ? RunForked(workers, total, solo, &row)
                             : RunThreaded(workers, total, solo, &row);
      if (!ok) {
        std::fprintf(stderr, "workers=%d pass %d failed\n", workers, pass);
        return 1;
      }
      if (!row.bit_identical) {
        std::fprintf(stderr,
                     "DIVERGENCE: workers=%d folded state differs from the "
                     "solo sketch — the linearity contract is broken\n",
                     workers);
        return 1;
      }
      if (row.updates_per_sec > best.updates_per_sec) best = row;
    }
    rows.push_back(best);
  }

  lps::bench::Section(
      "distributed fold: workers -> aggregate ingest + fold latency");
  Table table({"workers", "topology", "seconds", "Mitem/s", "epochs",
               "fold us/epoch", "vs solo"});
  for (const Row& row : rows) {
    table.AddRow({Table::Fmt("%d", row.workers),
                  forked ? "forked" : "threads",
                  Table::Fmt("%.3f", row.seconds),
                  Table::Fmt("%.2f", row.updates_per_sec / 1e6),
                  Table::Fmt("%llu", (unsigned long long)row.epochs_folded),
                  Table::Fmt("%.1f", row.fold_micros_per_epoch),
                  row.bit_identical ? "bit-identical" : "DIVERGED"});
  }
  table.Print();

  WriteJson("BENCH_distributed.json", rows, quick, forked, total);
  std::printf("machine-readable results written to BENCH_distributed.json\n");

  // The scaling gate: four workers must out-ingest one. Needs real
  // parallelism to be observable, hence the core-count floor.
  if (lps::bench::PerfGateEligible("dist_scaling_w4_over_w1", 4)) {
    const Row* w1 = nullptr;
    const Row* w4 = nullptr;
    for (const Row& row : rows) {
      if (row.workers == 1) w1 = &row;
      if (row.workers == 4) w4 = &row;
    }
    if (w1 != nullptr && w4 != nullptr &&
        w4->updates_per_sec <= w1->updates_per_sec) {
      std::fprintf(stderr,
                   "SCALING REGRESSION: workers=4 ingests %.2f Mitem/s <= "
                   "workers=1 at %.2f Mitem/s\n",
                   w4->updates_per_sec / 1e6, w1->updates_per_sec / 1e6);
      return 1;
    }
    if (w1 != nullptr && w4 != nullptr) {
      std::printf("dist_scaling_w4_over_w1: %.2fx (workers=4 %.2f vs "
                  "workers=1 %.2f Mitem/s)\n",
                  w4->updates_per_sec / w1->updates_per_sec,
                  w4->updates_per_sec / 1e6, w1->updates_per_sec / 1e6);
    }
  }
  return 0;
}
