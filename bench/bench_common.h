// Shared helpers for the table-harness benchmarks: fixed-width table
// printing in the style of the paper-claim tables in EXPERIMENTS.md, a
// --quick flag that shrinks trial counts for smoke runs, and the one
// copy of the perf-gate eligibility logic (sanitizer + core-count
// skips) that every bench's assertions go through.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

// Sanitizer instrumentation distorts timing by an order of magnitude, so
// perf *assertions* (not measurements) are skipped under it — the
// ASan/TSan CI jobs run the benches for memory/race coverage, not
// numbers. Detected at compile time here; the LPS_BENCH_SANITIZED
// environment variable is the runtime override the CI jobs (and the
// bench-regression compare step) use to force the same skip.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define LPS_BENCH_SANITIZED_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define LPS_BENCH_SANITIZED_BUILD 1
#endif
#endif
#ifndef LPS_BENCH_SANITIZED_BUILD
#define LPS_BENCH_SANITIZED_BUILD 0
#endif

namespace lps::bench {

inline bool Quick(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) return true;
  }
  return false;
}

inline int Scaled(bool quick, int full, int reduced) {
  return quick ? reduced : full;
}

/// True when perf numbers from this process are not trustworthy: the
/// binary is sanitizer-instrumented, or the LPS_BENCH_SANITIZED env var
/// is set (to anything but "0" / empty).
inline bool Sanitized() {
  if (LPS_BENCH_SANITIZED_BUILD) return true;
  const char* env = std::getenv("LPS_BENCH_SANITIZED");
  return env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
}

/// The one perf-gate eligibility check: a bench assertion named
/// `gate_name` runs only on un-instrumented builds with at least
/// `min_cores` hardware threads. Ineligibility is LOGGED (the CI
/// regression-diff step greps for "skipped"), never silent.
inline bool PerfGateEligible(const char* gate_name, unsigned min_cores = 0) {
  if (Sanitized()) {
    std::printf("%s: skipped under sanitizer instrumentation\n", gate_name);
    return false;
  }
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores < min_cores) {
    std::printf("%s: skipped (%u core%s < %u — cannot observe scaling)\n",
                gate_name, cores, cores == 1 ? "" : "s", min_cores);
    return false;
  }
  return true;
}

/// Fixed-width table: set headers once, add printf-formatted rows.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  static std::string Fmt(const char* format, ...) {
    char buffer[128];
    va_list args;
    va_start(args, format);
    std::vsnprintf(buffer, sizeof(buffer), format, args);
    va_end(args);
    return buffer;
  }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        if (row[c].size() > widths[c]) widths[c] = row[c].size();
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("|");
      for (size_t c = 0; c < widths.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string();
        std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (size_t c = 0; c < widths.size(); ++c) {
      for (size_t d = 0; d < widths[c] + 2; ++d) std::printf("-");
      std::printf("|");
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
    std::printf("\n");
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline void Section(const char* title) {
  std::printf("== %s ==\n\n", title);
}

}  // namespace lps::bench
