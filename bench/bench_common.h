// Shared helpers for the table-harness benchmarks: fixed-width table
// printing in the style of the paper-claim tables in EXPERIMENTS.md, and a
// --quick flag that shrinks trial counts for smoke runs.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace lps::bench {

inline bool Quick(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) return true;
  }
  return false;
}

inline int Scaled(bool quick, int full, int reduced) {
  return quick ? reduced : full;
}

/// Fixed-width table: set headers once, add printf-formatted rows.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  static std::string Fmt(const char* format, ...) {
    char buffer[128];
    va_list args;
    va_start(args, format);
    std::vsnprintf(buffer, sizeof(buffer), format, args);
    va_end(args);
    return buffer;
  }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        if (row[c].size() > widths[c]) widths[c] = row[c].size();
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("|");
      for (size_t c = 0; c < widths.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string();
        std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (size_t c = 0; c < widths.size(); ++c) {
      for (size_t d = 0; d < widths[c] + 2; ++d) std::printf("-");
      std::printf("|");
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
    std::printf("\n");
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline void Section(const char* title) {
  std::printf("== %s ==\n\n", title);
}

}  // namespace lps::bench
