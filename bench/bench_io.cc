// The async ingest front-end (src/io/): what the overlap buys and what
// the decoder costs. Three tables:
//
//   1. decode throughput — UpdateDecoder MB/s and Mitem/s on the text
//      and binary trace formats, measured inline (no threads) so the
//      number is the parser itself;
//   2. ingest overlap — the same file-to-sketch job three ways: naive
//      (read the whole file, decode it all, then ingest), file-fed
//      async (StreamFeeder: prefetch / decode / ingest overlapped), and
//      in-memory (pre-decoded updates, the no-I/O ceiling). Overlap
//      efficiency = max(produce, consume) / async wall — 1.0 means the
//      stages hid each other completely;
//   3. the determinism spot check — the async file-fed sketch state is
//      byte-compared against in-memory ingest at the same topology.
//      This is an assertion, not a gate: it holds on any hardware.
//
// Emits BENCH_io.json next to the other BENCH_*.json artifacts; CI
// diffs it via ci/compare_bench.py --io. The two perf gates (async
// >= 1.5x naive, async within 1.5x of in-memory) run only on >= 4-core
// un-sanitized hardware — on smaller machines the overlap has no spare
// core to land on and the skip is logged, never silent.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench/bench_common.h"
#include "src/lps.h"

namespace {

using lps::BitWriter;
using lps::MakeSketch;
using lps::SketchKind;
using lps::SketchSpec;
using lps::bench::Table;
using lps::io::MemorySource;
using lps::io::PipelineSink;
using lps::io::StreamFeeder;
using lps::io::UpdateDecoder;
using lps::stream::ParallelPipeline;
using lps::stream::Update;
using lps::stream::UpdateStream;

constexpr uint64_t kN = 1 << 18;

// The ingest gates from the ISSUE acceptance list. Both compare wall
// times of the same decoded stream, so they are ratios of like work.
constexpr double kMinSpeedupVsNaive = 1.5;   // overlap must beat serial
constexpr double kMaxSlowdownVsMemory = 1.5; // file feed near the ceiling

struct DecodeRow {
  std::string format;
  uint64_t bytes = 0;
  uint64_t updates = 0;
  double seconds = 0;
  double mb_per_sec() const {
    return seconds > 0 ? double(bytes) / 1e6 / seconds : 0;
  }
  double mitem_per_sec() const {
    return seconds > 0 ? double(updates) / 1e6 / seconds : 0;
  }
};

struct OverlapRow {
  std::string format;
  uint64_t bytes = 0;
  uint64_t updates = 0;
  double naive_seconds = 0;
  double async_seconds = 0;
  double memory_seconds = 0;
  double produce_seconds = 0;  // read + decode alone (null sink)
  double consume_seconds = 0;  // pipeline ingest of pre-decoded updates
  double speedup_vs_naive() const {
    return async_seconds > 0 ? naive_seconds / async_seconds : 0;
  }
  double slowdown_vs_memory() const {
    return memory_seconds > 0 ? async_seconds / memory_seconds : 0;
  }
  double overlap_efficiency() const {
    const double ideal = std::max(produce_seconds, consume_seconds);
    return async_seconds > 0 ? ideal / async_seconds : 0;
  }
};

template <typename Fn>
double BestSeconds(int passes, Fn&& fn) {
  double best = 1e300;
  for (int p = 0; p < passes; ++p) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    const double seconds = std::chrono::duration<double>(stop - start).count();
    if (seconds < best) best = seconds;
  }
  return best;
}

std::string MakeTempFile(const std::string& contents) {
  char path[] = "/tmp/lps_bench_io_XXXXXX";
  const int fd = ::mkstemp(path);
  if (fd < 0) {
    std::fprintf(stderr, "mkstemp failed\n");
    std::exit(1);
  }
  size_t done = 0;
  while (done < contents.size()) {
    const ssize_t wrote =
        ::write(fd, contents.data() + done, contents.size() - done);
    if (wrote <= 0) break;
    done += size_t(wrote);
  }
  ::close(fd);
  if (done != contents.size()) {
    std::fprintf(stderr, "short write to %s\n", path);
    std::exit(1);
  }
  return path;
}

std::string TextTrace(uint64_t n, const UpdateStream& updates) {
  std::string out = "n " + std::to_string(n) + "\n";
  char line[64];
  for (const Update& u : updates) {
    std::snprintf(line, sizeof(line), "u %llu %lld\n",
                  static_cast<unsigned long long>(u.index),
                  static_cast<long long>(u.delta));
    out += line;
  }
  return out;
}

/// The ingest side of the overlap measurement: a sharded CountSketch
/// pipeline — integer counters, so the determinism check below can
/// demand bit-equality against the in-memory run.
SketchSpec IngestSpec() {
  SketchSpec spec;
  spec.kind = SketchKind::kCountSketch;
  spec.n = kN;
  spec.rows = 7;
  spec.buckets = 512;
  spec.seed = 42;
  return spec;
}

ParallelPipeline::Options PipelineOptions() {
  ParallelPipeline::Options options;
  options.shards = 2;
  const unsigned cores = std::thread::hardware_concurrency();
  options.threads = cores >= 4 ? 2 : 0;
  return options;
}

std::vector<uint64_t> SerializedState(const lps::LinearSketch& sketch) {
  BitWriter writer;
  sketch.Serialize(&writer);
  return writer.words();
}

/// Decode-only cost: MemorySource -> StreamFeeder with inline decode and
/// a counting sink. No disk, no threads — the parser's own speed.
DecodeRow MeasureDecode(const std::string& format, const std::string& bytes,
                        int passes) {
  DecodeRow row;
  row.format = format;
  row.bytes = bytes.size();
  row.seconds = BestSeconds(passes, [&] {
    StreamFeeder::Options options;
    options.async_decode = false;
    StreamFeeder feeder(
        std::make_unique<MemorySource>(bytes.data(), bytes.size()), options);
    if (!feeder.ReadHeader().ok()) std::exit(1);
    uint64_t count = 0;
    auto stats = feeder.Feed([&](const Update*, size_t c) { count += c; });
    if (!stats.ok()) std::exit(1);
    row.updates = count;
  });
  return row;
}

/// One full file-to-sketch job, three ways, same trace bytes on disk.
OverlapRow MeasureOverlap(const std::string& format, const std::string& bytes,
                          const UpdateStream& decoded, int passes,
                          bool* bit_identical) {
  OverlapRow row;
  row.format = format;
  row.bytes = bytes.size();
  row.updates = decoded.size();
  const std::string path = MakeTempFile(bytes);
  const SketchSpec spec = IngestSpec();

  auto build_pipeline = [&](std::vector<std::unique_ptr<lps::LinearSketch>>*
                                replicas,
                            std::unique_ptr<ParallelPipeline>* pipeline) {
    const ParallelPipeline::Options options = PipelineOptions();
    replicas->clear();
    std::vector<lps::LinearSketch*> raw;
    for (int s = 0; s < options.shards; ++s) {
      replicas->push_back(MakeSketch(spec));
      raw.push_back(replicas->back().get());
    }
    *pipeline = std::make_unique<ParallelPipeline>(options);
    (*pipeline)->Add("sketch", raw);
  };

  std::vector<std::unique_ptr<lps::LinearSketch>> replicas;
  std::unique_ptr<ParallelPipeline> pipeline;

  // Naive read-then-ingest: the pre-src/io shape of every tool. Each
  // stage completes before the next starts; wall = read + decode +
  // ingest.
  row.naive_seconds = BestSeconds(passes, [&] {
    auto source = lps::io::MakeFileSource(path);
    if (!source.ok()) std::exit(1);
    std::string slurped;
    for (;;) {
      auto chunk = source.value()->Next();
      if (!chunk.ok()) std::exit(1);
      if (chunk.value().size == 0) break;
      slurped.append(chunk.value().data, chunk.value().size);
    }
    UpdateDecoder decoder;
    UpdateStream updates;
    decoder.Consume(slurped.data(), slurped.size(), &updates);
    if (!decoder.Finish(&updates).ok()) std::exit(1);
    build_pipeline(&replicas, &pipeline);
    pipeline->Drive(updates);
    pipeline->MergeShards();
  });

  // Async file-fed: StreamFeeder overlaps prefetch, decode, and ingest.
  std::vector<uint64_t> async_state;
  row.async_seconds = BestSeconds(passes, [&] {
    auto source = lps::io::MakeFileSource(path);
    if (!source.ok()) std::exit(1);
    StreamFeeder feeder(std::move(source.value()));
    if (!feeder.ReadHeader().ok()) std::exit(1);
    build_pipeline(&replicas, &pipeline);
    PipelineSink sink(pipeline.get(), nullptr, 0);
    if (!feeder.Feed(std::ref(sink)).ok()) std::exit(1);
    sink.Finish();
    async_state = SerializedState(*replicas[0]);
  });

  // In-memory ceiling: the updates already decoded, no I/O at all.
  std::vector<uint64_t> memory_state;
  row.memory_seconds = BestSeconds(passes, [&] {
    build_pipeline(&replicas, &pipeline);
    pipeline->Drive(decoded);
    pipeline->MergeShards();
    memory_state = SerializedState(*replicas[0]);
  });

  // The overlap-efficiency components: each stage alone.
  row.produce_seconds = BestSeconds(passes, [&] {
    auto source = lps::io::MakeFileSource(path);
    if (!source.ok()) std::exit(1);
    StreamFeeder::Options options;
    options.async_decode = false;
    StreamFeeder feeder(std::move(source.value()), options);
    if (!feeder.ReadHeader().ok()) std::exit(1);
    if (!feeder.Feed([](const Update*, size_t) {}).ok()) std::exit(1);
  });
  row.consume_seconds = row.memory_seconds;

  *bit_identical = *bit_identical && (async_state == memory_state);
  std::remove(path.c_str());
  return row;
}

void WriteJson(const char* path, const std::vector<DecodeRow>& decode,
               const std::vector<OverlapRow>& overlap, bool bit_identical,
               bool quick) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"io\",\n  \"quick\": %s,\n",
               quick ? "true" : "false");
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"bit_identical\": %s,\n",
               bit_identical ? "true" : "false");
  std::fprintf(f, "  \"decode\": [\n");
  for (size_t r = 0; r < decode.size(); ++r) {
    const DecodeRow& row = decode[r];
    std::fprintf(f,
                 "    {\"format\": \"%s\", \"bytes\": %llu, "
                 "\"updates\": %llu, \"mb_per_sec\": %.1f, "
                 "\"mitem_per_sec\": %.2f}%s\n",
                 row.format.c_str(),
                 static_cast<unsigned long long>(row.bytes),
                 static_cast<unsigned long long>(row.updates),
                 row.mb_per_sec(), row.mitem_per_sec(),
                 r + 1 < decode.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"overlap\": [\n");
  for (size_t r = 0; r < overlap.size(); ++r) {
    const OverlapRow& row = overlap[r];
    std::fprintf(f,
                 "    {\"format\": \"%s\", \"bytes\": %llu, "
                 "\"updates\": %llu, \"naive_seconds\": %.6f, "
                 "\"async_seconds\": %.6f, \"memory_seconds\": %.6f, "
                 "\"speedup_vs_naive\": %.2f, "
                 "\"slowdown_vs_memory\": %.2f, "
                 "\"overlap_efficiency\": %.2f}%s\n",
                 row.format.c_str(),
                 static_cast<unsigned long long>(row.bytes),
                 static_cast<unsigned long long>(row.updates),
                 row.naive_seconds, row.async_seconds, row.memory_seconds,
                 row.speedup_vs_naive(), row.slowdown_vs_memory(),
                 row.overlap_efficiency(), r + 1 < overlap.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = lps::bench::Quick(argc, argv);
  const int passes = lps::bench::Scaled(quick, 5, 2);
  const uint64_t num_updates = quick ? (1 << 17) : (1 << 20);

  const UpdateStream updates =
      lps::stream::UniformTurnstile(kN, num_updates, 100, 77);
  const std::string text = TextTrace(kN, updates);
  std::string binary;
  lps::io::WriteBinaryTrace(&binary, kN, updates);

  std::vector<DecodeRow> decode;
  decode.push_back(MeasureDecode("text", text, passes));
  decode.push_back(MeasureDecode("binary", binary, passes));

  bool bit_identical = true;
  std::vector<OverlapRow> overlap;
  overlap.push_back(
      MeasureOverlap("text", text, updates, passes, &bit_identical));
  overlap.push_back(
      MeasureOverlap("binary", binary, updates, passes, &bit_identical));

  lps::bench::Section("decoder: trace parsing throughput (inline, no I/O)");
  Table decode_table({"format", "MB", "MB/s", "Mitem/s"});
  for (const DecodeRow& row : decode) {
    decode_table.AddRow({row.format, Table::Fmt("%.1f", row.bytes / 1e6),
                         Table::Fmt("%.1f", row.mb_per_sec()),
                         Table::Fmt("%.2f", row.mitem_per_sec())});
  }
  decode_table.Print();

  lps::bench::Section(
      "ingest overlap: naive read-then-ingest vs async vs in-memory");
  Table overlap_table({"format", "naive ms", "async ms", "memory ms",
                       "vs naive", "vs memory", "overlap eff"});
  for (const OverlapRow& row : overlap) {
    overlap_table.AddRow({row.format,
                          Table::Fmt("%.1f", row.naive_seconds * 1e3),
                          Table::Fmt("%.1f", row.async_seconds * 1e3),
                          Table::Fmt("%.1f", row.memory_seconds * 1e3),
                          Table::Fmt("%.2fx", row.speedup_vs_naive()),
                          Table::Fmt("%.2fx", row.slowdown_vs_memory()),
                          Table::Fmt("%.2f", row.overlap_efficiency())});
  }
  overlap_table.Print();

  WriteJson("BENCH_io.json", decode, overlap, bit_identical, quick);
  std::printf("machine-readable results written to BENCH_io.json\n");

  // Determinism first: file-fed async state must equal in-memory state
  // byte-for-byte on ANY hardware — this is the contract, not a perf
  // property, so it is never skipped.
  bool ok = bit_identical;
  if (!bit_identical) {
    std::fprintf(stderr,
                 "DETERMINISM REGRESSION: async file-fed sketch state "
                 "differs from in-memory ingest\n");
  } else {
    std::printf("determinism: async file-fed state == in-memory state\n");
  }

  // The perf gates need a spare core for the decode thread and the
  // pipeline workers; on fewer than 4 cores the overlap has nowhere to
  // run and the numbers are reported un-gated.
  for (const OverlapRow& row : overlap) {
    const std::string speedup_gate = "io_overlap_vs_naive[" + row.format + "]";
    if (lps::bench::PerfGateEligible(speedup_gate.c_str(), 4)) {
      if (row.speedup_vs_naive() < kMinSpeedupVsNaive) {
        std::fprintf(stderr,
                     "OVERLAP REGRESSION: %s async ingest is %.2fx naive "
                     "(< %.2fx) — the stages are serializing\n",
                     row.format.c_str(), row.speedup_vs_naive(),
                     kMinSpeedupVsNaive);
        ok = false;
      } else {
        std::printf("%s: %.2fx vs naive (>= %.2fx)\n", speedup_gate.c_str(),
                    row.speedup_vs_naive(), kMinSpeedupVsNaive);
      }
    }
    const std::string ceiling_gate = "io_file_vs_memory[" + row.format + "]";
    if (lps::bench::PerfGateEligible(ceiling_gate.c_str(), 4)) {
      if (row.slowdown_vs_memory() > kMaxSlowdownVsMemory) {
        std::fprintf(stderr,
                     "OVERLAP REGRESSION: %s file-fed ingest is %.2fx "
                     "slower than in-memory (> %.2fx) — the file path "
                     "stopped hiding its I/O\n",
                     row.format.c_str(), row.slowdown_vs_memory(),
                     kMaxSlowdownVsMemory);
        ok = false;
      } else {
        std::printf("%s: %.2fx of in-memory (<= %.2fx)\n",
                    ceiling_gate.c_str(), row.slowdown_vs_memory(),
                    kMaxSlowdownVsMemory);
      }
    }
  }
  return ok ? 0 : 1;
}
