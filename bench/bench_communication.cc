// Claims C13 + C14 (Section 4): the universal relation protocols of
// Proposition 5 (message sizes and success rates) and the end-to-end
// lower-bound reductions of Theorems 6, 7, 8 and 9.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/comm/augmented_indexing.h"
#include "src/comm/reductions.h"
#include "src/comm/universal_relation.h"
#include "src/core/lp_sampler.h"
#include "src/stream/generators.h"
#include "src/util/bits.h"

namespace {

using lps::bench::Table;

}  // namespace

int main(int argc, char** argv) {
  const bool quick = lps::bench::Quick(argc, argv);

  lps::bench::Section("C13 (Prop 5): UR^n protocols — bits and success");
  {
    const int trials = lps::bench::Scaled(quick, 40, 10);
    Table table({"log2 n", "1-round bits", "2-round bits (r1+r2)",
                 "trivial bits", "1-round ok", "2-round ok"});
    for (int log_n : {8, 10, 12, 14, 16}) {
      const uint64_t n = 1ULL << log_n;
      size_t bits1 = 0, bits2 = 0, bits2_r1 = 0;
      int ok1 = 0, ok2 = 0;
      for (int trial = 0; trial < trials; ++trial) {
        const auto instance = lps::comm::MakeURInstance(
            n, 1 + static_cast<uint64_t>(trial) % 32, 0.3,
            30000 + static_cast<uint64_t>(trial));
        const auto r1 = lps::comm::RunOneRoundUR(
            instance, 0.1, 31000 + static_cast<uint64_t>(trial));
        const auto r2 = lps::comm::RunTwoRoundUR(
            instance, 0.1, 32000 + static_cast<uint64_t>(trial));
        ok1 += r1.ok && r1.correct;
        ok2 += r2.ok && r2.correct;
        bits1 = r1.stats.TotalBits();
        bits2 = r2.stats.TotalBits();
        bits2_r1 = r2.stats.message_bits.empty() ? 0 : r2.stats.message_bits[0];
      }
      table.AddRow({Table::Fmt("%d", log_n), Table::Fmt("%zu", bits1),
                    Table::Fmt("%zu (%zu+%zu)", bits2, bits2_r1,
                               bits2 - bits2_r1),
                    Table::Fmt("%zu", n),
                    Table::Fmt("%d/%d", ok1, trials),
                    Table::Fmt("%d/%d", ok2, trials)});
    }
    table.Print();
    std::printf(
        "Expected shape: 1-round bits grow ~log^2 n (levels x syndromes),\n"
        "2-round bits ~log n, both far below the trivial n for large n;\n"
        "success >= 1 - delta throughout (Theorem 6 proves the log^2 n is\n"
        "optimal for one round).\n\n");
  }

  lps::bench::Section("C14 (Theorem 6): augmented indexing via symmetrized UR");
  {
    const int trials = lps::bench::Scaled(quick, 40, 10);
    Table table({"s", "t", "UR dimension", "success", "message bits",
                 "guess floor"});
    for (int st : {4, 6, 8}) {
      int correct = 0;
      size_t bits = 0;
      for (int trial = 0; trial < trials; ++trial) {
        const auto instance = lps::comm::MakeAugmentedIndexing(
            st, st, 33000 + static_cast<uint64_t>(trial));
        const auto result = lps::comm::RunAiViaUr(
            instance, 0.1, 34000 + static_cast<uint64_t>(trial));
        correct += result.ok && result.correct;
        bits = result.stats.TotalBits();
      }
      table.AddRow({Table::Fmt("%d", st), Table::Fmt("%d", st),
                    Table::Fmt("%zu", ((1ULL << st) - 1) * (1ULL << st)),
                    Table::Fmt("%d/%d", correct, trials),
                    Table::Fmt("%zu", bits),
                    Table::Fmt("%.4f", 1.0 / (1ULL << st))});
    }
    table.Print();
    std::printf("Expected: success well above 1/2 (vs the 2^-t guessing\n"
                "floor): the Lemma 6 information bound then forces the UR\n"
                "message to Omega(s t) = Omega(log^2 n) bits.\n\n");
  }

  lps::bench::Section("C14 (Theorem 7): UR via the duplicates finder");
  {
    const int trials = lps::bench::Scaled(quick, 60, 15);
    Table table({"n", "produced answer", "correct", "message bits"});
    for (uint64_t n : {64ULL, 128ULL, 256ULL}) {
      int ok = 0, correct = 0;
      size_t bits = 0;
      for (int trial = 0; trial < trials; ++trial) {
        const auto instance = lps::comm::MakeURInstance(
            n, 1 + (static_cast<uint64_t>(trial) % 8), 0.5,
            35000 + static_cast<uint64_t>(trial));
        const auto result = lps::comm::RunUrViaDuplicates(
            instance, 0.2, 36000 + static_cast<uint64_t>(trial));
        ok += result.ok;
        correct += result.ok && result.correct;
        bits = result.stats.TotalBits();
      }
      table.AddRow({Table::Fmt("%zu", n), Table::Fmt("%d/%d", ok, trials),
                    Table::Fmt("%d/%d", correct, trials),
                    Table::Fmt("%zu", bits)});
    }
    table.Print();
    std::printf("Expected: a constant fraction of runs produce an answer\n"
                "(the |S cap P| + |T cap P| > n condition fires w.p. > 1/8)\n"
                "and every produced answer is correct — so a duplicates\n"
                "finder in o(log^2 n) bits would break Theorem 6.\n\n");
  }

  lps::bench::Section(
      "C14 (Theorem 8): Lp sampler space on 0/+-1 vectors vs log^2 n");
  {
    Table table({"log2 n", "sampler bits (1 round)", "bits / log2^2 n"});
    for (int log_n : {8, 12, 16, 20}) {
      lps::core::LpSamplerParams params;
      params.n = 1ULL << log_n;
      params.p = 1.0;
      params.eps = 0.5;
      params.repetitions = 1;
      params.seed = 1;
      lps::core::LpSampler sampler(params);
      const size_t bits = sampler.SpaceBits(2 * log_n);
      table.AddRow({Table::Fmt("%d", log_n), Table::Fmt("%zu", bits),
                    Table::Fmt("%.1f",
                               static_cast<double>(bits) /
                                   (static_cast<double>(log_n) * log_n))});
    }
    table.Print();
    std::printf("Expected: bits/log^2 n flattens to a constant — the\n"
                "sampler sits at the Theorem 8 lower bound's shape.\n\n");
  }

  lps::bench::Section("C14 (Theorem 9): augmented indexing via heavy hitters");
  {
    const int trials = lps::bench::Scaled(quick, 30, 8);
    Table table({"phi", "success", "message bits", "bits * phi^p"});
    for (double phi : {0.25, 0.125, 0.0625}) {
      int correct = 0;
      size_t bits = 0;
      for (int trial = 0; trial < trials; ++trial) {
        const auto instance = lps::comm::MakeAugmentedIndexing(
            8, 6, 37000 + static_cast<uint64_t>(trial));
        const auto result = lps::comm::RunAiViaHeavyHitters(
            instance, 1.0, phi, 38000 + static_cast<uint64_t>(trial));
        correct += result.ok && result.correct;
        bits = result.stats.TotalBits();
      }
      table.AddRow({Table::Fmt("%.4f", phi),
                    Table::Fmt("%d/%d", correct, trials),
                    Table::Fmt("%zu", bits),
                    Table::Fmt("%.0f", static_cast<double>(bits) * phi)});
    }
    table.Print();
    std::printf("Expected: success ~1 and bits * phi^p roughly constant —\n"
                "the algorithm's phi^-p log^2 n space tracks the Theorem 9\n"
                "lower bound Omega(phi^-p log^2 n).\n");
  }
  return 0;
}
