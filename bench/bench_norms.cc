// Claim C10 (Lemma 2 [17]): the Lp norm estimator returns r with
// ||x||_p <= r <= 2 ||x||_p w.h.p.; coverage improves with rows = O(log n).
// Also validates the L0 (distinct-count) estimator used by the two-round
// UR protocol.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/norm/l0_norm.h"
#include "src/norm/lp_norm.h"
#include "src/stream/exact_vector.h"
#include "src/stream/generators.h"

namespace {

using lps::bench::Table;

}  // namespace

int main(int argc, char** argv) {
  const bool quick = lps::bench::Quick(argc, argv);
  const int trials = lps::bench::Scaled(quick, 200, 40);

  lps::bench::Section(
      "C10 (Lemma 2): coverage of [||x||_p, 2||x||_p] vs rows");
  {
    const uint64_t n = 1024;
    const auto stream = lps::stream::ZipfianVector(n, 1.1, 1000, true, 1);
    lps::stream::ExactVector x(n);
    x.Apply(stream);

    Table table({"p", "rows=32", "rows=64", "rows=128", "rows=256",
                 "rows=512"});
    for (double p : {0.5, 1.0, 1.5, 2.0}) {
      const double truth = x.NormP(p);
      std::vector<std::string> row = {Table::Fmt("%.1f", p)};
      for (int rows : {32, 64, 128, 256, 512}) {
        int within = 0;
        for (int trial = 0; trial < trials; ++trial) {
          lps::norm::LpNormEstimator est(
              p, rows, 12000 + static_cast<uint64_t>(trial));
          for (const auto& u : stream) {
            est.Update(u.index, static_cast<double>(u.delta));
          }
          const double r = est.Estimate2Approx();
          within += (r >= truth && r <= 2 * truth);
        }
        row.push_back(Table::Fmt("%.3f", static_cast<double>(within) / trials));
      }
      table.AddRow(row);
    }
    table.Print();
    std::printf("Expected: coverage -> 1 as rows grow (exp(-Theta(rows)));\n"
                "p < 1 needs more rows (flatter density at the median).\n\n");
  }

  lps::bench::Section("C10 aux: turnstile L0 estimator (level fingerprints)");
  {
    const uint64_t n = 1 << 14;
    Table table({"true L0", "median estimate", "within 4x", "space bits"});
    for (uint64_t support : {4ULL, 64ULL, 1024ULL, 8192ULL}) {
      std::vector<double> estimates;
      int within = 0;
      size_t bits = 0;
      const int reps_trials = lps::bench::Scaled(quick, 60, 15);
      for (int trial = 0; trial < reps_trials; ++trial) {
        lps::norm::L0Estimator est(n, 25,
                                   13000 + static_cast<uint64_t>(trial));
        bits = est.SpaceBits();
        const auto stream = lps::stream::SparseVector(
            n, support, 100, static_cast<uint64_t>(trial));
        for (const auto& u : stream) est.Update(u.index, u.delta);
        const double e = est.Estimate();
        estimates.push_back(e);
        within += (e >= support / 4.0 && e <= support * 4.0);
      }
      std::nth_element(estimates.begin(),
                       estimates.begin() + estimates.size() / 2,
                       estimates.end());
      table.AddRow({Table::Fmt("%zu", support),
                    Table::Fmt("%.1f", estimates[estimates.size() / 2]),
                    Table::Fmt("%d/%d", within, reps_trials),
                    Table::Fmt("%zu", bits)});
    }
    table.Print();
    std::printf("Expected: constant-factor accuracy across four orders of\n"
                "magnitude — all the two-round UR protocol needs.\n");
  }
  return 0;
}
