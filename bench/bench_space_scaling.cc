// Claim C2 (Theorem 1 vs [1]): our sampler's space is
// O(eps^{-max(1,p)} log^2 n) bits against AKO's O(eps^{-p} log^3 n).
//
// Space is reported under the paper's counter model: every counter costs
// 2 log2(n) bits (coordinates bounded by poly(n)), hash seeds included.
// Two sweeps: bits vs n at fixed eps (log^2 vs log^3 growth), and bits vs
// eps at fixed n (eps^{-max(1,p)} vs eps^{-p} growth).
#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/ako_sampler.h"
#include "src/core/lp_sampler.h"
#include "src/util/bits.h"

namespace {

using lps::bench::Table;

// The paper-exact Figure 1 space (flat sketches + hashes), with the query
// engine's dyadic candidate overhead reported in a separate column — C2 is
// a claim about the paper's structures, the dyadic trees are an
// engineering add-on (also O(log^2 n) per round, so the growth shape is
// unchanged).
struct OursSpace {
  size_t core;    // SpaceBits minus the dyadic share
  size_t dyadic;  // the candidate generators
};

OursSpace OursBits(uint64_t n, double p, double eps) {
  lps::core::LpSamplerParams params;
  params.n = n;
  params.p = p;
  params.eps = eps;
  params.repetitions = 1;  // per-round space; repetitions multiply both sides
  params.seed = 1;
  lps::core::LpSampler sampler(params);
  const int bits = 2 * lps::CeilLog2(n);
  const size_t dyadic = sampler.DyadicSpaceBits(bits);
  return {sampler.SpaceBits(bits) - dyadic, dyadic};
}

size_t AkoBits(uint64_t n, double p, double eps) {
  lps::core::LpSamplerParams params;
  params.n = n;
  params.p = p;
  params.eps = eps;
  params.repetitions = 1;
  params.seed = 1;
  lps::core::AkoSampler sampler(params);
  const int bits = 2 * lps::CeilLog2(n);
  return sampler.SpaceBits(bits) - sampler.DyadicSpaceBits(bits);
}

}  // namespace

int main(int argc, char** argv) {
  (void)lps::bench::Quick(argc, argv);  // pure accounting: always fast

  lps::bench::Section("C2: space vs n (eps = 0.25, per sampler round)");
  for (double p : {1.0, 1.5}) {
    std::printf("p = %.1f\n", p);
    Table table({"log2 n", "ours (bits)", "+dyadic", "AKO (bits)",
                 "AKO/ours", "ours growth", "AKO growth"});
    size_t prev_ours = 0, prev_ako = 0;
    for (int log_n = 10; log_n <= 22; log_n += 2) {
      const uint64_t n = 1ULL << log_n;
      const OursSpace ours = OursBits(n, p, 0.25);
      const size_t ako = AkoBits(n, p, 0.25);
      table.AddRow(
          {Table::Fmt("%d", log_n), Table::Fmt("%zu", ours.core),
           Table::Fmt("%zu", ours.dyadic), Table::Fmt("%zu", ako),
           Table::Fmt("%.2f", static_cast<double>(ako) / ours.core),
           prev_ours ? Table::Fmt("%.2fx",
                                  static_cast<double>(ours.core) / prev_ours)
                     : "-",
           prev_ako ? Table::Fmt("%.2fx", static_cast<double>(ako) / prev_ako)
                    : "-"});
      prev_ours = ours.core;
      prev_ako = ako;
    }
    table.Print();
  }
  std::printf(
      "Expected shape: AKO/ours grows with log n (the saved log factor);\n"
      "per-step growth ~ (log n ratio)^2 for ours, ^3 for AKO.\n\n");

  lps::bench::Section("C2: space vs eps (n = 2^16, per sampler round)");
  for (double p : {0.5, 1.0, 1.5}) {
    std::printf("p = %.1f   (ours ~ eps^-%s, AKO ~ eps^-%.1f)\n", p,
                p < 1.0 ? "0 .. log(1/eps)" : Table::Fmt("%.1f", std::max(1.0, p)).c_str(),
                p);
    Table table({"eps", "ours (bits)", "+dyadic", "AKO (bits)",
                 "ours growth", "AKO growth"});
    size_t prev_ours = 0, prev_ako = 0;
    for (double eps : {0.5, 0.25, 0.125, 0.0625, 0.03125}) {
      const OursSpace ours = OursBits(1 << 16, p, eps);
      const size_t ako = AkoBits(1 << 16, p, eps);
      table.AddRow(
          {Table::Fmt("%.5f", eps), Table::Fmt("%zu", ours.core),
           Table::Fmt("%zu", ours.dyadic), Table::Fmt("%zu", ako),
           prev_ours ? Table::Fmt("%.2fx",
                                  static_cast<double>(ours.core) / prev_ours)
                     : "-",
           prev_ako ? Table::Fmt("%.2fx", static_cast<double>(ako) / prev_ako)
                    : "-"});
      prev_ours = ours.core;
      prev_ako = ako;
    }
    table.Print();
  }
  std::printf(
      "Expected shape: halving eps multiplies ours by ~2^max(1,p-? ) per\n"
      "Figure 1 (eps^{-(p-1)} for p>1, log(1/eps) for p=1, O(1) for p<1)\n"
      "and AKO by 2^p.\n");
  return 0;
}
