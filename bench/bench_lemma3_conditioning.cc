// Claim C4 (Lemma 3): the probability that a round aborts with
// s > beta m^{1/2} r is O(eps), *even conditioned on an arbitrary fixed
// value of one scaling factor t_i*. The subtle point the paper fixes
// relative to [1]: conditioning on t_i must not inflate the abort rate,
// otherwise the conditional output distribution is skewed.
//
// We pin t_i of one coordinate to values across its range (including an
// extreme 1e-9, which makes z_i enormous) and measure the abort rate per
// eps; the unconditioned rate rides along as the reference column.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/lp_sampler.h"
#include "src/stream/exact_vector.h"
#include "src/stream/generators.h"

namespace {

using lps::bench::Table;

double AbortRate(double eps, double pinned_t, int trials) {
  const uint64_t n = 256;
  const auto stream = lps::stream::ZipfianVector(n, 1.0, 100, true, 13);
  lps::stream::ExactVector x(n);
  x.Apply(stream);
  const double r = x.NormP(1.0);  // exact norm isolates the tail test

  int aborts = 0;
  for (int trial = 0; trial < trials; ++trial) {
    auto params = lps::core::LpSampler::Resolve([&] {
      lps::core::LpSamplerParams p;
      p.n = n;
      p.p = 1.0;
      p.eps = eps;
      p.repetitions = 1;
      p.seed = 77000 + static_cast<uint64_t>(trial);
      return p;
    }());
    if (pinned_t > 0) {
      params.override_index = 10;
      params.override_t = pinned_t;
    }
    lps::core::LpSamplerRound round(params, 0);
    for (const auto& u : stream) {
      round.Update(u.index, static_cast<double>(u.delta));
    }
    if (round.WouldAbortOnTail(r)) ++aborts;
  }
  return static_cast<double>(aborts) / trials;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = lps::bench::Quick(argc, argv);
  const int trials = lps::bench::Scaled(quick, 2000, 300);

  lps::bench::Section(
      "C4 (Lemma 3): abort rate P[s > beta m^1/2 r], conditioned on t_i");
  std::printf("p=1, n=256, Zipfian signed vector, %d trials per cell\n\n",
              trials);

  Table table({"eps", "unconditioned", "t_i=1e-9", "t_i=0.25", "t_i=0.99"});
  for (double eps : {0.5, 0.25, 0.125, 0.0625}) {
    table.AddRow({Table::Fmt("%.4f", eps),
                  Table::Fmt("%.4f", AbortRate(eps, 0.0, trials)),
                  Table::Fmt("%.4f", AbortRate(eps, 1e-9, trials)),
                  Table::Fmt("%.4f", AbortRate(eps, 0.25, trials)),
                  Table::Fmt("%.4f", AbortRate(eps, 0.99, trials))});
  }
  table.Print();
  std::printf(
      "Expected shape (Lemma 3): every column is O(eps) and pinning t_i —\n"
      "even to 1e-9 — does not inflate the abort rate, because the pinned\n"
      "coordinate lands in zhat and is excluded from the estimated tail.\n");
  return 0;
}
