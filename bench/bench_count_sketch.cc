// Claim C9 (Lemma 1 [6]): count-sketch point error obeys
// |x_i - x*_i| <= Err_2^m(x) / sqrt(m) for all i w.h.p., and the m-sparse
// approximation satisfies Err <= ||x - xhat||_2 <= 10 Err.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/sketch/count_sketch.h"
#include "src/stream/exact_vector.h"
#include "src/stream/generators.h"

namespace {

using lps::bench::Table;

}  // namespace

int main(int argc, char** argv) {
  const bool quick = lps::bench::Quick(argc, argv);
  const int trials = lps::bench::Scaled(quick, 50, 10);
  const uint64_t n = 4096;
  const auto stream = lps::stream::ZipfianVector(n, 1.0, 100000, true, 3);
  lps::stream::ExactVector x(n);
  x.Apply(stream);

  lps::bench::Section("C9 (Lemma 1): count-sketch guarantees, Zipfian vector");
  std::printf("n=%zu, rows=15, %d sketches per row of the table\n\n",
              static_cast<size_t>(n), trials);

  Table table({"m", "buckets", "Err_2^m/sqrt(m)", "max |x-x*| (worst trial)",
               "violations", "median ||x-xhat|| / Err"});
  for (int m : {4, 16, 64, 256}) {
    const double err_bound =
        x.ErrM2(static_cast<uint64_t>(m)) / std::sqrt(static_cast<double>(m));
    double worst = 0;
    int violations = 0;
    std::vector<double> residual_ratio;
    for (int trial = 0; trial < trials; ++trial) {
      lps::sketch::CountSketch cs(15, 6 * m,
                                  31000 + static_cast<uint64_t>(trial));
      for (const auto& u : stream) {
        cs.Update(u.index, static_cast<double>(u.delta));
      }
      const auto est = cs.EstimateAll(n);
      double trial_worst = 0;
      for (uint64_t i = 0; i < n; ++i) {
        trial_worst = std::max(
            trial_worst, std::abs(est[i] - static_cast<double>(x[i])));
      }
      worst = std::max(worst, trial_worst);
      if (trial_worst > err_bound) ++violations;

      // ||x - xhat||_2 for xhat = the m-sparse approximation from x*.
      const auto top = cs.TopM(n, static_cast<uint64_t>(m));
      std::vector<double> xhat(n, 0.0);
      for (const auto& [i, v] : top) xhat[i] = v;
      double norm_sq = 0;
      for (uint64_t i = 0; i < n; ++i) {
        const double d = static_cast<double>(x[i]) - xhat[i];
        norm_sq += d * d;
      }
      const double err = x.ErrM2(static_cast<uint64_t>(m));
      if (err > 0) residual_ratio.push_back(std::sqrt(norm_sq) / err);
    }
    double median_ratio = 0;
    if (!residual_ratio.empty()) {
      std::nth_element(residual_ratio.begin(),
                       residual_ratio.begin() + residual_ratio.size() / 2,
                       residual_ratio.end());
      median_ratio = residual_ratio[residual_ratio.size() / 2];
    }
    table.AddRow({Table::Fmt("%d", m), Table::Fmt("%d", 6 * m),
                  Table::Fmt("%.2f", err_bound), Table::Fmt("%.2f", worst),
                  Table::Fmt("%d/%d", violations, trials),
                  Table::Fmt("%.2f", median_ratio)});
  }
  table.Print();
  std::printf(
      "Expected (Lemma 1): violations ~ 0; the residual ratio lies in\n"
      "[1, 10] — the paper's Err <= ||x - xhat|| <= 10 Err sandwich.\n");
  return 0;
}
