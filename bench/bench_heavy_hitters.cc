// Claim C12 (Section 4.4): count-sketch with m = Theta(phi^-p) produces
// valid heavy hitter sets for every p in (0, 2] in O(phi^-p log^2 n) bits
// (matching the Theorem 9 lower bound), count-min handles the strict
// turnstile p = 1 case, and the dyadic variant trades space for query time.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/heavy/heavy_hitters.h"
#include "src/stream/exact_vector.h"
#include "src/stream/generators.h"
#include "src/util/bits.h"

namespace {

using lps::bench::Table;

}  // namespace

int main(int argc, char** argv) {
  const bool quick = lps::bench::Quick(argc, argv);

  lps::bench::Section("C12: count-sketch heavy hitters across p and phi");
  {
    const int trials = lps::bench::Scaled(quick, 15, 5);
    const uint64_t n = 2048;
    Table table({"p", "phi", "valid sets", "missing", "spurious",
                 "space bits"});
    for (double p : {0.5, 1.0, 2.0}) {
      for (double phi : {0.3, 0.2, 0.1}) {
        int valid = 0, missing = 0, spurious = 0;
        size_t bits = 0;
        for (int trial = 0; trial < trials; ++trial) {
          const auto stream = lps::stream::PlantedHeavyHitters(
              n, 3, 300, 200, true, 40 + static_cast<uint64_t>(trial));
          lps::stream::ExactVector x(n);
          x.Apply(stream);
          lps::heavy::CsHeavyHitters::Params params;
          params.n = n;
          params.p = p;
          params.phi = phi;
          params.seed = 50000 + static_cast<uint64_t>(trial);
          params.norm_rows = quick ? 600 : 1200;
          lps::heavy::CsHeavyHitters hh(params);
          bits = hh.SpaceBits(2 * lps::CeilLog2(n));
          for (const auto& u : stream) {
            hh.Update(u.index, static_cast<double>(u.delta));
          }
          const auto v = lps::heavy::ValidateHeavySet(x, p, phi, hh.Query());
          valid += v.valid;
          missing += v.missing_heavy;
          spurious += v.included_light;
        }
        table.AddRow({Table::Fmt("%.1f", p), Table::Fmt("%.2f", phi),
                      Table::Fmt("%d/%d", valid, trials),
                      Table::Fmt("%d", missing), Table::Fmt("%d", spurious),
                      Table::Fmt("%zu", bits)});
      }
    }
    table.Print();
    std::printf("Expected: valid sets throughout; space grows as phi^-p\n"
                "(compare rows within a p block), matching Theorem 9.\n\n");
  }

  lps::bench::Section("C12: strict turnstile p=1 — count-min vs count-sketch "
                      "vs dyadic");
  {
    const int trials = lps::bench::Scaled(quick, 15, 5);
    const int log_n = 11;
    const uint64_t n = 1ULL << log_n;
    const double phi = 0.1;
    Table table({"algorithm", "valid sets", "space bits", "query usec"});

    int valid_cm = 0, valid_cs = 0, valid_dy = 0;
    size_t bits_cm = 0, bits_cs = 0, bits_dy = 0;
    double usec_cm = 0, usec_cs = 0, usec_dy = 0;
    for (int trial = 0; trial < trials; ++trial) {
      const auto stream = lps::stream::PlantedHeavyHitters(
          n, 4, 400, 300, false, 60 + static_cast<uint64_t>(trial));
      lps::stream::ExactVector x(n);
      x.Apply(stream);

      lps::heavy::CmHeavyHitters cm(
          {n, phi, 0, 61000 + static_cast<uint64_t>(trial), false});
      lps::heavy::CsHeavyHitters::Params csp;
      csp.n = n;
      csp.p = 1.0;
      csp.phi = phi;
      csp.strict_turnstile = true;
      csp.seed = 62000 + static_cast<uint64_t>(trial);
      lps::heavy::CsHeavyHitters cs(csp);
      lps::heavy::DyadicHeavyHitters dy(log_n, phi,
                                        63000 + static_cast<uint64_t>(trial));
      for (const auto& u : stream) {
        const double d = static_cast<double>(u.delta);
        cm.Update(u.index, d);
        cs.Update(u.index, d);
        dy.Update(u.index, d);
      }
      auto timed = [](auto&& query, double* usec) {
        const auto start = std::chrono::steady_clock::now();
        auto result = query();
        *usec += std::chrono::duration<double, std::micro>(
                     std::chrono::steady_clock::now() - start)
                     .count();
        return result;
      };
      valid_cm += lps::heavy::ValidateHeavySet(
                      x, 1.0, phi, timed([&] { return cm.Query(); }, &usec_cm))
                      .valid;
      valid_cs += lps::heavy::ValidateHeavySet(
                      x, 1.0, phi, timed([&] { return cs.Query(); }, &usec_cs))
                      .valid;
      valid_dy += lps::heavy::ValidateHeavySet(
                      x, 1.0, phi, timed([&] { return dy.Query(); }, &usec_dy))
                      .valid;
      bits_cm = cm.SpaceBits(2 * log_n);
      bits_cs = cs.SpaceBits(2 * log_n);
      bits_dy = dy.SpaceBits(2 * log_n);
    }
    table.AddRow({"count-min (flat scan)", Table::Fmt("%d/%d", valid_cm, trials),
                  Table::Fmt("%zu", bits_cm),
                  Table::Fmt("%.0f", usec_cm / trials)});
    table.AddRow({"count-sketch (flat scan)",
                  Table::Fmt("%d/%d", valid_cs, trials),
                  Table::Fmt("%zu", bits_cs),
                  Table::Fmt("%.0f", usec_cs / trials)});
    table.AddRow({"dyadic count-min", Table::Fmt("%d/%d", valid_dy, trials),
                  Table::Fmt("%zu", bits_dy),
                  Table::Fmt("%.0f", usec_dy / trials)});
    table.Print();
    std::printf("Expected: all valid; dyadic pays ~log n extra space for\n"
                "orders-of-magnitude faster extraction.\n");
  }
  return 0;
}
