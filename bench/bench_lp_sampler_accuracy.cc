// Claims C1 + C3 (Theorem 1, Lemma 4, Figure 1): the conditional output
// distribution of the Lp sampler matches the Lp distribution up to O(eps),
// and the estimate of the sampled coordinate has relative error <= eps whp.
//
// For each (p, eps) cell: many independent single-round samplers run over a
// fixed mixed-sign stream; we report per-round success rate, the total
// variation distance and the max relative error of the conditional law vs
// the exact Lp distribution (noise floor shown for calibration), and the
// fraction of samples whose x_i estimate missed by more than eps.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/lp_sampler.h"
#include "src/stats/stats.h"
#include "src/stream/exact_vector.h"
#include "src/stream/generators.h"

namespace {

using lps::bench::Table;

struct CellResult {
  double success_rate;
  double tv;
  double tv_noise_floor;
  double max_rel_err;
  double estimate_miss_rate;
};

CellResult RunCell(double p, double eps, int trials) {
  const uint64_t n = 64;
  lps::stream::UpdateStream stream;
  lps::stream::ExactVector x(n);
  for (uint64_t i = 0; i < 32; ++i) {
    const int64_t v =
        (i % 2 == 0 ? 1 : -1) * static_cast<int64_t>(1 + i * i / 4);
    stream.push_back({i, v});
    x.Apply({i, v});
  }
  const auto exact = x.LpDistribution(p);

  std::vector<uint64_t> counts(n, 0);
  uint64_t samples = 0, estimate_misses = 0;
  for (int trial = 0; trial < trials; ++trial) {
    lps::core::LpSamplerParams params;
    params.n = n;
    params.p = p;
    params.eps = eps;
    params.repetitions = 1;
    params.seed = 10000 + static_cast<uint64_t>(trial);
    lps::core::LpSampler sampler(params);
    for (const auto& u : stream) {
      sampler.Update(u.index, static_cast<double>(u.delta));
    }
    auto res = sampler.Sample();
    if (!res.ok()) continue;
    ++samples;
    ++counts[res.value().index];
    const double truth = static_cast<double>(x[res.value().index]);
    if (std::abs(res.value().estimate - truth) > eps * std::abs(truth)) {
      ++estimate_misses;
    }
  }
  CellResult result{};
  result.success_rate = static_cast<double>(samples) / trials;
  result.tv = lps::stats::TotalVariation(counts, exact);
  // Multinomial noise floor ~ 0.4 sqrt(k / N) for k occupied cells.
  result.tv_noise_floor =
      0.4 * std::sqrt(32.0 / static_cast<double>(std::max<uint64_t>(samples, 1)));
  result.max_rel_err = lps::stats::MaxRelativeError(counts, exact, 0.02);
  result.estimate_miss_rate =
      samples ? static_cast<double>(estimate_misses) / samples : 0.0;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = lps::bench::Quick(argc, argv);
  const int trials = lps::bench::Scaled(quick, 8000, 1000);

  lps::bench::Section(
      "C1/C3: Lp sampler conditional distribution & estimate accuracy");
  std::printf("single-round samplers, n=64, mixed-sign quadratic magnitudes, "
              "%d trials per cell\n\n", trials);

  Table table({"p", "eps", "round success", "TV(emp, Lp)", "TV noise floor",
               "max rel err", "est miss rate"});
  for (double p : {0.5, 1.0, 1.5}) {
    for (double eps : {0.5, 0.25, 0.125}) {
      const CellResult r = RunCell(p, eps, trials);
      table.AddRow({Table::Fmt("%.1f", p), Table::Fmt("%.3f", eps),
                    Table::Fmt("%.3f", r.success_rate),
                    Table::Fmt("%.4f", r.tv),
                    Table::Fmt("%.4f", r.tv_noise_floor),
                    Table::Fmt("%.3f", r.max_rel_err),
                    Table::Fmt("%.4f", r.estimate_miss_rate)});
    }
  }
  table.Print();
  std::printf(
      "Expected shape (paper): TV above the noise floor shrinks with eps;\n"
      "success per round is Theta(eps); estimate misses are low-probability.\n");
  return 0;
}
