// Claim C5 (Theorem 2 vs [12]): the L0 sampler is zero-relative-error
// (conditional law exactly uniform on the support), fails with probability
// <= delta, uses O(log^2 n) bits against the FIS baseline's O(log^3 n),
// and derandomizes with a Nisan seed of O(log^2 n) bits.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/fis_l0_sampler.h"
#include "src/core/l0_sampler.h"
#include "src/core/two_pass_l0_sampler.h"
#include "src/stats/stats.h"
#include "src/stream/exact_vector.h"
#include "src/stream/generators.h"

namespace {

using lps::bench::Table;

}  // namespace

int main(int argc, char** argv) {
  const bool quick = lps::bench::Quick(argc, argv);

  // --- Failure rate vs delta on an adversarial support size. ---
  lps::bench::Section("C5: failure rate vs delta (n = 4096, support 60)");
  {
    const int trials = lps::bench::Scaled(quick, 400, 80);
    const uint64_t n = 4096;
    const auto stream = lps::stream::SparseVector(n, 60, 100, 9);
    Table table({"delta", "s per level", "observed failure", "99% CI high"});
    for (double delta : {0.5, 0.25, 0.1, 0.02}) {
      int fails = 0;
      uint64_t s = 0;
      for (int trial = 0; trial < trials; ++trial) {
        lps::core::L0Sampler sampler(
            {n, delta, 0, 42000 + static_cast<uint64_t>(trial), false});
        s = sampler.s();
        for (const auto& u : stream) sampler.Update(u.index, u.delta);
        fails += !sampler.Sample().ok();
      }
      const auto ci = lps::stats::WilsonInterval(
          static_cast<uint64_t>(fails), static_cast<uint64_t>(trials));
      table.AddRow({Table::Fmt("%.2f", delta), Table::Fmt("%zu", s),
                    Table::Fmt("%.4f", static_cast<double>(fails) / trials),
                    Table::Fmt("%.4f", ci.hi)});
    }
    table.Print();
    std::printf("Expected: observed failure <= delta in every row.\n\n");
  }

  // --- Uniformity (zero relative error) across support sizes. ---
  lps::bench::Section("C5: uniformity of the conditional law");
  {
    const int trials = lps::bench::Scaled(quick, 2500, 400);
    const uint64_t n = 512;
    Table table({"support", "samples", "TV vs uniform", "TV noise floor",
                 "chi2 p-value"});
    for (uint64_t support : {4ULL, 16ULL, 64ULL, 200ULL}) {
      const auto stream = lps::stream::SparseVector(n, support, 100000, 5);
      lps::stream::ExactVector x(n);
      x.Apply(stream);
      const auto exact = x.LpDistribution(0.0);
      std::vector<uint64_t> counts(n, 0);
      uint64_t samples = 0;
      for (int trial = 0; trial < trials; ++trial) {
        lps::core::L0Sampler sampler(
            {n, 0.25, 0, 91000 + static_cast<uint64_t>(trial), false});
        for (const auto& u : stream) sampler.Update(u.index, u.delta);
        auto res = sampler.Sample();
        if (res.ok()) {
          ++counts[res.value().index];
          ++samples;
        }
      }
      const auto chi = lps::stats::ChiSquareGof(counts, exact);
      table.AddRow(
          {Table::Fmt("%zu", support), Table::Fmt("%zu", samples),
           Table::Fmt("%.4f", lps::stats::TotalVariation(counts, exact)),
           Table::Fmt("%.4f",
                      0.4 * std::sqrt(static_cast<double>(support) /
                                      std::max<uint64_t>(samples, 1))),
           Table::Fmt("%.3f", chi.p_value)});
    }
    table.Print();
    std::printf("Expected: TV at the noise floor, chi2 p-values not tiny\n"
                "(zero relative error: deviations are pure sampling noise).\n\n");
  }

  // --- Space vs n: Theorem 2 vs FIS baseline; Nisan seed accounting. ---
  lps::bench::Section("C5: space vs n (bits; delta = 0.25)");
  {
    Table table({"log2 n", "Thm2+oracle", "Thm2+Nisan seed", "FIS baseline",
                 "FIS/Thm2", "Thm2 growth", "FIS growth"});
    size_t prev_ours = 0, prev_fis = 0;
    for (int log_n = 8; log_n <= 20; log_n += 2) {
      const uint64_t n = 1ULL << log_n;
      lps::core::L0Sampler oracle({n, 0.25, 0, 1, false});
      lps::core::L0SamplerParams np{n, 0.25, 0, 1, true};
      lps::core::L0Sampler nisan(np);
      lps::core::FisL0Sampler fis(n, 1);
      const size_t ours = oracle.SpaceBits();
      const size_t fis_bits = fis.SpaceBits();
      table.AddRow(
          {Table::Fmt("%d", log_n), Table::Fmt("%zu", ours),
           Table::Fmt("%zu", nisan.SpaceBits()),
           Table::Fmt("%zu", fis_bits),
           Table::Fmt("%.2f", static_cast<double>(fis_bits) / ours),
           prev_ours ? Table::Fmt("%.2fx", static_cast<double>(ours) / prev_ours)
                     : "-",
           prev_fis
               ? Table::Fmt("%.2fx", static_cast<double>(fis_bits) / prev_fis)
               : "-"});
      prev_ours = ours;
      prev_fis = fis_bits;
    }
    table.Print();
    std::printf(
        "Expected: FIS/Thm2 ratio grows with log n (log^3 vs log^2); the\n"
        "Nisan seed adds O(log^2 n) bits without changing the shape.\n\n");
  }

  // --- FIS baseline correctness reference. ---
  lps::bench::Section("C5: FIS baseline sanity (same workloads)");
  {
    const int trials = lps::bench::Scaled(quick, 800, 150);
    const uint64_t n = 512;
    const auto stream = lps::stream::SparseVector(n, 64, 100000, 5);
    lps::stream::ExactVector x(n);
    x.Apply(stream);
    const auto exact = x.LpDistribution(0.0);
    std::vector<uint64_t> counts(n, 0);
    uint64_t samples = 0;
    for (int trial = 0; trial < trials; ++trial) {
      lps::core::FisL0Sampler sampler(n, 5150 + static_cast<uint64_t>(trial));
      for (const auto& u : stream) sampler.Update(u.index, u.delta);
      auto res = sampler.Sample();
      if (res.ok()) {
        ++counts[res.value().index];
        ++samples;
      }
    }
    Table table({"samples", "success rate", "TV vs uniform"});
    table.AddRow({Table::Fmt("%zu", samples),
                  Table::Fmt("%.3f", static_cast<double>(samples) / trials),
                  Table::Fmt("%.4f",
                             lps::stats::TotalVariation(counts, exact))});
    table.Print();
    std::printf("Reference only: FIS trades 1 log factor of space for\n"
                "approximate (not exactly zero-error) uniformity.\n\n");
  }

  // --- The two-pass variant (remark after Proposition 5). ---
  lps::bench::Section("C5 ext: two-pass zero-error L0 sampler");
  {
    const int trials = lps::bench::Scaled(quick, 500, 100);
    const uint64_t n = 1 << 14;
    Table table({"support", "success", "wrong values", "2-pass bits",
                 "1-pass bits"});
    for (uint64_t support : {8ULL, 256ULL, 4096ULL}) {
      const auto stream = lps::stream::SparseVector(n, support, 100, 7);
      lps::stream::ExactVector x(n);
      x.Apply(stream);
      int ok = 0, wrong = 0;
      size_t bits2 = 0, bits1 = 0;
      for (int trial = 0; trial < trials; ++trial) {
        lps::core::TwoPassL0Sampler sampler(
            {n, 0.25, 0, 95000 + static_cast<uint64_t>(trial)});
        for (const auto& u : stream) sampler.UpdateFirstPass(u.index, u.delta);
        sampler.FinishFirstPass();
        for (const auto& u : stream) {
          sampler.UpdateSecondPass(u.index, u.delta);
        }
        bits2 = sampler.SpaceBits();
        auto res = sampler.Sample();
        if (res.ok()) {
          ++ok;
          wrong += (x[res.value().index] !=
                    static_cast<int64_t>(res.value().estimate));
        }
      }
      lps::core::L0Sampler one_pass({n, 0.25, 0, 1, false});
      bits1 = one_pass.SpaceBits();
      table.AddRow({Table::Fmt("%zu", support),
                    Table::Fmt("%.3f", static_cast<double>(ok) / trials),
                    Table::Fmt("%d", wrong), Table::Fmt("%zu", bits2),
                    Table::Fmt("%zu", bits1)});
    }
    table.Print();
    std::printf("Expected: same zero-error guarantee with one recovery\n"
                "structure instead of log n of them — the second pass buys\n"
                "the level choice upfront.\n");
  }
  return 0;
}
