// Claim C11 (Lemma 5): exact s-sparse recovery with probability 1, DENSE
// detection w.h.p., O(s log n) bits, and recovery cost independent of n
// (Cantor-Zassenhaus root finding instead of Chien search).
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/recovery/sparse_recovery.h"
#include "src/stream/exact_vector.h"
#include "src/stream/generators.h"

namespace {

using lps::bench::Table;

}  // namespace

int main(int argc, char** argv) {
  const bool quick = lps::bench::Quick(argc, argv);
  const int trials = lps::bench::Scaled(quick, 60, 12);
  const uint64_t n = 1 << 20;

  lps::bench::Section("C11 (Lemma 5): exact sparse recovery, n = 2^20");
  Table table({"s", "exact recoveries", "dense detected (2s load)",
               "false accepts", "space bits", "recover usec"});
  for (uint64_t s : {1ULL, 4ULL, 16ULL, 64ULL, 128ULL}) {
    int exact = 0, dense = 0, false_accepts = 0;
    size_t bits = 0;
    double usec_total = 0;
    for (int trial = 0; trial < trials; ++trial) {
      const uint64_t seed = 20000 + static_cast<uint64_t>(trial);
      // Exact path: s-sparse vector.
      {
        const auto stream = lps::stream::SparseVector(n, s, 1 << 20, seed);
        lps::stream::ExactVector x(n);
        x.Apply(stream);
        lps::recovery::SparseRecovery rec(n, s, seed);
        bits = rec.SpaceBits();
        for (const auto& u : stream) rec.Update(u.index, u.delta);
        const auto start = std::chrono::steady_clock::now();
        auto r = rec.Recover();
        usec_total += std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - start)
                          .count();
        bool good = r.ok() && r.value().size() == x.L0();
        if (good) {
          for (const auto& e : r.value()) good &= (e.value == x[e.index]);
        }
        exact += good;
      }
      // Dense path: 2s non-zeros must be rejected.
      {
        const auto stream =
            lps::stream::SparseVector(n, 2 * s, 1 << 20, seed ^ 0xdddd);
        lps::recovery::SparseRecovery rec(n, s, seed);
        for (const auto& u : stream) rec.Update(u.index, u.delta);
        auto r = rec.Recover();
        if (r.status().IsDense()) {
          ++dense;
        } else if (r.ok()) {
          ++false_accepts;
        }
      }
    }
    table.AddRow({Table::Fmt("%zu", s), Table::Fmt("%d/%d", exact, trials),
                  Table::Fmt("%d/%d", dense, trials),
                  Table::Fmt("%d", false_accepts), Table::Fmt("%zu", bits),
                  Table::Fmt("%.0f", usec_total / trials)});
  }
  table.Print();
  std::printf(
      "Expected (Lemma 5): recovery exact in every trial (probability 1);\n"
      "over-budget inputs always DENSE; zero false accepts; bits linear in\n"
      "s; recovery time grows with s but not with n.\n");
  return 0;
}
