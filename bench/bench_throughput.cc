// Claim C17 (engineering table): update throughput and query latency of
// every sketch and sampler, so downstream users can size deployments.
// google-benchmark binary; pass --benchmark_filter=... as usual.
#include <benchmark/benchmark.h>

#include "src/core/l0_sampler.h"
#include "src/core/lp_sampler.h"
#include "src/norm/l0_norm.h"
#include "src/recovery/sparse_recovery.h"
#include "src/sketch/ams_f2.h"
#include "src/sketch/count_min.h"
#include "src/sketch/count_sketch.h"
#include "src/sketch/dyadic.h"
#include "src/sketch/stable_sketch.h"
#include "src/stream/generators.h"

namespace {

constexpr uint64_t kN = 1 << 16;

const lps::stream::UpdateStream& SharedStream() {
  static const auto* stream = new lps::stream::UpdateStream(
      lps::stream::UniformTurnstile(kN, 1 << 16, 100, 7));
  return *stream;
}

void BM_CountSketchUpdate(benchmark::State& state) {
  lps::sketch::CountSketch cs(static_cast<int>(state.range(0)), 96, 1);
  const auto& stream = SharedStream();
  size_t pos = 0;
  for (auto _ : state) {
    const auto& u = stream[pos++ & (stream.size() - 1)];
    cs.Update(u.index, static_cast<double>(u.delta));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CountSketchUpdate)->Arg(9)->Arg(17)->Arg(33);

void BM_CountMinUpdate(benchmark::State& state) {
  lps::sketch::CountMin cm(17, 96, 2);
  const auto& stream = SharedStream();
  size_t pos = 0;
  for (auto _ : state) {
    const auto& u = stream[pos++ & (stream.size() - 1)];
    cm.Update(u.index, static_cast<double>(u.delta));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CountMinUpdate);

void BM_AmsF2Update(benchmark::State& state) {
  lps::sketch::AmsF2 ams(9, 16, 3);
  const auto& stream = SharedStream();
  size_t pos = 0;
  for (auto _ : state) {
    const auto& u = stream[pos++ & (stream.size() - 1)];
    ams.Update(u.index, static_cast<double>(u.delta));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AmsF2Update);

void BM_StableSketchUpdate(benchmark::State& state) {
  lps::sketch::StableSketch sketch(
      static_cast<double>(state.range(0)) / 10.0, 96, 4);
  const auto& stream = SharedStream();
  size_t pos = 0;
  for (auto _ : state) {
    const auto& u = stream[pos++ & (stream.size() - 1)];
    sketch.Update(u.index, static_cast<double>(u.delta));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StableSketchUpdate)->Arg(5)->Arg(10)->Arg(20);

void BM_SparseRecoveryUpdate(benchmark::State& state) {
  lps::recovery::SparseRecovery rec(kN, static_cast<uint64_t>(state.range(0)),
                                    5);
  const auto& stream = SharedStream();
  size_t pos = 0;
  for (auto _ : state) {
    const auto& u = stream[pos++ & (stream.size() - 1)];
    rec.Update(u.index, u.delta);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SparseRecoveryUpdate)->Arg(8)->Arg(32)->Arg(128);

void BM_SparseRecoveryRecover(benchmark::State& state) {
  const uint64_t s = static_cast<uint64_t>(state.range(0));
  lps::recovery::SparseRecovery rec(kN, s, 6);
  const auto stream = lps::stream::SparseVector(kN, s, 1000, 7);
  for (const auto& u : stream) rec.Update(u.index, u.delta);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rec.Recover());
  }
}
BENCHMARK(BM_SparseRecoveryRecover)->Arg(8)->Arg(32)->Arg(128);

void BM_L0SamplerUpdate(benchmark::State& state) {
  lps::core::L0Sampler sampler({kN, 0.25, 0, 8, false});
  const auto& stream = SharedStream();
  size_t pos = 0;
  for (auto _ : state) {
    const auto& u = stream[pos++ & (stream.size() - 1)];
    sampler.Update(u.index, u.delta);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_L0SamplerUpdate);

void BM_L0SamplerNisanUpdate(benchmark::State& state) {
  lps::core::L0Sampler sampler({kN, 0.25, 0, 9, true});
  const auto& stream = SharedStream();
  size_t pos = 0;
  for (auto _ : state) {
    const auto& u = stream[pos++ & (stream.size() - 1)];
    sampler.Update(u.index, u.delta);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_L0SamplerNisanUpdate);

void BM_LpSamplerUpdate(benchmark::State& state) {
  lps::core::LpSamplerParams params;
  params.n = kN;
  params.p = 1.0;
  params.eps = 0.25;
  params.repetitions = static_cast<int>(state.range(0));
  params.seed = 10;
  lps::core::LpSampler sampler(params);
  const auto& stream = SharedStream();
  size_t pos = 0;
  for (auto _ : state) {
    const auto& u = stream[pos++ & (stream.size() - 1)];
    sampler.Update(u.index, static_cast<double>(u.delta));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LpSamplerUpdate)->Arg(1)->Arg(8);

void BM_LpSamplerRecovery(benchmark::State& state) {
  lps::core::LpSamplerParams params;
  params.n = 1 << 12;  // recovery scans [n]
  params.p = 1.0;
  params.eps = 0.25;
  params.repetitions = 1;
  params.seed = 11;
  lps::core::LpSampler sampler(params);
  const auto stream = lps::stream::UniformTurnstile(1 << 12, 4096, 100, 12);
  for (const auto& u : stream) {
    sampler.Update(u.index, static_cast<double>(u.delta));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample());
  }
}
BENCHMARK(BM_LpSamplerRecovery);

void BM_DyadicCountMinUpdate(benchmark::State& state) {
  lps::sketch::DyadicCountMin tree(16, 9, 64, 14);
  const auto& stream = SharedStream();
  size_t pos = 0;
  for (auto _ : state) {
    const auto& u = stream[pos++ & (stream.size() - 1)];
    tree.Update(u.index, static_cast<double>(u.delta));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DyadicCountMinUpdate);

void BM_DyadicHeavyQuery(benchmark::State& state) {
  lps::sketch::DyadicCountMin tree(16, 9, 64, 15);
  const auto stream = lps::stream::PlantedHeavyHitters(kN, 5, 1000, 500,
                                                       false, 16);
  for (const auto& u : stream) {
    tree.Update(u.index, static_cast<double>(u.delta));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.HeavyLeaves(500.0));
  }
}
BENCHMARK(BM_DyadicHeavyQuery);

void BM_L0EstimatorUpdate(benchmark::State& state) {
  lps::norm::L0Estimator est(kN, 25, 13);
  const auto& stream = SharedStream();
  size_t pos = 0;
  for (auto _ : state) {
    const auto& u = stream[pos++ & (stream.size() - 1)];
    est.Update(u.index, u.delta);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_L0EstimatorUpdate);

}  // namespace

BENCHMARK_MAIN();
