// Claim C17 (engineering table): update throughput and query latency of
// every sketch and sampler, so downstream users can size deployments and
// the perf trajectory of the hot path is tracked from PR to PR. Ingestion
// is measured scalar (one Update call per stream element) versus batched
// (StreamDriver chunks through the UpdateBatch fast paths); a
// parallel_ingest section measures the parallel ingestion runtime
// (ParallelPipeline: t shards on t workers fed through bounded rings,
// then MergeShards) for t in {1, 2, 4, 8}, and the recovery table tracks
// the query-side costs (Sample, Recover, HeavyLeaves).
//
// Between timed passes every sink is Reset() — counters zeroed, seeds and
// allocations kept — so repeated trials measure ingestion, not
// reconstruction.
//
// Emits the human tables to stdout and machine-readable results to
// BENCH_throughput.json. --quick shrinks stream lengths and pass counts
// for CI smoke runs. Exits non-zero if a query path regressed to
// universe-scan scaling, or (on hardware with >= 4 cores) if t = 4
// parallel ingest fails to beat t = 1 — the CI smoke gates on both.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/l0_sampler.h"
#include "src/kernels/kernels.h"
#include "src/core/lp_sampler.h"
#include "src/heavy/heavy_hitters.h"
#include "src/norm/l0_norm.h"
#include "src/norm/lp_norm.h"
#include "src/recovery/sparse_recovery.h"
#include "src/sketch/ams_f2.h"
#include "src/sketch/count_min.h"
#include "src/sketch/count_sketch.h"
#include "src/sketch/dyadic.h"
#include "src/sketch/stable_sketch.h"
#include "src/stream/generators.h"
#include "src/stream/linear_sketch.h"
#include "src/stream/parallel_pipeline.h"
#include "src/stream/stream_driver.h"
#include "src/util/random.h"

namespace {

using lps::bench::Table;
using lps::stream::StreamDriver;
using lps::stream::UpdateStream;

constexpr uint64_t kN = 1 << 16;

struct ResultRow {
  std::string name;
  size_t updates = 0;
  double scalar_ips = 0;   // items/sec, per-update Update() loop
  double batched_ips = 0;  // items/sec, StreamDriver + UpdateBatch
  double speedup() const {
    return scalar_ips > 0 ? batched_ips / scalar_ips : 0;
  }
};

/// Runs `fn` over the stream `passes` times and returns items/sec of the
/// fastest pass (min-time, the standard noise-robust estimator). `reset`
/// runs before every pass, outside the timed region — the Reset() warm-up
/// that keeps repeated trials from paying reconstruction.
template <typename ResetFn, typename Fn>
double ItemsPerSec(const UpdateStream& stream, int passes, ResetFn&& reset,
                   Fn&& fn) {
  double best_seconds = 1e300;
  for (int p = 0; p < passes; ++p) {
    reset();
    const auto start = std::chrono::steady_clock::now();
    fn(stream);
    const auto stop = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(stop - start).count();
    if (seconds < best_seconds) best_seconds = seconds;
  }
  return static_cast<double>(stream.size()) / best_seconds;
}

/// Measures one structure: `scalar` ingests the stream with per-update
/// calls, `batched` through a StreamDriver chunked fast path. Sinks are
/// Reset() between passes.
template <typename Sink>
ResultRow Measure(const std::string& name, const UpdateStream& stream,
                  int passes, Sink* scalar_sink, Sink* batched_sink) {
  ResultRow row;
  row.name = name;
  row.updates = stream.size();
  row.scalar_ips = ItemsPerSec(
      stream, passes, [&] { scalar_sink->Reset(); },
      [&](const UpdateStream& s) {
        for (const auto& u : s) {
          scalar_sink->Update(u.index, static_cast<double>(u.delta));
        }
      });
  StreamDriver driver;
  driver.Add(name, batched_sink);
  row.batched_ips = ItemsPerSec(
      stream, passes, [&] { batched_sink->Reset(); },
      [&](const UpdateStream& s) { driver.Drive(s); });
  return row;
}

// L0 structures take int64 deltas; same shape, different scalar call.
template <typename Sink>
ResultRow MeasureInt(const std::string& name, const UpdateStream& stream,
                     int passes, Sink* scalar_sink, Sink* batched_sink) {
  ResultRow row;
  row.name = name;
  row.updates = stream.size();
  row.scalar_ips = ItemsPerSec(
      stream, passes, [&] { scalar_sink->Reset(); },
      [&](const UpdateStream& s) {
        for (const auto& u : s) scalar_sink->Update(u.index, u.delta);
      });
  StreamDriver driver;
  driver.Add(name, batched_sink);
  row.batched_ips = ItemsPerSec(
      stream, passes, [&] { batched_sink->Reset(); },
      [&](const UpdateStream& s) { driver.Drive(s); });
  return row;
}

/// One structure measured with a specific kernel backend forced — the
/// per-backend sweep that makes SIMD wins (and scalar-fallback costs)
/// visible in the JSON trajectory.
struct BackendRow {
  std::string backend;
  ResultRow row;
};

/// The tentpole perf gate: with the AVX2 backend dispatched, batched
/// ingestion must clear its speedup floor over the per-update path —
/// 3x on count_sketch, 1.5x on stable_sketch (which additionally must
/// never fall below 1.0x: the pre-kernel batch path was a 0.98x
/// *regression* there, and this gate keeps it from coming back).
/// Skips (logged, never silent) when the host has no AVX2 backend or the
/// build is sanitizer-instrumented.
bool CheckKernelSpeedups(const std::vector<ResultRow>& rows,
                         const std::vector<BackendRow>& sweep) {
  bool have_avx2 = false;
  for (auto b : lps::kernels::AvailableBackends()) {
    if (b == lps::kernels::Backend::kAvx2) have_avx2 = true;
  }
  if (!have_avx2) {
    std::printf(
        "kernel speedup check: skipped (no AVX2 kernel backend on this "
        "host — floors are calibrated for AVX2 hardware)\n");
    return true;
  }
  if (!lps::bench::PerfGateEligible("kernel speedup check")) return true;

  struct Target {
    const char* name;
    double floor;
  };
  const Target targets[] = {{"count_sketch[17x96]", 3.0},
                            {"stable_sketch[p=1,96]", 1.5}};
  const bool dispatched_avx2 =
      lps::kernels::ActiveBackend() == lps::kernels::Backend::kAvx2;
  bool ok = true;
  for (const Target& target : targets) {
    // Gate on the best AVX2 measurement of the run — the forced-sweep
    // row, and the headline row when AVX2 was the dispatched backend
    // anyway. Both are min-of-passes already; taking their max guards
    // the floor against a noise window swallowing one whole section on
    // a shared runner.
    double speedup = -1.0;
    for (const BackendRow& br : sweep) {
      if (br.backend == "avx2" && br.row.name == target.name) {
        speedup = std::max(speedup, br.row.speedup());
      }
    }
    if (dispatched_avx2) {
      for (const ResultRow& row : rows) {
        if (row.name == target.name) speedup = std::max(speedup, row.speedup());
      }
    }
    if (speedup < 0) {
      std::fprintf(stderr, "kernel speedup check: missing avx2 row for %s\n",
                   target.name);
      ok = false;
      continue;
    }
    if (speedup <= 1.0) {
      std::fprintf(stderr,
                   "KERNEL SPEEDUP REGRESSION: %s batched path is SLOWER "
                   "than per-update under avx2 (%.2fx) — the batch fast "
                   "path regressed below break-even\n",
                   target.name, speedup);
      ok = false;
    } else if (speedup < target.floor) {
      std::fprintf(stderr,
                   "KERNEL SPEEDUP REGRESSION: %s batched/scalar = %.2fx "
                   "under avx2, floor is %.2fx\n",
                   target.name, speedup, target.floor);
      ok = false;
    } else {
      std::printf("kernel speedup check: %s %.2fx under avx2 (floor %.2fx)\n",
                  target.name, speedup, target.floor);
    }
  }
  return ok;
}

struct ParallelRow {
  std::string name;
  int threads = 0;          // worker threads == shards
  size_t updates = 0;
  double ips = 0;           // items/sec, Drive (partition+ingest) + merge
  double merge_micros = 0;  // MergeShards cost alone, best pass
};

/// The parallel ingestion runtime end-to-end: a ParallelPipeline with t
/// shards on t workers consumes the firehose (producer-side partitioning,
/// bounded rings, UpdateBatch on the workers), then MergeShards collapses
/// the epoch. Reported items/sec covers partition + ingest + merge — the
/// number a deployment actually gets from the library, not a hand-rolled
/// upper bound. The pipeline (and its workers) persist across passes, so
/// thread spawn cost is not measured; replica Reset happens off-clock.
template <typename Sink, typename MakeFn>
ParallelRow MeasureParallel(const std::string& name,
                            const UpdateStream& stream, int passes,
                            int threads, MakeFn make) {
  std::vector<Sink> replicas;
  replicas.reserve(static_cast<size_t>(threads));
  for (int s = 0; s < threads; ++s) replicas.push_back(make());
  std::vector<lps::LinearSketch*> raw;
  for (auto& replica : replicas) raw.push_back(&replica);

  lps::stream::ParallelPipeline::Options options;
  options.shards = threads;
  options.threads = threads;
  lps::stream::ParallelPipeline pipeline(options);
  pipeline.Add(name, raw);

  ParallelRow row;
  row.name = name;
  row.threads = threads;
  row.updates = stream.size();
  double best_seconds = 1e300;
  double best_merge = 1e300;
  for (int p = 0; p < passes; ++p) {
    for (auto& replica : replicas) replica.Reset();
    const auto start = std::chrono::steady_clock::now();
    pipeline.Drive(stream);
    const auto ingested = std::chrono::steady_clock::now();
    pipeline.MergeShards();
    const auto stop = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(stop - start).count();
    const double merge_seconds =
        std::chrono::duration<double>(stop - ingested).count();
    if (seconds < best_seconds) best_seconds = seconds;
    if (merge_seconds < best_merge) best_merge = merge_seconds;
  }
  row.ips = static_cast<double>(stream.size()) / best_seconds;
  row.merge_micros = best_merge * 1e6;
  return row;
}

double ParallelIpsAt(const std::vector<ParallelRow>& rows,
                     const std::string& name, int threads) {
  for (const auto& row : rows) {
    if (row.name == name && row.threads == threads) return row.ips;
  }
  return -1;
}

/// The parallel-scaling gate: on hardware with >= 4 cores, t = 4 must
/// beat t = 1 (CI runners have 4; near-linear scaling is the headline,
/// but the gate only asserts direction so runner noise cannot flake it).
/// On narrower machines the workers time-slice one core and the check
/// would measure the scheduler, so it is skipped with a note.
bool CheckParallelScaling(const std::vector<ParallelRow>& rows,
                          const std::string& name) {
  const unsigned cores = std::thread::hardware_concurrency();
  const double t1 = ParallelIpsAt(rows, name, 1);
  const double t4 = ParallelIpsAt(rows, name, 4);
  if (t1 <= 0 || t4 <= 0) {
    std::fprintf(stderr, "parallel scaling check: missing rows for %s\n",
                 name.c_str());
    return false;
  }
  if (!lps::bench::PerfGateEligible("parallel scaling check", 4)) {
    return true;
  }
  if (t4 <= t1) {
    std::fprintf(stderr,
                 "PARALLEL SCALING REGRESSION: %s ingests %.2f Mitem/s "
                 "at t=4 vs %.2f Mitem/s at t=1 on %u cores — the "
                 "pipeline no longer parallelizes\n",
                 name.c_str(), t4 / 1e6, t1 / 1e6, cores);
    return false;
  }
  std::printf("parallel scaling check: %s t=4/t=1 = %.2fx on %u cores\n",
              name.c_str(), t4 / t1, cores);
  return true;
}

struct LatencyRow {
  std::string name;
  double micros = 0;  // per query call, best-of-passes
};

// Query latency at n = 2^20 must stay within this factor of n = 2^12.
// Sub-linear queries grow only with log n (< 2x across the sweep); an
// accidental universe scan is ~256x. The slack absorbs timer noise on
// shared CI runners.
constexpr double kMaxQueryScalingRatio = 4.0;

double LatencyOf(const std::vector<LatencyRow>& rows,
                 const std::string& name) {
  for (const auto& row : rows) {
    if (row.name == name) return row.micros;
  }
  return -1;
}

/// Returns false (and complains on stderr) if a query family's latency at
/// n = 2^20 regressed to more than kMaxQueryScalingRatio times n = 2^12.
bool CheckQueryScaling(const std::vector<LatencyRow>& rows,
                       const std::string& family,
                       const std::string& small_suffix,
                       const std::string& large_suffix) {
  const double at_small = LatencyOf(rows, family + small_suffix);
  const double at_large = LatencyOf(rows, family + large_suffix);
  if (at_small <= 0 || at_large <= 0) {
    std::fprintf(stderr, "query scaling check: missing rows for %s\n",
                 family.c_str());
    return false;
  }
  if (at_large > kMaxQueryScalingRatio * at_small) {
    std::fprintf(stderr,
                 "QUERY SCALING REGRESSION: %s costs %.1f us at n=2^20 vs "
                 "%.1f us at n=2^12 (ratio %.2f > %.2f) — an O(n) scan is "
                 "back in the query path\n",
                 family.c_str(), at_large, at_small, at_large / at_small,
                 kMaxQueryScalingRatio);
    return false;
  }
  return true;
}

/// Per-call latency of `fn`, best of `passes` timed runs of `calls` calls.
template <typename Fn>
double MicrosPerCall(int passes, int calls, Fn&& fn) {
  double best_seconds = 1e300;
  for (int p = 0; p < passes; ++p) {
    const auto start = std::chrono::steady_clock::now();
    for (int c = 0; c < calls; ++c) fn();
    const auto stop = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(stop - start).count();
    if (seconds < best_seconds) best_seconds = seconds;
  }
  return best_seconds / calls * 1e6;
}

void WriteJson(const char* path, const std::vector<ResultRow>& rows,
               const std::vector<BackendRow>& sweep,
               const std::vector<ParallelRow>& parallel,
               const std::vector<LatencyRow>& latencies, bool quick) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"throughput\",\n  \"quick\": %s,\n",
               quick ? "true" : "false");
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  // The backend the headline "results" section ran under. Absolute
  // numbers are only comparable between files with the same value —
  // compare_bench.py enforces that.
  std::fprintf(f, "  \"kernel_backend\": \"%s\",\n",
               lps::kernels::ActiveBackendName());
  std::fprintf(f, "  \"results\": [\n");
  for (size_t r = 0; r < rows.size(); ++r) {
    const ResultRow& row = rows[r];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"updates\": %zu, "
                 "\"scalar_items_per_sec\": %.0f, "
                 "\"batched_items_per_sec\": %.0f, \"speedup\": %.3f}%s\n",
                 row.name.c_str(), row.updates, row.scalar_ips,
                 row.batched_ips, row.speedup(),
                 r + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"kernel_backend_sweep\": [\n");
  for (size_t r = 0; r < sweep.size(); ++r) {
    const BackendRow& br = sweep[r];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"backend\": \"%s\", "
                 "\"scalar_items_per_sec\": %.0f, "
                 "\"batched_items_per_sec\": %.0f, \"speedup\": %.3f}%s\n",
                 br.row.name.c_str(), br.backend.c_str(), br.row.scalar_ips,
                 br.row.batched_ips, br.row.speedup(),
                 r + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"parallel_ingest\": [\n");
  for (size_t r = 0; r < parallel.size(); ++r) {
    const ParallelRow& row = parallel[r];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"threads\": %d, \"shards\": %d, "
                 "\"updates\": %zu, "
                 "\"items_per_sec\": %.0f, \"merge_micros\": %.1f}%s\n",
                 row.name.c_str(), row.threads, row.threads, row.updates,
                 row.ips, row.merge_micros,
                 r + 1 < parallel.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"query_latency\": [\n");
  for (size_t r = 0; r < latencies.size(); ++r) {
    std::fprintf(f, "    {\"name\": \"%s\", \"micros_per_call\": %.3f}%s\n",
                 latencies[r].name.c_str(), latencies[r].micros,
                 r + 1 < latencies.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = lps::bench::Quick(argc, argv);
  const int passes = lps::bench::Scaled(quick, 7, 3);
  const uint64_t long_len = quick ? (1 << 16) : (1 << 20);
  const uint64_t short_len = quick ? (1 << 13) : (1 << 17);

  const auto long_stream =
      lps::stream::UniformTurnstile(kN, long_len, 100, 7);
  const auto short_stream =
      lps::stream::UniformTurnstile(kN, short_len, 100, 8);

  std::vector<ResultRow> rows;

  {
    lps::sketch::CountSketch a(17, 96, 1), b(17, 96, 1);
    rows.push_back(Measure("count_sketch[17x96]", long_stream, passes, &a, &b));
  }
  {
    lps::sketch::CountMin a(17, 96, 2), b(17, 96, 2);
    rows.push_back(Measure("count_min[17x96]", long_stream, passes, &a, &b));
  }
  {
    lps::sketch::AmsF2 a(9, 16, 3), b(9, 16, 3);
    rows.push_back(Measure("ams_f2[9x16]", short_stream, passes, &a, &b));
  }
  {
    lps::sketch::StableSketch a(1.0, 96, 4), b(1.0, 96, 4);
    rows.push_back(
        Measure("stable_sketch[p=1,96]", short_stream, passes, &a, &b));
  }
  {
    lps::sketch::DyadicCountMin a(16, 9, 64, 14), b(16, 9, 64, 14);
    rows.push_back(
        Measure("dyadic_count_min[16 lvl]", long_stream, passes, &a, &b));
  }
  {
    lps::norm::L0Estimator a(kN, 25, 13), b(kN, 25, 13);
    rows.push_back(
        MeasureInt("l0_estimator[25 reps]", short_stream, passes, &a, &b));
  }
  {
    lps::recovery::SparseRecovery a(kN, 32, 5), b(kN, 32, 5);
    rows.push_back(
        MeasureInt("sparse_recovery[s=32]", short_stream, passes, &a, &b));
  }
  {
    lps::core::LpSamplerParams params;
    params.n = kN;
    params.p = 1.0;
    params.eps = 0.25;
    params.repetitions = 8;
    params.seed = 10;
    lps::core::LpSampler a(params), b(params);
    rows.push_back(
        Measure("lp_sampler[v=8]", short_stream, passes, &a, &b));
  }
  {
    lps::core::L0Sampler a({kN, 0.25, 0, 8, false}),
        b({kN, 0.25, 0, 8, false});
    rows.push_back(
        MeasureInt("l0_sampler[oracle]", short_stream, passes, &a, &b));
  }
  {
    lps::heavy::CsHeavyHitters::Params params;
    params.n = kN;
    params.p = 1.0;
    params.phi = 0.05;
    params.strict_turnstile = true;
    params.seed = 21;
    lps::heavy::CsHeavyHitters a(params), b(params);
    rows.push_back(
        Measure("cs_heavy_hitters[phi=.05]", long_stream, passes, &a, &b));
  }

  // Per-backend forced sweep: the two speedup-gated structures re-measured
  // under every compiled-in kernel backend, so the JSON carries the full
  // scalar/sse4/avx2 trajectory (and the scalar rows document what the
  // LPS_KERNELS=scalar escape hatch costs).
  std::vector<BackendRow> backend_sweep;
  {
    const auto dispatched = lps::kernels::ActiveBackend();
    for (const auto backend : lps::kernels::AvailableBackends()) {
      lps::kernels::ForceBackendForTesting(backend);
      const std::string backend_name = lps::kernels::BackendName(backend);
      {
        lps::sketch::CountSketch a(17, 96, 1), b(17, 96, 1);
        backend_sweep.push_back({backend_name, Measure("count_sketch[17x96]",
                                               long_stream, passes, &a, &b)});
      }
      {
        lps::sketch::StableSketch a(1.0, 96, 4), b(1.0, 96, 4);
        backend_sweep.push_back(
            {backend_name, Measure("stable_sketch[p=1,96]", short_stream,
                                   passes, &a, &b)});
      }
    }
    lps::kernels::ForceBackendForTesting(dispatched);
  }

  // Parallel ingest: the runtime the library ships (ParallelPipeline, t
  // shards on t workers through bounded rings, then MergeShards). The
  // t-way scaling curve lands in the JSON so the deployment mode's
  // trajectory is tracked from PR to PR.
  std::vector<ParallelRow> parallel;
  for (int t : {1, 2, 4, 8}) {
    parallel.push_back(MeasureParallel<lps::sketch::CountSketch>(
        "count_sketch[17x96]", long_stream, passes, t,
        [] { return lps::sketch::CountSketch(17, 96, 1); }));
  }
  for (int t : {1, 2, 4, 8}) {
    parallel.push_back(MeasureParallel<lps::core::LpSampler>(
        "lp_sampler[v=8]", short_stream, passes, t, [] {
          lps::core::LpSamplerParams params;
          params.n = kN;
          params.p = 1.0;
          params.eps = 0.25;
          params.repetitions = 8;
          params.seed = 10;
          return lps::core::LpSampler(params);
        }));
  }

  // Query-side latencies. The headline section sweeps the universe size
  // n = 2^12 .. 2^22 for the candidate-driven query engine behind
  // LpSampler::Sample and CsHeavyHitters::Query: sub-linear recovery means
  // micros/call must stay flat in n, and the run FAILS (non-zero exit, so
  // the CI smoke gates on it) if n = 2^20 costs more than
  // kMaxQueryScalingRatio times n = 2^12 — the signature of an O(n) scan
  // sneaking back into a query path. One reference-oracle row per family
  // records the retired full-universe scan at n = 2^20 for comparison.
  std::vector<LatencyRow> latencies;
  {
    lps::recovery::SparseRecovery rec(kN, 32, 6);
    const auto sparse = lps::stream::SparseVector(kN, 32, 1000, 7);
    for (const auto& u : sparse) rec.Update(u.index, u.delta);
    latencies.push_back(
        {"sparse_recovery.Recover[s=32]",
         MicrosPerCall(passes, quick ? 20 : 100,
                       [&] { return rec.Recover().ok(); })});
  }
  const std::vector<int> sweep =
      quick ? std::vector<int>{12, 16, 20} : std::vector<int>{12, 14, 16,
                                                              18, 20, 22};
  for (int log_n : sweep) {
    const uint64_t n = 1ULL << log_n;
    lps::core::LpSamplerParams params;
    params.n = n;
    params.p = 1.0;
    params.eps = 0.25;
    params.repetitions = 1;
    params.seed = 11;
    lps::core::LpSampler sampler(params);
    const auto stream = lps::stream::UniformTurnstile(n, 4096, 100, 12);
    StreamDriver driver;
    driver.Add("lp", &sampler).Drive(stream);
    // One tiny update per call invalidates the rounds' recovery cache, so
    // this measures the full candidate descent + TopM + residual every
    // time, not cached snapshot reuse.
    latencies.push_back(
        {"lp_sampler.Sample[n=2^" + std::to_string(log_n) + ",v=1]",
         MicrosPerCall(passes, quick ? 10 : 50, [&] {
           sampler.Update(0, 1.0);
           return sampler.Sample().ok();
         })});
    if (log_n == 20) {
      // The retired O(n * rows) scan, one call (it costs milliseconds —
      // exactly the point).
      const double r = sampler.NormEstimate();
      latencies.push_back(
          {"lp_sampler.RecoverReference_oracle[n=2^20]",
           MicrosPerCall(1, 1, [&] {
             return sampler.round(0).RecoverReference(r).ok();
           })});
    }
  }
  for (int log_n : sweep) {
    const uint64_t n = 1ULL << log_n;
    lps::heavy::CsHeavyHitters::Params params;
    params.n = n;
    params.p = 1.0;
    params.phi = 0.05;
    params.strict_turnstile = true;
    params.seed = 21;
    lps::heavy::CsHeavyHitters hh(params);
    const auto stream =
        lps::stream::PlantedHeavyHitters(n, 5, 1000, 500, false, 16);
    StreamDriver driver;
    driver.Add("hh", &hh).Drive(stream);
    latencies.push_back(
        {"cs_heavy_hitters.Query[n=2^" + std::to_string(log_n) + "]",
         MicrosPerCall(passes, quick ? 10 : 50,
                       [&] { return hh.Query().size(); })});
    if (log_n == 20) {
      latencies.push_back(
          {"cs_heavy_hitters.QueryOracle[n=2^20]",
           MicrosPerCall(1, 1, [&] { return hh.QueryOracle().size(); })});
    }
  }
  {
    lps::sketch::DyadicCountMin tree(16, 9, 64, 15);
    const auto stream =
        lps::stream::PlantedHeavyHitters(kN, 5, 1000, 500, false, 16);
    StreamDriver driver;
    driver.Add("dyadic", &tree).Drive(stream);
    latencies.push_back({"dyadic_count_min.HeavyLeaves",
                         MicrosPerCall(passes, quick ? 50 : 200, [&] {
                           return tree.HeavyLeaves(500.0).size();
                         })});
  }

  lps::bench::Section(
      "C17: ingestion throughput, scalar Update() vs StreamDriver batches");
  Table table({"structure", "updates", "scalar Mitem/s", "batched Mitem/s",
               "speedup"});
  for (const ResultRow& row : rows) {
    table.AddRow({row.name, Table::Fmt("%zu", row.updates),
                  Table::Fmt("%.2f", row.scalar_ips / 1e6),
                  Table::Fmt("%.2f", row.batched_ips / 1e6),
                  Table::Fmt("%.2fx", row.speedup())});
  }
  table.Print();
  std::printf("kernel backend (dispatched): %s\n\n",
              lps::kernels::ActiveBackendName());

  lps::bench::Section("C17: per-kernel-backend forced sweep");
  Table sweep_table(
      {"structure", "backend", "scalar Mitem/s", "batched Mitem/s",
       "speedup"});
  for (const BackendRow& br : backend_sweep) {
    sweep_table.AddRow({br.row.name, br.backend,
                        Table::Fmt("%.2f", br.row.scalar_ips / 1e6),
                        Table::Fmt("%.2f", br.row.batched_ips / 1e6),
                        Table::Fmt("%.2fx", br.row.speedup())});
  }
  sweep_table.Print();

  lps::bench::Section(
      "C17: parallel ingest (ParallelPipeline, t shards on t workers, "
      "then MergeShards)");
  Table parallel_table({"structure", "threads", "Mitem/s", "merge us"});
  for (const ParallelRow& row : parallel) {
    parallel_table.AddRow({row.name, Table::Fmt("%d", row.threads),
                           Table::Fmt("%.2f", row.ips / 1e6),
                           Table::Fmt("%.1f", row.merge_micros)});
  }
  parallel_table.Print();

  lps::bench::Section("C17: query / recovery latency");
  Table lat_table({"query", "us/call"});
  for (const LatencyRow& row : latencies) {
    lat_table.AddRow({row.name, Table::Fmt("%.1f", row.micros)});
  }
  lat_table.Print();

  WriteJson("BENCH_throughput.json", rows, backend_sweep, parallel, latencies,
            quick);
  std::printf("machine-readable results written to BENCH_throughput.json\n");

  // Gates: fail the run (and the CI smoke) if any query path regressed to
  // universe-scan scaling, or if the parallel runtime stopped scaling.
  bool ok = true;
  ok &= CheckQueryScaling(latencies, "lp_sampler.Sample", "[n=2^12,v=1]",
                          "[n=2^20,v=1]");
  ok &= CheckQueryScaling(latencies, "cs_heavy_hitters.Query", "[n=2^12]",
                          "[n=2^20]");
  if (ok) {
    std::printf("query scaling check: n=2^20 within %.1fx of n=2^12 for "
                "all query paths\n",
                kMaxQueryScalingRatio);
  }
  ok &= CheckParallelScaling(parallel, "count_sketch[17x96]");
  ok &= CheckKernelSpeedups(rows, backend_sweep);
  return ok ? 0 : 1;
}
