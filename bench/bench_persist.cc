// Durability economics: what the checkpoint store costs and what the
// delta codec buys. Three tables:
//
//   1. delta compression — raw vs delta-compressed checkpoint bytes per
//      workload regime. The monitoring regime (a bounded hot set per
//      interval) is what the spill path is built for and is GATED at
//      >= 4x; the uniform regime touches most counters per interval and
//      is reported un-gated as the honest worst case;
//   2. spill / rehydrate — ingest throughput with the spill chain
//      attached vs the all-RAM ring, and WindowSketch() latency when the
//      answer is resident vs when it decodes a spilled delta chain;
//   3. cold boot — CheckpointStore::Open (recovery scan over the
//      segments) and TenantRegistry::RestoreAll timing over a populated
//      data dir: the crash-recovery path a SIGKILL'd lps_serve reboots
//      through.
//
// Emits BENCH_persist.json next to the other BENCH_*.json artifacts; the
// CI gates the compression ratio via ci/compare_bench.py --persist. The
// ratio is a deterministic property of codec + workload (no timing), so
// it is asserted even under sanitizer instrumentation.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench/bench_common.h"
#include "src/api/sketch_spec.h"
#include "src/persist/checkpoint_store.h"
#include "src/persist/delta_codec.h"
#include "src/server/tenant_registry.h"
#include "src/stream/generators.h"
#include "src/stream/window_manager.h"
#include "src/util/serialize.h"

namespace {

using lps::BitWriter;
using lps::MakeSketch;
using lps::SketchKind;
using lps::SketchSpec;
using lps::bench::Table;
using lps::persist::CheckpointStore;
using lps::persist::EncodeBestDelta;
using lps::persist::EncodedDelta;
using lps::stream::UpdateStream;
using lps::stream::WindowManager;

// The gate the monitoring regime must clear (ISSUE acceptance; the
// measured ratio on the reference workload is ~6.5x, so this holds with
// margin without being brittle).
constexpr double kMinHotSetRatio = 4.0;

constexpr uint64_t kN = 1 << 16;
constexpr uint64_t kInterval = 1 << 10;
constexpr uint64_t kHotKeys = 8;

struct CompressionRow {
  std::string name;
  uint64_t checkpoints = 0;
  uint64_t raw_bytes = 0;
  uint64_t compressed_bytes = 0;
  double ratio() const {
    return compressed_bytes > 0
               ? double(raw_bytes) / double(compressed_bytes)
               : 0.0;
  }
};

struct SpillRow {
  std::string name;
  double ram_items_per_sec = 0;
  double spill_items_per_sec = 0;
  double resident_micros = 0;
  double rehydrate_micros = 0;
};

struct RecoveryRow {
  uint64_t tenants = 0;
  uint64_t store_bytes = 0;
  double open_millis = 0;
  double restore_millis = 0;
};

template <typename Fn>
double BestSeconds(int passes, Fn&& fn) {
  double best = 1e300;
  for (int p = 0; p < passes; ++p) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    const double seconds = std::chrono::duration<double>(stop - start).count();
    if (seconds < best) best = seconds;
  }
  return best;
}

std::string MakeTempDir() {
  char tmpl[] = "/tmp/lps_bench_persist_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  if (dir == nullptr) {
    std::fprintf(stderr, "mkdtemp failed\n");
    std::exit(1);
  }
  return std::string(dir);
}

void RemoveTree(const std::string& dir) {
  const std::string command = "rm -rf '" + dir + "'";
  [[maybe_unused]] const int rc = std::system(command.c_str());
}

SketchSpec LpSamplerSpec() {
  SketchSpec spec;
  spec.kind = SketchKind::kLpSampler;
  spec.n = kN;
  spec.p = 1.0;
  spec.eps = 0.25;
  spec.repetitions = 8;
  spec.seed = 10;
  return spec;
}

SketchSpec CountSketchSpec() {
  SketchSpec spec;
  spec.kind = SketchKind::kCountSketch;
  spec.n = kN;
  spec.rows = 17;
  spec.buckets = 96;
  spec.seed = 1;
  return spec;
}

/// Seals `checkpoints` checkpoints of `spec`'s sketch over `stream`
/// (kInterval updates apiece) and delta-encodes each against its
/// predecessor — exactly what the spill chain stores.
CompressionRow MeasureCompression(const std::string& name,
                                  const SketchSpec& spec,
                                  const UpdateStream& stream,
                                  uint64_t checkpoints) {
  auto sketch = MakeSketch(spec);
  CompressionRow row;
  row.name = name;
  row.checkpoints = checkpoints;
  std::vector<uint64_t> prev_words;
  size_t prev_bits = 0;
  for (uint64_t c = 0; c < checkpoints; ++c) {
    sketch->UpdateBatch(stream.data() + c * kInterval, kInterval);
    BitWriter writer;
    sketch->Serialize(&writer);
    const EncodedDelta delta = EncodeBestDelta(writer.words(),
                                               writer.bit_count(), prev_words,
                                               prev_bits);
    row.raw_bytes += (writer.bit_count() + 7) / 8;
    row.compressed_bytes += delta.bytes.size();
    prev_words = writer.words();
    prev_bits = writer.bit_count();
  }
  return row;
}

/// Spill-chain cost on one structure: ingest throughput with and without
/// the store attached, plus WindowSketch latency for a resident answer
/// vs one that decodes a spilled delta chain.
SpillRow MeasureSpill(const std::string& name, const SketchSpec& spec,
                      const UpdateStream& stream, int passes) {
  SpillRow row;
  row.name = name;

  {
    auto sketch = MakeSketch(spec);
    WindowManager::Options options;
    options.checkpoint_interval = kInterval;
    row.ram_items_per_sec =
        double(stream.size()) / BestSeconds(passes, [&] {
          sketch->Reset();
          WindowManager manager(sketch.get(), options);
          manager.PushBatch(stream.data(), stream.size());
        });
  }

  const std::string dir = MakeTempDir();
  {
    auto sketch = MakeSketch(spec);
    WindowManager::Options options;
    options.checkpoint_interval = kInterval;
    row.spill_items_per_sec =
        double(stream.size()) / BestSeconds(passes, [&] {
          sketch->Reset();
          WindowManager manager(sketch.get(), options);
          auto opened = CheckpointStore::Open(dir);
          if (!opened.ok()) std::abort();
          WindowManager::SpillOptions spill;
          spill.store = opened.value().get();
          spill.stream_key = "w:bench";
          spill.resident_checkpoints = 2;
          spill.keyframe_interval = 8;
          manager.AttachSpill(spill);
          manager.PushBatch(stream.data(), stream.size());
          if (!manager.last_spill_error().ok()) std::abort();
        });

    // One populated manager for the query-latency split.
    sketch->Reset();
    WindowManager manager(sketch.get(), options);
    auto opened = CheckpointStore::Open(dir);
    if (!opened.ok()) std::abort();
    WindowManager::SpillOptions spill;
    spill.store = opened.value().get();
    spill.stream_key = "w:bench-latency";
    spill.resident_checkpoints = 2;
    spill.keyframe_interval = 8;
    manager.AttachSpill(spill);
    manager.PushBatch(stream.data(), stream.size());
    row.resident_micros = 1e6 * BestSeconds(passes, [&] {
      // Start rounds to the newest checkpoint — resident by budget.
      const auto window = manager.WindowSketch(kInterval);
      if (window.sketch == nullptr) std::abort();
    });
    row.rehydrate_micros = 1e6 * BestSeconds(passes, [&] {
      // Start rounds to the OLDEST checkpoint — spilled, so the call
      // decodes the delta chain from its nearest keyframe.
      const auto window = manager.WindowSketch(manager.updates_seen());
      if (window.sketch == nullptr) std::abort();
    });
  }
  RemoveTree(dir);
  return row;
}

/// Populates a data dir with `tenants` windowed tenants and times the
/// cold-boot path over it: the store's recovery scan and the registry's
/// RestoreAll.
RecoveryRow MeasureRecovery(uint64_t tenants, uint64_t updates_per_tenant,
                            int passes) {
  const std::string dir = MakeTempDir();
  {
    auto opened = CheckpointStore::Open(dir);
    if (!opened.ok()) std::abort();
    lps::server::TenantRegistry registry;
    registry.AttachStore(opened.value().get(),
                         lps::server::TenantRegistry::PersistOptions());
    for (uint64_t t = 0; t < tenants; ++t) {
      lps::server::SketchConfig config;
      config.spec.kind = SketchKind::kCsHeavyHitters;
      config.spec.n = 1 << 14;
      config.spec.p = 1.0;
      config.spec.phi = 0.05;
      config.spec.seed = t;
      config.window_checkpoint = 4096;
      const std::string tenant = "tenant" + std::to_string(t);
      if (!registry.Create(tenant, "stream", config).ok()) std::abort();
      const auto updates =
          lps::stream::UniformTurnstile(config.spec.n, updates_per_tenant,
                                        100, 1000 + t);
      if (!registry.Ingest(tenant, "stream", updates).ok()) std::abort();
    }
    if (registry.PersistTenants(false) != tenants) std::abort();
  }

  RecoveryRow row;
  row.tenants = tenants;
  row.open_millis = 1e3 * BestSeconds(passes, [&] {
    auto opened = CheckpointStore::Open(dir);
    if (!opened.ok()) std::abort();
  });
  row.restore_millis = 1e3 * BestSeconds(passes, [&] {
    auto opened = CheckpointStore::Open(dir);
    if (!opened.ok()) std::abort();
    lps::server::TenantRegistry registry;
    registry.AttachStore(opened.value().get(),
                         lps::server::TenantRegistry::PersistOptions());
    if (registry.RestoreAll() != tenants) std::abort();
  });
  {
    auto opened = CheckpointStore::Open(dir);
    if (opened.ok()) {
      for (const std::string& key : opened.value()->Keys()) {
        row.store_bytes += opened.value()->KeyBytes(key);
      }
    }
  }
  RemoveTree(dir);
  return row;
}

void WriteJson(const char* path, const std::vector<CompressionRow>& compression,
               const std::vector<SpillRow>& spill,
               const std::vector<RecoveryRow>& recovery, bool quick) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"persist\",\n  \"quick\": %s,\n",
               quick ? "true" : "false");
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"delta_compression\": [\n");
  for (size_t r = 0; r < compression.size(); ++r) {
    const CompressionRow& row = compression[r];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"checkpoints\": %llu, "
                 "\"raw_bytes\": %llu, \"compressed_bytes\": %llu, "
                 "\"ratio\": %.2f}%s\n",
                 row.name.c_str(),
                 static_cast<unsigned long long>(row.checkpoints),
                 static_cast<unsigned long long>(row.raw_bytes),
                 static_cast<unsigned long long>(row.compressed_bytes),
                 row.ratio(), r + 1 < compression.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"spill\": [\n");
  for (size_t r = 0; r < spill.size(); ++r) {
    const SpillRow& row = spill[r];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"ram_items_per_sec\": %.0f, "
                 "\"spill_items_per_sec\": %.0f, "
                 "\"resident_micros\": %.3f, "
                 "\"rehydrate_micros\": %.3f}%s\n",
                 row.name.c_str(), row.ram_items_per_sec,
                 row.spill_items_per_sec, row.resident_micros,
                 row.rehydrate_micros, r + 1 < spill.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"recovery\": [\n");
  for (size_t r = 0; r < recovery.size(); ++r) {
    const RecoveryRow& row = recovery[r];
    std::fprintf(f,
                 "    {\"tenants\": %llu, \"store_bytes\": %llu, "
                 "\"open_millis\": %.3f, \"restore_millis\": %.3f}%s\n",
                 static_cast<unsigned long long>(row.tenants),
                 static_cast<unsigned long long>(row.store_bytes),
                 row.open_millis, row.restore_millis,
                 r + 1 < recovery.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = lps::bench::Quick(argc, argv);
  const int passes = lps::bench::Scaled(quick, 5, 2);
  const uint64_t checkpoints = quick ? 8 : 32;
  const uint64_t recovery_tenants = quick ? 4 : 16;
  const uint64_t recovery_updates = quick ? (1 << 13) : (1 << 15);

  const auto hot_stream = lps::stream::HotSetTurnstile(
      kN, checkpoints * kInterval, kHotKeys, kInterval, 100, 77);
  const auto uniform_stream = lps::stream::UniformTurnstile(
      kN, checkpoints * kInterval, 100, 77);

  std::vector<CompressionRow> compression;
  compression.push_back(MeasureCompression(
      "lp_sampler[v=8]/hot_set", LpSamplerSpec(), hot_stream, checkpoints));
  compression.push_back(MeasureCompression("lp_sampler[v=8]/uniform",
                                           LpSamplerSpec(), uniform_stream,
                                           checkpoints));
  compression.push_back(MeasureCompression("count_sketch[17x96]/hot_set",
                                           CountSketchSpec(), hot_stream,
                                           checkpoints));

  std::vector<SpillRow> spill;
  spill.push_back(
      MeasureSpill("lp_sampler[v=8]", LpSamplerSpec(), hot_stream, passes));

  std::vector<RecoveryRow> recovery;
  recovery.push_back(
      MeasureRecovery(recovery_tenants, recovery_updates, passes));

  lps::bench::Section(
      "delta compression: checkpoint bytes, raw vs delta-compressed");
  Table compression_table(
      {"workload", "checkpoints", "raw KiB", "compressed KiB", "ratio"});
  for (const CompressionRow& row : compression) {
    compression_table.AddRow(
        {row.name,
         Table::Fmt("%llu", (unsigned long long)row.checkpoints),
         Table::Fmt("%.1f", row.raw_bytes / 1024.0),
         Table::Fmt("%.1f", row.compressed_bytes / 1024.0),
         Table::Fmt("%.2fx", row.ratio())});
  }
  compression_table.Print();

  lps::bench::Section("spill chain: ingest overhead and query latency");
  Table spill_table({"structure", "ram Mitem/s", "spill Mitem/s",
                     "resident us", "rehydrate us"});
  for (const SpillRow& row : spill) {
    spill_table.AddRow({row.name,
                        Table::Fmt("%.2f", row.ram_items_per_sec / 1e6),
                        Table::Fmt("%.2f", row.spill_items_per_sec / 1e6),
                        Table::Fmt("%.1f", row.resident_micros),
                        Table::Fmt("%.1f", row.rehydrate_micros)});
  }
  spill_table.Print();

  lps::bench::Section("cold boot: recovery scan + tenant restore");
  Table recovery_table(
      {"tenants", "store KiB", "open ms", "restore ms"});
  for (const RecoveryRow& row : recovery) {
    recovery_table.AddRow(
        {Table::Fmt("%llu", (unsigned long long)row.tenants),
         Table::Fmt("%.1f", row.store_bytes / 1024.0),
         Table::Fmt("%.3f", row.open_millis),
         Table::Fmt("%.3f", row.restore_millis)});
  }
  recovery_table.Print();

  WriteJson("BENCH_persist.json", compression, spill, recovery, quick);
  std::printf("machine-readable results written to BENCH_persist.json\n");

  // The compression gate: deterministic (codec + workload, no timing),
  // so it holds under sanitizers and on loaded runners alike.
  bool ok = true;
  for (const CompressionRow& row : compression) {
    if (row.name != "lp_sampler[v=8]/hot_set") continue;
    if (row.ratio() < kMinHotSetRatio) {
      std::fprintf(stderr,
                   "COMPRESSION REGRESSION: %s compresses %.2fx < %.2fx — "
                   "the delta codec stopped exploiting checkpoint "
                   "locality\n",
                   row.name.c_str(), row.ratio(), kMinHotSetRatio);
      ok = false;
    } else {
      std::printf("compression gate: %s = %.2fx (>= %.2fx)\n",
                  row.name.c_str(), row.ratio(), kMinHotSetRatio);
    }
  }
  return ok ? 0 : 1;
}
