// Claims C6, C7, C8, C15 (Section 3): the three duplicates algorithms and
// the positive-coordinate generalization, with space accounting against
// the baselines the paper improves on.
#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/ako_sampler.h"
#include "src/duplicates/duplicates.h"
#include "src/duplicates/positive_finder.h"
#include "src/stream/generators.h"
#include "src/util/bits.h"

namespace {

using lps::bench::Table;

bool IsDuplicate(const lps::stream::LetterStream& letters, uint64_t letter) {
  int count = 0;
  for (uint64_t l : letters) count += (l == letter);
  return count >= 2;
}

size_t AkoL1Bits(uint64_t n) {
  // The log^3 n baseline (GR's bound, realized here by an AKO-configured
  // L1 sampler with the same repetitions as our finder).
  lps::core::LpSamplerParams params;
  params.n = n;
  params.p = 1.0;
  params.eps = 0.5;
  params.seed = 1;
  lps::core::AkoSampler ako(params);
  return ako.SpaceBits(2 * lps::CeilLog2(n));
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = lps::bench::Quick(argc, argv);

  // --- C6: Theorem 3 on streams of length n+1. ---
  lps::bench::Section("C6 (Theorem 3): duplicates in streams of length n+1");
  {
    const int trials = lps::bench::Scaled(quick, 60, 15);
    Table table({"n", "found rate", "wrong answers", "Thm3 bits",
                 "Thm3 growth", "AKO bits (log^3)", "hash set (n log n)",
                 "hash growth"});
    size_t prev_bits = 0, prev_hash = 0;
    for (uint64_t n : {256ULL, 1024ULL, 4096ULL, 16384ULL}) {
      int found = 0, wrong = 0;
      size_t bits = 0;
      for (int trial = 0; trial < trials; ++trial) {
        const auto letters =
            lps::stream::DuplicateStream(n, 1, static_cast<uint64_t>(trial));
        lps::duplicates::DuplicateFinder finder(
            {n, 0.2, 0, 60000 + static_cast<uint64_t>(trial)});
        bits = finder.SpaceBits(2 * lps::CeilLog2(n));
        for (uint64_t l : letters) finder.ProcessItem(l);
        auto res = finder.Find();
        if (res.ok()) {
          ++found;
          if (!IsDuplicate(letters, res.value())) ++wrong;
        }
      }
      const size_t hash_bits = n * lps::CeilLog2(n);
      table.AddRow(
          {Table::Fmt("%zu", n),
           Table::Fmt("%.3f", static_cast<double>(found) / trials),
           Table::Fmt("%d", wrong), Table::Fmt("%zu", bits),
           prev_bits ? Table::Fmt("%.2fx", static_cast<double>(bits) / prev_bits)
                     : "-",
           Table::Fmt("%zu", AkoL1Bits(n)), Table::Fmt("%zu", hash_bits),
           prev_hash
               ? Table::Fmt("%.2fx", static_cast<double>(hash_bits) / prev_hash)
               : "-"});
      prev_bits = bits;
      prev_hash = hash_bits;
    }
    table.Print();
    std::printf(
        "Expected: found rate >= 1 - delta, zero wrong answers; Thm3 bits\n"
        "grow polylogarithmically (~1.2x per 4x n) vs the hash set's linear\n"
        "4x — the asymptotic win; the AKO-based log^3 baseline is a log\n"
        "factor above Thm3 at every n.\n\n");
  }

  // --- C7: Theorem 4 on streams of length n-s. ---
  lps::bench::Section("C7 (Theorem 4): length n-s, certified NO-DUPLICATE");
  {
    const int trials = lps::bench::Scaled(quick, 40, 10);
    const uint64_t n = 2048;
    Table table({"s", "planted dups", "exact answers", "dup found",
                 "no-dup certified", "fails", "space bits"});
    for (uint64_t s : {0ULL, 8ULL, 32ULL, 128ULL}) {
      for (uint64_t dups : {0ULL, 3ULL, 200ULL}) {
        if (2 * dups > n - s) continue;
        int exact = 0, dup_found = 0, certified = 0, fails = 0;
        size_t bits = 0;
        for (int trial = 0; trial < trials; ++trial) {
          const auto letters = lps::stream::ShortStreamWithDuplicates(
              n, s, dups, static_cast<uint64_t>(trial));
          lps::duplicates::SparseDuplicateFinder finder(
              {n, s, 0.2, 0, 70000 + static_cast<uint64_t>(trial)});
          bits = finder.SpaceBits(2 * lps::CeilLog2(n));
          for (uint64_t l : letters) finder.ProcessItem(l);
          const auto outcome = finder.Find();
          exact += outcome.exact;
          switch (outcome.kind) {
            case lps::duplicates::SparseDuplicateFinder::Kind::kDuplicate:
              ++dup_found;
              break;
            case lps::duplicates::SparseDuplicateFinder::Kind::kNoDuplicate:
              ++certified;
              break;
            case lps::duplicates::SparseDuplicateFinder::Kind::kFail:
              ++fails;
              break;
          }
        }
        table.AddRow({Table::Fmt("%zu", s), Table::Fmt("%zu", dups),
                      Table::Fmt("%d/%d", exact, trials),
                      Table::Fmt("%d", dup_found), Table::Fmt("%d", certified),
                      Table::Fmt("%d", fails), Table::Fmt("%zu", bits)});
      }
    }
    table.Print();
    std::printf(
        "Expected: dups=0 rows certify NO-DUPLICATE exactly; sparse dup\n"
        "rows answer exactly; dense rows (200 dups) fall back to sampling;\n"
        "space grows additively as O(s log n) + O(log^2 n).\n\n");
  }

  // --- C8: length n+s and the min{log^2 n, (n/s) log n} crossover. ---
  lps::bench::Section("C8 (Section 3): length n+s strategy crossover");
  {
    const int trials = lps::bench::Scaled(quick, 60, 15);
    const uint64_t n = 4096;
    Table table({"s", "n/s", "auto strategy", "found rate", "wrong",
                 "sampling bits", "Thm3 bits"});
    for (uint64_t s : {1ULL, 16ULL, 256ULL, 2048ULL}) {
      int found = 0, wrong = 0;
      size_t sampling_bits = 0, thm3_bits = 0;
      lps::duplicates::OversampledDuplicateFinder::Strategy strategy{};
      for (int trial = 0; trial < trials; ++trial) {
        const auto letters =
            lps::stream::DuplicateStream(n, s, static_cast<uint64_t>(trial));
        lps::duplicates::OversampledDuplicateFinder finder(
            {n, s, 0.25, 0, 80000 + static_cast<uint64_t>(trial), 0});
        strategy = finder.strategy();
        for (uint64_t l : letters) finder.ProcessItem(l);
        auto res = finder.Find();
        if (res.ok()) {
          ++found;
          if (!IsDuplicate(letters, res.value())) ++wrong;
        }
        if (strategy ==
            lps::duplicates::OversampledDuplicateFinder::Strategy::
                kPositionSampling) {
          sampling_bits = finder.SpaceBits(2 * lps::CeilLog2(n));
        } else {
          thm3_bits = finder.SpaceBits(2 * lps::CeilLog2(n));
        }
      }
      table.AddRow(
          {Table::Fmt("%zu", s), Table::Fmt("%.1f", static_cast<double>(n) / s),
           strategy == lps::duplicates::OversampledDuplicateFinder::Strategy::
                           kPositionSampling
               ? "position-sampling"
               : "L1-sampler",
           Table::Fmt("%.3f", static_cast<double>(found) / trials),
           Table::Fmt("%d", wrong),
           sampling_bits ? Table::Fmt("%zu", sampling_bits) : "-",
           thm3_bits ? Table::Fmt("%zu", thm3_bits) : "-"});
    }
    table.Print();
    std::printf("Expected: crossover at n/s = log2 n = 12; position-sampling\n"
                "bits shrink with s while Thm3 bits are s-independent.\n\n");
  }

  // --- C15: the positive-coordinate generalization. ---
  lps::bench::Section("C15: find i with x_i > 0 (general update streams)");
  {
    const int trials = lps::bench::Scaled(quick, 60, 15);
    const uint64_t n = 1024;
    Table table({"scenario", "found", "certified none", "fails", "wrong"});
    struct Scenario {
      const char* name;
      int positives;        // coordinates with +mass
      int negatives;        // coordinates with -1
      int64_t pos_value;
      uint64_t s_budget;    // recovery budget (5x coordinates)
    };
    for (const Scenario& sc :
         {Scenario{"deficit<0, sparse positives", 2, 100, 60, 4},
          Scenario{"deficit>0, budgeted recovery", 2, 300, 20, 64},
          // deliberately under-provisioned: graceful degradation, never a
          // wrong answer (the recovery cap is far below the true deficit)
          Scenario{"deficit>0, budget too small", 2, 300, 20, 4},
          // certification requires x inside the 5*s_budget recovery cap
          Scenario{"deficit>0, no positives (sparse)", 0, 15, 0, 4},
          Scenario{"dense positives", 150, 400, 3, 4}}) {
      int found = 0, none = 0, fails = 0, wrong = 0;
      for (int trial = 0; trial < trials; ++trial) {
        lps::duplicates::PositiveFinder finder(
            {n, sc.s_budget, 0.2, 0, 90000 + static_cast<uint64_t>(trial)});
        for (int j = 0; j < sc.negatives; ++j) {
          finder.Update(static_cast<uint64_t>(j), -1);
        }
        const uint64_t pos_base = n - 256;  // disjoint from the negatives
        for (int j = 0; j < sc.positives; ++j) {
          finder.Update(pos_base + static_cast<uint64_t>(j), sc.pos_value);
        }
        const auto outcome = finder.Find();
        switch (outcome.kind) {
          case lps::duplicates::PositiveFinder::Kind::kFound:
            ++found;
            if (outcome.index < pos_base) ++wrong;
            break;
          case lps::duplicates::PositiveFinder::Kind::kNone:
            ++none;
            break;
          case lps::duplicates::PositiveFinder::Kind::kFail:
            ++fails;
            break;
        }
      }
      table.AddRow({sc.name, Table::Fmt("%d", found), Table::Fmt("%d", none),
                    Table::Fmt("%d", fails), Table::Fmt("%d", wrong)});
    }
    table.Print();
    std::printf(
        "Expected: positives found whenever they exist and the recovery is\n"
        "budgeted for the deficit (Theorem 4's contract); the deliberately\n"
        "under-budgeted row degrades to sampler-only success but NEVER\n"
        "reports a wrong index; 'none' certified exactly.\n");
  }
  return 0;
}
