#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/comm/augmented_indexing.h"
#include "src/comm/reductions.h"
#include "src/comm/universal_relation.h"

namespace lps::comm {
namespace {

TEST(AugmentedIndexing, InstanceShape) {
  const auto instance = MakeAugmentedIndexing(16, 8, 1);
  EXPECT_EQ(instance.z.size(), 16u);
  for (uint32_t symbol : instance.z) EXPECT_LT(symbol, 256u);
  EXPECT_LT(instance.index, 16);
}

TEST(URInstanceTest, HasExactlyRequestedDiffs) {
  const auto instance = MakeURInstance(500, 7, 0.3, 2);
  uint64_t diffs = 0;
  for (uint64_t i = 0; i < instance.n; ++i) {
    diffs += instance.x[i] != instance.y[i];
  }
  EXPECT_EQ(diffs, 7u);
}

TEST(TrivialUR, AlwaysCorrectAtNBits) {
  const auto instance = MakeURInstance(300, 3, 0.5, 3);
  const auto result = RunTrivialUR(instance);
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.correct);
  EXPECT_EQ(result.stats.TotalBits(), 300u);
  EXPECT_EQ(result.stats.rounds(), 1);
}

TEST(OneRoundUR, CorrectWithSingleDifference) {
  int ok = 0, correct = 0;
  const int trials = 30;
  for (uint64_t trial = 0; trial < trials; ++trial) {
    const auto instance = MakeURInstance(512, 1, 0.4, 100 + trial);
    const auto result = RunOneRoundUR(instance, 0.1, 200 + trial);
    ok += result.ok;
    correct += result.correct;
  }
  EXPECT_GE(ok, trials - 3);
  EXPECT_EQ(correct, ok);  // any produced index must be a real difference
}

TEST(OneRoundUR, CorrectWithManyDifferences) {
  int correct = 0;
  const int trials = 25;
  for (uint64_t trial = 0; trial < trials; ++trial) {
    const auto instance = MakeURInstance(512, 100, 0.5, 300 + trial);
    const auto result = RunOneRoundUR(instance, 0.1, 400 + trial);
    correct += result.ok && result.correct;
  }
  EXPECT_GE(correct, trials - 3);
}

TEST(OneRoundUR, MessageIsLog2Shape) {
  const auto small = MakeURInstance(1 << 8, 4, 0.4, 5);
  const auto large = MakeURInstance(1 << 16, 4, 0.4, 6);
  const auto r_small = RunOneRoundUR(small, 0.25, 7);
  const auto r_large = RunOneRoundUR(large, 0.25, 8);
  EXPECT_EQ(r_small.stats.rounds(), 1);
  // Levels scale with log n; measurement width is fixed 61-bit field
  // elements, so the bit ratio tracks the level count ratio (~2).
  const double ratio = static_cast<double>(r_large.stats.TotalBits()) /
                       static_cast<double>(r_small.stats.TotalBits());
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 3.0);
  // And the randomized protocol beats the trivial n-bit one at n = 2^16.
  EXPECT_LT(r_large.stats.TotalBits(), large.n);
}

TEST(TwoRoundUR, CorrectAcrossDifferenceScales) {
  for (uint64_t diffs : {1ULL, 5ULL, 60ULL, 700ULL}) {
    int correct = 0;
    const int trials = 25;
    for (uint64_t trial = 0; trial < trials; ++trial) {
      const auto instance = MakeURInstance(2048, diffs, 0.3, 500 + trial);
      const auto result = RunTwoRoundUR(instance, 0.05, 600 + trial);
      correct += result.ok && result.correct;
    }
    EXPECT_GE(correct, trials * 4 / 5) << "diffs " << diffs;
  }
}

TEST(TwoRoundUR, RoundsAndMessageShape) {
  const auto instance = MakeURInstance(1 << 14, 50, 0.3, 9);
  const auto result = RunTwoRoundUR(instance, 0.1, 10);
  ASSERT_EQ(result.stats.rounds(), 2);
  // Round 1 is the cheap fingerprint pass; both rounds together are far
  // below the one-round protocol's log^2 message.
  const auto one_round = RunOneRoundUR(instance, 0.1, 11);
  EXPECT_LT(result.stats.TotalBits(), one_round.stats.TotalBits() / 2);
}

TEST(Symmetrized, PreservesCorrectnessAndMapsIndexBack) {
  int correct = 0;
  const int trials = 20;
  for (uint64_t trial = 0; trial < trials; ++trial) {
    const auto instance = MakeURInstance(512, 3, 0.5, 700 + trial);
    const auto result = RunSymmetrized(
        instance, 800 + trial, [](const URInstance& inst, uint64_t seed) {
          return RunOneRoundUR(inst, 0.1, seed);
        });
    correct += result.ok && result.correct;
  }
  EXPECT_GE(correct, trials - 3);
}

TEST(Symmetrized, OutputIsUniformOverDifferences) {
  // Lemma 7: two differing indices must be reported (close to) equally
  // often, even though the raw protocol may be biased.
  URInstance instance;
  instance.n = 256;
  instance.x.assign(256, 0);
  instance.y.assign(256, 0);
  instance.y[3] = 1;
  instance.y[200] = 1;
  int first = 0, total = 0;
  const int trials = 400;
  for (uint64_t trial = 0; trial < trials; ++trial) {
    const auto result = RunSymmetrized(
        instance, 900 + trial, [](const URInstance& inst, uint64_t seed) {
          return RunOneRoundUR(inst, 0.25, seed);
        });
    if (result.ok && result.correct) {
      ++total;
      first += result.index == 3;
    }
  }
  ASSERT_GE(total, 300);
  const double frac = static_cast<double>(first) / total;
  EXPECT_GT(frac, 0.4);
  EXPECT_LT(frac, 0.6);
}

TEST(Symmetrized, MakesEvenDeterministicProtocolsUniform) {
  // Lemma 7's cleanest demonstration: the trivial protocol ALWAYS returns
  // the first differing index; conjugated by a random permutation + mask it
  // must return each of two differences about equally often.
  URInstance instance;
  instance.n = 128;
  instance.x.assign(128, 0);
  instance.y.assign(128, 0);
  instance.y[10] = 1;
  instance.y[90] = 1;
  int first = 0;
  const int trials = 600;
  for (uint64_t trial = 0; trial < trials; ++trial) {
    const auto result = RunSymmetrized(
        instance, 5000 + trial,
        [](const URInstance& inst, uint64_t) { return RunTrivialUR(inst); });
    ASSERT_TRUE(result.ok && result.correct);
    first += result.index == 10;
  }
  const double frac = static_cast<double>(first) / trials;
  EXPECT_GT(frac, 0.42);
  EXPECT_LT(frac, 0.58);
}

TEST(OneRoundUR, AllCoordinatesDiffer) {
  // x and y complementary: every index is a valid answer.
  URInstance instance;
  instance.n = 256;
  instance.x.assign(256, 0);
  instance.y.assign(256, 1);
  int ok = 0;
  for (uint64_t trial = 0; trial < 10; ++trial) {
    const auto result = RunOneRoundUR(instance, 0.1, 6000 + trial);
    if (result.ok) {
      EXPECT_TRUE(result.correct);
      ++ok;
    }
  }
  EXPECT_GE(ok, 8);
}

TEST(TwoRoundUR, TinyUniverse) {
  const auto instance = MakeURInstance(16, 2, 0.5, 1);
  int correct = 0;
  for (uint64_t trial = 0; trial < 20; ++trial) {
    const auto result = RunTwoRoundUR(instance, 0.1, 7000 + trial);
    correct += result.ok && result.correct;
  }
  EXPECT_GE(correct, 15);
}

TEST(Reductions, AugmentedIndexingLengthOne) {
  // s = 1: Bob has no prefix; the UR instance is a single block.
  int correct = 0;
  for (uint64_t trial = 0; trial < 15; ++trial) {
    const auto instance = MakeAugmentedIndexing(1, 4, 8000 + trial);
    const auto result = RunAiViaUr(instance, 0.1, 8100 + trial);
    correct += result.ok && result.correct;
  }
  EXPECT_GE(correct, 12);  // single block: the sample always decodes z_1
}

TEST(Reductions, AiViaUrDecodesBeyondGuessing) {
  // Theorem 6: success must be well above the 2^-t guessing floor.
  int correct = 0;
  const int trials = 30;
  for (uint64_t trial = 0; trial < trials; ++trial) {
    const auto instance = MakeAugmentedIndexing(6, 6, 1000 + trial);
    const auto result = RunAiViaUr(instance, 0.1, 1100 + trial);
    correct += result.ok && result.correct;
  }
  // Guessing would give ~trials/64; the reduction targets > 1/2.
  EXPECT_GE(correct, trials / 2);
}

TEST(Reductions, UrViaDuplicatesFindsDifference) {
  int ok = 0, correct = 0;
  const int trials = 30;
  for (uint64_t trial = 0; trial < trials; ++trial) {
    const auto instance = MakeURInstance(128, 10, 0.5, 1200 + trial);
    const auto result = RunUrViaDuplicates(instance, 0.2, 1300 + trial);
    if (result.ok) {
      ++ok;
      correct += result.correct;
    }
  }
  // |S cap P| + |T cap P| >= n+1 holds with probability > 1/8; combined
  // with the finder's success this must fire a decent fraction of runs.
  EXPECT_GE(ok, trials / 8);
  EXPECT_EQ(correct, ok);  // produced answers are always real differences
}

TEST(Reductions, AiViaHeavyHittersDecodesSymbol) {
  int correct = 0;
  const int trials = 20;
  for (uint64_t trial = 0; trial < trials; ++trial) {
    const auto instance = MakeAugmentedIndexing(8, 6, 1400 + trial);
    const auto result = RunAiViaHeavyHitters(instance, 1.0, 0.25, 1500 + trial);
    correct += result.ok && result.correct;
  }
  EXPECT_GE(correct, trials * 4 / 5);
}

TEST(Reductions, HeavyHitterMessageGrowsWithPhiInverse) {
  const auto instance = MakeAugmentedIndexing(8, 6, 1);
  const auto coarse = RunAiViaHeavyHitters(instance, 1.0, 0.25, 2);
  const auto fine = RunAiViaHeavyHitters(instance, 1.0, 0.05, 2);
  EXPECT_GT(fine.stats.TotalBits(), 3 * coarse.stats.TotalBits());
}

}  // namespace
}  // namespace lps::comm
