#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/kernels/kernels.h"
#include "src/sketch/ams_f2.h"
#include "src/sketch/count_min.h"
#include "src/sketch/count_sketch.h"
#include "src/sketch/dyadic.h"
#include "src/sketch/stable_sketch.h"
#include "src/stream/exact_vector.h"
#include "src/stream/generators.h"
#include "src/util/random.h"
#include "src/util/serialize.h"

namespace lps::sketch {
namespace {

TEST(CountSketch, ExactOnVerySparseVectors) {
  // With far more buckets than non-zeros, collisions are rare and the
  // median recovers values exactly.
  CountSketch cs(11, 256, 1);
  cs.Update(10, 5.0);
  cs.Update(200, -3.0);
  EXPECT_DOUBLE_EQ(cs.Query(10), 5.0);
  EXPECT_DOUBLE_EQ(cs.Query(200), -3.0);
  EXPECT_DOUBLE_EQ(cs.Query(42), 0.0);
}

TEST(CountSketch, LinearityOfUpdates) {
  CountSketch cs(9, 64, 2);
  cs.Update(7, 2.0);
  cs.Update(7, 3.0);
  cs.Update(7, -1.0);
  EXPECT_DOUBLE_EQ(cs.Query(7), 4.0);
}

// Lemma 1: |x_i - x*_i| <= Err_2^m(x) / sqrt(m) for all i w.h.p.
TEST(CountSketch, Lemma1PointErrorBound) {
  const uint64_t n = 2048;
  const int m = 16;
  const auto stream = stream::ZipfianVector(n, 1.0, 10000, true, 3);
  stream::ExactVector x(n);
  x.Apply(stream);
  const double bound = x.ErrM2(m) / std::sqrt(static_cast<double>(m));

  int violations = 0;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    CountSketch cs(15, 6 * m, seed);
    for (const auto& u : stream) {
      cs.Update(u.index, static_cast<double>(u.delta));
    }
    double worst = 0;
    for (uint64_t i = 0; i < n; ++i) {
      worst = std::max(worst,
                       std::abs(cs.Query(i) - static_cast<double>(x[i])));
    }
    if (worst > bound) ++violations;
  }
  EXPECT_LE(violations, 1) << "point error exceeded Err/sqrt(m) too often";
}

TEST(CountSketch, TopMFindsDominantCoordinates) {
  const uint64_t n = 1024;
  CountSketch cs(13, 96, 4);
  cs.Update(17, 1000.0);
  cs.Update(900, -800.0);
  cs.Update(55, 600.0);
  Rng rng(5);
  for (int j = 0; j < 200; ++j) {
    cs.Update(rng.Below(n), (rng.Next() & 1) ? 1.0 : -1.0);
  }
  const auto top = cs.TopM(n, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].first, 17u);
  EXPECT_EQ(top[1].first, 900u);
  EXPECT_EQ(top[2].first, 55u);
  EXPECT_NEAR(top[0].second, 1000.0, 100.0);
}

TEST(CountSketch, ResidualL2Estimate) {
  const uint64_t n = 4096;
  const auto stream = stream::UniformTurnstile(n, 8000, 20, 6);
  stream::ExactVector x(n);
  x.Apply(stream);
  CountSketch cs(15, 240, 7);
  for (const auto& u : stream) cs.Update(u.index, static_cast<double>(u.delta));
  // Estimate ||x||_2 (empty sparse part) within a modest factor.
  const double est = cs.EstimateResidualL2({});
  const double truth = x.NormP(2.0);
  EXPECT_GT(est, 0.6 * truth);
  EXPECT_LT(est, 1.6 * truth);
}

TEST(CountSketch, ResidualSubtractsSparsePart) {
  CountSketch cs(15, 96, 8);
  cs.Update(3, 500.0);
  cs.Update(77, -400.0);
  // Subtracting the true values leaves (near) nothing.
  const double res = cs.EstimateResidualL2({{3, 500.0}, {77, -400.0}});
  EXPECT_NEAR(res, 0.0, 1e-9);
  EXPECT_GT(cs.EstimateResidualL2({}), 400.0);
}

TEST(CountSketch, AddScaledIsLinear) {
  CountSketch a(9, 48, 10), b(9, 48, 10);
  a.Update(5, 2.0);
  b.Update(5, 3.0);
  a.AddScaled(b, -1.0);
  EXPECT_DOUBLE_EQ(a.Query(5), -1.0);
}

TEST(CountSketch, SerializeRoundTrip) {
  CountSketch a(9, 48, 11);
  a.Update(1, 4.5);
  a.Update(40, -2.25);
  BitWriter writer;
  a.SerializeCounters(&writer);
  EXPECT_EQ(writer.bit_count(), 9u * 48 * 64);
  CountSketch b(9, 48, 11);
  BitReader reader(writer);
  b.DeserializeCounters(&reader);
  EXPECT_DOUBLE_EQ(b.Query(1), 4.5);
  EXPECT_DOUBLE_EQ(b.Query(40), -2.25);
}

TEST(CountSketch, SpaceBitsAccounting) {
  CountSketch cs(10, 60, 12);
  // 600 counters * 32 bits + 20 pairwise hashes * 2 * 61 bits.
  EXPECT_EQ(cs.SpaceBits(32), 600u * 32 + 20u * 2 * 61);
}

TEST(CountMin, StrictTurnstileOverestimates) {
  const uint64_t n = 512;
  CountMin cm(9, 64, 13);
  stream::ExactVector x(n);
  Rng rng(14);
  for (int j = 0; j < 2000; ++j) {
    const uint64_t i = rng.Below(n);
    cm.Update(i, 1.0);
    x.Apply({i, 1});
  }
  for (uint64_t i = 0; i < n; ++i) {
    EXPECT_GE(cm.QueryMin(i) + 1e-9, static_cast<double>(x[i]));
  }
  // And the error is bounded by ||x||_1 / buckets per row w.h.p.
  int bad = 0;
  const double allowance = 3.0 * 2000.0 / 64.0;
  for (uint64_t i = 0; i < n; ++i) {
    if (cm.QueryMin(i) - static_cast<double>(x[i]) > allowance) ++bad;
  }
  EXPECT_EQ(bad, 0);
}

TEST(CountMin, MedianHandlesGeneralUpdates) {
  const uint64_t n = 512;
  CountMin cm(11, 64, 15);
  stream::ExactVector x(n);
  const auto stream = stream::UniformTurnstile(n, 3000, 5, 16);
  for (const auto& u : stream) {
    cm.Update(u.index, static_cast<double>(u.delta));
    x.Apply(u);
  }
  const double allowance = 3.0 * x.NormP(1.0) / 64.0;
  int bad = 0;
  for (uint64_t i = 0; i < n; ++i) {
    if (std::abs(cm.QueryMedian(i) - static_cast<double>(x[i])) > allowance) {
      ++bad;
    }
  }
  EXPECT_LE(bad, 2);
}

TEST(AmsF2, EstimatesSquaredNorm) {
  const uint64_t n = 2048;
  const auto stream = stream::UniformTurnstile(n, 5000, 10, 17);
  stream::ExactVector x(n);
  x.Apply(stream);
  AmsF2 ams(9, 24, 18);
  for (const auto& u : stream) {
    ams.Update(u.index, static_cast<double>(u.delta));
  }
  const double truth = x.NormPToP(2.0);
  EXPECT_GT(ams.EstimateF2(), 0.5 * truth);
  EXPECT_LT(ams.EstimateF2(), 2.0 * truth);
  EXPECT_NEAR(ams.EstimateL2(), std::sqrt(ams.EstimateF2()), 1e-9);
}

TEST(AmsF2, ResidualRemovesSparseComponent) {
  AmsF2 ams(9, 24, 19);
  ams.Update(5, 300.0);
  ams.Update(700, 40.0);
  const double with_all = ams.EstimateL2();
  EXPECT_GT(with_all, 250.0);
  const double res = ams.EstimateResidualL2({{5, 300.0}});
  EXPECT_LT(res, 100.0);
  EXPECT_NEAR(ams.EstimateResidualL2({{5, 300.0}, {700, 40.0}}), 0.0, 1e-9);
}

TEST(StableSketch, CauchyAndGaussianClosedForms) {
  EXPECT_DOUBLE_EQ(StableMedianAbs(1.0), 1.0);
  EXPECT_NEAR(StableMedianAbs(2.0), 0.6744897501960817, 1e-12);
  // General p: calibrated constant is positive and stable across calls.
  const double m05 = StableMedianAbs(0.5);
  EXPECT_GT(m05, 0.0);
  EXPECT_DOUBLE_EQ(StableMedianAbs(0.5), m05);
}

class StableSketchNorm : public ::testing::TestWithParam<double> {};

TEST_P(StableSketchNorm, MedianEstimatesLpNorm) {
  const double p = GetParam();
  const uint64_t n = 512;
  const auto stream = stream::ZipfianVector(n, 0.8, 100, true, 20);
  stream::ExactVector x(n);
  x.Apply(stream);
  const double truth = x.NormP(p);
  // Average the success indicator over independent sketches.
  int within = 0;
  const int trials = 30;
  for (int trial = 0; trial < trials; ++trial) {
    StableSketch sketch(p, 150, 21 + static_cast<uint64_t>(trial));
    for (const auto& u : stream) {
      sketch.Update(u.index, static_cast<double>(u.delta));
    }
    const double est = sketch.EstimateNorm();
    if (est > 0.7 * truth && est < 1.4 * truth) ++within;
  }
  EXPECT_GE(within, trials - 4) << "p = " << p;
}

INSTANTIATE_TEST_SUITE_P(Ps, StableSketchNorm,
                         ::testing::Values(0.5, 1.0, 1.5, 2.0));

TEST(DyadicCountSketch, FindsSignedHeavyLeaves) {
  // General updates: a heavy negative coordinate and cancelling noise.
  DyadicCountSketch tree(10, 11, 96, 31);
  tree.Update(100, -600.0);
  tree.Update(850, 500.0);
  Rng rng(32);
  for (int j = 0; j < 400; ++j) {
    const uint64_t i = rng.Below(1024);
    tree.Update(i, 1.0);
    tree.Update(i, -1.0);  // perfectly cancelling churn
  }
  const auto heavy = tree.HeavyLeaves(250.0);
  EXPECT_TRUE(std::find(heavy.begin(), heavy.end(), 100u) != heavy.end());
  EXPECT_TRUE(std::find(heavy.begin(), heavy.end(), 850u) != heavy.end());
  EXPECT_LE(heavy.size(), 4u);
  EXPECT_NEAR(tree.Query(100), -600.0, 60.0);
}

TEST(DyadicCountSketch, OppositeSignsInDistinctStartBlocks) {
  DyadicCountSketch tree(8, 11, 96, 33);
  // Universe 256, start level 2 (64 blocks of width 4): coordinates 3 and
  // 200 live in different starting blocks, so no cancellation en route.
  ASSERT_EQ(tree.start_level(), 2);
  tree.Update(3, 400.0);
  tree.Update(200, -400.0);
  const auto heavy = tree.HeavyLeaves(200.0);
  EXPECT_EQ(heavy.size(), 2u);
}

TEST(DyadicCountSketch, DocumentedMissOnAdversarialCancellation) {
  // +v and -v inside the SAME starting block cancel at every maintained
  // level above the leaves: the dyadic descent misses them BY DESIGN (this
  // is the documented trade-off; the flat CsHeavyHitters scan is the sound
  // tool for adversarial general-update extraction).
  DyadicCountSketch tree(8, 11, 96, 35);
  tree.Update(4, 400.0);
  tree.Update(5, -400.0);  // same width-4 starting block as coordinate 4
  EXPECT_TRUE(tree.HeavyLeaves(200.0).empty());
  // The leaf estimates themselves are intact — only the descent is blind.
  EXPECT_NEAR(tree.Query(4), 400.0, 1e-6);
  EXPECT_NEAR(tree.Query(5), -400.0, 1e-6);
}

TEST(DyadicCountSketch, EmptyTreeReportsNothing) {
  DyadicCountSketch tree(6, 7, 24, 34);
  EXPECT_TRUE(tree.HeavyLeaves(1.0).empty());
  EXPECT_DOUBLE_EQ(tree.Query(5), 0.0);
}

// ---- Batched-update fast path: UpdateBatch must produce bit-identical
// ---- state to the per-update loop, for any batch partition of the stream.

// Feeds `stream` per-update to `scalar` and to `batched` via UpdateBatch
// with a chunk pattern covering empty, single-element, and large batches.
template <typename Sink>
void FeedBothPaths(const stream::UpdateStream& stream, Sink* scalar,
                   Sink* batched) {
  for (const auto& u : stream) {
    scalar->Update(u.index, static_cast<double>(u.delta));
  }
  const size_t chunks[] = {0, 1, 3, 0, 17, 64, 1, 1024};
  size_t pos = 0, c = 0;
  while (pos < stream.size()) {
    const size_t len =
        std::min(chunks[c % (sizeof(chunks) / sizeof(chunks[0]))],
                 stream.size() - pos);
    batched->UpdateBatch(stream.data() + pos, len);
    pos += len;
    ++c;
  }
  batched->UpdateBatch(stream.data(), 0);  // trailing empty batch is a no-op
}

template <typename Sink>
std::vector<uint64_t> CounterWords(const Sink& sink) {
  lps::BitWriter writer;
  sink.SerializeCounters(&writer);
  return writer.words();
}

// A general (signed deltas) and a strict-turnstile (non-negative final
// coordinates) stream, as the paper's two update models.
stream::UpdateStream GeneralStream() {
  return stream::UniformTurnstile(512, 4000, 100, 91);
}
stream::UpdateStream StrictTurnstileStream() {
  return stream::PlantedHeavyHitters(512, 6, 250, 300, false, 92);
}

TEST(CountSketch, BatchMatchesScalarBitExact) {
  for (const auto& stream : {GeneralStream(), StrictTurnstileStream()}) {
    CountSketch scalar(11, 96, 7), batched(11, 96, 7);
    FeedBothPaths(stream, &scalar, &batched);
    EXPECT_EQ(CounterWords(scalar), CounterWords(batched));
    for (uint64_t i = 0; i < 512; i += 37) {
      EXPECT_EQ(scalar.Query(i), batched.Query(i));
    }
  }
}

TEST(CountSketch, ScaledUpdateBatchMatchesScalar) {
  // The double-delta overload, as fed by the Lp sampler rounds.
  const auto stream = GeneralStream();
  CountSketch scalar(9, 64, 8), batched(9, 64, 8);
  std::vector<stream::ScaledUpdate> scaled;
  for (const auto& u : stream) {
    const double d = static_cast<double>(u.delta) * 0.5;
    scalar.Update(u.index, d);
    scaled.push_back({u.index, d});
  }
  batched.UpdateBatch(scaled.data(), scaled.size());
  EXPECT_EQ(CounterWords(scalar), CounterWords(batched));
}

TEST(CountSketch, EmptyAndSingleElementBatches) {
  CountSketch scalar(9, 64, 9), batched(9, 64, 9);
  batched.UpdateBatch(static_cast<const stream::Update*>(nullptr), 0);
  EXPECT_EQ(CounterWords(scalar), CounterWords(batched));
  const stream::Update one{5, -3};
  scalar.Update(5, -3.0);
  batched.UpdateBatch(&one, 1);
  EXPECT_EQ(CounterWords(scalar), CounterWords(batched));
}

TEST(CountMin, BatchMatchesScalarBitExact) {
  for (const auto& stream : {GeneralStream(), StrictTurnstileStream()}) {
    CountMin scalar(11, 64, 17), batched(11, 64, 17);
    FeedBothPaths(stream, &scalar, &batched);
    EXPECT_EQ(CounterWords(scalar), CounterWords(batched));
  }
}

TEST(AmsF2, BatchMatchesScalarBitExact) {
  for (const auto& stream : {GeneralStream(), StrictTurnstileStream()}) {
    AmsF2 scalar(7, 12, 21), batched(7, 12, 21);
    FeedBothPaths(stream, &scalar, &batched);
    // No counter serialization on AmsF2; the estimators are deterministic
    // functions of the counters, so exact equality certifies state.
    EXPECT_EQ(scalar.EstimateF2(), batched.EstimateF2());
    EXPECT_EQ(scalar.EstimateResidualL2({{3, 5.0}}),
              batched.EstimateResidualL2({{3, 5.0}}));
  }
}

TEST(StableSketch, BatchMatchesScalarBitExact) {
  // The stable family is FP-taxonomy: batch-vs-per-update bit-identity is
  // guaranteed on the scalar kernel backend (the SIMD Cauchy path is
  // query-equivalent instead — see the dispatched-backend test below), so
  // pin scalar for the exact comparison.
  const lps::kernels::Backend dispatched = lps::kernels::ActiveBackend();
  ASSERT_TRUE(
      lps::kernels::ForceBackendForTesting(lps::kernels::Backend::kScalar));
  for (const auto& stream : {GeneralStream(), StrictTurnstileStream()}) {
    StableSketch scalar(1.0, 32, 33), batched(1.0, 32, 33);
    FeedBothPaths(stream, &scalar, &batched);
    EXPECT_EQ(CounterWords(scalar), CounterWords(batched));
  }
  lps::kernels::ForceBackendForTesting(dispatched);
}

TEST(StableSketch, BatchMatchesScalarUnderDispatchedBackend) {
  // Under whatever backend the CPU dispatched, batched ingestion must stay
  // query-equivalent to the per-update path: same counters to ~1e-9
  // relative (vectorized tan approximation + reassociated accumulation).
  for (const auto& stream : {GeneralStream(), StrictTurnstileStream()}) {
    StableSketch scalar(1.0, 32, 33), batched(1.0, 32, 33);
    FeedBothPaths(stream, &scalar, &batched);
    lps::BitWriter wa, wb;
    scalar.SerializeCounters(&wa);
    batched.SerializeCounters(&wb);
    lps::BitReader ra(wa), rb(wb);
    for (int j = 0; j < 32; ++j) {
      const double a = ra.ReadDouble(), b = rb.ReadDouble();
      EXPECT_NEAR(a, b, 1e-9 * std::max(1.0, std::abs(a))) << "row " << j;
    }
  }
}

TEST(DyadicCountMin, BatchMatchesScalarBitExact) {
  const auto stream = stream::PlantedHeavyHitters(256, 4, 100, 64, false, 93);
  DyadicCountMin scalar(8, 7, 32, 44), batched(8, 7, 32, 44);
  FeedBothPaths(stream, &scalar, &batched);
  for (uint64_t i = 0; i < 256; ++i) {
    EXPECT_EQ(scalar.Query(i), batched.Query(i));
  }
  EXPECT_EQ(scalar.HeavyLeaves(50.0), batched.HeavyLeaves(50.0));
}

TEST(DyadicCountMin, PointQueriesAndHeavyLeaves) {
  DyadicCountMin tree(10, 9, 64, 22);  // universe 1024
  tree.Update(100, 500.0);
  tree.Update(700, 300.0);
  Rng rng(23);
  for (int j = 0; j < 500; ++j) tree.Update(rng.Below(1024), 1.0);
  EXPECT_GE(tree.Query(100), 500.0);
  const auto heavy = tree.HeavyLeaves(250.0);
  EXPECT_TRUE(std::find(heavy.begin(), heavy.end(), 100u) != heavy.end());
  EXPECT_TRUE(std::find(heavy.begin(), heavy.end(), 700u) != heavy.end());
  EXPECT_LE(heavy.size(), 10u);
}

}  // namespace
}  // namespace lps::sketch
