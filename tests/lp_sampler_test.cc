#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/core/lp_sampler.h"
#include "src/stats/stats.h"
#include "src/stream/exact_vector.h"
#include "src/stream/generators.h"

namespace lps::core {
namespace {

LpSamplerParams BaseParams(uint64_t n, double p, double eps, uint64_t seed) {
  LpSamplerParams params;
  params.n = n;
  params.p = p;
  params.eps = eps;
  params.seed = seed;
  return params;
}

TEST(LpSamplerResolve, Figure1ParametersPNot1) {
  auto params = LpSampler::Resolve(BaseParams(1024, 1.5, 0.25, 1));
  // k = 10 * ceil(1/|p-1|) = 20.
  EXPECT_EQ(params.k, 20);
  // m = Theta(eps^{-(p-1)}) = Theta(2).
  EXPECT_GE(params.m, 8);
  EXPECT_GT(params.cs_rows, 0);
  EXPECT_GT(params.repetitions, 0);

  auto params_half = LpSampler::Resolve(BaseParams(1024, 0.5, 0.25, 1));
  EXPECT_EQ(params_half.k, 20);
  // p < 1: m is a constant independent of eps.
  auto params_half_tiny_eps = LpSampler::Resolve(BaseParams(1024, 0.5, 0.01, 1));
  EXPECT_EQ(params_half.m, params_half_tiny_eps.m);
}

TEST(LpSamplerResolve, Figure1ParametersP1) {
  auto params = LpSampler::Resolve(BaseParams(1024, 1.0, 0.25, 1));
  // k = m = O(log 1/eps).
  EXPECT_EQ(params.k, params.m);
  auto finer = LpSampler::Resolve(BaseParams(1024, 1.0, 0.03125, 1));
  EXPECT_GT(finer.m, params.m);
}

TEST(LpSampler, ZeroVectorFails) {
  LpSampler sampler(BaseParams(256, 1.0, 0.5, 1));
  EXPECT_FALSE(sampler.Sample().ok());
  // Cancelling updates: still the zero vector.
  LpSampler sampler2(BaseParams(256, 1.0, 0.5, 2));
  sampler2.Update(7, 5);
  sampler2.Update(7, -5);
  EXPECT_FALSE(sampler2.Sample().ok());
}

TEST(LpSampler, SingleCoordinateVectorIsAlwaysSampled) {
  int successes = 0, correct = 0;
  for (uint64_t seed = 0; seed < 30; ++seed) {
    auto params = BaseParams(256, 1.0, 0.5, seed);
    params.repetitions = 24;
    LpSampler sampler(params);
    sampler.Update(123, 42);
    auto res = sampler.Sample();
    if (res.ok()) {
      ++successes;
      if (res.value().index == 123) ++correct;
    }
  }
  EXPECT_GE(successes, 25);
  EXPECT_EQ(correct, successes);
}

TEST(LpSampler, DominantCoordinateWinsConditionally) {
  // One coordinate carries 99% of the L1 mass; conditioned on success the
  // sampler returns it the overwhelming majority of the time.
  int successes = 0, dominant = 0;
  for (uint64_t seed = 0; seed < 40; ++seed) {
    auto params = BaseParams(512, 1.0, 0.5, 1000 + seed);
    params.repetitions = 16;
    LpSampler sampler(params);
    sampler.Update(77, 9900);
    for (uint64_t i = 0; i < 100; ++i) sampler.Update(i, 1);
    auto res = sampler.Sample();
    if (res.ok()) {
      ++successes;
      if (res.value().index == 77) ++dominant;
    }
  }
  ASSERT_GE(successes, 20);
  EXPECT_GE(static_cast<double>(dominant) / successes, 0.9);
}

TEST(LpSampler, EstimateRelativeErrorWithinEps) {
  // Lemma 4 / footnote 1: the returned estimate approximates x_i within
  // eps relative error w.h.p.
  const uint64_t n = 512;
  const double eps = 0.25;
  const auto stream = stream::ZipfianVector(n, 1.0, 1000, true, 7);
  stream::ExactVector x(n);
  x.Apply(stream);
  int samples = 0, bad = 0;
  for (uint64_t seed = 0; seed < 60; ++seed) {
    auto params = BaseParams(n, 1.0, eps, 2000 + seed);
    params.repetitions = 8;
    LpSampler sampler(params);
    for (const auto& u : stream) {
      sampler.Update(u.index, static_cast<double>(u.delta));
    }
    auto res = sampler.Sample();
    if (!res.ok()) continue;
    ++samples;
    const double truth = static_cast<double>(x[res.value().index]);
    if (std::abs(res.value().estimate - truth) > eps * std::abs(truth) + 1e-9) {
      ++bad;
    }
  }
  ASSERT_GE(samples, 20);
  EXPECT_LE(bad, samples / 10);
}

class LpSamplerDistribution : public ::testing::TestWithParam<double> {};

// Claim C1 (Theorem 1 / Lemma 4): conditioned on success, the output of a
// single round follows the Lp distribution up to O(eps) error. Measured as
// total variation over a small universe.
TEST_P(LpSamplerDistribution, ConditionalLawMatchesLpDistribution) {
  const double p = GetParam();
  const uint64_t n = 64;
  // A spread of magnitudes, mixed signs.
  stream::UpdateStream stream;
  stream::ExactVector x(n);
  for (uint64_t i = 0; i < 32; ++i) {
    const int64_t v = (i % 2 == 0 ? 1 : -1) * static_cast<int64_t>(1 + i * i / 4);
    stream.push_back({i, v});
    x.Apply({i, v});
  }
  const auto exact = x.LpDistribution(p);

  std::vector<uint64_t> counts(n, 0);
  uint64_t samples = 0;
  const int trials = 4000;
  for (int trial = 0; trial < trials; ++trial) {
    auto params = BaseParams(n, p, 0.25, 5000 + static_cast<uint64_t>(trial));
    params.repetitions = 1;
    LpSampler sampler(params);
    for (const auto& u : stream) {
      sampler.Update(u.index, static_cast<double>(u.delta));
    }
    auto res = sampler.Sample();
    if (res.ok()) {
      ++counts[res.value().index];
      ++samples;
    }
  }
  ASSERT_GE(samples, 300u) << "per-round success rate collapsed (p=" << p << ")";
  const double tv = stats::TotalVariation(counts, exact);
  EXPECT_LT(tv, 0.13) << "p = " << p << ", samples = " << samples;
}

INSTANTIATE_TEST_SUITE_P(Ps, LpSamplerDistribution,
                         ::testing::Values(0.5, 1.0, 1.5));

TEST(LpSampler, SuccessRateGrowsWithRepetitions) {
  const uint64_t n = 256;
  const auto stream = stream::SignVector(n, 64, 11);
  int succ_few = 0, succ_many = 0;
  const int trials = 40;
  for (int trial = 0; trial < trials; ++trial) {
    for (int reps : {1, 24}) {
      auto params = BaseParams(n, 1.0, 0.25, 9000 + static_cast<uint64_t>(trial));
      params.repetitions = reps;
      LpSampler sampler(params);
      for (const auto& u : stream) {
        sampler.Update(u.index, static_cast<double>(u.delta));
      }
      const bool ok = sampler.Sample().ok();
      (reps == 1 ? succ_few : succ_many) += ok;
    }
  }
  EXPECT_GT(succ_many, succ_few);
  EXPECT_GE(succ_many, trials * 3 / 4);
}

TEST(LpSamplerRound, OverrideHookPinsScalingFactor) {
  auto params = LpSampler::Resolve(BaseParams(128, 1.0, 0.5, 3));
  params.override_index = 42;
  params.override_t = 0.125;
  LpSamplerRound round(params, 0);
  EXPECT_DOUBLE_EQ(round.ScalingFactor(42), 0.125);
  EXPECT_NE(round.ScalingFactor(41), 0.125);
}

// Lemma 3's point: the abort probability stays O(eps) even conditioned on
// an arbitrary fixed scaling factor for one coordinate. Pinning t_i to an
// extreme value must not blow up the abort rate.
TEST(LpSamplerRound, AbortRateInsensitiveToPinnedScalingFactor) {
  const uint64_t n = 256;
  const auto stream = stream::ZipfianVector(n, 1.0, 100, true, 13);
  stream::ExactVector x(n);
  x.Apply(stream);
  const double r = x.NormP(1.0);  // use the exact norm to isolate the test

  for (double pinned : {1e-6, 0.5, 1.0}) {
    int aborts = 0;
    const int trials = 150;
    for (int trial = 0; trial < trials; ++trial) {
      auto params = LpSampler::Resolve(
          BaseParams(n, 1.0, 0.25, 40000 + static_cast<uint64_t>(trial)));
      params.repetitions = 1;
      params.override_index = 10;
      params.override_t = pinned;
      LpSamplerRound round(params, 0);
      for (const auto& u : stream) {
        round.Update(u.index, static_cast<double>(u.delta));
      }
      if (round.WouldAbortOnTail(r)) ++aborts;
    }
    EXPECT_LE(aborts, trials / 4) << "pinned t = " << pinned;
  }
}

TEST(LpSampler, SpaceBitsLog2Shape) {
  // Under the paper's counter model (counters of O(log n) bits), doubling
  // log n should roughly quadruple per-round space: rows scale with log n
  // and counter width with log n.
  auto p_small = BaseParams(1 << 8, 1.0, 0.5, 1);
  p_small.repetitions = 1;
  auto p_large = BaseParams(1 << 16, 1.0, 0.5, 1);
  p_large.repetitions = 1;
  LpSampler small(p_small), large(p_large);
  const double ratio = static_cast<double>(large.SpaceBits(16)) /
                       static_cast<double>(small.SpaceBits(8));
  EXPECT_GT(ratio, 2.5);
  EXPECT_LT(ratio, 6.0);
}

TEST(LpSampler, CountersSerializeRoundTrip) {
  auto params = BaseParams(128, 1.0, 0.5, 77);
  params.repetitions = 3;
  LpSampler alice(params);
  alice.Update(5, 10);
  alice.Update(90, -3);
  BitWriter w;
  alice.SerializeCounters(&w);
  LpSampler bob(params);
  BitReader r(w);
  bob.DeserializeCounters(&r);
  // Same seeds + same counters => identical behavior.
  auto sa = alice.Sample();
  auto sb = bob.Sample();
  EXPECT_EQ(sa.ok(), sb.ok());
  if (sa.ok()) {
    EXPECT_EQ(sa.value().index, sb.value().index);
    EXPECT_DOUBLE_EQ(sa.value().estimate, sb.value().estimate);
  }
}

}  // namespace
}  // namespace lps::core
