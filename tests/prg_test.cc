#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/field/gf61.h"
#include "src/prg/nisan.h"
#include "src/prg/random_source.h"

namespace lps::prg {
namespace {

TEST(NisanPrg, BlockCountAndDeterminism) {
  NisanPrg g(10, 42);
  EXPECT_EQ(g.num_blocks(), 1024u);
  NisanPrg h(10, 42);
  for (uint64_t i = 0; i < 1024; ++i) {
    EXPECT_EQ(g.Block(i), h.Block(i));
    EXPECT_LT(g.Block(i), gf61::kP);
  }
}

TEST(NisanPrg, SeedBitsQuadraticInLevels) {
  // Seed is (2*levels + 1) * 61 bits: O(log^2 n) once levels = O(log n).
  EXPECT_EQ(NisanPrg(0, 1).SeedBits(), 61u);
  EXPECT_EQ(NisanPrg(10, 1).SeedBits(), 21u * 61);
  EXPECT_EQ(NisanPrg(20, 1).SeedBits(), 41u * 61);
}

TEST(NisanPrg, RecursiveStructure) {
  // G_j(x) = G_{j-1}(x) . G_{j-1}(h_j(x)): the left half of the output at
  // level j equals the full output at level j-1 with the same seed
  // material. Verified indirectly: block 0 is the initial x at any level.
  NisanPrg g1(3, 7), g2(8, 7);
  EXPECT_EQ(g1.Block(0), g2.Block(0));
}

TEST(NisanPrg, OutputLooksUniform) {
  // Crude equidistribution: fraction of blocks below p/2 approaches 1/2.
  NisanPrg g(14, 99);
  const uint64_t blocks = g.num_blocks();
  uint64_t below = 0;
  for (uint64_t i = 0; i < blocks; ++i) {
    if (g.Block(i) < gf61::kP / 2) ++below;
  }
  EXPECT_NEAR(static_cast<double>(below) / static_cast<double>(blocks), 0.5,
              0.05);
}

TEST(NisanPrg, DistinctSeedsDisagree) {
  NisanPrg a(10, 1), b(10, 2);
  int diffs = 0;
  for (uint64_t i = 0; i < 256; ++i) diffs += a.Block(i) != b.Block(i);
  EXPECT_GT(diffs, 250);
}

TEST(OracleSource, WordsAreUniformish) {
  OracleSource source(5);
  double sum = 0;
  const int words = 100000;
  for (uint64_t i = 0; i < words; ++i) {
    const double u = source.Uniform01(i);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / words, 0.5, 0.01);
  EXPECT_EQ(source.SeedBits(), 64u);
}

TEST(NisanSource, WordsAreUniformish) {
  NisanSource source(14, 6);
  double sum = 0;
  const int words = 16384;
  for (uint64_t i = 0; i < words; ++i) {
    sum += source.Uniform01(i);
  }
  EXPECT_NEAR(sum / words, 0.5, 0.02);
  EXPECT_GT(source.SeedBits(), 64u);
}

TEST(NisanSource, PairwiseBlockAgreementIsRare) {
  // Within one level-k half, blocks are pairwise distinct w.h.p.; sample a
  // few hundred pairs.
  NisanSource source(12, 8);
  int collisions = 0;
  for (uint64_t i = 0; i < 500; ++i) {
    if (source.Word(2 * i) == source.Word(2 * i + 1)) ++collisions;
  }
  EXPECT_LE(collisions, 1);
}

}  // namespace
}  // namespace lps::prg
