#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/heavy/heavy_hitters.h"
#include "src/stream/exact_vector.h"
#include "src/stream/generators.h"

namespace lps::heavy {
namespace {

TEST(ValidateHeavySetTest, Definition) {
  stream::ExactVector x(8);
  x.Apply({0, 100});
  x.Apply({1, 40});
  x.Apply({2, 1});  // ||x||_1 = 141
  // phi = 0.5: heavy = {0} (100 >= 70.5); light = anything <= 35.25.
  EXPECT_TRUE(ValidateHeavySet(x, 1.0, 0.5, {0}).valid);
  EXPECT_FALSE(ValidateHeavySet(x, 1.0, 0.5, {}).valid);          // misses 0
  EXPECT_FALSE(ValidateHeavySet(x, 1.0, 0.5, {0, 2}).valid);      // includes light
  // 40 is in the gray zone (between phi/2 and phi): either way is valid.
  EXPECT_TRUE(ValidateHeavySet(x, 1.0, 0.5, {0, 1}).valid);
}

TEST(CmHeavyHitters, StrictTurnstileValidSets) {
  const uint64_t n = 1024;
  const double phi = 0.1;
  int valid = 0;
  const int trials = 20;
  for (uint64_t trial = 0; trial < trials; ++trial) {
    const auto stream =
        stream::PlantedHeavyHitters(n, 4, 200, 300, false, trial);
    stream::ExactVector x(n);
    x.Apply(stream);
    CmHeavyHitters hh({n, phi, 0, 100 + trial, false});
    for (const auto& u : stream) {
      hh.Update(u.index, static_cast<double>(u.delta));
    }
    valid += ValidateHeavySet(x, 1.0, phi, hh.Query()).valid;
  }
  EXPECT_GE(valid, trials - 1);
}

TEST(CmHeavyHitters, MedianVariantMatchesOnStrictStreams) {
  const uint64_t n = 512;
  const auto stream = stream::PlantedHeavyHitters(n, 3, 300, 200, false, 7);
  stream::ExactVector x(n);
  x.Apply(stream);
  CmHeavyHitters hh({n, 0.15, 0, 9, true});
  for (const auto& u : stream) {
    hh.Update(u.index, static_cast<double>(u.delta));
  }
  EXPECT_TRUE(ValidateHeavySet(x, 1.0, 0.15, hh.Query()).valid);
}

class CsHeavyP : public ::testing::TestWithParam<double> {};

// Section 4.4: count-sketch with m = Theta(phi^-p) yields valid heavy
// hitter sets for every p in (0, 2].
TEST_P(CsHeavyP, ValidSetsAcrossP) {
  const double p = GetParam();
  const uint64_t n = 1024;
  const double phi = 0.25;
  int valid = 0;
  const int trials = 12;
  for (uint64_t trial = 0; trial < trials; ++trial) {
    const auto stream =
        stream::PlantedHeavyHitters(n, 2, 400, 150, true, 50 + trial);
    stream::ExactVector x(n);
    x.Apply(stream);
    CsHeavyHitters::Params params;
    params.n = n;
    params.p = p;
    params.phi = phi;
    params.seed = 200 + trial;
    params.norm_rows = 1200;
    CsHeavyHitters hh(params);
    for (const auto& u : stream) {
      hh.Update(u.index, static_cast<double>(u.delta));
    }
    valid += ValidateHeavySet(x, p, phi, hh.Query()).valid;
  }
  EXPECT_GE(valid, trials - 2) << "p = " << p;
}

INSTANTIATE_TEST_SUITE_P(Ps, CsHeavyP, ::testing::Values(0.5, 1.0, 2.0));

TEST(CsHeavyHitters, GeneralUpdatesWithNegativeHeavyCoordinates) {
  // Negative heavy coordinates must be reported too (|x_i| matters).
  const uint64_t n = 512;
  stream::ExactVector x(n);
  CsHeavyHitters::Params params;
  params.n = n;
  params.p = 2.0;  // uses the count-sketch's own F2 estimate
  params.phi = 0.3;
  params.seed = 5;
  CsHeavyHitters hh(params);
  auto feed = [&](uint64_t i, int64_t v) {
    x.Apply({i, v});
    hh.Update(i, static_cast<double>(v));
  };
  feed(10, -500);
  feed(400, 450);
  for (uint64_t i = 100; i < 160; ++i) feed(i, (i % 2) ? 3 : -3);
  const auto set = hh.Query();
  EXPECT_TRUE(std::find(set.begin(), set.end(), 10u) != set.end());
  EXPECT_TRUE(std::find(set.begin(), set.end(), 400u) != set.end());
  EXPECT_TRUE(ValidateHeavySet(x, 2.0, 0.3, set).valid);
}

TEST(CsHeavyHitters, StrictTurnstileUsesExactL1) {
  CsHeavyHitters::Params params;
  params.n = 256;
  params.p = 1.0;
  params.phi = 0.2;
  params.strict_turnstile = true;
  params.seed = 6;
  CsHeavyHitters hh(params);
  hh.Update(1, 60);
  hh.Update(2, 40);
  EXPECT_DOUBLE_EQ(hh.NormEstimate(), 100.0);
}

TEST(CsHeavyHitters, SpaceScalesWithPhiToTheP) {
  CsHeavyHitters::Params coarse;
  coarse.n = 1024;
  coarse.p = 1.0;
  coarse.phi = 0.2;
  coarse.strict_turnstile = true;
  coarse.seed = 1;
  auto fine = coarse;
  fine.phi = 0.05;
  CsHeavyHitters hh_coarse(coarse), hh_fine(fine);
  const double ratio = static_cast<double>(hh_fine.SpaceBits()) /
                       static_cast<double>(hh_coarse.SpaceBits());
  EXPECT_GT(ratio, 3.0);  // ~ (0.2/0.05)^1 = 4 up to rounding
  EXPECT_LT(ratio, 5.0);
}

TEST(CsHeavyHitters, SerializeTransfersState) {
  CsHeavyHitters::Params params;
  params.n = 256;
  params.p = 1.0;
  params.phi = 0.2;
  params.strict_turnstile = true;
  params.seed = 7;
  CsHeavyHitters alice(params);
  alice.Update(42, 100);
  alice.Update(7, 3);
  BitWriter w;
  alice.SerializeCounters(&w);
  CsHeavyHitters bob(params);
  BitReader r(w);
  bob.DeserializeCounters(&r);
  const auto set = bob.Query();
  EXPECT_TRUE(std::find(set.begin(), set.end(), 42u) != set.end());
}

TEST(DyadicHeavyHitters, MatchesFlatQueryOnStrictStreams) {
  const int log_n = 10;
  const uint64_t n = 1ULL << log_n;
  const auto stream = stream::PlantedHeavyHitters(n, 3, 500, 100, false, 9);
  stream::ExactVector x(n);
  x.Apply(stream);
  DyadicHeavyHitters hh(log_n, 0.2, 11);
  for (const auto& u : stream) {
    hh.Update(u.index, static_cast<double>(u.delta));
  }
  const auto set = hh.Query();
  EXPECT_TRUE(ValidateHeavySet(x, 1.0, 0.2, set).valid);
}

}  // namespace
}  // namespace lps::heavy
