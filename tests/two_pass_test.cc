#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/core/l0_sampler.h"
#include "src/core/two_pass_l0_sampler.h"
#include "src/stats/stats.h"
#include "src/stream/exact_vector.h"
#include "src/stream/generators.h"

namespace lps::core {
namespace {

void FeedBothPasses(TwoPassL0Sampler* sampler,
                    const stream::UpdateStream& stream) {
  for (const auto& u : stream) sampler->UpdateFirstPass(u.index, u.delta);
  sampler->FinishFirstPass();
  for (const auto& u : stream) sampler->UpdateSecondPass(u.index, u.delta);
}

TEST(TwoPassL0Sampler, SmallSupportUsesLevelZero) {
  TwoPassL0Sampler sampler({1024, 0.25, 0, 1});
  stream::UpdateStream stream = {{5, 3}, {900, -2}};
  FeedBothPasses(&sampler, stream);
  EXPECT_EQ(sampler.level(), 0);
  auto res = sampler.Sample();
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res.value().index == 5 || res.value().index == 900);
  if (res.value().index == 5) {
    EXPECT_DOUBLE_EQ(res.value().estimate, 3);
  } else {
    EXPECT_DOUBLE_EQ(res.value().estimate, -2);
  }
}

TEST(TwoPassL0Sampler, LargeSupportSubsamples) {
  const uint64_t n = 4096;
  const auto stream = stream::SparseVector(n, 1000, 50, 2);
  stream::ExactVector x(n);
  x.Apply(stream);
  int ok = 0, valid = 0;
  for (uint64_t seed = 0; seed < 40; ++seed) {
    TwoPassL0Sampler sampler({n, 0.25, 0, 100 + seed});
    FeedBothPasses(&sampler, stream);
    EXPECT_GT(sampler.level(), 2);
    auto res = sampler.Sample();
    if (res.ok()) {
      ++ok;
      valid += (x[res.value().index] ==
                static_cast<int64_t>(res.value().estimate));
    }
  }
  EXPECT_GE(ok, 30);
  EXPECT_EQ(valid, ok);
}

TEST(TwoPassL0Sampler, UniformOverSupport) {
  const uint64_t n = 512;
  const auto stream = stream::SparseVector(n, 48, 100000, 3);
  stream::ExactVector x(n);
  x.Apply(stream);
  const auto exact = x.LpDistribution(0.0);
  std::vector<uint64_t> counts(n, 0);
  uint64_t samples = 0;
  const int trials = 2000;
  for (int trial = 0; trial < trials; ++trial) {
    TwoPassL0Sampler sampler({n, 0.25, 0, 500 + static_cast<uint64_t>(trial)});
    FeedBothPasses(&sampler, stream);
    auto res = sampler.Sample();
    if (res.ok()) {
      ++counts[res.value().index];
      ++samples;
    }
  }
  EXPECT_GE(samples, trials * 3 / 4);
  const auto chi = stats::ChiSquareGof(counts, exact);
  EXPECT_GT(chi.p_value, 1e-4);
}

TEST(TwoPassL0Sampler, ZeroVectorFails) {
  TwoPassL0Sampler sampler({256, 0.25, 0, 4});
  stream::UpdateStream stream = {{9, 5}, {9, -5}};
  FeedBothPasses(&sampler, stream);
  EXPECT_FALSE(sampler.Sample().ok());
}

TEST(TwoPassL0Sampler, UsesOneLevelOfSpace) {
  // The point of the second pass: ONE recovery structure instead of
  // Theorem 2's log n levels. With our simple first-pass estimator the
  // total still beats the one-pass sampler (a KNW-style estimator would
  // widen the gap to the paper's log n log log n).
  const uint64_t n = 1 << 16;
  TwoPassL0Sampler two_pass({n, 0.25, 0, 5});
  L0Sampler one_pass({n, 0.25, 0, 5, false});
  EXPECT_LT(two_pass.SpaceBits(), one_pass.SpaceBits());
}

}  // namespace
}  // namespace lps::core
