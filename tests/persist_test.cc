// The durable checkpoint subsystem, end to end:
//
//   * delta codec: varint/zero-RLE byte layer edge cases, bit-exact
//     round-trips for every SketchKind (keyframe, XOR and SUB deltas),
//     malformed-payload rejection, and the >= 4x compression the
//     hot-set regime is built for;
//   * checkpoint store: append/read/reopen index rebuild, torn-tail
//     truncation and corrupt-record suffix drop at recovery;
//   * WindowManager spill: windowed answers BIT-IDENTICAL to the
//     all-RAM ring (including off-boundary starts that round into a
//     rehydrated checkpoint), resident/spilled accounting, and
//     max_checkpoints eviction of the oldest spilled entries;
//   * server persistence: clean-restart restore, idle eviction with
//     lazy rehydration (STATS observability), and a fork + SIGKILL
//     crash of a live daemon over real sockets whose reboot answers
//     identically.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/api/sketch_spec.h"
#include "src/persist/checkpoint_store.h"
#include "src/persist/delta_codec.h"
#include "src/server/client.h"
#include "src/server/server.h"
#include "src/stream/generators.h"
#include "src/stream/window_manager.h"
#include "src/util/serialize.h"

namespace lps {
namespace {

using persist::CheckpointStore;
using persist::DecodeDelta;
using persist::DeltaMode;
using persist::EncodedDelta;
using persist::EncodeBestDelta;
using persist::EncodeDelta;

std::string MakeTempDir() {
  char tmpl[] = "/tmp/lps_persist_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return std::string(dir);
}

void RemoveTree(const std::string& dir) {
  const std::string command = "rm -rf '" + dir + "'";
  [[maybe_unused]] const int rc = std::system(command.c_str());
}

// ----------------------------------------------------------- byte layer --

TEST(DeltaCodecBytes, RoundTripEdges) {
  const std::vector<std::vector<uint8_t>> cases = {
      {},
      {0},
      {1},
      {0, 0, 0, 0, 0, 0, 0, 0},
      {1, 2, 3, 4, 5, 6, 7, 8},
      {0, 0, 0, 1, 0, 0, 0, 0, 2, 0},
      std::vector<uint8_t>(1000, 0),
      std::vector<uint8_t>(1000, 7),
  };
  for (const auto& plain : cases) {
    const std::vector<uint8_t> packed = persist::CompressBytes(plain);
    std::vector<uint8_t> out;
    ASSERT_TRUE(persist::DecompressBytes(packed, plain.size(), &out));
    EXPECT_EQ(out, plain);
  }
  // Mixed runs around the kMinZeroRun threshold.
  std::vector<uint8_t> mixed;
  for (int run = 0; run < 12; ++run) {
    for (int z = 0; z < run; ++z) mixed.push_back(0);
    mixed.push_back(uint8_t(run + 1));
  }
  const std::vector<uint8_t> packed = persist::CompressBytes(mixed);
  std::vector<uint8_t> out;
  ASSERT_TRUE(persist::DecompressBytes(packed, mixed.size(), &out));
  EXPECT_EQ(out, mixed);
}

TEST(DeltaCodecBytes, RejectsMalformedStreams) {
  const std::vector<uint8_t> plain = {0, 0, 0, 0, 0, 1, 2, 3};
  const std::vector<uint8_t> packed = persist::CompressBytes(plain);
  std::vector<uint8_t> out;

  // Truncated stream.
  for (size_t cut = 0; cut < packed.size(); ++cut) {
    std::vector<uint8_t> shorter(packed.begin(), packed.begin() + cut);
    EXPECT_FALSE(persist::DecompressBytes(shorter, plain.size(), &out))
        << "cut at " << cut;
  }
  // Wrong plaintext size (both directions).
  EXPECT_FALSE(persist::DecompressBytes(packed, plain.size() - 1, &out));
  EXPECT_FALSE(persist::DecompressBytes(packed, plain.size() + 1, &out));
  // Trailing garbage after a complete stream.
  std::vector<uint8_t> longer = packed;
  longer.push_back(0x55);
  EXPECT_FALSE(persist::DecompressBytes(longer, plain.size(), &out));
  // A varint that never terminates.
  const std::vector<uint8_t> runaway(12, 0x80);
  EXPECT_FALSE(persist::DecompressBytes(runaway, 4, &out));
}

// ---------------------------------------------------------- delta layer --

/// A spec of the given kind that ValidateSpec accepts (n kept small so
/// the all-kinds sweep stays fast).
SketchSpec SpecFor(SketchKind kind) {
  SketchSpec spec;
  spec.kind = kind;
  spec.n = 512;
  spec.p = 1.0;
  spec.eps = 0.5;
  spec.delta = 0.25;
  spec.phi = 0.1;
  spec.seed = 40 + uint64_t(kind);
  if (kind == SketchKind::kMomentEstimator) spec.p = 2.5;
  return spec;
}

std::pair<std::vector<uint64_t>, size_t> StateOf(const LinearSketch& sketch) {
  BitWriter writer;
  sketch.Serialize(&writer);
  return {writer.words(), writer.bit_count()};
}

TEST(DeltaCodec, RoundTripsEveryKindBitExactly) {
  for (uint32_t k = 1; k <= 21; ++k) {
    const SketchKind kind = SketchKind(k);
    const SketchSpec spec = SpecFor(kind);
    ASSERT_TRUE(ValidateSpec(spec).ok()) << SketchKindName(kind);
    auto sketch = MakeSketch(spec);
    ASSERT_NE(sketch, nullptr) << SketchKindName(kind);

    for (uint64_t i = 0; i < 300; ++i) {
      sketch->Update(i % spec.n, int64_t(1 + i % 5));
    }
    const auto [prev_words, prev_bits] = StateOf(*sketch);

    // Keyframe: self-contained, decodes with no predecessor.
    const EncodedDelta keyframe = EncodeDelta(
        DeltaMode::kKeyframe, prev_words, prev_bits, {}, 0);
    std::vector<uint64_t> out_words;
    size_t out_bits = 0;
    ASSERT_TRUE(DecodeDelta(keyframe, {}, 0, &out_words, &out_bits))
        << SketchKindName(kind);
    EXPECT_EQ(out_words, prev_words) << SketchKindName(kind);
    EXPECT_EQ(out_bits, prev_bits);

    for (uint64_t i = 0; i < 100; ++i) {
      sketch->Update((7 * i) % spec.n, -int64_t(1 + i % 3));
    }
    const auto [cur_words, cur_bits] = StateOf(*sketch);

    // Best-of (XOR/SUB) and each explicit mode invert bit-exactly.
    for (const EncodedDelta& delta :
         {EncodeBestDelta(cur_words, cur_bits, prev_words, prev_bits),
          EncodeDelta(DeltaMode::kXor, cur_words, cur_bits, prev_words,
                      prev_bits),
          EncodeDelta(DeltaMode::kSub, cur_words, cur_bits, prev_words,
                      prev_bits)}) {
      out_words.clear();
      ASSERT_TRUE(
          DecodeDelta(delta, prev_words, prev_bits, &out_words, &out_bits))
          << SketchKindName(kind);
      EXPECT_EQ(out_words, cur_words) << SketchKindName(kind);
      EXPECT_EQ(out_bits, cur_bits);
    }
  }
}

TEST(DeltaCodec, RejectsCorruptDeltas) {
  std::vector<uint64_t> words = {0x123456789ABCDEF0ull, 42, 0, 7};
  const size_t bits = 4 * 64;
  EncodedDelta delta = EncodeBestDelta(words, bits, {}, 0);
  std::vector<uint64_t> out_words;
  size_t out_bits = 0;
  ASSERT_TRUE(DecodeDelta(delta, {}, 0, &out_words, &out_bits));

  EncodedDelta bad_mode = delta;
  bad_mode.mode = DeltaMode(0x7F);
  EXPECT_FALSE(DecodeDelta(bad_mode, {}, 0, &out_words, &out_bits));

  EncodedDelta truncated = delta;
  ASSERT_FALSE(truncated.bytes.empty());
  truncated.bytes.pop_back();
  EXPECT_FALSE(DecodeDelta(truncated, {}, 0, &out_words, &out_bits));

  EncodedDelta wrong_size = delta;
  wrong_size.raw_bits += 64;
  EXPECT_FALSE(DecodeDelta(wrong_size, {}, 0, &out_words, &out_bits));
}

TEST(DeltaCodec, HotSetCheckpointsCompressFourfold) {
  // The bench's gated regime, scaled down: an lp_sampler over a stream
  // whose updates concentrate on a small working set per interval. Only
  // the touched counters change between checkpoints, so deltas compress
  // by the untouched fraction.
  SketchSpec spec;
  spec.kind = SketchKind::kLpSampler;
  spec.n = 1 << 16;
  spec.p = 1.0;
  spec.eps = 0.25;
  spec.repetitions = 8;
  spec.seed = 10;
  auto sketch = MakeSketch(spec);
  ASSERT_NE(sketch, nullptr);

  const uint64_t interval = 1 << 10;
  const std::vector<stream::Update> updates =
      stream::HotSetTurnstile(spec.n, 8 * interval, /*hot_keys=*/8,
                              /*epoch=*/interval, /*max_abs=*/100, 77);
  auto prev = StateOf(*sketch);
  uint64_t raw_bytes = 0, delta_bytes = 0;
  for (uint64_t c = 0; c < 8; ++c) {
    for (uint64_t i = 0; i < interval; ++i) {
      const stream::Update& u = updates[c * interval + i];
      sketch->Update(u.index, u.delta);
    }
    const auto cur = StateOf(*sketch);
    const EncodedDelta delta =
        EncodeBestDelta(cur.first, cur.second, prev.first, prev.second);
    raw_bytes += (cur.second + 7) / 8;
    delta_bytes += delta.bytes.size();
    prev = cur;
  }
  ASSERT_GT(delta_bytes, 0u);
  const double ratio = double(raw_bytes) / double(delta_bytes);
  EXPECT_GE(ratio, 4.0) << "compression ratio " << ratio;
}

// ------------------------------------------------------------- the store --

TEST(CheckpointStoreTest, AppendReadReopen) {
  const std::string dir = MakeTempDir();
  {
    auto opened = CheckpointStore::Open(dir);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    CheckpointStore& store = *opened.value();
    for (int i = 0; i < 5; ++i) {
      const std::string payload = "alpha-" + std::to_string(i);
      ASSERT_TRUE(
          store.Append("a", uint8_t(i % 3), payload.data(), payload.size())
              .ok());
    }
    const std::string other = "beta-payload";
    ASSERT_TRUE(store.Append("b", 9, other.data(), other.size()).ok());
    ASSERT_TRUE(store.Sync().ok());
    EXPECT_EQ(store.RecordCount("a"), 5u);
    EXPECT_EQ(store.RecordCount("b"), 1u);
    EXPECT_EQ(store.RecordCount("missing"), 0u);
  }
  // Reopen: the index is rebuilt from the segment scan.
  auto reopened = CheckpointStore::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  CheckpointStore& store = *reopened.value();
  EXPECT_EQ(store.recovered_truncated_bytes(), 0u);
  EXPECT_EQ(store.RecordCount("a"), 5u);
  EXPECT_EQ(store.Keys().size(), 2u);
  for (size_t i = 0; i < 5; ++i) {
    auto payload = store.ReadRecord("a", i);
    ASSERT_TRUE(payload.ok());
    const std::string expect = "alpha-" + std::to_string(i);
    EXPECT_EQ(std::string(payload->begin(), payload->end()), expect);
    EXPECT_EQ(store.RecordKind("a", i), uint8_t(i % 3));
  }
  EXPECT_EQ(store.KeyBytes("a"), 5 * 7u);
  EXPECT_EQ(store.RecordKind("a", 99), 0xFF);
  EXPECT_FALSE(store.ReadRecord("a", 99).ok());
  // Appending after a reopen extends the same key streams.
  const std::string more = "alpha-5";
  ASSERT_TRUE(store.Append("a", 1, more.data(), more.size()).ok());
  EXPECT_EQ(store.RecordCount("a"), 6u);
  RemoveTree(dir);
}

std::string OnlySegment(const std::string& dir) {
  // The store names its active segment seg-NNNNNN.log.open.
  return dir + "/seg-000000.log.open";
}

TEST(CheckpointStoreTest, TornTailIsTruncatedAtRecovery) {
  const std::string dir = MakeTempDir();
  {
    auto opened = CheckpointStore::Open(dir);
    ASSERT_TRUE(opened.ok());
    const std::string payload(100, 'x');
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          opened.value()->Append("k", 1, payload.data(), payload.size()).ok());
    }
    ASSERT_TRUE(opened.value()->Sync().ok());
  }
  // Simulate a crash mid-append: a partial frame at the tail.
  std::FILE* f = std::fopen(OnlySegment(dir).c_str(), "ab");
  ASSERT_NE(f, nullptr);
  const uint8_t torn[] = {0x40, 0x00, 0x00, 0x00, 0xAA, 0xBB};
  std::fwrite(torn, 1, sizeof(torn), f);
  std::fclose(f);

  auto reopened = CheckpointStore::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value()->recovered_truncated_bytes(), sizeof(torn));
  EXPECT_EQ(reopened.value()->RecordCount("k"), 3u);
  auto last = reopened.value()->ReadRecord("k", 2);
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(last->size(), 100u);
  RemoveTree(dir);
}

TEST(CheckpointStoreTest, CorruptRecordDropsTheSuffix) {
  const std::string dir = MakeTempDir();
  std::vector<uint64_t> sizes;
  {
    auto opened = CheckpointStore::Open(dir);
    ASSERT_TRUE(opened.ok());
    for (int i = 0; i < 4; ++i) {
      const std::string payload(50 + size_t(i), char('a' + i));
      ASSERT_TRUE(
          opened.value()->Append("k", 1, payload.data(), payload.size()).ok());
    }
    ASSERT_TRUE(opened.value()->Sync().ok());
  }
  // Flip one byte inside record 2's payload: its CRC no longer matches,
  // so recovery keeps records 0-1 and drops everything from the tear.
  std::FILE* f = std::fopen(OnlySegment(dir).c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  const long header = 8;
  const long record0 = 8 + 3 + 1 + 50;
  const long record1 = 8 + 3 + 1 + 51;
  std::fseek(f, header + record0 + record1 + 8 + 3 + 1 + 10, SEEK_SET);
  std::fputc('Z', f);
  std::fclose(f);

  auto reopened = CheckpointStore::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value()->RecordCount("k"), 2u);
  EXPECT_GT(reopened.value()->recovered_truncated_bytes(), 0u);
  auto kept = reopened.value()->ReadRecord("k", 1);
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(std::string(kept->begin(), kept->end()), std::string(51, 'b'));
  RemoveTree(dir);
}

// -------------------------------------------------------- window spill --

void ExpectSameWindow(const stream::WindowManager& all_ram,
                      const stream::WindowManager& spilled, uint64_t w) {
  const auto ram = all_ram.WindowSketch(w);
  const auto hydrated = spilled.WindowSketch(w);
  EXPECT_EQ(ram.start, hydrated.start) << "w=" << w;
  EXPECT_EQ(ram.length, hydrated.length) << "w=" << w;
  const auto ram_state = StateOf(*ram.sketch);
  const auto hydrated_state = StateOf(*hydrated.sketch);
  EXPECT_EQ(ram_state.second, hydrated_state.second) << "w=" << w;
  EXPECT_EQ(ram_state.first, hydrated_state.first) << "w=" << w;
}

TEST(WindowSpill, BitIdenticalToAllRamRing) {
  const std::string dir = MakeTempDir();
  auto opened = CheckpointStore::Open(dir);
  ASSERT_TRUE(opened.ok());

  SketchSpec spec;
  spec.kind = SketchKind::kCountSketch;
  spec.n = 1 << 12;
  spec.rows = 5;
  spec.buckets = 64;
  spec.seed = 3;
  auto ram_sketch = MakeSketch(spec);
  auto spill_sketch = MakeSketch(spec);

  stream::WindowManager::Options options;
  options.checkpoint_interval = 256;
  stream::WindowManager all_ram(ram_sketch.get(), options);
  stream::WindowManager spilling(spill_sketch.get(), options);
  stream::WindowManager::SpillOptions spill;
  spill.store = opened.value().get();
  spill.stream_key = "w:test";
  spill.resident_checkpoints = 2;
  spill.keyframe_interval = 4;
  spilling.AttachSpill(spill);

  const uint64_t total = 8192;
  const auto updates = stream::UniformTurnstile(spec.n, total, 100, 99);
  all_ram.PushBatch(updates.data(), updates.size());
  spilling.PushBatch(updates.data(), updates.size());

  ASSERT_TRUE(spilling.last_spill_error().ok())
      << spilling.last_spill_error().ToString();
  EXPECT_GT(spilling.spilled_count(), 0u);
  EXPECT_EQ(spilling.checkpoint_count(), all_ram.checkpoint_count());
  EXPECT_GT(spilling.SpilledBytes(), 0u);
  // CheckpointBytes counts RESIDENT state only — the spilled majority of
  // the ring must not be billed as RAM.
  EXPECT_LT(spilling.CheckpointBytes(), all_ram.CheckpointBytes());
  EXPECT_EQ(spilling.oldest_start(), all_ram.oldest_start());

  // Window widths on and OFF checkpoint boundaries, including ones whose
  // rounded start lands on a rehydrated (spilled) checkpoint.
  for (const uint64_t w :
       {uint64_t(0), uint64_t(1), uint64_t(256), uint64_t(300),
        uint64_t(1000), uint64_t(4096), uint64_t(5000), uint64_t(7937),
        total, uint64_t(99999)}) {
    ExpectSameWindow(all_ram, spilling, w);
  }
  RemoveTree(dir);
}

TEST(WindowSpill, MaxCheckpointsEvictsOldestSpilledFirst) {
  const std::string dir = MakeTempDir();
  auto opened = CheckpointStore::Open(dir);
  ASSERT_TRUE(opened.ok());

  SketchSpec spec;
  spec.kind = SketchKind::kCountMin;
  spec.n = 1 << 10;
  spec.rows = 4;
  spec.buckets = 32;
  spec.seed = 5;
  auto sketch = MakeSketch(spec);

  stream::WindowManager::Options options;
  options.checkpoint_interval = 128;
  options.max_checkpoints = 6;
  stream::WindowManager manager(sketch.get(), options);
  stream::WindowManager::SpillOptions spill;
  spill.store = opened.value().get();
  spill.stream_key = "w:evict";
  spill.resident_checkpoints = 2;
  spill.keyframe_interval = 3;
  manager.AttachSpill(spill);

  const auto updates = stream::UniformTurnstile(spec.n, 20 * 128, 50, 11);
  manager.PushBatch(updates.data(), updates.size());
  ASSERT_TRUE(manager.last_spill_error().ok());

  // The bound covers resident + spilled together; the oldest SPILLED
  // checkpoints were evicted first, so the ring kept its newest budget.
  EXPECT_EQ(manager.checkpoint_count(), 6u);
  EXPECT_EQ(manager.spilled_count(), 4u);
  // 21 seal positions total (0..20*128); 6 retained => oldest is #15.
  EXPECT_EQ(manager.oldest_start(), (21 - 6) * 128u);

  // A window reaching past the evicted prefix clamps to the oldest
  // RETAINED boundary — which is spilled, so the answer rehydrates.
  const auto window = manager.WindowSketch(20 * 128);
  EXPECT_EQ(window.start, manager.oldest_start());
  EXPECT_EQ(window.start + window.length, manager.updates_seen());
  RemoveTree(dir);
}

// --------------------------------------------------- server persistence --

server::SketchConfig WindowedConfig(uint64_t seed) {
  server::SketchConfig config;
  config.spec.kind = SketchKind::kCsHeavyHitters;
  config.spec.n = 1 << 10;
  config.spec.p = 1.0;
  config.spec.phi = 0.05;
  config.spec.seed = seed;
  config.window_checkpoint = 512;
  return config;
}

std::vector<stream::Update> TenantStream(uint64_t tenant, size_t count) {
  std::vector<stream::Update> updates;
  updates.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    uint64_t h = (tenant + 1) * 0x9E3779B97F4A7C15ull + i;
    h ^= h >> 31;
    h *= 0xFF51AFD7ED558CCDull;
    h ^= h >> 33;
    updates.push_back({i % 3 == 0 ? tenant % 1024 : h % 1024, +1});
  }
  return updates;
}

server::Client MustConnect(const server::Server& server) {
  auto client = server::Client::Connect("127.0.0.1", server.port());
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return std::move(client.value());
}

TEST(ServerPersist, CleanRestartRestoresEveryTenant) {
  const std::string dir = MakeTempDir();
  server::Server::Options options;
  options.port = 0;
  options.data_dir = dir;
  options.snapshot_interval_ms = 0;  // rely on the final Stop() snapshot

  QueryResult before0, before1;
  server::SnapshotBlob blob_before;
  {
    server::Server daemon(options);
    ASSERT_TRUE(daemon.Start().ok());
    EXPECT_EQ(daemon.restored_tenants(), 0u);
    server::Client client = MustConnect(daemon);
    ASSERT_TRUE(client.Create("acme", "clicks", WindowedConfig(1)).ok());
    ASSERT_TRUE(client.Create("umbrella", "errors", WindowedConfig(2)).ok());
    ASSERT_TRUE(client.Ingest("acme", "clicks", TenantStream(7, 2000)).ok());
    ASSERT_TRUE(
        client.Ingest("umbrella", "errors", TenantStream(8, 1500)).ok());
    auto q0 = client.Query("acme", "clicks");
    auto q1 = client.Query("umbrella", "errors");
    ASSERT_TRUE(q0.ok() && q1.ok());
    before0 = *q0;
    before1 = *q1;
    auto blob = client.Snapshot("acme", "clicks");
    ASSERT_TRUE(blob.ok());
    blob_before = *blob;
    daemon.Stop();
  }
  {
    server::Server daemon(options);
    ASSERT_TRUE(daemon.Start().ok());
    EXPECT_EQ(daemon.restored_tenants(), 2u);
    server::Client client = MustConnect(daemon);
    auto q0 = client.Query("acme", "clicks");
    auto q1 = client.Query("umbrella", "errors");
    ASSERT_TRUE(q0.ok() && q1.ok());
    EXPECT_EQ(*q0, before0);
    EXPECT_EQ(*q1, before1);
    // The re-snapshot is byte-identical: same config, same update count,
    // same serialized state.
    auto blob = client.Snapshot("acme", "clicks");
    ASSERT_TRUE(blob.ok());
    EXPECT_EQ(blob->updates_seen, blob_before.updates_seen);
    EXPECT_EQ(blob->state_bits, blob_before.state_bits);
    EXPECT_EQ(blob->state_words, blob_before.state_words);
    EXPECT_EQ(blob->config.spec, blob_before.config.spec);
    // A restored tenant keeps serving ingest (and re-persists on stop).
    ASSERT_TRUE(client.Ingest("acme", "clicks", TenantStream(7, 100)).ok());
    daemon.Stop();
  }
  RemoveTree(dir);
}

TEST(ServerPersist, IdleTenantsEvictAndRehydrateLazily) {
  const std::string dir = MakeTempDir();
  server::Server::Options options;
  options.port = 0;
  options.data_dir = dir;
  options.snapshot_interval_ms = 25;
  options.idle_timeout_ms = 100;
  server::Server daemon(options);
  ASSERT_TRUE(daemon.Start().ok());
  server::Client client = MustConnect(daemon);
  ASSERT_TRUE(client.Create("idle", "s", WindowedConfig(3)).ok());
  ASSERT_TRUE(client.Ingest("idle", "s", TenantStream(5, 1200)).ok());
  auto before = client.Query("idle", "s");
  ASSERT_TRUE(before.ok());

  // Wait until the background pass has evicted the tenant (observable
  // through STATS: still listed, but no longer resident).
  bool evicted = false;
  for (int tries = 0; tries < 100 && !evicted; ++tries) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    auto stats = client.Stats();
    ASSERT_TRUE(stats.ok());
    for (const server::TenantPersistStats& tenant : stats->per_tenant) {
      if (tenant.name == "idle/s" && !tenant.resident) {
        evicted = true;
        EXPECT_GT(tenant.spilled_bytes, 0u);
      }
    }
  }
  ASSERT_TRUE(evicted) << "tenant never evicted";

  // The next touch rehydrates transparently and answers identically.
  auto after = client.Query("idle", "s");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(*after, *before);
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  bool resident = false;
  for (const server::TenantPersistStats& tenant : stats->per_tenant) {
    if (tenant.name == "idle/s" && tenant.resident) resident = true;
  }
  EXPECT_TRUE(resident);
  daemon.Stop();
  RemoveTree(dir);
}

// TSan does not support the fork-with-threads pattern this test needs
// (the child SIGKILLs before doing anything the sanitizer would check
// anyway); the ASan job and the plain jobs run it.
#if defined(__SANITIZE_THREAD__)
#define LPS_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define LPS_UNDER_TSAN 1
#endif
#endif

#ifndef LPS_UNDER_TSAN

TEST(ServerPersist, SigkilledDaemonRebootsAnsweringIdentically) {
  const std::string dir = MakeTempDir();
  int ports[2];
  ASSERT_EQ(::pipe(ports), 0);

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Daemon process: serve with aggressive background snapshots until
    // the parent SIGKILLs us. _exit on any failure; never return into
    // gtest from the child.
    ::close(ports[0]);
    server::Server::Options options;
    options.port = 0;
    options.data_dir = dir;
    options.snapshot_interval_ms = 20;
    server::Server daemon(options);
    if (!daemon.Start().ok()) ::_exit(3);
    const int port = daemon.port();
    if (::write(ports[1], &port, sizeof(port)) != ssize_t(sizeof(port))) {
      ::_exit(4);
    }
    for (;;) ::pause();
  }

  ::close(ports[1]);
  int port = 0;
  ASSERT_EQ(::read(ports[0], &port, sizeof(port)), ssize_t(sizeof(port)));
  ::close(ports[0]);

  QueryResult before;
  server::SnapshotBlob blob_before;
  {
    auto connected = server::Client::Connect("127.0.0.1", port);
    ASSERT_TRUE(connected.ok()) << connected.status().ToString();
    server::Client client = std::move(connected.value());
    ASSERT_TRUE(client.Create("crash", "s", WindowedConfig(9)).ok());
    ASSERT_TRUE(client.Ingest("crash", "s", TenantStream(4, 1700)).ok());
    auto query = client.Query("crash", "s");
    ASSERT_TRUE(query.ok());
    before = *query;
    auto blob = client.Snapshot("crash", "s");
    ASSERT_TRUE(blob.ok());
    blob_before = *blob;
    // Give the background snapshot thread time to persist the ingest
    // (several 20 ms passes), then pull the plug.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
  }
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int wait_status = 0;
  ASSERT_EQ(::waitpid(child, &wait_status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wait_status));

  // Reboot over the same data dir, in-process this time.
  server::Server::Options options;
  options.port = 0;
  options.data_dir = dir;
  server::Server daemon(options);
  ASSERT_TRUE(daemon.Start().ok());
  EXPECT_EQ(daemon.restored_tenants(), 1u);
  server::Client client = MustConnect(daemon);
  auto query = client.Query("crash", "s");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(*query, before);
  auto blob = client.Snapshot("crash", "s");
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(blob->updates_seen, blob_before.updates_seen);
  EXPECT_EQ(blob->state_words, blob_before.state_words);
  EXPECT_EQ(blob->state_bits, blob_before.state_bits);
  daemon.Stop();
  RemoveTree(dir);
}

#endif  // !LPS_UNDER_TSAN

// ------------------------------------------- atomic bit-file container --

TEST(AtomicBitFiles, WriteReportsFailureAndLeavesNoDebris) {
  BitWriter writer;
  writer.WriteU64(0xDEADBEEFCAFEF00Dull);
  writer.WriteBits(5, 3);
  // Unwritable destination: a Status, not silence or an abort.
  EXPECT_FALSE(
      WriteBitsToFile(writer, "/nonexistent-dir/deep/file.bits").ok());

  const std::string dir = MakeTempDir();
  const std::string path = dir + "/state.bits";
  ASSERT_TRUE(WriteBitsToFile(writer, path).ok());
  auto read = ReadBitsFromFile(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  BitReader reader = std::move(read.value());
  EXPECT_EQ(reader.ReadU64(), 0xDEADBEEFCAFEF00Dull);
  EXPECT_EQ(reader.ReadBits(3), 5u);
  EXPECT_EQ(reader.bits_remaining(), 0u);
  // The atomic tmp-file was renamed away, not left behind.
  std::FILE* listing =
      ::popen(("ls -1 '" + dir + "'").c_str(), "r");
  ASSERT_NE(listing, nullptr);
  char line[256];
  size_t files = 0;
  while (std::fgets(line, sizeof(line), listing) != nullptr) ++files;
  ::pclose(listing);
  EXPECT_EQ(files, 1u);
  RemoveTree(dir);
}

}  // namespace
}  // namespace lps
