#include <gtest/gtest.h>

#include <cmath>

#include "src/norm/l0_norm.h"
#include "src/norm/lp_norm.h"
#include "src/stream/exact_vector.h"
#include "src/stream/generators.h"
#include "src/util/serialize.h"

namespace lps::norm {
namespace {

class LpNorm2Approx : public ::testing::TestWithParam<double> {};

// Lemma 2: ||x||_p <= r <= 2 ||x||_p with high probability.
TEST_P(LpNorm2Approx, CoversTwoApproxWindow) {
  const double p = GetParam();
  const uint64_t n = 1024;
  const auto stream = stream::ZipfianVector(n, 1.1, 1000, true, 1);
  stream::ExactVector x(n);
  x.Apply(stream);
  const double truth = x.NormP(p);

  int within = 0;
  const int trials = 40;
  // p < 1 stable laws have a flatter density at the median, so the median
  // estimator needs more rows for the same concentration (C10's bench
  // sweeps this curve).
  const int rows = p < 1.0 ? 400 : 128;
  for (int trial = 0; trial < trials; ++trial) {
    LpNormEstimator est(p, rows, 100 + static_cast<uint64_t>(trial));
    for (const auto& u : stream) {
      est.Update(u.index, static_cast<double>(u.delta));
    }
    const double r = est.Estimate2Approx();
    if (r >= truth && r <= 2 * truth) ++within;
  }
  EXPECT_GE(within, trials - 5) << "p = " << p;
}

INSTANTIATE_TEST_SUITE_P(Ps, LpNorm2Approx,
                         ::testing::Values(0.5, 1.0, 1.5, 2.0));

TEST(LpNormEstimator, ZeroVectorGivesZero) {
  LpNormEstimator est(1.0, 64, 1);
  EXPECT_DOUBLE_EQ(est.Estimate2Approx(), 0.0);
}

TEST(LpNormEstimator, DefaultRowsGrowWithN) {
  EXPECT_GE(LpNormEstimator::DefaultRows(1 << 10), 96);
  EXPECT_GT(LpNormEstimator::DefaultRows(1ULL << 40),
            LpNormEstimator::DefaultRows(1 << 10));
}

TEST(L0Estimator, ZeroVector) {
  L0Estimator est(1024, 15, 1);
  EXPECT_DOUBLE_EQ(est.Estimate(), 0.0);
}

TEST(L0Estimator, DeletionsReduceCount) {
  L0Estimator est(1024, 25, 2);
  for (uint64_t i = 0; i < 600; ++i) est.Update(i, 1);
  for (uint64_t i = 0; i < 595; ++i) est.Update(i, -1);  // 5 survivors
  const double e = est.Estimate();
  EXPECT_GT(e, 0.5);
  EXPECT_LT(e, 40.0);
}

class L0EstimatorAccuracy : public ::testing::TestWithParam<int> {};

TEST_P(L0EstimatorAccuracy, ConstantFactorAcrossSupportSizes) {
  const uint64_t support = 1ULL << GetParam();
  const uint64_t n = 1 << 14;
  int good = 0;
  const int trials = 20;
  for (int trial = 0; trial < trials; ++trial) {
    L0Estimator est(n, 25, 50 + static_cast<uint64_t>(trial));
    const auto stream = stream::SparseVector(n, support, 100, trial);
    for (const auto& u : stream) est.Update(u.index, u.delta);
    const double e = est.Estimate();
    if (e >= support / 4.0 && e <= support * 4.0) ++good;
  }
  EXPECT_GE(good, trials - 3) << "support " << support;
}

INSTANTIATE_TEST_SUITE_P(Supports, L0EstimatorAccuracy,
                         ::testing::Values(2, 4, 6, 8, 10, 12));

TEST(L0Estimator, SerializeRoundTrip) {
  L0Estimator a(512, 9, 3);
  for (uint64_t i = 0; i < 100; ++i) a.Update(3 * i % 512, 1);
  BitWriter w;
  a.SerializeCounters(&w);
  L0Estimator b(512, 9, 3);
  BitReader r(w);
  b.DeserializeCounters(&r);
  EXPECT_DOUBLE_EQ(a.Estimate(), b.Estimate());
}

TEST(L0Estimator, LinearityAcrossParties) {
  // fp(x) - fp(y) = fp(x - y): equal vectors cancel to zero.
  L0Estimator alice(512, 9, 4), bob(512, 9, 4);
  for (uint64_t i = 0; i < 200; ++i) {
    alice.Update(i, 1);
    bob.Update(i, 1);
  }
  alice.Update(300, 1);  // one extra coordinate
  BitWriter w;
  alice.SerializeCounters(&w);
  L0Estimator diff(512, 9, 4);
  BitReader r(w);
  diff.DeserializeCounters(&r);
  for (uint64_t i = 0; i < 200; ++i) diff.Update(i, -1);
  const double e = diff.Estimate();
  EXPECT_GT(e, 0.0);
  EXPECT_LT(e, 8.0);
}

}  // namespace
}  // namespace lps::norm
