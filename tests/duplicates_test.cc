#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "src/duplicates/duplicates.h"
#include "src/duplicates/positive_finder.h"
#include "src/stream/generators.h"

namespace lps::duplicates {
namespace {

bool IsDuplicate(const stream::LetterStream& letters, uint64_t letter) {
  int count = 0;
  for (uint64_t l : letters) count += (l == letter);
  return count >= 2;
}

TEST(DuplicateFinder, FindsPlantedDuplicate) {
  const uint64_t n = 256;
  int found = 0, wrong = 0;
  const int trials = 40;
  for (int trial = 0; trial < trials; ++trial) {
    const auto letters =
        stream::DuplicateStream(n, 1, static_cast<uint64_t>(trial));
    DuplicateFinder finder({n, 0.2, 0, 1000 + static_cast<uint64_t>(trial)});
    for (uint64_t l : letters) finder.ProcessItem(l);
    auto res = finder.Find();
    if (res.ok()) {
      ++found;
      if (!IsDuplicate(letters, res.value())) ++wrong;
    }
  }
  EXPECT_GE(found, trials * 3 / 4);
  EXPECT_EQ(wrong, 0);  // wrong answers are low-probability events
}

TEST(DuplicateFinder, ManyDuplicatesEasier) {
  const uint64_t n = 256;
  int found = 0;
  const int trials = 30;
  for (int trial = 0; trial < trials; ++trial) {
    const auto letters =
        stream::DuplicateStream(n, 64, static_cast<uint64_t>(trial));
    DuplicateFinder finder({n, 0.2, 0, 2000 + static_cast<uint64_t>(trial)});
    for (uint64_t l : letters) finder.ProcessItem(l);
    auto res = finder.Find();
    if (res.ok() && IsDuplicate(letters, res.value())) ++found;
  }
  EXPECT_GE(found, trials - 3);
}

TEST(SparseDuplicateFinder, CertifiesNoDuplicate) {
  // Duplicate-free streams of length n - s: NO-DUPLICATE with probability 1
  // (the certificate comes from exact sparse recovery).
  const uint64_t n = 512, s = 20;
  for (uint64_t trial = 0; trial < 15; ++trial) {
    const auto letters = stream::ShortStreamWithDuplicates(n, s, 0, trial);
    SparseDuplicateFinder finder({n, s, 0.25, 0, 3000 + trial});
    for (uint64_t l : letters) finder.ProcessItem(l);
    const auto outcome = finder.Find();
    EXPECT_EQ(outcome.kind, SparseDuplicateFinder::Kind::kNoDuplicate);
    EXPECT_TRUE(outcome.exact);
  }
}

TEST(SparseDuplicateFinder, FindsSparseDuplicatesExactly) {
  // Few duplicates: x stays 5s-sparse, recovery answers exactly.
  const uint64_t n = 512, s = 20;
  for (uint64_t trial = 0; trial < 15; ++trial) {
    const auto letters = stream::ShortStreamWithDuplicates(n, s, 3, trial);
    SparseDuplicateFinder finder({n, s, 0.25, 0, 4000 + trial});
    for (uint64_t l : letters) finder.ProcessItem(l);
    const auto outcome = finder.Find();
    ASSERT_EQ(outcome.kind, SparseDuplicateFinder::Kind::kDuplicate);
    EXPECT_TRUE(outcome.exact);
    EXPECT_TRUE(IsDuplicate(letters, outcome.duplicate));
  }
}

TEST(SparseDuplicateFinder, DenseCaseFallsBackToSampler) {
  // Many duplicates blow the 5s recovery budget; the sampler path must
  // still find one with good probability and never report NO-DUPLICATE.
  const uint64_t n = 512, s = 4;
  int found = 0;
  const int trials = 25;
  for (uint64_t trial = 0; trial < trials; ++trial) {
    const auto letters = stream::ShortStreamWithDuplicates(n, s, 120, trial);
    SparseDuplicateFinder finder({n, s, 0.2, 0, 5000 + trial});
    for (uint64_t l : letters) finder.ProcessItem(l);
    const auto outcome = finder.Find();
    ASSERT_NE(outcome.kind, SparseDuplicateFinder::Kind::kNoDuplicate);
    if (outcome.kind == SparseDuplicateFinder::Kind::kDuplicate) {
      EXPECT_FALSE(outcome.exact);
      EXPECT_TRUE(IsDuplicate(letters, outcome.duplicate));
      ++found;
    }
  }
  EXPECT_GE(found, trials * 2 / 3);
}

TEST(OversampledDuplicateFinder, PicksStrategyByCrossover) {
  // n/s < log2 n -> position sampling; n/s >= log2 n -> L1 sampler.
  OversampledDuplicateFinder heavy_overlap({1024, 512, 0.25, 0, 1, 0});
  EXPECT_EQ(heavy_overlap.strategy(),
            OversampledDuplicateFinder::Strategy::kPositionSampling);
  OversampledDuplicateFinder light_overlap({1024, 2, 0.25, 0, 1, 0});
  EXPECT_EQ(light_overlap.strategy(),
            OversampledDuplicateFinder::Strategy::kL1Sampler);
}

TEST(OversampledDuplicateFinder, PositionSamplingFindsDuplicates) {
  const uint64_t n = 1024, s = 256;  // length n + s, many duplicates
  int found = 0, wrong = 0;
  const int trials = 40;
  for (uint64_t trial = 0; trial < trials; ++trial) {
    const auto letters = stream::DuplicateStream(n, s, trial);
    OversampledDuplicateFinder finder({n, s, 0.25, 0, 6000 + trial, 1});
    for (uint64_t l : letters) finder.ProcessItem(l);
    auto res = finder.Find();
    if (res.ok()) {
      ++found;
      if (!IsDuplicate(letters, res.value())) ++wrong;
    }
  }
  EXPECT_GE(found, trials * 3 / 5);  // >= 1 - (1 - s/(n+s))^{4 ceil(n/s)}
  EXPECT_EQ(wrong, 0);
}

TEST(OversampledDuplicateFinder, L1StrategyHandlesSmallS) {
  const uint64_t n = 256, s = 1;
  int found = 0;
  const int trials = 25;
  for (uint64_t trial = 0; trial < trials; ++trial) {
    const auto letters = stream::DuplicateStream(n, s, trial);
    OversampledDuplicateFinder finder({n, s, 0.2, 0, 7000 + trial, 0});
    EXPECT_EQ(finder.strategy(),
              OversampledDuplicateFinder::Strategy::kL1Sampler);
    for (uint64_t l : letters) finder.ProcessItem(l);
    auto res = finder.Find();
    if (res.ok() && IsDuplicate(letters, res.value())) ++found;
  }
  EXPECT_GE(found, trials * 3 / 5);
}

TEST(PositiveFinder, NegativeDeficitAlwaysHasPositive) {
  // sum x_i = +3 (deficit -3): a positive coordinate exists and the finder
  // locates one with good probability.
  const uint64_t n = 256;
  int found = 0;
  const int trials = 30;
  for (uint64_t trial = 0; trial < trials; ++trial) {
    PositiveFinder finder({n, 4, 0.2, 0, 8000 + trial});
    for (uint64_t i = 0; i < 100; ++i) finder.Update(i, -1);
    finder.Update(200, 60);
    finder.Update(201, 43);
    EXPECT_EQ(finder.Deficit(), -3);
    const auto outcome = finder.Find();
    if (outcome.kind == PositiveFinder::Kind::kFound) {
      EXPECT_TRUE(outcome.index == 200 || outcome.index == 201);
      ++found;
    }
  }
  EXPECT_GE(found, trials * 3 / 4);
}

TEST(PositiveFinder, CertifiesAllNonPositive) {
  const uint64_t n = 256;
  PositiveFinder finder({n, 4, 0.25, 0, 11});
  finder.Update(3, -5);
  finder.Update(90, -1);
  const auto outcome = finder.Find();
  EXPECT_EQ(outcome.kind, PositiveFinder::Kind::kNone);
}

TEST(PositiveFinder, SparsePositiveFoundExactly) {
  const uint64_t n = 256;
  PositiveFinder finder({n, 4, 0.25, 0, 12});
  finder.Update(3, -5);
  finder.Update(17, 2);
  const auto outcome = finder.Find();
  ASSERT_EQ(outcome.kind, PositiveFinder::Kind::kFound);
  EXPECT_EQ(outcome.index, 17u);
}

}  // namespace
}  // namespace lps::duplicates
