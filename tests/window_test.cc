// Sketch subtraction and sliding windows.
//
// Part 1 — MergeNegated algebra, for every LinearSketch implementer:
// (A + B) - B == A. For the exact-arithmetic families (GF(2^61-1)
// fingerprints/syndromes, integer-valued double counters) the identity
// must hold BIT-IDENTICALLY on the serialized state, including when the
// subtrahend or the result round-trips through Serialize/Deserialize.
// For the genuinely real-scaled families ((A + B) - B re-rounds, so
// state agrees only to ULPs) the query/sample outcomes must agree.
//
// Part 2 — WindowManager: a checkpoint ring over prefix sketches makes
// WindowSketch(w) = S(now) - S(expired) materialize any trailing window
// in O(sketch size). For exact structures the materialized window is
// bit-identical to a sketch fed only the window's updates, across
// checkpoint intervals {1, 64, 4096}, through pipeline epoch alignment,
// and under ring eviction.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/apps/moment_estimation.h"
#include "src/core/ako_sampler.h"
#include "src/core/fis_l0_sampler.h"
#include "src/core/l0_sampler.h"
#include "src/core/lp_sampler.h"
#include "src/duplicates/duplicates.h"
#include "src/duplicates/positive_finder.h"
#include "src/heavy/heavy_hitters.h"
#include "src/norm/l0_norm.h"
#include "src/norm/lp_norm.h"
#include "src/recovery/one_sparse.h"
#include "src/recovery/sparse_recovery.h"
#include "src/sketch/ams_f2.h"
#include "src/sketch/count_min.h"
#include "src/sketch/count_sketch.h"
#include "src/sketch/dyadic.h"
#include "src/sketch/stable_sketch.h"
#include "src/stream/generators.h"
#include "src/stream/linear_sketch.h"
#include "src/stream/parallel_pipeline.h"
#include "src/stream/window_manager.h"
#include "src/util/serialize.h"

namespace lps {
namespace {

using stream::ParallelPipeline;
using stream::UpdateStream;
using stream::WindowManager;

constexpr uint64_t kN = 2048;
constexpr int kLogN = 11;

struct SerializedState {
  std::vector<uint64_t> words;
  size_t bits;
  bool operator==(const SerializedState& other) const {
    return bits == other.bits && words == other.words;
  }
};

SerializedState StateOf(const LinearSketch& sketch) {
  BitWriter writer;
  sketch.Serialize(&writer);
  return {writer.words(), writer.bit_count()};
}

/// Serialize -> fresh instance -> Deserialize; the canonical state copy.
std::unique_ptr<LinearSketch> RoundTrip(const LinearSketch& sketch) {
  BitWriter writer;
  sketch.Serialize(&writer);
  BitReader reader(writer);
  auto copy = DeserializeAnySketch(&reader);
  EXPECT_NE(copy, nullptr);
  return copy;
}

UpdateStream PrefixStream() {
  return stream::UniformTurnstile(kN, 3000, 100, 51);
}

UpdateStream SuffixStream() {
  return stream::UniformTurnstile(kN, 2000, 100, 52);
}

/// The exact-family property: (A + B) - B == A bit-identically, with and
/// without serialize round-trips on the subtrahend and the difference.
template <typename T, typename MakeFn>
void ExpectSubtractionBitIdentical(MakeFn make, const UpdateStream& s1,
                                   const UpdateStream& s2) {
  T a = make();
  a.UpdateBatch(s1.data(), s1.size());
  const SerializedState want = StateOf(a);

  T b = make();
  b.UpdateBatch(s2.data(), s2.size());

  // Live subtrahend.
  T ab = make();
  ab.UpdateBatch(s1.data(), s1.size());
  ab.UpdateBatch(s2.data(), s2.size());
  ab.MergeNegated(b);
  EXPECT_TRUE(StateOf(ab) == want) << "live subtrahend";

  // The difference round-trips through the wire format.
  auto reloaded = RoundTrip(ab);
  ASSERT_NE(reloaded, nullptr);
  EXPECT_TRUE(StateOf(*reloaded) == want) << "difference round-trip";

  // Deserialized subtrahend (the WindowManager path: checkpoints are
  // serialized prefixes).
  T ab2 = make();
  ab2.UpdateBatch(s1.data(), s1.size());
  ab2.UpdateBatch(s2.data(), s2.size());
  auto b_reloaded = RoundTrip(b);
  ASSERT_NE(b_reloaded, nullptr);
  ab2.MergeNegated(*b_reloaded);
  EXPECT_TRUE(StateOf(ab2) == want) << "deserialized subtrahend";
}

/// The FP-family property: build (prefix + suffix) - prefix and compare
/// its queries against a sketch fed only the suffix. `query` receives
/// (windowed, solo).
template <typename T, typename MakeFn, typename QueryFn>
void ExpectSubtractionQueryIdentical(MakeFn make, QueryFn query) {
  const UpdateStream prefix = PrefixStream();
  const UpdateStream suffix = SuffixStream();
  T solo = make();
  solo.UpdateBatch(suffix.data(), suffix.size());

  T windowed = make();
  windowed.UpdateBatch(prefix.data(), prefix.size());
  windowed.UpdateBatch(suffix.data(), suffix.size());
  T expired = make();
  expired.UpdateBatch(prefix.data(), prefix.size());
  windowed.MergeNegated(expired);
  query(windowed, solo);

  // And through a serialize round-trip of the difference.
  auto reloaded = RoundTrip(windowed);
  ASSERT_NE(reloaded, nullptr);
  query(*dynamic_cast<T*>(reloaded.get()), solo);
}

// ------------------------------------------------ exact-arithmetic kinds --

TEST(SubtractionAlgebra, CountSketchBitIdentical) {
  ExpectSubtractionBitIdentical<sketch::CountSketch>(
      [] { return sketch::CountSketch(9, 48, 61); }, PrefixStream(),
      SuffixStream());
}

TEST(SubtractionAlgebra, CountMinBitIdentical) {
  ExpectSubtractionBitIdentical<sketch::CountMin>(
      [] { return sketch::CountMin(9, 48, 62); }, PrefixStream(),
      SuffixStream());
}

TEST(SubtractionAlgebra, AmsF2BitIdentical) {
  ExpectSubtractionBitIdentical<sketch::AmsF2>(
      [] { return sketch::AmsF2(9, 16, 63); }, PrefixStream(),
      SuffixStream());
}

TEST(SubtractionAlgebra, DyadicCountMinBitIdentical) {
  ExpectSubtractionBitIdentical<sketch::DyadicCountMin>(
      [] { return sketch::DyadicCountMin(kLogN, 5, 32, 64); }, PrefixStream(),
      SuffixStream());
}

TEST(SubtractionAlgebra, DyadicCountSketchBitIdentical) {
  ExpectSubtractionBitIdentical<sketch::DyadicCountSketch>(
      [] { return sketch::DyadicCountSketch(kLogN, 5, 32, 65); },
      PrefixStream(), SuffixStream());
}

TEST(SubtractionAlgebra, L0EstimatorBitIdentical) {
  ExpectSubtractionBitIdentical<norm::L0Estimator>(
      [] { return norm::L0Estimator(kN, 9, 66); }, PrefixStream(),
      SuffixStream());
}

TEST(SubtractionAlgebra, OneSparseBitIdentical) {
  ExpectSubtractionBitIdentical<recovery::OneSparse>(
      [] { return recovery::OneSparse(kN, 67); }, PrefixStream(),
      SuffixStream());
}

TEST(SubtractionAlgebra, SparseRecoveryBitIdentical) {
  ExpectSubtractionBitIdentical<recovery::SparseRecovery>(
      [] { return recovery::SparseRecovery(kN, 8, 68); }, PrefixStream(),
      SuffixStream());
}

TEST(SubtractionAlgebra, L0SamplerBitIdentical) {
  ExpectSubtractionBitIdentical<core::L0Sampler>(
      [] {
        return core::L0Sampler(core::L0SamplerParams{kN, 0.25, 0, 69, false});
      },
      PrefixStream(), SuffixStream());
}

TEST(SubtractionAlgebra, FisL0SamplerBitIdentical) {
  ExpectSubtractionBitIdentical<core::FisL0Sampler>(
      [] { return core::FisL0Sampler(kN, 70); }, PrefixStream(),
      SuffixStream());
}

TEST(SubtractionAlgebra, CmHeavyHittersBitIdentical) {
  ExpectSubtractionBitIdentical<heavy::CmHeavyHitters>(
      [] {
        heavy::CmHeavyHitters::Params params;
        params.n = kN;
        params.phi = 0.1;
        params.seed = 71;
        return heavy::CmHeavyHitters(params);
      },
      PrefixStream(), SuffixStream());
}

TEST(SubtractionAlgebra, DyadicHeavyHittersBitIdentical) {
  ExpectSubtractionBitIdentical<heavy::DyadicHeavyHitters>(
      [] { return heavy::DyadicHeavyHitters(kLogN, 0.1, 72); },
      PrefixStream(), SuffixStream());
}

TEST(SubtractionAlgebra, CsHeavyHittersStrictTurnstileBitIdentical) {
  // Strict turnstile at p = 1: every counter is integer-valued, so even
  // this composite (count-sketch + dyadic tree + running sum) subtracts
  // bit-exactly. Positive deltas only.
  UpdateStream s1 = PrefixStream();
  UpdateStream s2 = SuffixStream();
  for (auto* s : {&s1, &s2}) {
    for (auto& u : *s) {
      if (u.delta < 0) u.delta = -u.delta;
      if (u.delta == 0) u.delta = 1;
    }
  }
  ExpectSubtractionBitIdentical<heavy::CsHeavyHitters>(
      [] {
        heavy::CsHeavyHitters::Params params;
        params.n = kN;
        params.p = 1.0;
        params.phi = 0.1;
        params.strict_turnstile = true;
        params.seed = 73;
        return heavy::CsHeavyHitters(params);
      },
      s1, s2);
}

// ---------------------------------------------------------- FP-scaled kinds --

TEST(SubtractionAlgebra, StableSketchQueryAgreement) {
  ExpectSubtractionQueryIdentical<sketch::StableSketch>(
      [] { return sketch::StableSketch(1.0, 48, 74); },
      [](const sketch::StableSketch& windowed,
         const sketch::StableSketch& solo) {
        EXPECT_NEAR(windowed.EstimateNorm(), solo.EstimateNorm(),
                    1e-6 * std::abs(solo.EstimateNorm()));
      });
}

TEST(SubtractionAlgebra, LpNormEstimatorQueryAgreement) {
  ExpectSubtractionQueryIdentical<norm::LpNormEstimator>(
      [] { return norm::LpNormEstimator(1.0, 64, 75); },
      [](const norm::LpNormEstimator& windowed,
         const norm::LpNormEstimator& solo) {
        EXPECT_NEAR(windowed.Estimate2Approx(), solo.Estimate2Approx(),
                    1e-6 * solo.Estimate2Approx());
      });
}

TEST(SubtractionAlgebra, LpSamplerSampleAgreement) {
  ExpectSubtractionQueryIdentical<core::LpSampler>(
      [] {
        core::LpSamplerParams params;
        params.n = kN;
        params.p = 1.0;
        params.eps = 0.25;
        params.repetitions = 8;
        params.seed = 76;
        return core::LpSampler(params);
      },
      [](const core::LpSampler& windowed, const core::LpSampler& solo) {
        const auto want = solo.Sample();
        const auto got = windowed.Sample();
        ASSERT_EQ(want.ok(), got.ok());
        if (want.ok()) {
          EXPECT_EQ(want.value().index, got.value().index);
          EXPECT_NEAR(want.value().estimate, got.value().estimate,
                      1e-6 * std::abs(want.value().estimate));
        }
      });
}

TEST(SubtractionAlgebra, AkoSamplerSampleAgreement) {
  ExpectSubtractionQueryIdentical<core::AkoSampler>(
      [] {
        core::LpSamplerParams params;
        params.n = kN;
        params.p = 1.0;
        params.eps = 0.5;
        params.repetitions = 4;
        params.seed = 77;
        return core::AkoSampler(params);
      },
      [](const core::AkoSampler& windowed, const core::AkoSampler& solo) {
        const auto want = solo.Sample();
        const auto got = windowed.Sample();
        ASSERT_EQ(want.ok(), got.ok());
        if (want.ok()) {
          EXPECT_EQ(want.value().index, got.value().index);
        }
      });
}

TEST(SubtractionAlgebra, CsHeavyHittersGeneralQueryAgreement) {
  ExpectSubtractionQueryIdentical<heavy::CsHeavyHitters>(
      [] {
        heavy::CsHeavyHitters::Params params;
        params.n = kN;
        params.p = 1.5;
        params.phi = 0.2;
        params.norm_rows = 96;
        params.seed = 78;
        return heavy::CsHeavyHitters(params);
      },
      [](const heavy::CsHeavyHitters& windowed,
         const heavy::CsHeavyHitters& solo) {
        EXPECT_EQ(windowed.Query(), solo.Query());
      });
}

TEST(SubtractionAlgebra, MomentEstimatorQueryAgreement) {
  ExpectSubtractionQueryIdentical<apps::MomentEstimator>(
      [] {
        apps::MomentEstimator::Params params;
        params.n = kN;
        params.p = 3.0;
        params.samples = 8;
        params.seed = 79;
        return apps::MomentEstimator(params);
      },
      [](const apps::MomentEstimator& windowed,
         const apps::MomentEstimator& solo) {
        const auto want = solo.Estimate();
        const auto got = windowed.Estimate();
        ASSERT_EQ(want.ok(), got.ok());
        if (want.ok()) {
          EXPECT_NEAR(want.value(), got.value(),
                      1e-6 * std::abs(want.value()));
        }
      });
}

TEST(SubtractionAlgebra, PositiveFinderFindAgreement) {
  ExpectSubtractionQueryIdentical<duplicates::PositiveFinder>(
      [] {
        return duplicates::PositiveFinder(
            duplicates::PositiveFinder::Params{kN, 4, 0.2, 8, 80});
      },
      [](const duplicates::PositiveFinder& windowed,
         const duplicates::PositiveFinder& solo) {
        EXPECT_EQ(windowed.Deficit(), solo.Deficit());
        const auto want = solo.Find();
        const auto got = windowed.Find();
        EXPECT_EQ(static_cast<int>(want.kind), static_cast<int>(got.kind));
        if (want.kind == duplicates::PositiveFinder::Kind::kFound) {
          EXPECT_EQ(want.index, got.index);
        }
      });
}

/// Letter streams for the duplicates finders: (letter, +1) updates.
UpdateStream LetterStream(uint64_t n, uint64_t extras, uint64_t seed) {
  UpdateStream stream;
  for (uint64_t l : stream::DuplicateStream(n, extras, seed)) {
    stream.push_back({l, +1});
  }
  return stream;
}

TEST(SubtractionAlgebra, DuplicateFinderWindowedFindAgreement) {
  // (init + P + S) - (init + P) + re-fed init == init + S: a finder that
  // saw exactly the suffix letters. Compare against that finder directly.
  const uint64_t n = 512;
  const UpdateStream prefix = LetterStream(n, 5, 81);
  const UpdateStream suffix = LetterStream(n, 7, 82);
  auto make = [n] {
    return duplicates::DuplicateFinder(
        duplicates::DuplicateFinder::Params{n, 0.2, 8, 83});
  };
  auto solo = make();
  solo.UpdateBatch(suffix.data(), suffix.size());

  auto windowed = make();
  windowed.UpdateBatch(prefix.data(), prefix.size());
  windowed.UpdateBatch(suffix.data(), suffix.size());
  auto expired = make();
  expired.UpdateBatch(prefix.data(), prefix.size());
  windowed.MergeNegated(expired);

  const auto want = solo.Find();
  const auto got = windowed.Find();
  ASSERT_EQ(want.ok(), got.ok());
  if (want.ok()) {
    EXPECT_EQ(want.value(), got.value());
  }
}

TEST(SubtractionAlgebra, SparseDuplicateFinderWindowedFindAgreement) {
  const uint64_t n = 512;
  const UpdateStream prefix = LetterStream(n, 2, 84);
  const UpdateStream suffix = LetterStream(n, 3, 85);
  auto make = [n] {
    duplicates::SparseDuplicateFinder::Params params;
    params.n = n;
    params.s = 4;
    params.delta = 0.2;
    params.repetitions = 8;
    params.seed = 86;
    return duplicates::SparseDuplicateFinder(params);
  };
  auto solo = make();
  solo.UpdateBatch(suffix.data(), suffix.size());

  auto windowed = make();
  windowed.UpdateBatch(prefix.data(), prefix.size());
  windowed.UpdateBatch(suffix.data(), suffix.size());
  auto expired = make();
  expired.UpdateBatch(prefix.data(), prefix.size());
  windowed.MergeNegated(expired);

  const auto want = solo.Find();
  const auto got = windowed.Find();
  EXPECT_EQ(static_cast<int>(want.kind), static_cast<int>(got.kind));
  if (want.kind == duplicates::SparseDuplicateFinder::Kind::kDuplicate) {
    EXPECT_EQ(want.duplicate, got.duplicate);
  }
}

// ------------------------------------------------------- window manager --

/// Feeds `stream` through a WindowManager over a `make()` sketch at the
/// given checkpoint interval, then checks that every window whose start
/// lands on a checkpoint is bit-identical to a sketch fed only the
/// window's updates — and that off-boundary requests round the start
/// DOWN (windows contain at least the last w updates).
template <typename T, typename MakeFn>
void ExpectWindowedBitIdentical(MakeFn make, const UpdateStream& stream,
                                uint64_t interval,
                                const std::vector<uint64_t>& widths) {
  T live = make();
  WindowManager::Options options;
  options.checkpoint_interval = interval;
  WindowManager wm(&live, options);
  wm.Drive(stream);
  ASSERT_EQ(wm.updates_seen(), stream.size());

  for (uint64_t w : widths) {
    const auto window = wm.WindowSketch(w);
    ASSERT_NE(window.sketch, nullptr);
    // Start rounds down to a checkpoint boundary and covers >= w updates.
    EXPECT_EQ(window.start % interval, 0u) << "w=" << w;
    EXPECT_GE(window.length, std::min<uint64_t>(w, stream.size()));
    EXPECT_EQ(window.start + window.length, stream.size());

    T solo = make();
    solo.UpdateBatch(stream.data() + window.start,
                     static_cast<size_t>(window.length));
    EXPECT_TRUE(StateOf(*window.sketch) == StateOf(solo))
        << "interval=" << interval << " w=" << w;
  }
}

TEST(WindowManagerTest, ExactWindowsAcrossCheckpointIntervals) {
  // The acceptance grid: intervals {1, 64, 4096}, exact-arithmetic kinds
  // from all three counter families (integer-double tables, GF
  // fingerprints, GF syndromes). Stream of 8192 so interval 4096 seals
  // two interior checkpoints; widths hit boundaries, off-boundary
  // values (start rounds down), zero, and the full stream.
  const auto stream = stream::UniformTurnstile(kN, 8192, 100, 90);
  const std::vector<uint64_t> widths = {0,    1,    64,   1000, 4096,
                                        5000, 8192, 9999};
  for (uint64_t interval : {uint64_t{1}, uint64_t{64}, uint64_t{4096}}) {
    ExpectWindowedBitIdentical<sketch::CountSketch>(
        [] { return sketch::CountSketch(5, 24, 91); }, stream, interval,
        widths);
  }
  // The GF families, at one representative interval each (the ring logic
  // is type-independent; the arithmetic is what differs).
  ExpectWindowedBitIdentical<recovery::SparseRecovery>(
      [] { return recovery::SparseRecovery(kN, 8, 92); }, stream, 64,
      widths);
  ExpectWindowedBitIdentical<norm::L0Estimator>(
      [] { return norm::L0Estimator(kN, 7, 93); }, stream, 64, widths);
  ExpectWindowedBitIdentical<core::L0Sampler>(
      [] {
        return core::L0Sampler(core::L0SamplerParams{kN, 0.25, 0, 94, false});
      },
      stream, 4096, {4096, 8192});
}

TEST(WindowManagerTest, WindowZeroIsTailSinceLastCheckpoint) {
  sketch::CountSketch live(5, 24, 95);
  WindowManager::Options options;
  options.checkpoint_interval = 100;
  WindowManager wm(&live, options);
  const auto stream = stream::UniformTurnstile(kN, 1050, 100, 96);
  wm.Drive(stream);
  const auto window = wm.WindowSketch(0);
  EXPECT_EQ(window.start, 1000u);
  EXPECT_EQ(window.length, 50u);
}

TEST(WindowManagerTest, EpochAlignmentWithParallelPipeline) {
  // Checkpoints sealed at MergeShards() epochs: replica 0 holds the full
  // prefix exactly at epoch boundaries, so trailing runs of epochs
  // materialize bit-identically — for every thread count.
  const auto stream = stream::UniformTurnstile(kN, 4000, 100, 97);
  constexpr uint64_t kEpoch = 1000;
  for (int threads : {0, 2}) {
    std::vector<sketch::CountSketch> replicas;
    for (int s = 0; s < 4; ++s) replicas.emplace_back(5, 24, 98);
    std::vector<LinearSketch*> raw;
    for (auto& replica : replicas) raw.push_back(&replica);

    ParallelPipeline::Options popts;
    popts.shards = 4;
    popts.threads = threads;
    ParallelPipeline pipeline(popts);
    pipeline.Add("cs", raw);

    WindowManager::Options wopts;
    wopts.checkpoint_interval = kEpoch;  // irrelevant in epoch mode
    WindowManager wm(&replicas[0], wopts);

    for (uint64_t e = 0; e < 4; ++e) {
      pipeline.Drive(stream.data() + e * kEpoch, kEpoch);
      pipeline.MergeShards();
      wm.SealEpoch(kEpoch);
    }

    for (uint64_t w : {kEpoch, 2 * kEpoch}) {
      const auto window = wm.WindowSketch(w);
      EXPECT_EQ(window.length, w);
      sketch::CountSketch solo(5, 24, 98);
      solo.UpdateBatch(stream.data() + (stream.size() - w),
                       static_cast<size_t>(w));
      EXPECT_TRUE(StateOf(*window.sketch) == StateOf(solo))
          << "threads=" << threads << " w=" << w;
    }
  }
}

TEST(WindowManagerTest, RingEvictionClampsToOldestCheckpoint) {
  sketch::CountSketch live(5, 24, 99);
  WindowManager::Options options;
  options.checkpoint_interval = 100;
  options.max_checkpoints = 3;
  WindowManager wm(&live, options);
  const auto stream = stream::UniformTurnstile(kN, 1000, 100, 100);
  wm.Drive(stream);
  EXPECT_EQ(wm.checkpoint_count(), 3u);
  EXPECT_EQ(wm.oldest_start(), 800u);
  // A window reaching behind the ring clamps to the oldest boundary —
  // and still materializes correctly from there.
  const auto window = wm.WindowSketch(650);
  EXPECT_EQ(window.start, 800u);
  EXPECT_EQ(window.length, 200u);
  sketch::CountSketch solo(5, 24, 99);
  solo.UpdateBatch(stream.data() + 800, 200);
  EXPECT_TRUE(StateOf(*window.sketch) == StateOf(solo));
}

TEST(WindowManagerTest, CheckpointAccounting) {
  sketch::CountSketch live(5, 24, 101);
  WindowManager::Options options;
  options.checkpoint_interval = 100;
  WindowManager wm(&live, options);
  const auto stream = stream::UniformTurnstile(kN, 1000, 100, 102);
  wm.Drive(stream);
  // Position 0 plus one per interior boundary (100, 200, ..., 1000).
  EXPECT_EQ(wm.checkpoint_count(), 11u);
  EXPECT_GT(wm.CheckpointBytes(), 0u);
  // Sealing twice at the same position is idempotent.
  wm.Seal();
  EXPECT_EQ(wm.checkpoint_count(), 11u);
}

TEST(WindowManagerTest, ChunkingDoesNotMoveCheckpoints) {
  // Checkpoints land on exact interval multiples regardless of how the
  // caller chunks PushBatch — the manager splits at the boundary.
  const auto stream = stream::UniformTurnstile(kN, 700, 100, 103);
  sketch::CountSketch a(5, 24, 104), b(5, 24, 104);
  WindowManager::Options options;
  options.checkpoint_interval = 256;

  WindowManager one(&a, options);
  one.PushBatch(stream.data(), stream.size());

  WindowManager many(&b, options);
  size_t done = 0;
  for (size_t chunk : {3, 250, 255, 100, 92}) {
    many.PushBatch(stream.data() + done, chunk);
    done += chunk;
  }
  ASSERT_EQ(done, stream.size());

  EXPECT_EQ(one.checkpoint_count(), many.checkpoint_count());
  const auto wa = one.WindowSketch(300);
  const auto wb = many.WindowSketch(300);
  EXPECT_EQ(wa.start, wb.start);
  EXPECT_TRUE(StateOf(*wa.sketch) == StateOf(*wb.sketch));
}

TEST(WindowManagerTest, WindowedDuplicateFinder) {
  // End-to-end: a finder whose window holds exactly the last letter
  // epoch finds a duplicate from that epoch.
  const uint64_t n = 512;
  const UpdateStream prefix = LetterStream(n, 4, 105);
  const UpdateStream suffix = LetterStream(n, 6, 106);
  duplicates::DuplicateFinder live(
      duplicates::DuplicateFinder::Params{n, 0.2, 8, 107});
  WindowManager::Options options;
  options.checkpoint_interval = prefix.size();
  WindowManager wm(&live, options);
  wm.Drive(prefix);
  wm.Drive(suffix);

  const auto window = wm.WindowSketch(suffix.size());
  EXPECT_EQ(window.start, prefix.size());
  auto* finder = dynamic_cast<duplicates::DuplicateFinder*>(window.sketch.get());
  ASSERT_NE(finder, nullptr);

  duplicates::DuplicateFinder solo(
      duplicates::DuplicateFinder::Params{n, 0.2, 8, 107});
  solo.UpdateBatch(suffix.data(), suffix.size());
  const auto want = solo.Find();
  const auto got = finder->Find();
  ASSERT_EQ(want.ok(), got.ok());
  if (want.ok()) {
    EXPECT_EQ(want.value(), got.value());
  }
}

TEST(WindowDeathTest, MergeNegatedChecksLikeMerge) {
  sketch::CountSketch a(7, 24, 1), b(7, 24, 2), c(9, 24, 1);
  sketch::CountMin d(7, 24, 1);
  EXPECT_DEATH(a.MergeNegated(b), "LPS_CHECK");  // seed mismatch
  EXPECT_DEATH(a.MergeNegated(c), "LPS_CHECK");  // shape mismatch
  EXPECT_DEATH(a.MergeNegated(d), "LPS_CHECK");  // cross-type
}

}  // namespace
}  // namespace lps
