#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/stats/stats.h"
#include "src/util/random.h"

namespace lps::stats {
namespace {

TEST(TotalVariationTest, IdenticalDistributionsAreZero) {
  EXPECT_DOUBLE_EQ(TotalVariation({25, 25, 50}, {0.25, 0.25, 0.5}), 0.0);
}

TEST(TotalVariationTest, DisjointSupportIsOne) {
  EXPECT_DOUBLE_EQ(TotalVariation({100, 0}, {0.0, 1.0}), 1.0);
}

TEST(TotalVariationTest, KnownValue) {
  // Empirical (0.5, 0.5) vs (0.75, 0.25): TV = 0.25.
  EXPECT_DOUBLE_EQ(TotalVariation({50, 50}, {0.75, 0.25}), 0.25);
}

TEST(MaxRelativeErrorTest, IgnoresTinyCells) {
  // Second cell is below the floor and would otherwise dominate.
  const double err =
      MaxRelativeError({90, 1, 9}, {0.9, 1e-6, 0.1}, 1e-3);
  EXPECT_NEAR(err, 0.1, 1e-9);
}

TEST(GammaQ, KnownValues) {
  // Q(1, x) = exp(-x).
  EXPECT_NEAR(UpperIncompleteGammaQ(1.0, 2.0), std::exp(-2.0), 1e-10);
  // Chi-square with 2 dof: P(X > 5.991) = 0.05.
  EXPECT_NEAR(UpperIncompleteGammaQ(1.0, 5.991 / 2), 0.05, 1e-3);
  // Chi-square with 10 dof: P(X > 18.307) = 0.05.
  EXPECT_NEAR(UpperIncompleteGammaQ(5.0, 18.307 / 2), 0.05, 1e-3);
  EXPECT_DOUBLE_EQ(UpperIncompleteGammaQ(3.0, 0.0), 1.0);
}

TEST(ChiSquare, UniformSamplesPass) {
  Rng rng(1);
  const int cells = 20;
  std::vector<uint64_t> counts(cells, 0);
  std::vector<double> probs(cells, 1.0 / cells);
  for (int i = 0; i < 20000; ++i) ++counts[rng.Below(cells)];
  const auto result = ChiSquareGof(counts, probs);
  EXPECT_GT(result.p_value, 1e-4);
  EXPECT_EQ(result.dof, cells - 1);
}

TEST(ChiSquare, BiasedSamplesFail) {
  const int cells = 10;
  std::vector<uint64_t> counts(cells, 1000);
  counts[0] = 3000;  // heavy bias
  std::vector<double> probs(cells, 1.0 / cells);
  const auto result = ChiSquareGof(counts, probs);
  EXPECT_LT(result.p_value, 1e-6);
}

TEST(ChiSquare, PoolsSmallCells) {
  // Many near-zero-probability cells must be pooled, not divided by ~0.
  std::vector<uint64_t> counts = {500, 500, 1, 0, 0};
  std::vector<double> probs = {0.5, 0.499, 0.0005, 0.00025, 0.00025};
  const auto result = ChiSquareGof(counts, probs);
  EXPECT_GE(result.p_value, 0.0);
  EXPECT_LE(result.p_value, 1.0);
  EXPECT_LE(result.dof, 3);
}

TEST(Wilson, CoversTrueProportion) {
  Rng rng(2);
  int covered = 0;
  const int experiments = 200;
  for (int e = 0; e < experiments; ++e) {
    const int trials = 500;
    uint64_t successes = 0;
    for (int t = 0; t < trials; ++t) successes += rng.NextDouble() < 0.3;
    const auto ci = WilsonInterval(successes, trials, 2.58);
    if (ci.lo <= 0.3 && 0.3 <= ci.hi) ++covered;
  }
  // 99% nominal coverage; allow slack.
  EXPECT_GE(covered, experiments - 8);
}

TEST(Wilson, DegenerateCounts) {
  const auto zero = WilsonInterval(0, 100);
  EXPECT_NEAR(zero.lo, 0.0, 1e-12);
  EXPECT_GT(zero.hi, 0.0);
  const auto all = WilsonInterval(100, 100);
  EXPECT_NEAR(all.hi, 1.0, 1e-12);
  EXPECT_LT(all.lo, 1.0);
}

}  // namespace
}  // namespace lps::stats
