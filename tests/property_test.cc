// Property-based sweeps over the library's core invariants, parameterized
// across the (p, eps, n, s, ...) grids the paper's theorems quantify over.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <tuple>
#include <vector>

#include "src/core/l0_sampler.h"
#include "src/core/lp_sampler.h"
#include "src/field/gf61.h"
#include "src/field/poly.h"
#include "src/recovery/sparse_recovery.h"
#include "src/sketch/count_sketch.h"
#include "src/stream/exact_vector.h"
#include "src/stream/generators.h"
#include "src/util/random.h"

namespace lps {
namespace {

// ---------- Field / polynomial algebra properties ----------

class PolyAlgebra : public ::testing::TestWithParam<int> {};

TEST_P(PolyAlgebra, RingAxiomsOnRandomPolynomials) {
  const int degree = GetParam();
  Rng rng(1000 + static_cast<uint64_t>(degree));
  for (int trial = 0; trial < 20; ++trial) {
    auto random_poly = [&](int d) {
      poly::Poly f(static_cast<size_t>(d) + 1);
      for (auto& c : f) c = rng.Below(gf61::kP);
      poly::Trim(&f);
      return f;
    };
    const poly::Poly a = random_poly(degree);
    const poly::Poly b = random_poly(degree / 2 + 1);
    const poly::Poly c = random_poly(degree / 3 + 1);
    // Distributivity: a*(b + c) == a*b + a*c.
    EXPECT_EQ(poly::Mul(a, poly::Add(b, c)),
              poly::Add(poly::Mul(a, b), poly::Mul(a, c)));
    // Commutativity.
    EXPECT_EQ(poly::Mul(a, b), poly::Mul(b, a));
    // Evaluation is a ring homomorphism: (a*b)(x) == a(x)*b(x).
    const uint64_t x = rng.Below(gf61::kP);
    EXPECT_EQ(poly::Eval(poly::Mul(a, b), x),
              gf61::Mul(poly::Eval(a, x), poly::Eval(b, x)));
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, PolyAlgebra, ::testing::Values(2, 5, 9, 16));

// ---------- Count-sketch unbiasedness across shapes ----------

class CountSketchShape
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CountSketchShape, RowEstimatesAreUnbiased) {
  const auto [rows, buckets] = GetParam();
  const uint64_t n = 512;
  const auto stream = stream::UniformTurnstile(n, 1000, 10, 77);
  stream::ExactVector x(n);
  x.Apply(stream);
  // Average the point estimate of one coordinate over many sketches: the
  // mean must approach the true value (estimates are unbiased per row;
  // the median keeps the sign and magnitude for well-separated values).
  const uint64_t target = stream[0].index;
  double sum = 0;
  const int reps = 200;
  for (int rep = 0; rep < reps; ++rep) {
    sketch::CountSketch cs(rows, buckets, 2000 + static_cast<uint64_t>(rep));
    for (const auto& u : stream) {
      cs.Update(u.index, static_cast<double>(u.delta));
    }
    sum += cs.Query(target);
  }
  const double mean = sum / reps;
  const double truth = static_cast<double>(x[target]);
  const double allowance =
      5.0 * x.NormP(2.0) / std::sqrt(static_cast<double>(buckets) * reps) +
      0.5;
  EXPECT_NEAR(mean, truth, allowance + std::abs(truth) * 0.2);
}

INSTANTIATE_TEST_SUITE_P(Shapes, CountSketchShape,
                         ::testing::Combine(::testing::Values(5, 9, 15),
                                            ::testing::Values(24, 96)));

// ---------- Lp sampler invariants across the (p, eps) grid ----------

class LpGrid : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(LpGrid, SamplesAlwaysLandOnSupport) {
  const auto [p, eps] = GetParam();
  const uint64_t n = 256;
  const auto stream = stream::SparseVector(n, 64, 1000, 31);
  stream::ExactVector x(n);
  x.Apply(stream);
  for (uint64_t seed = 0; seed < 10; ++seed) {
    core::LpSamplerParams params;
    params.n = n;
    params.p = p;
    params.eps = eps;
    params.repetitions = 8;
    params.seed = 3000 + seed;
    core::LpSampler sampler(params);
    for (const auto& u : stream) {
      sampler.Update(u.index, static_cast<double>(u.delta));
    }
    auto res = sampler.Sample();
    if (res.ok()) {
      // A sampled index must be a genuine support coordinate, and the sign
      // of the estimate must match the sign of x_i (sign errors are the
      // "low probability" failure mode of Theorem 3's argument).
      ASSERT_NE(x[res.value().index], 0)
          << "p=" << p << " eps=" << eps << " seed=" << seed;
      EXPECT_GT(res.value().estimate * static_cast<double>(x[res.value().index]),
                0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LpGrid,
    ::testing::Combine(::testing::Values(0.5, 0.8, 1.0, 1.2, 1.5, 1.8),
                       ::testing::Values(0.5, 0.25)));

// ---------- Figure 1 parameter derivations across p ----------

class ResolveGrid : public ::testing::TestWithParam<double> {};

TEST_P(ResolveGrid, DerivedParametersMatchFigure1) {
  const double p = GetParam();
  core::LpSamplerParams params;
  params.n = 1 << 12;
  params.p = p;
  params.eps = 0.125;
  params.seed = 1;
  const auto resolved = core::LpSampler::Resolve(params);
  if (p != 1.0) {
    EXPECT_EQ(resolved.k,
              10 * static_cast<int>(std::ceil(1.0 / std::abs(p - 1.0))));
  }
  if (p > 1.0) {
    // m = Theta(eps^{-(p-1)}).
    EXPECT_GE(resolved.m,
              static_cast<int>(std::pow(1 / params.eps, p - 1.0)));
  }
  EXPECT_GE(resolved.repetitions, 1);
  EXPECT_GT(resolved.cs_rows, 0);
}

INSTANTIATE_TEST_SUITE_P(Ps, ResolveGrid,
                         ::testing::Values(0.3, 0.5, 0.9, 1.0, 1.1, 1.5, 1.9));

// ---------- Sparse recovery is exactly linear ----------

class RecoveryLinearity : public ::testing::TestWithParam<int> {};

TEST_P(RecoveryLinearity, StreamOrderAndSplittingIrrelevant) {
  const int s = GetParam();
  const uint64_t n = 8192;
  Rng rng(4000 + static_cast<uint64_t>(s));
  // Build the same sparse vector via two differently-ordered, differently-
  // split update sequences; the measurements must agree bit for bit.
  std::vector<std::pair<uint64_t, int64_t>> entries;
  for (int j = 0; j < s; ++j) {
    entries.push_back({rng.Below(n), static_cast<int64_t>(1 + rng.Below(99))});
  }
  recovery::SparseRecovery direct(n, static_cast<uint64_t>(s) + 2, 99);
  for (const auto& [i, v] : entries) direct.Update(i, v);

  recovery::SparseRecovery split(n, static_cast<uint64_t>(s) + 2, 99);
  for (const auto& [i, v] : entries) split.Update(i, v - 1);
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    split.Update(it->first, 1);
  }

  BitWriter wa, wb;
  direct.SerializeCounters(&wa);
  split.SerializeCounters(&wb);
  EXPECT_EQ(wa.words(), wb.words());
}

INSTANTIATE_TEST_SUITE_P(Sparsities, RecoveryLinearity,
                         ::testing::Values(1, 3, 7, 15, 31));

// ---------- L0 sampler: failure implies an adversarial support ----------

class L0SupportSweep : public ::testing::TestWithParam<int> {};

TEST_P(L0SupportSweep, SampleCorrectAcrossSupportScales) {
  const uint64_t support = 1ULL << GetParam();
  const uint64_t n = 1 << 13;
  const auto stream = stream::SparseVector(n, support, 100, 51);
  stream::ExactVector x(n);
  x.Apply(stream);
  int ok = 0;
  const int trials = 25;
  for (uint64_t seed = 0; seed < trials; ++seed) {
    core::L0Sampler sampler({n, 0.2, 0, 5000 + seed, false});
    for (const auto& u : stream) sampler.Update(u.index, u.delta);
    auto res = sampler.Sample();
    if (res.ok()) {
      ++ok;
      ASSERT_EQ(static_cast<int64_t>(res.value().estimate),
                x[res.value().index]);
    }
  }
  EXPECT_GE(ok, trials * 3 / 4) << "support " << support;
}

INSTANTIATE_TEST_SUITE_P(Supports, L0SupportSweep,
                         ::testing::Values(0, 2, 4, 6, 8, 10, 12));

}  // namespace
}  // namespace lps
