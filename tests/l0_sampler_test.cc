#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/core/l0_sampler.h"
#include "src/stats/stats.h"
#include "src/stream/exact_vector.h"
#include "src/stream/generators.h"

namespace lps::core {
namespace {

L0SamplerParams Base(uint64_t n, uint64_t seed, double delta = 0.25) {
  L0SamplerParams params;
  params.n = n;
  params.delta = delta;
  params.seed = seed;
  return params;
}

TEST(L0Sampler, ZeroVectorFails) {
  L0Sampler sampler(Base(256, 1));
  EXPECT_FALSE(sampler.Sample().ok());
  L0Sampler sampler2(Base(256, 2));
  sampler2.Update(10, 4);
  sampler2.Update(10, -4);
  EXPECT_FALSE(sampler2.Sample().ok());
}

TEST(L0Sampler, SparseSupportIsExact) {
  // Support below s: level 0 recovers exactly; output value is exact.
  for (uint64_t seed = 0; seed < 20; ++seed) {
    L0Sampler sampler(Base(1024, seed));
    sampler.Update(100, 7);
    sampler.Update(200, -9);
    sampler.Update(300, 1);
    auto res = sampler.Sample();
    ASSERT_TRUE(res.ok()) << "seed " << seed;
    const uint64_t i = res.value().index;
    EXPECT_TRUE(i == 100 || i == 200 || i == 300);
    if (i == 100) {
      EXPECT_DOUBLE_EQ(res.value().estimate, 7);
    } else if (i == 200) {
      EXPECT_DOUBLE_EQ(res.value().estimate, -9);
    } else {
      EXPECT_DOUBLE_EQ(res.value().estimate, 1);
    }
  }
}

TEST(L0Sampler, UniformOverSmallSupport) {
  // Zero relative error: the conditional law is exactly uniform. Support of
  // 4 coordinates, chi-square over many independent samplers.
  const std::vector<uint64_t> support = {3, 77, 500, 900};
  std::vector<uint64_t> counts(support.size(), 0);
  uint64_t samples = 0;
  const int trials = 4000;
  for (int trial = 0; trial < trials; ++trial) {
    L0Sampler sampler(Base(1024, 100 + static_cast<uint64_t>(trial)));
    for (uint64_t i : support) sampler.Update(i, 1 + static_cast<int64_t>(i % 5));
    auto res = sampler.Sample();
    ASSERT_TRUE(res.ok());
    for (size_t j = 0; j < support.size(); ++j) {
      if (res.value().index == support[j]) ++counts[j];
    }
    ++samples;
  }
  EXPECT_EQ(samples, static_cast<uint64_t>(trials));
  const std::vector<double> uniform(support.size(), 1.0 / support.size());
  const auto chi = stats::ChiSquareGof(counts, uniform);
  EXPECT_GT(chi.p_value, 1e-4) << "stat " << chi.statistic;
}

TEST(L0Sampler, UniformOverLargeSupport) {
  // Support far above s forces the subsampled levels to fire; the output
  // must remain uniform over the support (values of wildly different
  // magnitude must not bias it — that is the whole point of L0).
  const uint64_t n = 512;
  const auto stream = stream::SparseVector(n, 64, 100000, 5);
  stream::ExactVector x(n);
  x.Apply(stream);
  const auto exact = x.LpDistribution(0.0);
  ASSERT_EQ(x.L0(), 64u);

  std::vector<uint64_t> counts(n, 0);
  uint64_t samples = 0, fails = 0;
  const int trials = 2500;
  for (int trial = 0; trial < trials; ++trial) {
    L0Sampler sampler(Base(n, 777 + static_cast<uint64_t>(trial)));
    for (const auto& u : stream) sampler.Update(u.index, u.delta);
    auto res = sampler.Sample();
    if (!res.ok()) {
      ++fails;
      continue;
    }
    ++counts[res.value().index];
    ++samples;
    EXPECT_EQ(static_cast<int64_t>(res.value().estimate),
              x[res.value().index]);
  }
  EXPECT_LT(static_cast<double>(fails) / trials, 0.25);
  // Chi-square accounts for the sampling noise floor properly; TV is kept
  // as a coarse sanity bound above the ~0.07 noise level at these counts.
  const auto chi = stats::ChiSquareGof(counts, exact);
  EXPECT_GT(chi.p_value, 1e-4) << "stat " << chi.statistic;
  EXPECT_LT(stats::TotalVariation(counts, exact), 0.15);
}

TEST(L0Sampler, FailureRateDecreasesWithDelta) {
  // An adversarial support size (just above s) maximizes the chance that
  // no level lands in [1, s]; smaller delta (larger s) must fail less.
  const uint64_t n = 4096;
  const auto stream = stream::SparseVector(n, 60, 100, 9);
  int fails_loose = 0, fails_tight = 0;
  const int trials = 120;
  for (int trial = 0; trial < trials; ++trial) {
    L0Sampler loose(Base(n, 3000 + static_cast<uint64_t>(trial), 0.5));
    L0Sampler tight(Base(n, 3000 + static_cast<uint64_t>(trial), 0.01));
    for (const auto& u : stream) {
      loose.Update(u.index, u.delta);
      tight.Update(u.index, u.delta);
    }
    fails_loose += !loose.Sample().ok();
    fails_tight += !tight.Sample().ok();
  }
  EXPECT_LE(fails_tight, fails_loose);
  EXPECT_LE(static_cast<double>(fails_tight) / trials, 0.05);
}

TEST(L0Sampler, SurvivesInsertDeleteChurn) {
  const uint64_t n = 2048;
  const auto stream = stream::InsertDeleteChurn(n, 800, 5, 11);
  stream::ExactVector x(n);
  x.Apply(stream);
  int ok = 0, correct = 0;
  for (uint64_t seed = 0; seed < 40; ++seed) {
    L0Sampler sampler(Base(n, 5000 + seed));
    for (const auto& u : stream) sampler.Update(u.index, u.delta);
    auto res = sampler.Sample();
    if (res.ok()) {
      ++ok;
      if (x[res.value().index] != 0) ++correct;
    }
  }
  EXPECT_GE(ok, 30);
  EXPECT_EQ(correct, ok);  // never returns a deleted coordinate
}

TEST(L0Sampler, NisanModeSamplesCorrectly) {
  // Theorem 2's derandomization: with the Nisan PRG as randomness source
  // the sampler still returns only support coordinates with exact values.
  const uint64_t n = 512;
  const auto stream = stream::SparseVector(n, 40, 50, 13);
  stream::ExactVector x(n);
  x.Apply(stream);
  int ok = 0, correct = 0;
  for (uint64_t seed = 0; seed < 25; ++seed) {
    auto params = Base(n, 7000 + seed);
    params.use_nisan = true;
    L0Sampler sampler(params);
    for (const auto& u : stream) sampler.Update(u.index, u.delta);
    auto res = sampler.Sample();
    if (res.ok()) {
      ++ok;
      if (x[res.value().index] ==
          static_cast<int64_t>(res.value().estimate)) {
        ++correct;
      }
    }
  }
  EXPECT_GE(ok, 18);
  EXPECT_EQ(correct, ok);
}

TEST(L0Sampler, NisanSeedBitsAreLog2Squared) {
  auto params = Base(1 << 12, 1);
  params.use_nisan = true;
  L0Sampler with_nisan(params);
  L0Sampler with_oracle(Base(1 << 12, 1));
  // The Nisan seed is O(log^2 n) bits, far above the oracle's 64 but far
  // below the measurement bits.
  EXPECT_GT(with_nisan.SpaceBits(), with_oracle.SpaceBits());
  EXPECT_LT(with_nisan.SpaceBits(), 2 * with_oracle.SpaceBits());
}

TEST(L0Sampler, SampleWithLevelReportsFiringLevel) {
  L0Sampler sampler(Base(1024, 3));
  sampler.Update(10, 1);
  int level = -1;
  auto res = sampler.SampleWithLevel(&level);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(level, 0);  // 1-sparse: level 0 recovers immediately
}

}  // namespace
}  // namespace lps::core
