// The async ingest front-end (src/io/): decoder exactness across torn
// chunk boundaries, the malformed-record counting policy, byte-source
// behavior on files / pipes / empty streams, the streamed bit-container
// reader, and the tentpole guarantee — async file-fed ingestion through
// the StreamFeeder/PipelineSink path lands sketch state BIT-IDENTICAL
// to in-memory ingest across shards x threads (for every kind against
// the same topology, and against solo ingest for the integer-counter
// kinds), including the windowed epoch-sealing composition.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/lps.h"

namespace lps {
namespace {

using io::MemorySource;
using io::PipelineSink;
using io::StreamFeeder;
using io::UpdateDecoder;
using stream::ParallelPipeline;
using stream::Update;
using stream::UpdateStream;
using stream::WindowManager;

// ---------------------------------------------------------------- helpers --

std::string MakeTempFile(const std::string& contents) {
  char path[] = "/tmp/lps_io_XXXXXX";
  const int fd = ::mkstemp(path);
  EXPECT_GE(fd, 0);
  size_t done = 0;
  while (done < contents.size()) {
    const ssize_t wrote =
        ::write(fd, contents.data() + done, contents.size() - done);
    if (wrote <= 0) break;
    done += static_cast<size_t>(wrote);
  }
  EXPECT_EQ(done, contents.size());
  ::close(fd);
  return path;
}

std::string TextTrace(uint64_t n, const UpdateStream& updates) {
  std::ostringstream out;
  stream::WriteTrace(out, n, updates);
  return out.str();
}

std::string BinaryTrace(uint64_t n, const UpdateStream& updates) {
  std::string out;
  io::WriteBinaryTrace(&out, n, updates);
  return out;
}

/// Runs the decoder over `bytes` cut into `chunk`-sized pieces.
struct Decoded {
  UpdateStream updates;
  uint64_t n = 0;
  uint64_t malformed = 0;
  Status status;
  UpdateDecoder::Format format = UpdateDecoder::Format::kUnknown;
};

Decoded DecodeChunked(const std::string& bytes, size_t chunk) {
  UpdateDecoder decoder;
  Decoded result;
  for (size_t at = 0; at < bytes.size(); at += chunk) {
    decoder.Consume(bytes.data() + at, std::min(chunk, bytes.size() - at),
                    &result.updates);
  }
  result.status = decoder.Finish(&result.updates);
  result.n = decoder.n();
  result.malformed = decoder.malformed();
  result.format = decoder.format();
  return result;
}

bool SameUpdates(const UpdateStream& a, const UpdateStream& b) {
  if (a.size() != b.size()) return false;
  for (size_t t = 0; t < a.size(); ++t) {
    if (a[t].index != b[t].index || a[t].delta != b[t].delta) return false;
  }
  return true;
}

struct State {
  std::vector<uint64_t> words;
  size_t bits = 0;
  bool operator==(const State& other) const {
    return bits == other.bits && words == other.words;
  }
};

State Serialized(const LinearSketch& sketch) {
  BitWriter writer;
  sketch.Serialize(&writer);
  return {writer.words(), writer.bit_count()};
}

// ---------------------------------------------------------------- decoder --

TEST(UpdateDecoder, TextMatchesReadTraceAtEveryChunking) {
  const auto updates = stream::UniformTurnstile(1 << 10, 500, 20, 7);
  const std::string bytes = TextTrace(1 << 10, updates);
  std::istringstream in(bytes);
  auto reference = stream::ReadTrace(in);
  ASSERT_TRUE(reference.ok());
  for (size_t chunk : {size_t{1}, size_t{2}, size_t{3}, size_t{7}, size_t{64},
                       size_t{4096}, bytes.size()}) {
    const Decoded got = DecodeChunked(bytes, chunk);
    EXPECT_TRUE(got.status.ok()) << "chunk " << chunk;
    EXPECT_EQ(got.format, UpdateDecoder::Format::kText);
    EXPECT_EQ(got.n, reference->n);
    EXPECT_EQ(got.malformed, 0u) << "chunk " << chunk;
    EXPECT_TRUE(SameUpdates(got.updates, reference->updates))
        << "chunk " << chunk;
  }
}

TEST(UpdateDecoder, BinaryRoundTripsAtEveryChunking) {
  const auto updates = stream::UniformTurnstile(1 << 9, 300, 20, 11);
  const std::string bytes = BinaryTrace(1 << 9, updates);
  for (size_t chunk :
       {size_t{1}, size_t{5}, size_t{16}, size_t{1000}, bytes.size()}) {
    const Decoded got = DecodeChunked(bytes, chunk);
    EXPECT_TRUE(got.status.ok()) << "chunk " << chunk;
    EXPECT_EQ(got.format, UpdateDecoder::Format::kBinary);
    EXPECT_EQ(got.n, uint64_t{1} << 9);
    EXPECT_EQ(got.malformed, 0u);
    EXPECT_TRUE(SameUpdates(got.updates, updates)) << "chunk " << chunk;
  }
}

TEST(UpdateDecoder, CrlfAndCommentsAndFinalLineWithoutNewline) {
  const std::string bytes =
      "# header comment\r\nn 100\r\nu 3 5\r\n\r\n# mid\nl 7\nu 9 -2";
  for (size_t chunk : {size_t{1}, size_t{4}, bytes.size()}) {
    const Decoded got = DecodeChunked(bytes, chunk);
    EXPECT_TRUE(got.status.ok());
    EXPECT_EQ(got.malformed, 0u);
    const UpdateStream want = {{3, 5}, {7, 1}, {9, -2}};
    EXPECT_TRUE(SameUpdates(got.updates, want)) << "chunk " << chunk;
  }
}

TEST(UpdateDecoder, TraceShorterThanTheBinaryMagicDecodes) {
  // 7 bytes: shorter than the 8-byte format-detection prefix, so the
  // whole stream is still buffered when Finish runs — it must go
  // through the line splitter, not be parsed as one record.
  const std::string bytes = "n 2\nl 0";
  const Decoded got = DecodeChunked(bytes, 1);
  EXPECT_TRUE(got.status.ok());
  EXPECT_EQ(got.n, 2u);
  EXPECT_EQ(got.malformed, 0u);
  const UpdateStream want = {{0, 1}};
  EXPECT_TRUE(SameUpdates(got.updates, want));
}

TEST(UpdateDecoder, MalformedRecordsAreCountedAndSkippedNeverFatal) {
  const std::string bytes =
      "x before header\n"  // unknown tag, pre-header
      "n 100\n"
      "u 3 5\n"
      "q 1 2\n"      // unknown tag
      "u zebra 1\n"  // unparsable index
      "u 4\n"        // missing delta
      "u 100 1\n"    // index out of range
      "l 100\n"      // letter out of range
      "n 50\n"       // duplicate header (first one wins)
      "u 5 -1\n";
  for (size_t chunk : {size_t{1}, size_t{8}, bytes.size()}) {
    const Decoded got = DecodeChunked(bytes, chunk);
    EXPECT_TRUE(got.status.ok()) << "malformed lines must not be fatal";
    EXPECT_EQ(got.n, 100u) << "first header wins";
    EXPECT_EQ(got.malformed, 7u) << "chunk " << chunk;
    const UpdateStream want = {{3, 5}, {5, -1}};
    EXPECT_TRUE(SameUpdates(got.updates, want)) << "chunk " << chunk;
  }
}

TEST(UpdateDecoder, TornTrailingBinaryRecordCountsAsMalformed) {
  const auto updates = stream::UniformTurnstile(256, 10, 5, 3);
  std::string bytes = BinaryTrace(256, updates);
  bytes.resize(bytes.size() - 7);  // tear the last record mid-field
  const Decoded got = DecodeChunked(bytes, 13);
  EXPECT_TRUE(got.status.ok());
  EXPECT_EQ(got.malformed, 1u);
  EXPECT_EQ(got.updates.size(), updates.size() - 1);
}

TEST(UpdateDecoder, MissingHeaderIsTheOnlyStructuralError) {
  for (const std::string& bytes :
       {std::string(" "), std::string("u 1 2\n"), std::string("# only\n")}) {
    const Decoded got = DecodeChunked(bytes, 1);
    EXPECT_FALSE(got.status.ok()) << "'" << bytes << "'";
  }
  // Truly empty input: Finish alone must also report the missing header.
  UpdateDecoder decoder;
  UpdateStream out;
  EXPECT_FALSE(decoder.Finish(&out).ok());
}

TEST(UpdateDecoder, OverlongLineIsOneMalformedRecord) {
  std::string bytes = "n 100\n";
  bytes += "u 1 ";
  bytes.append(10000, '1');  // one absurd record, longer than any valid one
  bytes += "\nu 2 3\n";
  for (size_t chunk : {size_t{3}, size_t{4096}, bytes.size()}) {
    const Decoded got = DecodeChunked(bytes, chunk);
    EXPECT_TRUE(got.status.ok());
    EXPECT_EQ(got.malformed, 1u) << "chunk " << chunk;
    const UpdateStream want = {{2, 3}};
    EXPECT_TRUE(SameUpdates(got.updates, want)) << "chunk " << chunk;
  }
}

// ------------------------------------------------------------ byte sources --

TEST(ByteSource, FileRoundTripsExactBytes) {
  std::string payload;
  for (int t = 0; t < 100000; ++t) {
    payload += static_cast<char>(t * 31 + 7);
  }
  const std::string path = MakeTempFile(payload);
  io::FileSourceOptions options;
  options.buffer_bytes = 4096;  // force many refills
  auto source = io::MakeFileSource(path, options);
  ASSERT_TRUE(source.ok());
  std::string got;
  for (;;) {
    auto chunk = (*source)->Next();
    ASSERT_TRUE(chunk.ok());
    if (chunk->size == 0) break;
    got.append(chunk->data, chunk->size);
  }
  EXPECT_EQ(got, payload);
  EXPECT_EQ((*source)->bytes_read(), payload.size());
  std::remove(path.c_str());
}

TEST(ByteSource, EmptyFileIsImmediateEof) {
  const std::string path = MakeTempFile("");
  auto source = io::MakeFileSource(path);
  ASSERT_TRUE(source.ok());
  auto chunk = (*source)->Next();
  ASSERT_TRUE(chunk.ok());
  EXPECT_EQ(chunk->size, 0u);
  // EOF is sticky.
  chunk = (*source)->Next();
  ASSERT_TRUE(chunk.ok());
  EXPECT_EQ(chunk->size, 0u);
  std::remove(path.c_str());
}

TEST(ByteSource, MissingFileIsStatusNotAbort) {
  auto source = io::MakeFileSource("/nonexistent/lps_io_test_path");
  EXPECT_FALSE(source.ok());
}

TEST(ByteSource, PipeStreamsThroughSocketSource) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::string payload = TextTrace(64, {{1, 2}, {3, 4}});
  std::thread writer([&] {
    size_t done = 0;
    while (done < payload.size()) {
      const ssize_t wrote =
          ::write(fds[1], payload.data() + done,
                  std::min<size_t>(17, payload.size() - done));
      if (wrote <= 0) break;
      done += static_cast<size_t>(wrote);
    }
    ::close(fds[1]);
  });
  auto source = io::MakeSocketSource(fds[0], /*owns_fd=*/true);
  std::string got;
  for (;;) {
    auto chunk = source->Next();
    ASSERT_TRUE(chunk.ok());
    if (chunk->size == 0) break;
    got.append(chunk->data, chunk->size);
  }
  writer.join();
  EXPECT_EQ(got, payload);
}

// -------------------------------------------------------- streamed bits io --

TEST(BitsIo, StreamedReadMatchesSlurpReader) {
  BitWriter writer;
  for (uint64_t t = 0; t < 5000; ++t) {
    writer.WriteBits(t * 0x9E3779B9ULL, 61);
  }
  const std::string path = "/tmp/lps_io_bits_test.lps";
  ASSERT_TRUE(WriteBitsToFile(writer, path).ok());
  auto slurped = ReadBitsFromFile(path);
  ASSERT_TRUE(slurped.ok());
  io::FileSourceOptions options;
  options.buffer_bytes = 512;  // many chunks, torn words
  auto streamed = io::ReadBitsStreamed(path, options);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  BitReader& a = streamed.value();
  BitReader& b = slurped.value();
  for (uint64_t t = 0; t < 5000; ++t) {
    ASSERT_EQ(a.ReadBits(61), b.ReadBits(61)) << t;
  }
  std::remove(path.c_str());
}

TEST(BitsIo, CorruptContainersAreCleanErrors) {
  // Wrong magic.
  std::string path = MakeTempFile(std::string(64, 'x'));
  EXPECT_FALSE(io::ReadBitsStreamed(path).ok());
  std::remove(path.c_str());
  // Header claims more than the file holds.
  BitWriter writer;
  writer.WriteU64(123);
  const std::string container = "/tmp/lps_io_bits_trunc.lps";
  ASSERT_TRUE(WriteBitsToFile(writer, container).ok());
  std::ifstream in(container, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  path = MakeTempFile(bytes.substr(0, bytes.size() - 4));
  EXPECT_FALSE(io::ReadBitsStreamed(path).ok());
  std::remove(path.c_str());
  std::remove(container.c_str());
}

// ----------------------------------------------------------- stream feeder --

TEST(StreamFeeder, HeaderThenFeedDeliversEveryUpdateInOrder) {
  const auto updates = stream::UniformTurnstile(1 << 10, 2000, 30, 5);
  for (const bool binary : {false, true}) {
    const std::string bytes =
        binary ? BinaryTrace(1 << 10, updates) : TextTrace(1 << 10, updates);
    for (const bool async_decode : {false, true}) {
      StreamFeeder::Options options;
      options.async_decode = async_decode;
      options.batch_size = 97;  // odd size: partial tails exercised
      StreamFeeder feeder(
          std::make_unique<MemorySource>(bytes.data(), bytes.size(), 333),
          options);
      auto n = feeder.ReadHeader();
      ASSERT_TRUE(n.ok());
      EXPECT_EQ(*n, uint64_t{1} << 10);
      UpdateStream got;
      auto stats = feeder.Feed([&](const Update* batch, size_t count) {
        got.insert(got.end(), batch, batch + count);
      });
      ASSERT_TRUE(stats.ok());
      EXPECT_EQ(stats->updates, updates.size());
      EXPECT_EQ(stats->malformed, 0u);
      EXPECT_EQ(stats->bytes, bytes.size());
      EXPECT_TRUE(SameUpdates(got, updates))
          << "binary=" << binary << " async=" << async_decode;
    }
  }
}

TEST(StreamFeeder, HeaderlessStreamFailsInReadHeader) {
  const std::string bytes = "u 1 2\nu 3 4\n";
  StreamFeeder feeder(
      std::make_unique<MemorySource>(bytes.data(), bytes.size(), 4));
  EXPECT_FALSE(feeder.ReadHeader().ok());
}

// --------------------------------------------- async-vs-memory bit-identity --

/// Feeds `bytes` through the async path into a fresh pipeline topology
/// and returns replica 0's serialized state.
State AsyncIngestState(const std::string& bytes, const SketchSpec& spec,
                       int shards, int threads) {
  StreamFeeder feeder(
      std::make_unique<MemorySource>(bytes.data(), bytes.size(), 1013));
  auto n = feeder.ReadHeader();
  EXPECT_TRUE(n.ok());
  std::vector<std::unique_ptr<LinearSketch>> replicas;
  std::vector<LinearSketch*> raw;
  for (int s = 0; s < shards; ++s) {
    replicas.push_back(MakeSketch(spec));
    raw.push_back(replicas.back().get());
  }
  ParallelPipeline::Options options;
  options.shards = shards;
  options.threads = threads;
  ParallelPipeline pipeline(options);
  pipeline.Add("sink", raw);
  PipelineSink sink(&pipeline, nullptr, 0);
  auto stats = feeder.Feed(std::ref(sink));
  EXPECT_TRUE(stats.ok());
  sink.Finish();
  return Serialized(*replicas[0]);
}

/// In-memory ingest through the same pipeline topology (the pre-io
/// baseline: materialize the whole stream, then Drive).
State MemoryIngestState(const UpdateStream& updates, const SketchSpec& spec,
                        int shards, int threads) {
  std::vector<std::unique_ptr<LinearSketch>> replicas;
  std::vector<LinearSketch*> raw;
  for (int s = 0; s < shards; ++s) {
    replicas.push_back(MakeSketch(spec));
    raw.push_back(replicas.back().get());
  }
  ParallelPipeline::Options options;
  options.shards = shards;
  options.threads = threads;
  ParallelPipeline pipeline(options);
  pipeline.Add("sink", raw);
  pipeline.Drive(updates);
  pipeline.MergeShards();
  return Serialized(*replicas[0]);
}

SketchSpec SweepSpec(SketchKind kind) {
  SketchSpec spec;
  spec.kind = kind;
  spec.n = 1 << 10;
  spec.rows = 5;
  spec.buckets = 32;
  spec.s = 8;
  spec.repetitions = 3;
  spec.seed = 77;
  return spec;
}

/// The 9 kinds whose counters are genuinely floating point (see
/// tests/dist_test.cc): sharded Merge reassociates their sums relative
/// to solo ingest. Against the same topology they are still
/// bit-identical — the async path changes nothing about partitioning.
bool FloatingPointMerge(SketchKind kind) {
  switch (kind) {
    case SketchKind::kStableSketch:
    case SketchKind::kLpNormEstimator:
    case SketchKind::kLpSampler:
    case SketchKind::kAkoSampler:
    case SketchKind::kCsHeavyHitters:
    case SketchKind::kDuplicateFinder:
    case SketchKind::kSparseDuplicateFinder:
    case SketchKind::kPositiveFinder:
    case SketchKind::kMomentEstimator:
      return true;
    default:
      return false;
  }
}

TEST(AsyncIngest, BitIdenticalToInMemoryAcrossShardsThreadsAndKinds) {
  const auto updates = stream::UniformTurnstile(1 << 10, 4000, 40, 9);
  const std::string text = TextTrace(1 << 10, updates);
  const std::string binary = BinaryTrace(1 << 10, updates);
  constexpr uint32_t kLastKind =
      static_cast<uint32_t>(SketchKind::kMomentEstimator);
  for (uint32_t k = 1; k <= kLastKind; ++k) {
    const auto kind = static_cast<SketchKind>(k);
    const SketchSpec spec = SweepSpec(kind);
    // Solo reference: one replica, inline, in memory.
    const State solo = MemoryIngestState(updates, spec, 1, 0);
    for (const int shards : {1, 2, 4}) {
      for (const int threads : {0, 2}) {
        if (threads > shards) continue;
        const State memory = MemoryIngestState(updates, spec, shards, threads);
        const State async_text = AsyncIngestState(text, spec, shards, threads);
        // Same topology: async arrival chunking must never show.
        EXPECT_TRUE(async_text == memory)
            << SketchKindName(kind) << " async!=memory at shards=" << shards
            << " threads=" << threads;
        // Integer-counter kinds: also bit-identical to SOLO ingest.
        if (!FloatingPointMerge(kind)) {
          EXPECT_TRUE(async_text == solo)
              << SketchKindName(kind) << " async!=solo at shards=" << shards
              << " threads=" << threads;
        }
      }
    }
    // Binary encoding feeds the same updates: same state as text.
    EXPECT_TRUE(AsyncIngestState(binary, spec, 4, 2) ==
                AsyncIngestState(text, spec, 4, 2))
        << SketchKindName(kind) << " binary!=text";
  }
}

TEST(AsyncIngest, WindowedEpochsMatchSoloWindowManager) {
  const auto updates = stream::UniformTurnstile(1 << 9, 3000, 30, 21);
  const std::string text = TextTrace(1 << 9, updates);
  const SketchSpec spec = SweepSpec(SketchKind::kCountSketch);
  constexpr uint64_t kInterval = 256;
  constexpr uint64_t kWindow = 700;
  // Solo reference: WindowManager owns ingestion, seals automatically.
  auto solo_sketch = MakeSketch(spec);
  WindowManager::Options wm_options;
  wm_options.checkpoint_interval = kInterval;
  WindowManager solo_wm(solo_sketch.get(), wm_options);
  solo_wm.PushBatch(updates.data(), updates.size());
  const auto solo_window = solo_wm.WindowSketch(kWindow);
  // Async sharded+threaded: epochs sealed through PipelineSink.
  StreamFeeder feeder(
      std::make_unique<MemorySource>(text.data(), text.size(), 777));
  ASSERT_TRUE(feeder.ReadHeader().ok());
  std::vector<std::unique_ptr<LinearSketch>> replicas;
  std::vector<LinearSketch*> raw;
  for (int s = 0; s < 4; ++s) {
    replicas.push_back(MakeSketch(spec));
    raw.push_back(replicas.back().get());
  }
  ParallelPipeline::Options options;
  options.shards = 4;
  options.threads = 2;
  ParallelPipeline pipeline(options);
  pipeline.Add("sink", raw);
  WindowManager wm(replicas[0].get(), wm_options);
  PipelineSink sink(&pipeline, &wm, kInterval);
  ASSERT_TRUE(feeder.Feed(std::ref(sink)).ok());
  sink.Finish();
  EXPECT_EQ(wm.updates_seen(), updates.size());
  const auto async_window = wm.WindowSketch(kWindow);
  EXPECT_EQ(async_window.start, solo_window.start);
  EXPECT_EQ(async_window.length, solo_window.length);
  EXPECT_TRUE(Serialized(*async_window.sketch) ==
              Serialized(*solo_window.sketch))
      << "windowed async ingest not bit-identical to solo WindowManager";
}

TEST(AsyncIngest, FileFedPipelineMatchesMemory) {
  const auto updates = stream::UniformTurnstile(1 << 9, 2000, 25, 31);
  const std::string bytes = BinaryTrace(1 << 9, updates);
  const std::string path = MakeTempFile(bytes);
  const SketchSpec spec = SweepSpec(SketchKind::kCountMin);
  io::FileSourceOptions file_options;
  file_options.buffer_bytes = 4096;
  auto source = io::MakeFileSource(path, file_options);
  ASSERT_TRUE(source.ok());
  StreamFeeder feeder(std::move(source.value()));
  ASSERT_TRUE(feeder.ReadHeader().ok());
  std::vector<std::unique_ptr<LinearSketch>> replicas;
  std::vector<LinearSketch*> raw;
  for (int s = 0; s < 2; ++s) {
    replicas.push_back(MakeSketch(spec));
    raw.push_back(replicas.back().get());
  }
  ParallelPipeline::Options options;
  options.shards = 2;
  options.threads = 2;
  ParallelPipeline pipeline(options);
  pipeline.Add("sink", raw);
  PipelineSink sink(&pipeline, nullptr, 0);
  ASSERT_TRUE(feeder.Feed(std::ref(sink)).ok());
  sink.Finish();
  EXPECT_TRUE(Serialized(*replicas[0]) ==
              MemoryIngestState(updates, spec, 2, 2));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lps
