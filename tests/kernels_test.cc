// Kernel-layer conformance: every compiled-in backend against the scalar
// reference, at two granularities.
//
//  1. Per-kernel: each KernelTable entry fed identical inputs (random plus
//     field edge values) under every available backend. Integer/GF kernels
//     must be bit-exact; cauchy_pow_batch is tolerance-bounded at p = 1
//     (the one query-equivalent kernel) and bit-exact for p != 1, where
//     SIMD backends delegate to scalar.
//  2. Whole-sketch: every SketchKind driven through the same stream under
//     each forced backend and its serialized state compared. The
//     exact-arithmetic kinds must land bit-identical; the kinds embedding
//     a StableSketch (vectorized Cauchy transform) get the documented
//     query-equivalence check instead.
//
// Tests here force backends via ForceBackendForTesting and restore the
// dispatched backend on exit, so they compose with any LPS_KERNELS value.
#include "src/kernels/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include "src/field/gf61.h"
#include "src/lps.h"
#include "src/norm/lp_norm.h"
#include "src/sketch/stable_sketch.h"
#include "src/stream/generators.h"
#include "src/stream/stream_driver.h"
#include "src/util/random.h"

namespace lps::kernels {
namespace {

namespace gf = ::lps::gf61;

class ScopedBackend {
 public:
  explicit ScopedBackend(Backend b) : saved_(ActiveBackend()) {
    EXPECT_TRUE(ForceBackendForTesting(b));
  }
  ~ScopedBackend() { ForceBackendForTesting(saved_); }

 private:
  Backend saved_;
};

std::vector<Backend> SimdBackends() {
  std::vector<Backend> simd;
  for (Backend b : AvailableBackends()) {
    if (b != Backend::kScalar) simd.push_back(b);
  }
  return simd;
}

// Random field elements with the troublesome boundary values planted at
// the front: 0, p-1 (largest canonical), and p-2.
std::vector<uint64_t> FieldInputs(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> xs(count);
  for (uint64_t& x : xs) x = rng.Below(gf::kP);
  if (count > 0) xs[0] = 0;
  if (count > 1) xs[1] = gf::kP - 1;
  if (count > 2) xs[2] = gf::kP - 2;
  return xs;
}

TEST(KernelDispatch, ActiveBackendIsAvailableAndNamed) {
  const auto avail = AvailableBackends();
  ASSERT_FALSE(avail.empty());
  EXPECT_EQ(avail.front(), Backend::kScalar);  // scalar is always first
  const std::set<Backend> avail_set(avail.begin(), avail.end());
  EXPECT_TRUE(avail_set.count(ActiveBackend()) > 0);
  for (Backend b : avail) {
    EXPECT_STRNE(BackendName(b), "");
  }
  EXPECT_STREQ(ActiveBackendName(), BackendName(ActiveBackend()));
}

TEST(KernelDispatch, ForceBackendRoundTrips) {
  const Backend dispatched = ActiveBackend();
  for (Backend b : AvailableBackends()) {
    ASSERT_TRUE(ForceBackendForTesting(b));
    EXPECT_EQ(ActiveBackend(), b);
    EXPECT_EQ(Active().backend, b);
  }
  ASSERT_TRUE(ForceBackendForTesting(dispatched));
  EXPECT_EQ(ActiveBackend(), dispatched);
}

TEST(Kernels, Gf61MulBatchBitExact) {
  // Sizes straddle the vector widths so every backend exercises both its
  // SIMD body and its scalar tail (including count < lane-width).
  for (size_t count : {size_t{1}, size_t{3}, size_t{4}, size_t{257}}) {
    const auto a = FieldInputs(count, 101);
    const auto b = FieldInputs(count, 202);
    std::vector<uint64_t> want(count), got(count);
    {
      ScopedBackend pin(Backend::kScalar);
      Active().gf61_mul_batch(a.data(), b.data(), count, want.data());
    }
    for (size_t i = 0; i < count; ++i) {
      ASSERT_EQ(want[i], gf::Mul(a[i], b[i])) << "scalar kernel vs gf61::Mul";
    }
    for (Backend bk : SimdBackends()) {
      ScopedBackend pin(bk);
      Active().gf61_mul_batch(a.data(), b.data(), count, got.data());
      for (size_t i = 0; i < count; ++i) {
        ASSERT_EQ(want[i], got[i])
            << BackendName(bk) << " count=" << count << " i=" << i;
      }
    }
  }
}

TEST(Kernels, Gf61MulBatchAllowsOutAliasingB) {
  // l0_norm weights fingerprints in place: out == b must be safe.
  const size_t kCount = 67;
  const auto a = FieldInputs(kCount, 303);
  for (Backend bk : AvailableBackends()) {
    ScopedBackend pin(bk);
    auto b = FieldInputs(kCount, 404);
    const auto b_orig = b;
    Active().gf61_mul_batch(a.data(), b.data(), kCount, b.data());
    for (size_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(b[i], gf::Mul(a[i], b_orig[i])) << BackendName(bk);
    }
  }
}

TEST(Kernels, KWiseHornerBatchBitExact) {
  const auto xs = FieldInputs(131, 505);
  const auto coeffs = FieldInputs(6, 606);
  std::vector<uint64_t> want(xs.size()), got(xs.size());
  for (size_t k = 2; k <= coeffs.size(); ++k) {
    {
      ScopedBackend pin(Backend::kScalar);
      Active().kwise_horner_batch(coeffs.data(), k, xs.data(), xs.size(),
                                  want.data());
    }
    for (size_t i = 0; i < xs.size(); ++i) {
      ASSERT_EQ(want[i], hash::PolyEval(coeffs.data(), k, xs[i]))
          << "scalar kernel vs hash::PolyEval, k=" << k;
    }
    for (Backend bk : SimdBackends()) {
      ScopedBackend pin(bk);
      Active().kwise_horner_batch(coeffs.data(), k, xs.data(), xs.size(),
                                  got.data());
      for (size_t i = 0; i < xs.size(); ++i) {
        ASSERT_EQ(want[i], got[i])
            << BackendName(bk) << " k=" << k << " i=" << i;
      }
    }
  }
}

TEST(Kernels, CountRowsApplyBitExact) {
  const size_t kCount = 215;
  const uint64_t kRange = 97;
  const auto xs = FieldInputs(kCount, 707);
  Rng rng(808);
  std::vector<double> deltas(kCount);
  for (double& d : deltas) d = rng.NextDouble() * 10.0 - 5.0;
  const auto h = FieldInputs(4, 909);  // bucket/sign pairwise coefficients
  for (bool use_sign : {true, false}) {
    std::vector<double> want(kRange, 0.0);
    {
      ScopedBackend pin(Backend::kScalar);
      Active().count_rows_apply(xs.data(), deltas.data(), kCount, h[0], h[1],
                                h[2], h[3], use_sign, kRange, want.data());
    }
    for (Backend bk : SimdBackends()) {
      ScopedBackend pin(bk);
      std::vector<double> got(kRange, 0.0);
      Active().count_rows_apply(xs.data(), deltas.data(), kCount, h[0], h[1],
                                h[2], h[3], use_sign, kRange, got.data());
      for (size_t i = 0; i < kRange; ++i) {
        // Bit-exact, not EXPECT_DOUBLE_EQ: the scatter stays scalar and in
        // stream order on every backend, so the accumulation order (and
        // hence every rounding step) is identical.
        ASSERT_EQ(want[i], got[i])
            << BackendName(bk) << " use_sign=" << use_sign << " bucket=" << i;
      }
    }
  }
}

TEST(Kernels, Gf61SyndromeBatchBitExactIncludingPowers) {
  const size_t kSyndromes = 57;  // not a multiple of 4: exercises the tail
  const auto seed_syn = FieldInputs(kSyndromes, 111);
  const auto a = FieldInputs(4, 222);
  const auto p0 = FieldInputs(4, 333);
  std::vector<uint64_t> want(seed_syn), got;
  uint64_t want_pow[4], got_pow[4];
  {
    ScopedBackend pin(Backend::kScalar);
    for (int j = 0; j < 4; ++j) want_pow[j] = p0[static_cast<size_t>(j)];
    Active().gf61_syndrome_batch(want.data(), kSyndromes, want_pow, a.data());
  }
  for (Backend bk : SimdBackends()) {
    ScopedBackend pin(bk);
    got = seed_syn;
    for (int j = 0; j < 4; ++j) got_pow[j] = p0[static_cast<size_t>(j)];
    Active().gf61_syndrome_batch(got.data(), kSyndromes, got_pow, a.data());
    for (size_t i = 0; i < kSyndromes; ++i) {
      ASSERT_EQ(want[i], got[i]) << BackendName(bk) << " syndrome " << i;
    }
    for (int j = 0; j < 4; ++j) {
      // The running powers are carried state: later batches start from
      // them, so they must match bit-for-bit too.
      ASSERT_EQ(want_pow[j], got_pow[j]) << BackendName(bk) << " power " << j;
    }
  }
}

TEST(Kernels, CauchyPowBatchToleranceBoundedAtP1) {
  const size_t kCount = 509;
  const auto keys = FieldInputs(kCount, 444);
  Rng rng(555);
  std::vector<double> deltas(kCount);
  for (double& d : deltas) d = rng.NextDouble() * 4.0 - 2.0;
  const uint64_t kRowBase = 0x9e3779b97f4a7c15ULL;
  // Per-quad comparison keeps the check tight: summing the whole batch
  // first would let cancellation hide per-item error.
  for (Backend bk : SimdBackends()) {
    for (size_t i = 0; i + 4 <= kCount; i += 4) {
      double want, got;
      {
        ScopedBackend pin(Backend::kScalar);
        want = Active().cauchy_pow_batch(1.0, kRowBase, keys.data() + i,
                                         deltas.data() + i, 4, 0.0);
      }
      {
        ScopedBackend pin(bk);
        got = Active().cauchy_pow_batch(1.0, kRowBase, keys.data() + i,
                                        deltas.data() + i, 4, 0.0);
      }
      ASSERT_NEAR(want, got, 1e-9 * std::max(1.0, std::abs(want)))
          << BackendName(bk) << " quad at " << i;
    }
  }
}

TEST(Kernels, CauchyPowBatchBitExactForPNotOne) {
  // p != 1 delegates to the scalar kernel on every backend (the
  // exponentiation path has no vector form yet) — bit-identical, not
  // merely close.
  const size_t kCount = 143;
  const auto keys = FieldInputs(kCount, 666);
  Rng rng(777);
  std::vector<double> deltas(kCount);
  for (double& d : deltas) d = rng.NextDouble() * 4.0 - 2.0;
  for (double p : {0.5, 1.5, 2.0}) {
    double want;
    {
      ScopedBackend pin(Backend::kScalar);
      want = Active().cauchy_pow_batch(p, 42, keys.data(), deltas.data(),
                                       kCount, 1.25);
    }
    for (Backend bk : SimdBackends()) {
      ScopedBackend pin(bk);
      const double got = Active().cauchy_pow_batch(
          p, 42, keys.data(), deltas.data(), kCount, 1.25);
      ASSERT_EQ(want, got) << BackendName(bk) << " p=" << p;
    }
  }
}

// ---------------------------------------------------------------------------
// Whole-sketch sweep: the same stream through every kind under every
// backend. Exact-arithmetic kinds land bit-identical serialized state;
// the kinds that embed a StableSketch (and so cross cauchy_pow_batch at
// p = 1) are only query-equivalent and get a tolerance check below.
// ---------------------------------------------------------------------------

bool EmbedsStableSketch(SketchKind kind) {
  switch (kind) {
    case SketchKind::kStableSketch:       // the Cauchy rows themselves
    case SketchKind::kLpNormEstimator:    // wraps a StableSketch
    case SketchKind::kLpSampler:          // owns an LpNormEstimator
    case SketchKind::kAkoSampler:         // owns LpSampler rounds
    case SketchKind::kCsHeavyHitters:     // owns an LpNormEstimator
    case SketchKind::kDuplicateFinder:    // owns an LpSampler
    case SketchKind::kSparseDuplicateFinder:
    case SketchKind::kPositiveFinder:
      return true;
    default:
      return false;
  }
}

std::vector<uint64_t> SerializedState(SketchKind kind, Backend backend) {
  ScopedBackend pin(backend);
  SketchSpec spec;
  spec.kind = kind;
  spec.n = 1 << 10;
  spec.rows = 5;
  spec.buckets = 32;
  spec.s = 8;
  spec.repetitions = 3;
  spec.seed = 77;
  auto sketch = MakeSketch(spec);
  EXPECT_NE(sketch, nullptr) << SketchKindName(kind);
  const auto stream = stream::UniformTurnstile(1 << 10, 6000, 50, 9);
  stream::StreamDriver driver(193);  // odd batch size: partial tail batches
  driver.Add("x", sketch.get());
  driver.Drive(stream);
  BitWriter writer;
  sketch->Serialize(&writer);
  return writer.words();
}

TEST(KernelSweep, ExactKindsBitIdenticalAcrossBackends) {
  const auto simd = SimdBackends();
  constexpr uint32_t kLastKind =
      static_cast<uint32_t>(SketchKind::kMomentEstimator);
  for (uint32_t k = 1; k <= kLastKind; ++k) {
    const auto kind = static_cast<SketchKind>(k);
    const auto want = SerializedState(kind, Backend::kScalar);
    for (Backend bk : simd) {
      const auto got = SerializedState(kind, bk);
      if (EmbedsStableSketch(kind)) {
        // Query-equivalent family: state may differ in low-order FP bits,
        // but the layout (and so the serialized size) must not.
        EXPECT_EQ(want.size(), got.size())
            << SketchKindName(kind) << " under " << BackendName(bk);
      } else {
        EXPECT_EQ(want, got)
            << SketchKindName(kind) << " not bit-identical under "
            << BackendName(bk);
      }
    }
  }
}

TEST(KernelSweep, StableFamilyQueryEquivalentAcrossBackends) {
  const auto stream = stream::UniformTurnstile(1 << 10, 8000, 50, 13);
  for (Backend bk : SimdBackends()) {
    double want_norm, got_norm, want_est, got_est;
    {
      ScopedBackend pin(Backend::kScalar);
      sketch::StableSketch s(1.0, 32, 21);
      norm::LpNormEstimator e(1.0, 32, 22);
      stream::StreamDriver driver(193);
      driver.Add("s", &s).Add("e", &e).Drive(stream);
      want_norm = s.EstimateNorm();
      want_est = e.Estimate2Approx();
    }
    {
      ScopedBackend pin(bk);
      sketch::StableSketch s(1.0, 32, 21);
      norm::LpNormEstimator e(1.0, 32, 22);
      stream::StreamDriver driver(193);
      driver.Add("s", &s).Add("e", &e).Drive(stream);
      got_norm = s.EstimateNorm();
      got_est = e.Estimate2Approx();
    }
    EXPECT_NEAR(want_norm, got_norm,
                1e-9 * std::max(1.0, std::abs(want_norm)))
        << BackendName(bk);
    EXPECT_NEAR(want_est, got_est, 1e-9 * std::max(1.0, std::abs(want_est)))
        << BackendName(bk);
  }
}

}  // namespace
}  // namespace lps::kernels
