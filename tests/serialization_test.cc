// Serialization round trips and cross-party linearity for every
// serializable component — the communication reductions depend on the
// invariant that (same seed) + (transferred counters) == (same state).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>

#include "src/core/l0_sampler.h"
#include "src/core/lp_sampler.h"
#include "src/duplicates/duplicates.h"
#include "src/heavy/heavy_hitters.h"
#include "src/norm/l0_norm.h"
#include "src/recovery/one_sparse.h"
#include "src/recovery/sparse_recovery.h"
#include "src/sketch/count_min.h"
#include "src/sketch/count_sketch.h"
#include "src/sketch/stable_sketch.h"
#include "src/stream/generators.h"
#include "src/stream/linear_sketch.h"
#include "src/util/serialize.h"

namespace lps {
namespace {

// Every serializable sketch S must satisfy: deserialize(serialize(A)) into
// a same-seed twin B, then updating A and B identically keeps them equal.
template <typename Sketch, typename MakeFn, typename UpdateFn, typename EqFn>
void CheckContinuation(MakeFn make, UpdateFn update, EqFn equal) {
  Sketch a = make();
  update(&a, 17, 5.0);
  update(&a, 90, -2.0);
  BitWriter w;
  a.SerializeCounters(&w);
  Sketch b = make();
  BitReader r(w);
  b.DeserializeCounters(&r);
  // Continue both with identical updates.
  update(&a, 300, 7.0);
  update(&b, 300, 7.0);
  equal(a, b);
}

TEST(Serialization, CountSketchContinuation) {
  CheckContinuation<sketch::CountSketch>(
      [] { return sketch::CountSketch(9, 48, 1); },
      [](sketch::CountSketch* s, uint64_t i, double v) { s->Update(i, v); },
      [](const sketch::CountSketch& a, const sketch::CountSketch& b) {
        for (uint64_t i : {17ULL, 90ULL, 300ULL, 5ULL}) {
          EXPECT_DOUBLE_EQ(a.Query(i), b.Query(i));
        }
      });
}

TEST(Serialization, CountMinContinuation) {
  CheckContinuation<sketch::CountMin>(
      [] { return sketch::CountMin(9, 48, 2); },
      [](sketch::CountMin* s, uint64_t i, double v) { s->Update(i, v); },
      [](const sketch::CountMin& a, const sketch::CountMin& b) {
        for (uint64_t i : {17ULL, 90ULL, 300ULL}) {
          EXPECT_DOUBLE_EQ(a.QueryMin(i), b.QueryMin(i));
          EXPECT_DOUBLE_EQ(a.QueryMedian(i), b.QueryMedian(i));
        }
      });
}

TEST(Serialization, StableSketchContinuation) {
  CheckContinuation<sketch::StableSketch>(
      [] { return sketch::StableSketch(1.0, 32, 3); },
      [](sketch::StableSketch* s, uint64_t i, double v) { s->Update(i, v); },
      [](const sketch::StableSketch& a, const sketch::StableSketch& b) {
        EXPECT_DOUBLE_EQ(a.EstimateNorm(), b.EstimateNorm());
      });
}

TEST(Serialization, SparseRecoveryDifferenceAcrossThreeParties) {
  // A -> B -> C chain: C ends up holding sketch(x_A + x_B + x_C).
  const uint64_t n = 1000;
  recovery::SparseRecovery a(n, 6, 4);
  a.Update(1, 10);
  BitWriter w1;
  a.SerializeCounters(&w1);

  recovery::SparseRecovery b(n, 6, 4);
  BitReader r1(w1);
  b.DeserializeCounters(&r1);
  b.Update(2, 20);
  BitWriter w2;
  b.SerializeCounters(&w2);

  recovery::SparseRecovery c(n, 6, 4);
  BitReader r2(w2);
  c.DeserializeCounters(&r2);
  c.Update(3, 30);

  auto rec = c.Recover();
  ASSERT_TRUE(rec.ok());
  ASSERT_EQ(rec.value().size(), 3u);
  EXPECT_EQ(rec.value()[0].value, 10);
  EXPECT_EQ(rec.value()[1].value, 20);
  EXPECT_EQ(rec.value()[2].value, 30);
}

TEST(Serialization, OneSparseRoundTripPreservesRecovery) {
  recovery::OneSparse a(500, 5);
  a.Update(123, 9);
  BitWriter w;
  a.SerializeCounters(&w);
  recovery::OneSparse b(500, 5);
  BitReader r(w);
  b.DeserializeCounters(&r);
  b.Update(123, -9);  // cancel through the transferred state
  EXPECT_TRUE(b.IsZero());
}

TEST(Serialization, L0EstimatorBitWidth) {
  norm::L0Estimator est(1024, 9, 6);
  BitWriter w;
  est.SerializeCounters(&w);
  // reps x levels fingerprints at 61 bits each, and nothing else.
  EXPECT_EQ(w.bit_count(), 9u * est.levels() * 61);
}

TEST(Serialization, L0SamplerCrossPartySampleAgreement) {
  const uint64_t n = 2048;
  core::L0SamplerParams params{n, 0.25, 0, 7, false};
  core::L0Sampler alice(params);
  const auto stream = stream::SparseVector(n, 30, 100, 8);
  for (const auto& u : stream) alice.Update(u.index, u.delta);
  BitWriter w;
  alice.SerializeCounters(&w);
  core::L0Sampler bob(params);
  BitReader r(w);
  bob.DeserializeCounters(&r);
  auto sa = alice.Sample();
  auto sb = bob.Sample();
  ASSERT_EQ(sa.ok(), sb.ok());
  if (sa.ok()) {
    EXPECT_EQ(sa.value().index, sb.value().index);
    EXPECT_DOUBLE_EQ(sa.value().estimate, sb.value().estimate);
  }
}

TEST(Serialization, DuplicateFinderHalfAndHalf) {
  // Alice processes half the stream, ships her memory; Bob finishes. The
  // result must match a single party processing everything.
  const uint64_t n = 256;
  const auto letters = stream::DuplicateStream(n, 4, 9);
  duplicates::DuplicateFinder::Params params{n, 0.2, 8, 10};

  duplicates::DuplicateFinder solo(params);
  for (uint64_t l : letters) solo.ProcessItem(l);

  duplicates::DuplicateFinder alice(params);
  const size_t half = letters.size() / 2;
  for (size_t j = 0; j < half; ++j) alice.ProcessItem(letters[j]);
  BitWriter w;
  alice.SerializeCounters(&w);
  duplicates::DuplicateFinder bob(params);
  BitReader r(w);
  bob.DeserializeCounters(&r);
  for (size_t j = half; j < letters.size(); ++j) bob.ProcessItem(letters[j]);

  auto solo_result = solo.Find();
  auto split_result = bob.Find();
  ASSERT_EQ(solo_result.ok(), split_result.ok());
  if (solo_result.ok()) {
    EXPECT_EQ(solo_result.value(), split_result.value());
  }
}

TEST(Serialization, HeavyHittersQueryEquivalence) {
  heavy::CsHeavyHitters::Params params;
  params.n = 512;
  params.p = 1.0;
  params.phi = 0.2;
  params.strict_turnstile = true;
  params.seed = 11;
  heavy::CsHeavyHitters alice(params);
  alice.Update(7, 100);
  alice.Update(300, 60);
  alice.Update(12, 1);
  BitWriter w;
  alice.SerializeCounters(&w);
  heavy::CsHeavyHitters bob(params);
  BitReader r(w);
  bob.DeserializeCounters(&r);
  EXPECT_EQ(alice.Query(), bob.Query());
}

// ----------------------- full-state (LinearSketch) wire-format coverage --

TEST(Serialization, FullStateRoundTripNeedsNoOutOfBandParams) {
  // Serialize a configured sampler; Deserialize into an instance built with
  // throwaway params. The wire format carries params + seeds, so the
  // restored object must answer identically and re-serialize bit-for-bit.
  core::LpSamplerParams params;
  params.n = 4096;
  params.p = 1.0;
  params.eps = 0.25;
  params.repetitions = 6;
  params.seed = 77;
  core::LpSampler original(params);
  const auto stream = stream::UniformTurnstile(4096, 20000, 100, 78);
  original.UpdateBatch(stream.data(), stream.size());
  BitWriter w;
  original.Serialize(&w);

  core::LpSamplerParams dummy;
  dummy.n = 1;
  dummy.repetitions = 1;
  core::LpSampler restored(dummy);
  BitReader r(w);
  restored.Deserialize(&r);
  EXPECT_EQ(r.bits_remaining(), 0u);

  const auto a = original.Sample();
  const auto b = restored.Sample();
  ASSERT_EQ(a.ok(), b.ok());
  if (a.ok()) {
    EXPECT_EQ(a.value().index, b.value().index);
    EXPECT_DOUBLE_EQ(a.value().estimate, b.value().estimate);
  }
  BitWriter w2;
  restored.Serialize(&w2);
  EXPECT_EQ(w.bit_count(), w2.bit_count());
  EXPECT_EQ(w.words(), w2.words());
}

TEST(Serialization, FullStateFileRoundTrip) {
  const uint64_t n = 2048;
  core::L0Sampler original({n, 0.25, 0, 81, false});
  const auto stream = stream::SparseVector(n, 40, 100, 82);
  original.UpdateBatch(stream.data(), stream.size());
  BitWriter w;
  original.Serialize(&w);
  const std::string path = ::testing::TempDir() + "/l0_state.lps";
  ASSERT_TRUE(WriteBitsToFile(w, path).ok());

  auto reader = ReadBitsFromFile(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(PeekSketchKind(&reader.value()), SketchKind::kL0Sampler);

  auto reader2 = ReadBitsFromFile(path);
  ASSERT_TRUE(reader2.ok());
  core::L0Sampler restored({1, 0.25, 0, 0, false});
  restored.Deserialize(&reader2.value());
  const auto a = original.Sample();
  const auto b = restored.Sample();
  ASSERT_EQ(a.ok(), b.ok());
  if (a.ok()) {
    EXPECT_EQ(a.value().index, b.value().index);
  }
}

TEST(Serialization, ReadBitsFromFileRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/not_a_sketch.lps";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("definitely not a bit stream", f);
  std::fclose(f);
  EXPECT_FALSE(ReadBitsFromFile(path).ok());
  EXPECT_FALSE(ReadBitsFromFile(::testing::TempDir() + "/missing.lps").ok());
}

TEST(Serialization, OwningBitReaderOutlivesItsSource) {
  std::vector<uint64_t> words;
  size_t bits = 0;
  {
    BitWriter w;
    w.WriteU64(0x123456789abcdef0ULL);
    w.WriteBits(0x2a, 7);
    words = w.words();
    bits = w.bit_count();
  }  // writer destroyed; the owning reader must not dangle
  BitReader r(std::move(words), bits);
  EXPECT_EQ(r.ReadU64(), 0x123456789abcdef0ULL);
  EXPECT_EQ(r.ReadBits(7), 0x2aULL);
  EXPECT_EQ(r.bits_remaining(), 0u);
}

TEST(SerializationDeathTest, KindMismatchChecks) {
  sketch::CountSketch cs(5, 16, 1);
  BitWriter w;
  cs.Serialize(&w);
  sketch::CountMin cm(5, 16, 1);
  BitReader r(w);
  EXPECT_DEATH(cm.Deserialize(&r), "LPS_CHECK");
}

TEST(SerializationDeathTest, BadMagicChecks) {
  BitWriter w;
  w.WriteU64(0xdeadbeefdeadbeefULL);
  BitReader r(w);
  sketch::CountSketch cs(5, 16, 1);
  EXPECT_DEATH(cs.Deserialize(&r), "LPS_CHECK");
}

TEST(Serialization, HeavyHittersFullStateRoundTrip) {
  heavy::CsHeavyHitters::Params params;
  params.n = 512;
  params.p = 1.0;
  params.phi = 0.2;
  params.strict_turnstile = true;
  params.seed = 11;
  heavy::CsHeavyHitters original(params);
  original.Update(7, 100);
  original.Update(300, 60);
  BitWriter w;
  original.Serialize(&w);

  heavy::CsHeavyHitters::Params dummy;
  dummy.n = 1;
  heavy::CsHeavyHitters restored(dummy);
  BitReader r(w);
  restored.Deserialize(&r);
  EXPECT_EQ(original.Query(), restored.Query());
  EXPECT_DOUBLE_EQ(original.NormEstimate(), restored.NormEstimate());
}

TEST(Serialization, DeserializeAnySketchDispatchesOnKind) {
  // The library-side factory must reconstruct the right concrete type
  // from the kind tag alone and restore bit-for-bit — for several
  // families, exercising the same path lps_cli load/merge uses.
  auto roundtrip = [](const LinearSketch& original) {
    BitWriter w;
    original.Serialize(&w);
    BitReader r(w);
    auto restored = DeserializeAnySketch(&r);
    ASSERT_NE(restored, nullptr);
    EXPECT_EQ(restored->kind(), original.kind());
    BitWriter w2;
    restored->Serialize(&w2);
    EXPECT_EQ(w.bit_count(), w2.bit_count());
    EXPECT_EQ(w.words(), w2.words());
  };
  {
    sketch::CountSketch cs(7, 24, 90);
    cs.Update(3, 10.0);
    roundtrip(cs);
  }
  {
    recovery::SparseRecovery rec(1000, 6, 91);
    rec.Update(1, 10);
    roundtrip(rec);
  }
  {
    core::LpSamplerParams params;
    params.n = 2048;
    params.p = 1.0;
    params.eps = 0.25;
    params.repetitions = 4;
    params.seed = 92;
    core::LpSampler sampler(params);
    sampler.Update(17, 5.0);
    roundtrip(sampler);
  }
  {
    heavy::CsHeavyHitters::Params params;
    params.n = 512;
    params.p = 1.0;
    params.phi = 0.2;
    params.strict_turnstile = true;
    params.seed = 93;
    heavy::CsHeavyHitters hh(params);
    hh.Update(7, 100);
    roundtrip(hh);
  }
  {
    duplicates::DuplicateFinder finder(
        duplicates::DuplicateFinder::Params{256, 0.2, 6, 94});
    finder.ProcessItem(7);
    roundtrip(finder);
  }
  {
    norm::L0Estimator est(1024, 5, 95);
    est.Update(12, 3);
    roundtrip(est);
  }
}

TEST(Serialization, MakeEmptySketchCoversEveryKind) {
  // Every enum value constructs; an out-of-range tag returns nullptr
  // instead of a half-built object.
  for (uint32_t k = 1; k <= 21; ++k) {
    auto sketch = MakeEmptySketch(static_cast<SketchKind>(k));
    ASSERT_NE(sketch, nullptr) << "kind " << k;
    EXPECT_EQ(static_cast<uint32_t>(sketch->kind()), k);
  }
  EXPECT_EQ(MakeEmptySketch(static_cast<SketchKind>(0)), nullptr);
  EXPECT_EQ(MakeEmptySketch(static_cast<SketchKind>(22)), nullptr);
}

TEST(Serialization, BitExactAccountingMatchesSpaceModel) {
  // The serialized size of a sparse recovery sketch is exactly its
  // measurement bits — the quantity Lemma 5 and the reductions charge.
  recovery::SparseRecovery rec(4096, 10, 12);
  BitWriter w;
  rec.SerializeCounters(&w);
  EXPECT_EQ(w.bit_count(), (2u * 10 + 2) * 61);
  EXPECT_EQ(rec.SpaceBits(), w.bit_count() + 2 * 64);  // + the two seeds
}

}  // namespace
}  // namespace lps
