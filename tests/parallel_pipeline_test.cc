// Determinism and equivalence properties of the parallel ingestion
// runtime (src/stream/parallel_pipeline.h): for every shard count k and
// worker count t — including t = 0, the inline ShardedDriver mode — the
// merged state must be BIT-IDENTICAL to solo ingest for exact-arithmetic
// structures, because the partition of updates into shards and the chunk
// boundaries within each shard are decided on the producer side and
// thread interleaving only reorders work across independent replicas.
// Also covered: Push()/Flush() interleaving at arbitrary points,
// MergeShards() epoch boundaries mid-stream, empty shards and streams,
// single-update streams, backpressure (tiny rings), and the
// floating-point family's query-agreement guarantee under threads.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/core/lp_sampler.h"
#include "src/heavy/heavy_hitters.h"
#include "src/norm/l0_norm.h"
#include "src/recovery/sparse_recovery.h"
#include "src/sketch/count_sketch.h"
#include "src/stream/generators.h"
#include "src/stream/linear_sketch.h"
#include "src/stream/parallel_pipeline.h"
// ShardedDriver is the deprecated shim this suite historically tests
// through; the pipeline itself is the supported surface.
#define LPS_SHARDED_DRIVER_ALLOW_DEPRECATED
#include "src/stream/sharded_driver.h"
#include "src/util/serialize.h"

namespace lps {
namespace {

using stream::ParallelPipeline;
using stream::ShardedDriver;
using stream::Update;
using stream::UpdateStream;

constexpr uint64_t kN = 2048;

struct SerializedState {
  std::vector<uint64_t> words;
  size_t bits;
  bool operator==(const SerializedState& other) const {
    return bits == other.bits && words == other.words;
  }
};

SerializedState StateOf(const LinearSketch& sketch) {
  BitWriter writer;
  sketch.Serialize(&writer);
  return {writer.words(), writer.bit_count()};
}

ParallelPipeline::Options PipelineOptions(
    int shards, int threads,
    ParallelPipeline::Partition partition =
        ParallelPipeline::Partition::kByIndex,
    size_t batch_size = 64, size_t queue_capacity = 2) {
  ParallelPipeline::Options options;
  options.shards = shards;
  options.threads = threads;
  options.partition = partition;
  // Small batches and a 2-deep ring force many seal/enqueue cycles and
  // real backpressure even on short test streams.
  options.batch_size = batch_size;
  options.queue_capacity = queue_capacity;
  return options;
}

/// Builds k replicas with `make`, drives `stream` through a pipeline with
/// t workers, merges, and returns replica 0 by value.
template <typename T, typename MakeFn>
T PipelineIngest(MakeFn make, const UpdateStream& stream,
                 ParallelPipeline::Options options) {
  std::vector<T> replicas;
  replicas.reserve(static_cast<size_t>(options.shards));
  for (int s = 0; s < options.shards; ++s) replicas.push_back(make());
  std::vector<LinearSketch*> raw;
  for (auto& replica : replicas) raw.push_back(&replica);
  ParallelPipeline pipeline(options);
  pipeline.Add("sink", raw);
  pipeline.Drive(stream);
  pipeline.MergeShards();
  return std::move(replicas[0]);
}

/// The tentpole property: k in {1, 2, 8} x t in {0, 1, 4}, both partition
/// policies — merged state bit-identical to solo ingest.
template <typename T, typename MakeFn>
void ExpectAllModesBitIdentical(MakeFn make, const UpdateStream& stream) {
  T solo = make();
  solo.UpdateBatch(stream.data(), stream.size());
  const SerializedState want = StateOf(solo);
  for (int k : {1, 2, 8}) {
    for (int t : {0, 1, 4}) {
      for (auto partition : {ParallelPipeline::Partition::kByIndex,
                             ParallelPipeline::Partition::kRoundRobin}) {
        T merged = PipelineIngest<T>(
            make, stream, PipelineOptions(k, t, partition));
        EXPECT_TRUE(StateOf(merged) == want)
            << "k=" << k << " t=" << t
            << " partition=" << static_cast<int>(partition);
      }
    }
  }
}

UpdateStream GeneralStream() {
  return stream::UniformTurnstile(kN, 5000, 100, 51);
}

TEST(ParallelPipeline, CountSketchAllModesBitIdentical) {
  ExpectAllModesBitIdentical<sketch::CountSketch>(
      [] { return sketch::CountSketch(9, 48, 52); }, GeneralStream());
}

TEST(ParallelPipeline, SparseRecoveryAllModesBitIdentical) {
  ExpectAllModesBitIdentical<recovery::SparseRecovery>(
      [] { return recovery::SparseRecovery(kN, 12, 53); }, GeneralStream());
}

TEST(ParallelPipeline, L0EstimatorAllModesBitIdentical) {
  ExpectAllModesBitIdentical<norm::L0Estimator>(
      [] { return norm::L0Estimator(kN, 9, 54); }, GeneralStream());
}

TEST(ParallelPipeline, SingleUpdateStream) {
  const UpdateStream one = {{42, 7}};
  ExpectAllModesBitIdentical<sketch::CountSketch>(
      [] { return sketch::CountSketch(7, 24, 55); }, one);
}

TEST(ParallelPipeline, EmptyStreamAndEmptyShards) {
  ExpectAllModesBitIdentical<sketch::CountSketch>(
      [] { return sketch::CountSketch(7, 24, 56); }, UpdateStream{});
  // 3 updates over 8 shards and 4 workers: most shards never see a batch.
  const UpdateStream tiny = {{5, 7}, {900, -3}, {5, 1}};
  ExpectAllModesBitIdentical<recovery::SparseRecovery>(
      [] { return recovery::SparseRecovery(kN, 4, 57); }, tiny);
}

TEST(ParallelPipeline, MatchesShardedDriverBitForBit) {
  // The threads=0 pipeline IS ShardedDriver; a threaded pipeline with the
  // production batch size must land on the same state as the driver.
  const auto stream = GeneralStream();
  auto make = [] { return sketch::CountSketch(9, 48, 58); };

  std::vector<sketch::CountSketch> via_driver{make(), make(), make()};
  ShardedDriver driver(3);
  driver.Add("cs", {&via_driver[0], &via_driver[1], &via_driver[2]});
  driver.Drive(stream);
  driver.MergeShards();

  auto via_pipeline = PipelineIngest<sketch::CountSketch>(
      make, stream,
      PipelineOptions(3, 2, ParallelPipeline::Partition::kByIndex,
                      stream::StreamDriver::kDefaultBatchSize, 8));
  EXPECT_TRUE(StateOf(via_driver[0]) == StateOf(via_pipeline));
}

TEST(ParallelPipeline, PushFlushInterleaving) {
  // Flush at arbitrary (prime-stride) points must not change final state:
  // it only seals partial chunks earlier, and chunk boundaries per shard
  // still depend only on the producer-side sequence of seals.
  const auto stream = GeneralStream();
  auto make = [] { return sketch::CountSketch(9, 48, 59); };
  sketch::CountSketch solo = make();
  solo.UpdateBatch(stream.data(), stream.size());

  for (int t : {0, 1, 4}) {
    std::vector<sketch::CountSketch> replicas;
    for (int s = 0; s < 4; ++s) replicas.push_back(make());
    std::vector<LinearSketch*> raw;
    for (auto& replica : replicas) raw.push_back(&replica);
    ParallelPipeline pipeline(PipelineOptions(4, t));
    pipeline.Add("cs", raw);
    for (size_t j = 0; j < stream.size(); ++j) {
      pipeline.Push(stream[j]);
      if (j % 997 == 0) pipeline.Flush();
    }
    pipeline.Flush();
    pipeline.MergeShards();
    EXPECT_TRUE(StateOf(replicas[0]) == StateOf(solo)) << "t=" << t;
    EXPECT_EQ(pipeline.updates_driven(), stream.size());
  }
}

TEST(ParallelPipeline, MidStreamEpochBoundaries) {
  // MergeShards() twice mid-stream: by linearity each epoch's merge folds
  // the epoch's sub-stream into replica 0, so after the final merge the
  // state equals solo ingest of the whole stream — for every t.
  const auto stream = GeneralStream();
  auto make = [] { return recovery::SparseRecovery(kN, 12, 60); };
  recovery::SparseRecovery solo = make();
  solo.UpdateBatch(stream.data(), stream.size());

  for (int t : {0, 1, 4}) {
    std::vector<recovery::SparseRecovery> replicas;
    for (int s = 0; s < 4; ++s) replicas.push_back(make());
    std::vector<LinearSketch*> raw;
    for (auto& replica : replicas) raw.push_back(&replica);
    ParallelPipeline pipeline(PipelineOptions(4, t));
    pipeline.Add("rec", raw);
    const size_t third = stream.size() / 3;
    for (size_t j = 0; j < stream.size(); ++j) {
      pipeline.Push(stream[j]);
      if (j == third || j == 2 * third) pipeline.MergeShards();
    }
    pipeline.MergeShards();
    EXPECT_TRUE(StateOf(replicas[0]) == StateOf(solo)) << "t=" << t;
    EXPECT_EQ(pipeline.epochs_merged(), 3u);
  }
}

TEST(ParallelPipeline, MultipleSinksShareThePartition) {
  // Two registered structures see the same per-shard sub-streams, and
  // both merge to their solo state.
  const auto stream = GeneralStream();
  auto make_cs = [] { return sketch::CountSketch(7, 24, 61); };
  auto make_rec = [] { return recovery::SparseRecovery(kN, 8, 62); };
  sketch::CountSketch solo_cs = make_cs();
  recovery::SparseRecovery solo_rec = make_rec();
  solo_cs.UpdateBatch(stream.data(), stream.size());
  solo_rec.UpdateBatch(stream.data(), stream.size());

  std::vector<sketch::CountSketch> cs{make_cs(), make_cs()};
  std::vector<recovery::SparseRecovery> rec{make_rec(), make_rec()};
  ParallelPipeline pipeline(PipelineOptions(2, 2));
  pipeline.Add("cs", {&cs[0], &cs[1]}).Add("rec", {&rec[0], &rec[1]});
  pipeline.Drive(stream);
  pipeline.MergeShards();
  EXPECT_TRUE(StateOf(cs[0]) == StateOf(solo_cs));
  EXPECT_TRUE(StateOf(rec[0]) == StateOf(solo_rec));
}

TEST(ParallelPipeline, ThreadsClampedToShards) {
  ParallelPipeline pipeline(PipelineOptions(2, 8));
  EXPECT_EQ(pipeline.shards(), 2);
  EXPECT_EQ(pipeline.threads(), 2);
}

TEST(ParallelPipeline, LpSamplerThreadedSampleAgreement) {
  // The floating-point family: threaded sharded state agrees with solo up
  // to reassociation, so the sampled coordinate must match.
  const auto stream = GeneralStream();
  auto make = [] {
    core::LpSamplerParams params;
    params.n = kN;
    params.p = 1.0;
    params.eps = 0.25;
    params.repetitions = 8;
    params.seed = 63;
    return core::LpSampler(params);
  };
  auto solo = make();
  solo.UpdateBatch(stream.data(), stream.size());
  const auto want = solo.Sample();
  for (int t : {1, 4}) {
    auto merged = PipelineIngest<core::LpSampler>(
        make, stream, PipelineOptions(4, t));
    const auto got = merged.Sample();
    ASSERT_EQ(want.ok(), got.ok()) << "t=" << t;
    if (want.ok()) {
      EXPECT_EQ(want.value().index, got.value().index) << "t=" << t;
    }
  }
}

TEST(ParallelPipeline, HeavyHittersThreadedQueryAgreement) {
  const auto stream =
      stream::PlantedHeavyHitters(kN, 4, 2000, 40, false, 64);
  auto make = [] {
    heavy::CsHeavyHitters::Params params;
    params.n = kN;
    params.p = 1.0;
    params.phi = 0.2;
    params.strict_turnstile = true;
    params.seed = 65;
    return heavy::CsHeavyHitters(params);
  };
  auto solo = make();
  solo.UpdateBatch(stream.data(), stream.size());
  for (int t : {1, 4}) {
    auto merged = PipelineIngest<heavy::CsHeavyHitters>(
        make, stream, PipelineOptions(4, t));
    EXPECT_EQ(solo.Query(), merged.Query()) << "t=" << t;
  }
}

TEST(ParallelPipeline, DestructorDrainsWithoutFlush) {
  // Sealed-but-unapplied batches drain on destruction; staged partials do
  // not (the documented StreamDriver-style contract). With batch_size 1
  // nothing ever stays staged, so all updates land.
  auto make = [] { return sketch::CountSketch(5, 16, 66); };
  sketch::CountSketch solo = make();
  std::vector<sketch::CountSketch> replicas{make(), make()};
  const UpdateStream tiny = {{1, 2}, {3, 4}, {5, 6}};
  solo.UpdateBatch(tiny.data(), tiny.size());
  {
    ParallelPipeline pipeline(
        PipelineOptions(2, 2, ParallelPipeline::Partition::kByIndex,
                        /*batch_size=*/1, /*queue_capacity=*/1));
    pipeline.Add("cs", {&replicas[0], &replicas[1]});
    for (const auto& u : tiny) pipeline.Push(u);
  }  // destructor joins workers after draining the rings
  replicas[0].Merge(replicas[1]);
  EXPECT_TRUE(StateOf(replicas[0]) == StateOf(solo));
}

}  // namespace
}  // namespace lps
