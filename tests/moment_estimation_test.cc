#include <gtest/gtest.h>

#include <cmath>

#include "src/apps/moment_estimation.h"
#include "src/stream/exact_vector.h"
#include "src/stream/generators.h"

namespace lps::apps {
namespace {

class MomentP : public ::testing::TestWithParam<double> {};

TEST_P(MomentP, EstimatesFpWithinConstantFactor) {
  const double p = GetParam();
  const uint64_t n = 256;
  const auto stream = stream::ZipfianVector(n, 0.8, 50, true, 1);
  stream::ExactVector x(n);
  x.Apply(stream);
  const double truth = x.NormPToP(p);

  MomentEstimator est({n, p, 48, 1.9, 7});
  for (const auto& u : stream) est.Update(u.index, u.delta);
  auto r = est.Estimate();
  ASSERT_TRUE(r.ok());
  // Sample-and-reweight with ~48 samples: constant-factor accuracy is the
  // claim (the estimator is unbiased; variance shrinks with samples).
  EXPECT_GT(r.value(), truth / 5) << "p = " << p;
  EXPECT_LT(r.value(), truth * 5) << "p = " << p;
}

INSTANTIATE_TEST_SUITE_P(Ps, MomentP, ::testing::Values(2.5, 3.0, 4.0));

TEST(MomentEstimator, ZeroVectorFails) {
  MomentEstimator est({128, 3.0, 8, 1.9, 2});
  EXPECT_FALSE(est.Estimate().ok());
}

TEST(MomentEstimator, SingleCoordinateWithinNormNoise) {
  // x = c * e_i: F_p = c^p exactly; every sample returns the coordinate,
  // so the only error is the q-norm estimate raised to the q-th power
  // (a ±15% median error becomes ~±30% after ^1.9).
  const uint64_t n = 128;
  MomentEstimator est({n, 3.0, 24, 1.9, 3});
  est.Update(42, 10);
  auto r = est.Estimate();
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.value(), 1000.0 / 2.5);
  EXPECT_LT(r.value(), 1000.0 * 2.5);
}

}  // namespace
}  // namespace lps::apps
