// Exact-equivalence tests for the candidate-driven query engine: the
// dyadic-candidate paths behind LpSamplerRound::Recover,
// CsHeavyHitters::Query, and CmHeavyHitters::Query must return the same
// results as the retained full-universe reference oracles
// (CountSketch::EstimateAll / TopM(n, m), RecoverReference, QueryOracle)
// — across strict and general streams, after Merge, after a
// Serialize/Deserialize round trip, and on degenerate inputs. All inputs
// are seeded, so every assertion here is deterministic.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/core/lp_sampler.h"
#include "src/heavy/heavy_hitters.h"
#include "src/sketch/count_sketch.h"
#include "src/sketch/dyadic.h"
#include "src/stream/generators.h"
#include "src/stream/update.h"
#include "src/util/serialize.h"

namespace lps {
namespace {

using stream::UpdateStream;

UpdateStream StrictStream(uint64_t n, uint64_t seed) {
  UpdateStream stream = stream::PlantedHeavyHitters(n, 3, 400, 120, false,
                                                    seed);
  return stream;
}

UpdateStream GeneralStream(uint64_t n, uint64_t seed) {
  return stream::PlantedHeavyHitters(n, 3, 400, 120, true, seed);
}

// ---------------------------------------------------------------------------
// CountSketch::TopM(candidates, m) vs the TopM(n, m) oracle.

TEST(CandidateTopM, FullUniverseCandidatesMatchOracleExactly) {
  const uint64_t n = 512;
  for (uint64_t seed : {1u, 2u, 3u}) {
    for (const auto& stream :
         {StrictStream(n, seed), GeneralStream(n, 10 + seed)}) {
      sketch::CountSketch cs(9, 48, 100 + seed);
      cs.UpdateBatch(stream.data(), stream.size());
      std::vector<uint64_t> all(n);
      for (uint64_t i = 0; i < n; ++i) all[i] = i;
      for (uint64_t m : {1u, 4u, 16u}) {
        const auto oracle = cs.TopM(n, m);
        const auto candidate = cs.TopM(all, m);
        ASSERT_EQ(oracle.size(), candidate.size());
        for (size_t r = 0; r < oracle.size(); ++r) {
          EXPECT_EQ(oracle[r].first, candidate[r].first) << "rank " << r;
          EXPECT_DOUBLE_EQ(oracle[r].second, candidate[r].second);
        }
      }
    }
  }
}

TEST(CandidateTopM, SupersetCandidatesAndDuplicatesAreHarmless) {
  const uint64_t n = 256;
  sketch::CountSketch cs(9, 48, 7);
  const auto stream = StrictStream(n, 4);
  cs.UpdateBatch(stream.data(), stream.size());
  const auto oracle = cs.TopM(n, 4);
  // Candidates: the true top 4 plus noise coordinates, with duplicates.
  std::vector<uint64_t> candidates;
  for (const auto& [i, est] : oracle) candidates.push_back(i);
  for (uint64_t i = 0; i < 32; ++i) candidates.push_back(i);
  for (const auto& [i, est] : oracle) candidates.push_back(i);  // dups
  const auto got = cs.TopM(candidates, 4);
  ASSERT_EQ(got.size(), oracle.size());
  for (size_t r = 0; r < oracle.size(); ++r) {
    EXPECT_EQ(got[r].first, oracle[r].first);
    EXPECT_DOUBLE_EQ(got[r].second, oracle[r].second);
  }
}

TEST(CandidateTopM, DegenerateUniverses) {
  // n <= m: every coordinate is returned, in oracle order.
  sketch::CountSketch cs(5, 12, 9);
  cs.Update(2, 10.0);
  cs.Update(0, -3.0);
  std::vector<uint64_t> all = {0, 1, 2, 3};
  const auto oracle = cs.TopM(4, 16);
  const auto candidate = cs.TopM(all, 16);
  ASSERT_EQ(oracle.size(), candidate.size());
  for (size_t r = 0; r < oracle.size(); ++r) {
    EXPECT_EQ(oracle[r].first, candidate[r].first);
    EXPECT_DOUBLE_EQ(oracle[r].second, candidate[r].second);
  }
  // Empty candidate list: empty result, no crash.
  EXPECT_TRUE(cs.TopM(std::vector<uint64_t>{}, 4).empty());
}

// ---------------------------------------------------------------------------
// LpSamplerRound::Recover vs RecoverReference.

void ExpectSameRecovery(const core::LpSamplerRound& round, double r,
                        const char* what) {
  const auto fast = round.Recover(r);
  const auto oracle = round.RecoverReference(r);
  ASSERT_EQ(fast.ok(), oracle.ok()) << what;
  if (fast.ok()) {
    EXPECT_EQ(fast.value().index, oracle.value().index) << what;
    EXPECT_DOUBLE_EQ(fast.value().estimate, oracle.value().estimate) << what;
  }
  // A succeeding round never aborts on the tail test.
  if (oracle.ok()) {
    EXPECT_FALSE(round.WouldAbortOnTail(r)) << what;
  }
}

TEST(LpRecoverEquivalence, StrictAndGeneralStreams) {
  const uint64_t n = 1024;
  for (double p : {0.5, 1.0, 1.5}) {
    for (uint64_t seed = 0; seed < 6; ++seed) {
      core::LpSamplerParams params;
      params.n = n;
      params.p = p;
      params.eps = 0.25;
      params.seed = 3000 + seed;
      params.repetitions = 1;
      params = core::LpSampler::Resolve(params);
      core::LpSamplerRound round(params, 0);
      const auto stream = (seed % 2 == 0) ? StrictStream(n, 40 + seed)
                                          : GeneralStream(n, 60 + seed);
      std::vector<stream::ScaledUpdate> scaled(stream.size());
      for (size_t t = 0; t < stream.size(); ++t) {
        scaled[t] = {stream[t].index, static_cast<double>(stream[t].delta)};
      }
      round.UpdateBatch(scaled.data(), scaled.size());
      // A plausible norm estimate r: within [||x||_p, 2 ||x||_p].
      double norm_p = 0;
      {
        std::vector<double> x(n, 0);
        for (const auto& u : stream) {
          x[u.index] += static_cast<double>(u.delta);
        }
        for (double v : x) norm_p += std::pow(std::abs(v), p);
        norm_p = std::pow(norm_p, 1 / p);
      }
      ExpectSameRecovery(round, 1.3 * norm_p, "stream recovery");
    }
  }
}

TEST(LpRecoverEquivalence, SingleCoordinateAndZeroVector) {
  core::LpSamplerParams params;
  params.n = 4096;
  params.p = 1.0;
  params.eps = 0.25;
  params.seed = 71;
  params.repetitions = 1;
  params = core::LpSampler::Resolve(params);

  core::LpSamplerRound zero(params, 0);
  ExpectSameRecovery(zero, 1.0, "zero vector");

  // Single-coordinate vector: every round agrees with the oracle, and the
  // rounds that do succeed (per-round success is only Theta(eps)) must
  // return the planted coordinate.
  int successes = 0;
  for (uint64_t seed = 0; seed < 12; ++seed) {
    auto p = params;
    p.seed = 400 + seed;
    p = core::LpSampler::Resolve(p);
    core::LpSamplerRound single(p, 0);
    single.Update(1234, 42.0);
    ExpectSameRecovery(single, 42.0, "single coordinate");
    const auto res = single.Recover(42.0);
    if (res.ok()) {
      ++successes;
      EXPECT_EQ(res.value().index, 1234u);
    }
  }
  EXPECT_GE(successes, 1);
}

TEST(LpRecoverEquivalence, TinyUniverseSmallerThanM) {
  core::LpSamplerParams params;
  params.n = 4;  // n < m: the beam covers the whole universe
  params.p = 1.0;
  params.eps = 0.25;
  params.seed = 77;
  params.repetitions = 1;
  params = core::LpSampler::Resolve(params);
  core::LpSamplerRound round(params, 0);
  round.Update(3, 9.0);
  round.Update(1, -2.0);
  ExpectSameRecovery(round, 11.0, "n < m");
}

TEST(LpRecoverEquivalence, PostMergeAndPostDeserialize) {
  const uint64_t n = 2048;
  core::LpSamplerParams params;
  params.n = n;
  params.p = 1.0;
  params.eps = 0.25;
  params.seed = 91;
  params.repetitions = 4;
  const auto stream = GeneralStream(n, 17);

  // Two shard replicas over a split stream, merged.
  core::LpSampler a(params), b(params);
  const size_t half = stream.size() / 2;
  a.UpdateBatch(stream.data(), half);
  b.UpdateBatch(stream.data() + half, stream.size() - half);
  a.Merge(b);
  const double r = a.NormEstimate();
  for (int v = 0; v < a.repetitions(); ++v) {
    ExpectSameRecovery(a.round(v), r, "post-merge round");
  }

  // Serialize the merged state and restore into a fresh instance.
  BitWriter w;
  a.Serialize(&w);
  core::LpSamplerParams dummy;
  dummy.n = 1;
  dummy.repetitions = 1;
  core::LpSampler restored(dummy);
  BitReader reader(w);
  restored.Deserialize(&reader);
  for (int v = 0; v < restored.repetitions(); ++v) {
    ExpectSameRecovery(restored.round(v), r, "post-deserialize round");
  }
  const auto sa = a.Sample();
  const auto sb = restored.Sample();
  ASSERT_EQ(sa.ok(), sb.ok());
  if (sa.ok()) {
    EXPECT_EQ(sa.value().index, sb.value().index);
    EXPECT_DOUBLE_EQ(sa.value().estimate, sb.value().estimate);
  }
}

// ---------------------------------------------------------------------------
// CsHeavyHitters::Query vs QueryOracle.

void ExpectSameHeavySet(const std::vector<uint64_t>& fast,
                        const std::vector<uint64_t>& oracle,
                        const char* what) {
  EXPECT_EQ(fast, oracle) << what;
}

TEST(CsHeavyQueryEquivalence, StrictAndGeneralStreams) {
  const uint64_t n = 2048;
  for (double p : {0.5, 1.0, 2.0}) {
    for (uint64_t seed = 0; seed < 4; ++seed) {
      heavy::CsHeavyHitters::Params params;
      params.n = n;
      params.p = p;
      params.phi = 0.2;
      params.seed = 500 + seed;
      params.strict_turnstile = (p == 1.0 && seed % 2 == 0);
      if (!params.strict_turnstile && p != 2.0) params.norm_rows = 400;
      heavy::CsHeavyHitters hh(params);
      const auto stream = params.strict_turnstile
                              ? StrictStream(n, 80 + seed)
                              : GeneralStream(n, 90 + seed);
      hh.UpdateBatch(stream.data(), stream.size());
      ExpectSameHeavySet(hh.Query(), hh.QueryOracle(), "cs heavy stream");
    }
  }
}

TEST(CsHeavyQueryEquivalence, ZeroVectorAndDegenerates) {
  heavy::CsHeavyHitters::Params params;
  params.n = 256;
  params.p = 1.0;
  params.phi = 0.2;
  params.strict_turnstile = true;
  params.seed = 13;
  heavy::CsHeavyHitters zero(params);
  EXPECT_TRUE(zero.Query().empty());
  EXPECT_TRUE(zero.QueryOracle().empty());

  heavy::CsHeavyHitters single(params);
  single.Update(200, 50.0);
  ExpectSameHeavySet(single.Query(), single.QueryOracle(), "single coord");
  EXPECT_EQ(single.Query(), std::vector<uint64_t>{200});

  // Tiny universe, smaller than the count-sketch width.
  heavy::CsHeavyHitters::Params tiny = params;
  tiny.n = 3;
  heavy::CsHeavyHitters hh(tiny);
  hh.Update(0, 10.0);
  hh.Update(2, 1.0);
  ExpectSameHeavySet(hh.Query(), hh.QueryOracle(), "tiny universe");
}

TEST(CsHeavyQueryEquivalence, PostMergeAndPostDeserialize) {
  const uint64_t n = 1024;
  heavy::CsHeavyHitters::Params params;
  params.n = n;
  params.p = 1.0;
  params.phi = 0.15;
  params.strict_turnstile = true;
  params.seed = 31;
  const auto stream = StrictStream(n, 23);
  heavy::CsHeavyHitters a(params), b(params);
  const size_t half = stream.size() / 2;
  a.UpdateBatch(stream.data(), half);
  b.UpdateBatch(stream.data() + half, stream.size() - half);
  a.Merge(b);
  ExpectSameHeavySet(a.Query(), a.QueryOracle(), "post-merge");

  BitWriter w;
  a.Serialize(&w);
  heavy::CsHeavyHitters::Params dummy;
  dummy.n = 1;
  heavy::CsHeavyHitters restored(dummy);
  BitReader reader(w);
  restored.Deserialize(&reader);
  ExpectSameHeavySet(restored.Query(), a.QueryOracle(), "post-deserialize");
}

// ---------------------------------------------------------------------------
// CmHeavyHitters::Query vs QueryOracle (strict turnstile).

TEST(CmHeavyQueryEquivalence, MinAndMedianVariants) {
  const uint64_t n = 2048;
  for (bool use_median : {false, true}) {
    for (uint64_t seed = 0; seed < 4; ++seed) {
      heavy::CmHeavyHitters hh({n, 0.15, 0, 600 + seed, use_median});
      const auto stream = StrictStream(n, 70 + seed);
      hh.UpdateBatch(stream.data(), stream.size());
      ExpectSameHeavySet(hh.Query(), hh.QueryOracle(),
                         use_median ? "median variant" : "min variant");
    }
  }
}

TEST(CmHeavyQueryEquivalence, ZeroVectorAndRoundTrip) {
  heavy::CmHeavyHitters zero({512, 0.2, 0, 5, false});
  EXPECT_TRUE(zero.Query().empty());
  EXPECT_TRUE(zero.QueryOracle().empty());

  heavy::CmHeavyHitters hh({512, 0.2, 0, 6, false});
  const auto stream = StrictStream(512, 44);
  hh.UpdateBatch(stream.data(), stream.size());
  BitWriter w;
  hh.Serialize(&w);
  heavy::CmHeavyHitters restored({1, 0.5, 0, 0, false});
  BitReader reader(w);
  restored.Deserialize(&reader);
  ExpectSameHeavySet(restored.Query(), hh.QueryOracle(), "cm round trip");
}

}  // namespace
}  // namespace lps
