// The multi-tenant sketch server, over real loopback sockets.
//
// Every test starts a Server on an ephemeral 127.0.0.1 port and talks
// to it through the production Client — the same codec lps_serve and
// lps_bench_client use, so the protocol is tested end to end:
//
//   * request/response cycle and per-tenant isolation (64 tenants
//     ingesting and querying concurrently, each answer reflecting only
//     its own stream);
//   * windowed queries bit-identical to a single-process WindowManager
//     for exact-arithmetic kinds, including through a sharded
//     per-tenant pipeline (epoch-aligned checkpoints);
//   * snapshot -> daemon restart -> restore equivalence, byte-for-byte
//     on the re-snapshotted state;
//   * malformed-frame containment: oversized length prefix, truncated
//     payload, unknown opcode — each answered or dropped without taking
//     the daemon down for anyone else;
//   * malformed-BODY containment: well-formed frames whose bodies lie
//     (string lengths, update counts, state bit counts, a bit count
//     that wraps the word-count arithmetic) or carry hostile VALUES
//     (out-of-range spec parameters, out-of-universe indices, NUL-
//     aliased tenant names) — every one an error response, never an
//     abort;
//   * a client that stops reading its replies and then dies must not
//     wedge the writer/reader pair or the accept loop.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/kernels/kernels.h"
#include "src/lps.h"
#include "src/server/client.h"
#include "src/server/server.h"

namespace lps::server {
namespace {

constexpr uint64_t kN = 1024;

Client MustConnect(const Server& server) {
  auto client = Client::Connect("127.0.0.1", server.port());
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return std::move(client.value());
}

std::unique_ptr<Server> MustStart() {
  Server::Options options;
  options.port = 0;
  auto server = std::make_unique<Server>(options);
  const Status started = server->Start();
  EXPECT_TRUE(started.ok()) << started.ToString();
  return server;
}

/// A deterministic per-tenant stream with a planted heavy coordinate
/// (the tenant id), so each tenant's correct answer identifies it.
std::vector<stream::Update> TenantStream(uint64_t tenant, size_t count) {
  std::vector<stream::Update> updates;
  updates.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    uint64_t h = (tenant + 1) * 0x9E3779B97F4A7C15ull + i;
    h ^= h >> 31;
    h *= 0xFF51AFD7ED558CCDull;
    h ^= h >> 33;
    updates.push_back(
        {i % 3 == 0 ? tenant % kN : h % kN, int64_t(1 + i % 2)});
  }
  return updates;
}

SketchConfig HeavyConfig(uint64_t seed) {
  SketchConfig config;
  config.spec.kind = SketchKind::kCsHeavyHitters;
  config.spec.n = kN;
  config.spec.p = 1.0;
  config.spec.phi = 0.05;
  config.spec.seed = seed;
  return config;
}

TEST(ServerTest, CreateIngestQueryCycle) {
  auto server = MustStart();
  Client client = MustConnect(*server);

  const SketchConfig config = HeavyConfig(17);
  ASSERT_TRUE(client.Create("acme", "clicks", config).ok());

  const auto updates = TenantStream(5, 3000);
  auto ingested = client.Ingest("acme", "clicks", updates);
  ASSERT_TRUE(ingested.ok()) << ingested.status().ToString();
  EXPECT_EQ(*ingested, updates.size());

  auto result = client.Query("acme", "clicks");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->type, QueryResult::Type::kHeavyHitters);
  EXPECT_NE(std::find(result->items.begin(), result->items.end(), 5ull),
            result->items.end())
      << result->ToText();

  // The server's answer equals a local sketch fed the same stream —
  // same spec, same updates, same unified QueryResult.
  auto local = MakeSketch(config.spec);
  local->UpdateBatch(updates.data(), updates.size());
  EXPECT_EQ(*result, lps::Query(*local));

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->tenants, 1u);
  EXPECT_EQ(stats->updates, updates.size());
  // The STATS opcode reports which SIMD kernel backend the server
  // dispatched (appended wire field — round-trips through the frame).
  EXPECT_EQ(stats->kernel_backend, lps::kernels::ActiveBackendName());
  server->Stop();
}

TEST(ServerTest, RegistryErrorsAreResponsesNotDisconnects) {
  auto server = MustStart();
  Client client = MustConnect(*server);
  ASSERT_TRUE(client.Create("a", "k", HeavyConfig(1)).ok());
  EXPECT_FALSE(client.Create("a", "k", HeavyConfig(1)).ok());  // duplicate
  EXPECT_FALSE(client.Query("a", "missing").ok());
  EXPECT_FALSE(client.Drop("ghost", "k").ok());
  EXPECT_FALSE(client.Window("a", "k", 10, false).ok());  // no windowing
  // The connection survived all four errors.
  EXPECT_TRUE(client.Query("a", "k").ok());
  server->Stop();
}

TEST(ServerTest, SixtyFourTenantsStayIsolatedUnderConcurrency) {
  auto server = MustStart();
  constexpr int kTenants = 64;
  std::vector<std::string> failures(kTenants);
  std::vector<std::thread> threads;
  threads.reserve(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    threads.emplace_back([&, t] {
      auto connected = Client::Connect("127.0.0.1", server->port());
      if (!connected.ok()) {
        failures[t] = connected.status().ToString();
        return;
      }
      Client client = std::move(connected.value());
      const std::string tenant = "tenant" + std::to_string(t);
      if (!client.Create(tenant, "s", HeavyConfig(100 + uint64_t(t))).ok()) {
        failures[t] = "create failed";
        return;
      }
      const auto updates = TenantStream(uint64_t(t), 1200);
      // Interleave ingest and query so queries run against tenants
      // mid-stream elsewhere on the server.
      for (int round = 0; round < 3; ++round) {
        const size_t third = updates.size() / 3;
        std::vector<stream::Update> slice(
            updates.begin() + round * third,
            updates.begin() + (round + 1) * third);
        if (!client.Ingest(tenant, "s", slice).ok()) {
          failures[t] = "ingest failed";
          return;
        }
        auto result = client.Query(tenant, "s");
        if (!result.ok()) {
          failures[t] = "query failed";
          return;
        }
      }
      auto result = client.Query(tenant, "s");
      if (!result.ok() ||
          result->type != QueryResult::Type::kHeavyHitters) {
        failures[t] = "final query failed";
        return;
      }
      // The tenant's own planted heavy coordinate — and nobody else's
      // stream bleeding in.
      auto local = MakeSketch(HeavyConfig(100 + uint64_t(t)).spec);
      local->UpdateBatch(updates.data(), updates.size());
      if (*result != lps::Query(*local)) {
        failures[t] = "answer differs from isolated local sketch: " +
                      result->ToText();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int t = 0; t < kTenants; ++t) {
    EXPECT_EQ(failures[t], "") << "tenant " << t;
  }
  auto client = MustConnect(*server);
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->tenants, uint64_t(kTenants));
  EXPECT_EQ(stats->updates, uint64_t(kTenants) * 1200);
  server->Stop();
}

// The server-side windowed query must be bit-identical to a solo
// WindowManager over the same stream, for an exact-arithmetic kind —
// both inline and through a sharded per-tenant pipeline (checkpoints
// sealed at epoch boundaries). CmHeavyHitters is all-integer arithmetic
// (count-min + dyadic tree), so shard merges reassociate nothing —
// unlike default CsHeavyHitters, whose embedded FP norm estimator is
// only merge-exact in strict-turnstile mode.
class WindowBitIdentityTest : public ::testing::TestWithParam<int> {};

TEST_P(WindowBitIdentityTest, MatchesSoloWindowManager) {
  const int shards = GetParam();
  auto server = MustStart();
  Client client = MustConnect(*server);

  SketchConfig config;
  config.spec.kind = SketchKind::kCmHeavyHitters;
  config.spec.n = kN;
  config.spec.phi = 0.05;
  config.spec.seed = 23;
  config.window_checkpoint = 256;
  config.shards = shards;
  config.threads = shards > 1 ? 2 : 0;
  ASSERT_TRUE(client.Create("w", "s", config).ok());

  const auto updates = TenantStream(9, 3000);
  // Odd-sized ingest batches: checkpoint positions must not depend on
  // request framing.
  size_t sent = 0;
  const size_t kBatches[] = {700, 123, 989, 1111, 77};
  for (size_t batch : kBatches) {
    std::vector<stream::Update> slice(updates.begin() + sent,
                                      updates.begin() + sent + batch);
    ASSERT_TRUE(client.Ingest("w", "s", slice).ok());
    sent += batch;
  }
  ASSERT_EQ(sent, updates.size());

  // Solo reference: same spec, same stream, same checkpoint interval.
  auto solo = MakeSketch(config.spec);
  stream::WindowManager::Options wm_options;
  wm_options.checkpoint_interval = config.window_checkpoint;
  stream::WindowManager solo_wm(solo.get(), wm_options);
  solo_wm.PushBatch(updates.data(), updates.size());

  for (uint64_t w : {uint64_t(256), uint64_t(512), uint64_t(2048)}) {
    auto served = client.Window("w", "s", w, /*want_state=*/true);
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    auto local = solo_wm.WindowSketch(w);
    EXPECT_EQ(served->start, local.start) << "w=" << w;
    EXPECT_EQ(served->length, local.length) << "w=" << w;
    BitWriter local_state;
    local.sketch->Serialize(&local_state);
    ASSERT_TRUE(served->has_state);
    EXPECT_EQ(served->state_bits, local_state.bit_count()) << "w=" << w;
    EXPECT_EQ(served->state_words, local_state.words()) << "w=" << w;
    EXPECT_EQ(served->result, lps::Query(*local.sketch)) << "w=" << w;
  }
  server->Stop();
}

INSTANTIATE_TEST_SUITE_P(InlineAndSharded, WindowBitIdentityTest,
                         ::testing::Values(1, 4));

TEST(ServerTest, SnapshotRestartRestoreRoundTrips) {
  SnapshotBlob blob;
  QueryResult before;
  {
    auto server = MustStart();
    Client client = MustConnect(*server);
    SketchConfig config = HeavyConfig(31);
    config.window_checkpoint = 512;
    ASSERT_TRUE(client.Create("t", "s", config).ok());
    const auto updates = TenantStream(3, 2048);
    ASSERT_TRUE(client.Ingest("t", "s", updates).ok());
    auto result = client.Query("t", "s");
    ASSERT_TRUE(result.ok());
    before = *result;
    auto snapshot = client.Snapshot("t", "s");
    ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
    blob = *snapshot;
    server->Stop();  // daemon generation 1 gone
  }

  auto server = MustStart();
  Client client = MustConnect(*server);
  ASSERT_TRUE(client.Restore("t", "s", blob).ok());

  // Same answer across the restart...
  auto after = client.Query("t", "s");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, before);

  // ...byte-identical re-snapshotted state...
  auto again = client.Snapshot("t", "s");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->state_bits, blob.state_bits);
  EXPECT_EQ(again->state_words, blob.state_words);
  EXPECT_EQ(again->updates_seen, blob.updates_seen);

  // ...and the restored stream keeps ingesting and windowing (the
  // restore point is the new window origin).
  const auto more = TenantStream(4, 1024);
  ASSERT_TRUE(client.Ingest("t", "s", more).ok());
  auto window = client.Window("t", "s", 512, false);
  ASSERT_TRUE(window.ok()) << window.status().ToString();
  EXPECT_EQ(window->start + window->length, more.size());

  // A corrupt blob is rejected without killing the daemon.
  SnapshotBlob corrupt = blob;
  corrupt.state_words[0] ^= 0xFFFF;  // break the magic
  EXPECT_FALSE(client.Restore("t", "other", corrupt).ok());
  EXPECT_TRUE(client.Query("t", "s").ok());
  server->Stop();
}

TEST(ServerTest, MalformedFramesDoNotKillTheDaemon) {
  auto server = MustStart();
  Client healthy = MustConnect(*server);
  ASSERT_TRUE(healthy.Create("a", "k", HeavyConfig(1)).ok());

  {
    // Oversized length prefix: error frame, then the connection closes.
    Client attacker = MustConnect(*server);
    const std::vector<uint8_t> oversized = {0xFF, 0xFF, 0xFF, 0x7F};
    ASSERT_TRUE(attacker.SendRaw(oversized).ok());
    auto reply = attacker.ReadReply();
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->first, kStatusError);
    EXPECT_FALSE(attacker.ReadReply().ok());  // closed after answering
  }
  {
    // Truncated payload: declared 64 bytes, delivered 3, then EOF.
    Client attacker = MustConnect(*server);
    const std::vector<uint8_t> truncated = {64, 0, 0, 0, 1, 2, 3};
    ASSERT_TRUE(attacker.SendRaw(truncated).ok());
    ::shutdown(attacker.fd(), SHUT_WR);
    auto reply = attacker.ReadReply();
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->first, kStatusError);
  }
  {
    // Unknown opcode in a well-formed frame: error response, and the
    // SAME connection keeps working.
    Client attacker = MustConnect(*server);
    BitWriter empty;
    ASSERT_TRUE(attacker.SendRaw(EncodeFrame(0x7E, empty)).ok());
    auto reply = attacker.ReadReply();
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->first, kStatusError);
    EXPECT_TRUE(attacker.Stats().ok());
  }

  // The daemon served everyone else throughout.
  EXPECT_TRUE(healthy.Query("a", "k").ok());
  Client fresh = MustConnect(*server);
  EXPECT_TRUE(fresh.Stats().ok());
  server->Stop();
}

// A well-formed frame whose BODY lies about its interior lengths gets a
// "malformed request body" error on a connection that keeps serving —
// the frame boundary was sound, so the stream is still synchronized.
TEST(ServerTest, MalformedBodiesAreErrorsNotAborts) {
  auto server = MustStart();
  Client healthy = MustConnect(*server);
  ASSERT_TRUE(healthy.Create("a", "k", HeavyConfig(1)).ok());

  Client attacker = MustConnect(*server);
  const auto expect_error_then_alive = [&](const BitWriter& body,
                                           Opcode opcode, const char* what) {
    ASSERT_TRUE(attacker.SendRaw(EncodeFrame(uint8_t(opcode), body)).ok())
        << what;
    auto reply = attacker.ReadReply();
    ASSERT_TRUE(reply.ok()) << what;
    EXPECT_EQ(reply->first, kStatusError) << what;
    EXPECT_TRUE(attacker.Stats().ok()) << what;  // SAME connection serves on
  };

  {
    // CREATE whose tenant string claims 4096 bytes the body never ships.
    BitWriter body;
    body.WriteBits(4096, 32);
    expect_error_then_alive(body, Opcode::kCreate, "lying string length");
  }
  {
    // INGEST claiming ~2^60 updates with an empty tail.
    BitWriter body;
    WriteString(&body, "a");
    WriteString(&body, "k");
    body.WriteU64(1ull << 60);
    expect_error_then_alive(body, Opcode::kIngest, "lying update count");
  }
  {
    // WINDOW missing its w / want_state tail.
    BitWriter body;
    WriteString(&body, "a");
    WriteString(&body, "k");
    expect_error_then_alive(body, Opcode::kWindow, "truncated body");
  }
  {
    // RESTORE whose snapshot state claims 2^40 bits it does not carry.
    BitWriter body;
    WriteString(&body, "a");
    WriteString(&body, "other");
    SerializeConfig(HeavyConfig(1), &body);
    body.WriteU64(0);           // updates_seen
    body.WriteU64(1ull << 40);  // state bit count, nothing behind it
    expect_error_then_alive(body, Opcode::kRestore, "lying state size");
  }

  // The daemon served everyone else throughout.
  EXPECT_TRUE(healthy.Query("a", "k").ok());
  server->Stop();
}

// A frame whose declared body bit count sits near 2^64 must not wrap
// the ceil-to-words arithmetic into a "valid" tiny frame (that abort
// lived in DecodeFramePayload): it is a framing violation, answered
// once before the connection closes.
TEST(ServerTest, HostileBitCountDoesNotKillTheDaemon) {
  auto server = MustStart();
  Client attacker = MustConnect(*server);
  std::vector<uint8_t> frame = {9, 0, 0, 0, uint8_t(Opcode::kStats)};
  for (int i = 0; i < 8; ++i) frame.push_back(0xFF);  // bit count 2^64 - 1
  ASSERT_TRUE(attacker.SendRaw(frame).ok());
  auto reply = attacker.ReadReply();
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->first, kStatusError);
  EXPECT_FALSE(attacker.ReadReply().ok());  // closed after answering

  Client fresh = MustConnect(*server);
  EXPECT_TRUE(fresh.Stats().ok());
  server->Stop();
}

// Wire strings are length-prefixed and may contain NUL, so the registry
// key must be unambiguous: ("a\0b", "c") and ("a", "b\0c") are two
// different streams, not aliases of each other.
TEST(ServerTest, NulBytesInNamesDoNotAliasTenants) {
  auto server = MustStart();
  Client client = MustConnect(*server);
  const std::string tenant_one("a\0b", 3);
  const std::string key_one("c");
  const std::string tenant_two("a");
  const std::string key_two("b\0c", 3);

  ASSERT_TRUE(client.Create(tenant_one, key_one, HeavyConfig(1)).ok());
  // Not a duplicate: a different (tenant, key) pair entirely.
  ASSERT_TRUE(client.Create(tenant_two, key_two, HeavyConfig(2)).ok());

  const auto updates = TenantStream(7, 512);
  ASSERT_TRUE(client.Ingest(tenant_one, key_one, updates).ok());
  // Dropping one must not reach through the alias into the other.
  ASSERT_TRUE(client.Drop(tenant_two, key_two).ok());
  auto result = client.Query(tenant_one, key_one);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto local = MakeSketch(HeavyConfig(1).spec);
  local->UpdateBatch(updates.data(), updates.size());
  EXPECT_EQ(*result, lps::Query(*local));
  server->Stop();
}

// Request VALUES that would trip a constructor or update precondition
// (LPS_CHECK aborts in-process) must come back as error responses.
TEST(ServerTest, OutOfRangeValuesAreErrorsNotAborts) {
  auto server = MustStart();
  Client client = MustConnect(*server);

  SketchConfig bad = HeavyConfig(1);
  bad.spec.kind = SketchKind::kLpSampler;
  bad.spec.p = 5.0;  // Lp sampler requires p in (0, 2)
  EXPECT_FALSE(client.Create("v", "p", bad).ok());

  bad = HeavyConfig(1);
  bad.spec.phi = 0.0;  // heavy hitters require phi in (0, 1)
  EXPECT_FALSE(client.Create("v", "phi", bad).ok());

  bad = HeavyConfig(1);
  bad.spec.delta = std::numeric_limits<double>::quiet_NaN();
  bad.spec.kind = SketchKind::kL0Sampler;
  EXPECT_FALSE(client.Create("v", "nan", bad).ok());

  bad = HeavyConfig(1);
  bad.spec.rows = 1u << 30;  // allocation bomb
  bad.spec.buckets = 1u << 30;
  EXPECT_FALSE(client.Create("v", "huge", bad).ok());

  // An out-of-universe index into a sampler kind: the sketch would
  // CHECK index < n, so the registry rejects the batch up front.
  SketchConfig sampler = HeavyConfig(3);
  sampler.spec.kind = SketchKind::kLpSampler;
  sampler.spec.p = 1.0;
  ASSERT_TRUE(client.Create("v", "s", sampler).ok());
  EXPECT_FALSE(client.Ingest("v", "s", {{1ull << 40, 1}}).ok());
  EXPECT_TRUE(client.Ingest("v", "s", {{kN - 1, 1}}).ok());  // in range

  EXPECT_TRUE(client.Stats().ok());  // daemon alive through all of it
  server->Stop();
}

// A client that stops reading its replies (filling the bounded outbox
// and the socket buffers) and then dies with a RST must not leave the
// reader blocked in Outbox::Push forever — the writer's failure path
// closes the outbox, the pair exits, and the accept loop keeps serving.
TEST(ServerTest, DeadSlowClientDoesNotWedgeTheServer) {
  Server::Options options;
  options.port = 0;
  options.outbox_capacity = 2;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());

  {
    Client setup = MustConnect(server);
    // A deliberately wide CountSketch so each SNAPSHOT reply is ~2 MiB
    // and a few pipelined replies overrun any default socket buffer.
    SketchConfig big;
    big.spec.kind = SketchKind::kCountSketch;
    big.spec.rows = 8;
    big.spec.buckets = 1 << 15;
    ASSERT_TRUE(setup.Create("t", "big", big).ok());
  }
  {
    Client slow = MustConnect(server);
    BitWriter body;
    WriteString(&body, "t");
    WriteString(&body, "big");
    const std::vector<uint8_t> request =
        EncodeFrame(uint8_t(Opcode::kSnapshot), body);
    // Pipeline far more replies than the outbox + socket buffers hold,
    // never reading any of them...
    for (int i = 0; i < 32; ++i) {
      if (!slow.SendRaw(request).ok()) break;  // buffers already full
    }
    // ...then die abruptly: linger(0) turns close() into a RST, which
    // is what makes the server's in-flight send() fail.
    const linger abort_on_close{1, 0};
    ::setsockopt(slow.fd(), SOL_SOCKET, SO_LINGER, &abort_on_close,
                 sizeof(abort_on_close));
  }

  // The accept loop (which also reaps finished connections) must still
  // serve newcomers, and Stop() must join everything without hanging.
  Client fresh = MustConnect(server);
  EXPECT_TRUE(fresh.Stats().ok());
  server.Stop();
}

TEST(ServerTest, StreamedIngestMatchesRpcIngestBitForBit) {
  auto server = MustStart();
  Client client = MustConnect(*server);
  ASSERT_TRUE(client.Create("rpc", "s", HeavyConfig(7)).ok());
  ASSERT_TRUE(client.Create("stream", "s", HeavyConfig(7)).ok());

  const std::vector<stream::Update> updates = TenantStream(3, 4096);
  constexpr size_t kBatch = 257;  // odd size: exercise the partial tail
  uint64_t total = 0;
  for (size_t at = 0; at < updates.size(); at += kBatch) {
    const size_t take = std::min(kBatch, updates.size() - at);
    const std::vector<stream::Update> batch(updates.begin() + at,
                                            updates.begin() + at + take);
    const auto seen = client.Ingest("rpc", "s", batch);
    ASSERT_TRUE(seen.ok()) << seen.status().ToString();
    // The whole run goes on the wire before the single sync below reads
    // anything back — that pipelining is the point of the opcode.
    ASSERT_TRUE(client.StreamIngest("stream", "s", batch).ok());
    total += take;
  }
  const auto ack = client.StreamSync();
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  EXPECT_EQ(ack->count, total);
  EXPECT_EQ(ack->updates_seen, total);

  const auto rpc_snap = client.Snapshot("rpc", "s");
  const auto stream_snap = client.Snapshot("stream", "s");
  ASSERT_TRUE(rpc_snap.ok() && stream_snap.ok());
  EXPECT_EQ(stream_snap->updates_seen, rpc_snap->updates_seen);
  EXPECT_EQ(stream_snap->state_bits, rpc_snap->state_bits);
  EXPECT_EQ(stream_snap->state_words, rpc_snap->state_words);
  server->Stop();
}

TEST(ServerTest, StreamErrorsDeferToTheSyncAndResetTheRun) {
  auto server = MustStart();
  Client client = MustConnect(*server);
  ASSERT_TRUE(client.Create("a", "s", HeavyConfig(1)).ok());

  // An entire run against a stream that doesn't exist: every frame is
  // swallowed silently, the one sync carries the first error.
  ASSERT_TRUE(client.StreamIngest("nobody", "s", TenantStream(0, 32)).ok());
  ASSERT_TRUE(client.StreamIngest("nobody", "s", TenantStream(0, 32)).ok());
  const auto missing = client.StreamSync();
  EXPECT_FALSE(missing.ok());

  // The first failure poisons the run: the valid prefix is applied, the
  // poisoning batch and everything after it are decoded but dropped.
  const std::vector<stream::Update> good = TenantStream(0, 64);
  const std::vector<stream::Update> hostile = {{kN + 5, 1}};
  ASSERT_TRUE(client.StreamIngest("a", "s", good).ok());
  ASSERT_TRUE(client.StreamIngest("a", "s", hostile).ok());
  ASSERT_TRUE(client.StreamIngest("a", "s", good).ok());
  const auto poisoned = client.StreamSync();
  EXPECT_FALSE(poisoned.ok());
  const auto snap = client.Snapshot("a", "s");
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->updates_seen, good.size());

  // The sync reset the run state, so the connection starts clean.
  ASSERT_TRUE(client.StreamIngest("a", "s", good).ok());
  const auto clean = client.StreamSync();
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_EQ(clean->count, good.size());
  EXPECT_EQ(clean->updates_seen, 2 * good.size());
  server->Stop();
}

TEST(ServerTest, MalformedStreamBodyIsDeferredNotFatal) {
  auto server = MustStart();
  Client client = MustConnect(*server);
  ASSERT_TRUE(client.Create("a", "s", HeavyConfig(1)).ok());

  // A well-framed INGEST_STREAM whose 64-bit body is garbage: like any
  // stream frame it gets NO reply — the decode failure is deferred to
  // the sync and the frame boundary stays sound.
  std::vector<uint8_t> frame = {17, 0, 0, 0,
                                uint8_t(Opcode::kIngestStream),
                                64, 0,  0, 0, 0, 0, 0, 0};
  for (int i = 0; i < 8; ++i) frame.push_back(0xFF);
  ASSERT_TRUE(client.SendRaw(frame).ok());
  const auto sync = client.StreamSync();
  EXPECT_FALSE(sync.ok());
  EXPECT_NE(sync.status().ToString().find("malformed"), std::string::npos)
      << sync.status().ToString();

  // Same connection, next run: clean.
  const std::vector<stream::Update> good = TenantStream(0, 48);
  ASSERT_TRUE(client.StreamIngest("a", "s", good).ok());
  const auto ack = client.StreamSync();
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  EXPECT_EQ(ack->count, good.size());
  server->Stop();
}

TEST(ServerTest, DropForgetsOnlyTheNamedStream) {
  auto server = MustStart();
  Client client = MustConnect(*server);
  ASSERT_TRUE(client.Create("a", "one", HeavyConfig(1)).ok());
  ASSERT_TRUE(client.Create("a", "two", HeavyConfig(2)).ok());
  ASSERT_TRUE(client.Create("b", "one", HeavyConfig(3)).ok());
  ASSERT_TRUE(client.Drop("a", "one").ok());
  EXPECT_FALSE(client.Query("a", "one").ok());
  EXPECT_TRUE(client.Query("a", "two").ok());
  EXPECT_TRUE(client.Query("b", "one").ok());
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->tenants, 2u);
  server->Stop();
}

}  // namespace
}  // namespace lps::server
