#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "src/core/l0_sampler.h"
#include "src/core/lp_sampler.h"
#include "src/heavy/heavy_hitters.h"
#include "src/kernels/kernels.h"
#include "src/norm/l0_norm.h"
#include "src/stream/exact_vector.h"
#include "src/stream/generators.h"
#include "src/stream/stream_driver.h"
#include "src/util/serialize.h"

namespace lps::stream {
namespace {

// Batch == per-update *bit*-identity for sketches embedding a StableSketch
// only holds on the scalar kernel backend: SIMD backends route a batch of
// one through their scalar tail (libm tan) but vectorize larger batches
// (polynomial sinpi + reassociated sums) — query-equivalent, not bit-equal.
// Tests asserting CounterWords equality on such stacks pin scalar.
class ScopedScalarKernels {
 public:
  ScopedScalarKernels() : saved_(lps::kernels::ActiveBackend()) {
    lps::kernels::ForceBackendForTesting(lps::kernels::Backend::kScalar);
  }
  ~ScopedScalarKernels() { lps::kernels::ForceBackendForTesting(saved_); }

 private:
  lps::kernels::Backend saved_;
};

TEST(ExactVector, ApplyAndNorms) {
  ExactVector x(8);
  x.Apply({0, 3});
  x.Apply({1, -4});
  x.Apply({0, 1});  // x = (4, -4, 0, ...)
  EXPECT_EQ(x[0], 4);
  EXPECT_EQ(x[1], -4);
  EXPECT_EQ(x.L0(), 2u);
  EXPECT_DOUBLE_EQ(x.NormP(1.0), 8.0);
  EXPECT_DOUBLE_EQ(x.NormP(2.0), std::sqrt(32.0));
  EXPECT_DOUBLE_EQ(x.NormPToP(0.5), 2 * std::sqrt(4.0));
  EXPECT_EQ(x.PositiveMass(), 4);
  EXPECT_EQ(x.NegativeMass(), 4);
  EXPECT_EQ(x.Total(), 0);
}

TEST(ExactVector, LpDistribution) {
  ExactVector x(4);
  x.Apply({0, 1});
  x.Apply({1, -2});
  x.Apply({2, 3});
  const auto d1 = x.LpDistribution(1.0);
  EXPECT_DOUBLE_EQ(d1[0], 1.0 / 6);
  EXPECT_DOUBLE_EQ(d1[1], 2.0 / 6);
  EXPECT_DOUBLE_EQ(d1[2], 3.0 / 6);
  EXPECT_DOUBLE_EQ(d1[3], 0.0);
  const auto d0 = x.LpDistribution(0.0);
  EXPECT_DOUBLE_EQ(d0[0], 1.0 / 3);
  EXPECT_DOUBLE_EQ(d0[3], 0.0);
  const auto d2 = x.LpDistribution(2.0);
  EXPECT_DOUBLE_EQ(d2[2], 9.0 / 14);
}

TEST(ExactVector, ErrM2DropsLargestEntries) {
  ExactVector x(6);
  x.Apply({0, 10});
  x.Apply({1, -5});
  x.Apply({2, 2});
  x.Apply({3, 1});
  EXPECT_DOUBLE_EQ(x.ErrM2(0), std::sqrt(100.0 + 25 + 4 + 1));
  EXPECT_DOUBLE_EQ(x.ErrM2(1), std::sqrt(25.0 + 4 + 1));
  EXPECT_DOUBLE_EQ(x.ErrM2(2), std::sqrt(4.0 + 1));
  EXPECT_DOUBLE_EQ(x.ErrM2(4), 0.0);
  EXPECT_DOUBLE_EQ(x.ErrM2(100), 0.0);
}

TEST(ExactVector, HeavyHitters) {
  ExactVector x(8);
  x.Apply({0, 100});
  x.Apply({1, -100});
  x.Apply({2, 1});
  const auto heavy = x.HeavyHitters(1.0, 0.4);
  EXPECT_EQ(heavy, (std::vector<uint64_t>{0, 1}));
}

TEST(Generators, UniformTurnstileShape) {
  const auto stream = UniformTurnstile(100, 5000, 10, 1);
  ASSERT_EQ(stream.size(), 5000u);
  for (const auto& u : stream) {
    EXPECT_LT(u.index, 100u);
    EXPECT_NE(u.delta, 0);
    EXPECT_LE(std::abs(u.delta), 10);
  }
}

TEST(Generators, ZipfianVectorIsZipfian) {
  const auto stream = ZipfianVector(64, 1.0, 1000, false, 2);
  ExactVector x(64);
  x.Apply(stream);
  std::vector<int64_t> magnitudes;
  for (uint64_t i = 0; i < 64; ++i) magnitudes.push_back(std::abs(x[i]));
  std::sort(magnitudes.begin(), magnitudes.end(), std::greater<>());
  EXPECT_EQ(magnitudes[0], 1000);
  EXPECT_NEAR(magnitudes[1], 500, 1);
  EXPECT_NEAR(magnitudes[3], 250, 1);
}

TEST(Generators, SignVectorExactlyK) {
  const auto stream = SignVector(256, 40, 3);
  ExactVector x(256);
  x.Apply(stream);
  EXPECT_EQ(x.L0(), 40u);
  for (uint64_t i = 0; i < 256; ++i) {
    EXPECT_LE(std::abs(x[i]), 1);
  }
}

TEST(Generators, SparseVectorExactlyK) {
  const auto stream = SparseVector(512, 25, 1000, 4);
  ExactVector x(512);
  x.Apply(stream);
  EXPECT_EQ(x.L0(), 25u);
}

TEST(Generators, InsertDeleteChurnLeavesSurvivors) {
  const auto stream = InsertDeleteChurn(1024, 400, 7, 5);
  ExactVector x(1024);
  x.Apply(stream);
  EXPECT_EQ(x.L0(), 7u);
  for (uint64_t i = 0; i < 1024; ++i) {
    EXPECT_TRUE(x[i] == 0 || x[i] == 1);
  }
}

TEST(Generators, PlantedHeavyHittersAreHeavy) {
  const auto stream = PlantedHeavyHitters(1024, 3, 500, 200, false, 6);
  ExactVector x(1024);
  x.Apply(stream);
  EXPECT_EQ(x.HeavyHitters(1.0, 0.2).size(), 3u);
  EXPECT_EQ(x.L0(), 203u);
}

TEST(Generators, DuplicateStreamPigeonhole) {
  const auto letters = DuplicateStream(100, 1, 7);
  EXPECT_EQ(letters.size(), 101u);
  std::map<uint64_t, int> counts;
  for (uint64_t l : letters) ++counts[l];
  int dups = 0;
  for (const auto& [letter, c] : counts) {
    if (c >= 2) ++dups;
  }
  EXPECT_GE(dups, 1);
}

TEST(Generators, DuplicateStreamZeroExtrasIsPermutation) {
  const auto letters = DuplicateStream(50, 0, 8);
  EXPECT_EQ(letters.size(), 50u);
  std::vector<uint64_t> sorted = letters;
  std::sort(sorted.begin(), sorted.end());
  for (uint64_t i = 0; i < 50; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Generators, ShortStreamWithDuplicatesCounts) {
  const uint64_t n = 200, s = 30, dups = 5;
  const auto letters = ShortStreamWithDuplicates(n, s, dups, 9);
  EXPECT_EQ(letters.size(), n - s);
  std::map<uint64_t, int> counts;
  for (uint64_t l : letters) ++counts[l];
  uint64_t twice = 0;
  for (const auto& [letter, c] : counts) {
    EXPECT_LE(c, 2);
    if (c == 2) ++twice;
  }
  EXPECT_EQ(twice, dups);
}

TEST(Generators, DuplicatesReductionVector) {
  // Theorem 3's reduction: x_i = occurrences - 1.
  const LetterStream letters = {3, 3, 5};
  const auto stream = DuplicatesReduction(8, letters);
  ExactVector x(8);
  x.Apply(stream);
  EXPECT_EQ(x[3], 1);   // appears twice
  EXPECT_EQ(x[5], 0);   // appears once
  EXPECT_EQ(x[0], -1);  // missing
  EXPECT_EQ(x.Total(), static_cast<int64_t>(letters.size()) - 8);
}

// ---- StreamDriver: chunking, Push/Flush, and end-to-end equivalence of
// ---- the batched ingestion path with per-update processing.

template <typename Sink>
std::vector<uint64_t> CounterWords(const Sink& sink) {
  BitWriter writer;
  sink.SerializeCounters(&writer);
  return writer.words();
}

TEST(StreamDriver, ChunksStreamIntoBatches) {
  StreamDriver driver(8);
  std::vector<size_t> seen_counts;
  UpdateStream seen;
  driver.AddSink("recorder", [&](const Update* updates, size_t count) {
    seen_counts.push_back(count);
    seen.insert(seen.end(), updates, updates + count);
  });
  UpdateStream stream;
  for (uint64_t t = 0; t < 27; ++t) {
    stream.push_back({t, static_cast<int64_t>(t + 1)});
  }
  EXPECT_EQ(driver.Drive(stream), 27u);
  EXPECT_EQ(seen_counts, (std::vector<size_t>{8, 8, 8, 3}));
  EXPECT_EQ(driver.updates_driven(), 27u);
  EXPECT_EQ(driver.batches_driven(), 4u);
  ASSERT_EQ(seen.size(), stream.size());
  for (size_t t = 0; t < stream.size(); ++t) {
    EXPECT_EQ(seen[t].index, stream[t].index);
    EXPECT_EQ(seen[t].delta, stream[t].delta);
  }
}

TEST(StreamDriver, EveryRegisteredSinkSeesTheWholeStream) {
  StreamDriver driver(4);
  size_t total_a = 0, total_b = 0;
  driver.AddSink("a", [&](const Update*, size_t c) { total_a += c; })
      .AddSink("b", [&](const Update*, size_t c) { total_b += c; });
  EXPECT_EQ(driver.sink_count(), 2u);
  EXPECT_EQ(driver.sink_name(0), "a");
  driver.Drive(UniformTurnstile(64, 100, 10, 5));
  EXPECT_EQ(total_a, 100u);
  EXPECT_EQ(total_b, 100u);
}

TEST(StreamDriver, EmptyStreamDrivesNothing) {
  StreamDriver driver;
  size_t calls = 0;
  driver.AddSink("counter", [&](const Update*, size_t) { ++calls; });
  EXPECT_EQ(driver.Drive(UpdateStream{}), 0u);
  EXPECT_EQ(calls, 0u);
  EXPECT_EQ(driver.batches_driven(), 0u);
}

TEST(StreamDriver, PushFlushMatchesDrive) {
  const auto stream = UniformTurnstile(128, 333, 50, 6);
  UpdateStream via_drive, via_push;
  StreamDriver a(16), b(16);
  a.AddSink("rec", [&](const Update* u, size_t c) {
    via_drive.insert(via_drive.end(), u, u + c);
  });
  b.AddSink("rec", [&](const Update* u, size_t c) {
    via_push.insert(via_push.end(), u, u + c);
  });
  a.Drive(stream);
  for (const auto& u : stream) b.Push(u);
  b.Flush();
  b.Flush();  // second flush is a no-op
  ASSERT_EQ(via_push.size(), via_drive.size());
  for (size_t t = 0; t < via_push.size(); ++t) {
    EXPECT_EQ(via_push[t].index, via_drive[t].index);
    EXPECT_EQ(via_push[t].delta, via_drive[t].delta);
  }
}

// The full sampler stack driven in batches must land in bit-identical
// state to per-update processing — strict-turnstile and general streams,
// driver batch sizes that exercise partial and single-element chunks.
TEST(StreamDriver, LpSamplerStateMatchesPerUpdatePath) {
  ScopedScalarKernels pin_scalar;  // LpSampler embeds an LpNormEstimator
  const auto general = UniformTurnstile(256, 1500, 100, 41);
  const auto strict = PlantedHeavyHitters(256, 4, 200, 100, false, 42);
  for (const auto& stream : {general, strict}) {
    for (size_t batch_size : {1u, 7u, 4096u}) {
      lps::core::LpSamplerParams params;
      params.n = 256;
      params.p = 1.0;
      params.eps = 0.3;
      params.repetitions = 3;
      params.seed = 1234;
      lps::core::LpSampler scalar(params), batched(params);
      for (const auto& u : stream) {
        scalar.Update(u.index, static_cast<double>(u.delta));
      }
      StreamDriver driver(batch_size);
      driver.Add("lp", &batched).Drive(stream);
      EXPECT_EQ(CounterWords(scalar), CounterWords(batched));
      const auto a = scalar.Sample();
      const auto b = batched.Sample();
      ASSERT_EQ(a.ok(), b.ok());
      if (a.ok()) {
        EXPECT_EQ(a.value().index, b.value().index);
        EXPECT_EQ(a.value().estimate, b.value().estimate);
      }
    }
  }
}

TEST(StreamDriver, L0SamplerStateMatchesPerUpdatePath) {
  const auto stream = InsertDeleteChurn(512, 200, 40, 43);
  lps::core::L0Sampler scalar({512, 0.2, 0, 77, false});
  lps::core::L0Sampler batched({512, 0.2, 0, 77, false});
  for (const auto& u : stream) scalar.Update(u.index, u.delta);
  StreamDriver driver(64);
  driver.Add("l0", &batched).Drive(stream);
  EXPECT_EQ(CounterWords(scalar), CounterWords(batched));
}

TEST(StreamDriver, HeavyHittersAndL0EstimatorMatchPerUpdatePath) {
  ScopedScalarKernels pin_scalar;  // CsHeavyHitters embeds an LpNormEstimator
  const auto stream = UniformTurnstile(512, 2000, 100, 44);
  lps::heavy::CsHeavyHitters::Params params;
  params.n = 512;
  params.p = 1.0;
  params.phi = 0.1;
  params.norm_rows = 64;
  params.seed = 55;
  lps::heavy::CsHeavyHitters scalar_hh(params), batched_hh(params);
  lps::norm::L0Estimator scalar_l0(512, 9, 56), batched_l0(512, 9, 56);
  for (const auto& u : stream) {
    scalar_hh.Update(u.index, static_cast<double>(u.delta));
    scalar_l0.Update(u.index, u.delta);
  }
  StreamDriver driver(100);
  driver.Add("hh", &batched_hh).Add("l0", &batched_l0).Drive(stream);
  EXPECT_EQ(CounterWords(scalar_hh), CounterWords(batched_hh));
  EXPECT_EQ(CounterWords(scalar_l0), CounterWords(batched_l0));
  EXPECT_EQ(scalar_hh.Query(), batched_hh.Query());
  EXPECT_EQ(scalar_l0.Estimate(), batched_l0.Estimate());
}

}  // namespace
}  // namespace lps::stream
