#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "src/stream/exact_vector.h"
#include "src/stream/generators.h"

namespace lps::stream {
namespace {

TEST(ExactVector, ApplyAndNorms) {
  ExactVector x(8);
  x.Apply({0, 3});
  x.Apply({1, -4});
  x.Apply({0, 1});  // x = (4, -4, 0, ...)
  EXPECT_EQ(x[0], 4);
  EXPECT_EQ(x[1], -4);
  EXPECT_EQ(x.L0(), 2u);
  EXPECT_DOUBLE_EQ(x.NormP(1.0), 8.0);
  EXPECT_DOUBLE_EQ(x.NormP(2.0), std::sqrt(32.0));
  EXPECT_DOUBLE_EQ(x.NormPToP(0.5), 2 * std::sqrt(4.0));
  EXPECT_EQ(x.PositiveMass(), 4);
  EXPECT_EQ(x.NegativeMass(), 4);
  EXPECT_EQ(x.Total(), 0);
}

TEST(ExactVector, LpDistribution) {
  ExactVector x(4);
  x.Apply({0, 1});
  x.Apply({1, -2});
  x.Apply({2, 3});
  const auto d1 = x.LpDistribution(1.0);
  EXPECT_DOUBLE_EQ(d1[0], 1.0 / 6);
  EXPECT_DOUBLE_EQ(d1[1], 2.0 / 6);
  EXPECT_DOUBLE_EQ(d1[2], 3.0 / 6);
  EXPECT_DOUBLE_EQ(d1[3], 0.0);
  const auto d0 = x.LpDistribution(0.0);
  EXPECT_DOUBLE_EQ(d0[0], 1.0 / 3);
  EXPECT_DOUBLE_EQ(d0[3], 0.0);
  const auto d2 = x.LpDistribution(2.0);
  EXPECT_DOUBLE_EQ(d2[2], 9.0 / 14);
}

TEST(ExactVector, ErrM2DropsLargestEntries) {
  ExactVector x(6);
  x.Apply({0, 10});
  x.Apply({1, -5});
  x.Apply({2, 2});
  x.Apply({3, 1});
  EXPECT_DOUBLE_EQ(x.ErrM2(0), std::sqrt(100.0 + 25 + 4 + 1));
  EXPECT_DOUBLE_EQ(x.ErrM2(1), std::sqrt(25.0 + 4 + 1));
  EXPECT_DOUBLE_EQ(x.ErrM2(2), std::sqrt(4.0 + 1));
  EXPECT_DOUBLE_EQ(x.ErrM2(4), 0.0);
  EXPECT_DOUBLE_EQ(x.ErrM2(100), 0.0);
}

TEST(ExactVector, HeavyHitters) {
  ExactVector x(8);
  x.Apply({0, 100});
  x.Apply({1, -100});
  x.Apply({2, 1});
  const auto heavy = x.HeavyHitters(1.0, 0.4);
  EXPECT_EQ(heavy, (std::vector<uint64_t>{0, 1}));
}

TEST(Generators, UniformTurnstileShape) {
  const auto stream = UniformTurnstile(100, 5000, 10, 1);
  ASSERT_EQ(stream.size(), 5000u);
  for (const auto& u : stream) {
    EXPECT_LT(u.index, 100u);
    EXPECT_NE(u.delta, 0);
    EXPECT_LE(std::abs(u.delta), 10);
  }
}

TEST(Generators, ZipfianVectorIsZipfian) {
  const auto stream = ZipfianVector(64, 1.0, 1000, false, 2);
  ExactVector x(64);
  x.Apply(stream);
  std::vector<int64_t> magnitudes;
  for (uint64_t i = 0; i < 64; ++i) magnitudes.push_back(std::abs(x[i]));
  std::sort(magnitudes.begin(), magnitudes.end(), std::greater<>());
  EXPECT_EQ(magnitudes[0], 1000);
  EXPECT_NEAR(magnitudes[1], 500, 1);
  EXPECT_NEAR(magnitudes[3], 250, 1);
}

TEST(Generators, SignVectorExactlyK) {
  const auto stream = SignVector(256, 40, 3);
  ExactVector x(256);
  x.Apply(stream);
  EXPECT_EQ(x.L0(), 40u);
  for (uint64_t i = 0; i < 256; ++i) {
    EXPECT_LE(std::abs(x[i]), 1);
  }
}

TEST(Generators, SparseVectorExactlyK) {
  const auto stream = SparseVector(512, 25, 1000, 4);
  ExactVector x(512);
  x.Apply(stream);
  EXPECT_EQ(x.L0(), 25u);
}

TEST(Generators, InsertDeleteChurnLeavesSurvivors) {
  const auto stream = InsertDeleteChurn(1024, 400, 7, 5);
  ExactVector x(1024);
  x.Apply(stream);
  EXPECT_EQ(x.L0(), 7u);
  for (uint64_t i = 0; i < 1024; ++i) {
    EXPECT_TRUE(x[i] == 0 || x[i] == 1);
  }
}

TEST(Generators, PlantedHeavyHittersAreHeavy) {
  const auto stream = PlantedHeavyHitters(1024, 3, 500, 200, false, 6);
  ExactVector x(1024);
  x.Apply(stream);
  EXPECT_EQ(x.HeavyHitters(1.0, 0.2).size(), 3u);
  EXPECT_EQ(x.L0(), 203u);
}

TEST(Generators, DuplicateStreamPigeonhole) {
  const auto letters = DuplicateStream(100, 1, 7);
  EXPECT_EQ(letters.size(), 101u);
  std::map<uint64_t, int> counts;
  for (uint64_t l : letters) ++counts[l];
  int dups = 0;
  for (const auto& [letter, c] : counts) {
    if (c >= 2) ++dups;
  }
  EXPECT_GE(dups, 1);
}

TEST(Generators, DuplicateStreamZeroExtrasIsPermutation) {
  const auto letters = DuplicateStream(50, 0, 8);
  EXPECT_EQ(letters.size(), 50u);
  std::vector<uint64_t> sorted = letters;
  std::sort(sorted.begin(), sorted.end());
  for (uint64_t i = 0; i < 50; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Generators, ShortStreamWithDuplicatesCounts) {
  const uint64_t n = 200, s = 30, dups = 5;
  const auto letters = ShortStreamWithDuplicates(n, s, dups, 9);
  EXPECT_EQ(letters.size(), n - s);
  std::map<uint64_t, int> counts;
  for (uint64_t l : letters) ++counts[l];
  uint64_t twice = 0;
  for (const auto& [letter, c] : counts) {
    EXPECT_LE(c, 2);
    if (c == 2) ++twice;
  }
  EXPECT_EQ(twice, dups);
}

TEST(Generators, DuplicatesReductionVector) {
  // Theorem 3's reduction: x_i = occurrences - 1.
  const LetterStream letters = {3, 3, 5};
  const auto stream = DuplicatesReduction(8, letters);
  ExactVector x(8);
  x.Apply(stream);
  EXPECT_EQ(x[3], 1);   // appears twice
  EXPECT_EQ(x[5], 0);   // appears once
  EXPECT_EQ(x[0], -1);  // missing
  EXPECT_EQ(x.Total(), static_cast<int64_t>(letters.size()) - 8);
}

}  // namespace
}  // namespace lps::stream
