#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/util/bits.h"
#include "src/util/random.h"
#include "src/util/serialize.h"
#include "src/util/status.h"

namespace lps {
namespace {

TEST(Bits, CeilLog2) {
  EXPECT_EQ(CeilLog2(1), 0);
  EXPECT_EQ(CeilLog2(2), 1);
  EXPECT_EQ(CeilLog2(3), 2);
  EXPECT_EQ(CeilLog2(4), 2);
  EXPECT_EQ(CeilLog2(5), 3);
  EXPECT_EQ(CeilLog2(1024), 10);
  EXPECT_EQ(CeilLog2(1025), 11);
  EXPECT_EQ(CeilLog2(1ULL << 62), 62);
}

TEST(Bits, FloorLog2) {
  EXPECT_EQ(FloorLog2(1), 0);
  EXPECT_EQ(FloorLog2(2), 1);
  EXPECT_EQ(FloorLog2(3), 1);
  EXPECT_EQ(FloorLog2(4), 2);
  EXPECT_EQ(FloorLog2(1023), 9);
  EXPECT_EQ(FloorLog2(1ULL << 63), 63);
}

TEST(Bits, NextPow2) {
  EXPECT_EQ(NextPow2(0), 1u);
  EXPECT_EQ(NextPow2(1), 1u);
  EXPECT_EQ(NextPow2(3), 4u);
  EXPECT_EQ(NextPow2(4), 4u);
  EXPECT_EQ(NextPow2(1000), 1024u);
}

TEST(Bits, BitWidth) {
  EXPECT_EQ(BitWidth(1), 1);
  EXPECT_EQ(BitWidth(2), 1);
  EXPECT_EQ(BitWidth(3), 2);
  EXPECT_EQ(BitWidth(256), 8);
  EXPECT_EQ(BitWidth(257), 9);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000000007ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Below(bound), bound);
    }
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  const uint64_t bound = 10;
  std::vector<int> counts(bound, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[rng.Below(bound)];
  for (uint64_t v = 0; v < bound; ++v) {
    EXPECT_NEAR(counts[v], trials / 10.0, 5 * std::sqrt(trials / 10.0));
  }
}

TEST(Rng, DoubleRanges) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.NextDoublePositive();
    EXPECT_GT(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(5);
  const int n = 200000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, ExponentialMean) {
  Rng rng(6);
  const int n = 200000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential();
  EXPECT_NEAR(sum / n, 1.0, 0.02);
}

TEST(Mix64, DistinctInputsDistinctOutputs) {
  // Sanity: no collisions in a small range (splitmix is a bijection).
  std::vector<uint64_t> seen;
  for (uint64_t i = 0; i < 1000; ++i) seen.push_back(Mix64(i));
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end());
}

TEST(BitWriter, RoundTripAssortedWidths) {
  BitWriter writer;
  writer.WriteBits(0b101, 3);
  writer.WriteBits(0xDEADBEEF, 32);
  writer.WriteBits(1, 1);
  writer.WriteU64(0x0123456789ABCDEFULL);
  writer.WriteBits(0x3FF, 10);
  EXPECT_EQ(writer.bit_count(), 3u + 32 + 1 + 64 + 10);

  BitReader reader(writer);
  EXPECT_EQ(reader.ReadBits(3), 0b101u);
  EXPECT_EQ(reader.ReadBits(32), 0xDEADBEEFu);
  EXPECT_EQ(reader.ReadBits(1), 1u);
  EXPECT_EQ(reader.ReadU64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(reader.ReadBits(10), 0x3FFu);
  EXPECT_EQ(reader.bits_remaining(), 0u);
}

TEST(BitWriter, CrossWordBoundary) {
  BitWriter writer;
  writer.WriteBits(0x7F, 7);           // 7 bits
  writer.WriteU64(~0ULL);              // spans words
  writer.WriteBits(0x1, 1);
  BitReader reader(writer);
  EXPECT_EQ(reader.ReadBits(7), 0x7Fu);
  EXPECT_EQ(reader.ReadU64(), ~0ULL);
  EXPECT_EQ(reader.ReadBits(1), 0x1u);
}

TEST(BitWriter, DoubleRoundTrip) {
  BitWriter writer;
  const double values[] = {0.0, -1.5, 3.14159, 1e300, -1e-300};
  for (double v : values) writer.WriteDouble(v);
  BitReader reader(writer);
  for (double v : values) EXPECT_EQ(reader.ReadDouble(), v);
}

TEST(BitWriter, BoundedUsesMinimalBits) {
  BitWriter writer;
  writer.WriteBounded(5, 10);  // 4 bits
  writer.WriteBounded(0, 2);   // 1 bit
  EXPECT_EQ(writer.bit_count(), 5u);
  BitReader reader(writer);
  EXPECT_EQ(reader.ReadBounded(10), 5u);
  EXPECT_EQ(reader.ReadBounded(2), 0u);
}

TEST(Status, Basics) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_TRUE(Status::Failed("x").IsFailed());
  EXPECT_TRUE(Status::Dense("y").IsDense());
  EXPECT_FALSE(Status::Dense("y").ok());
  EXPECT_EQ(Status::InvalidArgument("bad").code(), Code::kInvalidArgument);
  EXPECT_NE(Status::Failed("msg").ToString().find("msg"), std::string::npos);
}

TEST(Result, HoldsValueOrStatus) {
  Result<int> ok_result(42);
  EXPECT_TRUE(ok_result.ok());
  EXPECT_EQ(ok_result.value(), 42);
  EXPECT_TRUE(ok_result.status().ok());

  Result<int> failed(Status::Failed("nope"));
  EXPECT_FALSE(failed.ok());
  EXPECT_TRUE(failed.status().IsFailed());
}

}  // namespace
}  // namespace lps
