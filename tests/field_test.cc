#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/field/berlekamp_massey.h"
#include "src/field/gf61.h"
#include "src/field/poly.h"
#include "src/field/roots.h"
#include "src/field/vandermonde.h"
#include "src/util/random.h"

namespace lps {
namespace {

namespace gf = gf61;
using poly::Poly;

TEST(Gf61, AdditiveGroup) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t a = rng.Below(gf::kP);
    const uint64_t b = rng.Below(gf::kP);
    EXPECT_EQ(gf::Add(a, gf::Neg(a)), 0u);
    EXPECT_EQ(gf::Sub(gf::Add(a, b), b), a);
    EXPECT_EQ(gf::Add(a, b), gf::Add(b, a));
  }
}

TEST(Gf61, MultiplicativeGroup) {
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    const uint64_t a = 1 + rng.Below(gf::kP - 1);
    EXPECT_EQ(gf::Mul(a, gf::Inv(a)), 1u);
    EXPECT_EQ(gf::Mul(a, 1), a);
    EXPECT_EQ(gf::Mul(a, 0), 0u);
  }
}

TEST(Gf61, MulMatchesBigIntOnLargeOperands) {
  // Largest operands: (p-1)^2 mod p == 1.
  EXPECT_EQ(gf::Mul(gf::kP - 1, gf::kP - 1), 1u);
  // 2^60 * 2 = 2^61 = 1 mod p... 2^61 - 1 = p means 2^61 mod p = 1.
  EXPECT_EQ(gf::Mul(1ULL << 60, 2), 1u);
}

TEST(Gf61, ReduceEdgeCases) {
  EXPECT_EQ(gf::Reduce(0), 0u);
  EXPECT_EQ(gf::Reduce(gf::kP), 0u);
  EXPECT_EQ(gf::Reduce(gf::kP + 1), 1u);
  EXPECT_EQ(gf::Reduce(~0ULL), gf::Reduce((~0ULL % gf::kP)));
}

TEST(Gf61, FermatLittleTheorem) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const uint64_t a = 1 + rng.Below(gf::kP - 1);
    EXPECT_EQ(gf::Pow(a, gf::kP - 1), 1u);
    EXPECT_EQ(gf::Pow(a, gf::kP), a);
  }
}

TEST(Gf61, SignedRoundTrip) {
  for (int64_t v : {0LL, 1LL, -1LL, 123456789LL, -987654321LL,
                    (1LL << 59), -(1LL << 59)}) {
    EXPECT_EQ(gf::ToInt64(gf::FromInt64(v)), v);
  }
}

TEST(PolyTest, DegreeAndTrim) {
  Poly f = {1, 2, 0, 0};
  poly::Trim(&f);
  EXPECT_EQ(poly::Deg(f), 1);
  Poly zero = {0, 0};
  poly::Trim(&zero);
  EXPECT_EQ(poly::Deg(zero), -1);
}

TEST(PolyTest, MulDivRoundTrip) {
  Rng rng(4);
  for (int trial = 0; trial < 50; ++trial) {
    Poly a(1 + rng.Below(8)), b(1 + rng.Below(8));
    for (auto& c : a) c = rng.Below(gf::kP);
    for (auto& c : b) c = rng.Below(gf::kP);
    poly::Trim(&a);
    poly::Trim(&b);
    if (poly::Deg(b) < 0) b = {1};
    const Poly prod = poly::Mul(a, b);
    Poly q, r;
    poly::DivMod(prod, b, &q, &r);
    EXPECT_EQ(poly::Deg(r), -1);
    EXPECT_EQ(q, a);
  }
}

TEST(PolyTest, EvalHorner) {
  // f(x) = 3 + 2x + x^2 at x = 5 -> 3 + 10 + 25 = 38.
  EXPECT_EQ(poly::Eval({3, 2, 1}, 5), 38u);
  EXPECT_EQ(poly::Eval({}, 123), 0u);
}

TEST(PolyTest, GcdOfCommonFactor) {
  // gcd((x-2)(x-3), (x-2)(x-5)) = (x-2), monic.
  const Poly f = poly::Mul({gf::Neg(2), 1}, {gf::Neg(3), 1});
  const Poly g = poly::Mul({gf::Neg(2), 1}, {gf::Neg(5), 1});
  const Poly d = poly::Gcd(f, g);
  ASSERT_EQ(poly::Deg(d), 1);
  EXPECT_EQ(poly::Eval(d, 2), 0u);
}

TEST(PolyTest, PowModFermatOnLinearModulus) {
  // x^p mod (x - a) == a^p == a (Fermat).
  const uint64_t a = 123456789;
  const Poly mod = {gf::Neg(a), 1};
  const Poly xp = poly::PowMod({0, 1}, gf::kP, mod);
  ASSERT_EQ(poly::Deg(xp), 0);
  EXPECT_EQ(xp[0], a);
}

TEST(PolyTest, Derivative) {
  // d/dx (1 + 2x + 3x^2) = 2 + 6x.
  const Poly d = poly::Derivative({1, 2, 3});
  ASSERT_EQ(poly::Deg(d), 1);
  EXPECT_EQ(d[0], 2u);
  EXPECT_EQ(d[1], 6u);
}

TEST(BerlekampMasseyTest, ZeroSequence) {
  const Poly c = field::BerlekampMassey({0, 0, 0, 0});
  EXPECT_EQ(c, Poly{1});
}

TEST(BerlekampMasseyTest, GeometricSequence) {
  // S_r = 7 * 3^r satisfies S_r = 3 S_{r-1}: C(x) = 1 - 3x.
  std::vector<uint64_t> seq;
  uint64_t v = 7;
  for (int r = 0; r < 8; ++r) {
    seq.push_back(v);
    v = gf::Mul(v, 3);
  }
  const Poly c = field::BerlekampMassey(seq);
  ASSERT_EQ(poly::Deg(c), 1);
  EXPECT_EQ(c[0], 1u);
  EXPECT_EQ(c[1], gf::Neg(3));
}

TEST(BerlekampMasseyTest, RecoversSparseSyndromeRecurrence) {
  // Syndromes of a 3-sparse vector: nodes {2, 5, 11}, values {4, 1, 9}.
  const std::vector<uint64_t> nodes = {2, 5, 11};
  const std::vector<uint64_t> values = {4, 1, 9};
  std::vector<uint64_t> syndromes;
  for (int r = 0; r < 6; ++r) {
    uint64_t t = 0;
    for (size_t j = 0; j < nodes.size(); ++j) {
      t = gf::Add(t, gf::Mul(values[j], gf::Pow(nodes[j], r)));
    }
    syndromes.push_back(t);
  }
  const Poly c = field::BerlekampMassey(syndromes);
  ASSERT_EQ(poly::Deg(c), 3);
  // The locator (reversal) must vanish at every node.
  const Poly locator = poly::Reverse(c);
  for (uint64_t node : nodes) {
    EXPECT_EQ(poly::Eval(locator, node), 0u) << "node " << node;
  }
}

TEST(RootsTest, FindsAllRootsOfSplitPolynomial) {
  Rng rng(9);
  std::vector<uint64_t> expected = {3, 17, 101, 4096, 99999};
  Poly f = {1};
  for (uint64_t r : expected) f = poly::Mul(f, {gf::Neg(r), 1});
  std::vector<uint64_t> roots = field::FindRoots(f, &rng);
  std::sort(roots.begin(), roots.end());
  EXPECT_EQ(roots, expected);
}

TEST(RootsTest, IrreducibleQuadraticHasNoRoots) {
  // x^2 + 1 is irreducible iff -1 is a non-residue; p = 2^61-1 = 3 mod 4,
  // so it is.
  Rng rng(10);
  const std::vector<uint64_t> roots = field::FindRoots({1, 0, 1}, &rng);
  EXPECT_TRUE(roots.empty());
}

TEST(RootsTest, MixedFactorsReturnsOnlyRoots) {
  // f = (x - 5)(x^2 + 1): exactly one root.
  Rng rng(11);
  const Poly f = poly::Mul({gf::Neg(5), 1}, {1, 0, 1});
  const std::vector<uint64_t> roots = field::FindRoots(f, &rng);
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0], 5u);
}

TEST(RootsTest, SplitsIntoDistinctLinearFactors) {
  const Poly split = poly::Mul({gf::Neg(2), 1}, {gf::Neg(3), 1});
  EXPECT_TRUE(field::SplitsIntoDistinctLinearFactors(split));
  // Repeated root: (x-2)^2 does not split into *distinct* linear factors.
  const Poly squared = poly::Mul({gf::Neg(2), 1}, {gf::Neg(2), 1});
  EXPECT_FALSE(field::SplitsIntoDistinctLinearFactors(squared));
  EXPECT_FALSE(field::SplitsIntoDistinctLinearFactors({1, 0, 1}));
}

TEST(RootsTest, RepeatedRootsReportedOnce) {
  // f = (x-2)^2 (x-3): the distinct-linear-factor isolation collapses the
  // square, so FindRoots returns {2, 3}.
  Rng rng(13);
  Poly f = poly::Mul(poly::Mul({gf::Neg(2), 1}, {gf::Neg(2), 1}),
                     {gf::Neg(3), 1});
  std::vector<uint64_t> roots = field::FindRoots(f, &rng);
  std::sort(roots.begin(), roots.end());
  EXPECT_EQ(roots, (std::vector<uint64_t>{2, 3}));
}

TEST(BerlekampMasseyTest, TooFewSyndromesYieldShortRegister) {
  // With only 2 syndromes of a 3-sparse signal, BM fits some LFSR of
  // length <= 1 — downstream code must treat the result as untrusted,
  // which is exactly why SparseRecovery verifies fingerprints.
  const std::vector<uint64_t> nodes = {2, 5, 11};
  std::vector<uint64_t> syndromes;
  for (int r = 0; r < 2; ++r) {
    uint64_t t = 0;
    for (uint64_t node : nodes) {
      t = gf::Add(t, gf::Mul(7, gf::Pow(node, r)));
    }
    syndromes.push_back(t);
  }
  const Poly c = field::BerlekampMassey(syndromes);
  EXPECT_LE(poly::Deg(c), 1);
}

TEST(PolyTest, GcdWithZeroIsMonicOther) {
  const Poly f = {gf::Neg(4), 2};  // 2x - 4
  Poly d = poly::Gcd(f, {});
  ASSERT_EQ(poly::Deg(d), 1);
  EXPECT_EQ(d.back(), 1u);            // monic
  EXPECT_EQ(poly::Eval(d, 2), 0u);    // same root
  EXPECT_EQ(poly::Gcd({}, {}), Poly{});
}

TEST(PolyTest, DivModByHigherDegreeIsIdentityRemainder) {
  Poly q, r;
  poly::DivMod({1, 2}, {0, 0, 5}, &q, &r);
  EXPECT_EQ(poly::Deg(q), -1);
  EXPECT_EQ(r, (Poly{1, 2}));
}

TEST(VandermondeTest, SolvesRandomSystems) {
  Rng rng(12);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t k = 1 + rng.Below(12);
    std::vector<uint64_t> nodes;
    while (nodes.size() < k) {
      const uint64_t node = 1 + rng.Below(1 << 20);
      if (std::find(nodes.begin(), nodes.end(), node) == nodes.end()) {
        nodes.push_back(node);
      }
    }
    std::vector<uint64_t> values(k);
    for (auto& v : values) v = rng.Below(gf::kP);
    std::vector<uint64_t> rhs(k, 0);
    for (size_t r = 0; r < k; ++r) {
      for (size_t j = 0; j < k; ++j) {
        rhs[r] = gf::Add(rhs[r], gf::Mul(values[j], gf::Pow(nodes[j], r)));
      }
    }
    EXPECT_EQ(field::SolveTransposedVandermonde(nodes, rhs), values);
  }
}

class RoundTripSparsity : public ::testing::TestWithParam<int> {};

// Property: syndromes -> BM -> roots -> Vandermonde recovers any sparse
// signal exactly, across sparsity levels (the algebraic core of Lemma 5).
TEST_P(RoundTripSparsity, FullAlgebraicPipeline) {
  const int s = GetParam();
  Rng rng(100 + static_cast<uint64_t>(s));
  std::vector<uint64_t> nodes;
  while (nodes.size() < static_cast<size_t>(s)) {
    const uint64_t node = 1 + rng.Below(1 << 16);
    if (std::find(nodes.begin(), nodes.end(), node) == nodes.end()) {
      nodes.push_back(node);
    }
  }
  std::sort(nodes.begin(), nodes.end());
  std::vector<uint64_t> values(static_cast<size_t>(s));
  for (auto& v : values) v = 1 + rng.Below(1000000);

  std::vector<uint64_t> syndromes(2 * static_cast<size_t>(s), 0);
  for (size_t r = 0; r < syndromes.size(); ++r) {
    for (size_t j = 0; j < nodes.size(); ++j) {
      syndromes[r] =
          gf::Add(syndromes[r], gf::Mul(values[j], gf::Pow(nodes[j], r)));
    }
  }

  const Poly c = field::BerlekampMassey(syndromes);
  ASSERT_EQ(poly::Deg(c), s);
  std::vector<uint64_t> roots = field::FindRoots(poly::Reverse(c), &rng);
  std::sort(roots.begin(), roots.end());
  ASSERT_EQ(roots, nodes);
  EXPECT_EQ(field::SolveTransposedVandermonde(roots, syndromes), values);
}

INSTANTIATE_TEST_SUITE_P(Sparsities, RoundTripSparsity,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55));

}  // namespace
}  // namespace lps
