// Merge-equivalence property tests for every LinearSketch implementer:
// splitting a stream across k shard replicas and merging them must
// reproduce single-stream ingestion. For structures whose counters live in
// exact arithmetic (GF(2^61-1) fingerprints/syndromes, or integer-valued
// doubles — integer stream deltas keep count-sketch/count-min/AMS counters
// integral, and integer doubles below 2^53 add exactly in any order) the
// serialized state must be BIT-IDENTICAL. Structures with genuinely
// real-valued counters (p-stable rows, the Lp sampler's t_i^{-1/p}-scaled
// count-sketch) are exact up to floating-point reassociation, so those
// assert identical query/sample results and ULP-scale state agreement.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/core/fis_l0_sampler.h"
#include "src/core/l0_sampler.h"
#include "src/core/lp_sampler.h"
#include "src/duplicates/duplicates.h"
#include "src/duplicates/positive_finder.h"
#include "src/heavy/heavy_hitters.h"
#include "src/norm/l0_norm.h"
#include "src/norm/lp_norm.h"
#include "src/recovery/one_sparse.h"
#include "src/recovery/sparse_recovery.h"
#include "src/sketch/ams_f2.h"
#include "src/sketch/count_min.h"
#include "src/sketch/count_sketch.h"
#include "src/sketch/dyadic.h"
#include "src/sketch/stable_sketch.h"
#include "src/stream/generators.h"
#include "src/stream/linear_sketch.h"
// ShardedDriver is the deprecated shim this suite historically tests
// through; the pipeline itself is the supported surface.
#define LPS_SHARDED_DRIVER_ALLOW_DEPRECATED
#include "src/stream/sharded_driver.h"
#include "src/util/serialize.h"

namespace lps {
namespace {

using stream::ShardedDriver;
using stream::UpdateStream;

constexpr uint64_t kN = 2048;
constexpr int kLogN = 11;

struct SerializedState {
  std::vector<uint64_t> words;
  size_t bits;
  bool operator==(const SerializedState& other) const {
    return bits == other.bits && words == other.words;
  }
};

SerializedState StateOf(const LinearSketch& sketch) {
  BitWriter writer;
  sketch.Serialize(&writer);
  return {writer.words(), writer.bit_count()};
}

/// Builds k replicas with `make`, ingests `stream` through a ShardedDriver
/// with the given partition, merges, and returns replica 0 by value.
template <typename T, typename MakeFn>
T ShardedIngest(MakeFn make, const UpdateStream& stream, int k,
                ShardedDriver::Partition partition) {
  std::vector<T> replicas;
  replicas.reserve(static_cast<size_t>(k));
  for (int s = 0; s < k; ++s) replicas.push_back(make());
  std::vector<LinearSketch*> raw;
  for (auto& replica : replicas) raw.push_back(&replica);
  ShardedDriver driver(k, partition);
  driver.Add("sink", raw);
  driver.Drive(stream);
  driver.MergeShards();
  return std::move(replicas[0]);
}

/// The exact-family property: for k in {2, 3, 8} and both partition
/// policies, sharded ingest + merge is bit-identical to solo ingest.
template <typename T, typename MakeFn>
void ExpectShardedBitIdentical(MakeFn make, const UpdateStream& stream) {
  T solo = make();
  solo.UpdateBatch(stream.data(), stream.size());
  const SerializedState want = StateOf(solo);
  for (int k : {2, 3, 8}) {
    for (auto partition : {ShardedDriver::Partition::kByIndex,
                           ShardedDriver::Partition::kRoundRobin}) {
      T merged = ShardedIngest<T>(make, stream, k, partition);
      EXPECT_TRUE(StateOf(merged) == want)
          << "k=" << k << " partition=" << static_cast<int>(partition);
    }
  }
}

UpdateStream StrictStream() {
  // Strict turnstile: positive deltas only.
  UpdateStream stream = stream::SparseVector(kN, 300, 50, 11);
  for (auto& u : stream) {
    if (u.delta < 0) u.delta = -u.delta;
    if (u.delta == 0) u.delta = 1;
  }
  return stream;
}

UpdateStream GeneralStream() {
  return stream::UniformTurnstile(kN, 5000, 100, 12);
}

TEST(MergeEquivalence, CountSketchBitIdentical) {
  for (const auto& stream : {StrictStream(), GeneralStream()}) {
    ExpectShardedBitIdentical<sketch::CountSketch>(
        [] { return sketch::CountSketch(9, 48, 21); }, stream);
  }
}

TEST(MergeEquivalence, CountMinBitIdentical) {
  for (const auto& stream : {StrictStream(), GeneralStream()}) {
    ExpectShardedBitIdentical<sketch::CountMin>(
        [] { return sketch::CountMin(9, 48, 22); }, stream);
  }
}

TEST(MergeEquivalence, AmsF2BitIdentical) {
  for (const auto& stream : {StrictStream(), GeneralStream()}) {
    ExpectShardedBitIdentical<sketch::AmsF2>(
        [] { return sketch::AmsF2(5, 8, 23); }, stream);
  }
}

TEST(MergeEquivalence, DyadicCountMinBitIdentical) {
  for (const auto& stream : {StrictStream(), GeneralStream()}) {
    ExpectShardedBitIdentical<sketch::DyadicCountMin>(
        [] { return sketch::DyadicCountMin(kLogN, 5, 32, 24); }, stream);
  }
}

TEST(MergeEquivalence, DyadicCountSketchBitIdentical) {
  for (const auto& stream : {StrictStream(), GeneralStream()}) {
    ExpectShardedBitIdentical<sketch::DyadicCountSketch>(
        [] { return sketch::DyadicCountSketch(kLogN, 5, 32, 25); }, stream);
  }
}

TEST(MergeEquivalence, L0EstimatorBitIdentical) {
  for (const auto& stream : {StrictStream(), GeneralStream()}) {
    ExpectShardedBitIdentical<norm::L0Estimator>(
        [] { return norm::L0Estimator(kN, 9, 26); }, stream);
  }
}

TEST(MergeEquivalence, OneSparseBitIdentical) {
  for (const auto& stream : {StrictStream(), GeneralStream()}) {
    ExpectShardedBitIdentical<recovery::OneSparse>(
        [] { return recovery::OneSparse(kN, 27); }, stream);
  }
}

TEST(MergeEquivalence, SparseRecoveryBitIdentical) {
  for (const auto& stream : {StrictStream(), GeneralStream()}) {
    ExpectShardedBitIdentical<recovery::SparseRecovery>(
        [] { return recovery::SparseRecovery(kN, 12, 28); }, stream);
  }
}

TEST(MergeEquivalence, L0SamplerBitIdentical) {
  for (const auto& stream : {StrictStream(), GeneralStream()}) {
    ExpectShardedBitIdentical<core::L0Sampler>(
        [] { return core::L0Sampler({kN, 0.25, 0, 29, false}); }, stream);
  }
}

TEST(MergeEquivalence, FisL0SamplerBitIdentical) {
  for (const auto& stream : {StrictStream(), GeneralStream()}) {
    ExpectShardedBitIdentical<core::FisL0Sampler>(
        [] { return core::FisL0Sampler(kN, 30); }, stream);
  }
}

TEST(MergeEquivalence, CmHeavyHittersBitIdentical) {
  for (const auto& stream : {StrictStream(), GeneralStream()}) {
    ExpectShardedBitIdentical<heavy::CmHeavyHitters>(
        [] {
          heavy::CmHeavyHitters::Params params;
          params.n = kN;
          params.phi = 0.1;
          params.seed = 31;
          return heavy::CmHeavyHitters(params);
        },
        stream);
  }
}

TEST(MergeEquivalence, DyadicHeavyHittersBitIdentical) {
  for (const auto& stream : {StrictStream(), GeneralStream()}) {
    ExpectShardedBitIdentical<heavy::DyadicHeavyHitters>(
        [] { return heavy::DyadicHeavyHitters(kLogN, 0.1, 32); }, stream);
  }
}

TEST(MergeEquivalence, CsHeavyHittersStrictTurnstileBitIdentical) {
  // Strict turnstile at p = 1 uses the exact running sum instead of a
  // stable-norm sketch, so every counter stays integer-valued and the
  // sharded state is bit-identical.
  ExpectShardedBitIdentical<heavy::CsHeavyHitters>(
      [] {
        heavy::CsHeavyHitters::Params params;
        params.n = kN;
        params.p = 1.0;
        params.phi = 0.1;
        params.strict_turnstile = true;
        params.seed = 33;
        return heavy::CsHeavyHitters(params);
      },
      StrictStream());
}

TEST(MergeEquivalence, PositiveFinderSampleAgreement) {
  // The sampler component's counters are t^{-1}-scaled reals, so state is
  // equal only up to reassociation — the query outcomes must still agree.
  const auto stream = GeneralStream();
  auto make = [] {
    return duplicates::PositiveFinder(
        duplicates::PositiveFinder::Params{kN, 4, 0.2, 8, 34});
  };
  auto solo = make();
  solo.UpdateBatch(stream.data(), stream.size());
  for (int k : {2, 8}) {
    auto merged = ShardedIngest<duplicates::PositiveFinder>(
        make, stream, k, ShardedDriver::Partition::kByIndex);
    EXPECT_EQ(solo.Deficit(), merged.Deficit());
    const auto a = solo.Find();
    const auto b = merged.Find();
    EXPECT_EQ(static_cast<int>(a.kind), static_cast<int>(b.kind));
    if (a.kind == duplicates::PositiveFinder::Kind::kFound) {
      EXPECT_EQ(a.index, b.index);
    }
  }
}

// ------------------------------------------------- floating-point family --

TEST(MergeEquivalence, StableSketchQueryAgreement) {
  const auto stream = GeneralStream();
  auto make = [] { return sketch::StableSketch(1.0, 48, 35); };
  auto solo = make();
  solo.UpdateBatch(stream.data(), stream.size());
  for (int k : {2, 3, 8}) {
    auto merged = ShardedIngest<sketch::StableSketch>(
        make, stream, k, ShardedDriver::Partition::kByIndex);
    EXPECT_NEAR(merged.EstimateNorm(), solo.EstimateNorm(),
                1e-9 * std::abs(solo.EstimateNorm()));
  }
}

TEST(MergeEquivalence, LpNormEstimatorQueryAgreement) {
  const auto stream = GeneralStream();
  auto make = [] { return norm::LpNormEstimator(1.0, 64, 36); };
  auto solo = make();
  solo.UpdateBatch(stream.data(), stream.size());
  for (int k : {2, 8}) {
    auto merged = ShardedIngest<norm::LpNormEstimator>(
        make, stream, k, ShardedDriver::Partition::kRoundRobin);
    EXPECT_NEAR(merged.Estimate2Approx(), solo.Estimate2Approx(),
                1e-9 * solo.Estimate2Approx());
  }
}

TEST(MergeEquivalence, LpSamplerSampleAgreement) {
  const auto stream = GeneralStream();
  auto make = [] {
    core::LpSamplerParams params;
    params.n = kN;
    params.p = 1.0;
    params.eps = 0.25;
    params.repetitions = 8;
    params.seed = 37;
    return core::LpSampler(params);
  };
  auto solo = make();
  solo.UpdateBatch(stream.data(), stream.size());
  const auto want = solo.Sample();
  for (int k : {2, 3, 8}) {
    auto merged = ShardedIngest<core::LpSampler>(
        make, stream, k, ShardedDriver::Partition::kByIndex);
    const auto got = merged.Sample();
    ASSERT_EQ(want.ok(), got.ok());
    if (want.ok()) {
      EXPECT_EQ(want.value().index, got.value().index);
      EXPECT_NEAR(want.value().estimate, got.value().estimate,
                  1e-6 * std::abs(want.value().estimate));
    }
  }
}

TEST(MergeEquivalence, CsHeavyHittersGeneralQueryAgreement) {
  const auto stream = stream::PlantedHeavyHitters(kN, 4, 2000, 40, true, 38);
  auto make = [] {
    heavy::CsHeavyHitters::Params params;
    params.n = kN;
    params.p = 1.5;
    params.phi = 0.2;
    params.norm_rows = 96;
    params.seed = 38;
    return heavy::CsHeavyHitters(params);
  };
  auto solo = make();
  solo.UpdateBatch(stream.data(), stream.size());
  for (int k : {2, 8}) {
    auto merged = ShardedIngest<heavy::CsHeavyHitters>(
        make, stream, k, ShardedDriver::Partition::kByIndex);
    EXPECT_EQ(solo.Query(), merged.Query());
  }
}

TEST(MergeEquivalence, DuplicateFinderFindAgreement) {
  // Letter stream as (letter, +1) updates; each replica starts from the
  // built-in (i, -1) initialization and Merge cancels the duplicates.
  const uint64_t n = 512;
  const auto letters = stream::DuplicateStream(n, 6, 39);
  UpdateStream stream;
  for (uint64_t l : letters) stream.push_back({l, +1});
  auto make = [n] {
    return duplicates::DuplicateFinder(
        duplicates::DuplicateFinder::Params{n, 0.2, 8, 40});
  };
  auto solo = make();
  solo.UpdateBatch(stream.data(), stream.size());
  const auto want = solo.Find();
  for (int k : {2, 3}) {
    auto merged = ShardedIngest<duplicates::DuplicateFinder>(
        make, stream, k, ShardedDriver::Partition::kByIndex);
    const auto got = merged.Find();
    ASSERT_EQ(want.ok(), got.ok());
    if (want.ok()) {
      EXPECT_EQ(want.value(), got.value());
    }
  }
}

// ----------------------------------------------------------- edge cases --

TEST(MergeEquivalence, EmptyShardsAreIdentity) {
  // 3 updates over 8 shards: most replicas never see an update, and merging
  // their zero states must not perturb the result.
  UpdateStream tiny = {{5, 7}, {900, -3}, {5, 1}};
  ExpectShardedBitIdentical<sketch::CountSketch>(
      [] { return sketch::CountSketch(7, 24, 41); }, tiny);
  ExpectShardedBitIdentical<recovery::SparseRecovery>(
      [] { return recovery::SparseRecovery(kN, 4, 42); }, tiny);
  ExpectShardedBitIdentical<norm::L0Estimator>(
      [] { return norm::L0Estimator(kN, 5, 43); }, tiny);
}

TEST(MergeEquivalence, WhollyEmptyStream) {
  const UpdateStream empty;
  ExpectShardedBitIdentical<sketch::CountMin>(
      [] { return sketch::CountMin(5, 16, 44); }, empty);
}

TEST(MergeEquivalence, MergeIsCounterAddition) {
  sketch::CountSketch a(7, 24, 45), b(7, 24, 45), both(7, 24, 45);
  a.Update(3, 10.0);
  b.Update(900, -4.0);
  both.Update(3, 10.0);
  both.Update(900, -4.0);
  a.Merge(b);
  EXPECT_TRUE(StateOf(a) == StateOf(both));
  EXPECT_DOUBLE_EQ(a.Query(3), both.Query(3));
}

TEST(MergeEquivalence, ResetRestoresFreshState) {
  auto check = [](auto make) {
    auto used = make();
    const auto stream = GeneralStream();
    used.UpdateBatch(stream.data(), stream.size());
    used.Reset();
    auto fresh = make();
    EXPECT_TRUE(StateOf(used) == StateOf(fresh));
  };
  check([] { return sketch::CountSketch(9, 48, 46); });
  check([] { return norm::L0Estimator(kN, 9, 47); });
  check([] { return core::L0Sampler(core::L0SamplerParams{kN, 0.25, 0, 48,
                                                          false}); });
}

TEST(MergeEquivalence, DuplicateFinderResetRestoresInitialization) {
  const uint64_t n = 256;
  duplicates::DuplicateFinder::Params params{n, 0.2, 6, 49};
  duplicates::DuplicateFinder used(params);
  used.ProcessItem(7);
  used.ProcessItem(7);
  used.Reset();
  duplicates::DuplicateFinder fresh(params);
  EXPECT_TRUE(StateOf(used) == StateOf(fresh));
}

TEST(MergeDeathTest, SeedMismatchChecks) {
  sketch::CountSketch a(7, 24, 1), b(7, 24, 2);
  EXPECT_DEATH(a.Merge(b), "LPS_CHECK");
}

TEST(MergeDeathTest, ShapeMismatchChecks) {
  sketch::CountSketch a(7, 24, 1), b(9, 24, 1);
  EXPECT_DEATH(a.Merge(b), "LPS_CHECK");
}

TEST(MergeDeathTest, CrossTypeMergeChecks) {
  sketch::CountSketch a(7, 24, 1);
  sketch::CountMin b(7, 24, 1);
  EXPECT_DEATH(a.Merge(b), "LPS_CHECK");
}

TEST(MergeDeathTest, SamplerParamMismatchChecks) {
  core::L0Sampler a({kN, 0.25, 0, 1, false});
  core::L0Sampler b({kN, 0.25, 0, 2, false});
  EXPECT_DEATH(a.Merge(b), "LPS_CHECK");
}

}  // namespace
}  // namespace lps
