// The unified public API: SketchSpec construction and QueryResult
// dispatch.
//
// Part 1 — the MakeSketch registry: total over every SketchKind, and a
// faithful round-trip through SpecOf for the query-facing families —
// MakeSketch(SpecOf(s)) must build an identically-seeded replica of s
// (the ParallelPipeline replica contract), which this test verifies the
// strongest possible way: feed both the same stream and demand
// bit-identical serialized state. Determinism makes that hold even for
// the real-scaled families — identical construction plus identical
// updates is identical arithmetic.
//
// Part 2 — Query(sketch) -> QueryResult: one dispatch point answering
// every queryable kind with the right tag, ToText rendering the
// historical CLI lines, and the wire encoding round-tripping exactly
// (the lps_serve protocol ships these bytes).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/lps.h"

namespace lps {
namespace {

constexpr uint64_t kN = 2048;

stream::UpdateStream TestStream() {
  stream::UpdateStream stream;
  for (uint64_t i = 0; i < 1500; ++i) {
    stream.push_back({(i * 37) % kN, int64_t(1 + i % 3)});
  }
  // A planted heavy coordinate and a deletion.
  for (int i = 0; i < 400; ++i) stream.push_back({7, +5});
  stream.push_back({11, -3});
  return stream;
}

std::vector<uint64_t> StateOf(const LinearSketch& sketch, size_t* bits) {
  BitWriter writer;
  sketch.Serialize(&writer);
  *bits = writer.bit_count();
  return writer.words();
}

TEST(SketchSpecTest, MakeSketchCoversEveryKind) {
  for (uint32_t k = 1; k <= 21; ++k) {
    const auto kind = static_cast<SketchKind>(k);
    SketchSpec spec;
    spec.kind = kind;
    spec.n = kN;
    spec.seed = 99;
    auto sketch = MakeSketch(spec);
    ASSERT_NE(sketch, nullptr) << SketchKindName(kind);
    EXPECT_EQ(sketch->kind(), kind) << SketchKindName(kind);
  }
}

TEST(SketchSpecTest, UnknownKindYieldsNull) {
  SketchSpec spec;
  spec.kind = static_cast<SketchKind>(200);
  EXPECT_EQ(MakeSketch(spec), nullptr);
}

TEST(SketchSpecTest, SerializationRoundTrips) {
  SketchSpec spec;
  spec.kind = SketchKind::kLpSampler;
  spec.n = 123456;
  spec.p = 1.5;
  spec.eps = 0.125;
  spec.delta = 0.0625;
  spec.phi = 0.03;
  spec.rows = 17;
  spec.buckets = 96;
  spec.s = 11;
  spec.repetitions = 9;
  spec.seed = 0xDEADBEEF12345678ull;
  BitWriter writer;
  SerializeSpec(spec, &writer);
  BitReader reader(writer);
  EXPECT_EQ(DeserializeSpec(&reader), spec);
}

TEST(SketchSpecTest, KindNamesInvert) {
  for (uint32_t k = 1; k <= 21; ++k) {
    const auto kind = static_cast<SketchKind>(k);
    auto parsed = SketchKindFromName(SketchKindName(kind));
    ASSERT_TRUE(parsed.ok()) << SketchKindName(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(SketchKindFromName("no_such_sketch").ok());
}

// MakeSketch(SpecOf(s)) is an identically-seeded replica of s: same
// stream in, bit-identical serialized state out.
TEST(SketchSpecTest, SpecOfRoundTripsQueryFacingKinds) {
  const stream::UpdateStream stream = TestStream();
  std::vector<SketchSpec> specs;
  {
    SketchSpec spec;
    spec.kind = SketchKind::kLpSampler;
    spec.n = kN;
    spec.p = 1.0;
    spec.eps = 0.25;
    spec.delta = 0.1;
    spec.seed = 41;
    specs.push_back(spec);
  }
  {
    SketchSpec spec;
    spec.kind = SketchKind::kL0Sampler;
    spec.n = kN;
    spec.delta = 0.1;
    spec.seed = 42;
    specs.push_back(spec);
  }
  {
    SketchSpec spec;
    spec.kind = SketchKind::kCsHeavyHitters;
    spec.n = kN;
    spec.p = 1.0;
    spec.phi = 0.05;
    spec.seed = 43;
    specs.push_back(spec);
  }
  {
    SketchSpec spec;
    spec.kind = SketchKind::kLpNormEstimator;
    spec.n = kN;
    spec.p = 1.0;
    spec.seed = 44;
    specs.push_back(spec);
  }
  {
    SketchSpec spec;
    spec.kind = SketchKind::kDuplicateFinder;
    spec.n = kN;
    spec.delta = 0.1;
    spec.seed = 45;
    specs.push_back(spec);
  }
  for (const SketchSpec& spec : specs) {
    auto original = MakeSketch(spec);
    ASSERT_NE(original, nullptr);
    auto replica = MakeSketch(SpecOf(*original));
    ASSERT_NE(replica, nullptr) << SketchKindName(spec.kind);
    original->UpdateBatch(stream.data(), stream.size());
    replica->UpdateBatch(stream.data(), stream.size());
    size_t original_bits = 0, replica_bits = 0;
    const auto original_state = StateOf(*original, &original_bits);
    const auto replica_state = StateOf(*replica, &replica_bits);
    EXPECT_EQ(original_bits, replica_bits) << SketchKindName(spec.kind);
    EXPECT_EQ(original_state, replica_state) << SketchKindName(spec.kind);
  }
}

TEST(QueryResultTest, SamplerAnswersWithSupportIndex) {
  SketchSpec spec;
  spec.kind = SketchKind::kL0Sampler;
  spec.n = kN;
  spec.delta = 0.05;
  spec.seed = 7;
  auto sketch = MakeSketch(spec);
  const stream::UpdateStream stream = TestStream();
  sketch->UpdateBatch(stream.data(), stream.size());

  stream::ExactVector exact(kN);
  exact.Apply(stream);
  const QueryResult result = Query(*sketch);
  ASSERT_EQ(result.type, QueryResult::Type::kSample) << result.ToText();
  EXPECT_NE(exact[result.index], 0) << result.ToText();
  // The L0 sampler reports the exact recovered value.
  EXPECT_EQ(result.value, double(exact[result.index]));
  EXPECT_EQ(result.ToText(),
            "index " + std::to_string(result.index) + " value " +
                std::to_string(int64_t(result.value)) + "\n");
  EXPECT_EQ(result.ExitCode(), 0);
}

TEST(QueryResultTest, HeavyHittersFindThePlant) {
  SketchSpec spec;
  spec.kind = SketchKind::kCsHeavyHitters;
  spec.n = kN;
  spec.p = 1.0;
  spec.phi = 0.1;
  spec.seed = 3;
  auto sketch = MakeSketch(spec);
  const stream::UpdateStream stream = TestStream();
  sketch->UpdateBatch(stream.data(), stream.size());
  const QueryResult result = Query(*sketch);
  ASSERT_EQ(result.type, QueryResult::Type::kHeavyHitters);
  EXPECT_NE(std::find(result.items.begin(), result.items.end(), 7),
            result.items.end())
      << result.ToText();
  EXPECT_EQ(result.ToText().rfind(std::to_string(result.items.size()) +
                                      " heavy hitters:",
                                  0),
            0u);
}

TEST(QueryResultTest, NormEstimateIsA2Approximation) {
  SketchSpec spec;
  spec.kind = SketchKind::kLpNormEstimator;
  spec.n = kN;
  spec.p = 1.0;
  spec.seed = 5;
  auto sketch = MakeSketch(spec);
  const stream::UpdateStream stream = TestStream();
  sketch->UpdateBatch(stream.data(), stream.size());
  stream::ExactVector exact(kN);
  exact.Apply(stream);
  const QueryResult result = Query(*sketch);
  ASSERT_EQ(result.type, QueryResult::Type::kNorm);
  const double norm = exact.NormP(1.0);
  EXPECT_GE(result.value, 0.5 * norm) << result.ToText();
  EXPECT_LE(result.value, 4.0 * norm) << result.ToText();
}

TEST(QueryResultTest, DuplicateFinderAnswersWithALetter) {
  SketchSpec spec;
  spec.kind = SketchKind::kDuplicateFinder;
  spec.n = 256;
  spec.delta = 0.05;
  spec.seed = 11;
  auto finder = MakeSketch(spec);
  // n + 1 letters over [0, n): every letter once, letter 13 twice.
  for (uint64_t i = 0; i < 256; ++i) finder->Update(i, +1);
  finder->Update(13, +1);
  const QueryResult result = Query(*finder);
  ASSERT_EQ(result.type, QueryResult::Type::kDuplicate) << result.ToText();
  EXPECT_EQ(result.index, 13u);
  EXPECT_EQ(result.ToText(), "duplicate 13\n");
}

TEST(QueryResultTest, UnqueryableKindReportsUnsupported) {
  SketchSpec spec;
  spec.kind = SketchKind::kCountSketch;
  spec.rows = 5;
  spec.buckets = 64;
  auto sketch = MakeSketch(spec);
  const QueryResult result = Query(*sketch);
  EXPECT_EQ(result.type, QueryResult::Type::kUnsupported);
  EXPECT_EQ(result.ToText(), "no query for kind 'count_sketch'\n");
  EXPECT_EQ(result.ExitCode(), 2);
  EXPECT_FALSE(result.ok());
}

TEST(QueryResultTest, WireEncodingRoundTripsExactly) {
  std::vector<QueryResult> results;
  {
    QueryResult r;
    r.type = QueryResult::Type::kSample;
    r.kind = SketchKind::kLpSampler;
    r.index = 1234567;
    r.value = -3.25;
    results.push_back(r);
  }
  {
    QueryResult r;
    r.type = QueryResult::Type::kHeavyHitters;
    r.kind = SketchKind::kCsHeavyHitters;
    r.items = {1, 5, 9, 1ull << 40};
    results.push_back(r);
  }
  {
    QueryResult r;
    r.type = QueryResult::Type::kFailed;
    r.kind = SketchKind::kL0Sampler;
    r.message = "FAILED: no one-sparse row";
    results.push_back(r);
  }
  for (const QueryResult& result : results) {
    BitWriter writer;
    SerializeQueryResult(result, &writer);
    BitReader reader(writer);
    const QueryResult decoded = DeserializeQueryResult(&reader);
    EXPECT_EQ(decoded, result);
    EXPECT_EQ(decoded.ToText(), result.ToText());
  }
}

}  // namespace
}  // namespace lps
