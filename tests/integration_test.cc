// End-to-end scenarios exercising several subsystems together, mirroring
// how a downstream user would compose the library.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/core/l0_sampler.h"
#include "src/core/lp_sampler.h"
#include "src/duplicates/duplicates.h"
#include "src/heavy/heavy_hitters.h"
#include "src/norm/lp_norm.h"
#include "src/recovery/sparse_recovery.h"
#include "src/stats/stats.h"
#include "src/stream/exact_vector.h"
#include "src/stream/generators.h"

namespace lps {
namespace {

// A full pipeline on one shared stream: norm estimation, L1 sampling, heavy
// hitters and exact ground truth must tell one consistent story.
TEST(Integration, OneStreamManyConsumers) {
  const uint64_t n = 1024;
  const auto stream = stream::PlantedHeavyHitters(n, 3, 500, 200, true, 42);
  stream::ExactVector x(n);
  x.Apply(stream);

  core::LpSamplerParams sp;
  sp.n = n;
  sp.p = 1.0;
  sp.eps = 0.5;
  sp.repetitions = 24;
  sp.seed = 1;
  core::LpSampler sampler(sp);

  heavy::CsHeavyHitters::Params hp;
  hp.n = n;
  hp.p = 2.0;
  hp.phi = 0.3;
  hp.seed = 2;
  heavy::CsHeavyHitters hh(hp);

  norm::LpNormEstimator norm1(1.0, 128, 3);

  for (const auto& u : stream) {
    const double d = static_cast<double>(u.delta);
    sampler.Update(u.index, d);
    hh.Update(u.index, d);
    norm1.Update(u.index, d);
  }

  // Norm estimate brackets the truth.
  const double r = norm1.Estimate2Approx();
  EXPECT_GE(r, 0.9 * x.NormP(1.0));
  EXPECT_LE(r, 2.2 * x.NormP(1.0));

  // Heavy set is valid against ground truth.
  EXPECT_TRUE(heavy::ValidateHeavySet(x, 2.0, 0.3, hh.Query()).valid);

  // The sample lands on a non-zero coordinate.
  auto res = sampler.Sample();
  ASSERT_TRUE(res.ok());
  EXPECT_NE(x[res.value().index], 0);
}

// The L0 sampler and sparse recovery agree on a churned stream: after heavy
// insert/delete traffic, both see exactly the surviving support.
TEST(Integration, ChurnedStreamL0AndRecoveryAgree) {
  const uint64_t n = 4096;
  const auto stream = stream::InsertDeleteChurn(n, 1000, 6, 99);
  stream::ExactVector x(n);
  x.Apply(stream);
  ASSERT_EQ(x.L0(), 6u);

  recovery::SparseRecovery recovery(n, 8, 5);
  core::L0Sampler sampler({n, 0.1, 0, 6, false});
  for (const auto& u : stream) {
    recovery.Update(u.index, u.delta);
    sampler.Update(u.index, u.delta);
  }
  auto recovered = recovery.Recover();
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered.value().size(), 6u);
  auto sample = sampler.Sample();
  ASSERT_TRUE(sample.ok());
  bool in_recovered = false;
  for (const auto& e : recovered.value()) {
    if (e.index == sample.value().index) in_recovered = true;
  }
  EXPECT_TRUE(in_recovered);
}

// Theorem 3 end-to-end through the reduction helper: letter stream ->
// update stream -> sampler-based duplicate.
TEST(Integration, DuplicatesViaReductionStream) {
  const uint64_t n = 512;
  const auto letters = stream::DuplicateStream(n, 8, 7);
  const auto updates = stream::DuplicatesReduction(n, letters);
  stream::ExactVector x(n);
  x.Apply(updates);
  EXPECT_EQ(x.Total(), static_cast<int64_t>(letters.size()) -
                           static_cast<int64_t>(n));

  duplicates::DuplicateFinder finder({n, 0.1, 0, 8});
  for (uint64_t l : letters) finder.ProcessItem(l);
  auto res = finder.Find();
  ASSERT_TRUE(res.ok());
  EXPECT_GE(x[res.value()], 1);  // letter occurs at least twice
}

// Samplers must stay well-behaved when the stream is fed twice (sketches
// are linear: doubling the vector doubles estimates but fixes the support).
TEST(Integration, LinearityUnderStreamRepetition) {
  const uint64_t n = 256;
  const auto stream = stream::SparseVector(n, 20, 100, 11);
  stream::ExactVector x(n);
  x.Apply(stream);

  core::L0Sampler once({n, 0.2, 0, 12, false});
  core::L0Sampler twice({n, 0.2, 0, 12, false});
  for (const auto& u : stream) once.Update(u.index, u.delta);
  for (int rep = 0; rep < 2; ++rep) {
    for (const auto& u : stream) twice.Update(u.index, u.delta);
  }
  auto s1 = once.Sample();
  auto s2 = twice.Sample();
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  // Same seed, same membership pattern: the same index fires, with doubled
  // value.
  EXPECT_EQ(s1.value().index, s2.value().index);
  EXPECT_DOUBLE_EQ(2 * s1.value().estimate, s2.value().estimate);
}

// Cross-checking sampler families: on 0/±1 vectors (Theorem 8's hard
// instances) the L1 sampler, L0 sampler and ground truth agree on support.
TEST(Integration, SignVectorAllSamplersAgree) {
  const uint64_t n = 512;
  const auto stream = stream::SignVector(n, 50, 13);
  stream::ExactVector x(n);
  x.Apply(stream);

  core::LpSamplerParams sp;
  sp.n = n;
  sp.p = 1.0;
  sp.eps = 0.5;
  sp.repetitions = 24;
  sp.seed = 14;
  core::LpSampler l1(sp);
  core::L0Sampler l0({n, 0.2, 0, 15, false});
  for (const auto& u : stream) {
    l1.Update(u.index, static_cast<double>(u.delta));
    l0.Update(u.index, u.delta);
  }
  auto r1 = l1.Sample();
  auto r0 = l0.Sample();
  if (r1.ok()) {
    EXPECT_NE(x[r1.value().index], 0);
  }
  ASSERT_TRUE(r0.ok());
  EXPECT_NE(x[r0.value().index], 0);
  EXPECT_EQ(static_cast<int64_t>(r0.value().estimate), x[r0.value().index]);
}

}  // namespace
}  // namespace lps
