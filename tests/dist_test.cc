// The distributed aggregation tier, over real loopback sockets.
//
// Every test assembles a real topology — workers (in-process or forked)
// shipping epoch deltas over TCP into an lps_serve-shaped aggregator —
// and holds it to the tier's core contract, solo-equivalence:
//
//   * the 21-kind sweep: the same stream partitioned across {1, 2, 4}
//     workers folds to serialized state BIT-IDENTICAL to a solo sketch
//     for every integer-counter kind, and size-identical plus
//     query-equivalent for the floating-point-counter kinds (whose
//     sums the fold reassociates);
//   * the planted-stream topology matrix: workers x local pipeline
//     shards/threads x epoch interval (aligned and unaligned), each
//     cell byte-compared against solo;
//   * a 2-level fan-in tree (workers -> combiners -> root) landing the
//     same bytes as the flat fold, by linearity;
//   * delivery accounting: duplicate sequences ack without re-folding,
//     skipped sequences fold-but-count-gaps, a session restart without
//     a final marker is a gap;
//   * hostile epochs (lying parameters, mismatched kinds, truncated
//     state) are error responses that advance nothing — never aborts;
//   * forked REAL processes: aggregator and workers in separate
//     processes over loopback, including a kill -9 mid-stream whose
//     lane is reported interrupted while completed epochs keep serving
//     (gated off under TSan, which cannot follow fork).
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/dist/aggregator.h"
#include "src/dist/planted.h"
#include "src/dist/worker.h"
#include "src/lps.h"
#include "src/server/client.h"
#include "src/server/server.h"
#include "src/stream/generators.h"

namespace lps::dist {
namespace {

using server::Client;
using server::DistStats;
using server::EpochAck;
using server::EpochBlob;
using server::SketchConfig;
using server::SnapshotBlob;

// ------------------------------------------------------------- fixtures --

/// A root aggregator endpoint: Server transport + Aggregator extension
/// folding into the server's registry, on an ephemeral loopback port.
struct Node {
  // Declared before `server`: the server's reader threads call into the
  // aggregator, so it must be destroyed after the server joins them.
  std::unique_ptr<Aggregator> aggregator;
  std::unique_ptr<server::Server> server;

  int port() const { return server->port(); }
  void Stop() {
    server->Stop();
    aggregator->Stop();
  }
};

Node StartRoot() {
  Node node;
  server::Server::Options options;
  options.port = 0;
  node.server = std::make_unique<server::Server>(options);
  Aggregator::Options dist_options;
  dist_options.registry = &node.server->registry();
  node.aggregator = std::make_unique<Aggregator>(dist_options);
  node.server->set_extension(node.aggregator.get());
  EXPECT_TRUE(node.server->Start().ok());
  EXPECT_TRUE(node.aggregator->Start().ok());
  return node;
}

/// An interior combiner: folds child epochs locally and ships the
/// combined delta to `upstream_port` under its own session lane.
Node StartCombiner(int upstream_port, const std::string& node_id,
                   uint64_t session) {
  Node node;
  server::Server::Options options;
  options.port = 0;
  node.server = std::make_unique<server::Server>(options);
  Aggregator::Options dist_options;
  dist_options.upstream_port = upstream_port;
  dist_options.node_id = node_id;
  dist_options.upstream_session = session;
  dist_options.flush_interval_ms = 5;
  node.aggregator = std::make_unique<Aggregator>(dist_options);
  node.server->set_extension(node.aggregator.get());
  EXPECT_TRUE(node.server->Start().ok());
  EXPECT_TRUE(node.aggregator->Start().ok());
  return node;
}

Client MustConnect(int port) {
  auto client = Client::Connect("127.0.0.1", port);
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return std::move(client.value());
}

/// One worker's life: take every `stride`-th update starting at
/// `offset`, push in odd-sized batches (partial tails exercised), ship
/// every epoch, finish. EXPECTs instead of ASSERTs: runs on non-main
/// threads.
void RunWorker(int port, const SketchConfig& config,
               const std::string& tenant, const std::string& key,
               const std::vector<stream::Update>& updates, size_t offset,
               size_t stride, uint64_t epoch_interval,
               const std::string& worker_id, uint64_t session) {
  Worker::Options options;
  options.uplink.port = port;
  options.tenant = tenant;
  options.key = key;
  options.config = config;
  options.epoch_interval = epoch_interval;
  options.worker_id = worker_id;
  options.session = session;
  auto built = Worker::Create(std::move(options));
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  if (!built.ok()) return;
  Worker& worker = *built.value();
  std::vector<stream::Update> mine;
  for (size_t i = offset; i < updates.size(); i += stride) {
    mine.push_back(updates[i]);
  }
  for (size_t at = 0; at < mine.size(); at += 193) {
    const size_t len = std::min<size_t>(193, mine.size() - at);
    const Status pushed = worker.Push(mine.data() + at, len);
    EXPECT_TRUE(pushed.ok()) << pushed.ToString();
    if (!pushed.ok()) return;
  }
  const Status finished = worker.Finish();
  EXPECT_TRUE(finished.ok()) << finished.ToString();
}

/// W concurrent workers partitioning `updates` round-robin into the
/// aggregator at `port`; returns once every worker finished.
void RunWorkers(int port, const SketchConfig& config,
                const std::string& tenant, const std::string& key,
                const std::vector<stream::Update>& updates, int workers,
                uint64_t epoch_interval) {
  std::vector<std::thread> threads;
  threads.reserve(size_t(workers));
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      RunWorker(port, config, tenant, key, updates, size_t(w),
                size_t(workers), epoch_interval, "w" + std::to_string(w),
                1000 + uint64_t(w));
    });
  }
  for (auto& thread : threads) thread.join();
}

/// The oracle: the whole stream through one local sketch.
std::unique_ptr<LinearSketch> Solo(const SketchSpec& spec,
                                   const std::vector<stream::Update>& updates) {
  auto sketch = MakeSketch(spec);
  sketch->UpdateBatch(updates.data(), updates.size());
  return sketch;
}

struct State {
  std::vector<uint64_t> words;
  size_t bits = 0;
};

State Serialized(const LinearSketch& sketch) {
  BitWriter writer;
  sketch.Serialize(&writer);
  return {writer.words(), writer.bit_count()};
}

/// The kinds whose counters are floating point (the StableSketch family
/// of tests/kernels_test.cc, plus the moment estimator, whose inner
/// Lq samplers are Cauchy sketches). Epoch folding REASSOCIATES their
/// FP sums — (epoch1 + epoch2) + epoch3 instead of one running sum — so
/// even a single epoch-shipping worker lands state that differs from
/// solo in low-order mantissa bits. These are query-equivalent under
/// the fold; every integer-counter kind is bit-identical.
bool FloatingPointFold(SketchKind kind) {
  switch (kind) {
    case SketchKind::kStableSketch:
    case SketchKind::kLpNormEstimator:
    case SketchKind::kLpSampler:
    case SketchKind::kAkoSampler:
    case SketchKind::kCsHeavyHitters:
    case SketchKind::kDuplicateFinder:
    case SketchKind::kSparseDuplicateFinder:
    case SketchKind::kPositiveFinder:
    case SketchKind::kMomentEstimator:
      return true;
    default:
      return false;
  }
}

SketchConfig SweepConfig(SketchKind kind) {
  SketchConfig config;
  config.spec.kind = kind;
  config.spec.n = 1 << 10;
  config.spec.rows = 5;
  config.spec.buckets = 32;
  config.spec.s = 8;
  config.spec.repetitions = 3;
  config.spec.seed = 77;
  return config;
}

/// A PlantedConfig delta sketch over `updates[from, to)` serialized as
/// an epoch blob — the hand-shipping unit of the accounting tests.
EpochBlob PlantedDelta(const std::vector<stream::Update>& updates,
                       size_t from, size_t to, uint64_t session,
                       uint64_t seq, bool final_epoch = false) {
  EpochBlob blob;
  blob.tenant = "dist";
  blob.key = "s";
  blob.worker_id = "w0";
  blob.session = session;
  blob.seq = seq;
  blob.count = to - from;
  blob.final_epoch = final_epoch;
  blob.config = PlantedConfig();
  auto sketch = MakeSketch(blob.config.spec);
  sketch->UpdateBatch(updates.data() + from, to - from);
  const State state = Serialized(*sketch);
  blob.state_words = state.words;
  blob.state_bits = state.bits;
  return blob;
}

std::vector<stream::Update> PlantedStream(size_t total) {
  std::vector<stream::Update> updates;
  updates.reserve(total);
  for (size_t position = 0; position < total; ++position) {
    updates.push_back(PlantedUpdate(position, kPlantedUniverse));
  }
  return updates;
}

// ------------------------------------------------- 21-kind solo sweep --

// The tier's central claim, per kind: partition one stream across W
// epoch-shipping workers, fold the deltas over TCP, and the aggregated
// prefix sketch is THE SAME SKETCH a solo ingest builds — bit-identical
// serialized state for integer-counter kinds at every worker count,
// size-identical for the floating-point family (whose query
// equivalence is pinned separately below).
TEST(DistSweep, AllKindsMatchSoloAtEveryWorkerCount) {
  const auto stream = stream::UniformTurnstile(1 << 10, 6000, 50, 9);
  constexpr uint32_t kLastKind =
      static_cast<uint32_t>(SketchKind::kMomentEstimator);
  for (int workers : {1, 2, 4}) {
    Node root = StartRoot();
    for (uint32_t k = 1; k <= kLastKind; ++k) {
      RunWorkers(root.port(), SweepConfig(static_cast<SketchKind>(k)),
                 "sweep", std::to_string(k), stream, workers, 1024);
    }
    Client client = MustConnect(root.port());
    for (uint32_t k = 1; k <= kLastKind; ++k) {
      const auto kind = static_cast<SketchKind>(k);
      auto snapshot = client.Snapshot("sweep", std::to_string(k));
      ASSERT_TRUE(snapshot.ok())
          << SketchKindName(kind) << ": " << snapshot.status().ToString();
      EXPECT_EQ(snapshot->updates_seen, stream.size())
          << SketchKindName(kind) << " at " << workers << " workers";
      const State solo = Serialized(*Solo(SweepConfig(kind).spec, stream));
      if (FloatingPointFold(kind)) {
        // Query-equivalent family: FP fold order differs across worker
        // partitions, but the layout (and so the size) must not.
        EXPECT_EQ(snapshot->state_bits, solo.bits)
            << SketchKindName(kind) << " at " << workers << " workers";
      } else {
        EXPECT_TRUE(snapshot->state_bits == solo.bits &&
                    snapshot->state_words == solo.words)
            << SketchKindName(kind) << " not bit-identical to solo at "
            << workers << " workers";
      }
    }
    root.Stop();
  }
}

// The FP side of the sweep: the norm estimate a distributed fold
// produces differs from solo only by floating-point reassociation.
TEST(DistSweep, StableFamilyQueryEquivalentToSolo) {
  const auto stream = stream::UniformTurnstile(1 << 10, 8000, 50, 13);
  const SketchConfig config = SweepConfig(SketchKind::kLpNormEstimator);
  Node root = StartRoot();
  RunWorkers(root.port(), config, "fp", "norm", stream, 4, 1024);
  Client client = MustConnect(root.port());
  auto distributed = client.Query("fp", "norm");
  ASSERT_TRUE(distributed.ok()) << distributed.status().ToString();
  const QueryResult solo = lps::Query(*Solo(config.spec, stream));
  ASSERT_EQ(distributed->type, solo.type);
  EXPECT_NEAR(distributed->value, solo.value,
              1e-6 * std::max(1.0, std::abs(solo.value)))
      << distributed->ToText();
  root.Stop();
}

// --------------------------------------------- planted topology matrix --

// Workers x local pipeline topology x epoch interval (aligned with the
// window checkpoint and deliberately not): every cell must land the
// planted stream bit-identically, because epoch deltas are linear no
// matter how they were cut.
TEST(DistTopology, FlatMatrixBitIdenticalToSolo) {
  const size_t total = 16384;
  const auto stream = PlantedStream(total);
  const SketchConfig base = PlantedConfig();
  const State solo = Serialized(*Solo(base.spec, stream));
  const QueryResult solo_answer = lps::Query(*Solo(base.spec, stream));
  struct Topology {
    int32_t shards;
    int32_t threads;
  };
  for (int workers : {1, 2, 4}) {
    for (const Topology& topology : {Topology{1, 0}, Topology{2, 2}}) {
      for (uint64_t epoch : {uint64_t{512}, uint64_t{1000}}) {
        Node root = StartRoot();
        SketchConfig config = base;
        config.shards = topology.shards;
        config.threads = topology.threads;
        RunWorkers(root.port(), config, "dist", "s", stream, workers, epoch);
        Client client = MustConnect(root.port());
        auto snapshot = client.Snapshot("dist", "s");
        ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
        EXPECT_EQ(snapshot->updates_seen, total);
        EXPECT_TRUE(snapshot->state_bits == solo.bits &&
                    snapshot->state_words == solo.words)
            << workers << " workers, " << topology.shards << " shards, "
            << topology.threads << " threads, epoch " << epoch
            << " not bit-identical to solo";
        auto answer = client.Query("dist", "s");
        ASSERT_TRUE(answer.ok());
        EXPECT_EQ(*answer, solo_answer);
        EXPECT_NE(std::find(answer->items.begin(), answer->items.end(),
                            kPlantedHeavy),
                  answer->items.end())
            << answer->ToText();
        root.Stop();
      }
    }
  }
}

// Workers -> combiners -> root: interior nodes fold their children and
// ship ONE combined delta stream upstream, and the root still lands the
// exact solo bytes — fold-of-folds is the same sum.
TEST(DistTopology, TwoLevelTreeBitIdenticalToSolo) {
  const size_t total = 16384;
  const auto stream = PlantedStream(total);
  const SketchConfig config = PlantedConfig();
  const State solo = Serialized(*Solo(config.spec, stream));

  Node root = StartRoot();
  Node left = StartCombiner(root.port(), "c0", 501);
  Node right = StartCombiner(root.port(), "c1", 502);
  // 4 workers, 2 per combiner, together covering the stream: worker w
  // takes positions w, w+4, w+8, ...
  std::vector<std::thread> threads;
  for (int w = 0; w < 4; ++w) {
    const int port = (w < 2 ? left : right).port();
    threads.emplace_back([&, w, port] {
      RunWorker(port, config, "dist", "s", stream, size_t(w), 4, 512,
                "w" + std::to_string(w), 1000 + uint64_t(w));
    });
  }
  for (auto& thread : threads) thread.join();

  // The combiner flush is asynchronous: poll the root until the final
  // markers propagated (every combiner lane finished) and all updates
  // folded, then demand bit-identity.
  Client client = MustConnect(root.port());
  bool settled = false;
  for (int attempt = 0; attempt < 400 && !settled; ++attempt) {
    auto stats = client.FetchDistStats();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    settled = stats->updates_folded == total && !stats->workers.empty() &&
              std::all_of(stats->workers.begin(), stats->workers.end(),
                          [](const server::DistWorkerStats& lane) {
                            return lane.finished;
                          });
    if (!settled) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(settled) << "combiner deltas never settled at the root";

  auto snapshot = client.Snapshot("dist", "s");
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  EXPECT_EQ(snapshot->updates_seen, total);
  EXPECT_TRUE(snapshot->state_bits == solo.bits &&
              snapshot->state_words == solo.words)
      << "tree fold not bit-identical to solo";
  auto stats = client.FetchDistStats();
  ASSERT_TRUE(stats.ok());
  // The root sees the two combiner lanes, not the four workers.
  EXPECT_EQ(stats->workers.size(), 2u);
  EXPECT_EQ(stats->sessions, 2u);
  EXPECT_EQ(stats->gaps, 0u);

  left.Stop();
  right.Stop();
  root.Stop();
}

// ------------------------------------------------ delivery accounting --

TEST(DistDelivery, DuplicateSequencesAckWithoutRefolding) {
  const auto stream = PlantedStream(1024);
  Node root = StartRoot();
  Client client = MustConnect(root.port());

  auto first = client.ShipEpoch(PlantedDelta(stream, 0, 512, 7, 0));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE(first->applied);
  EXPECT_EQ(first->next_seq, 1u);

  // The at-least-once retry: same (session, seq) again. Acked so the
  // sender moves on, NOT folded again.
  auto again = client.ShipEpoch(PlantedDelta(stream, 0, 512, 7, 0));
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->applied);
  EXPECT_EQ(again->next_seq, 1u);

  auto snapshot = client.Snapshot("dist", "s");
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->updates_seen, 512u);
  const State solo =
      Serialized(*Solo(PlantedConfig().spec,
                       {stream.begin(), stream.begin() + 512}));
  EXPECT_TRUE(snapshot->state_bits == solo.bits &&
              snapshot->state_words == solo.words)
      << "duplicate epoch was folded twice";
  root.Stop();
}

TEST(DistDelivery, SkippedSequencesFoldButCountGaps) {
  const auto stream = PlantedStream(1024);
  Node root = StartRoot();
  Client client = MustConnect(root.port());

  ASSERT_TRUE(client.ShipEpoch(PlantedDelta(stream, 0, 512, 7, 0)).ok());
  // Sequences 1 and 2 never arrive; 3 does. Late data beats no data:
  // the delta folds, the two lost epochs are accounted.
  auto skipped = client.ShipEpoch(PlantedDelta(stream, 512, 1024, 7, 3));
  ASSERT_TRUE(skipped.ok());
  EXPECT_TRUE(skipped->applied);
  EXPECT_EQ(skipped->next_seq, 4u);

  auto stats = client.FetchDistStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->gaps, 2u);
  EXPECT_EQ(stats->epochs_folded, 2u);
  auto snapshot = client.Snapshot("dist", "s");
  ASSERT_TRUE(snapshot.ok());
  const State solo = Serialized(*Solo(PlantedConfig().spec, stream));
  EXPECT_TRUE(snapshot->state_bits == solo.bits &&
              snapshot->state_words == solo.words);
  root.Stop();
}

TEST(DistDelivery, SessionRestartWithoutFinalMarkerCountsGap) {
  const auto stream = PlantedStream(1024);
  Node root = StartRoot();
  Client client = MustConnect(root.port());

  // Session 7 folds one epoch and never sends a final marker; the
  // restarted worker presents session 8. The old tail is gone for good.
  ASSERT_TRUE(client.ShipEpoch(PlantedDelta(stream, 0, 512, 7, 0)).ok());
  auto restarted = client.ShipEpoch(PlantedDelta(stream, 512, 1024, 8, 0));
  ASSERT_TRUE(restarted.ok());
  EXPECT_TRUE(restarted->applied);

  auto stats = client.FetchDistStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->sessions, 2u);
  EXPECT_EQ(stats->gaps, 1u);
  ASSERT_EQ(stats->workers.size(), 1u);
  EXPECT_EQ(stats->workers[0].session, 8u);
  root.Stop();
}

TEST(DistDelivery, ShipperResendAfterDisconnectIsIdempotent) {
  const auto stream = PlantedStream(512);
  Node root = StartRoot();

  EpochShipper::Options uplink;
  uplink.port = root.port();
  EpochShipper shipper(uplink);
  const EpochBlob blob = PlantedDelta(stream, 0, 512, 7, 0);
  auto first = shipper.Ship(blob);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE(first->applied);

  // The connection dies after the fold was acked; the shipper's resend
  // over a fresh connection gets the duplicate ack, not a double fold.
  shipper.Disconnect();
  auto resent = shipper.Ship(blob);
  ASSERT_TRUE(resent.ok()) << resent.status().ToString();
  EXPECT_FALSE(resent->applied);

  Client client = MustConnect(root.port());
  auto snapshot = client.Snapshot("dist", "s");
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->updates_seen, 512u);
  root.Stop();
}

// ------------------------------------------------------ hostile epochs --

// Epoch state arrives from the network; every lie must be an error
// response that advances nothing — Merge's parameter CHECK stays
// unreachable from the wire.
TEST(DistHostile, LyingEpochsAreRejectedNotFatal) {
  const auto stream = PlantedStream(1024);
  Node root = StartRoot();
  Client client = MustConnect(root.port());

  {
    // State serialized under a DIFFERENT seed than the config claims:
    // same size, same kind byte, different interior parameters — the
    // Reset-probe comparison catches it.
    EpochBlob blob = PlantedDelta(stream, 0, 512, 7, 0);
    SketchConfig other = PlantedConfig();
    other.spec.seed = 999;
    auto foreign = MakeSketch(other.spec);
    foreign->UpdateBatch(stream.data(), 512);
    const State state = Serialized(*foreign);
    blob.state_words = state.words;
    blob.state_bits = state.bits;
    EXPECT_FALSE(client.ShipEpoch(blob).ok());
  }
  {
    // State of a different KIND than the config declares.
    EpochBlob blob = PlantedDelta(stream, 0, 512, 7, 0);
    SketchSpec other = PlantedConfig().spec;
    other.kind = SketchKind::kCountMin;
    auto foreign = MakeSketch(other);
    const State state = Serialized(*foreign);
    blob.state_words = state.words;
    blob.state_bits = state.bits;
    EXPECT_FALSE(client.ShipEpoch(blob).ok());
  }
  {
    // State truncated to one word while the config demands a full
    // sketch: the size probe rejects it before any Deserialize.
    EpochBlob blob = PlantedDelta(stream, 0, 512, 7, 0);
    blob.state_bits = 64;
    EXPECT_FALSE(client.ShipEpoch(blob).ok());
  }
  {
    // An out-of-range spec must die in validation, not in MakeSketch.
    EpochBlob blob = PlantedDelta(stream, 0, 512, 7, 0);
    blob.config.spec.phi = -3.0;
    EXPECT_FALSE(client.ShipEpoch(blob).ok());
  }
  {
    // A well-framed EPOCH request whose BODY is garbage (one word of
    // 0xFF: the tenant string claims an absurd length): "malformed
    // request body", and the connection keeps serving.
    std::vector<uint8_t> frame = {17, 0, 0, 0,
                                  uint8_t(server::Opcode::kEpoch),
                                  64, 0,  0, 0, 0, 0, 0, 0};
    for (int i = 0; i < 8; ++i) frame.push_back(0xFF);
    ASSERT_TRUE(client.SendRaw(frame).ok());
    auto reply = client.ReadReply();
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->first, server::kStatusError);
  }

  // None of those advanced the lane: sequence 0 is still open, the
  // connection still serves, and a valid epoch folds normally.
  auto valid = client.ShipEpoch(PlantedDelta(stream, 0, 512, 7, 0));
  ASSERT_TRUE(valid.ok()) << valid.status().ToString();
  EXPECT_TRUE(valid->applied);
  EXPECT_EQ(valid->next_seq, 1u);
  auto stats = client.FetchDistStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->epochs_folded, 1u);
  root.Stop();
}

// -------------------------------------------------- forked processes --

// ThreadSanitizer cannot follow fork() into children that keep running
// threads; the real-process topologies compile out under TSan (the CI
// TSan job still runs every in-process test above).
#if defined(__SANITIZE_THREAD__)
#define LPS_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define LPS_UNDER_TSAN 1
#endif
#endif

#ifndef LPS_UNDER_TSAN

/// Forks an aggregator daemon (Server + root Aggregator) and returns
/// its pid and bound port through the out-params. The child never
/// returns into gtest.
void ForkAggregator(pid_t* pid, int* port) {
  int ports[2];
  ASSERT_EQ(::pipe(ports), 0);
  *pid = ::fork();
  ASSERT_GE(*pid, 0);
  if (*pid == 0) {
    ::close(ports[0]);
    server::Server::Options options;
    options.port = 0;
    server::Server daemon(options);
    Aggregator::Options dist_options;
    dist_options.registry = &daemon.registry();
    Aggregator aggregator(dist_options);
    daemon.set_extension(&aggregator);
    if (!daemon.Start().ok()) ::_exit(3);
    const int bound = daemon.port();
    if (::write(ports[1], &bound, sizeof(bound)) != ssize_t(sizeof(bound))) {
      ::_exit(4);
    }
    for (;;) ::pause();
  }
  ::close(ports[1]);
  ASSERT_EQ(::read(ports[0], port, sizeof(*port)), ssize_t(sizeof(*port)));
  ::close(ports[0]);
}

/// Forks one worker process covering `offset mod stride` of the planted
/// stream; `throttle_us` > 0 slows it down so a kill can catch it
/// mid-stream. The child _exits 0 on success.
pid_t ForkWorker(int port, size_t total, size_t offset, size_t stride,
                 uint64_t epoch_interval, uint64_t throttle_us) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  Worker::Options options;
  options.uplink.port = port;
  options.tenant = "dist";
  options.key = "s";
  options.config = PlantedConfig();
  options.epoch_interval = epoch_interval;
  options.worker_id = "w" + std::to_string(offset);
  options.session = 1000 + uint64_t(offset);
  auto built = Worker::Create(std::move(options));
  if (!built.ok()) ::_exit(5);
  std::vector<stream::Update> updates;
  for (size_t position = offset; position < total; position += stride) {
    updates.push_back(PlantedUpdate(position, kPlantedUniverse));
    if (updates.size() == 256) {
      if (!built.value()->Push(updates).ok()) ::_exit(6);
      updates.clear();
      if (throttle_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(throttle_us));
      }
    }
  }
  if (!updates.empty() && !built.value()->Push(updates).ok()) ::_exit(6);
  if (!built.value()->Finish().ok()) ::_exit(7);
  ::_exit(0);
}

TEST(DistProcesses, ForkedWorkersBitIdenticalToSoloAcrossWorkerCounts) {
  const size_t total = 16384;
  const auto stream = PlantedStream(total);
  const State solo = Serialized(*Solo(PlantedConfig().spec, stream));
  for (size_t workers : {size_t{1}, size_t{2}, size_t{4}}) {
    pid_t aggregator = 0;
    int port = 0;
    ForkAggregator(&aggregator, &port);
    std::vector<pid_t> children;
    for (size_t w = 0; w < workers; ++w) {
      children.push_back(ForkWorker(port, total, w, workers, 2048, 0));
    }
    for (pid_t child : children) {
      int status = 0;
      ASSERT_EQ(::waitpid(child, &status, 0), child);
      EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
          << "worker exited " << status << " at " << workers << " workers";
    }
    Client client = MustConnect(port);
    auto snapshot = client.Snapshot("dist", "s");
    ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
    EXPECT_EQ(snapshot->updates_seen, total);
    EXPECT_TRUE(snapshot->state_bits == solo.bits &&
                snapshot->state_words == solo.words)
        << workers << " forked workers not bit-identical to solo";
    ::kill(aggregator, SIGKILL);
    int status = 0;
    ::waitpid(aggregator, &status, 0);
  }
}

TEST(DistProcesses, KilledWorkerReportsGapAndCompletedEpochsKeepServing) {
  pid_t aggregator = 0;
  int port = 0;
  ForkAggregator(&aggregator, &port);

  // A fast worker covers half the stream and finishes; a throttled one
  // is SIGKILLed mid-stream, leaving the aggregator a lane that
  // disconnected without its final marker.
  const pid_t fast = ForkWorker(port, 32768, 0, 2, 4096, 0);
  const pid_t slow = ForkWorker(port, 1 << 22, 1, 2, 4096, 3000);
  int status = 0;
  ASSERT_EQ(::waitpid(fast, &status, 0), fast);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  // Let the slow worker land at least one epoch before the kill.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  ::kill(slow, SIGKILL);
  ::waitpid(slow, &status, 0);

  Client client = MustConnect(port);
  bool interrupted = false;
  DistStats stats;
  for (int attempt = 0; attempt < 200 && !interrupted; ++attempt) {
    auto fetched = client.FetchDistStats();
    ASSERT_TRUE(fetched.ok()) << fetched.status().ToString();
    stats = std::move(fetched.value());
    interrupted = stats.interrupted > 0;
    if (!interrupted) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  EXPECT_TRUE(interrupted) << "killed worker never reported as interrupted";

  // Degraded, not down: everything folded before the kill still serves.
  auto answer = client.Query("dist", "s");
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_NE(std::find(answer->items.begin(), answer->items.end(),
                      kPlantedHeavy),
            answer->items.end())
      << answer->ToText();
  EXPECT_GE(stats.epochs_folded, 8u);  // the fast worker's full run

  ::kill(aggregator, SIGKILL);
  ::waitpid(aggregator, &status, 0);
}

#endif  // !LPS_UNDER_TSAN

}  // namespace
}  // namespace lps::dist
