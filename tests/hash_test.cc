#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/field/gf61.h"
#include "src/hash/kwise.h"

namespace lps::hash {
namespace {

TEST(KWiseHash, DeterministicPerSeed) {
  KWiseHash a(4, 1), b(4, 1), c(4, 2);
  for (uint64_t key = 0; key < 100; ++key) {
    EXPECT_EQ(a.Eval(key), b.Eval(key));
  }
  int diffs = 0;
  for (uint64_t key = 0; key < 100; ++key) {
    diffs += a.Eval(key) != c.Eval(key);
  }
  EXPECT_GT(diffs, 95);
}

TEST(KWiseHash, RangeBounds) {
  KWiseHash h(2, 3);
  for (uint64_t m : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (uint64_t key = 0; key < 500; ++key) {
      EXPECT_LT(h.Range(key, m), m);
    }
  }
}

TEST(KWiseHash, RangeIsRoughlyUniform) {
  KWiseHash h(2, 5);
  const uint64_t m = 16;
  std::vector<int> counts(m, 0);
  const int keys = 64000;
  for (uint64_t key = 0; key < keys; ++key) ++counts[h.Range(key, m)];
  const double expected = static_cast<double>(keys) / m;
  for (uint64_t b = 0; b < m; ++b) {
    EXPECT_NEAR(counts[b], expected, 6 * std::sqrt(expected)) << "bucket " << b;
  }
}

TEST(KWiseHash, SignIsBalanced) {
  KWiseHash h(2, 7);
  int sum = 0;
  const int keys = 100000;
  for (uint64_t key = 0; key < keys; ++key) sum += h.Sign(key);
  EXPECT_LT(std::abs(sum), 6 * std::sqrt(keys));
}

TEST(KWiseHash, SignProductsUncorrelated) {
  // Pairwise independence implies E[g(a) g(b)] = 0 for a != b. The
  // expectation is over the *draw of the function*, so each product must
  // come from an independent hash (within one pairwise function, products
  // at many pairs are mutually correlated and do not concentrate).
  int64_t sum = 0;
  const int pairs = 4000;
  for (uint64_t k = 0; k < pairs; ++k) {
    KWiseHash h(2, 800000 + k);
    sum += h.Sign(2 * k) * h.Sign(2 * k + 1);
  }
  EXPECT_LT(std::abs(sum), 6 * std::sqrt(pairs));
}

TEST(KWiseHash, Uniform01Range) {
  KWiseHash h(3, 9);
  double sum = 0;
  const int keys = 100000;
  for (uint64_t key = 0; key < keys; ++key) {
    const double u = h.Uniform01(key);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
    EXPECT_GT(h.UniformPositive(key), 0.0);
    EXPECT_LE(h.UniformPositive(key), 1.0);
  }
  EXPECT_NEAR(sum / keys, 0.5, 0.01);
}

TEST(KWiseHash, SeedBitsScaleWithK) {
  EXPECT_EQ(KWiseHash(2, 1).SeedBits(), 2u * 61);
  EXPECT_EQ(KWiseHash(8, 1).SeedBits(), 8u * 61);
}

// The scaling factors of Figure 1 are 1/t with t uniform: check the key
// distributional fact Pr[1/t >= T] = 1/T used by precision sampling.
TEST(KWiseHash, InverseScalingTail) {
  KWiseHash h(20, 10);
  const int keys = 200000;
  for (double threshold : {2.0, 10.0, 100.0}) {
    int count = 0;
    for (uint64_t key = 0; key < keys; ++key) {
      if (1.0 / h.UniformPositive(key) >= threshold) ++count;
    }
    const double expected = keys / threshold;
    EXPECT_NEAR(count, expected, 6 * std::sqrt(expected) + 3)
        << "threshold " << threshold;
  }
}

// Empirical k-wise check on a small power: for a 4-wise family the product
// of four distinct signs has mean zero (one product per independent draw).
TEST(KWiseHash, FourWiseSignProducts) {
  int64_t sum = 0;
  const int groups = 4000;
  for (uint64_t k = 0; k < groups; ++k) {
    KWiseHash h(4, 900000 + k);
    sum += h.Sign(4 * k) * h.Sign(4 * k + 1) * h.Sign(4 * k + 2) *
           h.Sign(4 * k + 3);
  }
  EXPECT_LT(std::abs(sum), 6 * std::sqrt(groups));
}

}  // namespace
}  // namespace lps::hash
