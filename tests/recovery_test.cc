#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <vector>

#include "src/recovery/one_sparse.h"
#include "src/recovery/sparse_recovery.h"
#include "src/stream/exact_vector.h"
#include "src/stream/generators.h"
#include "src/util/random.h"
#include "src/util/serialize.h"

namespace lps::recovery {
namespace {

TEST(OneSparse, DetectsZero) {
  OneSparse d(1000, 1);
  EXPECT_TRUE(d.IsZero());
  d.Update(5, 7);
  EXPECT_FALSE(d.IsZero());
  d.Update(5, -7);
  EXPECT_TRUE(d.IsZero());
}

TEST(OneSparse, RecoversSingleton) {
  OneSparse d(1000, 2);
  d.Update(123, -9);
  auto r = d.Recover();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().index, 123u);
  EXPECT_EQ(r.value().value, -9);
}

TEST(OneSparse, AccumulatesUpdatesToOneCoordinate) {
  OneSparse d(1000, 3);
  d.Update(77, 5);
  d.Update(77, -2);
  d.Update(77, 4);
  auto r = d.Recover();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().index, 77u);
  EXPECT_EQ(r.value().value, 7);
}

TEST(OneSparse, RejectsTwoSparse) {
  for (uint64_t seed = 0; seed < 50; ++seed) {
    OneSparse d(1000, seed);
    d.Update(3, 1);
    d.Update(800, 1);
    EXPECT_FALSE(d.Recover().ok()) << "seed " << seed;
  }
}

TEST(OneSparse, RejectsAdversarialCancellation) {
  // s0 = 0 but vector non-zero.
  OneSparse d(1000, 4);
  d.Update(10, 5);
  d.Update(20, -5);
  EXPECT_FALSE(d.IsZero());
  EXPECT_FALSE(d.Recover().ok());
}

TEST(OneSparse, SerializeRoundTrip) {
  OneSparse a(100, 5);
  a.Update(42, 13);
  BitWriter w;
  a.SerializeCounters(&w);
  EXPECT_EQ(w.bit_count(), 3u * 61);
  OneSparse b(100, 5);
  BitReader r(w);
  b.DeserializeCounters(&r);
  auto rec = b.Recover();
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value().index, 42u);
}

TEST(SparseRecovery, ZeroVector) {
  SparseRecovery rec(1000, 4, 1);
  EXPECT_TRUE(rec.IsZero());
  auto r = rec.Recover();
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().empty());
}

TEST(SparseRecovery, CancellingUpdatesAreZero) {
  SparseRecovery rec(1000, 4, 2);
  rec.Update(5, 10);
  rec.Update(900, -3);
  rec.Update(5, -10);
  rec.Update(900, 3);
  EXPECT_TRUE(rec.IsZero());
  EXPECT_TRUE(rec.Recover().value().empty());
}

TEST(SparseRecovery, ExactRecoveryWithNegativeValues) {
  SparseRecovery rec(1 << 20, 5, 3);
  rec.Update(0, -1);          // boundary coordinate
  rec.Update((1 << 20) - 1, 7);  // boundary coordinate
  rec.Update(31337, 100000);
  auto r = rec.Recover();
  ASSERT_TRUE(r.ok());
  const auto& v = r.value();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0].index, 0u);
  EXPECT_EQ(v[0].value, -1);
  EXPECT_EQ(v[1].index, 31337u);
  EXPECT_EQ(v[1].value, 100000);
  EXPECT_EQ(v[2].index, (1u << 20) - 1);
  EXPECT_EQ(v[2].value, 7);
}

TEST(SparseRecovery, DenseDetection) {
  // 4x the sparsity budget: must report DENSE, never a wrong vector.
  for (uint64_t seed = 0; seed < 30; ++seed) {
    SparseRecovery rec(4096, 4, 100 + seed);
    Rng rng(seed);
    for (int j = 0; j < 16; ++j) {
      rec.Update(rng.Below(4096), 1 + static_cast<int64_t>(rng.Below(5)));
    }
    EXPECT_TRUE(rec.Recover().status().IsDense()) << "seed " << seed;
  }
}

TEST(SparseRecovery, BoundaryExactlyAtBudget) {
  // Exactly s non-zeros: still probability-1 exact.
  const uint64_t s = 8;
  SparseRecovery rec(10000, s, 4);
  stream::ExactVector x(10000);
  Rng rng(5);
  for (uint64_t j = 0; j < s; ++j) {
    const uint64_t i = 1000 + 17 * j;
    const int64_t v = static_cast<int64_t>(j) - 4 >= 0
                          ? static_cast<int64_t>(j + 1)
                          : -static_cast<int64_t>(j + 1);
    rec.Update(i, v);
    x.Apply({i, v});
  }
  auto r = rec.Recover();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), s);
  for (const auto& e : r.value()) {
    EXPECT_EQ(e.value, x[e.index]);
  }
}

TEST(SparseRecovery, OneOverBudgetIsDense) {
  const uint64_t s = 8;
  SparseRecovery rec(10000, s, 6);
  for (uint64_t j = 0; j <= s; ++j) rec.Update(100 * (j + 1), 1);
  EXPECT_TRUE(rec.Recover().status().IsDense());
}

TEST(SparseRecovery, SerializeRoundTrip) {
  SparseRecovery a(512, 3, 7);
  a.Update(100, 42);
  a.Update(200, -17);
  BitWriter w;
  a.SerializeCounters(&w);
  EXPECT_EQ(w.bit_count(), (2u * 3 + 2) * 61);
  SparseRecovery b(512, 3, 7);
  BitReader r(w);
  b.DeserializeCounters(&r);
  auto rec = b.Recover();
  ASSERT_TRUE(rec.ok());
  ASSERT_EQ(rec.value().size(), 2u);
  EXPECT_EQ(rec.value()[0].value, 42);
  EXPECT_EQ(rec.value()[1].value, -17);
}

TEST(SparseRecovery, LinearityAcrossParties) {
  // Bob deserializes Alice's measurements and subtracts his own vector:
  // recovery yields the difference (the UR protocol's core step).
  SparseRecovery alice(2048, 6, 8);
  alice.Update(10, 1);
  alice.Update(500, 1);
  alice.Update(700, 1);
  BitWriter w;
  alice.SerializeCounters(&w);
  SparseRecovery bob(2048, 6, 8);
  BitReader r(w);
  bob.DeserializeCounters(&r);
  bob.Update(10, -1);   // shared coordinate cancels
  bob.Update(900, -1);  // bob-only coordinate
  auto rec = bob.Recover();
  ASSERT_TRUE(rec.ok());
  const auto& v = rec.value();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0].index, 500u);
  EXPECT_EQ(v[0].value, 1);
  EXPECT_EQ(v[2].index, 900u);
  EXPECT_EQ(v[2].value, -1);
}

TEST(SparseRecovery, SpaceBitsMatchesLemma5Shape) {
  // O(s log n): (2s + 2) field elements + 2 seeds.
  SparseRecovery rec(1 << 16, 10, 9);
  EXPECT_EQ(rec.SpaceBits(), (2u * 10 + 2) * 61 + 2 * 64);
}

// Property sweep: random s-sparse vectors recovered exactly for every
// (sparsity, universe) combination — Lemma 5's probability-1 claim.
class SparseRecoveryProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SparseRecoveryProperty, RandomSparseVectorsRecoverExactly) {
  const int s = std::get<0>(GetParam());
  const int log_n = std::get<1>(GetParam());
  const uint64_t n = 1ULL << log_n;
  for (uint64_t trial = 0; trial < 5; ++trial) {
    const uint64_t seed = 1000 * static_cast<uint64_t>(s) + trial;
    const auto stream =
        stream::SparseVector(n, static_cast<uint64_t>(s), 1 << 20, seed);
    stream::ExactVector x(n);
    x.Apply(stream);
    SparseRecovery rec(n, static_cast<uint64_t>(s), seed);
    for (const auto& u : stream) rec.Update(u.index, u.delta);
    auto r = rec.Recover();
    ASSERT_TRUE(r.ok()) << "s=" << s << " log_n=" << log_n;
    ASSERT_EQ(r.value().size(), x.L0());
    for (const auto& e : r.value()) {
      EXPECT_EQ(e.value, x[e.index]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SparseRecoveryProperty,
    ::testing::Combine(::testing::Values(1, 2, 4, 8, 16, 32, 64),
                       ::testing::Values(8, 12, 16, 20)));

}  // namespace
}  // namespace lps::recovery
