// Boundary behaviors and failure injection across modules: empty streams,
// extreme coordinates, truncated messages, invalid parameters (which must
// abort loudly via LPS_CHECK rather than corrupt results silently).
#include <gtest/gtest.h>

#include <cstdint>

#include "src/comm/universal_relation.h"
#include "src/core/l0_sampler.h"
#include "src/core/lp_sampler.h"
#include "src/heavy/heavy_hitters.h"
#include "src/recovery/sparse_recovery.h"
#include "src/sketch/count_sketch.h"
#include "src/stream/exact_vector.h"
#include "src/util/serialize.h"

namespace lps {
namespace {

using ::testing::KilledBySignal;

TEST(EdgeCases, LpSamplerRejectsInvalidParameters) {
  core::LpSamplerParams params;
  params.n = 100;
  params.p = 2.0;  // Figure 1 requires p in (0, 2): p = 2 needs an extra log
  params.eps = 0.25;
  params.seed = 1;
  EXPECT_DEATH({ core::LpSampler sampler(params); }, "LPS_CHECK");

  params.p = 1.0;
  params.eps = 1.5;  // eps must be < 1
  EXPECT_DEATH({ core::LpSampler sampler(params); }, "LPS_CHECK");

  params.eps = 0.25;
  params.n = 0;  // empty universe
  EXPECT_DEATH({ core::LpSampler sampler(params); }, "LPS_CHECK");
}

TEST(EdgeCases, UpdatesOutsideUniverseAbort) {
  core::LpSamplerParams params;
  params.n = 16;
  params.p = 1.0;
  params.eps = 0.5;
  params.repetitions = 1;
  params.seed = 1;
  core::LpSampler sampler(params);
  EXPECT_DEATH(sampler.Update(16, 1.0), "LPS_CHECK");

  recovery::SparseRecovery rec(16, 2, 1);
  EXPECT_DEATH(rec.Update(99, 1), "LPS_CHECK");

  core::L0Sampler l0({16, 0.25, 0, 1, false});
  EXPECT_DEATH(l0.Update(16, 1), "LPS_CHECK");
}

TEST(EdgeCases, TruncatedMessageAborts) {
  sketch::CountSketch a(5, 12, 1);
  a.Update(3, 1.0);
  BitWriter w;
  a.SerializeCounters(&w);
  // A reader over a shorter message cannot silently underflow.
  BitWriter small;
  small.WriteBits(0, 7);
  sketch::CountSketch b(5, 12, 1);
  BitReader r(small);
  EXPECT_DEATH(b.DeserializeCounters(&r), "LPS_CHECK");
}

TEST(EdgeCases, UniverseOfSizeOne) {
  // n = 1: the only possible sample is coordinate 0.
  core::L0Sampler sampler({1, 0.25, 0, 3, false});
  sampler.Update(0, 5);
  auto res = sampler.Sample();
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().index, 0u);
  EXPECT_DOUBLE_EQ(res.value().estimate, 5.0);
}

TEST(EdgeCases, MaximalMagnitudeValues) {
  // Values near the poly(n) bound survive recovery exactly.
  const int64_t big = (1LL << 40);
  recovery::SparseRecovery rec(1024, 3, 4);
  rec.Update(0, big);
  rec.Update(1023, -big);
  auto r = rec.Recover();
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().size(), 2u);
  EXPECT_EQ(r.value()[0].value, big);
  EXPECT_EQ(r.value()[1].value, -big);
}

TEST(EdgeCases, NonPowerOfTwoUniverses) {
  // Nothing in the level logic assumes n is a power of two.
  for (uint64_t n : {3ULL, 100ULL, 1000ULL, 12345ULL}) {
    core::L0Sampler sampler({n, 0.25, 0, 5, false});
    sampler.Update(n - 1, 7);
    sampler.Update(0, -2);
    auto res = sampler.Sample();
    ASSERT_TRUE(res.ok()) << "n " << n;
    EXPECT_TRUE(res.value().index == 0 || res.value().index == n - 1);
  }
}

TEST(EdgeCases, URWithDifferenceAtBoundaries) {
  // Differences at positions 0 and n-1 are found like any others.
  comm::URInstance instance;
  instance.n = 1000;
  instance.x.assign(1000, 0);
  instance.y.assign(1000, 0);
  instance.y[0] = 1;
  instance.y[999] = 1;
  int correct = 0;
  for (uint64_t seed = 0; seed < 15; ++seed) {
    const auto result = comm::RunOneRoundUR(instance, 0.1, 100 + seed);
    if (result.ok) {
      EXPECT_TRUE(result.index == 0 || result.index == 999);
      correct += result.correct;
    }
  }
  EXPECT_GE(correct, 10);
}

TEST(EdgeCases, HeavyHittersOnEmptyStream) {
  heavy::CsHeavyHitters::Params params;
  params.n = 64;
  params.p = 1.0;
  params.phi = 0.2;
  params.strict_turnstile = true;
  params.seed = 6;
  heavy::CsHeavyHitters hh(params);
  EXPECT_TRUE(hh.Query().empty());
}

TEST(EdgeCases, HeavyHittersSingleCoordinateIsWholeNorm) {
  heavy::CsHeavyHitters::Params params;
  params.n = 64;
  params.p = 1.0;
  params.phi = 0.5;
  params.strict_turnstile = true;
  params.seed = 7;
  heavy::CsHeavyHitters hh(params);
  hh.Update(13, 100);
  const auto set = hh.Query();
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set[0], 13u);
}

TEST(EdgeCases, ExactVectorZeroNorms) {
  stream::ExactVector x(10);
  EXPECT_EQ(x.L0(), 0u);
  EXPECT_DOUBLE_EQ(x.NormP(1.0), 0.0);
  EXPECT_DOUBLE_EQ(x.ErrM2(0), 0.0);
  EXPECT_TRUE(x.Support().empty());
  const auto dist = x.LpDistribution(1.0);
  for (double p : dist) EXPECT_DOUBLE_EQ(p, 0.0);
}

TEST(EdgeCases, SamplerWithManyCancellingUpdatesStaysConsistent) {
  // Long churn that nets out to one survivor: every sampler must agree.
  const uint64_t n = 256;
  core::L0Sampler l0({n, 0.1, 0, 8, false});
  core::LpSamplerParams lp_params;
  lp_params.n = n;
  lp_params.p = 1.0;
  lp_params.eps = 0.5;
  lp_params.repetitions = 16;
  lp_params.seed = 9;
  core::LpSampler l1(lp_params);
  for (int round = 0; round < 50; ++round) {
    for (uint64_t i = 0; i < n; ++i) {
      l0.Update(i, 1);
      l1.Update(i, 1.0);
    }
    for (uint64_t i = 0; i < n; ++i) {
      if (i != 77) {
        l0.Update(i, -1);
        l1.Update(i, -1.0);
      }
    }
  }
  auto r0 = l0.Sample();
  ASSERT_TRUE(r0.ok());
  EXPECT_EQ(r0.value().index, 77u);
  EXPECT_DOUBLE_EQ(r0.value().estimate, 50.0);
  auto r1 = l1.Sample();
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1.value().index, 77u);
}

}  // namespace
}  // namespace lps
