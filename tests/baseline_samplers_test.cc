#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/core/ako_sampler.h"
#include "src/core/fis_l0_sampler.h"
#include "src/core/lp_sampler.h"
#include "src/core/reservoir_sampler.h"
#include "src/stats/stats.h"
#include "src/stream/exact_vector.h"
#include "src/stream/generators.h"

namespace lps::core {
namespace {

TEST(WeightedReservoir, PerfectL1OnInsertionStreams) {
  // The paper's introduction: reservoir sampling is a perfect L1 sampler
  // for positive updates. Weights 1, 2, 3, 4 over four coordinates.
  std::vector<uint64_t> counts(4, 0);
  const int trials = 40000;
  for (int trial = 0; trial < trials; ++trial) {
    WeightedReservoir res(static_cast<uint64_t>(trial));
    for (uint64_t i = 0; i < 4; ++i) {
      res.Update(i, static_cast<double>(i + 1));
    }
    ++counts[res.Sample()];
  }
  const std::vector<double> expected = {0.1, 0.2, 0.3, 0.4};
  const auto chi = stats::ChiSquareGof(counts, expected);
  EXPECT_GT(chi.p_value, 1e-4);
}

TEST(WeightedReservoir, SplitUpdatesBehaveLikeOne) {
  // Feeding weight 3 as 1+1+1 keeps the same final distribution; spot-check
  // the mean frequency of the heavy item.
  int heavy = 0;
  const int trials = 20000;
  for (int trial = 0; trial < trials; ++trial) {
    WeightedReservoir res(90000 + static_cast<uint64_t>(trial));
    res.Update(0, 1.0);
    res.Update(1, 1.0);
    res.Update(1, 1.0);
    res.Update(1, 1.0);
    heavy += res.Sample() == 1;
  }
  EXPECT_NEAR(static_cast<double>(heavy) / trials, 0.75, 0.02);
}

TEST(ItemReservoir, UniformOverStream) {
  std::vector<uint64_t> counts(10, 0);
  const int trials = 5000;
  for (int trial = 0; trial < trials; ++trial) {
    ItemReservoir res(4, static_cast<uint64_t>(trial));
    for (uint64_t item = 0; item < 10; ++item) res.Add(item);
    for (uint64_t held : res.held()) ++counts[held];
  }
  const std::vector<double> uniform(10, 0.1);
  const auto chi = stats::ChiSquareGof(counts, uniform);
  EXPECT_GT(chi.p_value, 1e-4);
}

TEST(FisL0Sampler, ReturnsSupportCoordinatesWithExactValues) {
  const uint64_t n = 1024;
  const auto stream = stream::SparseVector(n, 30, 50, 1);
  stream::ExactVector x(n);
  x.Apply(stream);
  int ok = 0, correct = 0;
  for (uint64_t seed = 0; seed < 40; ++seed) {
    FisL0Sampler sampler(n, seed);
    for (const auto& u : stream) sampler.Update(u.index, u.delta);
    auto res = sampler.Sample();
    if (res.ok()) {
      ++ok;
      if (x[res.value().index] == static_cast<int64_t>(res.value().estimate)) {
        ++correct;
      }
    }
  }
  EXPECT_GE(ok, 30);
  EXPECT_EQ(correct, ok);
}

TEST(FisL0Sampler, HandlesDeletions) {
  const uint64_t n = 1024;
  const auto stream = stream::InsertDeleteChurn(n, 300, 4, 2);
  stream::ExactVector x(n);
  x.Apply(stream);
  int ok = 0, valid = 0;
  for (uint64_t seed = 0; seed < 30; ++seed) {
    FisL0Sampler sampler(n, 100 + seed);
    for (const auto& u : stream) sampler.Update(u.index, u.delta);
    auto res = sampler.Sample();
    if (res.ok()) {
      ++ok;
      valid += x[res.value().index] != 0;
    }
  }
  EXPECT_GE(ok, 20);
  EXPECT_EQ(valid, ok);
}

TEST(FisL0Sampler, SpaceIsLog3Shape) {
  // levels x buckets x detector: both levels and buckets scale with log n,
  // so the ratio between log n = 16 and log n = 8 is ~4 (the log^3 vs
  // log^2 separation measured against Theorem 2 lives in bench_l0_sampler).
  FisL0Sampler small(1 << 8, 1), large(1 << 16, 1);
  const double ratio = static_cast<double>(large.SpaceBits()) /
                       static_cast<double>(small.SpaceBits());
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 5.0);
}

TEST(AkoSampler, UsesPairwiseScalingAndWiderSketch) {
  LpSamplerParams params;
  params.n = 1 << 12;
  params.p = 1.5;
  params.eps = 0.25;
  params.seed = 1;
  params.repetitions = 2;
  AkoSampler ako(params);
  EXPECT_EQ(ako.params().k, 2);
  LpSampler ours(LpSampler::Resolve(params));
  // The AKO configuration pays the extra log n factor in sketch width.
  EXPECT_GT(ako.params().m, ours.params().m * 4);
  EXPECT_GT(ako.SpaceBits(), ours.SpaceBits());
}

TEST(AkoSampler, StillSamplesCorrectDominantCoordinate) {
  int successes = 0, dominant = 0;
  for (uint64_t seed = 0; seed < 25; ++seed) {
    LpSamplerParams params;
    params.n = 256;
    params.p = 1.0;
    params.eps = 0.5;
    params.seed = 300 + seed;
    params.repetitions = 12;
    AkoSampler sampler(params);
    sampler.Update(42, 5000);
    for (uint64_t i = 100; i < 150; ++i) sampler.Update(i, 1);
    auto res = sampler.Sample();
    if (res.ok()) {
      ++successes;
      dominant += res.value().index == 42;
    }
  }
  ASSERT_GE(successes, 12);
  EXPECT_GE(static_cast<double>(dominant) / successes, 0.9);
}

}  // namespace
}  // namespace lps::core
