#include <gtest/gtest.h>

#include <sstream>

#include "src/stream/exact_vector.h"
#include "src/stream/generators.h"
#include "src/stream/trace.h"

namespace lps::stream {
namespace {

TEST(Trace, UpdateRoundTrip) {
  const auto original = UniformTurnstile(100, 500, 20, 1);
  std::stringstream buffer;
  WriteTrace(buffer, 100, original);
  auto trace = ReadTrace(buffer);
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->n, 100u);
  ASSERT_EQ(trace->updates.size(), original.size());
  for (size_t j = 0; j < original.size(); ++j) {
    EXPECT_EQ(trace->updates[j].index, original[j].index);
    EXPECT_EQ(trace->updates[j].delta, original[j].delta);
  }
}

TEST(Trace, LetterTraceBecomesUnitUpdates) {
  const LetterStream letters = {5, 5, 9};
  std::stringstream buffer;
  WriteLetterTrace(buffer, 16, letters);
  auto trace = ReadTrace(buffer);
  ASSERT_TRUE(trace.ok());
  ASSERT_EQ(trace->updates.size(), 3u);
  EXPECT_EQ(trace->updates[0].index, 5u);
  EXPECT_EQ(trace->updates[0].delta, 1);
}

TEST(Trace, CommentsAndBlankLinesIgnored) {
  std::stringstream buffer("# hello\n\nn 8\n# mid\nu 3 -4\n");
  auto trace = ReadTrace(buffer);
  ASSERT_TRUE(trace.ok());
  ASSERT_EQ(trace->updates.size(), 1u);
  EXPECT_EQ(trace->updates[0].delta, -4);
}

TEST(Trace, RejectsMalformedInput) {
  for (const char* bad :
       {"u 1 1\n",                 // update before header
        "n 0\n",                   // zero universe
        "n 8\nu 8 1\n",            // index out of range
        "n 8\nl 9\n",              // letter out of range
        "n 8\nx 1 2\n",            // unknown tag
        "n 8\nn 8\n",              // duplicate header
        "n 8\nu 1\n",              // missing delta
        ""}) {                     // empty input
    std::stringstream buffer(bad);
    EXPECT_FALSE(ReadTrace(buffer).ok()) << "input: " << bad;
  }
}

TEST(Trace, ErrorsNameTheLine) {
  std::stringstream buffer("n 8\nu 1 1\nu 99 1\n");
  auto trace = ReadTrace(buffer);
  ASSERT_FALSE(trace.ok());
  EXPECT_NE(trace.status().message().find("line 3"), std::string::npos);
}

TEST(Trace, RoundTripPreservesVector) {
  const auto stream = SparseVector(256, 30, 100, 7);
  ExactVector direct(256);
  direct.Apply(stream);
  std::stringstream buffer;
  WriteTrace(buffer, 256, stream);
  auto trace = ReadTrace(buffer);
  ASSERT_TRUE(trace.ok());
  ExactVector replayed(256);
  replayed.Apply(trace->updates);
  EXPECT_EQ(direct.data(), replayed.data());
}

}  // namespace
}  // namespace lps::stream
