#include "src/stats/stats.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"

namespace lps::stats {

namespace {

uint64_t Total(const std::vector<uint64_t>& counts) {
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  return total;
}

// ln Gamma(a) via the Lanczos approximation (g = 7, n = 9); |error| < 1e-13
// over the positive reals, ample for p-values.
double LogGamma(double a) {
  static const double kCoeffs[9] = {
      0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
      771.32342877765313,   -176.61502916214059, 12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (a < 0.5) {
    // Reflection formula.
    return std::log(M_PI / std::sin(M_PI * a)) - LogGamma(1.0 - a);
  }
  a -= 1.0;
  double x = kCoeffs[0];
  for (int i = 1; i < 9; ++i) x += kCoeffs[i] / (a + i);
  const double t = a + 7.5;
  return 0.5 * std::log(2.0 * M_PI) + (a + 0.5) * std::log(t) - t +
         std::log(x);
}

// Series expansion of the regularized lower incomplete gamma P(a, x).
double LowerGammaSeries(double a, double x) {
  double term = 1.0 / a;
  double sum = term;
  for (int k = 1; k < 1000; ++k) {
    term *= x / (a + k);
    sum += term;
    if (std::abs(term) < std::abs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - LogGamma(a));
}

// Continued fraction for Q(a, x), modified Lentz.
double UpperGammaCf(double a, double x) {
  const double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int k = 1; k < 1000; ++k) {
    const double an = -static_cast<double>(k) * (k - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::abs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < 1e-15) break;
  }
  return std::exp(-x + a * std::log(x) - LogGamma(a)) * h;
}

}  // namespace

double UpperIncompleteGammaQ(double a, double x) {
  LPS_CHECK(a > 0);
  if (x <= 0) return 1.0;
  if (x < a + 1.0) return 1.0 - LowerGammaSeries(a, x);
  return UpperGammaCf(a, x);
}

double TotalVariation(const std::vector<uint64_t>& counts,
                      const std::vector<double>& probs) {
  LPS_CHECK(counts.size() == probs.size());
  const double total = static_cast<double>(Total(counts));
  LPS_CHECK(total > 0);
  double tv = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    tv += std::abs(static_cast<double>(counts[i]) / total - probs[i]);
  }
  return tv / 2;
}

double MaxRelativeError(const std::vector<uint64_t>& counts,
                        const std::vector<double>& probs, double min_prob) {
  LPS_CHECK(counts.size() == probs.size());
  const double total = static_cast<double>(Total(counts));
  LPS_CHECK(total > 0);
  double worst = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (probs[i] < min_prob) continue;
    const double p_hat = static_cast<double>(counts[i]) / total;
    worst = std::max(worst, std::abs(p_hat / probs[i] - 1.0));
  }
  return worst;
}

ChiSquareResult ChiSquareGof(const std::vector<uint64_t>& counts,
                             const std::vector<double>& probs,
                             double min_expected) {
  LPS_CHECK(counts.size() == probs.size());
  const double total = static_cast<double>(Total(counts));
  LPS_CHECK(total > 0);
  double stat = 0;
  int cells = 0;
  double pooled_observed = 0;
  double pooled_expected = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const double expected = probs[i] * total;
    if (expected <= 0 && counts[i] == 0) continue;
    if (expected < min_expected) {
      pooled_observed += static_cast<double>(counts[i]);
      pooled_expected += expected;
      continue;
    }
    const double diff = static_cast<double>(counts[i]) - expected;
    stat += diff * diff / expected;
    ++cells;
  }
  if (pooled_expected >= min_expected) {
    const double diff = pooled_observed - pooled_expected;
    stat += diff * diff / pooled_expected;
    ++cells;
  }
  ChiSquareResult result;
  result.statistic = stat;
  result.dof = std::max(1, cells - 1);
  result.p_value = UpperIncompleteGammaQ(result.dof / 2.0, stat / 2.0);
  return result;
}

Interval WilsonInterval(uint64_t successes, uint64_t trials, double z) {
  LPS_CHECK(trials > 0);
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1 - p) / n + z2 / (4 * n * n)) / denom;
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

}  // namespace lps::stats
