// Statistical validation utilities: the experiments compare empirical
// sampler output distributions against exact Lp distributions, so the
// library ships its own (dependency-free) goodness-of-fit machinery.
#pragma once

#include <cstdint>
#include <vector>

namespace lps::stats {

/// Total variation distance between the empirical distribution of `counts`
/// and the reference distribution `probs` (0.5 * L1 distance).
double TotalVariation(const std::vector<uint64_t>& counts,
                      const std::vector<double>& probs);

/// Largest relative error |p_hat_i / p_i - 1| over indices with
/// p_i >= min_prob (indices below the floor are ignored: their empirical
/// frequencies are dominated by sampling noise).
double MaxRelativeError(const std::vector<uint64_t>& counts,
                        const std::vector<double>& probs, double min_prob);

struct ChiSquareResult {
  double statistic = 0;
  int dof = 0;
  double p_value = 1.0;  ///< upper tail
};

/// Pearson chi-square goodness-of-fit of counts against probs. Cells with
/// expected count < min_expected are pooled into one cell, per standard
/// practice.
ChiSquareResult ChiSquareGof(const std::vector<uint64_t>& counts,
                             const std::vector<double>& probs,
                             double min_expected = 5.0);

/// Regularized upper incomplete gamma Q(a, x) = Gamma(a, x) / Gamma(a),
/// computed by series (x < a + 1) or Lentz continued fraction otherwise.
double UpperIncompleteGammaQ(double a, double x);

struct Interval {
  double lo = 0;
  double hi = 1;
};

/// Wilson score interval for a binomial proportion at z standard errors.
Interval WilsonInterval(uint64_t successes, uint64_t trials, double z = 2.58);

}  // namespace lps::stats
