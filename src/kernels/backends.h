// Internal registry wiring between the dispatcher and the backend
// translation units. Each backend exposes a getter that returns its
// KernelTable, or nullptr when the backend was not compiled in (missing
// ISA flags, LPS_DISABLE_SIMD, or wrong architecture) — the dispatcher
// additionally checks CPU support at runtime before using a non-null
// table. Not part of the public surface.
#pragma once

#include "src/kernels/kernels.h"

namespace lps::kernels::internal {

/// Always available; the bit-identical reference implementation.
const KernelTable* ScalarTable();

/// SSE4.2 two-lane backend; nullptr unless built with -msse4.2 on x86.
const KernelTable* Sse4Table();

/// AVX2 four-lane backend; nullptr unless built with -mavx2 on x86.
const KernelTable* Avx2Table();

/// NEON stub: currently always nullptr, so aarch64 builds dispatch to the
/// scalar reference. A real NEON port replaces this getter only.
const KernelTable* NeonTable();

}  // namespace lps::kernels::internal
