// NEON backend stub. The library has no ARM CI leg yet, so rather than
// ship unexercised intrinsics this translation unit compiles everywhere
// and reports "no NEON table" — the dispatcher then falls back to the
// scalar reference, which is correct on every architecture. A real port
// replaces the nullptr below with a two-lane table mirroring
// kernels_sse4.cc (uint64x2_t field arithmetic, float64x2_t Cauchy path)
// and adds -march gates in CMakeLists.txt; nothing else changes.
#include "src/kernels/backends.h"

namespace lps::kernels::internal {

const KernelTable* NeonTable() { return nullptr; }

}  // namespace lps::kernels::internal
