// The kernel layer: one SIMD surface for all 21 sketch kinds.
//
// Every structure in the library reduces its UpdateBatch hot loop to a
// handful of shared primitives — k-wise polynomial hashing over a key
// batch (Horner in GF(2^61 - 1)), signed count-sketch row scatter,
// GF(2^61 - 1) syndrome power chains, and the p-stable variate transform.
// This layer names those primitives once and provides a scalar reference
// backend plus SSE4.2 and AVX2 backends behind a one-time runtime CPUID
// dispatch, so vectorizing a kernel here accelerates every sketch at once.
//
// Exactness taxonomy (enforced by tests/kernels_test.cc):
//   - kwise_horner_batch, gf61_mul_batch, count_rows_apply and
//     gf61_syndrome_batch are EXACT on every backend: field arithmetic is
//     integer, results are canonical elements of [0, p), and
//     count_rows_apply scatters in stream order, so whole-sketch state is
//     bit-identical no matter which backend ran.
//   - cauchy_pow_batch is exact-scalar for p != 1 on every backend; the
//     AVX2/SSE4.2 p = 1 (Cauchy) path replaces libm's tan with a
//     polynomial sin(pi x) ratio and a vectorized accumulation order, so
//     it is query-equivalent (relative error ~1e-15, ULP-bounded by the
//     tests) but not bit-identical to scalar. The scalar backend is always
//     bit-identical to the pre-kernel-layer code.
//
// Backend selection: the first call to Active() probes the CPU
// (__builtin_cpu_supports) and picks the widest compiled-in backend;
// LPS_KERNELS=scalar|sse4|avx2 in the environment overrides the choice
// (falling back, with a one-line stderr note, when the request is not
// available). Tests and the bench backend sweep switch backends
// in-process with ForceBackendForTesting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lps::kernels {

enum class Backend : int {
  kScalar = 0,
  kSse4 = 1,
  kAvx2 = 2,
};

/// Stable lowercase name ("scalar", "sse4", "avx2") — the vocabulary of
/// the LPS_KERNELS override, BENCH_throughput.json's "kernel_backend"
/// field, and the lps_serve STATS report.
const char* BackendName(Backend backend);

/// One backend's implementation of every kernel. All function pointers are
/// always non-null; a backend that has no vector win for some kernel
/// installs the scalar reference.
struct KernelTable {
  Backend backend;

  /// out[t] = coeffs[k-1] * xs[t]^(k-1) + ... + coeffs[0] over
  /// GF(2^61 - 1), Horner from the leading coefficient; xs must already be
  /// reduced to [0, p). k >= 1. EXACT.
  void (*kwise_horner_batch)(const uint64_t* coeffs, size_t k,
                             const uint64_t* xs, size_t count, uint64_t* out);

  /// out[t] = a[t] * b[t] over GF(2^61 - 1); inputs in [0, p). EXACT.
  void (*gf61_mul_batch)(const uint64_t* a, const uint64_t* b, size_t count,
                         uint64_t* out);

  /// One pairwise count-sketch/count-min row over a whole batch:
  ///   k_t    = floor(PolyEval2(b0, b1, xs[t]) * range / p)
  ///   sign_t = use_sign ? (PolyEval2(s0, s1, xs[t]) & 1 ? +1 : -1) : +1
  ///   row[k_t] += sign_t * deltas[t]          (in stream order)
  /// The scatter is performed in t order on every backend, so the row is
  /// bit-identical to the scalar loop. EXACT.
  void (*count_rows_apply)(const uint64_t* xs, const double* deltas,
                           size_t count, uint64_t b0, uint64_t b1, uint64_t s0,
                           uint64_t s1, bool use_sign, uint64_t range,
                           double* row);

  /// Four interleaved syndrome power chains (sparse recovery, Lemma 5):
  ///   for r in [0, n): syndromes[r] += power[0] + ... + power[3];
  ///                    power[j] *= a[j]
  /// all over GF(2^61 - 1). Field addition is exact, so any order of the
  /// four-way sum yields identical syndromes. EXACT.
  void (*gf61_syndrome_batch)(uint64_t* syndromes, size_t n, uint64_t power[4],
                              const uint64_t a[4]);

  /// The stable-sketch row inner product: returns
  ///   init + sum_t Stable_p(row_base, keys[t]) * deltas[t]
  /// where Stable_p regenerates the (row, i) p-stable variate from
  /// Mix64(row_base ^ key) exactly like StableSketch::StableAtKeyed.
  /// Scalar backend: bit-identical to the historical loop. SIMD backends:
  /// p = 1 uses a vectorized Cauchy transform (query-equivalent, see the
  /// taxonomy above); p != 1 falls back to the exact scalar loop.
  double (*cauchy_pow_batch)(double p, uint64_t row_base, const uint64_t* keys,
                             const double* deltas, size_t count, double init);
};

/// The dispatched kernel table. First call performs the one-time CPUID +
/// LPS_KERNELS selection; later calls are a single atomic load.
const KernelTable& Active();

/// Identity of the dispatched backend (for STATS, benches, logs).
Backend ActiveBackend();
const char* ActiveBackendName();

/// Every backend this binary can actually run: compiled in at build time
/// and supported by the current CPU. Always contains kScalar.
std::vector<Backend> AvailableBackends();

/// Re-points the dispatch at a specific backend so one process can compare
/// backends (kernels_test, the bench backend sweep). Returns false — and
/// leaves the dispatch unchanged — if the backend is not available.
bool ForceBackendForTesting(Backend backend);

}  // namespace lps::kernels
