// SSE4.2 two-lane backend: the same lane math as kernels_avx2.cc (see the
// derivation there) on __m128i/__m128d. SSE4.2 is the floor because the
// canonicalizing compare needs _mm_cmpgt_epi64. Exactness taxonomy is
// identical to AVX2: all integer/GF kernels are bit-identical to scalar,
// the p = 1 Cauchy path is query-equivalent, p != 1 delegates to scalar.
#include "src/kernels/backends.h"

#if defined(__SSE4_2__) && !defined(LPS_DISABLE_SIMD)

#include <nmmintrin.h>
#include <smmintrin.h>

#include <cstddef>
#include <cstdint>

#include "src/field/gf61.h"
#include "src/hash/kwise.h"
#include "src/kernels/stable_transform.h"
#include "src/util/random.h"

namespace lps::kernels::internal {

namespace gf = ::lps::gf61;

namespace {

inline __m128i Set1(uint64_t v) {
  return _mm_set1_epi64x(static_cast<long long>(v));
}

inline __m128i CondSubP(__m128i v) {
  const __m128i mask = _mm_cmpgt_epi64(v, Set1(gf::kP - 1));
  return _mm_sub_epi64(v, _mm_and_si128(mask, Set1(gf::kP)));
}

inline __m128i AddP(__m128i a, __m128i b) {
  return CondSubP(_mm_add_epi64(a, b));
}

inline __m128i MulP(__m128i a, __m128i b) {
  const __m128i a_hi = _mm_srli_epi64(a, 32);
  const __m128i b_hi = _mm_srli_epi64(b, 32);
  const __m128i ll = _mm_mul_epu32(a, b);
  const __m128i lh = _mm_mul_epu32(a, b_hi);
  const __m128i hl = _mm_mul_epu32(a_hi, b);
  const __m128i hh = _mm_mul_epu32(a_hi, b_hi);
  const __m128i mid = _mm_add_epi64(lh, hl);
  __m128i s = _mm_and_si128(ll, Set1(gf::kP));
  s = _mm_add_epi64(s, _mm_srli_epi64(ll, 61));
  s = _mm_add_epi64(
      s, _mm_slli_epi64(_mm_and_si128(mid, Set1((1ULL << 29) - 1)), 32));
  s = _mm_add_epi64(s, _mm_srli_epi64(mid, 29));
  s = _mm_add_epi64(s, _mm_slli_epi64(hh, 3));
  s = _mm_add_epi64(_mm_and_si128(s, Set1(gf::kP)), _mm_srli_epi64(s, 61));
  s = _mm_add_epi64(_mm_and_si128(s, Set1(gf::kP)), _mm_srli_epi64(s, 61));
  return CondSubP(s);
}

inline __m128i ScaleToRangeVec(__m128i value, __m128i range) {
  const __m128i b_full = _mm_mul_epu32(value, range);
  const __m128i a_part = _mm_mul_epu32(_mm_srli_epi64(value, 32), range);
  const __m128i c = _mm_add_epi64(a_part, _mm_srli_epi64(b_full, 32));
  const __m128i q = _mm_srli_epi64(c, 29);
  const __m128i b_lo = _mm_and_si128(b_full, Set1(0xFFFFFFFFULL));
  const __m128i rem = _mm_add_epi64(
      _mm_or_si128(
          _mm_slli_epi64(_mm_and_si128(c, Set1((1ULL << 29) - 1)), 32), b_lo),
      q);
  return _mm_sub_epi64(q, _mm_cmpgt_epi64(rem, Set1(gf::kP - 1)));
}

inline __m128i MulLo64(__m128i a, __m128i b) {
  const __m128i cross =
      _mm_add_epi64(_mm_mul_epu32(_mm_srli_epi64(a, 32), b),
                    _mm_mul_epu32(a, _mm_srli_epi64(b, 32)));
  return _mm_add_epi64(_mm_mul_epu32(a, b), _mm_slli_epi64(cross, 32));
}

inline __m128i Mix64Fin(__m128i z) {
  z = MulLo64(_mm_xor_si128(z, _mm_srli_epi64(z, 30)),
              Set1(0xbf58476d1ce4e5b9ULL));
  z = MulLo64(_mm_xor_si128(z, _mm_srli_epi64(z, 27)),
              Set1(0x94d049bb133111ebULL));
  return _mm_xor_si128(z, _mm_srli_epi64(z, 31));
}

inline __m128d U64ToDouble(__m128i v) {
  const __m128i lo = _mm_or_si128(_mm_and_si128(v, Set1(0xFFFFFFFFULL)),
                                  Set1(0x4330000000000000ULL));
  const __m128i hi =
      _mm_or_si128(_mm_srli_epi64(v, 32), Set1(0x4530000000000000ULL));
  const __m128d hi_part =
      _mm_sub_pd(_mm_castsi128_pd(hi), _mm_set1_pd(0x1.00000001p+84));
  return _mm_add_pd(hi_part, _mm_castsi128_pd(lo));
}

struct SinPiCoeffs {
  double c[12];
};

const SinPiCoeffs& SinPiTable() {
  static const SinPiCoeffs table = [] {
    SinPiCoeffs t;
    constexpr double kPi = 3.141592653589793238462643383279502884;
    double coef = kPi;
    t.c[0] = coef;
    for (int k = 1; k < 12; ++k) {
      coef *= -kPi * kPi / static_cast<double>((2 * k) * (2 * k + 1));
      t.c[k] = coef;
    }
    return t;
  }();
  return table;
}

inline __m128d SinPiVec(__m128d x) {
  const SinPiCoeffs& k = SinPiTable();
  const __m128d x2 = _mm_mul_pd(x, x);
  __m128d acc = _mm_set1_pd(k.c[11]);
  for (int i = 10; i >= 0; --i) {
    acc = _mm_add_pd(_mm_mul_pd(acc, x2), _mm_set1_pd(k.c[i]));
  }
  return _mm_mul_pd(acc, x);
}

void KWiseHornerBatchSse4(const uint64_t* coeffs, size_t k, const uint64_t* xs,
                          size_t count, uint64_t* out) {
  size_t t = 0;
  for (; t + 2 <= count; t += 2) {
    const __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(xs + t));
    __m128i acc = Set1(coeffs[k - 1]);
    for (size_t i = k - 1; i-- > 0;) {
      acc = AddP(MulP(acc, x), Set1(coeffs[i]));
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + t), acc);
  }
  for (; t < count; ++t) {
    out[t] = hash::PolyEval(coeffs, k, xs[t]);
  }
}

void Gf61MulBatchSse4(const uint64_t* a, const uint64_t* b, size_t count,
                      uint64_t* out) {
  size_t t = 0;
  for (; t + 2 <= count; t += 2) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + t));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + t));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + t), MulP(va, vb));
  }
  for (; t < count; ++t) {
    out[t] = gf::Mul(a[t], b[t]);
  }
}

void CountRowsApplySse4(const uint64_t* xs, const double* deltas, size_t count,
                        uint64_t b0, uint64_t b1, uint64_t s0, uint64_t s1,
                        bool use_sign, uint64_t range, double* row) {
  const __m128i vb0 = Set1(b0), vb1 = Set1(b1), vrange = Set1(range);
  alignas(16) uint64_t idx[2];
  alignas(16) double sd[2];
  size_t t = 0;
  if (use_sign) {
    const __m128i vs0 = Set1(s0), vs1 = Set1(s1);
    for (; t + 2 <= count; t += 2) {
      const __m128i x =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(xs + t));
      const __m128i bucket = ScaleToRangeVec(AddP(MulP(vb1, x), vb0), vrange);
      const __m128i bit = _mm_and_si128(AddP(MulP(vs1, x), vs0), Set1(1));
      const __m128i flip = _mm_slli_epi64(_mm_xor_si128(bit, Set1(1)), 63);
      const __m128d signed_delta =
          _mm_xor_pd(_mm_loadu_pd(deltas + t), _mm_castsi128_pd(flip));
      _mm_store_si128(reinterpret_cast<__m128i*>(idx), bucket);
      _mm_store_pd(sd, signed_delta);
      row[idx[0]] += sd[0];
      row[idx[1]] += sd[1];
    }
    for (; t < count; ++t) {
      const uint64_t x = xs[t];
      const uint64_t k = hash::ScaleToRange(hash::PolyEval2(b0, b1, x), range);
      const int64_t bit = static_cast<int64_t>(hash::PolyEval2(s0, s1, x) & 1);
      row[k] += static_cast<double>(2 * bit - 1) * deltas[t];
    }
  } else {
    for (; t + 2 <= count; t += 2) {
      const __m128i x =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(xs + t));
      const __m128i bucket = ScaleToRangeVec(AddP(MulP(vb1, x), vb0), vrange);
      _mm_store_si128(reinterpret_cast<__m128i*>(idx), bucket);
      row[idx[0]] += deltas[t];
      row[idx[1]] += deltas[t + 1];
    }
    for (; t < count; ++t) {
      const uint64_t k =
          hash::ScaleToRange(hash::PolyEval2(b0, b1, xs[t]), range);
      row[k] += deltas[t];
    }
  }
}

void Gf61SyndromeBatchSse4(uint64_t* syndromes, size_t n, uint64_t power[4],
                           const uint64_t a[4]) {
  __m128i p0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(power));
  __m128i p1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(power + 2));
  const __m128i a0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a));
  const __m128i a1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + 2));
  alignas(16) uint64_t l0[2], l1[2];
  for (size_t r = 0; r < n; ++r) {
    _mm_store_si128(reinterpret_cast<__m128i*>(l0), p0);
    _mm_store_si128(reinterpret_cast<__m128i*>(l1), p1);
    syndromes[r] = gf::Add(
        syndromes[r], gf::Add(gf::Add(l0[0], l0[1]), gf::Add(l1[0], l1[1])));
    p0 = MulP(p0, a0);
    p1 = MulP(p1, a1);
  }
  _mm_storeu_si128(reinterpret_cast<__m128i*>(power), p0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(power + 2), p1);
}

double CauchyPowBatchSse4(double p, uint64_t row_base, const uint64_t* keys,
                          const double* deltas, size_t count, double init) {
  if (p != 1.0) {
    return ScalarTable()->cauchy_pow_batch(p, row_base, keys, deltas, count,
                                           init);
  }
  constexpr uint64_t kGamma = 0x9e3779b97f4a7c15ULL;
  const __m128i vbase = Set1(row_base);
  const __m128i vgamma = Set1(kGamma);
  const __m128d cos_floor = _mm_set1_pd(6.123233995736766e-17);
  __m128d acc = _mm_setzero_pd();
  size_t t = 0;
  for (; t + 2 <= count; t += 2) {
    const __m128i key =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys + t));
    const __m128i x = _mm_xor_si128(key, vbase);
    const __m128i base = Mix64Fin(_mm_add_epi64(x, vgamma));
    const __m128i w1 = Mix64Fin(_mm_add_epi64(base, vgamma));
    const __m128d u1 =
        _mm_mul_pd(_mm_add_pd(U64ToDouble(_mm_srli_epi64(w1, 11)),
                              _mm_set1_pd(1.0)),
                   _mm_set1_pd(0x1.0p-53));
    const __m128d targ = _mm_sub_pd(u1, _mm_set1_pd(0.5));
    const __m128d abs_t = _mm_andnot_pd(_mm_set1_pd(-0.0), targ);
    const __m128d sin_num = SinPiVec(targ);
    const __m128d cos_den =
        _mm_max_pd(SinPiVec(_mm_sub_pd(_mm_set1_pd(0.5), abs_t)), cos_floor);
    const __m128d cauchy = _mm_div_pd(sin_num, cos_den);
    acc = _mm_add_pd(acc, _mm_mul_pd(cauchy, _mm_loadu_pd(deltas + t)));
  }
  alignas(16) double lanes[2];
  _mm_store_pd(lanes, acc);
  double total = init + (lanes[0] + lanes[1]);
  for (; t < count; ++t) {
    const uint64_t base = Mix64(row_base ^ keys[t]);
    uint64_t s = base;
    const uint64_t w1 = SplitMix64(s);
    const double u1 = (static_cast<double>(w1 >> 11) + 1.0) * 0x1.0p-53;
    total += StableFromUniformsImpl(1.0, u1, 0.5) * deltas[t];
  }
  return total;
}

const KernelTable kSse4Table = {
    Backend::kSse4,       KWiseHornerBatchSse4, Gf61MulBatchSse4,
    CountRowsApplySse4,   Gf61SyndromeBatchSse4,
    CauchyPowBatchSse4,
};

}  // namespace

const KernelTable* Sse4Table() { return &kSse4Table; }

}  // namespace lps::kernels::internal

#else  // !__SSE4_2__ || LPS_DISABLE_SIMD

namespace lps::kernels::internal {

const KernelTable* Sse4Table() { return nullptr; }

}  // namespace lps::kernels::internal

#endif
