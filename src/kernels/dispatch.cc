// One-time runtime backend dispatch.
//
// The first Active() call resolves the backend: probe what this CPU can
// run (__builtin_cpu_supports on x86), intersect with what was compiled
// in (a backend's getter returns nullptr when its ISA flags were absent
// or LPS_DISABLE_SIMD was set), honor an LPS_KERNELS environment
// override, and publish the winning table through an atomic pointer.
// Every later call is a single acquire load, so the dispatch adds nothing
// measurable to an UpdateBatch.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/kernels/backends.h"

namespace lps::kernels {

namespace {

bool CpuSupports(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return true;
    case Backend::kSse4:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("sse4.2");
#else
      return false;
#endif
    case Backend::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
  }
  return false;
}

/// The backend's table when it is both compiled in and runnable here.
const KernelTable* UsableTable(Backend backend) {
  const KernelTable* table = nullptr;
  switch (backend) {
    case Backend::kScalar:
      table = internal::ScalarTable();
      break;
    case Backend::kSse4:
      table = internal::Sse4Table();
      break;
    case Backend::kAvx2:
      table = internal::Avx2Table();
      break;
  }
  return (table != nullptr && CpuSupports(backend)) ? table : nullptr;
}

const KernelTable* Widest() {
  // aarch64 note: NeonTable() is a stub returning nullptr, so ARM builds
  // land on the scalar reference until a real NEON port replaces it.
  if (const KernelTable* t = internal::NeonTable()) return t;
  if (const KernelTable* t = UsableTable(Backend::kAvx2)) return t;
  if (const KernelTable* t = UsableTable(Backend::kSse4)) return t;
  return internal::ScalarTable();
}

const KernelTable* ResolveFromEnvironment() {
  const char* request = std::getenv("LPS_KERNELS");
  if (request == nullptr || *request == '\0') return Widest();
  Backend wanted = Backend::kScalar;
  if (std::strcmp(request, "scalar") == 0) {
    wanted = Backend::kScalar;
  } else if (std::strcmp(request, "sse4") == 0) {
    wanted = Backend::kSse4;
  } else if (std::strcmp(request, "avx2") == 0) {
    wanted = Backend::kAvx2;
  } else {
    std::fprintf(stderr,
                 "lps kernels: unknown LPS_KERNELS=%s (want scalar|sse4|avx2);"
                 " using %s\n",
                 request, BackendName(Widest()->backend));
    return Widest();
  }
  if (const KernelTable* table = UsableTable(wanted)) return table;
  std::fprintf(stderr,
               "lps kernels: LPS_KERNELS=%s not available on this build/CPU;"
               " using %s\n",
               request, BackendName(Widest()->backend));
  return Widest();
}

std::atomic<const KernelTable*> g_active{nullptr};

const KernelTable* DispatchOnce() {
  const KernelTable* resolved = ResolveFromEnvironment();
  const KernelTable* expected = nullptr;
  // Racing first calls may each resolve (idempotently, same answer); the
  // first store wins and everyone returns the published table.
  g_active.compare_exchange_strong(expected, resolved,
                                   std::memory_order_acq_rel);
  return g_active.load(std::memory_order_acquire);
}

}  // namespace

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kSse4:
      return "sse4";
    case Backend::kAvx2:
      return "avx2";
  }
  return "unknown";
}

const KernelTable& Active() {
  const KernelTable* table = g_active.load(std::memory_order_acquire);
  if (table != nullptr) return *table;
  return *DispatchOnce();
}

Backend ActiveBackend() { return Active().backend; }

const char* ActiveBackendName() { return BackendName(ActiveBackend()); }

std::vector<Backend> AvailableBackends() {
  std::vector<Backend> available = {Backend::kScalar};
  if (UsableTable(Backend::kSse4) != nullptr) {
    available.push_back(Backend::kSse4);
  }
  if (UsableTable(Backend::kAvx2) != nullptr) {
    available.push_back(Backend::kAvx2);
  }
  return available;
}

bool ForceBackendForTesting(Backend backend) {
  const KernelTable* table = UsableTable(backend);
  if (table == nullptr) return false;
  g_active.store(table, std::memory_order_release);
  return true;
}

}  // namespace lps::kernels
