// Scalar reference backend. These bodies are the exact loops that lived
// inside the sketches' UpdateBatch methods before the kernel layer was
// extracted; every SIMD backend is tested against them, and the existing
// bit-identity suites (batch equivalence, merge, window subtraction,
// server WINDOW) remain meaningful because this backend reproduces the
// pre-refactor state bit for bit.
#include "src/field/gf61.h"
#include "src/hash/kwise.h"
#include "src/kernels/backends.h"
#include "src/kernels/stable_transform.h"
#include "src/util/random.h"

namespace lps::kernels::internal {

namespace gf = ::lps::gf61;

namespace {

void KWiseHornerBatchScalar(const uint64_t* coeffs, size_t k,
                            const uint64_t* xs, size_t count, uint64_t* out) {
  if (k == 2) {
    // Pairwise is by far the most common family; keep both coefficients in
    // registers like the historical count-sketch loop did.
    const uint64_t c0 = coeffs[0], c1 = coeffs[1];
    for (size_t t = 0; t < count; ++t) {
      out[t] = hash::PolyEval2(c0, c1, xs[t]);
    }
    return;
  }
  for (size_t t = 0; t < count; ++t) {
    out[t] = hash::PolyEval(coeffs, k, xs[t]);
  }
}

void Gf61MulBatchScalar(const uint64_t* a, const uint64_t* b, size_t count,
                        uint64_t* out) {
  for (size_t t = 0; t < count; ++t) {
    out[t] = gf::Mul(a[t], b[t]);
  }
}

void CountRowsApplyScalar(const uint64_t* xs, const double* deltas,
                          size_t count, uint64_t b0, uint64_t b1, uint64_t s0,
                          uint64_t s1, bool use_sign, uint64_t range,
                          double* row) {
  if (use_sign) {
    // The count-sketch row: the sign bit is turned into +-1.0
    // arithmetically instead of through an unpredictable branch.
    for (size_t t = 0; t < count; ++t) {
      const uint64_t x = xs[t];
      const uint64_t k = hash::ScaleToRange(hash::PolyEval2(b0, b1, x), range);
      const int64_t bit = static_cast<int64_t>(hash::PolyEval2(s0, s1, x) & 1);
      row[k] += static_cast<double>(2 * bit - 1) * deltas[t];
    }
  } else {
    for (size_t t = 0; t < count; ++t) {
      const uint64_t k =
          hash::ScaleToRange(hash::PolyEval2(b0, b1, xs[t]), range);
      row[k] += deltas[t];
    }
  }
}

void Gf61SyndromeBatchScalar(uint64_t* syndromes, size_t n, uint64_t power[4],
                             const uint64_t a[4]) {
  // Four independent chains through one loop so the CPU can overlap the
  // serial power *= a multiply latencies (the historical sparse_recovery
  // hand-rolled interleave).
  for (size_t r = 0; r < n; ++r) {
    syndromes[r] = gf::Add(syndromes[r], gf::Add(gf::Add(power[0], power[1]),
                                                 gf::Add(power[2], power[3])));
    for (size_t j = 0; j < 4; ++j) power[j] = gf::Mul(power[j], a[j]);
  }
}

double CauchyPowBatchScalar(double p, uint64_t row_base, const uint64_t* keys,
                            const double* deltas, size_t count, double init) {
  double acc = init;
  for (size_t t = 0; t < count; ++t) {
    // Two independent uniforms in (0,1] from a hash of (seed, row, i),
    // exactly StableSketch::StableAtKeyed.
    const uint64_t base = Mix64(row_base ^ keys[t]);
    uint64_t s = base;
    const uint64_t w1 = SplitMix64(s);
    const uint64_t w2 = SplitMix64(s);
    const double u1 = (static_cast<double>(w1 >> 11) + 1.0) * 0x1.0p-53;
    const double u2 = (static_cast<double>(w2 >> 11) + 1.0) * 0x1.0p-53;
    acc += StableFromUniformsImpl(p, u1, u2) * deltas[t];
  }
  return acc;
}

const KernelTable kScalarTable = {
    Backend::kScalar,        KWiseHornerBatchScalar, Gf61MulBatchScalar,
    CountRowsApplyScalar,    Gf61SyndromeBatchScalar,
    CauchyPowBatchScalar,
};

}  // namespace

const KernelTable* ScalarTable() { return &kScalarTable; }

}  // namespace lps::kernels::internal
