// The exact scalar p-stable variate transform, shared by the kernel
// backends (scalar reference and the SIMD backends' p != 1 fallback) and
// by StableSketch's query-side helpers. Living here keeps the single
// definition below the sketch layer so backends never reach upward.
#pragma once

#include <cmath>

#include "src/util/check.h"

namespace lps::kernels {

/// Maps two uniforms in (0, 1] to a standard symmetric p-stable variate,
/// 0 < p <= 2: Cauchy by tan at p = 1, Gaussian by Box-Muller at p = 2,
/// Chambers-Mallows-Stuck otherwise. This is the historical
/// sketch::StableFromUniforms body, bit for bit.
inline double StableFromUniformsImpl(double p, double u1, double u2) {
  LPS_CHECK(p > 0 && p <= 2);
  constexpr double pi = 3.141592653589793238462643383279502884;
  if (p == 2.0) {
    // Gaussian by Box-Muller; N(0,1) is 2-stable under the Euclidean norm.
    return std::sqrt(-2.0 * std::log(u2)) * std::cos(2.0 * pi * u1);
  }
  const double theta = pi * (u1 - 0.5);  // uniform on (-pi/2, pi/2)
  if (p == 1.0) {
    return std::tan(theta);  // standard Cauchy
  }
  // Chambers-Mallows-Stuck for symmetric p-stable.
  const double w = -std::log(u2);  // exponential(1)
  const double a = std::sin(p * theta) / std::pow(std::cos(theta), 1.0 / p);
  const double b = std::pow(std::cos((1.0 - p) * theta) / w, (1.0 - p) / p);
  return a * b;
}

}  // namespace lps::kernels
