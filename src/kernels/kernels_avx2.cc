// AVX2 four-lane backend.
//
// GF(2^61 - 1) vector arithmetic: AVX2 has no 64x64 multiply, so a field
// product decomposes into four 32x32 _mm256_mul_epu32 partials. With both
// operands canonical (< 2^61) the cross terms fit 62 bits and the full
// product P = hh*2^64 + mid*2^32 + ll reduces with 2^61 = 1 (mod p):
//   ll        -> (ll & p) + (ll >> 61)
//   mid*2^32  -> ((mid & (2^29-1)) << 32) + (mid >> 29)
//   hh*2^64   -> hh << 3
// The sum stays below 2^63, two fold steps bring it under 2^61 + 4, and a
// single compare/subtract lands in canonical [0, p) — bit-identical to
// gf61::Mul. ScaleToRange and Horner evaluation build on the same pieces,
// so bucket indices and hash values match the scalar backend exactly.
//
// The Cauchy path (cauchy_pow_batch, p = 1) vectorizes the splitmix64
// finalizer with an emulated 64-bit low multiply, converts the 53-bit
// uniforms with the 2^52/2^84 magic-constant trick (exact), and evaluates
// tan(pi t) = sinpi(t) / sinpi(0.5 - |t|) with a degree-23 odd Taylor
// polynomial (truncation < 1e-19 on |t| <= 0.5). This path is
// query-equivalent, not bit-identical: libm's tan differs in the last few
// ULPs and the four-lane accumulation reassociates the sum. p != 1 calls
// the scalar reference and stays bit-identical.
#include "src/kernels/backends.h"

#if defined(__AVX2__) && !defined(LPS_DISABLE_SIMD)

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

#include "src/field/gf61.h"
#include "src/hash/kwise.h"
#include "src/kernels/stable_transform.h"
#include "src/util/random.h"

namespace lps::kernels::internal {

namespace gf = ::lps::gf61;

namespace {

inline __m256i Set1(uint64_t v) {
  return _mm256_set1_epi64x(static_cast<long long>(v));
}

/// v - p where v >= p, else v; valid for v <= 2^62 (signed compare safe).
inline __m256i CondSubP(__m256i v) {
  const __m256i mask = _mm256_cmpgt_epi64(v, Set1(gf::kP - 1));
  return _mm256_sub_epi64(v, _mm256_and_si256(mask, Set1(gf::kP)));
}

/// gf61::Add on canonical lanes.
inline __m256i AddP(__m256i a, __m256i b) {
  return CondSubP(_mm256_add_epi64(a, b));
}

/// gf61::Mul on canonical lanes; see the file comment for the derivation.
inline __m256i MulP(__m256i a, __m256i b) {
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i ll = _mm256_mul_epu32(a, b);      // a_lo * b_lo < 2^64
  const __m256i lh = _mm256_mul_epu32(a, b_hi);   // a_lo * b_hi < 2^61
  const __m256i hl = _mm256_mul_epu32(a_hi, b);   // a_hi * b_lo < 2^61
  const __m256i hh = _mm256_mul_epu32(a_hi, b_hi);  // a_hi * b_hi < 2^58
  const __m256i mid = _mm256_add_epi64(lh, hl);   // < 2^62
  __m256i s = _mm256_and_si256(ll, Set1(gf::kP));
  s = _mm256_add_epi64(s, _mm256_srli_epi64(ll, 61));
  s = _mm256_add_epi64(
      s, _mm256_slli_epi64(_mm256_and_si256(mid, Set1((1ULL << 29) - 1)), 32));
  s = _mm256_add_epi64(s, _mm256_srli_epi64(mid, 29));
  s = _mm256_add_epi64(s, _mm256_slli_epi64(hh, 3));  // < 2^63 in total
  s = _mm256_add_epi64(_mm256_and_si256(s, Set1(gf::kP)),
                       _mm256_srli_epi64(s, 61));
  s = _mm256_add_epi64(_mm256_and_si256(s, Set1(gf::kP)),
                       _mm256_srli_epi64(s, 61));
  return CondSubP(s);
}

/// hash::ScaleToRange on canonical lanes; range must fit 32 bits (row
/// widths are ints). Writing value*range = C*2^32 + B_lo with
/// C = value_hi*range + (value_lo*range >> 32) < 2^62 gives
///   x >> 61  = C >> 29
///   x mod p  = ((C & (2^29-1)) << 32) | B_lo
/// and the same single branchless correction as the scalar code.
inline __m256i ScaleToRangeVec(__m256i value, __m256i range) {
  const __m256i b_full = _mm256_mul_epu32(value, range);
  const __m256i a_part = _mm256_mul_epu32(_mm256_srli_epi64(value, 32), range);
  const __m256i c = _mm256_add_epi64(a_part, _mm256_srli_epi64(b_full, 32));
  const __m256i q = _mm256_srli_epi64(c, 29);
  const __m256i b_lo = _mm256_and_si256(b_full, Set1(0xFFFFFFFFULL));
  const __m256i rem = _mm256_add_epi64(
      _mm256_or_si256(
          _mm256_slli_epi64(_mm256_and_si256(c, Set1((1ULL << 29) - 1)), 32),
          b_lo),
      q);
  // q += (rem >= p): the compare mask is all-ones, i.e. -1, where true.
  return _mm256_sub_epi64(q, _mm256_cmpgt_epi64(rem, Set1(gf::kP - 1)));
}

/// Low 64 bits of a 64x64 product (no native epi64 multiply in AVX2).
inline __m256i MulLo64(__m256i a, __m256i b) {
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),
                       _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)));
  return _mm256_add_epi64(_mm256_mul_epu32(a, b),
                          _mm256_slli_epi64(cross, 32));
}

/// The splitmix64 finalizer (the body of Mix64 after the increment).
inline __m256i Mix64Fin(__m256i z) {
  z = MulLo64(_mm256_xor_si256(z, _mm256_srli_epi64(z, 30)),
              Set1(0xbf58476d1ce4e5b9ULL));
  z = MulLo64(_mm256_xor_si256(z, _mm256_srli_epi64(z, 27)),
              Set1(0x94d049bb133111ebULL));
  return _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
}

/// Exact u64 -> double for v < 2^53 (the 53-bit uniform mantissas): the
/// classic 2^52 / 2^84 magic-number reconstruction, every step exact.
inline __m256d U64ToDouble(__m256i v) {
  const __m256i lo =
      _mm256_or_si256(_mm256_and_si256(v, Set1(0xFFFFFFFFULL)),
                      Set1(0x4330000000000000ULL));  // 2^52 + lo32
  const __m256i hi = _mm256_or_si256(_mm256_srli_epi64(v, 32),
                                     Set1(0x4530000000000000ULL));  // 2^84 + hi32
  const __m256d hi_part = _mm256_sub_pd(_mm256_castsi256_pd(hi),
                                        _mm256_set1_pd(0x1.00000001p+84));
  return _mm256_add_pd(hi_part, _mm256_castsi256_pd(lo));
}

/// Odd Taylor coefficients of sin(pi x): x * (c[0] + c[1] x^2 + ...).
/// Truncation after x^23 is < 1e-19 on |x| <= 0.5.
struct SinPiCoeffs {
  double c[12];
};

const SinPiCoeffs& SinPiTable() {
  static const SinPiCoeffs table = [] {
    SinPiCoeffs t;
    constexpr double kPi = 3.141592653589793238462643383279502884;
    double coef = kPi;
    t.c[0] = coef;
    for (int k = 1; k < 12; ++k) {
      coef *= -kPi * kPi / static_cast<double>((2 * k) * (2 * k + 1));
      t.c[k] = coef;
    }
    return t;
  }();
  return table;
}

/// sin(pi x) for |x| <= 0.5 (odd polynomial, so the sign is inherent).
inline __m256d SinPiVec(__m256d x) {
  const SinPiCoeffs& k = SinPiTable();
  const __m256d x2 = _mm256_mul_pd(x, x);
  __m256d acc = _mm256_set1_pd(k.c[11]);
  for (int i = 10; i >= 0; --i) {
    acc = _mm256_add_pd(_mm256_mul_pd(acc, x2), _mm256_set1_pd(k.c[i]));
  }
  return _mm256_mul_pd(acc, x);
}

void KWiseHornerBatchAvx2(const uint64_t* coeffs, size_t k, const uint64_t* xs,
                          size_t count, uint64_t* out) {
  size_t t = 0;
  for (; t + 4 <= count; t += 4) {
    const __m256i x =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(xs + t));
    __m256i acc = Set1(coeffs[k - 1]);
    for (size_t i = k - 1; i-- > 0;) {
      acc = AddP(MulP(acc, x), Set1(coeffs[i]));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + t), acc);
  }
  for (; t < count; ++t) {
    out[t] = hash::PolyEval(coeffs, k, xs[t]);
  }
}

void Gf61MulBatchAvx2(const uint64_t* a, const uint64_t* b, size_t count,
                      uint64_t* out) {
  size_t t = 0;
  for (; t + 4 <= count; t += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + t));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + t));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + t), MulP(va, vb));
  }
  for (; t < count; ++t) {
    out[t] = gf::Mul(a[t], b[t]);
  }
}

void CountRowsApplyAvx2(const uint64_t* xs, const double* deltas, size_t count,
                        uint64_t b0, uint64_t b1, uint64_t s0, uint64_t s1,
                        bool use_sign, uint64_t range, double* row) {
  const __m256i vb0 = Set1(b0), vb1 = Set1(b1), vrange = Set1(range);
  alignas(32) uint64_t idx[4];
  alignas(32) double sd[4];
  size_t t = 0;
  if (use_sign) {
    const __m256i vs0 = Set1(s0), vs1 = Set1(s1);
    for (; t + 4 <= count; t += 4) {
      const __m256i x =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(xs + t));
      const __m256i bucket = ScaleToRangeVec(AddP(MulP(vb1, x), vb0), vrange);
      const __m256i bit =
          _mm256_and_si256(AddP(MulP(vs1, x), vs0), Set1(1));
      // (2*bit - 1) * delta is an exact sign flip in IEEE arithmetic, so
      // flipping the sign bit directly where bit == 0 is bit-identical.
      const __m256i flip =
          _mm256_slli_epi64(_mm256_xor_si256(bit, Set1(1)), 63);
      const __m256d signed_delta = _mm256_xor_pd(
          _mm256_loadu_pd(deltas + t), _mm256_castsi256_pd(flip));
      _mm256_store_si256(reinterpret_cast<__m256i*>(idx), bucket);
      _mm256_store_pd(sd, signed_delta);
      // Scatter stays scalar and in stream order: duplicate buckets within
      // the quad must accumulate in the same order as the scalar loop.
      row[idx[0]] += sd[0];
      row[idx[1]] += sd[1];
      row[idx[2]] += sd[2];
      row[idx[3]] += sd[3];
    }
    for (; t < count; ++t) {
      const uint64_t x = xs[t];
      const uint64_t k = hash::ScaleToRange(hash::PolyEval2(b0, b1, x), range);
      const int64_t bit = static_cast<int64_t>(hash::PolyEval2(s0, s1, x) & 1);
      row[k] += static_cast<double>(2 * bit - 1) * deltas[t];
    }
  } else {
    for (; t + 4 <= count; t += 4) {
      const __m256i x =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(xs + t));
      const __m256i bucket = ScaleToRangeVec(AddP(MulP(vb1, x), vb0), vrange);
      _mm256_store_si256(reinterpret_cast<__m256i*>(idx), bucket);
      row[idx[0]] += deltas[t];
      row[idx[1]] += deltas[t + 1];
      row[idx[2]] += deltas[t + 2];
      row[idx[3]] += deltas[t + 3];
    }
    for (; t < count; ++t) {
      const uint64_t k =
          hash::ScaleToRange(hash::PolyEval2(b0, b1, xs[t]), range);
      row[k] += deltas[t];
    }
  }
}

void Gf61SyndromeBatchAvx2(uint64_t* syndromes, size_t n, uint64_t power[4],
                           const uint64_t a[4]) {
  __m256i pv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(power));
  const __m256i av = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
  alignas(32) uint64_t lanes[4];
  for (size_t r = 0; r < n; ++r) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), pv);
    syndromes[r] =
        gf::Add(syndromes[r], gf::Add(gf::Add(lanes[0], lanes[1]),
                                      gf::Add(lanes[2], lanes[3])));
    pv = MulP(pv, av);
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(power), pv);
}

double CauchyPowBatchAvx2(double p, uint64_t row_base, const uint64_t* keys,
                          const double* deltas, size_t count, double init) {
  if (p != 1.0) {
    // Gaussian / Chambers-Mallows-Stuck need libm log/cos/pow; keep those
    // families on the exact scalar reference.
    return ScalarTable()->cauchy_pow_batch(p, row_base, keys, deltas, count,
                                           init);
  }
  constexpr uint64_t kGamma = 0x9e3779b97f4a7c15ULL;  // splitmix64 increment
  const __m256i vbase = Set1(row_base);
  const __m256i vgamma = Set1(kGamma);
  // Clamping the polynomial cos at cos(pi/2) as rounded by libm keeps the
  // u1 -> 1 pole's magnitude aligned with what scalar tan produces there.
  const __m256d cos_floor = _mm256_set1_pd(6.123233995736766e-17);
  __m256d acc = _mm256_setzero_pd();
  size_t t = 0;
  for (; t + 4 <= count; t += 4) {
    const __m256i key =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + t));
    const __m256i x = _mm256_xor_si256(key, vbase);
    const __m256i base = Mix64Fin(_mm256_add_epi64(x, vgamma));
    // Only w1 feeds the Cauchy transform; w2 is never consumed at p = 1.
    const __m256i w1 = Mix64Fin(_mm256_add_epi64(base, vgamma));
    const __m256d u1 = _mm256_mul_pd(
        _mm256_add_pd(U64ToDouble(_mm256_srli_epi64(w1, 11)),
                      _mm256_set1_pd(1.0)),
        _mm256_set1_pd(0x1.0p-53));
    const __m256d targ = _mm256_sub_pd(u1, _mm256_set1_pd(0.5));
    const __m256d abs_t =
        _mm256_andnot_pd(_mm256_set1_pd(-0.0), targ);
    const __m256d sin_num = SinPiVec(targ);
    const __m256d cos_den = _mm256_max_pd(
        SinPiVec(_mm256_sub_pd(_mm256_set1_pd(0.5), abs_t)), cos_floor);
    const __m256d cauchy = _mm256_div_pd(sin_num, cos_den);
    acc = _mm256_add_pd(acc,
                        _mm256_mul_pd(cauchy, _mm256_loadu_pd(deltas + t)));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double total = init + ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]));
  for (; t < count; ++t) {
    const uint64_t base = Mix64(row_base ^ keys[t]);
    uint64_t s = base;
    const uint64_t w1 = SplitMix64(s);
    const double u1 = (static_cast<double>(w1 >> 11) + 1.0) * 0x1.0p-53;
    total += StableFromUniformsImpl(1.0, u1, 0.5) * deltas[t];
  }
  return total;
}

const KernelTable kAvx2Table = {
    Backend::kAvx2,       KWiseHornerBatchAvx2, Gf61MulBatchAvx2,
    CountRowsApplyAvx2,   Gf61SyndromeBatchAvx2,
    CauchyPowBatchAvx2,
};

}  // namespace

const KernelTable* Avx2Table() { return &kAvx2Table; }

}  // namespace lps::kernels::internal

#else  // !__AVX2__ || LPS_DISABLE_SIMD

namespace lps::kernels::internal {

const KernelTable* Avx2Table() { return nullptr; }

}  // namespace lps::kernels::internal

#endif
