// Exact s-sparse recovery (Lemma 5): a random linear function
// L : R^n -> R^k with k = O(s), generated from O(k log n) random bits,
// such that for any s-sparse x the recovery procedure outputs x with
// probability 1, and otherwise outputs DENSE with high probability.
//
// Construction (Prony / Reed-Solomon syndromes over GF(2^61 - 1)):
//   measurements   T_r = sum_i x_i * a_i^r,  r = 0 .. 2s-1,  a_i = i + 1,
//   plus two fingerprints F_t = sum_i x_i * rho_t^{a_i} with random rho_t.
//
// Recovery runs Berlekamp-Massey on the syndromes, which for a genuinely
// <= s-sparse x provably yields the connection polynomial
// prod_j (1 - a_j x); the locator's roots are found by Cantor-Zassenhaus
// in O(s^2 log p) field operations (no O(n s) Chien search — see
// field/roots.h), values are recovered with a transposed-Vandermonde solve,
// and the fingerprints certify the result. Any inconsistency (locator does
// not split, roots outside [1, n], fingerprint mismatch) reports DENSE; a
// false accept requires both random fingerprints to collide, probability
// <= (n/p)^2 < 2^-80.
//
// Space: 2s + 2 field elements of 61 bits plus two 64-bit seeds —
// O(s log n) bits, matching Lemma 5.
#pragma once

#include <cstdint>
#include <vector>

#include "src/stream/linear_sketch.h"
#include "src/stream/update.h"
#include "src/util/random.h"
#include "src/util/serialize.h"
#include "src/util/status.h"

namespace lps::recovery {

class SparseRecovery : public LinearSketch {
 public:
  struct Entry {
    uint64_t index;
    int64_t value;
  };
  using SparseVector = std::vector<Entry>;

  /// Universe [0, n); recovers any vector with at most `s` non-zero
  /// coordinates exactly.
  SparseRecovery(uint64_t n, uint64_t s, uint64_t seed);

  void Update(uint64_t i, int64_t delta);

  /// Batched ingestion. Each update's syndrome contribution is a serial
  /// geometric chain in its own base a = i + 1 (a multiply-add per
  /// syndrome, 2s deep) — there is nothing to hoist across items, but the
  /// chains of different items are independent, so the batch kernel
  /// interleaves four of them and hides the field-multiply latency the
  /// scalar path is stuck serializing. GF(2^61 - 1) addition is exact and
  /// commutative, so the state is bit-identical to per-update processing.
  void UpdateBatch(const stream::Update* updates, size_t count) override;

  /// The exact sparse vector (possibly empty, for x == 0), or
  /// Status::Dense when x is not s-sparse (w.h.p.). Entries are sorted by
  /// index. Recovery is non-destructive and costs O(s^2 log p) field ops.
  Result<SparseVector> Recover() const;

  /// True iff all measurements are zero (x == 0 w.h.p.).
  bool IsZero() const;

  uint64_t s() const { return s_; }
  uint64_t n() const { return n_; }

  void SerializeCounters(BitWriter* writer) const;
  void DeserializeCounters(BitReader* reader);

  // LinearSketch contract: full-state serialization, merge, reset.
  void Merge(const LinearSketch& other) override;
  void MergeNegated(const LinearSketch& other) override;
  void Serialize(BitWriter* writer) const override;
  void Deserialize(BitReader* reader) override;
  void Reset() override;
  SketchKind kind() const override { return SketchKind::kSparseRecovery; }

  /// Paper-model space: (2s + 2) * 61 measurement bits + seed bits.
  size_t SpaceBits() const override {
    return syndromes_.size() * 61 + 2 * 61 + 2 * 64;
  }

 private:
  uint64_t n_;
  uint64_t s_;
  uint64_t seed_;
  uint64_t rho_[2];                  // fingerprint bases
  std::vector<uint64_t> syndromes_;  // T_0 .. T_{2s-1}
  uint64_t fingerprints_[2] = {0, 0};
};

}  // namespace lps::recovery
