#include "src/recovery/sparse_recovery.h"

#include <algorithm>

#include "src/field/berlekamp_massey.h"
#include "src/field/gf61.h"
#include "src/field/poly.h"
#include "src/field/roots.h"
#include "src/field/vandermonde.h"
#include "src/kernels/kernels.h"
#include "src/util/check.h"

namespace lps::recovery {

namespace gf = ::lps::gf61;

SparseRecovery::SparseRecovery(uint64_t n, uint64_t s, uint64_t seed)
    : n_(n), s_(s), seed_(seed), syndromes_(2 * s, 0) {
  LPS_CHECK(s >= 1);
  LPS_CHECK(n >= 1 && n < gf::kP - 1);
  Rng rng(seed);
  rho_[0] = 1 + rng.Below(gf::kP - 1);
  rho_[1] = 1 + rng.Below(gf::kP - 1);
}

void SparseRecovery::Update(uint64_t i, int64_t delta) {
  LPS_CHECK(i < n_);
  const uint64_t v = gf::FromInt64(delta);
  const uint64_t a = i + 1;
  uint64_t power = v;  // v * a^0
  for (uint64_t& t : syndromes_) {
    t = gf::Add(t, power);
    power = gf::Mul(power, a);
  }
  fingerprints_[0] = gf::Add(fingerprints_[0], gf::Mul(v, gf::Pow(rho_[0], a)));
  fingerprints_[1] = gf::Add(fingerprints_[1], gf::Mul(v, gf::Pow(rho_[1], a)));
}

void SparseRecovery::UpdateBatch(const stream::Update* updates, size_t count) {
  // Four items at a time: the per-item syndrome chain power *= a is a
  // serial multiply dependency 2s long; the Gf61SyndromeBatch kernel runs
  // four independent chains through one loop (interleaved scalar or one
  // vector lane each, depending on the dispatched backend). Field
  // addition is exact, so any accumulation order yields bit-identical
  // syndromes.
  const kernels::KernelTable& kernel = kernels::Active();
  size_t t = 0;
  for (; t + 4 <= count; t += 4) {
    uint64_t a[4], power[4];
    for (size_t j = 0; j < 4; ++j) {
      LPS_CHECK(updates[t + j].index < n_);
      a[j] = updates[t + j].index + 1;
      power[j] = gf::FromInt64(updates[t + j].delta);  // v * a^0
    }
    kernel.gf61_syndrome_batch(syndromes_.data(), syndromes_.size(), power, a);
    for (size_t j = 0; j < 4; ++j) {
      const uint64_t v = gf::FromInt64(updates[t + j].delta);
      fingerprints_[0] =
          gf::Add(fingerprints_[0], gf::Mul(v, gf::Pow(rho_[0], a[j])));
      fingerprints_[1] =
          gf::Add(fingerprints_[1], gf::Mul(v, gf::Pow(rho_[1], a[j])));
    }
  }
  for (; t < count; ++t) {
    Update(updates[t].index, updates[t].delta);
  }
}

void SparseRecovery::Merge(const LinearSketch& other) {
  const auto* o = dynamic_cast<const SparseRecovery*>(&other);
  LPS_CHECK(o != nullptr);
  LPS_CHECK(o->n_ == n_ && o->s_ == s_ && o->seed_ == seed_);
  for (size_t r = 0; r < syndromes_.size(); ++r) {
    syndromes_[r] = gf::Add(syndromes_[r], o->syndromes_[r]);
  }
  fingerprints_[0] = gf::Add(fingerprints_[0], o->fingerprints_[0]);
  fingerprints_[1] = gf::Add(fingerprints_[1], o->fingerprints_[1]);
}

void SparseRecovery::MergeNegated(const LinearSketch& other) {
  const auto* o = dynamic_cast<const SparseRecovery*>(&other);
  LPS_CHECK(o != nullptr);
  LPS_CHECK(o->n_ == n_ && o->s_ == s_ && o->seed_ == seed_);
  for (size_t r = 0; r < syndromes_.size(); ++r) {
    syndromes_[r] = gf::Sub(syndromes_[r], o->syndromes_[r]);
  }
  fingerprints_[0] = gf::Sub(fingerprints_[0], o->fingerprints_[0]);
  fingerprints_[1] = gf::Sub(fingerprints_[1], o->fingerprints_[1]);
}

void SparseRecovery::Serialize(BitWriter* writer) const {
  WriteSketchHeader(writer, kind());
  writer->WriteU64(n_);
  writer->WriteU64(s_);
  writer->WriteU64(seed_);
  SerializeCounters(writer);
}

void SparseRecovery::Deserialize(BitReader* reader) {
  ReadSketchHeader(reader, kind());
  const uint64_t n = reader->ReadU64();
  const uint64_t s = reader->ReadU64();
  const uint64_t seed = reader->ReadU64();
  *this = SparseRecovery(n, s, seed);
  DeserializeCounters(reader);
}

void SparseRecovery::Reset() {
  std::fill(syndromes_.begin(), syndromes_.end(), 0);
  fingerprints_[0] = 0;
  fingerprints_[1] = 0;
}

bool SparseRecovery::IsZero() const {
  if (fingerprints_[0] != 0 || fingerprints_[1] != 0) return false;
  for (uint64_t t : syndromes_) {
    if (t != 0) return false;
  }
  return true;
}

Result<SparseRecovery::SparseVector> SparseRecovery::Recover() const {
  if (IsZero()) return SparseVector{};

  // Shortest LFSR generating the syndrome sequence. For a genuinely
  // <= s-sparse vector, 2s syndromes determine the connection polynomial
  // prod_j (1 - a_j x) exactly.
  const poly::Poly connection = field::BerlekampMassey(syndromes_);
  const size_t degree = static_cast<size_t>(poly::Deg(connection));
  if (degree == 0 || degree > s_) {
    return Status::Dense("LFSR length exceeds sparsity budget");
  }

  // Locator polynomial: reversal of the connection polynomial. Its degree
  // drops below L iff the connection polynomial's top coefficient is zero,
  // which cannot happen for a genuine locator (top coeff = +-prod a_j != 0).
  poly::Poly locator = poly::Reverse(connection);
  if (static_cast<size_t>(poly::Deg(locator)) != degree) {
    return Status::Dense("degenerate locator polynomial");
  }

  Rng rng(Mix64(seed_ ^ 0x5eedULL));
  std::vector<uint64_t> roots = field::FindRoots(locator, &rng);
  if (roots.size() != degree) {
    return Status::Dense("locator does not split into distinct roots");
  }
  std::sort(roots.begin(), roots.end());
  for (uint64_t root : roots) {
    if (root == 0 || root > n_) return Status::Dense("root outside universe");
  }

  const std::vector<uint64_t> values =
      field::SolveTransposedVandermonde(roots, syndromes_);

  SparseVector result;
  result.reserve(degree);
  uint64_t check[2] = {0, 0};
  for (size_t j = 0; j < degree; ++j) {
    if (values[j] == 0) return Status::Dense("zero value at claimed support");
    result.push_back({roots[j] - 1, gf::ToInt64(values[j])});
    check[0] = gf::Add(check[0], gf::Mul(values[j], gf::Pow(rho_[0], roots[j])));
    check[1] = gf::Add(check[1], gf::Mul(values[j], gf::Pow(rho_[1], roots[j])));
  }
  if (check[0] != fingerprints_[0] || check[1] != fingerprints_[1]) {
    return Status::Dense("fingerprint mismatch");
  }
  return result;
}

void SparseRecovery::SerializeCounters(BitWriter* writer) const {
  for (uint64_t t : syndromes_) writer->WriteBits(t, 61);
  writer->WriteBits(fingerprints_[0], 61);
  writer->WriteBits(fingerprints_[1], 61);
}

void SparseRecovery::DeserializeCounters(BitReader* reader) {
  for (uint64_t& t : syndromes_) t = reader->ReadBits(61);
  fingerprints_[0] = reader->ReadBits(61);
  fingerprints_[1] = reader->ReadBits(61);
}

}  // namespace lps::recovery
