#include "src/recovery/one_sparse.h"

#include "src/field/gf61.h"
#include "src/util/check.h"
#include "src/util/random.h"

namespace lps::recovery {

namespace gf = ::lps::gf61;

OneSparse::OneSparse(uint64_t n, uint64_t seed) : n_(n), seed_(seed) {
  Rng rng(seed);
  rho_ = 1 + rng.Below(gf::kP - 1);  // non-zero base
}

void OneSparse::UpdateBatch(const stream::Update* updates, size_t count) {
  for (size_t t = 0; t < count; ++t) {
    Update(updates[t].index, updates[t].delta);
  }
}

void OneSparse::Update(uint64_t i, int64_t delta) {
  LPS_CHECK(i < n_);
  const uint64_t v = gf::FromInt64(delta);
  const uint64_t a = i + 1;
  s0_ = gf::Add(s0_, v);
  s1_ = gf::Add(s1_, gf::Mul(v, a));
  f_ = gf::Add(f_, gf::Mul(v, gf::Pow(rho_, a)));
}

bool OneSparse::IsZero() const { return s0_ == 0 && s1_ == 0 && f_ == 0; }

Result<OneSparse::Entry> OneSparse::Recover() const {
  if (s0_ == 0) return Status::Dense("zero or cancelling support");
  const uint64_t a = gf::Mul(s1_, gf::Inv(s0_));
  if (a == 0 || a > n_) return Status::Dense("index out of range");
  if (f_ != gf::Mul(s0_, gf::Pow(rho_, a))) {
    return Status::Dense("fingerprint mismatch");
  }
  return Entry{a - 1, gf::ToInt64(s0_)};
}

void OneSparse::Merge(const LinearSketch& other) {
  const auto* o = dynamic_cast<const OneSparse*>(&other);
  LPS_CHECK(o != nullptr);
  LPS_CHECK(o->n_ == n_ && o->seed_ == seed_);
  s0_ = gf::Add(s0_, o->s0_);
  s1_ = gf::Add(s1_, o->s1_);
  f_ = gf::Add(f_, o->f_);
}

void OneSparse::MergeNegated(const LinearSketch& other) {
  const auto* o = dynamic_cast<const OneSparse*>(&other);
  LPS_CHECK(o != nullptr);
  LPS_CHECK(o->n_ == n_ && o->seed_ == seed_);
  s0_ = gf::Sub(s0_, o->s0_);
  s1_ = gf::Sub(s1_, o->s1_);
  f_ = gf::Sub(f_, o->f_);
}

void OneSparse::Serialize(BitWriter* writer) const {
  WriteSketchHeader(writer, kind());
  writer->WriteU64(n_);
  writer->WriteU64(seed_);
  SerializeCounters(writer);
}

void OneSparse::Deserialize(BitReader* reader) {
  ReadSketchHeader(reader, kind());
  const uint64_t n = reader->ReadU64();
  const uint64_t seed = reader->ReadU64();
  *this = OneSparse(n, seed);
  DeserializeCounters(reader);
}

void OneSparse::SerializeCounters(BitWriter* writer) const {
  writer->WriteBits(s0_, 61);
  writer->WriteBits(s1_, 61);
  writer->WriteBits(f_, 61);
}

void OneSparse::DeserializeCounters(BitReader* reader) {
  s0_ = reader->ReadBits(61);
  s1_ = reader->ReadBits(61);
  f_ = reader->ReadBits(61);
}

}  // namespace lps::recovery
