// 1-sparse detector over GF(2^61 - 1): the classic (sum, weighted-sum,
// fingerprint) triple. Maintains
//
//   s0 = sum_i x_i,   s1 = sum_i x_i * a_i,   f = sum_i x_i * rho^{a_i}
//
// with nodes a_i = i + 1 and a random rho. If x is exactly 1-sparse with
// support {i}, then s1 / s0 = a_i recovers the index and s0 the value; the
// fingerprint check f == value * rho^{a_i} rejects non-1-sparse vectors
// except with probability <= n / p < 2^-40 (polynomial identity testing:
// f - value * rho^{a_i} is a non-zero polynomial of degree <= n in rho).
//
// Used as the bucket primitive of the Frahling-Indyk-Sohler-style baseline
// L0 sampler [12] and tested independently.
#pragma once

#include <cstdint>

#include "src/stream/linear_sketch.h"
#include "src/util/serialize.h"
#include "src/util/status.h"

namespace lps::recovery {

class OneSparse : public LinearSketch {
 public:
  struct Entry {
    uint64_t index;
    int64_t value;
  };

  /// Universe [0, n). The fingerprint base rho derives from `seed`.
  OneSparse(uint64_t n, uint64_t seed);

  void Update(uint64_t i, int64_t delta);

  /// Batched ingestion (plain loop — three counters, nothing to hoist).
  void UpdateBatch(const stream::Update* updates, size_t count) override;

  /// True iff every counter is zero (x == 0 w.h.p.).
  bool IsZero() const;

  /// Returns the unique entry if x is exactly 1-sparse; Status::Dense
  /// otherwise (including the zero vector, which is reported as Dense by
  /// this query — callers check IsZero first).
  Result<Entry> Recover() const;

  void SerializeCounters(BitWriter* writer) const;
  void DeserializeCounters(BitReader* reader);

  // LinearSketch contract: full-state serialization, merge, reset.
  void Merge(const LinearSketch& other) override;
  void MergeNegated(const LinearSketch& other) override;
  void Serialize(BitWriter* writer) const override;
  void Deserialize(BitReader* reader) override;
  void Reset() override { s0_ = s1_ = f_ = 0; }
  SketchKind kind() const override { return SketchKind::kOneSparse; }

  size_t SpaceBits() const override { return 3 * 61 + 64; }

 private:
  uint64_t n_;
  uint64_t seed_;
  uint64_t rho_;
  uint64_t s0_ = 0;  // field elements
  uint64_t s1_ = 0;
  uint64_t f_ = 0;
};

}  // namespace lps::recovery
