// Indyk's p-stable sketch for Lp norm estimation, p in (0, 2].
//
// Row j maintains y_j = sum_i s_{ij} x_i where the s_{ij} are i.i.d.
// standard p-stable variables; then |y_j| is distributed as ||x||_p times
// the absolute value of a standard p-stable variable, and
//
//   median_j |y_j| / median(|Stable(p)|)
//
// is a constant-factor estimator of ||x||_p with O(log n) rows (Lemma 2 /
// [17] provide the derandomized version; see DESIGN.md §1.3 for the
// substitution we make: stable variables are generated on the fly from a
// seeded hash of (row, coordinate), so the sketch stays linear and
// mergeable without storing any per-coordinate state).
//
// General-p variables use the Chambers-Mallows-Stuck transform; p = 1
// (Cauchy) and p = 2 (Gaussian) use their closed forms. The normalizing
// constant median(|Stable(p)|) is computed once per p by a deterministic
// offline simulation and cached.
#pragma once

#include <cstdint>
#include <vector>

#include "src/stream/linear_sketch.h"
#include "src/stream/update.h"
#include "src/util/serialize.h"

namespace lps::sketch {

/// Median of |X| for X standard p-stable (beta = 0, unit scale). Exact for
/// p = 1 and p = 2; computed by a seeded 2e5-sample simulation otherwise
/// (cached per p).
double StableMedianAbs(double p);

/// Draws the standard p-stable value determined by two uniforms
/// u1, u2 in (0,1); deterministic in its inputs.
double StableFromUniforms(double p, double u1, double u2);

class StableSketch : public LinearSketch {
 public:
  StableSketch(double p, int rows, uint64_t seed);

  /// Single-update path; delegates to UpdateBatch with a batch of one.
  void Update(uint64_t i, double delta);

  /// Batched ingestion, row-major: each row's counter accumulates the whole
  /// batch in a register, and the per-item half of the (row, i) hash — the
  /// key product and the delta widening — is hoisted out of the row sweep
  /// and computed once per batch. Bit-identical to per-update processing.
  void UpdateBatch(const stream::ScaledUpdate* updates, size_t count);
  void UpdateBatch(const stream::Update* updates, size_t count) override;

  /// Constant-factor estimate of ||x||_p (median / normalizer).
  double EstimateNorm() const;

  void SerializeCounters(BitWriter* writer) const;
  void DeserializeCounters(BitReader* reader);

  // LinearSketch contract: full-state serialization, merge, reset.
  void Merge(const LinearSketch& other) override;
  void MergeNegated(const LinearSketch& other) override;
  void Serialize(BitWriter* writer) const override;
  void Deserialize(BitReader* reader) override;
  void Reset() override;
  size_t SpaceBits() const override { return SpaceBits(64); }
  SketchKind kind() const override { return SketchKind::kStableSketch; }

  double p() const { return p_; }
  int rows() const { return rows_; }
  uint64_t seed() const { return seed_; }

  size_t SpaceBits(int bits_per_counter) const;

 private:
  double StableAt(int row, uint64_t i) const;
  /// StableAt with the per-item key product (i * kKeyMul) precomputed.
  double StableAtKeyed(int row, uint64_t key) const;

  template <typename U>
  void ApplyBatch(const U* updates, size_t count);

  double p_;
  int rows_;
  uint64_t seed_;
  double normalizer_;
  std::vector<double> y_;
  std::vector<uint64_t> key_scratch_;   // batch scratch: i * kKeyMul
  std::vector<double> delta_scratch_;   // batch scratch: widened deltas
};

}  // namespace lps::sketch
