#include "src/sketch/count_min.h"

#include <algorithm>

#include "src/kernels/kernels.h"
#include "src/util/check.h"
#include "src/util/random.h"

namespace lps::sketch {

CountMin::CountMin(int rows, int buckets, uint64_t seed)
    : rows_(rows), buckets_(buckets), seed_(seed),
      table_(static_cast<size_t>(rows) * static_cast<size_t>(buckets), 0.0) {
  LPS_CHECK(rows >= 1 && buckets >= 1);
  bucket_.reserve(static_cast<size_t>(rows));
  for (int j = 0; j < rows; ++j) {
    bucket_.emplace_back(2, Mix64(seed ^ (0x5150ULL + static_cast<uint64_t>(j))));
  }
}

void CountMin::Update(uint64_t i, double delta) {
  const stream::ScaledUpdate u{i, delta};
  UpdateBatch(&u, 1);
}

template <typename U>
void CountMin::ApplyBatch(const U* updates, size_t count) {
  reduced_keys_.resize(count);
  delta_scratch_.resize(count);
  for (size_t t = 0; t < count; ++t) {
    reduced_keys_[t] = gf61::Reduce(updates[t].index);
    delta_scratch_[t] = static_cast<double>(updates[t].delta);
  }
  const uint64_t range = static_cast<uint64_t>(buckets_);
  const kernels::KernelTable& kernel = kernels::Active();
  for (int j = 0; j < rows_; ++j) {
    const size_t jj = static_cast<size_t>(j);
    const auto& bc = bucket_[jj].coefficients();
    double* row = table_.data() + jj * static_cast<size_t>(buckets_);
    if (bc.size() == 2) {
      // Unsigned pairwise row on the dispatched kernel (bit-identical on
      // every backend; the scatter is in stream order).
      kernel.count_rows_apply(reduced_keys_.data(), delta_scratch_.data(),
                              count, bc[0], bc[1], /*s0=*/0, /*s1=*/0,
                              /*use_sign=*/false, range, row);
    } else {
      for (size_t t = 0; t < count; ++t) {
        const uint64_t k = hash::ScaleToRange(
            hash::PolyEval(bc.data(), bc.size(), reduced_keys_[t]), range);
        row[k] += static_cast<double>(updates[t].delta);
      }
    }
  }
}

void CountMin::UpdateBatch(const stream::ScaledUpdate* updates, size_t count) {
  ApplyBatch(updates, count);
}

void CountMin::UpdateBatch(const stream::Update* updates, size_t count) {
  ApplyBatch(updates, count);
}

double CountMin::QueryMin(uint64_t i) const {
  double best = 0;
  for (int j = 0; j < rows_; ++j) {
    const size_t jj = static_cast<size_t>(j);
    const uint64_t k = bucket_[jj].Range(i, static_cast<uint64_t>(buckets_));
    const double v = table_[jj * static_cast<size_t>(buckets_) + k];
    best = (j == 0) ? v : std::min(best, v);
  }
  return best;
}

double CountMin::QueryMedian(uint64_t i) const {
  std::vector<double> estimates(static_cast<size_t>(rows_));
  for (int j = 0; j < rows_; ++j) {
    const size_t jj = static_cast<size_t>(j);
    const uint64_t k = bucket_[jj].Range(i, static_cast<uint64_t>(buckets_));
    estimates[jj] = table_[jj * static_cast<size_t>(buckets_) + k];
  }
  const size_t mid = estimates.size() / 2;
  std::nth_element(estimates.begin(),
                   estimates.begin() + static_cast<int64_t>(mid),
                   estimates.end());
  double median = estimates[mid];
  if (estimates.size() % 2 == 0) {
    const double lower = *std::max_element(
        estimates.begin(), estimates.begin() + static_cast<int64_t>(mid));
    median = (median + lower) / 2;
  }
  return median;
}

void CountMin::SerializeCounters(BitWriter* writer) const {
  for (double counter : table_) writer->WriteDouble(counter);
}

void CountMin::DeserializeCounters(BitReader* reader) {
  for (double& counter : table_) counter = reader->ReadDouble();
}

void CountMin::Merge(const LinearSketch& other) {
  const auto* o = dynamic_cast<const CountMin*>(&other);
  LPS_CHECK(o != nullptr);
  LPS_CHECK(o->rows_ == rows_ && o->buckets_ == buckets_ &&
            o->seed_ == seed_);
  for (size_t c = 0; c < table_.size(); ++c) table_[c] += o->table_[c];
}

void CountMin::MergeNegated(const LinearSketch& other) {
  const auto* o = dynamic_cast<const CountMin*>(&other);
  LPS_CHECK(o != nullptr);
  LPS_CHECK(o->rows_ == rows_ && o->buckets_ == buckets_ &&
            o->seed_ == seed_);
  for (size_t c = 0; c < table_.size(); ++c) table_[c] -= o->table_[c];
}

void CountMin::Serialize(BitWriter* writer) const {
  WriteSketchHeader(writer, kind());
  writer->WriteBits(static_cast<uint64_t>(rows_), 32);
  writer->WriteBits(static_cast<uint64_t>(buckets_), 32);
  writer->WriteU64(seed_);
  SerializeCounters(writer);
}

void CountMin::Deserialize(BitReader* reader) {
  ReadSketchHeader(reader, kind());
  const int rows = static_cast<int>(reader->ReadBits(32));
  const int buckets = static_cast<int>(reader->ReadBits(32));
  const uint64_t seed = reader->ReadU64();
  *this = CountMin(rows, buckets, seed);
  DeserializeCounters(reader);
}

void CountMin::Reset() {
  std::fill(table_.begin(), table_.end(), 0.0);
}

size_t CountMin::SpaceBits(int bits_per_counter) const {
  size_t bits = table_.size() * static_cast<size_t>(bits_per_counter);
  for (const auto& h : bucket_) bits += h.SeedBits();
  return bits;
}

}  // namespace lps::sketch
