#include "src/sketch/dyadic.h"

#include <algorithm>
#include <cmath>

#include "src/util/check.h"
#include "src/util/random.h"

namespace lps::sketch {

DyadicCountMin::DyadicCountMin(int log_n, int rows, int buckets, uint64_t seed)
    : log_n_(log_n), rows_(rows), buckets_(buckets), seed_(seed) {
  LPS_CHECK(log_n >= 0 && log_n < 63);
  levels_.reserve(static_cast<size_t>(log_n) + 1);
  for (int l = 0; l <= log_n; ++l) {
    levels_.emplace_back(rows, buckets,
                         Mix64(seed ^ (0xd1adULL + static_cast<uint64_t>(l))));
  }
}

void DyadicCountMin::Update(uint64_t i, double delta) {
  const stream::ScaledUpdate u{i, delta};
  UpdateBatch(&u, 1);
}

template <typename U>
void DyadicCountMin::ApplyBatch(const U* updates, size_t count) {
  for (size_t t = 0; t < count; ++t) {
    LPS_CHECK(updates[t].index < (1ULL << log_n_));
  }
  shifted_.resize(count);
  for (int l = 0; l <= log_n_; ++l) {
    for (size_t t = 0; t < count; ++t) {
      shifted_[t] = {updates[t].index >> l,
                     static_cast<double>(updates[t].delta)};
    }
    levels_[static_cast<size_t>(l)].UpdateBatch(shifted_.data(), count);
  }
}

void DyadicCountMin::UpdateBatch(const stream::ScaledUpdate* updates,
                                 size_t count) {
  ApplyBatch(updates, count);
}

void DyadicCountMin::UpdateBatch(const stream::Update* updates, size_t count) {
  ApplyBatch(updates, count);
}

double DyadicCountMin::Query(uint64_t i) const {
  return levels_[0].QueryMin(i);
}

std::vector<uint64_t> DyadicCountMin::HeavyLeaves(double threshold) const {
  std::vector<uint64_t> heavy;
  for (uint64_t leaf : Candidates(threshold)) {
    if (levels_[0].QueryMin(leaf) >= threshold) heavy.push_back(leaf);
  }
  return heavy;
}

std::vector<uint64_t> DyadicCountMin::Candidates(double threshold) const {
  // Frontier of candidate blocks, expanded top-down. At the root level the
  // whole universe is one block (block id 0).
  std::vector<uint64_t> frontier = {0};
  for (int l = log_n_; l >= 1; --l) {
    std::vector<uint64_t> next;
    for (uint64_t block : frontier) {
      if (levels_[static_cast<size_t>(l)].QueryMin(block) >= threshold) {
        next.push_back(block << 1);
        next.push_back((block << 1) | 1);
      }
    }
    frontier = std::move(next);
    if (frontier.empty()) break;
  }
  return frontier;
}

void DyadicCountMin::Merge(const LinearSketch& other) {
  const auto* o = dynamic_cast<const DyadicCountMin*>(&other);
  LPS_CHECK(o != nullptr);
  LPS_CHECK(o->log_n_ == log_n_ && o->rows_ == rows_ &&
            o->buckets_ == buckets_ && o->seed_ == seed_);
  for (size_t l = 0; l < levels_.size(); ++l) levels_[l].Merge(o->levels_[l]);
}

void DyadicCountMin::MergeNegated(const LinearSketch& other) {
  const auto* o = dynamic_cast<const DyadicCountMin*>(&other);
  LPS_CHECK(o != nullptr);
  LPS_CHECK(o->log_n_ == log_n_ && o->rows_ == rows_ &&
            o->buckets_ == buckets_ && o->seed_ == seed_);
  for (size_t l = 0; l < levels_.size(); ++l) {
    levels_[l].MergeNegated(o->levels_[l]);
  }
}

void DyadicCountMin::SerializeCounters(BitWriter* writer) const {
  for (const auto& level : levels_) level.SerializeCounters(writer);
}

void DyadicCountMin::DeserializeCounters(BitReader* reader) {
  for (auto& level : levels_) level.DeserializeCounters(reader);
}

void DyadicCountMin::Serialize(BitWriter* writer) const {
  WriteSketchHeader(writer, kind());
  writer->WriteBits(static_cast<uint64_t>(log_n_), 32);
  writer->WriteBits(static_cast<uint64_t>(rows_), 32);
  writer->WriteBits(static_cast<uint64_t>(buckets_), 32);
  writer->WriteU64(seed_);
  SerializeCounters(writer);
}

void DyadicCountMin::Deserialize(BitReader* reader) {
  ReadSketchHeader(reader, kind());
  const int log_n = static_cast<int>(reader->ReadBits(32));
  const int rows = static_cast<int>(reader->ReadBits(32));
  const int buckets = static_cast<int>(reader->ReadBits(32));
  const uint64_t seed = reader->ReadU64();
  *this = DyadicCountMin(log_n, rows, buckets, seed);
  DeserializeCounters(reader);
}

void DyadicCountMin::Reset() {
  for (auto& level : levels_) level.Reset();
}

size_t DyadicCountMin::SpaceBits(int bits_per_counter) const {
  size_t bits = 0;
  for (const auto& level : levels_) bits += level.SpaceBits(bits_per_counter);
  return bits;
}

DyadicCountSketch::DyadicCountSketch(int log_n, int rows, int buckets,
                                     uint64_t seed)
    : log_n_(log_n), rows_(rows), buckets_(buckets), seed_(seed) {
  LPS_CHECK(log_n >= 0 && log_n < 63);
  levels_.reserve(static_cast<size_t>(log_n) + 1);
  for (int l = 0; l <= log_n; ++l) {
    levels_.emplace_back(
        rows, buckets, Mix64(seed ^ (0xdc5ULL + static_cast<uint64_t>(l))));
  }
}

void DyadicCountSketch::Update(uint64_t i, double delta) {
  const stream::ScaledUpdate u{i, delta};
  UpdateBatch(&u, 1);
}

template <typename U>
void DyadicCountSketch::ApplyBatch(const U* updates, size_t count) {
  for (size_t t = 0; t < count; ++t) {
    LPS_CHECK(updates[t].index < (1ULL << log_n_));
  }
  shifted_.resize(count);
  for (int l = 0; l <= log_n_; ++l) {
    for (size_t t = 0; t < count; ++t) {
      shifted_[t] = {updates[t].index >> l,
                     static_cast<double>(updates[t].delta)};
    }
    levels_[static_cast<size_t>(l)].UpdateBatch(shifted_.data(), count);
  }
}

void DyadicCountSketch::UpdateBatch(const stream::ScaledUpdate* updates,
                                    size_t count) {
  ApplyBatch(updates, count);
}

void DyadicCountSketch::UpdateBatch(const stream::Update* updates,
                                    size_t count) {
  ApplyBatch(updates, count);
}

double DyadicCountSketch::Query(uint64_t i) const {
  return levels_[0].Query(i);
}

int DyadicCountSketch::start_level() const { return std::max(0, log_n_ - 6); }

std::vector<uint64_t> DyadicCountSketch::HeavyLeaves(double threshold) const {
  std::vector<uint64_t> heavy;
  for (uint64_t leaf : Candidates(threshold)) {
    if (std::abs(levels_[0].Query(leaf)) >= threshold) heavy.push_back(leaf);
  }
  return heavy;
}

std::vector<uint64_t> DyadicCountSketch::Candidates(double threshold) const {
  // Scan every block of the starting level (at most 2^6 of them), then
  // descend. Expansion uses the halved threshold (block estimates are
  // noisy in both directions under general updates); leaves are for the
  // caller to verify.
  const int start = start_level();
  std::vector<uint64_t> frontier;
  for (uint64_t block = 0; block < (1ULL << (log_n_ - start)); ++block) {
    frontier.push_back(block);
  }
  const double expand = threshold / 2;
  for (int l = start; l >= 1; --l) {
    std::vector<uint64_t> next;
    for (uint64_t block : frontier) {
      if (std::abs(levels_[static_cast<size_t>(l)].Query(block)) >= expand) {
        next.push_back(block << 1);
        next.push_back((block << 1) | 1);
      }
    }
    frontier = std::move(next);
    if (frontier.empty()) break;
  }
  return frontier;
}

std::vector<uint64_t> DyadicCountSketch::TopCandidates(uint64_t m) const {
  const size_t beam = static_cast<size_t>(std::max<uint64_t>(4 * m, 64));
  const int start = start_level();
  std::vector<std::pair<double, uint64_t>> frontier;  // (|estimate|, block)
  frontier.reserve(1ULL << (log_n_ - start));
  for (uint64_t block = 0; block < (1ULL << (log_n_ - start)); ++block) {
    frontier.emplace_back(
        std::abs(levels_[static_cast<size_t>(start)].Query(block)), block);
  }
  // Keep the beam deterministic: |estimate| desc, block id asc on ties.
  const auto heavier = [](const std::pair<double, uint64_t>& a,
                          const std::pair<double, uint64_t>& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  };
  std::vector<std::pair<double, uint64_t>> next;
  for (int l = start; l >= 1; --l) {
    if (frontier.size() > beam) {
      std::partial_sort(frontier.begin(),
                        frontier.begin() + static_cast<int64_t>(beam),
                        frontier.end(), heavier);
      frontier.resize(beam);
    }
    next.clear();
    next.reserve(2 * frontier.size());
    const auto& child_level = levels_[static_cast<size_t>(l - 1)];
    for (const auto& [est, block] : frontier) {
      for (uint64_t child : {block << 1, (block << 1) | 1}) {
        next.emplace_back(std::abs(child_level.Query(child)), child);
      }
    }
    frontier.swap(next);
  }
  if (frontier.size() > beam) {
    std::partial_sort(frontier.begin(),
                      frontier.begin() + static_cast<int64_t>(beam),
                      frontier.end(), heavier);
    frontier.resize(beam);
  }
  std::vector<uint64_t> leaves;
  leaves.reserve(frontier.size());
  for (const auto& [est, leaf] : frontier) leaves.push_back(leaf);
  std::sort(leaves.begin(), leaves.end());
  return leaves;
}

void DyadicCountSketch::Merge(const LinearSketch& other) {
  const auto* o = dynamic_cast<const DyadicCountSketch*>(&other);
  LPS_CHECK(o != nullptr);
  LPS_CHECK(o->log_n_ == log_n_ && o->rows_ == rows_ &&
            o->buckets_ == buckets_ && o->seed_ == seed_);
  for (size_t l = 0; l < levels_.size(); ++l) levels_[l].Merge(o->levels_[l]);
}

void DyadicCountSketch::MergeNegated(const LinearSketch& other) {
  const auto* o = dynamic_cast<const DyadicCountSketch*>(&other);
  LPS_CHECK(o != nullptr);
  LPS_CHECK(o->log_n_ == log_n_ && o->rows_ == rows_ &&
            o->buckets_ == buckets_ && o->seed_ == seed_);
  for (size_t l = 0; l < levels_.size(); ++l) {
    levels_[l].MergeNegated(o->levels_[l]);
  }
}

void DyadicCountSketch::SerializeCounters(BitWriter* writer) const {
  for (const auto& level : levels_) level.SerializeCounters(writer);
}

void DyadicCountSketch::DeserializeCounters(BitReader* reader) {
  for (auto& level : levels_) level.DeserializeCounters(reader);
}

void DyadicCountSketch::Serialize(BitWriter* writer) const {
  WriteSketchHeader(writer, kind());
  writer->WriteBits(static_cast<uint64_t>(log_n_), 32);
  writer->WriteBits(static_cast<uint64_t>(rows_), 32);
  writer->WriteBits(static_cast<uint64_t>(buckets_), 32);
  writer->WriteU64(seed_);
  SerializeCounters(writer);
}

void DyadicCountSketch::Deserialize(BitReader* reader) {
  ReadSketchHeader(reader, kind());
  const int log_n = static_cast<int>(reader->ReadBits(32));
  const int rows = static_cast<int>(reader->ReadBits(32));
  const int buckets = static_cast<int>(reader->ReadBits(32));
  const uint64_t seed = reader->ReadU64();
  *this = DyadicCountSketch(log_n, rows, buckets, seed);
  DeserializeCounters(reader);
}

void DyadicCountSketch::Reset() {
  for (auto& level : levels_) level.Reset();
}

size_t DyadicCountSketch::SpaceBits(int bits_per_counter) const {
  size_t bits = 0;
  for (const auto& level : levels_) bits += level.SpaceBits(bits_per_counter);
  return bits;
}

}  // namespace lps::sketch
