// The count-min sketch of Cormode and Muthukrishnan [8], plus the
// count-median estimator, used by the heavy-hitters module (Section 4.4).
//
//   - QueryMin: the classic min-over-rows estimate; an overestimate that is
//     within ||x||_1 / buckets of the truth w.h.p. in the strict turnstile
//     model (all x_i >= 0 at query time).
//   - QueryMedian: median-over-rows; works under general updates with
//     error 3 ||x||_1 / buckets w.h.p. (the count-median of [8]).
#pragma once

#include <cstdint>
#include <vector>

#include "src/hash/kwise.h"
#include "src/stream/linear_sketch.h"
#include "src/stream/update.h"
#include "src/util/serialize.h"

namespace lps::sketch {

class CountMin : public LinearSketch {
 public:
  CountMin(int rows, int buckets, uint64_t seed);

  /// Single-update path; delegates to UpdateBatch with a batch of one.
  void Update(uint64_t i, double delta);

  /// Batched ingestion, row-major; bit-identical to per-update processing.
  void UpdateBatch(const stream::ScaledUpdate* updates, size_t count);
  void UpdateBatch(const stream::Update* updates, size_t count) override;

  /// Strict-turnstile estimate (upper bound on x_i w.h.p. of construction).
  double QueryMin(uint64_t i) const;

  /// General-update estimate (count-median).
  double QueryMedian(uint64_t i) const;

  void SerializeCounters(BitWriter* writer) const;
  void DeserializeCounters(BitReader* reader);

  // LinearSketch contract: full-state serialization, merge, reset.
  void Merge(const LinearSketch& other) override;
  void MergeNegated(const LinearSketch& other) override;
  void Serialize(BitWriter* writer) const override;
  void Deserialize(BitReader* reader) override;
  void Reset() override;
  size_t SpaceBits() const override { return SpaceBits(64); }
  SketchKind kind() const override { return SketchKind::kCountMin; }

  int rows() const { return rows_; }
  int buckets() const { return buckets_; }
  uint64_t seed() const { return seed_; }

  size_t SpaceBits(int bits_per_counter) const;

 private:
  template <typename U>
  void ApplyBatch(const U* updates, size_t count);

  int rows_;
  int buckets_;
  uint64_t seed_;
  std::vector<double> table_;
  std::vector<hash::KWiseHash> bucket_;
  std::vector<uint64_t> reduced_keys_;  // batch scratch
  std::vector<double> delta_scratch_;   // batch scratch: deltas widened
};

}  // namespace lps::sketch
