#include "src/sketch/stable_sketch.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "src/kernels/kernels.h"
#include "src/kernels/stable_transform.h"
#include "src/util/check.h"
#include "src/util/random.h"

namespace lps::sketch {

double StableFromUniforms(double p, double u1, double u2) {
  // The transform itself lives in the kernel layer (the batch kernels'
  // p != 1 fallback is this exact function); this wrapper keeps the
  // historical sketch-level API for queries, calibration and tests.
  return kernels::StableFromUniformsImpl(p, u1, u2);
}

double StableMedianAbs(double p) {
  LPS_CHECK(p > 0 && p <= 2);
  if (p == 1.0) return 1.0;  // median |Cauchy| = tan(pi/4)
  if (p == 2.0) return 0.6744897501960817;  // Phi^{-1}(0.75)
  static std::map<double, double> cache;
  auto it = cache.find(p);
  if (it != cache.end()) return it->second;
  // Deterministic offline calibration with a fixed seed; 200001 samples give
  // the median to ~3 decimal places, ample for a constant-factor estimator.
  Rng rng(0xace1dULL);
  const int kSamples = 200001;
  std::vector<double> values(kSamples);
  for (auto& value : values) {
    value = std::abs(
        StableFromUniforms(p, rng.NextDoublePositive(), rng.NextDoublePositive()));
  }
  auto mid = values.begin() + kSamples / 2;
  std::nth_element(values.begin(), mid, values.end());
  cache[p] = *mid;
  return *mid;
}

StableSketch::StableSketch(double p, int rows, uint64_t seed)
    : p_(p), rows_(rows), seed_(seed), normalizer_(StableMedianAbs(p)),
      y_(static_cast<size_t>(rows), 0.0) {
  LPS_CHECK(p > 0 && p <= 2);
  LPS_CHECK(rows >= 1);
}

namespace {
// Key mixing multipliers of the (seed, row, i) hash behind StableAt.
constexpr uint64_t kRowMul = 0x9e3779b97f4a7c15ULL;
constexpr uint64_t kKeyMul = 0xc2b2ae3d27d4eb4fULL;
}  // namespace

double StableSketch::StableAt(int row, uint64_t i) const {
  return StableAtKeyed(row, i * kKeyMul);
}

double StableSketch::StableAtKeyed(int row, uint64_t key) const {
  // Two independent uniforms in (0,1] from a hash of (seed, row, i). The
  // same (row, i) always yields the same stable value, keeping the sketch
  // linear. `key` is i * kKeyMul, precomputed once per batch item.
  const uint64_t base =
      Mix64(seed_ ^ (static_cast<uint64_t>(row) * kRowMul) ^ key);
  uint64_t s = base;
  const uint64_t w1 = SplitMix64(s);
  const uint64_t w2 = SplitMix64(s);
  const double u1 = (static_cast<double>(w1 >> 11) + 1.0) * 0x1.0p-53;
  const double u2 = (static_cast<double>(w2 >> 11) + 1.0) * 0x1.0p-53;
  return StableFromUniforms(p_, u1, u2);
}

void StableSketch::Update(uint64_t i, double delta) {
  const stream::ScaledUpdate u{i, delta};
  UpdateBatch(&u, 1);
}

template <typename U>
void StableSketch::ApplyBatch(const U* updates, size_t count) {
  // Hoist the per-item work shared by all rows — the key product of the
  // (row, i) hash and the delta widening — so the row sweep is purely the
  // per-(row, item) mix + stable transform.
  key_scratch_.resize(count);
  delta_scratch_.resize(count);
  for (size_t t = 0; t < count; ++t) {
    key_scratch_[t] = updates[t].index * kKeyMul;
    delta_scratch_[t] = static_cast<double>(updates[t].delta);
  }
  const kernels::KernelTable& kernel = kernels::Active();
  for (int j = 0; j < rows_; ++j) {
    // The whole row inner product is one CauchyPowBatch call: the kernel
    // regenerates Stable_p(row, i) from row_base ^ key exactly like
    // StableAtKeyed and accumulates against the deltas. The scalar
    // backend is bit-identical to the historical loop; SIMD backends
    // vectorize the p = 1 Cauchy transform (query-equivalent).
    const uint64_t row_base =
        seed_ ^ (static_cast<uint64_t>(j) * kRowMul);
    y_[static_cast<size_t>(j)] = kernel.cauchy_pow_batch(
        p_, row_base, key_scratch_.data(), delta_scratch_.data(), count,
        y_[static_cast<size_t>(j)]);
  }
}

void StableSketch::UpdateBatch(const stream::ScaledUpdate* updates,
                               size_t count) {
  ApplyBatch(updates, count);
}

void StableSketch::UpdateBatch(const stream::Update* updates, size_t count) {
  ApplyBatch(updates, count);
}

double StableSketch::EstimateNorm() const {
  std::vector<double> magnitudes(y_.size());
  for (size_t j = 0; j < y_.size(); ++j) magnitudes[j] = std::abs(y_[j]);
  auto mid = magnitudes.begin() + static_cast<int64_t>(magnitudes.size() / 2);
  std::nth_element(magnitudes.begin(), mid, magnitudes.end());
  return *mid / normalizer_;
}

void StableSketch::SerializeCounters(BitWriter* writer) const {
  for (double counter : y_) writer->WriteDouble(counter);
}

void StableSketch::DeserializeCounters(BitReader* reader) {
  for (double& counter : y_) counter = reader->ReadDouble();
}

void StableSketch::Merge(const LinearSketch& other) {
  const auto* o = dynamic_cast<const StableSketch*>(&other);
  LPS_CHECK(o != nullptr);
  LPS_CHECK(o->p_ == p_ && o->rows_ == rows_ && o->seed_ == seed_);
  for (size_t j = 0; j < y_.size(); ++j) y_[j] += o->y_[j];
}

void StableSketch::MergeNegated(const LinearSketch& other) {
  const auto* o = dynamic_cast<const StableSketch*>(&other);
  LPS_CHECK(o != nullptr);
  LPS_CHECK(o->p_ == p_ && o->rows_ == rows_ && o->seed_ == seed_);
  for (size_t j = 0; j < y_.size(); ++j) y_[j] -= o->y_[j];
}

void StableSketch::Serialize(BitWriter* writer) const {
  WriteSketchHeader(writer, kind());
  writer->WriteDouble(p_);
  writer->WriteBits(static_cast<uint64_t>(rows_), 32);
  writer->WriteU64(seed_);
  SerializeCounters(writer);
}

void StableSketch::Deserialize(BitReader* reader) {
  ReadSketchHeader(reader, kind());
  const double p = reader->ReadDouble();
  const int rows = static_cast<int>(reader->ReadBits(32));
  const uint64_t seed = reader->ReadU64();
  *this = StableSketch(p, rows, seed);
  DeserializeCounters(reader);
}

void StableSketch::Reset() { std::fill(y_.begin(), y_.end(), 0.0); }

size_t StableSketch::SpaceBits(int bits_per_counter) const {
  // Counters plus the 64-bit seed that generates the stable variables.
  return y_.size() * static_cast<size_t>(bits_per_counter) + 64;
}

}  // namespace lps::sketch
