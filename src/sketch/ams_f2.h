// The AMS / tug-of-war F2 sketch (Alon-Matias-Szegedy), used by the Lp
// sampler's recovery stage to estimate ||z - \hat{z}||_2 (Figure 1, step 3
// of the recovery stage).
//
// Layout: `groups` independent groups of `per_group` counters; counter c
// maintains sum_i s_c(i) x_i with a 4-wise independent sign hash s_c. Each
// counter's square is an unbiased F2 estimate with bounded variance
// (4-wise independence suffices); the estimator is the median over groups
// of the mean within a group. Because the sketch is linear, the residual
// z - \hat{z} is estimated by cloning the counters and subtracting the
// m-sparse \hat{z} at query time — this is exactly how the paper computes
// L'(z - \hat{z}) = L'(z) - L'(\hat{z}).
#pragma once

#include <cstdint>
#include <vector>

#include "src/hash/kwise.h"
#include "src/stream/linear_sketch.h"
#include "src/stream/update.h"

namespace lps::sketch {

class AmsF2 : public LinearSketch {
 public:
  AmsF2(int groups, int per_group, uint64_t seed);

  /// Single-update path; delegates to UpdateBatch with a batch of one.
  void Update(uint64_t i, double delta);

  /// Batched ingestion, counter-major: each counter's 4-wise sign
  /// polynomial is hoisted out of the inner loop and the counter accumulates
  /// in a register. Bit-identical to per-update processing.
  void UpdateBatch(const stream::ScaledUpdate* updates, size_t count);
  void UpdateBatch(const stream::Update* updates, size_t count) override;

  /// Median-of-means estimate of F2 = ||x||_2^2.
  double EstimateF2() const;

  /// sqrt of EstimateF2.
  double EstimateL2() const;

  /// Estimate of ||x - v||_2 where v is the given sparse vector; the sketch
  /// itself is unchanged.
  double EstimateResidualL2(
      const std::vector<std::pair<uint64_t, double>>& v) const;

  // LinearSketch contract: full-state serialization, merge, reset.
  void Merge(const LinearSketch& other) override;
  void MergeNegated(const LinearSketch& other) override;
  void Serialize(BitWriter* writer) const override;
  void Deserialize(BitReader* reader) override;
  void Reset() override;
  size_t SpaceBits() const override { return SpaceBits(64); }
  SketchKind kind() const override { return SketchKind::kAmsF2; }

  int groups() const { return groups_; }
  int per_group() const { return per_group_; }

  size_t SpaceBits(int bits_per_counter) const;

 private:
  double EstimateF2From(const std::vector<double>& counters) const;

  template <typename U>
  void ApplyBatch(const U* updates, size_t count);

  int groups_;
  int per_group_;
  uint64_t seed_;
  std::vector<double> counters_;        // groups_ x per_group_
  std::vector<hash::KWiseHash> signs_;  // one 4-wise sign hash per counter
  std::vector<uint64_t> reduced_keys_;  // batch scratch
  std::vector<uint64_t> eval_scratch_;  // batch scratch: sign hash values
  std::vector<double> delta_scratch_;   // batch scratch: deltas widened
};

}  // namespace lps::sketch
