#include "src/sketch/ams_f2.h"

#include <algorithm>
#include <cmath>

#include "src/kernels/kernels.h"
#include "src/util/check.h"
#include "src/util/random.h"

namespace lps::sketch {

AmsF2::AmsF2(int groups, int per_group, uint64_t seed)
    : groups_(groups), per_group_(per_group), seed_(seed),
      counters_(static_cast<size_t>(groups) * static_cast<size_t>(per_group),
                0.0) {
  LPS_CHECK(groups >= 1 && per_group >= 1);
  signs_.reserve(counters_.size());
  for (size_t c = 0; c < counters_.size(); ++c) {
    signs_.emplace_back(4, Mix64(seed ^ (0xa3a3ULL + c)));
  }
}

void AmsF2::Update(uint64_t i, double delta) {
  const stream::ScaledUpdate u{i, delta};
  UpdateBatch(&u, 1);
}

template <typename U>
void AmsF2::ApplyBatch(const U* updates, size_t count) {
  reduced_keys_.resize(count);
  delta_scratch_.resize(count);
  eval_scratch_.resize(count);
  for (size_t t = 0; t < count; ++t) {
    reduced_keys_[t] = gf61::Reduce(updates[t].index);
    delta_scratch_[t] = static_cast<double>(updates[t].delta);
  }
  const kernels::KernelTable& kernel = kernels::Active();
  for (size_t c = 0; c < counters_.size(); ++c) {
    // The degree-3 sign hash dominates this loop; it runs on the
    // dispatched Horner kernel. The +-1 accumulation stays scalar and in
    // stream order, so counters are bit-identical on every backend.
    const auto& coeffs = signs_[c].coefficients();
    kernel.kwise_horner_batch(coeffs.data(), coeffs.size(),
                              reduced_keys_.data(), count,
                              eval_scratch_.data());
    double acc = counters_[c];
    for (size_t t = 0; t < count; ++t) {
      const int64_t bit = static_cast<int64_t>(eval_scratch_[t] & 1);
      acc += static_cast<double>(2 * bit - 1) * delta_scratch_[t];
    }
    counters_[c] = acc;
  }
}

void AmsF2::UpdateBatch(const stream::ScaledUpdate* updates, size_t count) {
  ApplyBatch(updates, count);
}

void AmsF2::UpdateBatch(const stream::Update* updates, size_t count) {
  ApplyBatch(updates, count);
}

double AmsF2::EstimateF2From(const std::vector<double>& counters) const {
  std::vector<double> group_means(static_cast<size_t>(groups_));
  for (int g = 0; g < groups_; ++g) {
    double sum = 0;
    for (int c = 0; c < per_group_; ++c) {
      const double v =
          counters[static_cast<size_t>(g) * static_cast<size_t>(per_group_) +
                   static_cast<size_t>(c)];
      sum += v * v;
    }
    group_means[static_cast<size_t>(g)] = sum / per_group_;
  }
  const size_t mid = group_means.size() / 2;
  std::nth_element(group_means.begin(),
                   group_means.begin() + static_cast<int64_t>(mid),
                   group_means.end());
  return group_means[mid];
}

double AmsF2::EstimateF2() const { return EstimateF2From(counters_); }

double AmsF2::EstimateL2() const { return std::sqrt(EstimateF2()); }

double AmsF2::EstimateResidualL2(
    const std::vector<std::pair<uint64_t, double>>& v) const {
  std::vector<double> shadow = counters_;
  for (const auto& [i, value] : v) {
    for (size_t c = 0; c < shadow.size(); ++c) {
      shadow[c] -= static_cast<double>(signs_[c].Sign(i)) * value;
    }
  }
  return std::sqrt(EstimateF2From(shadow));
}

void AmsF2::Merge(const LinearSketch& other) {
  const auto* o = dynamic_cast<const AmsF2*>(&other);
  LPS_CHECK(o != nullptr);
  LPS_CHECK(o->groups_ == groups_ && o->per_group_ == per_group_ &&
            o->seed_ == seed_);
  for (size_t c = 0; c < counters_.size(); ++c) counters_[c] += o->counters_[c];
}

void AmsF2::MergeNegated(const LinearSketch& other) {
  const auto* o = dynamic_cast<const AmsF2*>(&other);
  LPS_CHECK(o != nullptr);
  LPS_CHECK(o->groups_ == groups_ && o->per_group_ == per_group_ &&
            o->seed_ == seed_);
  for (size_t c = 0; c < counters_.size(); ++c) counters_[c] -= o->counters_[c];
}

void AmsF2::Serialize(BitWriter* writer) const {
  WriteSketchHeader(writer, kind());
  writer->WriteBits(static_cast<uint64_t>(groups_), 32);
  writer->WriteBits(static_cast<uint64_t>(per_group_), 32);
  writer->WriteU64(seed_);
  for (double counter : counters_) writer->WriteDouble(counter);
}

void AmsF2::Deserialize(BitReader* reader) {
  ReadSketchHeader(reader, kind());
  const int groups = static_cast<int>(reader->ReadBits(32));
  const int per_group = static_cast<int>(reader->ReadBits(32));
  const uint64_t seed = reader->ReadU64();
  *this = AmsF2(groups, per_group, seed);
  for (double& counter : counters_) counter = reader->ReadDouble();
}

void AmsF2::Reset() {
  std::fill(counters_.begin(), counters_.end(), 0.0);
}

size_t AmsF2::SpaceBits(int bits_per_counter) const {
  size_t bits = counters_.size() * static_cast<size_t>(bits_per_counter);
  for (const auto& h : signs_) bits += h.SeedBits();
  return bits;
}

}  // namespace lps::sketch
