// Dyadic count-min tree for sublinear heavy-hitter extraction in the strict
// turnstile model.
//
// The flat count-sketch heavy hitter of Section 4.4 answers point queries
// and extracts the heavy set by scanning [n] — the right cost model for the
// paper's space bounds, but linear-time at query. Production systems use
// the standard dyadic decomposition instead: level l aggregates x over
// aligned blocks of size 2^l and keeps its own count-min sketch; the heavy
// set is found by descending from the root, expanding only blocks whose
// estimated mass clears the threshold. Query cost is O(#heavy * log n *
// rows) instead of O(n * rows).
#pragma once

#include <cstdint>
#include <vector>

#include "src/sketch/count_min.h"
#include "src/sketch/count_sketch.h"
#include "src/stream/linear_sketch.h"

namespace lps::sketch {

class DyadicCountMin : public LinearSketch {
 public:
  /// Universe [0, 2^log_n); each level gets a CountMin(rows, buckets).
  DyadicCountMin(int log_n, int rows, int buckets, uint64_t seed);

  /// Single-update path; delegates to UpdateBatch with a batch of one.
  void Update(uint64_t i, double delta);

  /// Batched ingestion: indices are shifted to each level's block ids once
  /// per level, then the level's count-min ingests the whole batch.
  void UpdateBatch(const stream::ScaledUpdate* updates, size_t count);
  void UpdateBatch(const stream::Update* updates, size_t count) override;

  /// Point estimate at the leaf level (strict turnstile overestimate).
  double Query(uint64_t i) const;

  /// All leaves whose estimate is >= threshold. Correct in the strict
  /// turnstile model because block masses upper-bound leaf masses.
  std::vector<uint64_t> HeavyLeaves(double threshold) const;

  /// Unverified candidate leaves: the leaf frontier of the same top-down
  /// descent, *without* the leaf-level estimate filter. Consumers that own
  /// a more accurate point-query structure (e.g. the flat count-min of
  /// CmHeavyHitters) verify candidates there instead, so tree noise
  /// affects neither precision nor the verdict. Ascending order.
  std::vector<uint64_t> Candidates(double threshold) const;

  /// Counters-only serialization (all levels, in order) for composites
  /// that carry the tree's parameters themselves.
  void SerializeCounters(BitWriter* writer) const;
  void DeserializeCounters(BitReader* reader);

  // LinearSketch contract: full-state serialization, merge, reset.
  void Merge(const LinearSketch& other) override;
  void MergeNegated(const LinearSketch& other) override;
  void Serialize(BitWriter* writer) const override;
  void Deserialize(BitReader* reader) override;
  void Reset() override;
  size_t SpaceBits() const override { return SpaceBits(64); }
  SketchKind kind() const override { return SketchKind::kDyadicCountMin; }

  int log_n() const { return log_n_; }

  size_t SpaceBits(int bits_per_counter) const;

 private:
  template <typename U>
  void ApplyBatch(const U* updates, size_t count);

  int log_n_;
  int rows_;
  int buckets_;
  uint64_t seed_;
  std::vector<CountMin> levels_;  // levels_[l] sketches blocks of size 2^l
  std::vector<stream::ScaledUpdate> shifted_;  // batch scratch
};

/// Dyadic count-sketch: the general-update analogue of the tree above.
///
/// Under general updates the sum of a block can cancel even when it
/// contains heavy leaves of opposite signs, so a descent from the root is
/// unsound. This structure makes the engineering trade-off explicit: the
/// descent starts from a wide level (>= 2^6 blocks), where co-location of
/// cancelling heavy coordinates requires adversarial placement, expands
/// blocks whose |estimated block sum| clears threshold / 2, and verifies
/// candidates at the leaf level. For adversarial inputs that cancel inside
/// a starting block, the flat CsHeavyHitters scan (heavy/heavy_hitters.h)
/// is the sound tool — see the unit test documenting exactly this miss.
class DyadicCountSketch : public LinearSketch {
 public:
  DyadicCountSketch(int log_n, int rows, int buckets, uint64_t seed);

  void Update(uint64_t i, double delta);

  /// Batched ingestion: indices are shifted to each level's block ids, then
  /// the level's count-sketch ingests the whole batch.
  void UpdateBatch(const stream::ScaledUpdate* updates, size_t count);
  void UpdateBatch(const stream::Update* updates, size_t count) override;

  /// Leaf-level point estimate (median over rows).
  double Query(uint64_t i) const;

  /// Leaves whose |leaf estimate| >= threshold, found by descending from
  /// the starting level. Candidates are re-verified at level 0, so block
  /// noise produces no false positives.
  std::vector<uint64_t> HeavyLeaves(double threshold) const;

  /// Unverified candidate leaves: the leaf frontier of the threshold
  /// descent, without the leaf-level verification. For consumers (the
  /// heavy-hitter classes) that point-estimate candidates in their own,
  /// wider flat count-sketch. Ascending order.
  std::vector<uint64_t> Candidates(double threshold) const;

  /// Threshold-free candidate generation for top-m recovery: a beam-search
  /// descent that keeps the `beam = max(4m, 64)` blocks of largest
  /// |estimated block sum| per level and returns the surviving leaves
  /// (ascending, at most `beam` of them). Cost O(log n * beam * rows) —
  /// independent of the universe size. When the universe's m heaviest
  /// coordinates dominate their blocks (no adversarial in-block
  /// cancellation), the result contains the true top m; the caller
  /// re-ranks candidates in its flat count-sketch, so extras are harmless.
  std::vector<uint64_t> TopCandidates(uint64_t m) const;

  /// The level the descent starts from (all its blocks are scanned).
  int start_level() const;

  /// Counters-only serialization (all levels, in order) for composites
  /// that carry the tree's parameters themselves.
  void SerializeCounters(BitWriter* writer) const;
  void DeserializeCounters(BitReader* reader);

  // LinearSketch contract: full-state serialization, merge, reset.
  void Merge(const LinearSketch& other) override;
  void MergeNegated(const LinearSketch& other) override;
  void Serialize(BitWriter* writer) const override;
  void Deserialize(BitReader* reader) override;
  void Reset() override;
  size_t SpaceBits() const override { return SpaceBits(64); }
  SketchKind kind() const override { return SketchKind::kDyadicCountSketch; }

  size_t SpaceBits(int bits_per_counter) const;

 private:
  template <typename U>
  void ApplyBatch(const U* updates, size_t count);

  int log_n_;
  int rows_;
  int buckets_;
  uint64_t seed_;
  std::vector<CountSketch> levels_;
  std::vector<stream::ScaledUpdate> shifted_;  // batch scratch
};

}  // namespace lps::sketch
