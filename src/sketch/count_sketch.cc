#include "src/sketch/count_sketch.h"

#include <algorithm>
#include <cmath>

#include "src/kernels/kernels.h"
#include "src/util/check.h"
#include "src/util/random.h"

namespace lps::sketch {

namespace {

double MedianInPlace(std::vector<double>* v) {
  LPS_CHECK(!v->empty());
  const size_t mid = v->size() / 2;
  std::nth_element(v->begin(), v->begin() + static_cast<int64_t>(mid),
                   v->end());
  double median = (*v)[mid];
  if (v->size() % 2 == 0) {
    const double lower =
        *std::max_element(v->begin(), v->begin() + static_cast<int64_t>(mid));
    median = (median + lower) / 2;
  }
  return median;
}

}  // namespace

CountSketch::CountSketch(int rows, int buckets, uint64_t seed)
    : rows_(rows), buckets_(buckets), seed_(seed),
      table_(static_cast<size_t>(rows) * static_cast<size_t>(buckets), 0.0) {
  LPS_CHECK(rows >= 1 && buckets >= 1);
  bucket_.reserve(static_cast<size_t>(rows));
  sign_.reserve(static_cast<size_t>(rows));
  for (int j = 0; j < rows; ++j) {
    bucket_.emplace_back(2, Mix64(seed ^ (0x1111ULL + 2 * static_cast<uint64_t>(j))));
    sign_.emplace_back(2, Mix64(seed ^ (0x2222ULL + 2 * static_cast<uint64_t>(j) + 1)));
  }
}

void CountSketch::Update(uint64_t i, double delta) {
  const stream::ScaledUpdate u{i, delta};
  UpdateBatch(&u, 1);
}

template <typename U>
void CountSketch::ApplyBatch(const U* updates, size_t count) {
  reduced_keys_.resize(count);
  delta_scratch_.resize(count);
  for (size_t t = 0; t < count; ++t) {
    reduced_keys_[t] = gf61::Reduce(updates[t].index);
    delta_scratch_[t] = static_cast<double>(updates[t].delta);
  }
  const uint64_t range = static_cast<uint64_t>(buckets_);
  const kernels::KernelTable& kernel = kernels::Active();
  for (int j = 0; j < rows_; ++j) {
    const size_t jj = static_cast<size_t>(j);
    const auto& bc = bucket_[jj].coefficients();
    const auto& sc = sign_[jj].coefficients();
    double* row = table_.data() + jj * static_cast<size_t>(buckets_);
    if (bc.size() == 2 && sc.size() == 2) {
      // Pairwise rows (the count-sketch default) run on the dispatched
      // CountRowsApply kernel: bucket + sign evaluation is vectorized, the
      // scatter stays in stream order, and the row is bit-identical on
      // every backend.
      kernel.count_rows_apply(reduced_keys_.data(), delta_scratch_.data(),
                              count, bc[0], bc[1], sc[0], sc[1],
                              /*use_sign=*/true, range, row);
    } else {
      for (size_t t = 0; t < count; ++t) {
        const uint64_t x = reduced_keys_[t];
        const uint64_t k =
            hash::ScaleToRange(hash::PolyEval(bc.data(), bc.size(), x), range);
        const int64_t bit =
            static_cast<int64_t>(hash::PolyEval(sc.data(), sc.size(), x) & 1);
        row[k] += static_cast<double>(2 * bit - 1) *
                  static_cast<double>(updates[t].delta);
      }
    }
  }
}

void CountSketch::UpdateBatch(const stream::ScaledUpdate* updates,
                              size_t count) {
  ApplyBatch(updates, count);
}

void CountSketch::UpdateBatch(const stream::Update* updates, size_t count) {
  ApplyBatch(updates, count);
}

double CountSketch::Query(uint64_t i) const {
  std::vector<double> estimates(static_cast<size_t>(rows_));
  for (int j = 0; j < rows_; ++j) {
    const size_t jj = static_cast<size_t>(j);
    const uint64_t k = bucket_[jj].Range(i, static_cast<uint64_t>(buckets_));
    estimates[jj] = static_cast<double>(sign_[jj].Sign(i)) *
                    table_[jj * static_cast<size_t>(buckets_) + k];
  }
  return MedianInPlace(&estimates);
}

std::vector<double> CountSketch::EstimateAll(uint64_t n) const {
  std::vector<double> result(n);
  std::vector<double> estimates(static_cast<size_t>(rows_));
  for (uint64_t i = 0; i < n; ++i) {
    for (int j = 0; j < rows_; ++j) {
      const size_t jj = static_cast<size_t>(j);
      const uint64_t k = bucket_[jj].Range(i, static_cast<uint64_t>(buckets_));
      estimates[jj] = static_cast<double>(sign_[jj].Sign(i)) *
                      table_[jj * static_cast<size_t>(buckets_) + k];
    }
    result[i] = MedianInPlace(&estimates);
  }
  return result;
}

std::vector<std::pair<uint64_t, double>> CountSketch::TopM(uint64_t n,
                                                           uint64_t m) const {
  std::vector<double> est = EstimateAll(n);
  std::vector<uint64_t> order(n);
  for (uint64_t i = 0; i < n; ++i) order[i] = i;
  const uint64_t keep = std::min(m, n);
  std::partial_sort(order.begin(), order.begin() + static_cast<int64_t>(keep),
                    order.end(), [&est](uint64_t a, uint64_t b) {
                      const double fa = std::abs(est[a]), fb = std::abs(est[b]);
                      return fa != fb ? fa > fb : a < b;
                    });
  std::vector<std::pair<uint64_t, double>> top;
  top.reserve(keep);
  for (uint64_t r = 0; r < keep; ++r) {
    top.emplace_back(order[r], est[order[r]]);
  }
  return top;
}

std::vector<std::pair<uint64_t, double>> CountSketch::TopM(
    const std::vector<uint64_t>& candidates, uint64_t m) const {
  std::vector<std::pair<uint64_t, double>> scored;
  scored.reserve(candidates.size());
  std::vector<double> estimates(static_cast<size_t>(rows_));
  for (uint64_t i : candidates) {
    for (int j = 0; j < rows_; ++j) {
      const size_t jj = static_cast<size_t>(j);
      const uint64_t k = bucket_[jj].Range(i, static_cast<uint64_t>(buckets_));
      estimates[jj] = static_cast<double>(sign_[jj].Sign(i)) *
                      table_[jj * static_cast<size_t>(buckets_) + k];
    }
    scored.emplace_back(i, MedianInPlace(&estimates));
  }
  // Drop duplicate candidates (callers may merge several generators), then
  // rank exactly like the oracle overload: |estimate| desc, index asc.
  std::sort(scored.begin(), scored.end());
  scored.erase(std::unique(scored.begin(), scored.end(),
                           [](const auto& a, const auto& b) {
                             return a.first == b.first;
                           }),
               scored.end());
  const uint64_t keep = std::min<uint64_t>(m, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<int64_t>(keep),
                    scored.end(), [](const auto& a, const auto& b) {
                      const double fa = std::abs(a.second),
                                   fb = std::abs(b.second);
                      return fa != fb ? fa > fb : a.first < b.first;
                    });
  scored.resize(keep);
  return scored;
}

void CountSketch::AddScaled(const CountSketch& other, double scale) {
  LPS_CHECK(other.rows_ == rows_ && other.buckets_ == buckets_ &&
            other.seed_ == seed_);
  for (size_t c = 0; c < table_.size(); ++c) {
    table_[c] += scale * other.table_[c];
  }
}

double CountSketch::EstimateResidualL2(
    const std::vector<std::pair<uint64_t, double>>& v) const {
  // Subtract the sparse vector in place — touching only the |v| * rows
  // affected buckets — instead of cloning the whole O(rows * buckets)
  // table. The originals are saved and restored bit-exactly afterwards
  // ((y - d) + d is not y in IEEE arithmetic, so re-adding would corrupt
  // the sketch; restoring the saved doubles is exact).
  std::vector<std::pair<size_t, double>> saved;
  saved.reserve(v.size() * static_cast<size_t>(rows_));
  for (const auto& [i, value] : v) {
    for (int j = 0; j < rows_; ++j) {
      const size_t jj = static_cast<size_t>(j);
      const uint64_t k = bucket_[jj].Range(i, static_cast<uint64_t>(buckets_));
      const size_t cell = jj * static_cast<size_t>(buckets_) + k;
      saved.emplace_back(cell, table_[cell]);
      table_[cell] -= static_cast<double>(sign_[jj].Sign(i)) * value;
    }
  }
  std::vector<double> row_f2(static_cast<size_t>(rows_));
  for (int j = 0; j < rows_; ++j) {
    double sum = 0;
    for (int k = 0; k < buckets_; ++k) {
      const double y = table_[static_cast<size_t>(j) *
                                  static_cast<size_t>(buckets_) +
                              static_cast<size_t>(k)];
      sum += y * y;
    }
    row_f2[static_cast<size_t>(j)] = sum;
  }
  // Restore in reverse so buckets hit by several entries of v end at their
  // original value.
  for (size_t r = saved.size(); r-- > 0;) {
    table_[saved[r].first] = saved[r].second;
  }
  const double f2 = MedianInPlace(&row_f2);
  return std::sqrt(std::max(f2, 0.0));
}

void CountSketch::SerializeCounters(BitWriter* writer) const {
  for (double counter : table_) writer->WriteDouble(counter);
}

void CountSketch::DeserializeCounters(BitReader* reader) {
  for (double& counter : table_) counter = reader->ReadDouble();
}

void CountSketch::Merge(const LinearSketch& other) {
  const auto* o = dynamic_cast<const CountSketch*>(&other);
  LPS_CHECK(o != nullptr);
  LPS_CHECK(o->rows_ == rows_ && o->buckets_ == buckets_ &&
            o->seed_ == seed_);
  for (size_t c = 0; c < table_.size(); ++c) table_[c] += o->table_[c];
}

void CountSketch::MergeNegated(const LinearSketch& other) {
  const auto* o = dynamic_cast<const CountSketch*>(&other);
  LPS_CHECK(o != nullptr);
  LPS_CHECK(o->rows_ == rows_ && o->buckets_ == buckets_ &&
            o->seed_ == seed_);
  for (size_t c = 0; c < table_.size(); ++c) table_[c] -= o->table_[c];
}

void CountSketch::Serialize(BitWriter* writer) const {
  WriteSketchHeader(writer, kind());
  writer->WriteBits(static_cast<uint64_t>(rows_), 32);
  writer->WriteBits(static_cast<uint64_t>(buckets_), 32);
  writer->WriteU64(seed_);
  SerializeCounters(writer);
}

void CountSketch::Deserialize(BitReader* reader) {
  ReadSketchHeader(reader, kind());
  const int rows = static_cast<int>(reader->ReadBits(32));
  const int buckets = static_cast<int>(reader->ReadBits(32));
  const uint64_t seed = reader->ReadU64();
  *this = CountSketch(rows, buckets, seed);
  DeserializeCounters(reader);
}

void CountSketch::Reset() {
  std::fill(table_.begin(), table_.end(), 0.0);
}

size_t CountSketch::SpaceBits(int bits_per_counter) const {
  size_t bits = table_.size() * static_cast<size_t>(bits_per_counter);
  for (const auto& h : bucket_) bits += h.SeedBits();
  for (const auto& h : sign_) bits += h.SeedBits();
  return bits;
}

}  // namespace lps::sketch
