// The count-sketch of Charikar, Chen and Farach-Colton [6], exactly as
// defined in Section 2 of the paper: for parameter m it keeps l = O(log n)
// rows of 6m counters; row j uses pairwise-independent hashes
// h_j : [n] -> [6m] and g_j : [n] -> {-1, +1} and maintains
//
//   y_{k,j} = sum_{i : h_j(i) = k} g_j(i) * x_i.
//
// The point estimate is x*_i = median_j g_j(i) * y_{h_j(i), j}, and Lemma 1
// guarantees |x_i - x*_i| <= Err_2^m(x) / sqrt(m) for all i w.h.p.
//
// Counters are doubles because the Lp sampler feeds the *scaled* vector
// z_i = x_i / t_i^{1/p}; the space accounting methods report the paper's
// O(m log n)-counter model.
#pragma once

#include <cstdint>
#include <vector>

#include "src/hash/kwise.h"
#include "src/stream/linear_sketch.h"
#include "src/stream/update.h"
#include "src/util/serialize.h"

namespace lps::sketch {

class CountSketch : public LinearSketch {
 public:
  /// `rows` is l = O(log n); `buckets` is the row width (the paper uses 6m).
  CountSketch(int rows, int buckets, uint64_t seed);

  /// Single-update path; delegates to UpdateBatch with a batch of one.
  void Update(uint64_t i, double delta);

  /// Batched ingestion: the key is reduced into the field once per update,
  /// then each row applies the whole batch in one tight loop with its hash
  /// coefficients held in registers. State is bit-identical to calling
  /// Update once per element in stream order.
  void UpdateBatch(const stream::ScaledUpdate* updates, size_t count);
  void UpdateBatch(const stream::Update* updates, size_t count) override;

  /// Point estimate x*_i (median over rows).
  double Query(uint64_t i) const;

  /// All point estimates for coordinates [0, n): O(n * rows). REFERENCE
  /// ORACLE: a full-universe scan kept only so tests and benches can check
  /// the candidate-driven query engine against the exhaustive answer. No
  /// production Sample()/Query()/Recover() chain may call it.
  std::vector<double> EstimateAll(uint64_t n) const;

  /// The m coordinates of [0, n) with largest |x*_i|, with their estimates,
  /// sorted by decreasing |estimate| (ties broken by ascending index).
  /// This is the best m-sparse approximation \hat{x} of x* from Lemma 1.
  /// REFERENCE ORACLE, same caveat as EstimateAll: O(n * rows).
  std::vector<std::pair<uint64_t, double>> TopM(uint64_t n, uint64_t m) const;

  /// Candidate-driven TopM: point-estimates only the given candidates and
  /// returns the m with largest |x*_i|, ordered exactly like the oracle
  /// overload (|estimate| desc, index asc; duplicates ignored). When
  /// `candidates` contains the true top m of [0, n), the result equals
  /// TopM(n, m) — the equivalence the query-engine tests assert. Cost is
  /// O(|candidates| * rows), independent of the universe size.
  std::vector<std::pair<uint64_t, double>> TopM(
      const std::vector<uint64_t>& candidates, uint64_t m) const;

  /// Adds `scale` times another count-sketch drawn with the same seed and
  /// shape (linearity of the sketch).
  void AddScaled(const CountSketch& other, double scale);

  /// Estimates ||x - v||_2 for a sparse vector v by subtracting v from the
  /// counters in place (saving the few affected buckets and restoring them
  /// bit-exactly afterwards — no O(rows * buckets) clone) and taking the
  /// median over rows of the row's sum of squared buckets (each row is an
  /// unbiased F2 estimator with relative standard deviation
  /// ~ sqrt(2 / buckets), since bucket and sign hashes are pairwise
  /// independent). This realizes the paper's L'(z - zhat) = L'(z) - L'(zhat)
  /// with the count-sketch itself playing the role of the linear map L'.
  /// Logically const, but the in-place subtract/restore makes concurrent
  /// queries on the same object unsafe.
  double EstimateResidualL2(
      const std::vector<std::pair<uint64_t, double>>& v) const;

  /// Serializes the counter state (not the seed) for protocol messages
  /// whose bit count must be exactly the paper's message size.
  void SerializeCounters(BitWriter* writer) const;
  void DeserializeCounters(BitReader* reader);

  // LinearSketch contract: full-state serialization, merge, reset.
  void Merge(const LinearSketch& other) override;
  void MergeNegated(const LinearSketch& other) override;
  void Serialize(BitWriter* writer) const override;
  void Deserialize(BitReader* reader) override;
  void Reset() override;
  size_t SpaceBits() const override { return SpaceBits(64); }
  SketchKind kind() const override { return SketchKind::kCountSketch; }

  int rows() const { return rows_; }
  int buckets() const { return buckets_; }
  uint64_t seed() const { return seed_; }

  /// Paper-model space: counters * bits_per_counter plus the pairwise hash
  /// seeds (O(log n) bits each).
  size_t SpaceBits(int bits_per_counter) const;

 private:
  template <typename U>
  void ApplyBatch(const U* updates, size_t count);

  int rows_;
  int buckets_;
  uint64_t seed_;
  // Mutable only for EstimateResidualL2's exact subtract/restore; every
  // other method treats const as read-only.
  mutable std::vector<double> table_;    // rows_ x buckets_
  std::vector<hash::KWiseHash> bucket_;  // one pairwise hash per row
  std::vector<hash::KWiseHash> sign_;    // one pairwise sign hash per row
  std::vector<uint64_t> reduced_keys_;   // batch scratch: keys mod 2^61 - 1
  std::vector<double> delta_scratch_;    // batch scratch: deltas widened
};

}  // namespace lps::sketch
