#include "src/norm/l0_norm.h"

#include <algorithm>
#include <cmath>

#include "src/field/gf61.h"
#include "src/kernels/kernels.h"
#include "src/util/bits.h"
#include "src/util/check.h"
#include "src/util/random.h"

namespace lps::norm {

namespace gf = ::lps::gf61;

L0Estimator::L0Estimator(uint64_t n, int reps, uint64_t seed)
    : n_(n), seed_(seed), reps_(reps),
      levels_(CeilLog2(std::max<uint64_t>(n, 2)) + 1),
      fingerprints_(static_cast<size_t>(reps) * static_cast<size_t>(levels_),
                    0) {
  LPS_CHECK(reps >= 1);
  level_hash_.reserve(static_cast<size_t>(reps));
  fp_hash_.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    level_hash_.emplace_back(
        2, Mix64(seed ^ (0x10a0ULL + static_cast<uint64_t>(r))));
    // Degree-3 polynomial weights: a non-trivial linear combination of
    // values at distinct points vanishes w.p. <= 3/p per repetition, and
    // the estimator takes a median over reps anyway.
    fp_hash_.emplace_back(
        4, Mix64(seed ^ (0x20b0ULL + static_cast<uint64_t>(r))));
  }
}

void L0Estimator::Update(uint64_t i, int64_t delta) {
  const stream::Update u{i, delta};
  UpdateBatch(&u, 1);
}

void L0Estimator::UpdateBatch(const stream::Update* updates, size_t count) {
  reduced_keys_.resize(count);
  field_deltas_.resize(count);
  for (size_t t = 0; t < count; ++t) {
    LPS_CHECK(updates[t].index < n_);
    reduced_keys_[t] = gf::Reduce(updates[t].index);
    field_deltas_[t] = gf::FromInt64(updates[t].delta);
  }
  level_evals_.resize(count);
  weighted_.resize(count);
  const kernels::KernelTable& kernel = kernels::Active();
  for (int r = 0; r < reps_; ++r) {
    const size_t rr = static_cast<size_t>(r);
    const auto& lc = level_hash_[rr].coefficients();
    const auto& fc = fp_hash_[rr].coefficients();
    uint64_t* fps = fingerprints_.data() + rr * static_cast<size_t>(levels_);
    // Both hash sweeps and the delta weighting run on the dispatched
    // kernels (exact field arithmetic, bit-identical on every backend);
    // only the level-depth floor(-log2 u) and the nested fingerprint adds
    // stay scalar.
    kernel.kwise_horner_batch(lc.data(), lc.size(), reduced_keys_.data(),
                              count, level_evals_.data());
    kernel.kwise_horner_batch(fc.data(), fc.size(), reduced_keys_.data(),
                              count, weighted_.data());
    kernel.gf61_mul_batch(field_deltas_.data(), weighted_.data(), count,
                          weighted_.data());
    for (size_t t = 0; t < count; ++t) {
      const double u = (static_cast<double>(level_evals_[t]) + 1.0) /
                       static_cast<double>(gf::kP);
      // Nested membership: i survives to levels 0 .. deepest.
      const int deepest = std::min(
          levels_ - 1, static_cast<int>(std::floor(-std::log2(u))));
      for (int l = 0; l <= deepest; ++l) {
        fps[l] = gf::Add(fps[l], weighted_[t]);
      }
    }
  }
}

std::vector<int> L0Estimator::DeepestNonZeroLevels() const {
  std::vector<int> deepest(static_cast<size_t>(reps_), -1);
  for (int r = 0; r < reps_; ++r) {
    for (int l = levels_ - 1; l >= 0; --l) {
      if (fingerprints_[static_cast<size_t>(r) * static_cast<size_t>(levels_) +
                        static_cast<size_t>(l)] != 0) {
        deepest[static_cast<size_t>(r)] = l;
        break;
      }
    }
  }
  return deepest;
}

double L0Estimator::Estimate() const {
  std::vector<int> deepest = DeepestNonZeroLevels();
  std::nth_element(deepest.begin(),
                   deepest.begin() + static_cast<int64_t>(deepest.size() / 2),
                   deepest.end());
  const int med = deepest[deepest.size() / 2];
  if (med < 0) return 0.0;
  return std::log(2.0) * std::pow(2.0, med);
}

void L0Estimator::SerializeCounters(BitWriter* writer) const {
  for (uint64_t fp : fingerprints_) writer->WriteBits(fp, 61);
}

void L0Estimator::DeserializeCounters(BitReader* reader) {
  for (uint64_t& fp : fingerprints_) fp = reader->ReadBits(61);
}

void L0Estimator::Merge(const LinearSketch& other) {
  const auto* o = dynamic_cast<const L0Estimator*>(&other);
  LPS_CHECK(o != nullptr);
  LPS_CHECK(o->n_ == n_ && o->reps_ == reps_ && o->seed_ == seed_);
  for (size_t c = 0; c < fingerprints_.size(); ++c) {
    fingerprints_[c] = gf::Add(fingerprints_[c], o->fingerprints_[c]);
  }
}

void L0Estimator::MergeNegated(const LinearSketch& other) {
  const auto* o = dynamic_cast<const L0Estimator*>(&other);
  LPS_CHECK(o != nullptr);
  LPS_CHECK(o->n_ == n_ && o->reps_ == reps_ && o->seed_ == seed_);
  for (size_t c = 0; c < fingerprints_.size(); ++c) {
    fingerprints_[c] = gf::Sub(fingerprints_[c], o->fingerprints_[c]);
  }
}

void L0Estimator::Serialize(BitWriter* writer) const {
  WriteSketchHeader(writer, kind());
  writer->WriteU64(n_);
  writer->WriteBits(static_cast<uint64_t>(reps_), 32);
  writer->WriteU64(seed_);
  SerializeCounters(writer);
}

void L0Estimator::Deserialize(BitReader* reader) {
  ReadSketchHeader(reader, kind());
  const uint64_t n = reader->ReadU64();
  const int reps = static_cast<int>(reader->ReadBits(32));
  const uint64_t seed = reader->ReadU64();
  *this = L0Estimator(n, reps, seed);
  DeserializeCounters(reader);
}

void L0Estimator::Reset() {
  std::fill(fingerprints_.begin(), fingerprints_.end(), 0);
}

size_t L0Estimator::SpaceBits() const {
  size_t bits = fingerprints_.size() * 61;
  for (const auto& h : level_hash_) bits += h.SeedBits();
  for (const auto& h : fp_hash_) bits += h.SeedBits();
  return bits;
}

}  // namespace lps::norm
