#include "src/norm/lp_norm.h"

#include <algorithm>
#include <cmath>

#include "src/util/bits.h"

namespace lps::norm {

LpNormEstimator::LpNormEstimator(double p, int rows, uint64_t seed)
    : sketch_(p, rows, seed) {}

void LpNormEstimator::Update(uint64_t i, double delta) {
  sketch_.Update(i, delta);
}

void LpNormEstimator::UpdateBatch(const stream::ScaledUpdate* updates,
                                  size_t count) {
  sketch_.UpdateBatch(updates, count);
}

void LpNormEstimator::UpdateBatch(const stream::Update* updates,
                                  size_t count) {
  sketch_.UpdateBatch(updates, count);
}

void LpNormEstimator::Merge(const LinearSketch& other) {
  const auto* o = dynamic_cast<const LpNormEstimator*>(&other);
  LPS_CHECK(o != nullptr);
  sketch_.Merge(o->sketch_);
}

void LpNormEstimator::MergeNegated(const LinearSketch& other) {
  const auto* o = dynamic_cast<const LpNormEstimator*>(&other);
  LPS_CHECK(o != nullptr);
  sketch_.MergeNegated(o->sketch_);
}

void LpNormEstimator::Serialize(BitWriter* writer) const {
  WriteSketchHeader(writer, kind());
  sketch_.Serialize(writer);
}

void LpNormEstimator::Deserialize(BitReader* reader) {
  ReadSketchHeader(reader, kind());
  sketch_.Deserialize(reader);
}

double LpNormEstimator::Estimate2Approx() const {
  return std::sqrt(2.0) * sketch_.EstimateNorm();
}

int LpNormEstimator::DefaultRows(uint64_t n) {
  // ~97% coverage needs ~100 rows at n = 2^10 (see bench_norms); scale with
  // log n to keep the failure probability polynomially small.
  return std::max(96, 8 * CeilLog2(std::max<uint64_t>(n, 2)));
}

}  // namespace lps::norm
