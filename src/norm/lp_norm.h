// Constant-factor Lp norm estimation (Lemma 2 / [17]): a streaming
// algorithm based on a random linear map L with O(log n) rows whose output
// r satisfies ||x||_p <= r <= 2 ||x||_p with high probability.
//
// Implementation: Indyk's p-stable median sketch (sketch/stable_sketch.h)
// with the median inflated by sqrt(2), centering the 2-approximation window
// [||x||_p, 2||x||_p] on the estimator. The failure probability decays as
// exp(-Theta(rows)); rows = Theta(log n) gives the paper's high-probability
// guarantee, and claim C10's bench measures the coverage-vs-rows curve.
#pragma once

#include <cstdint>

#include "src/sketch/stable_sketch.h"
#include "src/stream/linear_sketch.h"

namespace lps::norm {

class LpNormEstimator : public LinearSketch {
 public:
  /// rows = Theta(log n); see DefaultRows.
  LpNormEstimator(double p, int rows, uint64_t seed);

  void Update(uint64_t i, double delta);

  /// Batched ingestion (delegates to the underlying stable sketch).
  void UpdateBatch(const stream::ScaledUpdate* updates, size_t count);
  void UpdateBatch(const stream::Update* updates, size_t count) override;

  /// r with ||x||_p <= r <= 2 ||x||_p w.h.p.
  double Estimate2Approx() const;

  /// The raw (uninflated) median estimate, approximately ||x||_p.
  double EstimateRaw() const { return sketch_.EstimateNorm(); }

  /// Enough rows for ~97%+ coverage of the [N, 2N] window at typical n;
  /// grows logarithmically as the paper requires.
  static int DefaultRows(uint64_t n);

  // LinearSketch contract: delegates to the underlying stable sketch, with
  // this estimator's own kind tag in the header.
  void Merge(const LinearSketch& other) override;
  void MergeNegated(const LinearSketch& other) override;
  void Serialize(BitWriter* writer) const override;
  void Deserialize(BitReader* reader) override;
  void Reset() override { sketch_.Reset(); }
  size_t SpaceBits() const override { return SpaceBits(64); }
  SketchKind kind() const override { return SketchKind::kLpNormEstimator; }

  size_t SpaceBits(int bits_per_counter) const {
    return sketch_.SpaceBits(bits_per_counter);
  }
  int rows() const { return sketch_.rows(); }

  /// Access to the underlying linear sketch, for protocol serialization.
  const sketch::StableSketch& sketch() const { return sketch_; }
  sketch::StableSketch* mutable_sketch() { return &sketch_; }

 private:
  sketch::StableSketch sketch_;
};

}  // namespace lps::norm
