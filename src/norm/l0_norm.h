// Turnstile L0 (distinct non-zero count) estimation via level fingerprints.
//
// For each of `reps` repetitions, coordinates are subsampled at rates
// 2^-level (nested: coordinate i survives to every level below
// floor(-log2 U_i)), and a GF(2^61-1) linear fingerprint of the surviving
// sub-vector is kept per level. A level's fingerprint is zero iff the
// sub-vector is zero (up to a 2^-61-scale collision probability), so the
// deepest non-zero level of a repetition concentrates around
// log2(L0 / ln 2); the estimator is ln 2 * 2^median(deepest level).
//
// This gives a constant-factor approximation — precisely what its two
// consumers need: choosing the subsampling level in the two-round universal
// relation protocol (Proposition 5) and sizing checks in the generalized
// duplicates algorithms. It is fully linear (supports deletions) and
// serializable for protocol messages.
#pragma once

#include <cstdint>
#include <vector>

#include "src/hash/kwise.h"
#include "src/stream/linear_sketch.h"
#include "src/stream/update.h"
#include "src/util/serialize.h"

namespace lps::norm {

class L0Estimator : public LinearSketch {
 public:
  /// Universe [0, n); `reps` independent repetitions (the estimate is a
  /// median over them).
  L0Estimator(uint64_t n, int reps, uint64_t seed);

  /// Single-update path; delegates to UpdateBatch with a batch of one.
  void Update(uint64_t i, int64_t delta);

  /// Batched ingestion, repetition-major: per repetition, the subsampling
  /// and fingerprint polynomials are hoisted and the batch is applied in
  /// one pass. Bit-identical to per-update processing.
  void UpdateBatch(const stream::Update* updates, size_t count) override;

  /// Constant-factor estimate of the number of non-zero coordinates;
  /// 0 iff the vector is (whp) zero.
  double Estimate() const;

  /// The deepest level with a non-zero fingerprint, per repetition
  /// (-1 if all levels are zero). Exposed for the two-round UR protocol,
  /// which needs the level itself.
  std::vector<int> DeepestNonZeroLevels() const;

  int levels() const { return levels_; }
  int reps() const { return reps_; }

  void SerializeCounters(BitWriter* writer) const;
  void DeserializeCounters(BitReader* reader);

  // LinearSketch contract: full-state serialization, merge, reset.
  void Merge(const LinearSketch& other) override;
  void MergeNegated(const LinearSketch& other) override;
  void Serialize(BitWriter* writer) const override;
  void Deserialize(BitReader* reader) override;
  void Reset() override;
  SketchKind kind() const override { return SketchKind::kL0Estimator; }

  size_t SpaceBits() const override;

 private:
  uint64_t n_;
  uint64_t seed_;
  int reps_;
  int levels_;  // levels 0 .. levels_-1; level 0 keeps everything
  std::vector<uint64_t> fingerprints_;   // reps_ x levels_, field elements
  std::vector<hash::KWiseHash> level_hash_;  // per rep: subsampling hash
  std::vector<hash::KWiseHash> fp_hash_;     // per rep: fingerprint weights
  std::vector<uint64_t> reduced_keys_;       // batch scratch
  std::vector<uint64_t> field_deltas_;       // batch scratch
  std::vector<uint64_t> level_evals_;        // batch scratch per rep
  std::vector<uint64_t> weighted_;           // batch scratch per rep
};

}  // namespace lps::norm
