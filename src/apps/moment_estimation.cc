#include "src/apps/moment_estimation.h"

#include <cmath>
#include <vector>

#include "src/util/check.h"
#include "src/util/random.h"

namespace lps::apps {

MomentEstimator::MomentEstimator(Params params)
    : params_(params),
      q_norm_(params.q, norm::LpNormEstimator::DefaultRows(params.n),
              Mix64(params.seed ^ 0xf00dULL)) {
  LPS_CHECK(params.p > 2.0);
  LPS_CHECK(params.q > 1.0 && params.q < 2.0);
  LPS_CHECK(params.samples >= 1);
  samplers_.reserve(static_cast<size_t>(params.samples));
  for (int j = 0; j < params.samples; ++j) {
    core::LpSamplerParams sp;
    sp.n = params.n;
    sp.p = params.q;
    sp.eps = 0.25;
    sp.repetitions = 12;
    sp.seed = Mix64(params.seed ^ (0xf00eULL + static_cast<uint64_t>(j)));
    samplers_.emplace_back(sp);
  }
}

void MomentEstimator::Update(uint64_t i, int64_t delta) {
  const stream::Update u{i, delta};
  UpdateBatch(&u, 1);
}

void MomentEstimator::UpdateBatch(const stream::Update* updates,
                                  size_t count) {
  q_norm_.UpdateBatch(updates, count);
  for (auto& sampler : samplers_) sampler.UpdateBatch(updates, count);
}

Result<double> MomentEstimator::Estimate() const {
  // ||x||_q^q from the shared norm estimator (raw, uninflated median).
  const double norm_q = q_norm_.EstimateRaw();
  if (norm_q <= 0) return Status::Failed("zero vector");
  const double mass_q = std::pow(norm_q, params_.q);

  // Sample-and-reweight: i ~ |x_i|^q / ||x||_q^q, estimate
  // ||x||_q^q * |x_i|^{p - q} using the sampler's own value estimate.
  std::vector<double> estimates;
  for (const auto& sampler : samplers_) {
    auto res = sampler.Sample();
    if (!res.ok()) continue;
    const double xi = std::abs(res.value().estimate);
    if (xi <= 0) continue;
    estimates.push_back(mass_q * std::pow(xi, params_.p - params_.q));
  }
  if (estimates.empty()) return Status::Failed("all samplers failed");
  double sum = 0;
  for (double e : estimates) sum += e;
  return sum / static_cast<double>(estimates.size());
}

void MomentEstimator::Merge(const LinearSketch& other) {
  const auto* o = dynamic_cast<const MomentEstimator*>(&other);
  LPS_CHECK(o != nullptr);
  const Params& a = params_;
  const Params& b = o->params_;
  LPS_CHECK(a.n == b.n && a.p == b.p && a.samples == b.samples &&
            a.q == b.q && a.seed == b.seed);
  q_norm_.Merge(o->q_norm_);
  for (size_t j = 0; j < samplers_.size(); ++j) {
    samplers_[j].Merge(o->samplers_[j]);
  }
}

void MomentEstimator::MergeNegated(const LinearSketch& other) {
  const auto* o = dynamic_cast<const MomentEstimator*>(&other);
  LPS_CHECK(o != nullptr);
  const Params& a = params_;
  const Params& b = o->params_;
  LPS_CHECK(a.n == b.n && a.p == b.p && a.samples == b.samples &&
            a.q == b.q && a.seed == b.seed);
  q_norm_.MergeNegated(o->q_norm_);
  for (size_t j = 0; j < samplers_.size(); ++j) {
    samplers_[j].MergeNegated(o->samplers_[j]);
  }
}

void MomentEstimator::Serialize(BitWriter* writer) const {
  WriteSketchHeader(writer, kind());
  writer->WriteU64(params_.n);
  writer->WriteDouble(params_.p);
  writer->WriteBits(static_cast<uint64_t>(params_.samples), 32);
  writer->WriteDouble(params_.q);
  writer->WriteU64(params_.seed);
  q_norm_.sketch().SerializeCounters(writer);
  for (const auto& sampler : samplers_) sampler.SerializeCounters(writer);
}

void MomentEstimator::Deserialize(BitReader* reader) {
  ReadSketchHeader(reader, kind());
  Params params;
  params.n = reader->ReadU64();
  params.p = reader->ReadDouble();
  params.samples = static_cast<int>(reader->ReadBits(32));
  params.q = reader->ReadDouble();
  params.seed = reader->ReadU64();
  *this = MomentEstimator(params);
  q_norm_.mutable_sketch()->DeserializeCounters(reader);
  for (auto& sampler : samplers_) sampler.DeserializeCounters(reader);
}

void MomentEstimator::Reset() {
  q_norm_.Reset();
  for (auto& sampler : samplers_) sampler.Reset();
}

size_t MomentEstimator::SpaceBits(int bits_per_counter) const {
  size_t bits = q_norm_.SpaceBits(bits_per_counter);
  for (const auto& sampler : samplers_) bits += sampler.SpaceBits(bits_per_counter);
  return bits;
}

}  // namespace lps::apps
