// Sampler-as-black-box application (Section 1 / [23]): estimating the
// frequency moment F_p = ||x||_p^p for p > 2, where linear sketching alone
// needs polynomial space but Lp-sampling gives the classical
// sample-and-reweight estimator:
//
//   draw i ~ L2 distribution (probability |x_i|^2 / F_2),
//   output  F_2 * |x_i|^{p-2},
//
// which is unbiased for F_p: E = sum_i (x_i^2/F_2) F_2 |x_i|^{p-2} = F_p.
// Variance is bounded by F_2 F_{2p-2} / F_p^2 * F_p^2 ... <= n^{1-2/p} after
// standard calculations, so averaging over many samples concentrates.
//
// Our L2-style sampler covers p in (0,2); we instantiate it at p = 1.9
// (close to L2) and correct the sampling weights by importance reweighting
// with the sampler's own x_i estimates:
//
//   i ~ |x_i|^q / ||x||_q^q  (q = 1.9),
//   estimate = ||x||_q^q * |x_i|^{p-q} ... using the sampler's x_i estimate
//
// — also unbiased for F_p up to the sampler's O(eps) distribution error,
// demonstrating the black-box reduction the paper's introduction motivates.
#pragma once

#include <cstdint>

#include "src/core/lp_sampler.h"
#include "src/norm/lp_norm.h"
#include "src/stream/linear_sketch.h"
#include "src/util/status.h"

namespace lps::apps {

/// One-shot F_p estimator for p > 2 built from `samples` independent
/// Lq samplers (q just below 2) plus one Lq norm estimator.
class MomentEstimator : public LinearSketch {
 public:
  struct Params {
    uint64_t n = 0;
    double p = 3.0;      ///< target moment, p > 2
    int samples = 64;    ///< independent sampler instances to average
    double q = 1.9;      ///< inner sampling exponent, in (1, 2)
    uint64_t seed = 0;
  };

  explicit MomentEstimator(Params params);

  /// Single-update path; delegates to UpdateBatch with a batch of one.
  void Update(uint64_t i, int64_t delta);

  /// Batched ingestion: the norm sketch and every sampler consume the
  /// batch through their own fast paths.
  void UpdateBatch(const stream::Update* updates, size_t count) override;

  /// Estimate of F_p = ||x||_p^p, or Failed if no sampler produced output.
  Result<double> Estimate() const;

  // LinearSketch contract: full-state serialization, merge, reset.
  void Merge(const LinearSketch& other) override;
  void MergeNegated(const LinearSketch& other) override;
  void Serialize(BitWriter* writer) const override;
  void Deserialize(BitReader* reader) override;
  void Reset() override;
  size_t SpaceBits() const override { return SpaceBits(64); }
  SketchKind kind() const override { return SketchKind::kMomentEstimator; }

  size_t SpaceBits(int bits_per_counter) const;

 private:
  Params params_;
  norm::LpNormEstimator q_norm_;
  std::vector<core::LpSampler> samplers_;
};

}  // namespace lps::apps
