#include "src/server/protocol.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

namespace lps::server {

namespace {

// The body bit stream is carried as [u64 LE bit count][packed words LE];
// bytes are assembled explicitly so the wire format does not depend on
// host endianness.
void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(uint8_t(v >> (8 * i)));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(uint8_t(v >> (8 * i)));
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= uint64_t(p[i]) << (8 * i);
  return v;
}

/// Reads exactly `size` bytes. Returns the byte count actually read
/// (short only on EOF), or -1 on a hard socket error.
ssize_t ReadFull(int fd, uint8_t* buffer, size_t size) {
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::read(fd, buffer + done, size - done);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    done += size_t(n);
  }
  return ssize_t(done);
}

Status WriteFull(int fd, const uint8_t* buffer, size_t size) {
  size_t done = 0;
  while (done < size) {
    // MSG_NOSIGNAL: a peer that hung up must surface as EPIPE, not kill
    // the daemon with SIGPIPE.
    const ssize_t n =
        ::send(fd, buffer + done, size - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Failed(std::string("send: ") + std::strerror(errno));
    }
    done += size_t(n);
  }
  return Status::OK();
}

}  // namespace

// ------------------------------------------------------------- payloads --

void WriteString(BitWriter* writer, const std::string& s) {
  writer->WriteBits(s.size(), 32);
  for (char c : s) writer->WriteBits(uint8_t(c), 8);
}

std::string ReadString(BitReader* reader) {
  const uint64_t size = reader->ReadBits(32);
  // The claimed length is attacker-controlled: validate it against what
  // the stream can actually hold before reserving or looping.
  if (size * 8 > reader->bits_remaining()) {
    reader->Fail();
    return std::string();
  }
  std::string s;
  s.reserve(size_t(size));
  for (uint64_t i = 0; i < size; ++i) {
    s.push_back(char(uint8_t(reader->ReadBits(8))));
  }
  return s;
}

void WriteUpdates(BitWriter* writer, const stream::Update* updates,
                  size_t count) {
  writer->WriteU64(count);
  for (size_t i = 0; i < count; ++i) {
    writer->WriteU64(updates[i].index);
    writer->WriteU64(uint64_t(updates[i].delta));
  }
}

std::vector<stream::Update> ReadUpdates(BitReader* reader) {
  const uint64_t count = reader->ReadU64();
  // 128 bits per update; a count the body cannot hold is a lie.
  if (count > reader->bits_remaining() / 128) {
    reader->Fail();
    return {};
  }
  std::vector<stream::Update> updates;
  updates.reserve(size_t(count));
  for (uint64_t i = 0; i < count; ++i) {
    stream::Update u;
    u.index = reader->ReadU64();
    u.delta = int64_t(reader->ReadU64());
    updates.push_back(u);
  }
  return updates;
}

void WriteState(BitWriter* writer, const std::vector<uint64_t>& words,
                size_t bits) {
  writer->WriteU64(bits);
  const size_t count = (bits + 63) / 64;
  for (size_t i = 0; i < count; ++i) writer->WriteU64(words[i]);
}

void ReadState(BitReader* reader, std::vector<uint64_t>* words, size_t* bits) {
  words->clear();
  const uint64_t claimed = reader->ReadU64();
  // The state is packed as ceil(bits/64) whole words; reject a claimed
  // bit count the body cannot hold before sizing the buffer. The first
  // comparison also rules out the (claimed + 63) wraparound.
  if (claimed > reader->bits_remaining() ||
      ((claimed + 63) / 64) * 64 > reader->bits_remaining()) {
    *bits = 0;
    reader->Fail();
    return;
  }
  *bits = size_t(claimed);
  const size_t count = (*bits + 63) / 64;
  words->reserve(count);
  for (size_t i = 0; i < count; ++i) words->push_back(reader->ReadU64());
}

void SerializeConfig(const SketchConfig& config, BitWriter* writer) {
  SerializeSpec(config.spec, writer);
  writer->WriteU64(config.window_checkpoint);
  writer->WriteU64(config.max_checkpoints);
  writer->WriteBits(uint32_t(config.shards), 32);
  writer->WriteBits(uint32_t(config.threads), 32);
}

SketchConfig DeserializeConfig(BitReader* reader) {
  SketchConfig config;
  config.spec = DeserializeSpec(reader);
  config.window_checkpoint = reader->ReadU64();
  config.max_checkpoints = reader->ReadU64();
  config.shards = int32_t(uint32_t(reader->ReadBits(32)));
  config.threads = int32_t(uint32_t(reader->ReadBits(32)));
  return config;
}

void SerializeSnapshot(const SnapshotBlob& blob, BitWriter* writer) {
  SerializeConfig(blob.config, writer);
  writer->WriteU64(blob.updates_seen);
  WriteState(writer, blob.state_words, blob.state_bits);
}

SnapshotBlob DeserializeSnapshot(BitReader* reader) {
  SnapshotBlob blob;
  blob.config = DeserializeConfig(reader);
  blob.updates_seen = reader->ReadU64();
  ReadState(reader, &blob.state_words, &blob.state_bits);
  return blob;
}

void SerializeStats(const ServerStats& stats, BitWriter* writer) {
  writer->WriteU64(stats.tenants);
  writer->WriteU64(stats.updates);
  writer->WriteU64(stats.ingests);
  writer->WriteU64(stats.queries);
  writer->WriteU64(stats.snapshots);
  // Appended persistence fields (older peers simply stop reading here).
  writer->WriteU64(stats.resident_bytes);
  writer->WriteU64(stats.spilled_bytes);
  writer->WriteU64(stats.per_tenant.size());
  for (const TenantPersistStats& tenant : stats.per_tenant) {
    WriteString(writer, tenant.name);
    writer->WriteU64(tenant.resident_bytes);
    writer->WriteU64(tenant.spilled_bytes);
    writer->WriteBits(tenant.resident ? 1 : 0, 8);
  }
  // Appended kernel-dispatch field (same stop-reading compatibility rule).
  WriteString(writer, stats.kernel_backend);
}

ServerStats DeserializeStats(BitReader* reader) {
  ServerStats stats;
  stats.tenants = reader->ReadU64();
  stats.updates = reader->ReadU64();
  stats.ingests = reader->ReadU64();
  stats.queries = reader->ReadU64();
  stats.snapshots = reader->ReadU64();
  // A frame from an older server ends here; the appended persistence
  // fields then stay zero (this read is only reached on frames the
  // counters fully occupied, so remaining bits == appended fields).
  if (reader->bits_remaining() == 0) return stats;
  stats.resident_bytes = reader->ReadU64();
  stats.spilled_bytes = reader->ReadU64();
  const uint64_t count = reader->ReadU64();
  // Each entry is at least string length (64) + two u64 + flag bits;
  // bound the claimed count by what the body can hold before reserving.
  if (count > reader->bits_remaining() / (64 + 64 + 64 + 8)) {
    reader->Fail();
    return stats;
  }
  stats.per_tenant.reserve(size_t(count));
  for (uint64_t i = 0; i < count && !reader->failed(); ++i) {
    TenantPersistStats tenant;
    tenant.name = ReadString(reader);
    tenant.resident_bytes = reader->ReadU64();
    tenant.spilled_bytes = reader->ReadU64();
    tenant.resident = reader->ReadBits(8) != 0;
    stats.per_tenant.push_back(std::move(tenant));
  }
  // Frames carry an exact bit count, so an older server's frame ends
  // precisely here and the appended backend field stays empty.
  if (reader->failed() || reader->bits_remaining() == 0) return stats;
  stats.kernel_backend = ReadString(reader);
  return stats;
}

void SerializeEpoch(const EpochBlob& blob, BitWriter* writer) {
  WriteString(writer, blob.tenant);
  WriteString(writer, blob.key);
  WriteString(writer, blob.worker_id);
  writer->WriteU64(blob.session);
  writer->WriteU64(blob.seq);
  writer->WriteU64(blob.count);
  writer->WriteBits(blob.final_epoch ? 1 : 0, 8);
  SerializeConfig(blob.config, writer);
  WriteState(writer, blob.state_words, blob.state_bits);
}

EpochBlob DeserializeEpoch(BitReader* reader) {
  EpochBlob blob;
  blob.tenant = ReadString(reader);
  blob.key = ReadString(reader);
  blob.worker_id = ReadString(reader);
  blob.session = reader->ReadU64();
  blob.seq = reader->ReadU64();
  blob.count = reader->ReadU64();
  blob.final_epoch = reader->ReadBits(8) != 0;
  blob.config = DeserializeConfig(reader);
  ReadState(reader, &blob.state_words, &blob.state_bits);
  return blob;
}

void SerializeEpochAck(const EpochAck& ack, BitWriter* writer) {
  writer->WriteBits(ack.applied ? 1 : 0, 8);
  writer->WriteU64(ack.next_seq);
}

EpochAck DeserializeEpochAck(BitReader* reader) {
  EpochAck ack;
  ack.applied = reader->ReadBits(8) != 0;
  ack.next_seq = reader->ReadU64();
  return ack;
}

void SerializeDistStats(const DistStats& stats, BitWriter* writer) {
  writer->WriteU64(stats.epochs_folded);
  writer->WriteU64(stats.updates_folded);
  writer->WriteU64(stats.gaps);
  writer->WriteU64(stats.sessions);
  writer->WriteU64(stats.interrupted);
  writer->WriteU64(stats.fold_ns);
  writer->WriteBits(stats.combiner ? 1 : 0, 8);
  writer->WriteU64(stats.workers.size());
  for (const DistWorkerStats& worker : stats.workers) {
    WriteString(writer, worker.stream);
    WriteString(writer, worker.worker_id);
    writer->WriteU64(worker.session);
    writer->WriteU64(worker.next_seq);
    writer->WriteU64(worker.epochs);
    writer->WriteU64(worker.updates);
    writer->WriteU64(worker.gaps);
    writer->WriteBits(worker.finished ? 1 : 0, 8);
    writer->WriteBits(worker.connected ? 1 : 0, 8);
  }
}

DistStats DeserializeDistStats(BitReader* reader) {
  DistStats stats;
  stats.epochs_folded = reader->ReadU64();
  stats.updates_folded = reader->ReadU64();
  stats.gaps = reader->ReadU64();
  stats.sessions = reader->ReadU64();
  stats.interrupted = reader->ReadU64();
  stats.fold_ns = reader->ReadU64();
  stats.combiner = reader->ReadBits(8) != 0;
  const uint64_t count = reader->ReadU64();
  // Two length-prefixed strings, five u64s, two flags per entry; bound
  // the claimed count by what the body can hold before reserving.
  if (count > reader->bits_remaining() / (64 + 64 + 5 * 64 + 16)) {
    reader->Fail();
    return stats;
  }
  stats.workers.reserve(size_t(count));
  for (uint64_t i = 0; i < count && !reader->failed(); ++i) {
    DistWorkerStats worker;
    worker.stream = ReadString(reader);
    worker.worker_id = ReadString(reader);
    worker.session = reader->ReadU64();
    worker.next_seq = reader->ReadU64();
    worker.epochs = reader->ReadU64();
    worker.updates = reader->ReadU64();
    worker.gaps = reader->ReadU64();
    worker.finished = reader->ReadBits(8) != 0;
    worker.connected = reader->ReadBits(8) != 0;
    stats.workers.push_back(std::move(worker));
  }
  return stats;
}

// --------------------------------------------------------------- framing --

std::vector<uint8_t> EncodeFrame(uint8_t first, const BitWriter& body) {
  const std::vector<uint64_t>& words = body.words();
  const uint64_t word_count = (uint64_t(body.bit_count()) + 63) / 64;
  const uint64_t payload = 1 + 8 + 8 * word_count;
  // A body that does not fit the u32 length prefix (or the protocol's
  // own frame ceiling) must fail loudly, not wrap and emit a corrupt
  // frame. A valid frame is never empty (>= 13 bytes), so the empty
  // vector is an unambiguous failure sentinel.
  if (payload > kMaxFrameBytes) return {};
  std::vector<uint8_t> out;
  out.reserve(size_t(4 + payload));
  PutU32(&out, uint32_t(payload));
  out.push_back(first);
  PutU64(&out, body.bit_count());
  for (uint64_t i = 0; i < word_count; ++i) PutU64(&out, words[i]);
  return out;
}

Result<Frame> DecodeFramePayload(const uint8_t* payload, size_t size) {
  if (size < 1 + 8) {
    return Status::InvalidArgument("frame payload shorter than its header");
  }
  const uint8_t first = payload[0];
  const uint64_t bit_count = GetU64(payload + 1);
  // Bound the declared bit count by the bits actually delivered before
  // any ceil-division: for bit_count near 2^64 the (bit_count + 63)
  // rounding wraps to a tiny word count that would slip past the
  // truncation check below.
  if (bit_count > uint64_t(size - (1 + 8)) * 8) {
    return Status::InvalidArgument("frame body truncated");
  }
  const size_t word_count = size_t((bit_count + 63) / 64);
  if (size < 1 + 8 + 8 * word_count) {
    return Status::InvalidArgument("frame body truncated");
  }
  std::vector<uint64_t> words;
  words.reserve(word_count);
  for (size_t i = 0; i < word_count; ++i) {
    words.push_back(GetU64(payload + 1 + 8 + 8 * i));
  }
  BitReader body(std::move(words), size_t(bit_count));
  // Frames arrive from the network: a body that lies about its interior
  // lengths must read as failed(), never CHECK-abort the process.
  body.set_permissive(true);
  return Frame{first, std::move(body)};
}

Status WriteFrame(int fd, uint8_t first, const BitWriter& body) {
  const std::vector<uint8_t> bytes = EncodeFrame(first, body);
  if (bytes.empty()) {
    return Status::InvalidArgument("frame body exceeds kMaxFrameBytes");
  }
  return WriteFull(fd, bytes.data(), bytes.size());
}

Result<Frame> ReadFrame(int fd, uint32_t max_bytes) {
  uint8_t header[4];
  const ssize_t got = ReadFull(fd, header, sizeof(header));
  if (got < 0) {
    return Status::Failed(std::string("read: ") + std::strerror(errno));
  }
  if (got == 0) return Status::Failed("eof");
  if (size_t(got) < sizeof(header)) {
    return Status::InvalidArgument("truncated length prefix");
  }
  uint32_t length = 0;
  for (int i = 0; i < 4; ++i) length |= uint32_t(header[i]) << (8 * i);
  if (length > max_bytes) {
    return Status::InvalidArgument("frame length exceeds limit");
  }
  std::vector<uint8_t> payload(length);
  const ssize_t body = ReadFull(fd, payload.data(), payload.size());
  if (body < 0) {
    return Status::Failed(std::string("read: ") + std::strerror(errno));
  }
  if (size_t(body) < payload.size()) {
    return Status::InvalidArgument("frame payload truncated");
  }
  return DecodeFramePayload(payload.data(), payload.size());
}

}  // namespace lps::server
