#include "src/server/tenant_registry.h"

#include <chrono>
#include <cstring>
#include <utility>

#include "src/kernels/kernels.h"

namespace lps::server {

namespace {

// Low 16 bits of every serialized sketch ("LS"), used to pre-validate
// snapshot blobs with a plain integer test — the BitReader/Deserialize
// path CHECK-aborts on corrupt state, which a daemon must not do on
// behalf of a client.
constexpr uint64_t kSketchMagic = 0x4C53;

// record_kind tags for tenant records in the checkpoint store. Window
// delta records live under a different key prefix ("w:" vs "t:") with
// their own tag, so the namespaces cannot collide.
constexpr uint8_t kTenantSnapshotRecord = 1;
constexpr uint8_t kTenantTombstoneRecord = 2;

uint64_t NowMs() {
  return uint64_t(std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
}

// Store payloads are BitWriter streams packed as [u64 LE bit count]
// [words LE] — the same shape the wire protocol uses for nested state.
std::vector<uint8_t> PackBits(const BitWriter& writer) {
  const std::vector<uint64_t>& words = writer.words();
  std::vector<uint8_t> bytes(8 + words.size() * 8);
  const uint64_t bits = writer.bit_count();
  std::memcpy(bytes.data(), &bits, 8);
  if (!words.empty()) {
    std::memcpy(bytes.data() + 8, words.data(), words.size() * 8);
  }
  return bytes;
}

bool UnpackBits(const std::vector<uint8_t>& bytes, BitReader* out) {
  if (bytes.size() < 8 || (bytes.size() - 8) % 8 != 0) return false;
  uint64_t bits = 0;
  std::memcpy(&bits, bytes.data(), 8);
  if (bits > (bytes.size() - 8) * 8) return false;
  std::vector<uint64_t> words((bytes.size() - 8) / 8);
  if (!words.empty()) {
    std::memcpy(words.data(), bytes.data() + 8, bytes.size() - 8);
  }
  *out = BitReader(std::move(words), size_t(bits));
  out->set_permissive(true);
  return true;
}

}  // namespace

void TenantRegistry::AttachStore(persist::CheckpointStore* store,
                                 PersistOptions options) {
  store_ = store;
  persist_options_ = options;
}

Result<std::shared_ptr<TenantRegistry::Entry>> TenantRegistry::BuildEntry(
    const SketchConfig& config) {
  if (config.shards < 1 || config.shards > 1024) {
    return Status::InvalidArgument("shards must be in [1, 1024]");
  }
  if (config.threads < 0 || config.threads > 1024) {
    return Status::InvalidArgument("threads must be in [0, 1024]");
  }
  // The spec arrived from the wire: out-of-range values would CHECK-
  // abort inside the sketch constructors, so they must be rejected
  // here, as a response the client can read.
  const Status valid = ValidateSpec(config.spec);
  if (!valid.ok()) return valid;
  auto entry = std::make_shared<Entry>();
  entry->config = config;
  entry->replicas.reserve(size_t(config.shards));
  for (int32_t s = 0; s < config.shards; ++s) {
    auto replica = MakeSketch(config.spec);
    if (replica == nullptr) {
      return Status::InvalidArgument("unknown sketch kind");
    }
    entry->replicas.push_back(std::move(replica));
  }
  if (config.shards > 1 || config.threads > 0) {
    stream::ParallelPipeline::Options options;
    options.shards = config.shards;
    options.threads = config.threads;
    entry->pipeline =
        std::make_unique<stream::ParallelPipeline>(options);
    std::vector<LinearSketch*> raw;
    raw.reserve(entry->replicas.size());
    for (const auto& replica : entry->replicas) raw.push_back(replica.get());
    entry->pipeline->Add("sketch", std::move(raw));
  }
  return entry;
}

std::shared_ptr<TenantRegistry::Entry> TenantRegistry::Find(
    const std::string& tenant, const std::string& key) {
  const std::string map_key = MapKey(tenant, key);
  {
    MapShard& shard = ShardFor(map_key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.entries.find(map_key);
    if (it != shard.entries.end()) return it->second;
  }
  // Not live — but with a store attached it may be an idle-evicted
  // tenant whose snapshot can be rehydrated transparently.
  if (store_ == nullptr) return nullptr;
  return RehydrateTenant(map_key);
}

std::shared_ptr<TenantRegistry::Entry> TenantRegistry::FindLive(
    const std::string& tenant, const std::string& key,
    std::unique_lock<std::mutex>* lock) {
  for (;;) {
    auto entry = Find(tenant, key);
    if (entry == nullptr) return nullptr;
    std::unique_lock<std::mutex> held(entry->mutex);
    if (!entry->evicted) {
      *lock = std::move(held);
      return entry;
    }
    // Raced EvictIdle: the map no longer holds this entry, but its
    // snapshot is in the store — retry, which rehydrates it.
  }
}

void TenantRegistry::AttachEntrySpill(Entry* entry,
                                      const std::string& map_key) {
  if (store_ == nullptr || entry->window == nullptr ||
      persist_options_.resident_checkpoints == 0) {
    return;
  }
  stream::WindowManager::SpillOptions spill;
  spill.store = store_;
  spill.stream_key = "w:" + map_key;
  spill.resident_checkpoints = persist_options_.resident_checkpoints;
  spill.keyframe_interval = persist_options_.keyframe_interval;
  entry->window->AttachSpill(std::move(spill));
}

Status TenantRegistry::Create(const std::string& tenant,
                              const std::string& key,
                              const SketchConfig& config) {
  auto built = BuildEntry(config);
  if (!built.ok()) return built.status();
  std::shared_ptr<Entry> entry = *built;
  if (config.window_checkpoint > 0) {
    stream::WindowManager::Options options;
    options.checkpoint_interval = config.window_checkpoint;
    options.max_checkpoints = size_t(config.max_checkpoints);
    entry->window = std::make_unique<stream::WindowManager>(
        entry->replicas[0].get(), options);
  }
  const std::string map_key = MapKey(tenant, key);
  entry->tenant = tenant;
  entry->key = key;
  entry->last_touch_ms = NowMs();
  AttachEntrySpill(entry.get(), map_key);
  MapShard& shard = ShardFor(map_key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (!shard.entries.emplace(map_key, std::move(entry)).second) {
    return Status::InvalidArgument("sketch already exists: " + tenant + "/" +
                                   key);
  }
  return Status::OK();
}

Result<uint64_t> TenantRegistry::Ingest(
    const std::string& tenant, const std::string& key,
    const std::vector<stream::Update>& updates) {
  std::unique_lock<std::mutex> lock;
  auto entry = FindLive(tenant, key, &lock);
  if (entry == nullptr) {
    return Status::InvalidArgument("no such sketch: " + tenant + "/" + key);
  }
  // The sampler/recovery kinds CHECK index < n on every update; an
  // out-of-universe index from the wire must be an error response, not
  // a daemon abort.
  if (const uint64_t bound = EnforcedUniverse(entry->config.spec)) {
    for (const stream::Update& update : updates) {
      if (update.index >= bound) {
        return Status::InvalidArgument(
            "update index " + std::to_string(update.index) +
            " outside universe [0, " + std::to_string(bound) + ")");
      }
    }
  }
  entry->last_touch_ms = NowMs();
  if (entry->pipeline != nullptr) {
    if (entry->window != nullptr) {
      // Close pipeline epochs exactly at checkpoint boundaries so the
      // sealed positions match a single-process WindowManager fed the
      // same stream (the bit-identity contract).
      const uint64_t interval = entry->window->checkpoint_interval();
      const stream::Update* cursor = updates.data();
      size_t remaining = updates.size();
      while (remaining > 0) {
        const uint64_t room = interval - entry->epoch_fill;
        const size_t chunk = size_t(remaining < room ? remaining : room);
        entry->pipeline->Drive(cursor, chunk);
        entry->epoch_fill += chunk;
        cursor += chunk;
        remaining -= chunk;
        if (entry->epoch_fill == interval) {
          entry->pipeline->MergeShards();
          entry->window->SealEpoch(interval);
          entry->epoch_fill = 0;
        }
      }
    } else {
      entry->pipeline->Drive(updates.data(), updates.size());
      entry->epoch_fill += updates.size();
    }
  } else if (entry->window != nullptr) {
    entry->window->PushBatch(updates.data(), updates.size());
  } else {
    entry->replicas[0]->UpdateBatch(updates.data(), updates.size());
  }
  entry->updates_seen += updates.size();
  updates_.fetch_add(updates.size(), std::memory_order_relaxed);
  ingests_.fetch_add(1, std::memory_order_relaxed);
  return entry->updates_seen;
}

Status TenantRegistry::FoldEpoch(const std::string& tenant,
                                 const std::string& key,
                                 const SketchConfig& config,
                                 const LinearSketch& delta, uint64_t count) {
  std::unique_lock<std::mutex> lock;
  auto entry = FindLive(tenant, key, &lock);
  if (entry == nullptr) {
    SketchConfig inline_config = config;
    inline_config.shards = 1;
    inline_config.threads = 0;
    const Status created = Create(tenant, key, inline_config);
    // Two workers racing their first epoch both miss the lookup; losing
    // the CREATE race is fine as long as somebody won it.
    entry = FindLive(tenant, key, &lock);
    if (entry == nullptr) {
      return created.ok() ? Status::Failed("fold raced a concurrent drop")
                          : created;
    }
  }
  // The entry may predate this worker (created by a CREATE request or
  // another worker's first epoch): its spec must match the epoch's
  // byte-for-byte, else Merge would CHECK on mismatched parameters.
  BitWriter ours;
  BitWriter theirs;
  SerializeSpec(entry->config.spec, &ours);
  SerializeSpec(config.spec, &theirs);
  if (ours.bit_count() != theirs.bit_count() ||
      ours.words() != theirs.words()) {
    return Status::InvalidArgument("epoch spec does not match stream " +
                                   tenant + "/" + key);
  }
  // Mixed ingest (direct INGEST plus folded epochs) must not fold into
  // a replica that lags an open pipeline epoch.
  Quiesce(entry.get());
  entry->last_touch_ms = NowMs();
  entry->replicas[0]->Merge(delta);
  if (entry->window != nullptr && count > 0) {
    // Checkpoint positions reflect fold ARRIVAL order across workers —
    // window starts are aggregator-local, only the whole prefix is
    // order-independent (docs/architecture.md, failure semantics).
    entry->window->SealEpoch(count);
  }
  entry->updates_seen += count;
  updates_.fetch_add(count, std::memory_order_relaxed);
  ingests_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void TenantRegistry::Quiesce(Entry* entry) {
  if (entry->pipeline == nullptr || entry->epoch_fill == 0) return;
  entry->pipeline->MergeShards();
  if (entry->window != nullptr) {
    entry->window->SealEpoch(entry->epoch_fill);
  }
  entry->epoch_fill = 0;
}

Result<QueryResult> TenantRegistry::Query(const std::string& tenant,
                                          const std::string& key) {
  std::unique_lock<std::mutex> lock;
  auto entry = FindLive(tenant, key, &lock);
  if (entry == nullptr) {
    return Status::InvalidArgument("no such sketch: " + tenant + "/" + key);
  }
  entry->last_touch_ms = NowMs();
  Quiesce(entry.get());
  queries_.fetch_add(1, std::memory_order_relaxed);
  return lps::Query(*entry->replicas[0]);
}

Result<TenantRegistry::WindowAnswer> TenantRegistry::Window(
    const std::string& tenant, const std::string& key, uint64_t w,
    bool want_state) {
  std::unique_lock<std::mutex> lock;
  auto entry = FindLive(tenant, key, &lock);
  if (entry == nullptr) {
    return Status::InvalidArgument("no such sketch: " + tenant + "/" + key);
  }
  if (entry->window == nullptr) {
    return Status::InvalidArgument("windowing not enabled for " + tenant +
                                   "/" + key);
  }
  entry->last_touch_ms = NowMs();
  Quiesce(entry.get());
  stream::WindowManager::Window window = entry->window->WindowSketch(w);
  WindowAnswer answer;
  answer.result = lps::Query(*window.sketch);
  answer.start = window.start;
  answer.length = window.length;
  if (want_state) {
    BitWriter writer;
    window.sketch->Serialize(&writer);
    answer.state_words = writer.words();
    answer.state_bits = writer.bit_count();
  }
  queries_.fetch_add(1, std::memory_order_relaxed);
  return answer;
}

Result<SnapshotBlob> TenantRegistry::Snapshot(const std::string& tenant,
                                              const std::string& key) {
  std::unique_lock<std::mutex> lock;
  auto entry = FindLive(tenant, key, &lock);
  if (entry == nullptr) {
    return Status::InvalidArgument("no such sketch: " + tenant + "/" + key);
  }
  entry->last_touch_ms = NowMs();
  Quiesce(entry.get());
  SnapshotBlob blob;
  blob.config = entry->config;
  blob.updates_seen = entry->updates_seen;
  BitWriter writer;
  entry->replicas[0]->Serialize(&writer);
  blob.state_words = writer.words();
  blob.state_bits = writer.bit_count();
  snapshots_.fetch_add(1, std::memory_order_relaxed);
  return blob;
}

Result<std::shared_ptr<TenantRegistry::Entry>> TenantRegistry::BuildFromSnapshot(
    const SnapshotBlob& blob) {
  // Pre-validate the state head with plain integer tests: Deserialize
  // CHECK-aborts on corrupt state, which must stay unreachable from the
  // wire (and from a store record damaged below the CRC's notice).
  if (blob.state_bits < 32 || blob.state_words.empty() ||
      blob.state_words.size() < (blob.state_bits + 63) / 64) {
    return Status::InvalidArgument("snapshot state truncated");
  }
  const uint64_t head = blob.state_words[0];
  if ((head & 0xFFFF) != kSketchMagic) {
    return Status::InvalidArgument("snapshot state is not a serialized sketch");
  }
  const auto state_kind = uint32_t((head >> 16) & 0xFF);
  if (state_kind != uint32_t(blob.config.spec.kind)) {
    return Status::InvalidArgument(
        "snapshot state kind does not match its config");
  }
  const auto version = uint32_t((head >> 24) & 0xFF);
  if (version < 1 || version > kSketchFormatVersion) {
    return Status::InvalidArgument("snapshot state version unsupported");
  }

  auto built = BuildEntry(blob.config);
  if (!built.ok()) return built.status();
  std::shared_ptr<Entry> entry = *built;
  // Serialized size and the leading word (header + first parameter
  // bits) are pure functions of the config — counters only change
  // values, never layout. A fresh replica of the same (already
  // validated) config is therefore an exact template for both, which
  // rejects truncated, padded, or version-skewed state before
  // Deserialize walks it.
  BitWriter probe;
  entry->replicas[0]->Serialize(&probe);
  if (blob.state_bits != probe.bit_count() ||
      blob.state_words[0] != probe.words()[0]) {
    return Status::InvalidArgument(
        "snapshot state does not match its declared config");
  }
  BitReader reader(blob.state_words, blob.state_bits);
  entry->replicas[0]->Deserialize(&reader);
  entry->updates_seen = blob.updates_seen;
  // Attach windowing AFTER the restore so the restored prefix becomes
  // checkpoint position 0: the snapshot is the stream's new origin, and
  // windows reach back at most to the restore point.
  if (blob.config.window_checkpoint > 0) {
    stream::WindowManager::Options options;
    options.checkpoint_interval = blob.config.window_checkpoint;
    options.max_checkpoints = size_t(blob.config.max_checkpoints);
    entry->window = std::make_unique<stream::WindowManager>(
        entry->replicas[0].get(), options);
  }
  return entry;
}

Status TenantRegistry::Restore(const std::string& tenant,
                               const std::string& key,
                               const SnapshotBlob& blob) {
  auto built = BuildFromSnapshot(blob);
  if (!built.ok()) return built.status();
  std::shared_ptr<Entry> entry = *built;
  const std::string map_key = MapKey(tenant, key);
  entry->tenant = tenant;
  entry->key = key;
  entry->last_touch_ms = NowMs();
  AttachEntrySpill(entry.get(), map_key);
  MapShard& shard = ShardFor(map_key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (!shard.entries.emplace(map_key, std::move(entry)).second) {
    return Status::InvalidArgument("sketch already exists: " + tenant + "/" +
                                   key);
  }
  return Status::OK();
}

Status TenantRegistry::Drop(const std::string& tenant, const std::string& key) {
  const std::string map_key = MapKey(tenant, key);
  bool was_live = false;
  {
    MapShard& shard = ShardFor(map_key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    was_live = shard.entries.erase(map_key) > 0;
  }
  if (store_ == nullptr) {
    return was_live ? Status::OK()
                    : Status::InvalidArgument("no such sketch: " + tenant +
                                              "/" + key);
  }
  const std::string store_key = "t:" + map_key;
  if (!was_live) {
    // Not live, but perhaps idle-evicted into the store — DROP of an
    // evicted tenant must still stick.
    const size_t records = store_->RecordCount(store_key);
    if (records == 0 ||
        store_->RecordKind(store_key, records - 1) != kTenantSnapshotRecord) {
      return Status::InvalidArgument("no such sketch: " + tenant + "/" + key);
    }
  }
  // The tombstone makes the drop durable: recovery and lazy rehydration
  // both stop at a latest record that is not a snapshot. Appended even
  // when no snapshot exists yet — a dangling tombstone is inert.
  const Status st = store_->Append(store_key, kTenantTombstoneRecord,
                                   nullptr, 0);
  if (st.ok()) store_->Sync();
  return st;
}

Status TenantRegistry::PersistEntryLocked(Entry* entry,
                                          const std::string& map_key) {
  Quiesce(entry);
  BitWriter writer;
  WriteString(&writer, entry->tenant);
  WriteString(&writer, entry->key);
  SnapshotBlob blob;
  blob.config = entry->config;
  blob.updates_seen = entry->updates_seen;
  BitWriter state;
  entry->replicas[0]->Serialize(&state);
  blob.state_words = state.words();
  blob.state_bits = state.bit_count();
  SerializeSnapshot(blob, &writer);
  const std::vector<uint8_t> payload = PackBits(writer);
  const Status st = store_->Append("t:" + map_key, kTenantSnapshotRecord,
                                   payload.data(), payload.size());
  if (st.ok()) entry->persisted_updates = entry->updates_seen;
  return st;
}

size_t TenantRegistry::PersistTenants(bool only_dirty) {
  if (store_ == nullptr) return 0;
  size_t written = 0;
  for (auto& [map_key, entry] : AllEntries()) {
    std::lock_guard<std::mutex> lock(entry->mutex);
    if (entry->evicted) continue;
    if (only_dirty && entry->updates_seen == entry->persisted_updates) {
      continue;
    }
    if (PersistEntryLocked(entry.get(), map_key).ok()) ++written;
  }
  if (written > 0) store_->Sync();
  return written;
}

size_t TenantRegistry::EvictIdle(uint64_t idle_timeout_ms) {
  if (store_ == nullptr || idle_timeout_ms == 0) return 0;
  const uint64_t now = NowMs();
  size_t evicted = 0;
  bool persisted = false;
  for (auto& [map_key, entry] : AllEntries()) {
    std::lock_guard<std::mutex> lock(entry->mutex);
    if (entry->evicted) continue;
    if (now < entry->last_touch_ms + idle_timeout_ms) continue;
    if (entry->updates_seen != entry->persisted_updates) {
      // An eviction that cannot persist must not happen: the entry stays
      // resident rather than lose its updates.
      if (!PersistEntryLocked(entry.get(), map_key).ok()) continue;
      persisted = true;
    }
    {
      MapShard& shard = ShardFor(map_key);
      std::lock_guard<std::mutex> map_lock(shard.mutex);
      auto it = shard.entries.find(map_key);
      // A drop/recreate may have raced ahead of us — only evict the
      // exact entry this pass snapshotted.
      if (it == shard.entries.end() || it->second != entry) continue;
      shard.entries.erase(it);
    }
    entry->evicted = true;
    ++evicted;
  }
  if (persisted) store_->Sync();
  return evicted;
}

std::shared_ptr<TenantRegistry::Entry> TenantRegistry::RehydrateTenant(
    const std::string& map_key) {
  const std::string store_key = "t:" + map_key;
  const size_t records = store_->RecordCount(store_key);
  if (records == 0 ||
      store_->RecordKind(store_key, records - 1) != kTenantSnapshotRecord) {
    return nullptr;  // never persisted, or tombstoned
  }
  auto payload = store_->ReadRecord(store_key, records - 1);
  if (!payload.ok()) return nullptr;
  BitReader reader((std::vector<uint64_t>()), 0);
  if (!UnpackBits(*payload, &reader)) return nullptr;
  const std::string tenant = ReadString(&reader);
  const std::string key = ReadString(&reader);
  const SnapshotBlob blob = DeserializeSnapshot(&reader);
  // The names inside the record must agree with the key it was filed
  // under — a mismatch means the record was damaged below the CRC's
  // notice or misfiled, either way unusable.
  if (reader.failed() || MapKey(tenant, key) != map_key) return nullptr;
  auto built = BuildFromSnapshot(blob);
  if (!built.ok()) return nullptr;
  std::shared_ptr<Entry> entry = *built;
  entry->tenant = tenant;
  entry->key = key;
  entry->last_touch_ms = NowMs();
  // The snapshot we just rebuilt from IS the persisted state.
  entry->persisted_updates = entry->updates_seen;
  AttachEntrySpill(entry.get(), map_key);
  MapShard& shard = ShardFor(map_key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto emplaced = shard.entries.emplace(map_key, std::move(entry));
  // Lost a rehydration race: the concurrently inserted entry wins.
  return emplaced.first->second;
}

size_t TenantRegistry::RestoreAll() {
  if (store_ == nullptr) return 0;
  size_t restored = 0;
  for (const std::string& store_key : store_->Keys()) {
    if (store_key.compare(0, 2, "t:") != 0) continue;
    const std::string map_key = store_key.substr(2);
    {
      MapShard& shard = ShardFor(map_key);
      std::lock_guard<std::mutex> lock(shard.mutex);
      if (shard.entries.count(map_key) > 0) continue;  // already live
    }
    if (RehydrateTenant(map_key) != nullptr) ++restored;
  }
  return restored;
}

std::vector<std::pair<std::string, std::shared_ptr<TenantRegistry::Entry>>>
TenantRegistry::AllEntries() const {
  std::vector<std::pair<std::string, std::shared_ptr<Entry>>> entries;
  for (const MapShard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [map_key, entry] : shard.entries) {
      entries.emplace_back(map_key, entry);
    }
  }
  return entries;
}

ServerStats TenantRegistry::Stats() const {
  ServerStats stats;
  stats.kernel_backend = kernels::ActiveBackendName();
  stats.updates = updates_.load(std::memory_order_relaxed);
  stats.ingests = ingests_.load(std::memory_order_relaxed);
  stats.queries = queries_.load(std::memory_order_relaxed);
  stats.snapshots = snapshots_.load(std::memory_order_relaxed);
  const auto entries = AllEntries();
  stats.tenants = entries.size();
  std::unordered_map<std::string, bool> live;
  live.reserve(entries.size());
  for (const auto& [map_key, entry] : entries) {
    live.emplace(map_key, true);
    std::lock_guard<std::mutex> lock(entry->mutex);
    TenantPersistStats tenant;
    tenant.name = entry->tenant + "/" + entry->key;
    if (entry->window != nullptr) {
      tenant.resident_bytes = entry->window->CheckpointBytes();
      tenant.spilled_bytes = entry->window->SpilledBytes();
    }
    tenant.resident = true;
    stats.resident_bytes += tenant.resident_bytes;
    stats.spilled_bytes += tenant.spilled_bytes;
    stats.per_tenant.push_back(std::move(tenant));
  }
  if (store_ == nullptr) return stats;
  // Idle-evicted tenants exist only as store records; report them with
  // their on-disk footprint so the spill is observable end to end.
  for (const std::string& store_key : store_->Keys()) {
    if (store_key.compare(0, 2, "t:") != 0) continue;
    const std::string map_key = store_key.substr(2);
    if (live.count(map_key) > 0) continue;
    const size_t records = store_->RecordCount(store_key);
    if (records == 0 ||
        store_->RecordKind(store_key, records - 1) != kTenantSnapshotRecord) {
      continue;  // tombstoned (dropped), not evicted
    }
    TenantPersistStats tenant;
    // Recover the wire names from the map key's length-prefixed form:
    // "<tenant_len>:<tenant><key>".
    const size_t colon = map_key.find(':');
    if (colon == std::string::npos) continue;
    const size_t tenant_len = size_t(std::stoull(map_key.substr(0, colon)));
    if (colon + 1 + tenant_len > map_key.size()) continue;
    tenant.name = map_key.substr(colon + 1, tenant_len) + "/" +
                  map_key.substr(colon + 1 + tenant_len);
    tenant.resident = false;
    tenant.spilled_bytes =
        store_->KeyBytes(store_key) + store_->KeyBytes("w:" + map_key);
    stats.spilled_bytes += tenant.spilled_bytes;
    stats.per_tenant.push_back(std::move(tenant));
  }
  return stats;
}

}  // namespace lps::server
