#include "src/server/tenant_registry.h"

#include <utility>

namespace lps::server {

namespace {

// Low 16 bits of every serialized sketch ("LS"), used to pre-validate
// snapshot blobs with a plain integer test — the BitReader/Deserialize
// path CHECK-aborts on corrupt state, which a daemon must not do on
// behalf of a client.
constexpr uint64_t kSketchMagic = 0x4C53;

}  // namespace

Result<std::shared_ptr<TenantRegistry::Entry>> TenantRegistry::BuildEntry(
    const SketchConfig& config) {
  if (config.shards < 1 || config.shards > 1024) {
    return Status::InvalidArgument("shards must be in [1, 1024]");
  }
  if (config.threads < 0 || config.threads > 1024) {
    return Status::InvalidArgument("threads must be in [0, 1024]");
  }
  // The spec arrived from the wire: out-of-range values would CHECK-
  // abort inside the sketch constructors, so they must be rejected
  // here, as a response the client can read.
  const Status valid = ValidateSpec(config.spec);
  if (!valid.ok()) return valid;
  auto entry = std::make_shared<Entry>();
  entry->config = config;
  entry->replicas.reserve(size_t(config.shards));
  for (int32_t s = 0; s < config.shards; ++s) {
    auto replica = MakeSketch(config.spec);
    if (replica == nullptr) {
      return Status::InvalidArgument("unknown sketch kind");
    }
    entry->replicas.push_back(std::move(replica));
  }
  if (config.shards > 1 || config.threads > 0) {
    stream::ParallelPipeline::Options options;
    options.shards = config.shards;
    options.threads = config.threads;
    entry->pipeline =
        std::make_unique<stream::ParallelPipeline>(options);
    std::vector<LinearSketch*> raw;
    raw.reserve(entry->replicas.size());
    for (const auto& replica : entry->replicas) raw.push_back(replica.get());
    entry->pipeline->Add("sketch", std::move(raw));
  }
  return entry;
}

std::shared_ptr<TenantRegistry::Entry> TenantRegistry::Find(
    const std::string& tenant, const std::string& key) {
  const std::string map_key = MapKey(tenant, key);
  MapShard& shard = ShardFor(map_key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(map_key);
  return it == shard.entries.end() ? nullptr : it->second;
}

Status TenantRegistry::Create(const std::string& tenant,
                              const std::string& key,
                              const SketchConfig& config) {
  auto built = BuildEntry(config);
  if (!built.ok()) return built.status();
  std::shared_ptr<Entry> entry = *built;
  if (config.window_checkpoint > 0) {
    stream::WindowManager::Options options;
    options.checkpoint_interval = config.window_checkpoint;
    options.max_checkpoints = size_t(config.max_checkpoints);
    entry->window = std::make_unique<stream::WindowManager>(
        entry->replicas[0].get(), options);
  }
  const std::string map_key = MapKey(tenant, key);
  MapShard& shard = ShardFor(map_key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (!shard.entries.emplace(map_key, std::move(entry)).second) {
    return Status::InvalidArgument("sketch already exists: " + tenant + "/" +
                                   key);
  }
  return Status::OK();
}

Status TenantRegistry::Ingest(const std::string& tenant,
                              const std::string& key,
                              const std::vector<stream::Update>& updates) {
  auto entry = Find(tenant, key);
  if (entry == nullptr) {
    return Status::InvalidArgument("no such sketch: " + tenant + "/" + key);
  }
  // The sampler/recovery kinds CHECK index < n on every update; an
  // out-of-universe index from the wire must be an error response, not
  // a daemon abort.
  if (const uint64_t bound = EnforcedUniverse(entry->config.spec)) {
    for (const stream::Update& update : updates) {
      if (update.index >= bound) {
        return Status::InvalidArgument(
            "update index " + std::to_string(update.index) +
            " outside universe [0, " + std::to_string(bound) + ")");
      }
    }
  }
  std::lock_guard<std::mutex> lock(entry->mutex);
  if (entry->pipeline != nullptr) {
    if (entry->window != nullptr) {
      // Close pipeline epochs exactly at checkpoint boundaries so the
      // sealed positions match a single-process WindowManager fed the
      // same stream (the bit-identity contract).
      const uint64_t interval = entry->window->checkpoint_interval();
      const stream::Update* cursor = updates.data();
      size_t remaining = updates.size();
      while (remaining > 0) {
        const uint64_t room = interval - entry->epoch_fill;
        const size_t chunk = size_t(remaining < room ? remaining : room);
        entry->pipeline->Drive(cursor, chunk);
        entry->epoch_fill += chunk;
        cursor += chunk;
        remaining -= chunk;
        if (entry->epoch_fill == interval) {
          entry->pipeline->MergeShards();
          entry->window->SealEpoch(interval);
          entry->epoch_fill = 0;
        }
      }
    } else {
      entry->pipeline->Drive(updates.data(), updates.size());
      entry->epoch_fill += updates.size();
    }
  } else if (entry->window != nullptr) {
    entry->window->PushBatch(updates.data(), updates.size());
  } else {
    entry->replicas[0]->UpdateBatch(updates.data(), updates.size());
  }
  entry->updates_seen += updates.size();
  updates_.fetch_add(updates.size(), std::memory_order_relaxed);
  ingests_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void TenantRegistry::Quiesce(Entry* entry) {
  if (entry->pipeline == nullptr || entry->epoch_fill == 0) return;
  entry->pipeline->MergeShards();
  if (entry->window != nullptr) {
    entry->window->SealEpoch(entry->epoch_fill);
  }
  entry->epoch_fill = 0;
}

Result<QueryResult> TenantRegistry::Query(const std::string& tenant,
                                          const std::string& key) {
  auto entry = Find(tenant, key);
  if (entry == nullptr) {
    return Status::InvalidArgument("no such sketch: " + tenant + "/" + key);
  }
  std::lock_guard<std::mutex> lock(entry->mutex);
  Quiesce(entry.get());
  queries_.fetch_add(1, std::memory_order_relaxed);
  return lps::Query(*entry->replicas[0]);
}

Result<TenantRegistry::WindowAnswer> TenantRegistry::Window(
    const std::string& tenant, const std::string& key, uint64_t w,
    bool want_state) {
  auto entry = Find(tenant, key);
  if (entry == nullptr) {
    return Status::InvalidArgument("no such sketch: " + tenant + "/" + key);
  }
  std::lock_guard<std::mutex> lock(entry->mutex);
  if (entry->window == nullptr) {
    return Status::InvalidArgument("windowing not enabled for " + tenant +
                                   "/" + key);
  }
  Quiesce(entry.get());
  stream::WindowManager::Window window = entry->window->WindowSketch(w);
  WindowAnswer answer;
  answer.result = lps::Query(*window.sketch);
  answer.start = window.start;
  answer.length = window.length;
  if (want_state) {
    BitWriter writer;
    window.sketch->Serialize(&writer);
    answer.state_words = writer.words();
    answer.state_bits = writer.bit_count();
  }
  queries_.fetch_add(1, std::memory_order_relaxed);
  return answer;
}

Result<SnapshotBlob> TenantRegistry::Snapshot(const std::string& tenant,
                                              const std::string& key) {
  auto entry = Find(tenant, key);
  if (entry == nullptr) {
    return Status::InvalidArgument("no such sketch: " + tenant + "/" + key);
  }
  std::lock_guard<std::mutex> lock(entry->mutex);
  Quiesce(entry.get());
  SnapshotBlob blob;
  blob.config = entry->config;
  blob.updates_seen = entry->updates_seen;
  BitWriter writer;
  entry->replicas[0]->Serialize(&writer);
  blob.state_words = writer.words();
  blob.state_bits = writer.bit_count();
  snapshots_.fetch_add(1, std::memory_order_relaxed);
  return blob;
}

Status TenantRegistry::Restore(const std::string& tenant,
                               const std::string& key,
                               const SnapshotBlob& blob) {
  // Pre-validate the state head with plain integer tests: Deserialize
  // CHECK-aborts on corrupt state, which must stay unreachable from the
  // wire.
  if (blob.state_bits < 32 || blob.state_words.empty() ||
      blob.state_words.size() < (blob.state_bits + 63) / 64) {
    return Status::InvalidArgument("snapshot state truncated");
  }
  const uint64_t head = blob.state_words[0];
  if ((head & 0xFFFF) != kSketchMagic) {
    return Status::InvalidArgument("snapshot state is not a serialized sketch");
  }
  const auto state_kind = uint32_t((head >> 16) & 0xFF);
  if (state_kind != uint32_t(blob.config.spec.kind)) {
    return Status::InvalidArgument(
        "snapshot state kind does not match its config");
  }
  const auto version = uint32_t((head >> 24) & 0xFF);
  if (version < 1 || version > kSketchFormatVersion) {
    return Status::InvalidArgument("snapshot state version unsupported");
  }

  auto built = BuildEntry(blob.config);
  if (!built.ok()) return built.status();
  std::shared_ptr<Entry> entry = *built;
  // Serialized size and the leading word (header + first parameter
  // bits) are pure functions of the config — counters only change
  // values, never layout. A fresh replica of the same (already
  // validated) config is therefore an exact template for both, which
  // rejects truncated, padded, or version-skewed state before
  // Deserialize walks it.
  BitWriter probe;
  entry->replicas[0]->Serialize(&probe);
  if (blob.state_bits != probe.bit_count() ||
      blob.state_words[0] != probe.words()[0]) {
    return Status::InvalidArgument(
        "snapshot state does not match its declared config");
  }
  BitReader reader(blob.state_words, blob.state_bits);
  entry->replicas[0]->Deserialize(&reader);
  entry->updates_seen = blob.updates_seen;
  // Attach windowing AFTER the restore so the restored prefix becomes
  // checkpoint position 0: the snapshot is the stream's new origin, and
  // windows reach back at most to the restore point.
  if (blob.config.window_checkpoint > 0) {
    stream::WindowManager::Options options;
    options.checkpoint_interval = blob.config.window_checkpoint;
    options.max_checkpoints = size_t(blob.config.max_checkpoints);
    entry->window = std::make_unique<stream::WindowManager>(
        entry->replicas[0].get(), options);
  }
  const std::string map_key = MapKey(tenant, key);
  MapShard& shard = ShardFor(map_key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (!shard.entries.emplace(map_key, std::move(entry)).second) {
    return Status::InvalidArgument("sketch already exists: " + tenant + "/" +
                                   key);
  }
  return Status::OK();
}

Status TenantRegistry::Drop(const std::string& tenant, const std::string& key) {
  const std::string map_key = MapKey(tenant, key);
  MapShard& shard = ShardFor(map_key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.entries.erase(map_key) == 0) {
    return Status::InvalidArgument("no such sketch: " + tenant + "/" + key);
  }
  return Status::OK();
}

ServerStats TenantRegistry::Stats() const {
  ServerStats stats;
  for (const MapShard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    stats.tenants += shard.entries.size();
  }
  stats.updates = updates_.load(std::memory_order_relaxed);
  stats.ingests = ingests_.load(std::memory_order_relaxed);
  stats.queries = queries_.load(std::memory_order_relaxed);
  stats.snapshots = snapshots_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace lps::server
