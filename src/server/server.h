// Server — the TCP transport of lps_serve.
//
// Threading model (the classic reader/writer-thread shape used by
// high-throughput pipeline tools): one accept thread owns the listening
// socket; each accepted connection gets
//
//   - a READER thread: reads length-prefixed frames, decodes the
//     request, calls the matching TenantRegistry method, and pushes the
//     encoded response into the connection's outbox;
//   - a WRITER thread: the only thread that writes the socket, draining
//     the outbox in order. The outbox is a BOUNDED queue — a client
//     that stops reading its responses eventually blocks its own reader
//     thread (per-connection backpressure) instead of growing server
//     memory.
//
// Responses therefore leave in request order, and no lock is held
// across socket I/O. Cross-tenant parallelism comes from the registry's
// entry-level locking: N connections ingesting into N tenants proceed
// concurrently, serialized only per stream.
//
// Failure containment: a malformed frame must never take the daemon
// down. An oversized length prefix or truncated payload makes the byte
// stream unsynchronized — the connection gets a best-effort error frame
// and is closed; an unknown opcode inside a well-formed frame gets an
// error response and the connection continues, as does a well-formed
// frame whose BODY lies about its interior lengths (bodies decode
// through a permissive BitReader and every claimed count is checked
// against the delivered bits — see protocol.h). Request VALUES that
// would trip a library precondition (out-of-range spec parameters,
// update indices past the declared universe, snapshot state that does
// not match its config) are rejected by the registry before they reach
// CHECK-guarded code. Registry-level errors (unknown tenant, duplicate
// CREATE, ...) are ordinary error responses. Other connections are
// never affected; tests/server_test.cc drives all of these against a
// live server.
//
// Durability (optional, data_dir != ""): Start() opens a
// persist::CheckpointStore in data_dir, restores every tenant whose
// latest record is a snapshot (so a SIGKILL'd daemon reboots answering
// identically), and spawns one background thread that periodically
// snapshots dirty tenants — and, with idle_timeout_ms set, evicts idle
// ones to the store, from which they rehydrate lazily on next touch.
// Stop() takes a final full snapshot, so a clean shutdown loses
// nothing; a crash loses at most the updates since the last periodic
// snapshot (bounded by snapshot_interval_ms).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/persist/checkpoint_store.h"
#include "src/server/protocol.h"
#include "src/server/tenant_registry.h"

namespace lps::server {

/// Extension point for opcodes the core transport does not implement
/// (the distributed-aggregation tier in src/dist/ registers one).
/// Server offers every non-core opcode here before answering "unknown
/// opcode". Implementations must be thread-safe: HandleOpcode runs
/// concurrently on connection reader threads.
class FrameHandler {
 public:
  virtual ~FrameHandler() = default;

  /// Returns true when this handler owns `opcode`; the server then
  /// sends either an error response carrying `status`'s message (when
  /// non-OK) or an ok response with `*reply` as its body. `body` is the
  /// request's permissive reader; a handler that finds it failed()
  /// should answer "malformed request body" like the core opcodes do.
  /// `connection_id` is stable for the life of the TCP connection and
  /// never reused within one server.
  virtual bool HandleOpcode(uint64_t connection_id, uint8_t opcode,
                            BitReader* body, BitWriter* reply,
                            Status* status) = 0;

  /// The connection's reader exited (peer EOF, protocol violation, or
  /// server shutdown) — runs exactly once per accepted connection.
  virtual void OnConnectionClosed(uint64_t connection_id) = 0;
};

class Server {
 public:
  struct Options {
    /// TCP port to bind on 127.0.0.1; 0 asks the kernel for an
    /// ephemeral port (tests/bench), reported by port() after Start().
    int port = 0;
    /// Bound on queued responses per connection before the reader
    /// blocks (backpressure against clients that stop reading).
    size_t outbox_capacity = 64;
    /// Frame payload ceiling handed to ReadFrame.
    uint32_t max_frame_bytes = kMaxFrameBytes;
    /// Durable checkpoint-store directory; "" disables persistence.
    std::string data_dir;
    /// Cadence of the background dirty-tenant snapshot pass (the crash
    /// loss bound). 0 disables the background thread.
    uint64_t snapshot_interval_ms = 1000;
    /// Tenants untouched this long are persisted + evicted from RAM
    /// (lazy rehydration on next touch). 0 disables eviction.
    uint64_t idle_timeout_ms = 0;
    /// Window checkpoints kept resident per tenant; older ones spill
    /// delta-compressed into the store. 0 disables window spill.
    size_t resident_checkpoints = 4;
    /// Keyframe cadence of each tenant's spill chain.
    size_t keyframe_interval = 16;
    /// Take one full snapshot pass in Stop() (clean shutdowns lose
    /// nothing). Tests disable it to model a pure crash.
    bool final_snapshot_on_stop = true;
  };

  explicit Server(Options options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the accept thread. InvalidArgument /
  /// Failed on socket errors (e.g. port in use).
  Status Start();

  /// Shuts down every connection, joins every thread, closes the
  /// listener. Idempotent; also run by the destructor.
  void Stop();

  /// The actually bound port (resolves port 0 after Start()).
  int port() const { return port_; }

  TenantRegistry& registry() { return registry_; }

  /// Attaches the non-core-opcode handler (the dist-tier aggregator).
  /// Must run before Start(); `handler` must outlive the server.
  void set_extension(FrameHandler* handler) { extension_ = handler; }

  /// Tenants rebuilt from the store during Start() (0 without data_dir).
  size_t restored_tenants() const { return restored_tenants_; }

  /// The open checkpoint store; null without data_dir / before Start().
  persist::CheckpointStore* store() { return store_.get(); }

 private:
  /// Bounded FIFO of encoded response frames, closed on teardown.
  class Outbox {
   public:
    explicit Outbox(size_t capacity) : capacity_(capacity) {}

    /// Blocks while full; drops the frame if the outbox was closed.
    void Push(std::vector<uint8_t> frame);
    /// Blocks while empty; false once closed and drained.
    bool Pop(std::vector<uint8_t>* out);
    void Close();

   private:
    std::mutex mutex_;
    std::condition_variable can_push_;
    std::condition_variable can_pop_;
    std::deque<std::vector<uint8_t>> queue_;
    size_t capacity_;
    bool closed_ = false;
  };

  struct Connection {
    explicit Connection(int fd_in, uint64_t id_in, size_t outbox_capacity)
        : fd(fd_in), id(id_in), outbox(outbox_capacity) {}
    int fd;
    /// Monotonic per-server id, handed to the FrameHandler extension so
    /// it can track per-connection peers (never reused).
    uint64_t id;
    Outbox outbox;
    std::thread reader;
    std::thread writer;
    std::atomic<bool> done{false};
    // ---- INGEST_STREAM run state (touched by the reader thread only) --
    uint64_t stream_count = 0;  ///< updates accepted since the last sync
    uint64_t stream_seen = 0;   ///< target stream's updates_seen, last frame
    std::string stream_error;   ///< first deferred error; empty = clean run
  };

  void AcceptLoop();
  void ReaderMain(Connection* connection);
  void WriterMain(Connection* connection);
  /// Decodes and executes one request, enqueueing exactly one response.
  /// Returns false when the connection must close (unsynchronized
  /// stream).
  bool HandleFrame(Connection* connection, Frame frame);
  void SendOk(Connection* connection, const BitWriter& body);
  void SendError(Connection* connection, const std::string& message);
  /// Answers a body whose interior lengths lied about the frame's
  /// contents. Returns true: the frame boundary was sound, so the
  /// connection keeps serving.
  bool SendMalformed(Connection* connection);
  /// Unlinks finished connections under connections_mutex_, then joins
  /// them outside it (called from the accept loop so long-lived servers
  /// do not accumulate dead threads, without the accept loop ever
  /// blocking on a join while holding the mutex).
  void ReapFinished();
  /// Background persistence: periodic dirty snapshots + idle eviction.
  void SnapshotLoop();

  Options options_;
  FrameHandler* extension_ = nullptr;  // set before Start(), then const
  std::atomic<uint64_t> next_connection_id_{1};
  /// Declared BEFORE registry_: entries hold WindowManagers whose spill
  /// chains reference the store, so the registry must die first.
  std::unique_ptr<persist::CheckpointStore> store_;
  TenantRegistry registry_;
  /// Atomic: the accept loop re-reads it per iteration while Stop()
  /// (another thread) swaps in -1 before closing the socket.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;
  std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;
  size_t restored_tenants_ = 0;
  std::thread snapshot_thread_;
  std::mutex snapshot_mutex_;
  std::condition_variable snapshot_cv_;
  bool snapshot_stop_ = false;  // under snapshot_mutex_
};

}  // namespace lps::server
