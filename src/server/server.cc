#include "src/server/server.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace lps::server {

// --------------------------------------------------------------- Outbox --

void Server::Outbox::Push(std::vector<uint8_t> frame) {
  std::unique_lock<std::mutex> lock(mutex_);
  can_push_.wait(lock,
                 [&] { return closed_ || queue_.size() < capacity_; });
  if (closed_) return;
  queue_.push_back(std::move(frame));
  can_pop_.notify_one();
}

bool Server::Outbox::Pop(std::vector<uint8_t>* out) {
  std::unique_lock<std::mutex> lock(mutex_);
  can_pop_.wait(lock, [&] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return false;
  *out = std::move(queue_.front());
  queue_.pop_front();
  can_push_.notify_one();
  return true;
}

void Server::Outbox::Close() {
  std::lock_guard<std::mutex> lock(mutex_);
  closed_ = true;
  can_push_.notify_all();
  can_pop_.notify_all();
}

// --------------------------------------------------------------- Server --

Server::Server(Options options) : options_(options) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (!options_.data_dir.empty()) {
    auto opened = persist::CheckpointStore::Open(options_.data_dir);
    if (!opened.ok()) return opened.status();
    store_ = std::move(opened.value());
    TenantRegistry::PersistOptions persist;
    persist.resident_checkpoints = options_.resident_checkpoints;
    persist.keyframe_interval = options_.keyframe_interval;
    registry_.AttachStore(store_.get(), persist);
    // Boot recovery happens BEFORE the listener exists: the first
    // accepted connection already sees every restored tenant.
    restored_tenants_ = registry_.RestoreAll();
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Failed(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(uint16_t(options_.port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status status =
        Status::Failed(std::string("bind: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 128) < 0) {
    const Status status =
        Status::Failed(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = int(ntohs(bound.sin_port));

  listen_fd_.store(fd);
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  if (store_ != nullptr && options_.snapshot_interval_ms > 0) {
    snapshot_thread_ = std::thread([this] { SnapshotLoop(); });
  }
  return Status::OK();
}

void Server::SnapshotLoop() {
  std::unique_lock<std::mutex> lock(snapshot_mutex_);
  while (!snapshot_stop_) {
    snapshot_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.snapshot_interval_ms),
        [this] { return snapshot_stop_; });
    if (snapshot_stop_) return;
    // The passes run WITHOUT snapshot_mutex_ held — they take entry
    // locks and can block behind ingest, which must not delay Stop()'s
    // shutdown signal.
    lock.unlock();
    registry_.PersistTenants(/*only_dirty=*/true);
    if (options_.idle_timeout_ms > 0) {
      registry_.EvictIdle(options_.idle_timeout_ms);
    }
    lock.lock();
  }
}

void Server::Stop() {
  const bool was_running = running_.exchange(false);
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    snapshot_stop_ = true;
  }
  snapshot_cv_.notify_all();
  if (snapshot_thread_.joinable()) snapshot_thread_.join();
  const int fd = listen_fd_.exchange(-1);
  if (fd >= 0) {
    // shutdown() unblocks a blocked accept(); close() finishes the fd.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections.swap(connections_);
  }
  for (auto& connection : connections) {
    ::shutdown(connection->fd, SHUT_RDWR);
    connection->outbox.Close();
    if (connection->reader.joinable()) connection->reader.join();
    if (connection->writer.joinable()) connection->writer.join();
    ::close(connection->fd);
  }
  // Every serving thread is gone — a final full snapshot makes a clean
  // shutdown lossless (only run once; Stop is otherwise idempotent).
  if (was_running && store_ != nullptr && options_.final_snapshot_on_stop) {
    registry_.PersistTenants(/*only_dirty=*/false);
  }
}

void Server::AcceptLoop() {
  while (running_.load()) {
    const int listen_fd = listen_fd_.load();
    if (listen_fd < 0) break;  // Stop() already retired the listener
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed (Stop) or fatal error
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto connection = std::make_unique<Connection>(
        fd, next_connection_id_.fetch_add(1, std::memory_order_relaxed),
        options_.outbox_capacity);
    Connection* raw = connection.get();
    raw->reader = std::thread([this, raw] { ReaderMain(raw); });
    raw->writer = std::thread([this, raw] { WriterMain(raw); });
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.push_back(std::move(connection));
    }
    ReapFinished();
  }
}

void Server::ReapFinished() {
  // Unlink finished connections under the lock, but JOIN outside it: a
  // reader can still be finishing its last request when the writer
  // flags done, and Stop() takes the same mutex — joining under it
  // would stall the accept loop (and could deadlock it) behind one
  // straggling connection.
  std::vector<std::unique_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      if ((*it)->done.load()) {
        finished.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& connection : finished) {
    if (connection->reader.joinable()) connection->reader.join();
    if (connection->writer.joinable()) connection->writer.join();
    ::close(connection->fd);
  }
}

void Server::ReaderMain(Connection* connection) {
  while (running_.load()) {
    Result<Frame> frame = ReadFrame(connection->fd, options_.max_frame_bytes);
    if (!frame.ok()) {
      // A protocol violation (oversized prefix, truncated payload)
      // leaves the stream unsynchronized: answer once, then close.
      // EOF/read errors just close.
      if (frame.status().code() == Code::kInvalidArgument) {
        SendError(connection, frame.status().message());
      }
      break;
    }
    if (!HandleFrame(connection, std::move(frame.value()))) break;
  }
  if (extension_ != nullptr) extension_->OnConnectionClosed(connection->id);
  connection->outbox.Close();
  // Wake the writer if it is mid-send on a dead peer, and mark the
  // connection reapable once the writer drains.
  ::shutdown(connection->fd, SHUT_RD);
}

void Server::WriterMain(Connection* connection) {
  std::vector<uint8_t> bytes;
  while (connection->outbox.Pop(&bytes)) {
    size_t done = 0;
    bool failed = false;
    while (done < bytes.size()) {
      const ssize_t n = ::send(connection->fd, bytes.data() + done,
                               bytes.size() - done, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        failed = true;
        break;
      }
      done += size_t(n);
    }
    if (failed) {
      // Peer is gone: stop draining, and CLOSE the outbox so a reader
      // blocked in Push (bounded queue full — exactly what a peer that
      // stopped reading and then died produces) wakes up instead of
      // waiting forever on a queue nothing will ever pop.
      connection->outbox.Close();
      ::shutdown(connection->fd, SHUT_RDWR);
      break;
    }
  }
  // The outbox only closes once the reader has exited, so every reply is
  // on the wire: signal EOF to the peer (the fd itself is closed when the
  // connection is reaped or the server stops).
  ::shutdown(connection->fd, SHUT_WR);
  connection->done.store(true);
}

void Server::SendOk(Connection* connection, const BitWriter& body) {
  std::vector<uint8_t> frame = EncodeFrame(kStatusOk, body);
  if (frame.empty()) {
    // Body larger than a frame can carry: answer with an error rather
    // than silently dropping the reply (the client is owed exactly one
    // response per request).
    SendError(connection, "response exceeds the frame size limit");
    return;
  }
  connection->outbox.Push(std::move(frame));
}

void Server::SendError(Connection* connection, const std::string& message) {
  BitWriter body;
  WriteString(&body, message);
  connection->outbox.Push(EncodeFrame(kStatusError, body));
}

bool Server::SendMalformed(Connection* connection) {
  // The frame boundary was sound — only the body lied about its
  // interior — so the byte stream is still synchronized and the
  // connection keeps serving, like the unknown-opcode case.
  SendError(connection, "malformed request body");
  return true;
}

bool Server::HandleFrame(Connection* connection, Frame frame) {
  BitReader& body = frame.body;
  switch (Opcode(frame.first)) {
    case Opcode::kCreate: {
      const std::string tenant = ReadString(&body);
      const std::string key = ReadString(&body);
      const SketchConfig config = DeserializeConfig(&body);
      if (body.failed()) return SendMalformed(connection);
      const Status status = registry_.Create(tenant, key, config);
      if (!status.ok()) {
        SendError(connection, status.message());
      } else {
        SendOk(connection, BitWriter());
      }
      return true;
    }
    case Opcode::kIngest: {
      const std::string tenant = ReadString(&body);
      const std::string key = ReadString(&body);
      const std::vector<stream::Update> updates = ReadUpdates(&body);
      if (body.failed()) return SendMalformed(connection);
      const Result<uint64_t> seen = registry_.Ingest(tenant, key, updates);
      if (!seen.ok()) {
        SendError(connection, seen.status().message());
      } else {
        BitWriter reply;
        reply.WriteU64(updates.size());
        SendOk(connection, reply);
      }
      return true;
    }
    case Opcode::kIngestStream: {
      // Pipelined ingest: NO response frame. The sender streams a run
      // of these back-to-back and collects one cumulative INGEST_SYNC
      // ack, so neither side pays a per-batch round trip. Errors are
      // deferred: the first one poisons the run (later frames are
      // decoded but not applied) and surfaces exactly once, on the
      // sync — the frame boundary stays sound throughout, so the
      // connection itself keeps serving.
      const std::string tenant = ReadString(&body);
      const std::string key = ReadString(&body);
      const std::vector<stream::Update> updates = ReadUpdates(&body);
      if (body.failed()) {
        if (connection->stream_error.empty()) {
          connection->stream_error = "malformed request body";
        }
        return true;
      }
      if (!connection->stream_error.empty()) return true;
      const Result<uint64_t> seen = registry_.Ingest(tenant, key, updates);
      if (!seen.ok()) {
        connection->stream_error = seen.status().message();
        return true;
      }
      connection->stream_count += updates.size();
      connection->stream_seen = seen.value();
      return true;
    }
    case Opcode::kIngestSync: {
      // Close the streamed run: one ack carrying the cumulative accepted
      // count and the target stream's updates_seen, or the run's first
      // deferred error. Either way the run state resets.
      if (connection->stream_error.empty()) {
        BitWriter reply;
        reply.WriteU64(connection->stream_count);
        reply.WriteU64(connection->stream_seen);
        SendOk(connection, reply);
      } else {
        SendError(connection, connection->stream_error);
      }
      connection->stream_count = 0;
      connection->stream_seen = 0;
      connection->stream_error.clear();
      return true;
    }
    case Opcode::kQuery: {
      const std::string tenant = ReadString(&body);
      const std::string key = ReadString(&body);
      if (body.failed()) return SendMalformed(connection);
      const Result<QueryResult> result = registry_.Query(tenant, key);
      if (!result.ok()) {
        SendError(connection, result.status().message());
      } else {
        BitWriter reply;
        SerializeQueryResult(*result, &reply);
        SendOk(connection, reply);
      }
      return true;
    }
    case Opcode::kWindow: {
      const std::string tenant = ReadString(&body);
      const std::string key = ReadString(&body);
      const uint64_t w = body.ReadU64();
      const bool want_state = body.ReadBits(8) != 0;
      if (body.failed()) return SendMalformed(connection);
      Result<TenantRegistry::WindowAnswer> answer =
          registry_.Window(tenant, key, w, want_state);
      if (!answer.ok()) {
        SendError(connection, answer.status().message());
      } else {
        BitWriter reply;
        SerializeQueryResult(answer->result, &reply);
        reply.WriteU64(answer->start);
        reply.WriteU64(answer->length);
        reply.WriteBits(want_state ? 1 : 0, 8);
        if (want_state) {
          WriteState(&reply, answer.value().state_words,
                     answer.value().state_bits);
        }
        SendOk(connection, reply);
      }
      return true;
    }
    case Opcode::kSnapshot: {
      const std::string tenant = ReadString(&body);
      const std::string key = ReadString(&body);
      if (body.failed()) return SendMalformed(connection);
      const Result<SnapshotBlob> blob = registry_.Snapshot(tenant, key);
      if (!blob.ok()) {
        SendError(connection, blob.status().message());
      } else {
        BitWriter reply;
        SerializeSnapshot(*blob, &reply);
        SendOk(connection, reply);
      }
      return true;
    }
    case Opcode::kRestore: {
      const std::string tenant = ReadString(&body);
      const std::string key = ReadString(&body);
      const SnapshotBlob blob = DeserializeSnapshot(&body);
      if (body.failed()) return SendMalformed(connection);
      const Status status = registry_.Restore(tenant, key, blob);
      if (!status.ok()) {
        SendError(connection, status.message());
      } else {
        SendOk(connection, BitWriter());
      }
      return true;
    }
    case Opcode::kDrop: {
      const std::string tenant = ReadString(&body);
      const std::string key = ReadString(&body);
      if (body.failed()) return SendMalformed(connection);
      const Status status = registry_.Drop(tenant, key);
      if (!status.ok()) {
        SendError(connection, status.message());
      } else {
        SendOk(connection, BitWriter());
      }
      return true;
    }
    case Opcode::kStats: {
      BitWriter reply;
      SerializeStats(registry_.Stats(), &reply);
      SendOk(connection, reply);
      return true;
    }
    case Opcode::kEpoch:
    case Opcode::kDistStats:
      break;  // dist-tier opcodes: handled by the extension below
  }
  // Not a core opcode: offer it to the extension (the dist-tier
  // aggregator) before declaring it unknown.
  if (extension_ != nullptr) {
    BitWriter reply;
    Status status = Status::OK();
    if (extension_->HandleOpcode(connection->id, frame.first, &body, &reply,
                                 &status)) {
      if (!status.ok()) {
        SendError(connection, status.message());
      } else {
        SendOk(connection, reply);
      }
      return true;
    }
  }
  // Well-formed frame, unknown opcode: report and keep serving — the
  // stream is still synchronized.
  SendError(connection,
            "unknown opcode " + std::to_string(int(frame.first)));
  return true;
}

}  // namespace lps::server
