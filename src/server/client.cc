#include "src/server/client.h"

#include <cerrno>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace lps::server {

Result<Client> Client::Connect(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(uint16_t(port));
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Failed(std::string("socket: ") + std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status status =
        Status::Failed(std::string("connect: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Client(fd);
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Result<Frame> Client::RoundTrip(Opcode opcode, const BitWriter& body) {
  const Status sent = WriteFrame(fd_, uint8_t(opcode), body);
  if (!sent.ok()) return sent;
  Result<Frame> reply = ReadFrame(fd_);
  if (!reply.ok()) return reply.status();
  if (reply.value().first == kStatusError) {
    return Status::Failed(ReadString(&reply.value().body));
  }
  return reply;
}

Status Client::Create(const std::string& tenant, const std::string& key,
                      const SketchConfig& config) {
  BitWriter body;
  WriteString(&body, tenant);
  WriteString(&body, key);
  SerializeConfig(config, &body);
  return RoundTrip(Opcode::kCreate, body).status();
}

Result<uint64_t> Client::Ingest(const std::string& tenant,
                                const std::string& key,
                                const std::vector<stream::Update>& updates) {
  BitWriter body;
  WriteString(&body, tenant);
  WriteString(&body, key);
  WriteUpdates(&body, updates.data(), updates.size());
  Result<Frame> reply = RoundTrip(Opcode::kIngest, body);
  if (!reply.ok()) return reply.status();
  return reply.value().body.ReadU64();
}

Result<QueryResult> Client::Query(const std::string& tenant,
                                  const std::string& key) {
  BitWriter body;
  WriteString(&body, tenant);
  WriteString(&body, key);
  Result<Frame> reply = RoundTrip(Opcode::kQuery, body);
  if (!reply.ok()) return reply.status();
  return DeserializeQueryResult(&reply.value().body);
}

Result<Client::WindowReply> Client::Window(const std::string& tenant,
                                           const std::string& key, uint64_t w,
                                           bool want_state) {
  BitWriter body;
  WriteString(&body, tenant);
  WriteString(&body, key);
  body.WriteU64(w);
  body.WriteBits(want_state ? 1 : 0, 8);
  Result<Frame> frame = RoundTrip(Opcode::kWindow, body);
  if (!frame.ok()) return frame.status();
  BitReader& reader = frame.value().body;
  WindowReply reply;
  reply.result = DeserializeQueryResult(&reader);
  reply.start = reader.ReadU64();
  reply.length = reader.ReadU64();
  reply.has_state = reader.ReadBits(8) != 0;
  if (reply.has_state) {
    ReadState(&reader, &reply.state_words, &reply.state_bits);
  }
  return reply;
}

Result<SnapshotBlob> Client::Snapshot(const std::string& tenant,
                                      const std::string& key) {
  BitWriter body;
  WriteString(&body, tenant);
  WriteString(&body, key);
  Result<Frame> reply = RoundTrip(Opcode::kSnapshot, body);
  if (!reply.ok()) return reply.status();
  return DeserializeSnapshot(&reply.value().body);
}

Status Client::Restore(const std::string& tenant, const std::string& key,
                       const SnapshotBlob& blob) {
  BitWriter body;
  WriteString(&body, tenant);
  WriteString(&body, key);
  SerializeSnapshot(blob, &body);
  return RoundTrip(Opcode::kRestore, body).status();
}

Status Client::Drop(const std::string& tenant, const std::string& key) {
  BitWriter body;
  WriteString(&body, tenant);
  WriteString(&body, key);
  return RoundTrip(Opcode::kDrop, body).status();
}

Result<ServerStats> Client::Stats() {
  Result<Frame> reply = RoundTrip(Opcode::kStats, BitWriter());
  if (!reply.ok()) return reply.status();
  return DeserializeStats(&reply.value().body);
}

Status Client::StreamIngest(const std::string& tenant, const std::string& key,
                            const std::vector<stream::Update>& updates) {
  BitWriter body;
  WriteString(&body, tenant);
  WriteString(&body, key);
  WriteUpdates(&body, updates.data(), updates.size());
  // Fire-and-forget: the server replies only to the closing sync.
  return WriteFrame(fd_, uint8_t(Opcode::kIngestStream), body);
}

Result<Client::StreamAck> Client::StreamSync() {
  Result<Frame> reply = RoundTrip(Opcode::kIngestSync, BitWriter());
  if (!reply.ok()) return reply.status();
  StreamAck ack;
  ack.count = reply.value().body.ReadU64();
  ack.updates_seen = reply.value().body.ReadU64();
  return ack;
}

Result<EpochAck> Client::ShipEpoch(const EpochBlob& blob) {
  BitWriter body;
  SerializeEpoch(blob, &body);
  Result<Frame> reply = RoundTrip(Opcode::kEpoch, body);
  if (!reply.ok()) return reply.status();
  return DeserializeEpochAck(&reply.value().body);
}

Result<DistStats> Client::FetchDistStats() {
  Result<Frame> reply = RoundTrip(Opcode::kDistStats, BitWriter());
  if (!reply.ok()) return reply.status();
  return DeserializeDistStats(&reply.value().body);
}

Status Client::SendRaw(const std::vector<uint8_t>& bytes) {
  size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + done, bytes.size() - done,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Failed(std::string("send: ") + std::strerror(errno));
    }
    done += size_t(n);
  }
  return Status::OK();
}

Result<Frame> Client::ReadReply() { return ReadFrame(fd_); }

}  // namespace lps::server
