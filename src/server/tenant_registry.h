// TenantRegistry — the named-sketch store behind lps_serve.
//
// Each (tenant, key) pair owns one logical sketch plus its ingestion
// topology: k identically-seeded replicas (built through the MakeSketch
// registry from the CREATE request's SketchSpec), optionally a
// ParallelPipeline driving them from worker threads, optionally a
// WindowManager giving the stream trailing-window queries by sketch
// subtraction. The registry is the only layer that knows how those
// existing runtimes compose — the transport layer above it just decodes
// frames and calls one method per opcode.
//
// Concurrency model (two levels, both sized for many tenants):
//
//   - The map from the length-prefixed (tenant, key) name to entries
//     is sharded across
//     kLockShards independently locked submaps, so CREATE/DROP/lookup
//     traffic for different tenants rarely contends. Lookups copy the
//     shared_ptr and release the shard lock immediately.
//   - Each entry has its own mutex serializing ingest/query/snapshot on
//     that one stream — exactly the external serialization the
//     ParallelPipeline producer side and the WindowManager demand. Two
//     tenants never share an entry lock, so 64 tenants ingest on 64
//     connections with no shared mutable state beyond the stats
//     counters (atomics). DROP under a concurrent operation is safe:
//     the operation's shared_ptr keeps the entry alive until it
//     returns.
//
// Epoch sealing (how WINDOW composes with a pipeline): replica 0 holds
// the whole prefix only after MergeShards(), so checkpoints are sealed
// at epoch boundaries. Ingest drives checkpoint-interval-sized chunks
// and closes an epoch (MergeShards + SealEpoch) exactly at each
// boundary — therefore a server-side stream and a single-process
// WindowManager fed the same updates seal checkpoints at the SAME
// positions, and for exact-arithmetic kinds the materialized windows
// are bit-identical (tests/server_test.cc proves it against a solo
// WindowManager). Queries arriving mid-epoch quiesce first: the partial
// epoch is merged and sealed, which may add a checkpoint at an
// unaligned position — window starts then round to it, never past it.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/api/query_result.h"
#include "src/persist/checkpoint_store.h"
#include "src/server/protocol.h"
#include "src/stream/linear_sketch.h"
#include "src/stream/parallel_pipeline.h"
#include "src/stream/update.h"
#include "src/stream/window_manager.h"
#include "src/util/status.h"

namespace lps::server {

class TenantRegistry {
 public:
  /// A materialized window answer: the query result plus the actual
  /// window bounds after checkpoint rounding. want_state additionally
  /// returns the window sketch's full serialized state, so a client can
  /// compare bit-for-bit against a locally materialized window.
  struct WindowAnswer {
    QueryResult result;
    uint64_t start = 0;
    uint64_t length = 0;
    std::vector<uint64_t> state_words;
    size_t state_bits = 0;
  };

  /// Durability knobs (active only once AttachStore ran).
  struct PersistOptions {
    /// Newest window checkpoints kept in RAM per tenant; older ones are
    /// delta-compressed into the store. 0 disables window spill.
    size_t resident_checkpoints = 4;
    /// Keyframe cadence of each tenant's spill chain.
    size_t keyframe_interval = 16;
  };

  TenantRegistry() = default;

  /// Attaches the durable store. Must run before any Create/Restore and
  /// before traffic (lps_serve wires it between store open and
  /// Server::Start). `store` must outlive the registry.
  void AttachStore(persist::CheckpointStore* store, PersistOptions options);

  /// Rebuilds every tenant whose latest store record is a snapshot (boot
  /// recovery). Returns the number restored; tenants whose snapshot
  /// fails validation are skipped, not fatal.
  size_t RestoreAll();

  /// Snapshots tenants into the store and fsyncs: every tenant when
  /// `only_dirty` is false, else only those with updates since their
  /// last persisted snapshot. Returns the number written.
  size_t PersistTenants(bool only_dirty);

  /// Persists then drops every live tenant idle for at least
  /// `idle_timeout_ms` (measured from its last opcode touch). Evicted
  /// tenants rehydrate lazily from their store snapshot on next touch.
  /// Returns the number evicted.
  size_t EvictIdle(uint64_t idle_timeout_ms);

  /// Registers (tenant, key). InvalidArgument if it already exists, the
  /// spec's kind is unknown, or the topology is malformed.
  Status Create(const std::string& tenant, const std::string& key,
                const SketchConfig& config);

  /// Appends a batch of updates to the stream. Routed through the
  /// entry's pipeline when one is configured, else applied inline;
  /// window checkpoints are sealed at exact checkpoint_interval
  /// positions either way. Returns the stream's updates_seen after the
  /// batch (the cumulative position INGEST_SYNC acks report).
  Result<uint64_t> Ingest(const std::string& tenant, const std::string& key,
                          const std::vector<stream::Update>& updates);

  /// Folds one distributed epoch delta into (tenant, key): Merge into
  /// the whole-prefix sketch, seal a window checkpoint at the epoch
  /// boundary, advance updates_seen by `count`. Creates the entry from
  /// `config` on first fold, with an inline topology — the aggregator
  /// needs no pipeline; its fan-in parallelism IS the worker processes.
  /// `delta` must already be validated against `config` (the aggregator
  /// runs dist::DecodeEpochState first); this method cross-checks
  /// `config` against the entry's so a stream created with different
  /// parameters can never reach Merge's parameter CHECK.
  Status FoldEpoch(const std::string& tenant, const std::string& key,
                   const SketchConfig& config, const LinearSketch& delta,
                   uint64_t count);

  /// Whole-stream query: quiesces any open pipeline epoch, then answers
  /// from replica 0 with the same unified QueryResult the CLI prints.
  Result<QueryResult> Query(const std::string& tenant, const std::string& key);

  /// Trailing-window query over (at least) the last `w` updates.
  /// InvalidArgument when the entry was created without windowing.
  Result<WindowAnswer> Window(const std::string& tenant,
                              const std::string& key, uint64_t w,
                              bool want_state);

  /// Full restorable state of the stream (config + serialized sketch).
  Result<SnapshotBlob> Snapshot(const std::string& tenant,
                                const std::string& key);

  /// Recreates (tenant, key) from a snapshot, e.g. after a daemon
  /// restart. The restored state becomes the stream's new origin for
  /// windowing (checkpoint position 0). InvalidArgument if the key is
  /// live or the blob's state does not match its declared kind.
  Status Restore(const std::string& tenant, const std::string& key,
                 const SnapshotBlob& blob);

  Status Drop(const std::string& tenant, const std::string& key);

  ServerStats Stats() const;

 private:
  /// One (tenant, key) stream. Member order matters for destruction:
  /// the pipeline references the replicas and the window manager
  /// references replica 0, so both must die before `replicas` does.
  struct Entry {
    std::mutex mutex;
    SketchConfig config;
    std::vector<std::unique_ptr<LinearSketch>> replicas;
    std::unique_ptr<stream::ParallelPipeline> pipeline;  // null = inline
    std::unique_ptr<stream::WindowManager> window;       // null = no windows
    uint64_t updates_seen = 0;
    /// Updates driven into the pipeline since the last MergeShards —
    /// replica 0 lags the stream by exactly this many.
    uint64_t epoch_fill = 0;
    // ---- persistence bookkeeping (all under `mutex`) ----
    std::string tenant;  // wire names, for self-describing store records
    std::string key;
    /// updates_seen at the last store snapshot; SIZE_MAX = never.
    uint64_t persisted_updates = ~uint64_t{0};
    /// Monotonic ms of the last opcode touching this entry (idle clock).
    uint64_t last_touch_ms = 0;
    /// Set (under `mutex`) when EvictIdle removed this entry from the
    /// map after persisting it. An operation that raced the eviction —
    /// grabbed the shared_ptr, then blocked on the mutex — sees the flag
    /// and retries through Find, which rehydrates the snapshot; without
    /// it the operation would mutate an orphan and lose its updates.
    bool evicted = false;
  };

  struct MapShard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, std::shared_ptr<Entry>> entries;
  };

  static constexpr size_t kLockShards = 16;

  static std::string MapKey(const std::string& tenant, const std::string& key) {
    // Wire strings are length-prefixed and may contain ANY byte, so a
    // separator alone is ambiguous: ("a\0b", "c") and ("a", "b\0c")
    // must not alias. Prefixing the tenant's decimal length keeps the
    // parse unambiguous — the digits run ends at the first ':', and the
    // tenant's own bytes are covered by the count.
    return std::to_string(tenant.size()) + ':' + tenant + key;
  }
  MapShard& ShardFor(const std::string& map_key) {
    return shards_[std::hash<std::string>()(map_key) % kLockShards];
  }
  std::shared_ptr<Entry> Find(const std::string& tenant,
                              const std::string& key);

  /// Find + lock, retrying past entries evicted between the lookup and
  /// the lock acquisition. On success `lock` owns the entry's mutex.
  std::shared_ptr<Entry> FindLive(const std::string& tenant,
                                  const std::string& key,
                                  std::unique_lock<std::mutex>* lock);

  /// The snapshot-validation + rebuild half of Restore, shared with
  /// rehydration: validates the blob's state against a probe serialize
  /// of its declared config, deserializes it, and attaches windowing
  /// with the restored prefix as checkpoint position 0. The entry is
  /// NOT yet inserted and carries no tenant/key names.
  Result<std::shared_ptr<Entry>> BuildFromSnapshot(const SnapshotBlob& blob);

  /// Builds an entry's replicas/pipeline/window from its config.
  /// Returns InvalidArgument without mutating the registry on a bad
  /// config. The new entry is NOT yet inserted.
  Result<std::shared_ptr<Entry>> BuildEntry(const SketchConfig& config);

  /// Closes the open pipeline epoch (if any) so replica 0 holds the
  /// whole prefix and the window manager's position is current. Caller
  /// holds the entry mutex.
  void Quiesce(Entry* entry);

  /// Wires window spill into a freshly built entry (no-op without a
  /// store or window, or with resident_checkpoints == 0).
  void AttachEntrySpill(Entry* entry, const std::string& map_key);

  /// Serializes a snapshot record ([tenant][key][SnapshotBlob] as a bit
  /// stream) and appends it under "t:<map_key>". Caller holds the entry
  /// mutex. Updates persisted_updates on success.
  Status PersistEntryLocked(Entry* entry, const std::string& map_key);

  /// Rebuilds an entry from the latest snapshot record under
  /// "t:<map_key>" and inserts it (no-op if the key went live again in
  /// the meantime). Returns the live entry, or null when the store has
  /// no usable snapshot (missing key, tombstone, corrupt blob).
  std::shared_ptr<Entry> RehydrateTenant(const std::string& map_key);

  /// Every live entry with its map key (snapshot of the sharded map).
  std::vector<std::pair<std::string, std::shared_ptr<Entry>>> AllEntries()
      const;

  MapShard shards_[kLockShards];
  std::atomic<uint64_t> updates_{0};
  std::atomic<uint64_t> ingests_{0};
  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> snapshots_{0};
  persist::CheckpointStore* store_ = nullptr;  // null = no durability
  PersistOptions persist_options_;
};

}  // namespace lps::server
