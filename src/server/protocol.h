// Wire protocol of the multi-tenant sketch server (lps_serve).
//
// One frame = one request or one response (the single exception is
// INGEST_STREAM, a request frame that elicits no response: a sender
// streams a run of them back-to-back and collects one cumulative
// INGEST_SYNC ack, so pipelined ingest pays one RTT per run instead of
// one per batch):
//
//     [u32 LE payload length] [payload bytes]
//     payload[0]   = opcode (requests) / status byte (responses: 0 = ok,
//                    1 = error)
//     payload[1..] = body, a BitWriter bit stream: u64 LE bit count,
//                    then ceil(bits/64) packed 64-bit words, LE
//
// The body re-uses the library's bit-exact serialization layer, so the
// payloads carry the SAME unified types the library and CLI consume:
// CREATE ships a SketchSpec (SerializeSpec), QUERY/WINDOW answers ship a
// QueryResult (SerializeQueryResult), and SNAPSHOT/RESTORE ship the
// LinearSketch::Serialize state verbatim. The wire format has one source
// of truth — there is no server-only re-encoding of any library type.
//
// Framing errors are the connection's problem, not the daemon's: a
// length prefix above kMaxFrameBytes, a truncated payload, or an unknown
// opcode must never bring the server down (tests/server_test.cc shoots
// all three at a live server). Oversized/truncated frames close the
// connection (the stream is unsynchronized beyond them); an unknown
// opcode inside a well-formed frame gets an error response and the
// connection lives on. The same holds one level down: frame BODIES are
// decoded through a permissive BitReader, and every claimed length
// inside a body (string sizes, update counts, state bit counts) is
// validated against the bits the frame actually delivered before any
// allocation — a body that lies about its interior surfaces as a
// "malformed request body" error response on a connection that keeps
// serving, because the frame boundary itself was sound.
//
// This header is shared VERBATIM by the server, the Client class, the
// lps_bench_client load generator, and the loopback tests — the codec
// exists exactly once.
//
// The prose reference — frame diagrams, the full opcode table, error
// semantics, and the version/compat rules — is docs/protocol.md; its
// fenced examples are compiled against this header by the CI docs job
// (ci/check_docs.py), so the document cannot drift from the code.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/api/query_result.h"
#include "src/api/sketch_spec.h"
#include "src/stream/update.h"
#include "src/util/serialize.h"
#include "src/util/status.h"

namespace lps::server {

/// Wire values — never renumber, only append.
enum class Opcode : uint8_t {
  kCreate = 1,    ///< register tenant/key with a SketchSpec + topology
  kIngest = 2,    ///< push a batch of updates into tenant/key's stream
  kQuery = 3,     ///< whole-stream QueryResult
  kWindow = 4,    ///< QueryResult over the trailing w updates
  kSnapshot = 5,  ///< full serialized state (restorable blob)
  kRestore = 6,   ///< recreate tenant/key from a snapshot blob
  kDrop = 7,      ///< forget tenant/key
  kStats = 8,     ///< server-wide counters
  // ---- appended: streaming ingest framing ------------------------------
  kIngestStream = 9,  ///< pipelined ingest batch: NO per-frame reply
  kIngestSync = 10,   ///< close a streamed run: one cumulative ack / error
  // ---- appended: distributed aggregation tier (src/dist/) --------------
  kEpoch = 11,      ///< fold one worker epoch delta (EpochBlob -> EpochAck)
  kDistStats = 12,  ///< aggregator fold/gap counters (DistStats)
};

/// Response status byte.
inline constexpr uint8_t kStatusOk = 0;
inline constexpr uint8_t kStatusError = 1;

/// Hard ceiling on a frame payload. Large enough for a multi-megabyte
/// serialized lp_sampler snapshot, small enough that a hostile length
/// prefix cannot make the server allocate unbounded memory.
inline constexpr uint32_t kMaxFrameBytes = 256u << 20;

/// Default TCP port of lps_serve (0 asks the kernel for an ephemeral
/// port, which Server::port() reports — the test/bench path).
inline constexpr int kDefaultPort = 4321;

// ------------------------------------------------------------ payloads --

/// Everything CREATE needs beyond the spec: the per-tenant ingestion
/// topology and the sliding-window configuration. Serialized inside
/// CREATE requests and snapshot blobs.
struct SketchConfig {
  SketchSpec spec;
  /// 0 disables windowing; otherwise the WindowManager checkpoint
  /// interval (window starts round down to multiples of this).
  uint64_t window_checkpoint = 0;
  /// Checkpoint ring bound; 0 = unbounded.
  uint64_t max_checkpoints = 0;
  /// ParallelPipeline topology for this tenant's stream. shards == 1 &&
  /// threads == 0 ingests inline on the serving thread.
  int32_t shards = 1;
  int32_t threads = 0;
};

void SerializeConfig(const SketchConfig& config, BitWriter* writer);
SketchConfig DeserializeConfig(BitReader* reader);

/// A restorable snapshot: the config to rebuild the entry and the
/// LinearSketch::Serialize state of the whole-prefix sketch. What
/// SNAPSHOT returns and RESTORE accepts; also what clients persist to
/// disk between daemon generations.
struct SnapshotBlob {
  SketchConfig config;
  uint64_t updates_seen = 0;
  std::vector<uint64_t> state_words;
  size_t state_bits = 0;
};

void SerializeSnapshot(const SnapshotBlob& blob, BitWriter* writer);
SnapshotBlob DeserializeSnapshot(BitReader* reader);

/// Per-tenant persistence accounting (the spill observability of the
/// durable checkpoint store). `resident` distinguishes live entries from
/// idle-evicted ones that exist only as store snapshots.
struct TenantPersistStats {
  std::string name;            ///< "tenant/key"
  uint64_t resident_bytes = 0;  ///< RAM held by the checkpoint ring
  uint64_t spilled_bytes = 0;   ///< compressed bytes in the store
  bool resident = true;
};

/// Server-wide counters answered by STATS. The persistence fields were
/// appended in a later revision; DeserializeStats treats their absence
/// (a frame from an older server) as zeros — the wire rule is append,
/// never renumber.
struct ServerStats {
  uint64_t tenants = 0;   ///< live tenant/key entries
  uint64_t updates = 0;   ///< stream updates ingested since boot
  uint64_t ingests = 0;   ///< INGEST requests served
  uint64_t queries = 0;   ///< QUERY + WINDOW requests served
  uint64_t snapshots = 0; ///< SNAPSHOT requests served
  // ---- appended: durable-store accounting (zero when no --data-dir) --
  uint64_t resident_bytes = 0;  ///< sum of per-tenant resident bytes
  uint64_t spilled_bytes = 0;   ///< sum of per-tenant spilled bytes
  std::vector<TenantPersistStats> per_tenant;
  // ---- appended: kernel dispatch (empty when talking to older peers) --
  std::string kernel_backend;  ///< SIMD backend the server dispatched
};

void SerializeStats(const ServerStats& stats, BitWriter* writer);
ServerStats DeserializeStats(BitReader* reader);

/// One sealed ingest epoch, shipped by a distributed worker (or an
/// intermediate combiner) to the aggregator it feeds. The state is the
/// epoch's DELTA — the worker serializes its whole-prefix sketch at the
/// epoch boundary and then Reset()s it, so folding every delta with
/// Merge reconstructs the prefix exactly, and for exact-arithmetic
/// kinds the fold is bit-identical to solo ingest in ANY arrival order
/// (linearity). `config` rides along so the aggregator can auto-create
/// the stream on the first epoch it sees.
struct EpochBlob {
  std::string tenant;
  std::string key;
  std::string worker_id;     ///< stable name of the shipping node
  uint64_t session = 0;      ///< per-boot nonce; a changed session = restart
  uint64_t seq = 0;          ///< epoch index within the session, from 0
  uint64_t count = 0;        ///< updates folded into this delta
  bool final_epoch = false;  ///< clean end-of-stream marker
  SketchConfig config;
  std::vector<uint64_t> state_words;  ///< LinearSketch::Serialize of the delta
  size_t state_bits = 0;
};

void SerializeEpoch(const EpochBlob& blob, BitWriter* writer);
EpochBlob DeserializeEpoch(BitReader* reader);

/// The EPOCH ok-reply. `applied` is false for a duplicate sequence (a
/// reconnecting worker re-sent an epoch the aggregator already folded —
/// acked, not re-folded, so the retry path is idempotent).
struct EpochAck {
  bool applied = false;
  uint64_t next_seq = 0;  ///< the sequence the aggregator expects next
};

void SerializeEpochAck(const EpochAck& ack, BitWriter* writer);
EpochAck DeserializeEpochAck(BitReader* reader);

/// Per-(stream, worker) fold progress inside a DistStats answer.
struct DistWorkerStats {
  std::string stream;  ///< "tenant/key"
  std::string worker_id;
  uint64_t session = 0;
  uint64_t next_seq = 0;   ///< next expected epoch sequence
  uint64_t epochs = 0;     ///< epochs folded from this worker
  uint64_t updates = 0;    ///< updates folded from this worker
  uint64_t gaps = 0;       ///< epochs known lost (sequence skips/restarts)
  bool finished = false;   ///< worker shipped its final epoch
  bool connected = false;  ///< worker currently holds a live connection
};

/// Aggregator-side counters answered by DIST_STATS. Same wire rule as
/// ServerStats: append fields, never renumber.
struct DistStats {
  uint64_t epochs_folded = 0;
  uint64_t updates_folded = 0;
  uint64_t gaps = 0;         ///< epochs known lost across all workers
  uint64_t sessions = 0;     ///< distinct worker sessions seen
  uint64_t interrupted = 0;  ///< workers disconnected without a final epoch
  uint64_t fold_ns = 0;      ///< cumulative wall time decoding + folding
  bool combiner = false;     ///< node forwards upstream instead of serving
  std::vector<DistWorkerStats> workers;
};

void SerializeDistStats(const DistStats& stats, BitWriter* writer);
DistStats DeserializeDistStats(BitReader* reader);

// Small shared primitives the payload structs compose.
void WriteString(BitWriter* writer, const std::string& s);
std::string ReadString(BitReader* reader);
void WriteUpdates(BitWriter* writer, const stream::Update* updates,
                  size_t count);
std::vector<stream::Update> ReadUpdates(BitReader* reader);
/// A nested bit stream (serialized sketch state): u64 bit count + words.
void WriteState(BitWriter* writer, const std::vector<uint64_t>& words,
                size_t bits);
void ReadState(BitReader* reader, std::vector<uint64_t>* words, size_t* bits);

// -------------------------------------------------------------- framing --

/// A decoded frame: the leading opcode/status byte plus an owning reader
/// over the body bit stream.
struct Frame {
  uint8_t first = 0;
  BitReader body;
};

/// Encodes [length][first][body] into a contiguous byte buffer ready for
/// a single write. Returns an EMPTY vector when the body exceeds
/// kMaxFrameBytes (a valid frame is never smaller than 13 bytes, so
/// empty is unambiguous) — encoding must fail loudly rather than wrap
/// the u32 length prefix and emit a corrupt frame.
std::vector<uint8_t> EncodeFrame(uint8_t first, const BitWriter& body);

/// Decodes a payload (everything after the length prefix) into a Frame.
/// Fails on an empty payload or a malformed body header.
Result<Frame> DecodeFramePayload(const uint8_t* payload, size_t size);

/// Blocking frame I/O over a connected socket. ReadFrame returns
/// InvalidArgument for protocol violations (length prefix above
/// max_bytes, truncated payload) and Failed("eof") for a clean peer
/// close before any byte of a frame.
Status WriteFrame(int fd, uint8_t first, const BitWriter& body);
Result<Frame> ReadFrame(int fd, uint32_t max_bytes = kMaxFrameBytes);

}  // namespace lps::server
