// Client — a blocking connection to an lps_serve daemon.
//
// One method per opcode, each a single request/response round trip over
// the shared protocol codec (src/server/protocol.h) — the client
// serializes the SAME SketchSpec/QueryResult/SnapshotBlob types the
// library uses, so what a test materializes locally and what the server
// answers are directly comparable, bit for bit.
//
// A Client is one socket and is NOT thread-safe; concurrent load (the
// bench client, the multi-tenant tests) opens one Client per thread,
// which also exercises the server's connection-level parallelism.
#pragma once

#include <string>
#include <vector>

#include "src/server/protocol.h"

namespace lps::server {

class Client {
 public:
  /// Connects to host:port. `host` accepts a dotted-quad IPv4 address
  /// or "localhost".
  static Result<Client> Connect(const std::string& host, int port);

  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// A WINDOW answer: the query result, the actual (rounded) window
  /// bounds, and — when requested — the window sketch's serialized
  /// state for bit-identity comparison.
  struct WindowReply {
    QueryResult result;
    uint64_t start = 0;
    uint64_t length = 0;
    bool has_state = false;
    std::vector<uint64_t> state_words;
    size_t state_bits = 0;
  };

  Status Create(const std::string& tenant, const std::string& key,
                const SketchConfig& config);
  Result<uint64_t> Ingest(const std::string& tenant, const std::string& key,
                          const std::vector<stream::Update>& updates);
  Result<QueryResult> Query(const std::string& tenant, const std::string& key);
  Result<WindowReply> Window(const std::string& tenant, const std::string& key,
                             uint64_t w, bool want_state);
  Result<SnapshotBlob> Snapshot(const std::string& tenant,
                                const std::string& key);
  Status Restore(const std::string& tenant, const std::string& key,
                 const SnapshotBlob& blob);
  Status Drop(const std::string& tenant, const std::string& key);
  Result<ServerStats> Stats();

  /// The cumulative INGEST_SYNC ack closing a streamed ingest run.
  struct StreamAck {
    uint64_t count = 0;         ///< updates accepted since the last sync
    uint64_t updates_seen = 0;  ///< target stream's total after the run
  };

  /// Streamed (pipelined) ingest: sends one INGEST_STREAM frame and
  /// returns as soon as it is on the wire — the server sends NO reply.
  /// Call StreamSync() to close the run and collect the one cumulative
  /// ack (or the run's first deferred error). Mixing StreamIngest with
  /// the round-trip methods is fine as long as the run is synced first.
  Status StreamIngest(const std::string& tenant, const std::string& key,
                      const std::vector<stream::Update>& updates);
  Result<StreamAck> StreamSync();

  /// Distributed tier: ship one epoch delta / read the aggregator's
  /// fold counters (see src/dist/).
  Result<EpochAck> ShipEpoch(const EpochBlob& blob);
  Result<DistStats> FetchDistStats();

  /// Escape hatch for protocol tests: sends a raw already-framed byte
  /// sequence and reads one response frame.
  Status SendRaw(const std::vector<uint8_t>& bytes);
  Result<Frame> ReadReply();

  int fd() const { return fd_; }

 private:
  explicit Client(int fd) : fd_(fd) {}

  /// One request/response exchange; unwraps error responses into a
  /// Failed status carrying the server's message.
  Result<Frame> RoundTrip(Opcode opcode, const BitWriter& body);

  int fd_ = -1;
};

}  // namespace lps::server
