#include "src/heavy/heavy_hitters.h"

#include <algorithm>
#include <cmath>

#include "src/util/bits.h"
#include "src/util/check.h"
#include "src/util/random.h"

namespace lps::heavy {

namespace {

int DefaultRows(uint64_t n) {
  return std::max(7, 2 * CeilLog2(std::max<uint64_t>(n, 2)) + 1);
}

// Threshold constant: with point error <= (phi/8) ||x||_p and a norm
// estimate within (1 +- 0.1), tau = 0.75 phi N~ separates heavy
// (|x*| >= 0.875 phi N) from light (|x*| <= 0.625 phi N); see header.
constexpr double kThresholdFraction = 0.75;

// Default rows of the dyadic candidate generators. Small on purpose:
// candidates are verified in the flat sketch, so the tree only has to
// find them (and for the count-min tree, min-over-rows stays a sound
// strict-turnstile overestimate at any row count).
constexpr int kDefaultDyadicRows = 5;

}  // namespace

CsHeavyHitters::CsHeavyHitters(Params params)
    : params_(params),
      m_(std::max(4, static_cast<int>(
                         std::ceil(std::pow(8.0 / params.phi, params.p))))),
      cs_(params.rows > 0 ? params.rows : DefaultRows(params.n), 6 * m_,
          Mix64(params.seed ^ 0xbeefULL)),
      dyadic_(CeilLog2(std::max<uint64_t>(params.n, 1)),
              params.dyadic_rows > 0 ? params.dyadic_rows : kDefaultDyadicRows,
              6 * m_, Mix64(params.seed ^ 0xd7adULL)) {
  LPS_CHECK(params.n >= 1);
  LPS_CHECK(params.p > 0 && params.p <= 2);
  LPS_CHECK(params.phi > 0 && params.phi < 1);
  const bool exact_l1 = params.strict_turnstile && params.p == 1.0;
  const bool cs_f2 = params.p == 2.0;
  if (!exact_l1 && !cs_f2) {
    const int rows = params.norm_rows > 0 ? params.norm_rows : 1200;
    norm_ = std::make_unique<norm::LpNormEstimator>(
        params.p, rows, Mix64(params.seed ^ 0xbef0ULL));
  }
}

void CsHeavyHitters::Update(uint64_t i, double delta) {
  const stream::ScaledUpdate u{i, delta};
  UpdateBatch(&u, 1);
}

void CsHeavyHitters::UpdateBatch(const stream::ScaledUpdate* updates,
                                 size_t count) {
  cs_.UpdateBatch(updates, count);
  dyadic_.UpdateBatch(updates, count);
  for (size_t t = 0; t < count; ++t) running_sum_ += updates[t].delta;
  if (norm_) norm_->UpdateBatch(updates, count);
}

void CsHeavyHitters::UpdateBatch(const stream::Update* updates, size_t count) {
  scaled_.resize(count);
  for (size_t t = 0; t < count; ++t) {
    scaled_[t] = {updates[t].index, static_cast<double>(updates[t].delta)};
  }
  UpdateBatch(scaled_.data(), count);
}

double CsHeavyHitters::NormEstimate() const {
  if (params_.strict_turnstile && params_.p == 1.0) return running_sum_;
  if (params_.p == 2.0) {
    // The count-sketch rows are themselves F2 estimators: each row's sum of
    // squared buckets has mean F2 and relative sd ~ sqrt(2/buckets); the
    // median over Theta(log n) rows is a (1 +- 0.1) estimate w.h.p. No
    // extra sketch needed. Realized by querying the residual estimator
    // with an empty sparse vector.
    return cs_.EstimateResidualL2({});
  }
  return norm_->EstimateRaw();
}

std::vector<uint64_t> CsHeavyHitters::Query() const {
  const double norm = NormEstimate();
  const double tau = kThresholdFraction * params_.phi * norm;
  std::vector<uint64_t> heavy;
  if (tau <= 0) return heavy;  // zero vector: nothing can be heavy
  // Dyadic descent to O(#heavy log n) candidate leaves, each verified by
  // the same flat point estimate the universe scan used — so a candidate
  // passes iff the oracle would report it.
  for (uint64_t i : dyadic_.Candidates(tau)) {
    if (i >= params_.n) continue;  // power-of-two padding never carries mass
    if (std::abs(cs_.Query(i)) >= tau) heavy.push_back(i);
  }
  std::sort(heavy.begin(), heavy.end());
  return heavy;
}

std::vector<uint64_t> CsHeavyHitters::QueryOracle() const {
  const double norm = NormEstimate();
  const double tau = kThresholdFraction * params_.phi * norm;
  std::vector<uint64_t> heavy;
  if (tau <= 0) return heavy;  // zero vector: nothing can be heavy
  const std::vector<double> est = cs_.EstimateAll(params_.n);
  for (uint64_t i = 0; i < params_.n; ++i) {
    if (std::abs(est[i]) >= tau) heavy.push_back(i);
  }
  return heavy;
}

size_t CsHeavyHitters::SpaceBits(int bits_per_counter) const {
  size_t bits = cs_.SpaceBits(bits_per_counter) +
                DyadicSpaceBits(bits_per_counter) +
                static_cast<size_t>(bits_per_counter);  // running sum
  if (norm_) bits += norm_->SpaceBits(bits_per_counter);
  return bits;
}

size_t CsHeavyHitters::DyadicSpaceBits(int bits_per_counter) const {
  return dyadic_.SpaceBits(bits_per_counter);
}

void CsHeavyHitters::SerializeCounters(BitWriter* writer) const {
  cs_.SerializeCounters(writer);
  dyadic_.SerializeCounters(writer);
  writer->WriteDouble(running_sum_);
  if (norm_) norm_->sketch().SerializeCounters(writer);
}

void CsHeavyHitters::DeserializeCounters(BitReader* reader) {
  cs_.DeserializeCounters(reader);
  dyadic_.DeserializeCounters(reader);
  running_sum_ = reader->ReadDouble();
  if (norm_) norm_->mutable_sketch()->DeserializeCounters(reader);
}

void CsHeavyHitters::Merge(const LinearSketch& other) {
  const auto* o = dynamic_cast<const CsHeavyHitters*>(&other);
  LPS_CHECK(o != nullptr);
  const Params& a = params_;
  const Params& b = o->params_;
  LPS_CHECK(a.n == b.n && a.p == b.p && a.phi == b.phi && a.rows == b.rows &&
            a.norm_rows == b.norm_rows &&
            a.strict_turnstile == b.strict_turnstile &&
            a.dyadic_rows == b.dyadic_rows && a.seed == b.seed);
  cs_.Merge(o->cs_);
  dyadic_.Merge(o->dyadic_);
  running_sum_ += o->running_sum_;
  if (norm_) norm_->Merge(*o->norm_);
}

void CsHeavyHitters::MergeNegated(const LinearSketch& other) {
  const auto* o = dynamic_cast<const CsHeavyHitters*>(&other);
  LPS_CHECK(o != nullptr);
  const Params& a = params_;
  const Params& b = o->params_;
  LPS_CHECK(a.n == b.n && a.p == b.p && a.phi == b.phi && a.rows == b.rows &&
            a.norm_rows == b.norm_rows &&
            a.strict_turnstile == b.strict_turnstile &&
            a.dyadic_rows == b.dyadic_rows && a.seed == b.seed);
  cs_.MergeNegated(o->cs_);
  dyadic_.MergeNegated(o->dyadic_);
  running_sum_ -= o->running_sum_;
  if (norm_) norm_->MergeNegated(*o->norm_);
}

void CsHeavyHitters::Serialize(BitWriter* writer) const {
  WriteSketchHeader(writer, kind());
  writer->WriteU64(params_.n);
  writer->WriteDouble(params_.p);
  writer->WriteDouble(params_.phi);
  writer->WriteBits(static_cast<uint64_t>(params_.rows), 32);
  writer->WriteBits(static_cast<uint64_t>(params_.norm_rows), 32);
  writer->WriteBits(params_.strict_turnstile ? 1 : 0, 1);
  writer->WriteBits(static_cast<uint64_t>(params_.dyadic_rows), 32);
  writer->WriteU64(params_.seed);
  SerializeCounters(writer);
}

void CsHeavyHitters::Deserialize(BitReader* reader) {
  // Version 2 added the dyadic candidate generator (dyadic_rows param +
  // counters); the v1 layout cannot be reconstructed.
  const uint32_t version = ReadSketchHeader(reader, kind());
  LPS_CHECK(version >= 2);
  Params params;
  params.n = reader->ReadU64();
  params.p = reader->ReadDouble();
  params.phi = reader->ReadDouble();
  params.rows = static_cast<int>(reader->ReadBits(32));
  params.norm_rows = static_cast<int>(reader->ReadBits(32));
  params.strict_turnstile = reader->ReadBits(1) != 0;
  params.dyadic_rows = static_cast<int>(reader->ReadBits(32));
  params.seed = reader->ReadU64();
  *this = CsHeavyHitters(params);
  DeserializeCounters(reader);
}

void CsHeavyHitters::Reset() {
  cs_.Reset();
  dyadic_.Reset();
  running_sum_ = 0;
  if (norm_) norm_->Reset();
}

CmHeavyHitters::CmHeavyHitters(Params params)
    : params_(params),
      cm_(params.rows > 0 ? params.rows : DefaultRows(params.n),
          std::max(4, static_cast<int>(std::ceil(8.0 / params.phi))),
          Mix64(params.seed ^ 0xc0deULL)),
      tree_(CeilLog2(std::max<uint64_t>(params.n, 1)), kDefaultDyadicRows,
            std::max(4, static_cast<int>(std::ceil(8.0 / params.phi))),
            Mix64(params.seed ^ 0xd7aeULL)) {
  LPS_CHECK(params.phi > 0 && params.phi < 1);
}

void CmHeavyHitters::Update(uint64_t i, double delta) {
  const stream::ScaledUpdate u{i, delta};
  UpdateBatch(&u, 1);
}

void CmHeavyHitters::UpdateBatch(const stream::ScaledUpdate* updates,
                                 size_t count) {
  cm_.UpdateBatch(updates, count);
  tree_.UpdateBatch(updates, count);
  for (size_t t = 0; t < count; ++t) running_sum_ += updates[t].delta;
}

void CmHeavyHitters::UpdateBatch(const stream::Update* updates, size_t count) {
  cm_.UpdateBatch(updates, count);
  tree_.UpdateBatch(updates, count);
  for (size_t t = 0; t < count; ++t) {
    running_sum_ += static_cast<double>(updates[t].delta);
  }
}

std::vector<uint64_t> CmHeavyHitters::Query() const {
  // Strict turnstile: ||x||_1 equals the running sum exactly.
  const double tau = kThresholdFraction * params_.phi * running_sum_;
  std::vector<uint64_t> heavy;
  if (tau <= 0) return heavy;  // zero vector: nothing can be heavy
  // Candidates from the count-min tree descent (block min-estimates
  // upper-bound leaf mass, so no heavy leaf is missed in the strict
  // turnstile model), verified against the flat count-min — the exact
  // estimate the old universe scan thresholded.
  for (uint64_t i : tree_.Candidates(tau)) {
    if (i >= params_.n) continue;  // power-of-two padding never carries mass
    const double est =
        params_.use_median ? cm_.QueryMedian(i) : cm_.QueryMin(i);
    if (est >= tau) heavy.push_back(i);
  }
  std::sort(heavy.begin(), heavy.end());
  return heavy;
}

std::vector<uint64_t> CmHeavyHitters::QueryOracle() const {
  const double tau = kThresholdFraction * params_.phi * running_sum_;
  std::vector<uint64_t> heavy;
  if (tau <= 0) return heavy;  // zero vector: nothing can be heavy
  for (uint64_t i = 0; i < params_.n; ++i) {
    const double est =
        params_.use_median ? cm_.QueryMedian(i) : cm_.QueryMin(i);
    if (est >= tau) heavy.push_back(i);
  }
  return heavy;
}

size_t CmHeavyHitters::SpaceBits(int bits_per_counter) const {
  return cm_.SpaceBits(bits_per_counter) + DyadicSpaceBits(bits_per_counter) +
         static_cast<size_t>(bits_per_counter);
}

size_t CmHeavyHitters::DyadicSpaceBits(int bits_per_counter) const {
  return tree_.SpaceBits(bits_per_counter);
}

void CmHeavyHitters::Merge(const LinearSketch& other) {
  const auto* o = dynamic_cast<const CmHeavyHitters*>(&other);
  LPS_CHECK(o != nullptr);
  const Params& a = params_;
  const Params& b = o->params_;
  LPS_CHECK(a.n == b.n && a.phi == b.phi && a.rows == b.rows &&
            a.seed == b.seed && a.use_median == b.use_median);
  cm_.Merge(o->cm_);
  tree_.Merge(o->tree_);
  running_sum_ += o->running_sum_;
}

void CmHeavyHitters::MergeNegated(const LinearSketch& other) {
  const auto* o = dynamic_cast<const CmHeavyHitters*>(&other);
  LPS_CHECK(o != nullptr);
  const Params& a = params_;
  const Params& b = o->params_;
  LPS_CHECK(a.n == b.n && a.phi == b.phi && a.rows == b.rows &&
            a.seed == b.seed && a.use_median == b.use_median);
  cm_.MergeNegated(o->cm_);
  tree_.MergeNegated(o->tree_);
  running_sum_ -= o->running_sum_;
}

void CmHeavyHitters::Serialize(BitWriter* writer) const {
  WriteSketchHeader(writer, kind());
  writer->WriteU64(params_.n);
  writer->WriteDouble(params_.phi);
  writer->WriteBits(static_cast<uint64_t>(params_.rows), 32);
  writer->WriteU64(params_.seed);
  writer->WriteBits(params_.use_median ? 1 : 0, 1);
  cm_.SerializeCounters(writer);
  tree_.SerializeCounters(writer);
  writer->WriteDouble(running_sum_);
}

void CmHeavyHitters::Deserialize(BitReader* reader) {
  // Version 2 added the candidate tree's counters to the layout.
  const uint32_t version = ReadSketchHeader(reader, kind());
  LPS_CHECK(version >= 2);
  Params params;
  params.n = reader->ReadU64();
  params.phi = reader->ReadDouble();
  params.rows = static_cast<int>(reader->ReadBits(32));
  params.seed = reader->ReadU64();
  params.use_median = reader->ReadBits(1) != 0;
  *this = CmHeavyHitters(params);
  cm_.DeserializeCounters(reader);
  tree_.DeserializeCounters(reader);
  running_sum_ = reader->ReadDouble();
}

void CmHeavyHitters::Reset() {
  cm_.Reset();
  tree_.Reset();
  running_sum_ = 0;
}

DyadicHeavyHitters::DyadicHeavyHitters(int log_n, double phi, uint64_t seed)
    : log_n_(log_n), phi_(phi), seed_(seed),
      tree_(log_n, DefaultRows(1ULL << log_n),
            std::max(4, static_cast<int>(std::ceil(8.0 / phi))),
            Mix64(seed ^ 0xdadULL)) {}

void DyadicHeavyHitters::Update(uint64_t i, double delta) {
  const stream::ScaledUpdate u{i, delta};
  UpdateBatch(&u, 1);
}

void DyadicHeavyHitters::UpdateBatch(const stream::ScaledUpdate* updates,
                                     size_t count) {
  tree_.UpdateBatch(updates, count);
  for (size_t t = 0; t < count; ++t) running_sum_ += updates[t].delta;
}

void DyadicHeavyHitters::UpdateBatch(const stream::Update* updates,
                                     size_t count) {
  tree_.UpdateBatch(updates, count);
  for (size_t t = 0; t < count; ++t) {
    running_sum_ += static_cast<double>(updates[t].delta);
  }
}

std::vector<uint64_t> DyadicHeavyHitters::Query() const {
  const double tau = kThresholdFraction * phi_ * running_sum_;
  if (tau <= 0) return {};  // zero vector: nothing can be heavy
  return tree_.HeavyLeaves(tau);
}

size_t DyadicHeavyHitters::SpaceBits(int bits_per_counter) const {
  return tree_.SpaceBits(bits_per_counter) +
         static_cast<size_t>(bits_per_counter);
}

void DyadicHeavyHitters::Merge(const LinearSketch& other) {
  const auto* o = dynamic_cast<const DyadicHeavyHitters*>(&other);
  LPS_CHECK(o != nullptr);
  LPS_CHECK(o->log_n_ == log_n_ && o->phi_ == phi_ && o->seed_ == seed_);
  tree_.Merge(o->tree_);
  running_sum_ += o->running_sum_;
}

void DyadicHeavyHitters::MergeNegated(const LinearSketch& other) {
  const auto* o = dynamic_cast<const DyadicHeavyHitters*>(&other);
  LPS_CHECK(o != nullptr);
  LPS_CHECK(o->log_n_ == log_n_ && o->phi_ == phi_ && o->seed_ == seed_);
  tree_.MergeNegated(o->tree_);
  running_sum_ -= o->running_sum_;
}

void DyadicHeavyHitters::Serialize(BitWriter* writer) const {
  // The tree's shape derives from (log_n, phi, seed), so only its counters
  // travel — the params + SerializeCounters style of every composite.
  WriteSketchHeader(writer, kind());
  writer->WriteBits(static_cast<uint64_t>(log_n_), 32);
  writer->WriteDouble(phi_);
  writer->WriteU64(seed_);
  tree_.SerializeCounters(writer);
  writer->WriteDouble(running_sum_);
}

void DyadicHeavyHitters::Deserialize(BitReader* reader) {
  ReadSketchHeader(reader, kind());
  const int log_n = static_cast<int>(reader->ReadBits(32));
  const double phi = reader->ReadDouble();
  const uint64_t seed = reader->ReadU64();
  *this = DyadicHeavyHitters(log_n, phi, seed);
  tree_.DeserializeCounters(reader);
  running_sum_ = reader->ReadDouble();
}

void DyadicHeavyHitters::Reset() {
  tree_.Reset();
  running_sum_ = 0;
}

HeavyValidation ValidateHeavySet(const stream::ExactVector& x, double p,
                                 double phi,
                                 const std::vector<uint64_t>& set) {
  HeavyValidation result;
  const double norm = x.NormP(p);
  std::vector<bool> in_set(x.n(), false);
  for (uint64_t i : set) in_set[i] = true;
  for (uint64_t i = 0; i < x.n(); ++i) {
    const double v = std::abs(static_cast<double>(x[i]));
    if (v >= phi * norm && !in_set[i]) ++result.missing_heavy;
    if (v <= 0.5 * phi * norm && in_set[i]) ++result.included_light;
  }
  result.valid = result.missing_heavy == 0 && result.included_light == 0;
  return result;
}

}  // namespace lps::heavy
