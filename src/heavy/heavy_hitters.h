// Heavy hitters in update streams (Section 4.4).
//
// A heavy hitters algorithm with parameters p > 0 and phi > 0 must output a
// set S containing every i with |x_i| >= phi ||x||_p and no i with
// |x_i| <= (phi/2) ||x||_p (a "valid heavy hitter set").
//
// Upper bounds implemented (all matched by the paper's Theorem 9 lower
// bound of Omega(phi^-p log^2 n)):
//   - CsHeavyHitters: the paper's observation that count-sketch with
//     m = Theta(phi^-p) works for every p in (0, 2], because the point
//     error d = Err_2^m(x)/sqrt(m) obeys d <= ||x||_p / m^{1/p}
//     (the chain of inequalities proved in Section 4.4). Space
//     O(phi^-p log^2 n).
//   - CmHeavyHitters: count-min in the strict turnstile model for p = 1
//     (the count-median variant of [8] handles general updates), where
//     ||x||_1 = sum of all deltas is known exactly.
//   - DyadicHeavyHitters: the engineering variant with O(#heavy log n)
//     query time (strict turnstile, p = 1), built on DyadicCountMin.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/norm/lp_norm.h"
#include "src/sketch/count_min.h"
#include "src/sketch/count_sketch.h"
#include "src/sketch/dyadic.h"
#include "src/stream/exact_vector.h"
#include "src/stream/linear_sketch.h"
#include "src/util/serialize.h"

namespace lps::heavy {

class CsHeavyHitters : public LinearSketch {
 public:
  struct Params {
    uint64_t n = 0;
    double p = 1.0;       ///< in (0, 2]
    double phi = 0.1;     ///< heaviness threshold
    int rows = 0;         ///< 0 => Theta(log n)
    /// Rows of the (1 +- 0.1) norm estimator for p not in {2} and
    /// non-strict streams; 0 => 1200 (see DESIGN.md on the cost of tight
    /// median estimators). Ignored when an exact/cheap norm is available.
    int norm_rows = 0;
    /// Strict turnstile promise: for p == 1 the norm is then the exact
    /// running sum instead of a sketch.
    bool strict_turnstile = false;
    /// Rows of the co-updated dyadic candidate generator behind the
    /// sub-linear Query; 0 picks a small constant (candidates are verified
    /// in the flat count-sketch, so the tree only has to *find* them).
    int dyadic_rows = 0;
    uint64_t seed = 0;
  };

  explicit CsHeavyHitters(Params params);

  /// Single-update path; delegates to UpdateBatch with a batch of one.
  void Update(uint64_t i, double delta);

  /// Batched ingestion through the count-sketch and norm fast paths.
  void UpdateBatch(const stream::ScaledUpdate* updates, size_t count);
  void UpdateBatch(const stream::Update* updates, size_t count) override;

  /// A valid heavy hitter set w.h.p., sorted ascending. Sub-linear: the
  /// dyadic tree descends to O(#heavy log n) candidate leaves and only
  /// those are point-estimated in the count-sketch — no universe scan.
  /// NOTE: for p == 2 the norm estimate runs through the count-sketch's
  /// in-place residual estimator (exactly restored), so Query is
  /// logically const but not safe to call concurrently on one object.
  std::vector<uint64_t> Query() const;

  /// Reference oracle: the full-universe O(n * rows) scan Query replaced.
  /// Kept ONLY so tests and benches can check/measure the candidate
  /// engine against the exhaustive answer.
  std::vector<uint64_t> QueryOracle() const;

  /// The norm estimate used by Query (exposed for tests).
  double NormEstimate() const;

  /// Total space including the candidate generator; DyadicSpaceBits is
  /// the generator's share, reported separately so the Section 4.4
  /// paper-exact accounting stays visible.
  size_t SpaceBits(int bits_per_counter) const;
  size_t DyadicSpaceBits(int bits_per_counter = 64) const;

  /// Memory-content transfer for the Theorem 9 reduction.
  void SerializeCounters(BitWriter* writer) const;
  void DeserializeCounters(BitReader* reader);

  // LinearSketch contract: full-state serialization, merge, reset.
  void Merge(const LinearSketch& other) override;
  void MergeNegated(const LinearSketch& other) override;
  void Serialize(BitWriter* writer) const override;
  void Deserialize(BitReader* reader) override;
  void Reset() override;
  size_t SpaceBits() const override { return SpaceBits(64); }
  SketchKind kind() const override { return SketchKind::kCsHeavyHitters; }

  int m() const { return m_; }
  /// The construction parameters — what SpecOf reads.
  const Params& params() const { return params_; }

 private:
  Params params_;
  int m_;
  sketch::CountSketch cs_;
  sketch::DyadicCountSketch dyadic_;             // candidate generator
  std::unique_ptr<norm::LpNormEstimator> norm_;  // null if exact L1 is used
  double running_sum_ = 0;                       // strict turnstile L1
  std::vector<stream::ScaledUpdate> scaled_;     // batch scratch
};

class CmHeavyHitters : public LinearSketch {
 public:
  struct Params {
    uint64_t n = 0;
    double phi = 0.1;
    int rows = 0;  ///< 0 => Theta(log n)
    uint64_t seed = 0;
    bool use_median = false;  ///< count-median (general updates) variant
  };

  explicit CmHeavyHitters(Params params);

  void Update(uint64_t i, double delta);
  void UpdateBatch(const stream::ScaledUpdate* updates, size_t count);
  void UpdateBatch(const stream::Update* updates, size_t count) override;

  /// Sub-linear: candidates come from a co-updated DyadicCountMin descent
  /// and are verified against the flat count-min, so the answer matches
  /// the old universe scan in the strict turnstile model (block sums
  /// upper-bound leaf sums; the median variant inherits the same
  /// strict-turnstile assumption for its candidate descent).
  std::vector<uint64_t> Query() const;

  /// Reference oracle: the old full-universe scan, kept for tests/benches.
  std::vector<uint64_t> QueryOracle() const;

  // LinearSketch contract: full-state serialization, merge, reset.
  void Merge(const LinearSketch& other) override;
  void MergeNegated(const LinearSketch& other) override;
  void Serialize(BitWriter* writer) const override;
  void Deserialize(BitReader* reader) override;
  void Reset() override;
  size_t SpaceBits() const override { return SpaceBits(64); }
  SketchKind kind() const override { return SketchKind::kCmHeavyHitters; }

  size_t SpaceBits(int bits_per_counter) const;
  size_t DyadicSpaceBits(int bits_per_counter = 64) const;
  /// The construction parameters — what SpecOf reads.
  const Params& params() const { return params_; }

 private:
  Params params_;
  sketch::CountMin cm_;
  sketch::DyadicCountMin tree_;  // candidate generator
  double running_sum_ = 0;
};

class DyadicHeavyHitters : public LinearSketch {
 public:
  DyadicHeavyHitters(int log_n, double phi, uint64_t seed);

  void Update(uint64_t i, double delta);
  void UpdateBatch(const stream::ScaledUpdate* updates, size_t count);
  void UpdateBatch(const stream::Update* updates, size_t count) override;
  std::vector<uint64_t> Query() const;

  // LinearSketch contract: full-state serialization, merge, reset.
  void Merge(const LinearSketch& other) override;
  void MergeNegated(const LinearSketch& other) override;
  void Serialize(BitWriter* writer) const override;
  void Deserialize(BitReader* reader) override;
  void Reset() override;
  size_t SpaceBits() const override { return SpaceBits(64); }
  SketchKind kind() const override { return SketchKind::kDyadicHeavyHitters; }

  size_t SpaceBits(int bits_per_counter) const;

 private:
  int log_n_;
  double phi_;
  uint64_t seed_;
  sketch::DyadicCountMin tree_;
  double running_sum_ = 0;
};

/// Checks S against the Section 4.4 definition on the exact vector.
struct HeavyValidation {
  bool valid = true;
  int missing_heavy = 0;    ///< heavy coordinates absent from S
  int included_light = 0;   ///< <= phi/2 coordinates present in S
};
HeavyValidation ValidateHeavySet(const stream::ExactVector& x, double p,
                                 double phi, const std::vector<uint64_t>& set);

}  // namespace lps::heavy
