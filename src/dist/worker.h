// Worker — the ingest half of the distributed aggregation tier.
//
// A Worker owns one stream's LOCAL ingestion topology (k identically-
// seeded replicas, optionally driven by a ParallelPipeline — the same
// composition TenantRegistry builds server-side) and turns it into a
// sequence of epoch DELTAS: every `epoch_interval` updates it merges
// its shards, serializes replica 0, Reset()s it, and ships the
// serialized state upstream as an EpochBlob over the lps_serve frame
// protocol. Because replica 0 restarts from zero after every ship, each
// blob carries exactly one epoch's worth of stream, and the aggregator
// reconstructs the whole prefix by folding the deltas with Merge — for
// exact-arithmetic kinds bit-identically to solo ingest, in any fold
// order, by linearity.
//
// Failure model: shipping is at-least-once. The uplink (EpochShipper)
// reconnects with backoff and RE-SENDS the epoch it holds under the
// same (session, seq); the aggregator acks duplicate sequences without
// re-folding, so retries never double-count. A worker that dies loses
// only its unshipped tail — the aggregator keeps serving every epoch
// that was acked, and flags the stream as interrupted (no final
// marker). A RESTARTED worker must present a fresh `session`, which the
// aggregator counts as a gap for the old one.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/server/client.h"
#include "src/server/protocol.h"
#include "src/stream/linear_sketch.h"
#include "src/stream/parallel_pipeline.h"
#include "src/stream/update.h"
#include "src/util/status.h"

namespace lps::dist {

/// Blocking epoch uplink with reconnect-and-resend. Used by workers and
/// by combiners shipping their folded deltas one level up. Not
/// thread-safe; each shipping thread owns one.
class EpochShipper {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    int port = 0;
    /// Connect/round-trip attempts per epoch before giving up. Each
    /// failed attempt sleeps retry_ms, so attempts * retry_ms bounds
    /// how long a worker rides out an aggregator restart.
    int max_attempts = 50;
    uint64_t retry_ms = 100;
  };

  explicit EpochShipper(Options options) : options_(std::move(options)) {}

  /// Ships one epoch and waits for its ack, reconnecting and re-sending
  /// on any transport failure. A duplicate-sequence ack (applied ==
  /// false: the aggregator folded this epoch before the connection
  /// died) is success. An ERROR response is fatal, not retried — it
  /// means the aggregator rejected the epoch's content.
  Result<server::EpochAck> Ship(const server::EpochBlob& blob);

  /// Drops the connection; the next Ship reconnects (test hook for the
  /// resend path).
  void Disconnect() { client_.reset(); }

 private:
  Options options_;
  std::optional<server::Client> client_;
};

class Worker {
 public:
  struct Options {
    EpochShipper::Options uplink;
    std::string tenant;
    std::string key;
    /// Stream spec + windowing + this worker's LOCAL pipeline topology
    /// (config.shards/threads — the aggregator folds inline regardless).
    server::SketchConfig config;
    /// Updates per shipped epoch. 0 defaults to the config's
    /// window_checkpoint (so aggregator-side window seals align with
    /// epoch boundaries), or 8192 when that is 0 too.
    uint64_t epoch_interval = 0;
    std::string worker_id = "w0";
    /// Per-boot nonce; a restarted worker MUST present a new one.
    uint64_t session = 1;
  };

  /// Validates the spec/topology (same bounds as the server's CREATE)
  /// and builds the replicas + optional pipeline.
  static Result<std::unique_ptr<Worker>> Create(Options options);

  /// Appends updates to the local stream, sealing and shipping an epoch
  /// at every epoch_interval boundary. Fails on an out-of-universe
  /// index or when an epoch could not be delivered within the uplink's
  /// retry budget.
  Status Push(const stream::Update* updates, size_t count);
  Status Push(const std::vector<stream::Update>& updates) {
    return Push(updates.data(), updates.size());
  }

  /// Seals and ships the trailing partial epoch with the final marker
  /// (shipped even when empty, so the aggregator learns the stream
  /// ended cleanly). The worker is done afterwards; Push fails.
  Status Finish();

  uint64_t epochs_shipped() const { return epochs_; }
  uint64_t updates_pushed() const { return updates_; }

 private:
  Worker(Options options, uint64_t interval,
         std::vector<std::unique_ptr<LinearSketch>> replicas);

  /// Merge shards, serialize replica 0's delta, Reset it, ship.
  Status CloseEpoch(bool final_epoch);

  Options options_;
  uint64_t interval_;
  std::vector<std::unique_ptr<LinearSketch>> replicas_;
  std::unique_ptr<stream::ParallelPipeline> pipeline_;  // null = inline
  EpochShipper shipper_;
  uint64_t fill_ = 0;  ///< updates in the currently open epoch
  uint64_t seq_ = 0;
  uint64_t epochs_ = 0;
  uint64_t updates_ = 0;
  bool finished_ = false;
};

}  // namespace lps::dist
