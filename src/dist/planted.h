// The deterministic planted workload every distributed-tier surface
// shares: tools/lps_worker's default stream, lps_bench_client's
// --dist-verify oracle, bench/bench_distributed's load, and the CI
// multi-process smoke all generate EXACTLY these updates, so a solo
// sketch built in one process is byte-comparable with an aggregator
// fold assembled across many.
//
// The stream is a position-indexed pure function: worker i of W ingests
// positions {i, i + W, i + 2W, ...} and the union over workers is the
// solo stream — no coordination, no shared RNG state, any W.
#pragma once

#include <cstdint>

#include "src/server/protocol.h"
#include "src/stream/update.h"

namespace lps::dist {

inline constexpr uint64_t kPlantedUniverse = uint64_t{1} << 12;
inline constexpr uint64_t kPlantedHeavy = 7;

/// The `position`-th update of the planted stream over universe [0, n):
/// splitmix-mixed index/sign noise, with every 4th update hitting the
/// heavy coordinate so heavy-hitter queries have a planted answer.
inline stream::Update PlantedUpdate(uint64_t position, uint64_t n) {
  uint64_t z = position + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  stream::Update u;
  if (position % 4 == 0) {
    u.index = kPlantedHeavy % n;
    u.delta = 1;
  } else {
    u.index = z % n;
    u.delta = (z >> 40) % 3 == 0 ? -1 : 1;
  }
  return u;
}

/// The planted stream's config: an exact-arithmetic kind (CountMin
/// heavy hitters) so distributed answers are bit-identical to solo
/// ingest, windowed so epoch sealing is exercised end to end.
inline server::SketchConfig PlantedConfig(uint64_t n = kPlantedUniverse) {
  server::SketchConfig config;
  config.spec.kind = SketchKind::kCmHeavyHitters;
  config.spec.n = n;
  config.spec.phi = 0.05;
  config.spec.seed = 4242;
  config.window_checkpoint = 8192;
  return config;
}

}  // namespace lps::dist
