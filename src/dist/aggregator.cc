#include "src/dist/aggregator.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

namespace lps::dist {

namespace {

constexpr uint64_t kSketchMagic = 0x4C53;

/// Unambiguous map keys for wire strings that may contain any byte
/// (same length-prefix trick as TenantRegistry::MapKey; both fields are
/// prefixed here because FlushPending matches lanes to streams by
/// prefix, which must never alias across streams).
std::string StreamKey(const std::string& tenant, const std::string& key) {
  return std::to_string(tenant.size()) + ':' + tenant +
         std::to_string(key.size()) + ':' + key;
}

std::string LaneKey(const server::EpochBlob& blob) {
  return StreamKey(blob.tenant, blob.key) + '/' +
         std::to_string(blob.worker_id.size()) + ':' + blob.worker_id;
}

bool SameSpec(const SketchSpec& a, const SketchSpec& b) {
  BitWriter wa;
  BitWriter wb;
  SerializeSpec(a, &wa);
  SerializeSpec(b, &wb);
  return wa.bit_count() == wb.bit_count() && wa.words() == wb.words();
}

uint64_t NowNs() {
  return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
}

}  // namespace

Result<std::unique_ptr<LinearSketch>> DecodeEpochState(
    const server::SketchConfig& config, const std::vector<uint64_t>& words,
    size_t bits) {
  // The spec arrived from the wire: bound it before MakeSketch walks it.
  const Status valid = ValidateSpec(config.spec);
  if (!valid.ok()) return valid;
  // Plain integer head checks first — Deserialize CHECK-aborts on
  // corrupt state, which must stay unreachable from the wire.
  if (bits < 32 || words.empty() || words.size() < (bits + 63) / 64) {
    return Status::InvalidArgument("epoch state truncated");
  }
  const uint64_t head = words[0];
  if ((head & 0xFFFF) != kSketchMagic) {
    return Status::InvalidArgument("epoch state is not a serialized sketch");
  }
  if (uint32_t((head >> 16) & 0xFF) != uint32_t(config.spec.kind)) {
    return Status::InvalidArgument("epoch state kind does not match config");
  }
  const auto version = uint32_t((head >> 24) & 0xFF);
  if (version < 1 || version > kSketchFormatVersion) {
    return Status::InvalidArgument("epoch state version unsupported");
  }
  auto sketch = MakeSketch(config.spec);
  if (sketch == nullptr) {
    return Status::InvalidArgument("unknown sketch kind");
  }
  // Size/leading-word template check against a fresh instance (the
  // snapshot path's probe), then the full-parameter proof: Deserialize,
  // Reset, re-serialize. Reset leaves a sketch indistinguishable from a
  // freshly constructed one, so byte-equality with the fresh serialize
  // means every parameter and seed the state carried matches `config` —
  // a state whose interior lies (same total size, different parameters)
  // is rejected here instead of reaching Merge's parameter CHECK.
  BitWriter probe;
  sketch->Serialize(&probe);
  if (bits != probe.bit_count() || words[0] != probe.words()[0]) {
    return Status::InvalidArgument(
        "epoch state does not match its declared config");
  }
  {
    BitReader reader(words, bits);
    sketch->Deserialize(&reader);
  }
  sketch->Reset();
  BitWriter zeroed;
  sketch->Serialize(&zeroed);
  if (zeroed.bit_count() != probe.bit_count() ||
      zeroed.words() != probe.words()) {
    return Status::InvalidArgument(
        "epoch state parameters do not match the stream config");
  }
  {
    BitReader reader(words, bits);
    sketch->Deserialize(&reader);
  }
  return sketch;
}

Aggregator::Aggregator(Options options) : options_(std::move(options)) {
  if (options_.registry == nullptr) {
    EpochShipper::Options uplink;
    uplink.host = options_.upstream_host;
    uplink.port = options_.upstream_port;
    uplink.max_attempts = options_.upstream_attempts;
    uplink.retry_ms = options_.upstream_retry_ms;
    upstream_ = std::make_unique<EpochShipper>(uplink);
  }
}

Aggregator::~Aggregator() { Stop(); }

Status Aggregator::Start() {
  if (upstream_ == nullptr) return Status::OK();  // root: nothing to run
  flush_thread_ = std::thread([this] { FlushLoop(); });
  return Status::OK();
}

void Aggregator::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  flush_cv_.notify_all();
  if (flush_thread_.joinable()) flush_thread_.join();
  // Last chance for combined tails and final markers to go upstream.
  if (upstream_ != nullptr) FlushPending();
}

bool Aggregator::HandleOpcode(uint64_t connection_id, uint8_t opcode,
                              BitReader* body, BitWriter* reply,
                              Status* status) {
  switch (server::Opcode(opcode)) {
    case server::Opcode::kEpoch: {
      const server::EpochBlob blob = server::DeserializeEpoch(body);
      if (body->failed()) {
        *status = Status::InvalidArgument("malformed request body");
        return true;
      }
      server::EpochAck ack;
      *status = HandleEpoch(connection_id, blob, &ack);
      if (status->ok()) server::SerializeEpochAck(ack, reply);
      return true;
    }
    case server::Opcode::kDistStats: {
      server::SerializeDistStats(Stats(), reply);
      return true;
    }
    default:
      return false;
  }
}

Status Aggregator::HandleEpoch(uint64_t connection_id,
                               const server::EpochBlob& blob,
                               server::EpochAck* ack) {
  std::lock_guard<std::mutex> lock(mutex_);
  Lane& lane = lanes_[LaneKey(blob)];
  if (lane.stream.empty()) {
    lane.stream = blob.tenant + "/" + blob.key;
    lane.worker_id = blob.worker_id;
  }
  if (blob.session != lane.session) {
    // A new session on a lane that never finished means the old
    // worker's unshipped tail is gone for good.
    if (lane.session != 0 && !lane.finished) {
      ++lane.gaps;
      ++gaps_;
    }
    lane.session = blob.session;
    lane.next_seq = 0;
    lane.finished = false;
    ++sessions_;
  }
  lane.connected = true;
  lane.connection_id = connection_id;
  if (blob.seq < lane.next_seq) {
    // A reconnecting worker re-sent an epoch folded before its old
    // connection died: ack without re-folding (idempotence).
    ack->applied = false;
    ack->next_seq = lane.next_seq;
    return Status::OK();
  }
  if (blob.seq > lane.next_seq) {
    // Skipped sequences are epochs known lost; fold what DID arrive —
    // late data beats no data — but account the loss.
    const uint64_t lost = blob.seq - lane.next_seq;
    lane.gaps += lost;
    gaps_ += lost;
  }
  const uint64_t fold_start = NowNs();
  Status folded;
  if (options_.registry != nullptr) {
    auto delta = DecodeEpochState(blob.config, blob.state_words,
                                  blob.state_bits);
    folded = delta.ok()
                 ? options_.registry->FoldEpoch(blob.tenant, blob.key,
                                                blob.config, *delta.value(),
                                                blob.count)
                 : delta.status();
  } else {
    folded = FoldPendingLocked(blob);
  }
  fold_ns_ += NowNs() - fold_start;
  // A rejected epoch does not advance the lane: the worker sees the
  // error (its shipper treats it as fatal) and the stream stays where
  // it was.
  if (!folded.ok()) return folded;
  lane.next_seq = blob.seq + 1;
  ++lane.epochs;
  lane.updates += blob.count;
  ++epochs_folded_;
  updates_folded_ += blob.count;
  if (blob.final_epoch) lane.finished = true;
  ack->applied = true;
  ack->next_seq = lane.next_seq;
  if (upstream_ != nullptr && blob.final_epoch) flush_cv_.notify_all();
  return Status::OK();
}

Status Aggregator::FoldPendingLocked(const server::EpochBlob& blob) {
  const std::string stream_key = StreamKey(blob.tenant, blob.key);
  auto it = pending_.find(stream_key);
  if (it == pending_.end()) {
    auto decoded =
        DecodeEpochState(blob.config, blob.state_words, blob.state_bits);
    if (!decoded.ok()) return decoded.status();
    Pending pending;
    pending.tenant = blob.tenant;
    pending.key = blob.key;
    pending.config = blob.config;
    pending.sketch = std::move(decoded.value());
    pending.count = blob.count;
    pending.dirty = true;
    pending_.emplace(stream_key, std::move(pending));
    return Status::OK();
  }
  Pending& pending = it->second;
  if (!SameSpec(pending.config.spec, blob.config.spec)) {
    return Status::InvalidArgument("epoch spec does not match stream " +
                                   blob.tenant + "/" + blob.key);
  }
  auto decoded =
      DecodeEpochState(pending.config, blob.state_words, blob.state_bits);
  if (!decoded.ok()) return decoded.status();
  pending.sketch->Merge(*decoded.value());
  pending.count += blob.count;
  pending.dirty = true;
  return Status::OK();
}

void Aggregator::FlushLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    flush_cv_.wait_for(lock,
                       std::chrono::milliseconds(options_.flush_interval_ms),
                       [this] { return stop_; });
    if (stop_) return;
    lock.unlock();
    FlushPending();
    lock.lock();
  }
}

void Aggregator::FlushPending() {
  // Serialize the blobs under the lock, ship OUTSIDE it: an upstream
  // riding out a restart must not stall child folds for retry_ms *
  // attempts.
  std::vector<server::EpochBlob> outbound;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [stream_key, pending] : pending_) {
      bool all_finished = false;
      if (!pending.final_sent) {
        size_t lanes_seen = 0;
        size_t lanes_finished = 0;
        for (const auto& [lane_key, lane] : lanes_) {
          if (lane_key.rfind(stream_key + '/', 0) != 0) continue;
          ++lanes_seen;
          if (lane.finished) ++lanes_finished;
        }
        all_finished = lanes_seen > 0 && lanes_seen == lanes_finished;
      }
      if (!pending.dirty && !all_finished) continue;
      server::EpochBlob blob;
      blob.tenant = pending.tenant;
      blob.key = pending.key;
      blob.worker_id = options_.node_id;
      blob.session = options_.upstream_session;
      blob.seq = pending.ship_seq++;
      blob.count = pending.count;
      blob.final_epoch = all_finished;
      blob.config = pending.config;
      BitWriter state;
      pending.sketch->Serialize(&state);
      blob.state_words = state.words();
      blob.state_bits = state.bit_count();
      pending.sketch->Reset();
      pending.count = 0;
      pending.dirty = false;
      if (all_finished) pending.final_sent = true;
      outbound.push_back(std::move(blob));
    }
  }
  for (const server::EpochBlob& blob : outbound) {
    auto acked = upstream_->Ship(blob);
    if (!acked.ok()) {
      // Retry budget exhausted: the delta is lost to upstream, which
      // will account the sequence skip as a gap. Operator-visible, not
      // fatal — this node keeps folding its children.
      std::fprintf(stderr, "lps combiner %s: upstream ship failed: %s\n",
                   options_.node_id.c_str(),
                   acked.status().message().c_str());
    }
  }
}

void Aggregator::OnConnectionClosed(uint64_t connection_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [lane_key, lane] : lanes_) {
    if (lane.connected && lane.connection_id == connection_id) {
      lane.connected = false;
    }
  }
}

server::DistStats Aggregator::Stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  server::DistStats stats;
  stats.epochs_folded = epochs_folded_;
  stats.updates_folded = updates_folded_;
  stats.gaps = gaps_;
  stats.sessions = sessions_;
  stats.fold_ns = fold_ns_;
  stats.combiner = options_.registry == nullptr;
  stats.workers.reserve(lanes_.size());
  for (const auto& [lane_key, lane] : lanes_) {
    server::DistWorkerStats worker;
    worker.stream = lane.stream;
    worker.worker_id = lane.worker_id;
    worker.session = lane.session;
    worker.next_seq = lane.next_seq;
    worker.epochs = lane.epochs;
    worker.updates = lane.updates;
    worker.gaps = lane.gaps;
    worker.finished = lane.finished;
    worker.connected = lane.connected;
    if (!worker.connected && !worker.finished) ++stats.interrupted;
    stats.workers.push_back(std::move(worker));
  }
  std::sort(stats.workers.begin(), stats.workers.end(),
            [](const server::DistWorkerStats& a,
               const server::DistWorkerStats& b) {
              return a.stream != b.stream ? a.stream < b.stream
                                          : a.worker_id < b.worker_id;
            });
  return stats;
}

}  // namespace lps::dist
