// Aggregator — the fold half of the distributed aggregation tier.
//
// Registered as the Server's FrameHandler extension, it owns the two
// dist-tier opcodes: EPOCH (fold one worker delta) and DIST_STATS (the
// fold/gap observability surface). One class, two modes:
//
//   ROOT (options.registry != nullptr): every epoch folds straight into
//   the TenantRegistry with Merge, so the folded global prefix is
//   served by the UNCHANGED query surface — QUERY/WINDOW/SNAPSHOT see a
//   stream indistinguishable from one ingested locally, and for
//   exact-arithmetic kinds bit-identical to it.
//
//   COMBINER (options.upstream_host set): an interior node of the
//   fan-in tree. Child epochs fold into one pending delta per stream; a
//   background thread ships the combined delta upstream every
//   flush_interval_ms under the combiner's own (session, seq) lane.
//   W workers behind C combiners cost the root C lanes instead of W,
//   and fold depth grows O(log W) instead of a root bottleneck.
//
// Epoch ordering per (stream, worker) lane: a re-sent sequence below
// next_seq is acked but NOT re-folded (the at-least-once uplink's
// idempotence); a sequence above next_seq counts the skipped epochs as
// gaps and folds anyway (late data beats no data — the prefix is then
// missing exactly the skipped deltas). A session change without a final
// marker, or a disconnect without one, marks the lane interrupted; the
// aggregator keeps serving every epoch already folded.
//
// Hostile-input stance (same bar as the core server): epoch state is
// validated by DecodeEpochState before any Merge, so a blob lying about
// its parameters gets an error response, never a CHECK abort.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/dist/worker.h"
#include "src/server/protocol.h"
#include "src/server/server.h"
#include "src/server/tenant_registry.h"
#include "src/stream/linear_sketch.h"
#include "src/util/status.h"

namespace lps::dist {

/// Validates one epoch's serialized state against the stream config and
/// decodes it into a sketch. This is what makes Merge's parameter CHECK
/// unreachable from the wire: beyond the snapshot path's header checks
/// (magic, kind, version, probe size/leading word), the decoded sketch
/// is Reset() and re-serialized — Reset leaves a sketch byte-identical
/// to a freshly constructed one, so equality with a fresh
/// MakeSketch(config.spec) serialize proves EVERY parameter and seed
/// matches the config, not just the leading word. The state is then
/// decoded a second time into the validated object.
Result<std::unique_ptr<LinearSketch>> DecodeEpochState(
    const server::SketchConfig& config, const std::vector<uint64_t>& words,
    size_t bits);

class Aggregator : public server::FrameHandler {
 public:
  struct Options {
    /// Root mode: fold epochs into this registry (must outlive the
    /// aggregator). Null selects combiner mode.
    server::TenantRegistry* registry = nullptr;
    /// Combiner mode: where the combined deltas ship.
    std::string upstream_host = "127.0.0.1";
    int upstream_port = 0;
    /// This combiner's worker_id on its upstream lane.
    std::string node_id = "combiner";
    /// Per-boot nonce for the upstream lane (a restarted combiner must
    /// present a new one, like any worker).
    uint64_t upstream_session = 1;
    /// Cadence of the combined-delta flush to upstream.
    uint64_t flush_interval_ms = 20;
    int upstream_attempts = 50;
    uint64_t upstream_retry_ms = 100;
  };

  explicit Aggregator(Options options);
  ~Aggregator() override;

  Aggregator(const Aggregator&) = delete;
  Aggregator& operator=(const Aggregator&) = delete;

  /// Combiner mode: spawns the upstream flush thread. Root mode: no-op.
  Status Start();

  /// Joins the flush thread after a final flush (combined tails and, if
  /// every child finished cleanly, the upstream final markers).
  /// Idempotent; also run by the destructor.
  void Stop();

  bool HandleOpcode(uint64_t connection_id, uint8_t opcode, BitReader* body,
                    BitWriter* reply, Status* status) override;
  void OnConnectionClosed(uint64_t connection_id) override;

  /// The DIST_STATS answer (also available in-process for tools/tests).
  server::DistStats Stats();

 private:
  /// One (stream, worker) delivery lane.
  struct Lane {
    std::string stream;  ///< "tenant/key" display name
    std::string worker_id;
    uint64_t session = 0;
    uint64_t next_seq = 0;
    uint64_t epochs = 0;
    uint64_t updates = 0;
    uint64_t gaps = 0;
    bool finished = false;
    bool connected = false;
    uint64_t connection_id = 0;
  };

  /// Combiner-mode per-stream accumulator: child deltas Merge here
  /// between flushes; Reset() after each ship keeps it a pure delta.
  struct Pending {
    std::string tenant;
    std::string key;
    server::SketchConfig config;
    std::unique_ptr<LinearSketch> sketch;
    uint64_t count = 0;
    bool dirty = false;
    uint64_t ship_seq = 0;
    bool final_sent = false;
  };

  Status HandleEpoch(uint64_t connection_id, const server::EpochBlob& blob,
                     server::EpochAck* ack);
  /// Combiner fold target (root folds into the registry instead).
  Status FoldPendingLocked(const server::EpochBlob& blob);
  void FlushLoop();
  /// Ships dirty combined deltas upstream, plus the final markers of
  /// streams whose children have all finished.
  void FlushPending();

  Options options_;
  std::mutex mutex_;
  std::unordered_map<std::string, Lane> lanes_;      // lane key
  std::unordered_map<std::string, Pending> pending_;  // stream key
  uint64_t epochs_folded_ = 0;
  uint64_t updates_folded_ = 0;
  uint64_t gaps_ = 0;
  uint64_t sessions_ = 0;
  uint64_t fold_ns_ = 0;
  std::unique_ptr<EpochShipper> upstream_;  // combiner mode only
  std::thread flush_thread_;
  std::condition_variable flush_cv_;
  bool stop_ = false;  // under mutex_
};

}  // namespace lps::dist
