#include "src/dist/worker.h"

#include <chrono>
#include <thread>
#include <utility>

namespace lps::dist {

Result<server::EpochAck> EpochShipper::Ship(const server::EpochBlob& blob) {
  Status last = Status::Failed("no attempts made");
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(options_.retry_ms));
    }
    if (!client_.has_value()) {
      auto connected = server::Client::Connect(options_.host, options_.port);
      if (!connected.ok()) {
        last = connected.status();
        continue;
      }
      client_.emplace(std::move(connected.value()));
    }
    Result<server::EpochAck> acked = client_->ShipEpoch(blob);
    if (acked.ok()) return acked;
    // The Client unwraps ERROR responses into Failed(server message)
    // after a complete round trip — those are content rejections, fatal
    // by contract. Transport failures (connect reset, eof, short read)
    // surface as read/send/eof statuses; retry those on a fresh
    // connection, re-sending the same (session, seq) blob.
    const std::string& message = acked.status().message();
    const bool transport = message.rfind("read:", 0) == 0 ||
                           message.rfind("send:", 0) == 0 ||
                           message == "eof";
    if (!transport) return acked.status();
    last = acked.status();
    client_.reset();
  }
  return Status::Failed("epoch undeliverable after retries: " +
                        last.message());
}

Result<std::unique_ptr<Worker>> Worker::Create(Options options) {
  const server::SketchConfig& config = options.config;
  if (config.shards < 1 || config.shards > 1024) {
    return Status::InvalidArgument("shards must be in [1, 1024]");
  }
  if (config.threads < 0 || config.threads > 1024) {
    return Status::InvalidArgument("threads must be in [0, 1024]");
  }
  const Status valid = ValidateSpec(config.spec);
  if (!valid.ok()) return valid;
  std::vector<std::unique_ptr<LinearSketch>> replicas;
  replicas.reserve(size_t(config.shards));
  for (int32_t s = 0; s < config.shards; ++s) {
    auto replica = MakeSketch(config.spec);
    if (replica == nullptr) {
      return Status::InvalidArgument("unknown sketch kind");
    }
    replicas.push_back(std::move(replica));
  }
  uint64_t interval = options.epoch_interval;
  if (interval == 0) interval = config.window_checkpoint;
  if (interval == 0) interval = 8192;
  return std::unique_ptr<Worker>(
      new Worker(std::move(options), interval, std::move(replicas)));
}

Worker::Worker(Options options, uint64_t interval,
               std::vector<std::unique_ptr<LinearSketch>> replicas)
    : options_(std::move(options)),
      interval_(interval),
      replicas_(std::move(replicas)),
      shipper_(options_.uplink) {
  const server::SketchConfig& config = options_.config;
  if (config.shards > 1 || config.threads > 0) {
    stream::ParallelPipeline::Options pipeline;
    pipeline.shards = config.shards;
    pipeline.threads = config.threads;
    pipeline_ = std::make_unique<stream::ParallelPipeline>(pipeline);
    std::vector<LinearSketch*> raw;
    raw.reserve(replicas_.size());
    for (const auto& replica : replicas_) raw.push_back(replica.get());
    pipeline_->Add("sketch", std::move(raw));
  }
}

Status Worker::Push(const stream::Update* updates, size_t count) {
  if (finished_) return Status::Failed("worker already finished");
  if (const uint64_t bound = EnforcedUniverse(options_.config.spec)) {
    for (size_t i = 0; i < count; ++i) {
      if (updates[i].index >= bound) {
        return Status::InvalidArgument(
            "update index " + std::to_string(updates[i].index) +
            " outside universe [0, " + std::to_string(bound) + ")");
      }
    }
  }
  // Chunk at epoch boundaries so every shipped delta covers exactly
  // interval_ updates (the same chunking TenantRegistry::Ingest uses to
  // keep checkpoint positions aligned).
  const stream::Update* cursor = updates;
  size_t remaining = count;
  while (remaining > 0) {
    const uint64_t room = interval_ - fill_;
    const size_t chunk = size_t(remaining < room ? remaining : room);
    if (pipeline_ != nullptr) {
      pipeline_->Drive(cursor, chunk);
    } else {
      replicas_[0]->UpdateBatch(cursor, chunk);
    }
    fill_ += chunk;
    updates_ += chunk;
    cursor += chunk;
    remaining -= chunk;
    if (fill_ == interval_) {
      const Status shipped = CloseEpoch(/*final_epoch=*/false);
      if (!shipped.ok()) return shipped;
    }
  }
  return Status::OK();
}

Status Worker::Finish() {
  if (finished_) return Status::OK();
  // Ship the partial tail — even an empty one, as the clean-end marker.
  const Status shipped = CloseEpoch(/*final_epoch=*/true);
  if (!shipped.ok()) return shipped;
  finished_ = true;
  return Status::OK();
}

Status Worker::CloseEpoch(bool final_epoch) {
  if (pipeline_ != nullptr) pipeline_->MergeShards();
  server::EpochBlob blob;
  blob.tenant = options_.tenant;
  blob.key = options_.key;
  blob.worker_id = options_.worker_id;
  blob.session = options_.session;
  blob.seq = seq_;
  blob.count = fill_;
  blob.final_epoch = final_epoch;
  blob.config = options_.config;
  BitWriter state;
  replicas_[0]->Serialize(&state);
  blob.state_words = state.words();
  blob.state_bits = state.bit_count();
  // Reset BEFORE shipping: replica 0 must restart from zero so the next
  // epoch is again a pure delta. The blob keeps the serialized bytes,
  // so a reconnect re-send needs no sketch state.
  replicas_[0]->Reset();
  fill_ = 0;
  Result<server::EpochAck> acked = shipper_.Ship(blob);
  if (!acked.ok()) return acked.status();
  ++seq_;
  ++epochs_;
  return Status::OK();
}

}  // namespace lps::dist
