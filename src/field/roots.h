// Root finding over GF(2^61 - 1) via Cantor-Zassenhaus.
//
// The locator polynomials arising in sparse recovery have degree <= s
// (typically < 100) but the field has ~2^61 elements, so Chien search over
// the coordinate domain would cost O(n * s) per recovery. Instead we
// (1) isolate the product of distinct linear factors with
//     g = gcd(x^p - x mod f, f), computed as one O(s^2 log p) modular
//     exponentiation, and
// (2) split g by the standard quadratic-residue partition
//     gcd((x + a)^((p-1)/2) - 1, g) with random shifts a.
// Total cost O(s^2 log p) field operations per recovery, independent of n.
#pragma once

#include <cstdint>
#include <vector>

#include "src/field/poly.h"
#include "src/util/random.h"

namespace lps::field {

/// Returns all distinct roots of f in GF(p), in unspecified order. The
/// `rng` drives the Las Vegas splitting (the result is always exact).
std::vector<uint64_t> FindRoots(const poly::Poly& f, Rng* rng);

/// True iff f splits completely into deg(f) distinct linear factors, i.e.
/// gcd(x^p - x, f) == f. Used by sparse recovery to reject DENSE inputs
/// whose Berlekamp-Massey output is not a genuine locator polynomial.
bool SplitsIntoDistinctLinearFactors(const poly::Poly& f);

}  // namespace lps::field
