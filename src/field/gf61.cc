#include "src/field/gf61.h"

namespace lps::gf61 {

uint64_t Pow(uint64_t a, uint64_t e) {
  uint64_t result = 1;
  uint64_t base = Reduce(a);
  while (e > 0) {
    if (e & 1) result = Mul(result, base);
    base = Mul(base, base);
    e >>= 1;
  }
  return result;
}

uint64_t Inv(uint64_t a) {
  LPS_CHECK(a % kP != 0);
  // Fermat: a^(p-2) = a^{-1}.
  return Pow(a, kP - 2);
}

}  // namespace lps::gf61
