#include "src/field/poly.h"

#include <algorithm>

#include "src/field/gf61.h"
#include "src/util/check.h"

namespace lps::poly {

namespace gf = ::lps::gf61;

int Deg(const Poly& f) { return static_cast<int>(f.size()) - 1; }

void Trim(Poly* f) {
  while (!f->empty() && f->back() == 0) f->pop_back();
}

Poly Add(const Poly& a, const Poly& b) {
  Poly r(std::max(a.size(), b.size()), 0);
  for (size_t i = 0; i < a.size(); ++i) r[i] = a[i];
  for (size_t i = 0; i < b.size(); ++i) r[i] = gf::Add(r[i], b[i]);
  Trim(&r);
  return r;
}

Poly Sub(const Poly& a, const Poly& b) {
  Poly r(std::max(a.size(), b.size()), 0);
  for (size_t i = 0; i < a.size(); ++i) r[i] = a[i];
  for (size_t i = 0; i < b.size(); ++i) r[i] = gf::Sub(r[i], b[i]);
  Trim(&r);
  return r;
}

Poly Mul(const Poly& a, const Poly& b) {
  if (a.empty() || b.empty()) return {};
  Poly r(a.size() + b.size() - 1, 0);
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == 0) continue;
    for (size_t j = 0; j < b.size(); ++j) {
      r[i + j] = gf::Add(r[i + j], gf::Mul(a[i], b[j]));
    }
  }
  Trim(&r);
  return r;
}

void DivMod(const Poly& a, const Poly& b, Poly* q, Poly* r) {
  LPS_CHECK(!b.empty());
  *r = a;
  Trim(r);
  q->assign(r->size() >= b.size() ? r->size() - b.size() + 1 : 0, 0);
  const uint64_t lead_inv = gf::Inv(b.back());
  while (r->size() >= b.size()) {
    const uint64_t coeff = gf::Mul(r->back(), lead_inv);
    const size_t shift = r->size() - b.size();
    (*q)[shift] = coeff;
    for (size_t i = 0; i < b.size(); ++i) {
      (*r)[shift + i] = gf::Sub((*r)[shift + i], gf::Mul(coeff, b[i]));
    }
    Trim(r);
    if (r->empty()) break;
  }
  Trim(q);
}

Poly Mod(const Poly& a, const Poly& b) {
  Poly q, r;
  DivMod(a, b, &q, &r);
  return r;
}

Poly Gcd(Poly a, Poly b) {
  Trim(&a);
  Trim(&b);
  while (!b.empty()) {
    Poly r = Mod(a, b);
    a = std::move(b);
    b = std::move(r);
  }
  if (!a.empty()) MakeMonic(&a);
  return a;
}

Poly MulMod(const Poly& a, const Poly& b, const Poly& f) {
  return Mod(Mul(a, b), f);
}

Poly PowMod(const Poly& base, uint64_t e, const Poly& f) {
  LPS_CHECK(Deg(f) >= 1);
  Poly result = {1};
  Poly b = Mod(base, f);
  while (e > 0) {
    if (e & 1) result = MulMod(result, b, f);
    b = MulMod(b, b, f);
    e >>= 1;
  }
  return result;
}

uint64_t Eval(const Poly& f, uint64_t x) {
  uint64_t acc = 0;
  for (size_t i = f.size(); i-- > 0;) {
    acc = gf::Add(gf::Mul(acc, x), f[i]);
  }
  return acc;
}

Poly Derivative(const Poly& f) {
  if (f.size() <= 1) return {};
  Poly d(f.size() - 1);
  for (size_t i = 1; i < f.size(); ++i) {
    d[i - 1] = gf::Mul(f[i], gf::Reduce(i));
  }
  Trim(&d);
  return d;
}

void MakeMonic(Poly* f) {
  LPS_CHECK(!f->empty());
  if (f->back() == 1) return;
  const uint64_t inv = gf::Inv(f->back());
  for (auto& c : *f) c = gf::Mul(c, inv);
}

Poly Reverse(const Poly& f) {
  Poly r(f.rbegin(), f.rend());
  Trim(&r);
  return r;
}

}  // namespace lps::poly
