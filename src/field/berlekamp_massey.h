// Berlekamp-Massey over GF(2^61 - 1).
//
// Given a sequence S[0..N-1], finds the shortest linear-feedback shift
// register generating it: a connection polynomial C(x) = 1 + c_1 x + ... +
// c_L x^L of minimal L such that
//
//   sum_{i=0}^{L} C[i] * S[j - i] = 0   for all j in [L, N).
//
// In the sparse-recovery application (Lemma 5), S_r = sum_j v_j a_j^r are
// the syndromes of an (at most) s-sparse vector with support nodes a_j; with
// N = 2s syndromes, BM provably returns C(x) = prod_j (1 - a_j x), whose
// reversal is the locator polynomial with roots exactly {a_j}.
#pragma once

#include <cstdint>
#include <vector>

#include "src/field/poly.h"

namespace lps::field {

/// Returns the minimal connection polynomial of the sequence (C[0] == 1).
/// Returns {1} (L = 0) for the all-zero sequence.
poly::Poly BerlekampMassey(const std::vector<uint64_t>& sequence);

}  // namespace lps::field
