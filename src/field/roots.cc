#include "src/field/roots.h"

#include "src/field/gf61.h"
#include "src/util/check.h"

namespace lps::field {

namespace gf = ::lps::gf61;
using poly::Poly;

namespace {

// Computes gcd(x^p - x mod f, f): the product of the distinct linear
// factors of f.
Poly LinearFactorProduct(const Poly& f) {
  LPS_CHECK(poly::Deg(f) >= 1);
  const Poly x = {0, 1};
  Poly xp = poly::PowMod(x, gf::kP, f);
  return poly::Gcd(poly::Sub(xp, x), f);
}

// Recursively splits a monic polynomial known to be a product of distinct
// linear factors, appending the roots found.
void SplitAllRoots(const Poly& g, Rng* rng, std::vector<uint64_t>* roots) {
  const int d = poly::Deg(g);
  if (d <= 0) return;
  if (d == 1) {
    // g = x + g[0] (monic): root is -g[0].
    roots->push_back(gf::Neg(g[0]));
    return;
  }
  // Split by quadratic residuosity of shifted roots: for random a, the map
  // r -> (r + a)^((p-1)/2) sends about half the roots to +1.
  constexpr uint64_t kHalf = (gf::kP - 1) / 2;
  while (true) {
    const uint64_t a = rng->Below(gf::kP);
    // If -a is itself a root, peel it off directly to guarantee progress.
    if (poly::Eval(g, gf::Neg(a)) == 0) {
      Poly linear = {a, 1};
      roots->push_back(gf::Neg(a));
      Poly q, r;
      poly::DivMod(g, linear, &q, &r);
      LPS_CHECK(r.empty());
      SplitAllRoots(q, rng, roots);
      return;
    }
    Poly shifted = {a, 1};  // x + a
    Poly w = poly::PowMod(shifted, kHalf, g);
    w = poly::Sub(w, Poly{1});
    Poly d1 = poly::Gcd(w, g);
    const int dd = poly::Deg(d1);
    if (dd <= 0 || dd >= poly::Deg(g)) continue;  // trivial split; retry
    Poly q, r;
    poly::DivMod(g, d1, &q, &r);
    LPS_CHECK(r.empty());
    SplitAllRoots(d1, rng, roots);
    SplitAllRoots(q, rng, roots);
    return;
  }
}

}  // namespace

std::vector<uint64_t> FindRoots(const Poly& f, Rng* rng) {
  std::vector<uint64_t> roots;
  if (poly::Deg(f) < 1) return roots;
  Poly g = LinearFactorProduct(f);
  if (poly::Deg(g) < 1) return roots;
  SplitAllRoots(g, rng, &roots);
  return roots;
}

bool SplitsIntoDistinctLinearFactors(const poly::Poly& f) {
  if (poly::Deg(f) < 1) return false;
  Poly g = LinearFactorProduct(f);
  return poly::Deg(g) == poly::Deg(f);
}

}  // namespace lps::field
