#include "src/field/berlekamp_massey.h"

#include "src/field/gf61.h"

namespace lps::field {

namespace gf = ::lps::gf61;

poly::Poly BerlekampMassey(const std::vector<uint64_t>& sequence) {
  const size_t n = sequence.size();
  poly::Poly c = {1};  // current connection polynomial
  poly::Poly b = {1};  // connection polynomial before last length change
  size_t length = 0;   // current LFSR length
  size_t m = 1;        // steps since last length change
  uint64_t last_discrepancy = 1;

  for (size_t j = 0; j < n; ++j) {
    // Discrepancy: how far C fails to predict S[j].
    uint64_t d = sequence[j];
    for (size_t i = 1; i <= length && i < c.size(); ++i) {
      d = gf::Add(d, gf::Mul(c[i], sequence[j - i]));
    }
    if (d == 0) {
      ++m;
      continue;
    }
    const uint64_t coeff = gf::Mul(d, gf::Inv(last_discrepancy));
    if (2 * length <= j) {
      // Length change: C' = C - coeff * x^m * B, and B takes C's old value.
      poly::Poly old_c = c;
      if (c.size() < b.size() + m) c.resize(b.size() + m, 0);
      for (size_t i = 0; i < b.size(); ++i) {
        c[i + m] = gf::Sub(c[i + m], gf::Mul(coeff, b[i]));
      }
      b = std::move(old_c);
      length = j + 1 - length;
      last_discrepancy = d;
      m = 1;
    } else {
      if (c.size() < b.size() + m) c.resize(b.size() + m, 0);
      for (size_t i = 0; i < b.size(); ++i) {
        c[i + m] = gf::Sub(c[i + m], gf::Mul(coeff, b[i]));
      }
      ++m;
    }
  }
  poly::Trim(&c);
  return c;
}

}  // namespace lps::field
