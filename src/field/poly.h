// Dense univariate polynomial arithmetic over GF(2^61 - 1).
//
// Polynomials are coefficient vectors, lowest degree first; the zero
// polynomial is the empty vector. Degrees in this library are tiny (at most
// 2s for sparsity parameter s, typically < 100), so schoolbook algorithms
// are the right choice: they beat FFT methods well past degree 100 and keep
// the code auditable.
#pragma once

#include <cstdint>
#include <vector>

namespace lps::poly {

using Poly = std::vector<uint64_t>;

/// Degree of f; -1 for the zero polynomial.
int Deg(const Poly& f);

/// Removes leading zero coefficients in place.
void Trim(Poly* f);

Poly Add(const Poly& a, const Poly& b);
Poly Sub(const Poly& a, const Poly& b);
Poly Mul(const Poly& a, const Poly& b);

/// Divides a by b (b non-zero): a = q*b + r with deg r < deg b.
void DivMod(const Poly& a, const Poly& b, Poly* q, Poly* r);

/// Remainder of a modulo b.
Poly Mod(const Poly& a, const Poly& b);

/// Monic greatest common divisor.
Poly Gcd(Poly a, Poly b);

/// (a * b) mod f.
Poly MulMod(const Poly& a, const Poly& b, const Poly& f);

/// base^e mod f by binary exponentiation; deg f >= 1.
Poly PowMod(const Poly& base, uint64_t e, const Poly& f);

/// Evaluates f at x (Horner).
uint64_t Eval(const Poly& f, uint64_t x);

/// Formal derivative.
Poly Derivative(const Poly& f);

/// Scales f so its leading coefficient is 1; f must be non-zero.
void MakeMonic(Poly* f);

/// Reverses the coefficient order: x^deg(f) * f(1/x). Used to turn a
/// Berlekamp-Massey connection polynomial into the locator polynomial whose
/// roots are the syndrome nodes.
Poly Reverse(const Poly& f);

}  // namespace lps::poly
