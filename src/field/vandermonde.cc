#include "src/field/vandermonde.h"

#include "src/field/gf61.h"
#include "src/field/poly.h"
#include "src/util/check.h"

namespace lps::field {

namespace gf = ::lps::gf61;
using poly::Poly;

std::vector<uint64_t> SolveTransposedVandermonde(
    const std::vector<uint64_t>& nodes, const std::vector<uint64_t>& rhs) {
  const size_t k = nodes.size();
  LPS_CHECK(rhs.size() >= k);
  std::vector<uint64_t> values(k, 0);
  if (k == 0) return values;

  // Master polynomial A(x) = prod_j (x - a_j), built incrementally.
  Poly a = {1};
  for (uint64_t node : nodes) {
    a = poly::Mul(a, Poly{gf::Neg(node), 1});
  }
  const Poly a_prime = poly::Derivative(a);

  std::vector<uint64_t> lj(k);  // coefficients of L_j = A / (x - a_j)
  for (size_t j = 0; j < k; ++j) {
    // Synthetic division of A by (x - a_j): L_j has degree k - 1.
    uint64_t carry = a[k];  // leading coefficient of A (== 1)
    for (size_t r = k; r-- > 0;) {
      lj[r] = carry;
      carry = gf::Add(a[r], gf::Mul(carry, nodes[j]));
    }
    // carry is now A(a_j) == 0; unused.
    uint64_t dot = 0;
    for (size_t r = 0; r < k; ++r) {
      dot = gf::Add(dot, gf::Mul(lj[r], rhs[r]));
    }
    const uint64_t denom = poly::Eval(a_prime, nodes[j]);
    LPS_CHECK(denom != 0);  // nodes are distinct, so A' cannot vanish
    values[j] = gf::Mul(dot, gf::Inv(denom));
  }
  return values;
}

}  // namespace lps::field
