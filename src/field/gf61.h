// Arithmetic in the prime field GF(p) with p = 2^61 - 1 (a Mersenne prime).
//
// This field underlies all algebraic machinery in the library: k-wise
// independent hash families, linear fingerprints, and the syndrome-based
// exact sparse recovery of Lemma 5. The Mersenne structure makes reduction
// two shifts and an add, so field multiplications cost only a few cycles.
//
// Field elements are uint64_t values in [0, p). Signed integers (stream
// update values) are mapped into the field with FromInt64 and back with
// ToInt64; the round-trip is exact for |v| < p/2 ~ 1.15e18, far above the
// poly(n) coordinate bound the paper assumes.
#pragma once

#include <cstdint>

#include "src/util/check.h"

namespace lps::gf61 {

/// The field modulus 2^61 - 1.
inline constexpr uint64_t kP = (1ULL << 61) - 1;

/// Reduces a value in [0, 2^64) to [0, p).
inline uint64_t Reduce(uint64_t x) {
  x = (x & kP) + (x >> 61);
  if (x >= kP) x -= kP;
  return x;
}

inline uint64_t Add(uint64_t a, uint64_t b) {
  uint64_t s = a + b;
  if (s >= kP) s -= kP;
  return s;
}

inline uint64_t Sub(uint64_t a, uint64_t b) {
  return a >= b ? a - b : a + kP - b;
}

inline uint64_t Neg(uint64_t a) { return a == 0 ? 0 : kP - a; }

inline uint64_t Mul(uint64_t a, uint64_t b) {
  __uint128_t prod = static_cast<__uint128_t>(a) * b;
  // prod < 2^122. Split at bit 61: prod = hi * 2^61 + lo, and 2^61 = 1 mod p.
  uint64_t lo = static_cast<uint64_t>(prod) & kP;
  uint64_t hi = static_cast<uint64_t>(prod >> 61);
  uint64_t r = lo + (hi & kP) + (hi >> 61);
  r = (r & kP) + (r >> 61);
  if (r >= kP) r -= kP;
  return r;
}

/// a^e by binary exponentiation.
uint64_t Pow(uint64_t a, uint64_t e);

/// Multiplicative inverse; a must be non-zero.
uint64_t Inv(uint64_t a);

/// Maps a signed integer with |v| < p/2 into the field.
inline uint64_t FromInt64(int64_t v) {
  return v >= 0 ? Reduce(static_cast<uint64_t>(v))
                : Neg(Reduce(static_cast<uint64_t>(-v)));
}

/// Inverse of FromInt64: elements below p/2 are non-negative, the rest map
/// to negative integers.
inline int64_t ToInt64(uint64_t a) {
  LPS_DCHECK(a < kP);
  return a <= kP / 2 ? static_cast<int64_t>(a)
                     : -static_cast<int64_t>(kP - a);
}

}  // namespace lps::gf61
