// Transposed Vandermonde solver over GF(2^61 - 1).
//
// Sparse recovery produces power-sum syndromes T_r = sum_j v_j a_j^r for
// known distinct nodes a_j; recovering the values v_j means solving the
// transposed Vandermonde system V^T v = T. The classical O(k^2) method is
// used: with A(x) = prod_j (x - a_j) and L_j(x) = A(x) / (x - a_j),
//
//   sum_r L_j[r] * T_r = v_j * L_j(a_j) = v_j * A'(a_j),
//
// because L_j vanishes at every node except a_j.
#pragma once

#include <cstdint>
#include <vector>

namespace lps::field {

/// Solves sum_j nodes[j]^r * v[j] = rhs[r] for r in [0, k). Nodes must be
/// distinct; rhs.size() must be >= nodes.size() (extra rows are ignored).
std::vector<uint64_t> SolveTransposedVandermonde(
    const std::vector<uint64_t>& nodes, const std::vector<uint64_t>& rhs);

}  // namespace lps::field
