#include "src/prg/random_source.h"

#include "src/field/gf61.h"
#include "src/util/random.h"

namespace lps::prg {

namespace gf = ::lps::gf61;

double RandomSource::Uniform01(uint64_t index) const {
  return static_cast<double>(Word(index)) / static_cast<double>(gf::kP);
}

uint64_t OracleSource::Word(uint64_t index) const {
  // Rejection-free mapping into [0, p): p = 2^61 - 1, so taking 61 bits and
  // reducing introduces bias < 2^-60, far below every tolerance in use.
  return gf::Reduce(Mix64(seed_ ^ (index * 0x9e3779b97f4a7c15ULL)) &
                    ((1ULL << 61) - 1));
}

uint64_t NisanSource::Word(uint64_t index) const {
  return prg_.Block(index % prg_.num_blocks());
}

}  // namespace lps::prg
