// Pluggable randomness backend for algorithms analyzed in the random-oracle
// model and then derandomized with Nisan's PRG (Theorem 2).
//
// Algorithms address their random string as an array of 61-bit words. Two
// backends are provided:
//   - OracleSource: a hash-based "free random oracle" (the model the
//     paper's lower bounds allow the adversary's algorithm);
//   - NisanSource: words read from Nisan PRG output blocks, making the
//     total true randomness O(log^2 n) as Theorem 2 requires.
// Both are deterministic given their seed, so every experiment comparing
// the two modes (claim C16) is reproducible.
#pragma once

#include <cstdint>
#include <memory>

#include "src/prg/nisan.h"

namespace lps::prg {

class RandomSource {
 public:
  virtual ~RandomSource() = default;

  /// Word `index` of the random string: uniform in [0, 2^61 - 1).
  virtual uint64_t Word(uint64_t index) const = 0;

  /// Uniform double in [0, 1) derived from word `index`.
  double Uniform01(uint64_t index) const;

  /// Number of true random bits backing this source (paper accounting).
  virtual size_t SeedBits() const = 0;
};

/// Random oracle: every word is an independent uniform value derived by
/// mixing the seed with the index.
class OracleSource : public RandomSource {
 public:
  explicit OracleSource(uint64_t seed) : seed_(seed) {}
  uint64_t Word(uint64_t index) const override;
  size_t SeedBits() const override { return 64; }

 private:
  uint64_t seed_;
};

/// Words are blocks of a Nisan generator with 2^levels blocks.
class NisanSource : public RandomSource {
 public:
  NisanSource(int levels, uint64_t seed) : prg_(levels, seed) {}
  uint64_t Word(uint64_t index) const override;
  size_t SeedBits() const override { return prg_.SeedBits(); }

 private:
  NisanPrg prg_;
};

}  // namespace lps::prg
