#include "src/prg/nisan.h"

#include "src/field/gf61.h"
#include "src/util/check.h"

namespace lps::prg {

namespace gf = ::lps::gf61;

NisanPrg::NisanPrg(int levels, uint64_t seed) : levels_(levels) {
  LPS_CHECK(levels >= 0 && levels < 63);
  Rng rng(seed);
  x0_ = rng.Below(gf::kP);
  a_.resize(static_cast<size_t>(levels));
  b_.resize(static_cast<size_t>(levels));
  for (int j = 0; j < levels; ++j) {
    // a_j != 0 makes h_j a permutation, which slightly strengthens the
    // generator and costs nothing.
    a_[j] = 1 + rng.Below(gf::kP - 1);
    b_[j] = rng.Below(gf::kP);
  }
}

uint64_t NisanPrg::Block(uint64_t index) const {
  LPS_CHECK(index < num_blocks());
  // Walk the recursion G_j(x) = G_{j-1}(x) . G_{j-1}(h_j(x)) from the top
  // level down: bit (j-1) of index (counting from the most significant
  // level) selects the right half, i.e. applies h_j.
  uint64_t x = x0_;
  for (int j = levels_; j >= 1; --j) {
    const uint64_t half = 1ULL << (j - 1);
    if (index >= half) {
      x = gf::Add(gf::Mul(a_[static_cast<size_t>(j - 1)], x),
                  b_[static_cast<size_t>(j - 1)]);
      index -= half;
    }
  }
  return x;
}

}  // namespace lps::prg
