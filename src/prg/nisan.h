// Nisan's pseudorandom generator for space-bounded computation [25].
//
// The generator stretches a seed of O(log^2 n) bits to poly(n) output bits
// that fool every O(log n)-space tester. Theorem 2 uses it to derandomize
// the L0 sampler: the random subsets I_k and the final uniform choice are
// read from the generator's output instead of a random oracle, bringing the
// total randomness (and hence the space to store it) down to O(log^2 n).
//
// Construction: the seed is an initial block x of w bits plus `levels`
// pairwise-independent hash functions h_1..h_k on w-bit blocks. The output
// is defined recursively as
//
//   G_0(x)  = x
//   G_j(x)  = G_{j-1}(x) . G_{j-1}(h_j(x))
//
// giving 2^levels blocks of w bits, where block `idx` is computed in
// O(levels) hash evaluations by walking the recursion tree: the bit
// decomposition of idx selects which h_j to apply. Blocks are field
// elements of GF(2^61 - 1), so w = 61 and each h_j(x) = a_j x + b_j mod p
// is a bona fide pairwise-independent permutation family.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/util/random.h"

namespace lps::prg {

class NisanPrg {
 public:
  /// Creates a generator with 2^levels output blocks of 61 bits each.
  /// The seed material (initial block + 2*levels field elements) is expanded
  /// deterministically from `seed`.
  NisanPrg(int levels, uint64_t seed);

  /// Returns output block `index` (61 usable bits), index < 2^levels.
  uint64_t Block(uint64_t index) const;

  /// Number of output blocks.
  uint64_t num_blocks() const { return 1ULL << levels_; }

  /// Seed length in bits under the paper's accounting:
  /// (2 * levels + 1) field elements of 61 bits — O(log^2 n) when
  /// levels = O(log n).
  size_t SeedBits() const { return (2 * static_cast<size_t>(levels_) + 1) * 61; }

 private:
  int levels_;
  uint64_t x0_;                  // initial block
  std::vector<uint64_t> a_, b_;  // h_j(x) = a_j * x + b_j over GF(p)
};

}  // namespace lps::prg
