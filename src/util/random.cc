#include "src/util/random.h"

#include <cmath>

#include "src/util/check.h"

namespace lps {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Mix64(uint64_t x) {
  uint64_t s = x;
  return SplitMix64(s);
}

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // Seed the four state words from splitmix64, per the xoshiro authors'
  // recommendation; guards against the all-zero state.
  uint64_t s = seed;
  for (auto& word : s_) word = SplitMix64(s);
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Below(uint64_t bound) {
  LPS_CHECK(bound > 0);
  // Lemire's method: multiply-shift with rejection to remove modulo bias.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDoublePositive() {
  return (static_cast<double>(Next() >> 11) + 1.0) * 0x1.0p-53;
}

double Rng::NextGaussian() {
  const double u = NextDoublePositive();
  const double v = NextDouble();
  return std::sqrt(-2.0 * std::log(u)) *
         std::cos(2.0 * 3.141592653589793238462643383279502884 * v);
}

double Rng::NextExponential() { return -std::log(NextDoublePositive()); }

}  // namespace lps
