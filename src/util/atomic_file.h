// Crash-safe file publication. Every durable artifact in the repo (saved
// sketch state, checkpoint-store segments, server snapshots) goes through
// AtomicWriteFile: write to a temporary sibling, fsync it, rename over the
// destination, then fsync the containing directory. Readers therefore see
// either the old file or the complete new one — never a torn write — which
// is the invariant the checkpoint store's recovery scan relies on.
#pragma once

#include <cstdint>
#include <string>

#include "src/util/status.h"

namespace lps {

/// Atomically replaces `path` with `size` bytes from `data` using the
/// tmp + fsync + rename protocol. The temporary lives in the same
/// directory as `path` (rename(2) is only atomic within a filesystem).
Status AtomicWriteFile(const std::string& path, const void* data,
                       size_t size);

/// Creates `path` (and missing parents) as directories. OK if it already
/// exists as a directory.
Status EnsureDirectory(const std::string& path);

/// fsyncs the directory containing `path`, making a completed rename
/// durable. Best-effort: returns OK on platforms where directories cannot
/// be opened for fsync.
Status SyncParentDirectory(const std::string& path);

}  // namespace lps
