#include "src/util/atomic_file.h"

#include <errno.h>
#include <fcntl.h>
#include <stdio.h>
#include <string.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <string>

namespace lps {

namespace {

std::string ParentOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status Errno(const std::string& what, const std::string& path) {
  return Status::InvalidArgument(what + " " + path + ": " + strerror(errno));
}

}  // namespace

Status AtomicWriteFile(const std::string& path, const void* data,
                       size_t size) {
  // The temporary must be a sibling so the final rename stays within one
  // filesystem. Suffix with the pid so two processes publishing the same
  // path (e.g. a snapshot race during shutdown) cannot corrupt each
  // other's temporary; the rename itself is last-writer-wins either way.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(getpid()));
  const int fd = open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("cannot open for writing", tmp);

  const char* p = static_cast<const char*>(data);
  size_t left = size;
  while (left > 0) {
    const ssize_t n = write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      close(fd);
      unlink(tmp.c_str());
      return Errno("short write", tmp);
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  if (fsync(fd) != 0) {
    close(fd);
    unlink(tmp.c_str());
    return Errno("fsync failed", tmp);
  }
  if (close(fd) != 0) {
    unlink(tmp.c_str());
    return Errno("close failed", tmp);
  }
  if (rename(tmp.c_str(), path.c_str()) != 0) {
    unlink(tmp.c_str());
    return Errno("rename failed", path);
  }
  return SyncParentDirectory(path);
}

Status EnsureDirectory(const std::string& path) {
  if (path.empty()) return Status::InvalidArgument("empty directory path");
  std::string prefix;
  size_t start = 0;
  if (path[0] == '/') {
    prefix = "/";
    start = 1;
  }
  while (start <= path.size()) {
    size_t slash = path.find('/', start);
    if (slash == std::string::npos) slash = path.size();
    if (slash > start) {
      prefix.append(path, start, slash - start);
      if (mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
        return Errno("mkdir failed", prefix);
      }
      prefix.push_back('/');
    }
    start = slash + 1;
  }
  struct stat st;
  if (stat(path.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    return Status::InvalidArgument("not a directory: " + path);
  }
  return Status::OK();
}

Status SyncParentDirectory(const std::string& path) {
  const std::string dir = ParentOf(path);
  const int fd = open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Status::OK();  // best-effort on exotic filesystems
  const int rc = fsync(fd);
  close(fd);
  if (rc != 0 && errno != EINVAL && errno != EROFS) {
    return Errno("directory fsync failed", dir);
  }
  return Status::OK();
}

}  // namespace lps
