// Invariant-checking macros, modeled on the assertion style used in
// production database engines: checks are active in all build types because
// sketch code silently producing wrong answers is far worse than aborting.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace lps {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "LPS_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace internal
}  // namespace lps

/// Aborts the process with a diagnostic if `cond` is false. Used for
/// programmer errors (bad arguments, violated invariants), never for
/// data-dependent conditions, which go through Status instead.
#define LPS_CHECK(cond)                                         \
  do {                                                          \
    if (!(cond)) {                                              \
      ::lps::internal::CheckFailed(__FILE__, __LINE__, #cond);  \
    }                                                           \
  } while (0)

#define LPS_DCHECK(cond) LPS_CHECK(cond)
