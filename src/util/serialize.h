// Bit-exact serialization used by the communication-complexity harness and
// by the sketches' full-state wire format. Protocol messages and saved
// sketch state are encoded through BitWriter so that the reported message
// sizes are true bit counts — this is what the paper's lower bounds
// constrain, so the accounting must be exact, not sizeof-based.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/check.h"
#include "src/util/status.h"

namespace lps {

/// Append-only bit stream writer.
class BitWriter {
 public:
  BitWriter() = default;

  /// Writes the low `bits` bits of `value` (LSB first). bits in [0, 64].
  void WriteBits(uint64_t value, int bits);

  /// Writes a full 64-bit word.
  void WriteU64(uint64_t value) { WriteBits(value, 64); }

  /// Writes a double bit-for-bit (64 bits).
  void WriteDouble(double value);

  /// Writes a non-negative integer known to be < bound using
  /// ceil(log2(bound)) bits.
  void WriteBounded(uint64_t value, uint64_t bound);

  /// Total number of bits written so far.
  size_t bit_count() const { return bit_count_; }

  const std::vector<uint64_t>& words() const { return words_; }

 private:
  std::vector<uint64_t> words_;
  size_t bit_count_ = 0;
};

/// Reader over a bit stream: either a non-owning view of a live BitWriter
/// (the in-process protocol path) or an owning buffer (state loaded from a
/// file, which must outlive no one).
class BitReader {
 public:
  /// Non-owning view; `writer` must outlive this reader.
  explicit BitReader(const BitWriter& writer)
      : words_(&writer.words()), total_bits_(writer.bit_count()) {}

  /// Owning buffer: the reader keeps the words alive itself. `bit_count`
  /// must fit in words.size() * 64 bits.
  BitReader(std::vector<uint64_t> words, size_t bit_count);

  // Owning readers hold an internal pointer into owned_; moves repoint it.
  BitReader(BitReader&& other) noexcept;
  BitReader& operator=(BitReader&& other) noexcept;
  BitReader(const BitReader&) = delete;
  BitReader& operator=(const BitReader&) = delete;

  uint64_t ReadBits(int bits);
  uint64_t ReadU64() { return ReadBits(64); }
  double ReadDouble();
  uint64_t ReadBounded(uint64_t bound);

  /// Returns the read position to the start of the stream (e.g. after
  /// peeking a serialized sketch's kind tag).
  void Rewind() { position_ = 0; }

  size_t bits_remaining() const { return total_bits_ - position_; }

  /// Overrun policy. By default a read past the end of the stream is a
  /// programming error (LPS_CHECK aborts). A PERMISSIVE reader instead
  /// records the overrun and returns 0 for that and every later read —
  /// the mode for bytes that arrive from an untrusted peer, where a
  /// stream that lies about its length must surface as failed(), never
  /// as a CHECK abort (the sketch server decodes every request body
  /// through a permissive reader).
  void set_permissive(bool permissive) { permissive_ = permissive; }
  /// True once any read overran the stream, or a decoder called Fail()
  /// after pre-validating a claimed element count. Sticky.
  bool failed() const { return failed_; }
  /// Marks the stream failed and exhausts it, so later reads return 0
  /// instead of walking an arbitrarily large claimed count.
  void Fail() {
    failed_ = true;
    position_ = total_bits_;
  }

 private:
  std::vector<uint64_t> owned_;  // empty for the non-owning view
  const std::vector<uint64_t>* words_;
  size_t total_bits_;
  size_t position_ = 0;
  bool permissive_ = false;
  bool failed_ = false;
};

/// Writes a BitWriter's contents to `path` in a self-describing binary
/// container (magic, bit count, packed words), so serialized sketch state
/// round-trips through disk for the CLI save/load/merge commands.
Status WriteBitsToFile(const BitWriter& writer, const std::string& path);

/// Reads a file written by WriteBitsToFile into an owning BitReader.
Result<BitReader> ReadBitsFromFile(const std::string& path);

}  // namespace lps
