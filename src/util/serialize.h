// Bit-exact serialization used by the communication-complexity harness.
// Protocol messages are encoded through BitWriter so that the reported
// message sizes are true bit counts — this is what the paper's lower bounds
// constrain, so the accounting must be exact, not sizeof-based.
#pragma once

#include <cstdint>
#include <vector>

#include "src/util/check.h"

namespace lps {

/// Append-only bit stream writer.
class BitWriter {
 public:
  BitWriter() = default;

  /// Writes the low `bits` bits of `value` (LSB first). bits in [0, 64].
  void WriteBits(uint64_t value, int bits);

  /// Writes a full 64-bit word.
  void WriteU64(uint64_t value) { WriteBits(value, 64); }

  /// Writes a double bit-for-bit (64 bits).
  void WriteDouble(double value);

  /// Writes a non-negative integer known to be < bound using
  /// ceil(log2(bound)) bits.
  void WriteBounded(uint64_t value, uint64_t bound);

  /// Total number of bits written so far.
  size_t bit_count() const { return bit_count_; }

  const std::vector<uint64_t>& words() const { return words_; }

 private:
  std::vector<uint64_t> words_;
  size_t bit_count_ = 0;
};

/// Reader over a BitWriter's buffer.
class BitReader {
 public:
  explicit BitReader(const BitWriter& writer)
      : words_(writer.words()), total_bits_(writer.bit_count()) {}

  uint64_t ReadBits(int bits);
  uint64_t ReadU64() { return ReadBits(64); }
  double ReadDouble();
  uint64_t ReadBounded(uint64_t bound);

  size_t bits_remaining() const { return total_bits_ - position_; }

 private:
  const std::vector<uint64_t>& words_;
  size_t total_bits_;
  size_t position_ = 0;
};

}  // namespace lps
