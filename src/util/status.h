// Minimal Status / Result<T> error-handling types in the RocksDB/Arrow
// idiom: library code on hot paths never throws; recoverable,
// data-dependent outcomes (a sampler failing, a recovery reporting DENSE)
// are values, not exceptions.
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "src/util/check.h"

namespace lps {

/// Status codes for recoverable outcomes of streaming primitives.
enum class Code {
  kOk = 0,
  /// The randomized algorithm declared failure (paper: "output FAIL").
  kFailed,
  /// Sparse recovery determined the vector is not s-sparse ("DENSE").
  kDense,
  /// Caller error: bad argument.
  kInvalidArgument,
};

/// A success/error outcome with an optional message. Cheap to copy on the
/// success path (no allocation).
class Status {
 public:
  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status Failed(std::string msg = "") {
    return Status(Code::kFailed, std::move(msg));
  }
  static Status Dense(std::string msg = "") {
    return Status(Code::kDense, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsFailed() const { return code_ == Code::kFailed; }
  bool IsDense() const { return code_ == Code::kDense; }

  std::string ToString() const {
    switch (code_) {
      case Code::kOk:
        return "OK";
      case Code::kFailed:
        return "FAILED: " + message_;
      case Code::kDense:
        return "DENSE: " + message_;
      case Code::kInvalidArgument:
        return "InvalidArgument: " + message_;
    }
    return "Unknown";
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// Result<T> holds either a value or a non-OK Status.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}       // NOLINT(runtime/explicit)
  Result(Status status) : v_(std::move(status)) {  // NOLINT(runtime/explicit)
    LPS_CHECK(!std::get<Status>(v_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  const T& value() const {
    LPS_CHECK(ok());
    return std::get<T>(v_);
  }
  T& value() {
    LPS_CHECK(ok());
    return std::get<T>(v_);
  }
  const T& operator*() const { return value(); }
  const T* operator->() const { return &value(); }

  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(v_);
  }

 private:
  std::variant<T, Status> v_;
};

}  // namespace lps
