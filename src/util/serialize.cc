#include "src/util/serialize.h"

#include <cstdio>
#include <cstring>

#include "src/util/atomic_file.h"
#include "src/util/bits.h"

namespace lps {

namespace {

// Container magic for on-disk bit streams ("LPSB" little-endian).
constexpr uint64_t kFileMagic = 0x4250534CULL;

}  // namespace

void BitWriter::WriteBits(uint64_t value, int bits) {
  LPS_CHECK(bits >= 0 && bits <= 64);
  if (bits == 0) return;
  if (bits < 64) value &= (1ULL << bits) - 1;
  const size_t word_index = bit_count_ >> 6;
  const int offset = static_cast<int>(bit_count_ & 63);
  if (word_index >= words_.size()) words_.push_back(0);
  words_[word_index] |= value << offset;
  if (offset + bits > 64) {
    words_.push_back(value >> (64 - offset));
  }
  bit_count_ += static_cast<size_t>(bits);
}

void BitWriter::WriteDouble(double value) {
  uint64_t raw;
  std::memcpy(&raw, &value, sizeof(raw));
  WriteBits(raw, 64);
}

void BitWriter::WriteBounded(uint64_t value, uint64_t bound) {
  LPS_CHECK(value < bound);
  WriteBits(value, BitWidth(bound));
}

BitReader::BitReader(std::vector<uint64_t> words, size_t bit_count)
    : owned_(std::move(words)), words_(&owned_), total_bits_(bit_count) {
  LPS_CHECK(bit_count <= owned_.size() * 64);
}

BitReader::BitReader(BitReader&& other) noexcept
    : owned_(std::move(other.owned_)),
      words_(other.words_ == &other.owned_ ? &owned_ : other.words_),
      total_bits_(other.total_bits_), position_(other.position_),
      permissive_(other.permissive_), failed_(other.failed_) {}

BitReader& BitReader::operator=(BitReader&& other) noexcept {
  if (this != &other) {
    const bool owning = other.words_ == &other.owned_;
    owned_ = std::move(other.owned_);
    words_ = owning ? &owned_ : other.words_;
    total_bits_ = other.total_bits_;
    position_ = other.position_;
    permissive_ = other.permissive_;
    failed_ = other.failed_;
  }
  return *this;
}

uint64_t BitReader::ReadBits(int bits) {
  LPS_CHECK(bits >= 0 && bits <= 64);
  if (bits == 0) return 0;
  if (position_ + static_cast<size_t>(bits) > total_bits_) {
    LPS_CHECK(permissive_);
    Fail();
    return 0;
  }
  const std::vector<uint64_t>& words = *words_;
  const size_t word_index = position_ >> 6;
  const int offset = static_cast<int>(position_ & 63);
  uint64_t value = words[word_index] >> offset;
  if (offset + bits > 64) {
    value |= words[word_index + 1] << (64 - offset);
  }
  if (bits < 64) value &= (1ULL << bits) - 1;
  position_ += static_cast<size_t>(bits);
  return value;
}

double BitReader::ReadDouble() {
  uint64_t raw = ReadBits(64);
  double value;
  std::memcpy(&value, &raw, sizeof(value));
  return value;
}

uint64_t BitReader::ReadBounded(uint64_t bound) {
  return ReadBits(BitWidth(bound));
}

Status WriteBitsToFile(const BitWriter& writer, const std::string& path) {
  // Publish atomically (tmp + fsync + rename): a crash mid-save leaves
  // the previous file intact instead of a torn container.
  const auto& words = writer.words();
  std::vector<uint64_t> image(2 + words.size());
  image[0] = kFileMagic;
  image[1] = writer.bit_count();
  if (!words.empty()) {
    std::memcpy(image.data() + 2, words.data(),
                words.size() * sizeof(uint64_t));
  }
  return AtomicWriteFile(path, image.data(), image.size() * sizeof(uint64_t));
}

Result<BitReader> ReadBitsFromFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open for reading: " + path);
  }
  uint64_t header[2];
  if (std::fread(header, sizeof(uint64_t), 2, f) != 2 ||
      header[0] != kFileMagic) {
    std::fclose(f);
    return Status::InvalidArgument("not an lps bit-stream file: " + path);
  }
  const uint64_t bit_count = header[1];
  const size_t num_words = static_cast<size_t>((bit_count + 63) / 64);
  // Validate the declared length against the actual file size before
  // allocating, so a corrupt header yields a clean error, not an
  // arbitrarily large allocation.
  if (std::fseek(f, 0, SEEK_END) != 0 ||
      static_cast<uint64_t>(std::ftell(f)) !=
          (2 + static_cast<uint64_t>(num_words)) * sizeof(uint64_t) ||
      std::fseek(f, 2 * sizeof(uint64_t), SEEK_SET) != 0) {
    std::fclose(f);
    return Status::InvalidArgument("truncated bit-stream file: " + path);
  }
  std::vector<uint64_t> words(num_words);
  const bool ok =
      num_words == 0 ||
      std::fread(words.data(), sizeof(uint64_t), num_words, f) == num_words;
  std::fclose(f);
  if (!ok) return Status::InvalidArgument("truncated bit-stream file: " + path);
  return BitReader(std::move(words), static_cast<size_t>(bit_count));
}

}  // namespace lps
