#include "src/util/serialize.h"

#include <cstring>

#include "src/util/bits.h"

namespace lps {

void BitWriter::WriteBits(uint64_t value, int bits) {
  LPS_CHECK(bits >= 0 && bits <= 64);
  if (bits == 0) return;
  if (bits < 64) value &= (1ULL << bits) - 1;
  const size_t word_index = bit_count_ >> 6;
  const int offset = static_cast<int>(bit_count_ & 63);
  if (word_index >= words_.size()) words_.push_back(0);
  words_[word_index] |= value << offset;
  if (offset + bits > 64) {
    words_.push_back(value >> (64 - offset));
  }
  bit_count_ += static_cast<size_t>(bits);
}

void BitWriter::WriteDouble(double value) {
  uint64_t raw;
  std::memcpy(&raw, &value, sizeof(raw));
  WriteBits(raw, 64);
}

void BitWriter::WriteBounded(uint64_t value, uint64_t bound) {
  LPS_CHECK(value < bound);
  WriteBits(value, BitWidth(bound));
}

uint64_t BitReader::ReadBits(int bits) {
  LPS_CHECK(bits >= 0 && bits <= 64);
  if (bits == 0) return 0;
  LPS_CHECK(position_ + static_cast<size_t>(bits) <= total_bits_);
  const size_t word_index = position_ >> 6;
  const int offset = static_cast<int>(position_ & 63);
  uint64_t value = words_[word_index] >> offset;
  if (offset + bits > 64) {
    value |= words_[word_index + 1] << (64 - offset);
  }
  if (bits < 64) value &= (1ULL << bits) - 1;
  position_ += static_cast<size_t>(bits);
  return value;
}

double BitReader::ReadDouble() {
  uint64_t raw = ReadBits(64);
  double value;
  std::memcpy(&value, &raw, sizeof(value));
  return value;
}

uint64_t BitReader::ReadBounded(uint64_t bound) {
  return ReadBits(BitWidth(bound));
}

}  // namespace lps
