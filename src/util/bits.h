// Small bit-manipulation helpers shared across modules.
#pragma once

#include <cstdint>

namespace lps {

/// Leading zero count; defined for x != 0 (C++17 stand-in for
/// std::countl_zero).
inline int CountLeadingZeros(uint64_t x) { return __builtin_clzll(x); }

/// ceil(log2(x)) for x >= 1; 0 for x == 1.
inline int CeilLog2(uint64_t x) {
  return x <= 1 ? 0 : 64 - CountLeadingZeros(x - 1);
}

/// floor(log2(x)) for x >= 1.
inline int FloorLog2(uint64_t x) { return 63 - CountLeadingZeros(x); }

/// Smallest power of two >= x.
inline uint64_t NextPow2(uint64_t x) { return x <= 1 ? 1 : 1ULL << CeilLog2(x); }

/// Number of bits needed to represent values in [0, n): ceil(log2(n)).
inline int BitWidth(uint64_t n) { return n <= 1 ? 1 : CeilLog2(n); }

}  // namespace lps
