// Deterministic pseudo-random number generation used as the "random oracle"
// of the paper's model. Every randomized component in the library takes an
// explicit 64-bit seed so that all tests and benchmarks are reproducible.
//
// splitmix64 is used for seed expansion (it is an excellent one-shot mixer)
// and xoshiro256++ as the general-purpose stream generator.
#pragma once

#include <cstdint>

namespace lps {

/// One round of the splitmix64 mixer. Maps a counter to a well-mixed 64-bit
/// value; also the standard way to seed xoshiro state from one word.
uint64_t SplitMix64(uint64_t& state);

/// Stateless mix of a single value (finalizer of splitmix64).
uint64_t Mix64(uint64_t x);

/// xoshiro256++ generator (Blackman & Vigna). Passes BigCrush; small state.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit word.
  uint64_t Next();

  /// Uniform integer in [0, bound), bound > 0. Uses Lemire's unbiased
  /// multiply-shift rejection method.
  uint64_t Below(uint64_t bound);

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Uniform double in (0, 1]: never returns 0, suitable for 1/t scalings.
  double NextDoublePositive();

  /// Standard normal via Box-Muller (no cached spare; both values derived
  /// fresh each call for reproducibility under interleaving).
  double NextGaussian();

  /// Standard exponential, rate 1.
  double NextExponential();

 private:
  uint64_t s_[4];
};

}  // namespace lps
