#include "src/api/query_result.h"

#include <cstdarg>
#include <cstdio>

#include "src/apps/moment_estimation.h"
#include "src/core/ako_sampler.h"
#include "src/core/fis_l0_sampler.h"
#include "src/core/l0_sampler.h"
#include "src/core/lp_sampler.h"
#include "src/duplicates/duplicates.h"
#include "src/duplicates/positive_finder.h"
#include "src/heavy/heavy_hitters.h"
#include "src/norm/l0_norm.h"
#include "src/norm/lp_norm.h"
#include "src/util/status.h"

namespace lps {

namespace {

std::string Printf(const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

QueryResult Answered(QueryResult::Type type, SketchKind kind) {
  QueryResult r;
  r.type = type;
  r.kind = kind;
  return r;
}

QueryResult FromSample(SketchKind kind, const Result<core::SampleResult>& res) {
  QueryResult r;
  r.kind = kind;
  if (!res.ok()) {
    r.type = QueryResult::Type::kFailed;
    r.message = res.status().ToString();
    return r;
  }
  r.type = QueryResult::Type::kSample;
  r.index = res.value().index;
  r.value = res.value().estimate;
  return r;
}

QueryResult FromHeavySet(SketchKind kind, std::vector<uint64_t> set) {
  QueryResult r = Answered(QueryResult::Type::kHeavyHitters, kind);
  r.items = std::move(set);
  return r;
}

QueryResult FromNorm(SketchKind kind, double value) {
  QueryResult r = Answered(QueryResult::Type::kNorm, kind);
  r.value = value;
  return r;
}

QueryResult DuplicateFound(SketchKind kind, uint64_t letter) {
  QueryResult r = Answered(QueryResult::Type::kDuplicate, kind);
  r.index = letter;
  return r;
}

QueryResult Fail(SketchKind kind, std::string message) {
  QueryResult r = Answered(QueryResult::Type::kFailed, kind);
  r.message = std::move(message);
  return r;
}

}  // namespace

std::string QueryResult::ToText() const {
  switch (type) {
    case Type::kSample:
      // The L0 family reports the sampled coordinate's EXACT value; the
      // Lp family an estimate. The two historical CLI lines are kept
      // byte-for-byte.
      if (kind == SketchKind::kL0Sampler || kind == SketchKind::kFisL0Sampler) {
        return Printf("index %llu value %.0f\n",
                      static_cast<unsigned long long>(index), value);
      }
      return Printf("index %llu estimate %.3f\n",
                    static_cast<unsigned long long>(index), value);
    case Type::kHeavyHitters: {
      std::string text = Printf("%zu heavy hitters:", items.size());
      for (uint64_t i : items) {
        text += Printf(" %llu", static_cast<unsigned long long>(i));
      }
      text += "\n";
      return text;
    }
    case Type::kNorm:
      if (kind == SketchKind::kL0Estimator) {
        return Printf("L0 %.6g   ((1-eps) L0 <= est <= (1+eps) L0 w.h.p.)\n",
                      value);
      }
      if (kind == SketchKind::kMomentEstimator) {
        return Printf("F_p %.6g\n", value);
      }
      return Printf("r %.6g   (||x||_p <= r <= 2 ||x||_p w.h.p.)\n", value);
    case Type::kDuplicate:
      return Printf("duplicate %llu\n", static_cast<unsigned long long>(index));
    case Type::kFailed:
      return Printf("FAIL %s\n", message.c_str());
    case Type::kUnsupported:
      return Printf("no query for kind '%s'\n", SketchKindName(kind));
  }
  return "";
}

int QueryResult::ExitCode() const {
  if (type == Type::kUnsupported) return 2;
  return type == Type::kFailed ? 1 : 0;
}

bool QueryResult::operator==(const QueryResult& o) const {
  return type == o.type && kind == o.kind && index == o.index &&
         value == o.value && items == o.items && message == o.message;
}

QueryResult Query(const LinearSketch& sketch) {
  switch (sketch.kind()) {
    case SketchKind::kLpSampler:
      return FromSample(
          sketch.kind(),
          static_cast<const core::LpSampler&>(sketch).Sample());
    case SketchKind::kAkoSampler:
      return FromSample(
          sketch.kind(),
          static_cast<const core::AkoSampler&>(sketch).Sample());
    case SketchKind::kL0Sampler:
      return FromSample(
          sketch.kind(),
          static_cast<const core::L0Sampler&>(sketch).Sample());
    case SketchKind::kFisL0Sampler:
      return FromSample(
          sketch.kind(),
          static_cast<const core::FisL0Sampler&>(sketch).Sample());
    case SketchKind::kCsHeavyHitters:
      return FromHeavySet(
          sketch.kind(),
          static_cast<const heavy::CsHeavyHitters&>(sketch).Query());
    case SketchKind::kCmHeavyHitters:
      return FromHeavySet(
          sketch.kind(),
          static_cast<const heavy::CmHeavyHitters&>(sketch).Query());
    case SketchKind::kDyadicHeavyHitters:
      return FromHeavySet(
          sketch.kind(),
          static_cast<const heavy::DyadicHeavyHitters&>(sketch).Query());
    case SketchKind::kLpNormEstimator:
      return FromNorm(
          sketch.kind(),
          static_cast<const norm::LpNormEstimator&>(sketch).Estimate2Approx());
    case SketchKind::kL0Estimator:
      return FromNorm(sketch.kind(),
                      static_cast<const norm::L0Estimator&>(sketch).Estimate());
    case SketchKind::kMomentEstimator: {
      auto res = static_cast<const apps::MomentEstimator&>(sketch).Estimate();
      if (!res.ok()) return Fail(sketch.kind(), res.status().ToString());
      return FromNorm(sketch.kind(), res.value());
    }
    case SketchKind::kDuplicateFinder: {
      auto res = static_cast<const duplicates::DuplicateFinder&>(sketch).Find();
      if (!res.ok()) return Fail(sketch.kind(), res.status().ToString());
      return DuplicateFound(sketch.kind(), res.value());
    }
    case SketchKind::kSparseDuplicateFinder: {
      const auto outcome =
          static_cast<const duplicates::SparseDuplicateFinder&>(sketch).Find();
      using Kind = duplicates::SparseDuplicateFinder::Kind;
      if (outcome.kind == Kind::kDuplicate) {
        return DuplicateFound(sketch.kind(), outcome.duplicate);
      }
      if (outcome.kind == Kind::kNoDuplicate) {
        return Fail(sketch.kind(), Status::Failed("no duplicate").ToString());
      }
      return Fail(sketch.kind(), Status::Failed("").ToString());
    }
    case SketchKind::kPositiveFinder: {
      const auto outcome =
          static_cast<const duplicates::PositiveFinder&>(sketch).Find();
      using Kind = duplicates::PositiveFinder::Kind;
      if (outcome.kind == Kind::kFound) {
        return DuplicateFound(sketch.kind(), outcome.index);
      }
      if (outcome.kind == Kind::kNone) {
        return Fail(sketch.kind(), Status::Failed("no positive").ToString());
      }
      return Fail(sketch.kind(), Status::Failed("").ToString());
    }
    default: {
      QueryResult r;
      r.type = QueryResult::Type::kUnsupported;
      r.kind = sketch.kind();
      return r;
    }
  }
}

void SerializeQueryResult(const QueryResult& result, BitWriter* writer) {
  writer->WriteBits(static_cast<uint64_t>(result.type), 8);
  writer->WriteBits(static_cast<uint64_t>(result.kind), 8);
  writer->WriteU64(result.index);
  writer->WriteDouble(result.value);
  writer->WriteBits(result.items.size(), 32);
  for (uint64_t i : result.items) writer->WriteU64(i);
  writer->WriteBits(result.message.size(), 32);
  for (char c : result.message) {
    writer->WriteBits(static_cast<uint8_t>(c), 8);
  }
}

QueryResult DeserializeQueryResult(BitReader* reader) {
  QueryResult result;
  result.type = static_cast<QueryResult::Type>(reader->ReadBits(8));
  result.kind = static_cast<SketchKind>(reader->ReadBits(8));
  result.index = reader->ReadU64();
  result.value = reader->ReadDouble();
  // Claimed counts can come off the wire (the server's QUERY replies):
  // validate them against the bits actually present before reserving.
  const uint64_t items = reader->ReadBits(32);
  if (items > reader->bits_remaining() / 64) {
    reader->Fail();
    return result;
  }
  result.items.reserve(size_t(items));
  for (uint64_t i = 0; i < items; ++i) {
    result.items.push_back(reader->ReadU64());
  }
  const uint64_t len = reader->ReadBits(32);
  if (len * 8 > reader->bits_remaining()) {
    reader->Fail();
    return result;
  }
  result.message.reserve(size_t(len));
  for (uint64_t i = 0; i < len; ++i) {
    result.message.push_back(static_cast<char>(reader->ReadBits(8)));
  }
  return result;
}

}  // namespace lps
