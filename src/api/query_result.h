// QueryResult — the one answer type for every queryable structure.
//
// Before this layer, each consumer of a sketch answer re-implemented the
// per-kind unpacking: lps_cli dynamic_cast its way through five concrete
// types, each example called a differently-shaped method (Sample /
// Query / Estimate2Approx / Find), and a wire protocol would have had to
// invent a sixth encoding. QueryResult is the tagged union they all
// share, and Query(sketch) is the single dispatch point:
//
//     lps::QueryResult r = lps::Query(*sketch);   // any LinearSketch
//     if (r.ok()) std::fputs(r.ToText().c_str(), stdout);
//
// The CLI prints ToText() (byte-identical to its historical output — the
// CI smoke asserts the exact lines), the server serializes the result
// onto the wire with Serialize/DeserializeQueryResult, and tests compare
// results structurally. One source of truth for all three.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/stream/linear_sketch.h"
#include "src/util/serialize.h"

namespace lps {

struct QueryResult {
  /// Wire values — never renumber, only append (the server protocol
  /// serializes the tag).
  enum class Type : uint8_t {
    kSample = 1,        ///< index + value (a sampler's draw)
    kHeavyHitters = 2,  ///< items (sorted ascending)
    kNorm = 3,          ///< value (the norm estimate)
    kDuplicate = 4,     ///< index (a letter appearing twice)
    kFailed = 5,        ///< the randomized algorithm declared FAIL
    kUnsupported = 6,   ///< the kind has no query
  };

  Type type = Type::kUnsupported;
  /// The kind that produced the answer; drives ToText's formatting (the
  /// L0 sampler reports an exact "value", the Lp sampler an "estimate").
  SketchKind kind = SketchKind::kCountSketch;
  uint64_t index = 0;            ///< kSample, kDuplicate
  double value = 0.0;            ///< kSample (estimate), kNorm
  std::vector<uint64_t> items;   ///< kHeavyHitters
  std::string message;           ///< kFailed / kUnsupported diagnostic

  bool ok() const { return type != Type::kFailed && type != Type::kUnsupported; }

  /// The historical lps_cli line for this answer, newline-terminated —
  /// e.g. "index 42 estimate 60.000\n" or "3 heavy hitters: 1 5 9\n".
  /// kFailed renders as "FAIL <status>\n"; kUnsupported as the
  /// "no query for kind '<name>'\n" diagnostic.
  std::string ToText() const;

  /// Process exit code the CLI maps this result to: 0 answered, 1 FAIL,
  /// 2 unsupported.
  int ExitCode() const;

  bool operator==(const QueryResult& o) const;
  bool operator!=(const QueryResult& o) const { return !(*this == o); }
};

/// Runs the kind-appropriate query. Covers every queryable kind (both
/// sampler families, all three heavy-hitter classes, both norm
/// estimators, the duplicate finder, the moment estimator); any other
/// kind yields kUnsupported. NOTE: queries are logically const but not
/// concurrency-safe on one object (cached snapshots, in-place residual
/// estimation) — same contract as the underlying Sample()/Query().
QueryResult Query(const LinearSketch& sketch);

/// Bit-exact result encoding, shared by the server protocol.
void SerializeQueryResult(const QueryResult& result, BitWriter* writer);
QueryResult DeserializeQueryResult(BitReader* reader);

}  // namespace lps
