#include "src/api/sketch_spec.h"

#include <algorithm>
#include <cmath>

#include "src/field/gf61.h"
#include "src/apps/moment_estimation.h"
#include "src/core/ako_sampler.h"
#include "src/core/fis_l0_sampler.h"
#include "src/core/l0_sampler.h"
#include "src/core/lp_sampler.h"
#include "src/duplicates/duplicates.h"
#include "src/duplicates/positive_finder.h"
#include "src/heavy/heavy_hitters.h"
#include "src/norm/l0_norm.h"
#include "src/norm/lp_norm.h"
#include "src/recovery/one_sparse.h"
#include "src/recovery/sparse_recovery.h"
#include "src/sketch/ams_f2.h"
#include "src/sketch/count_min.h"
#include "src/sketch/count_sketch.h"
#include "src/sketch/dyadic.h"
#include "src/sketch/stable_sketch.h"
#include "src/util/bits.h"

namespace lps {

namespace {

// The dyadic structures take log2(universe); at least one level so the
// degenerate n <= 2 universes still construct.
int LogN(uint64_t n) {
  const uint64_t clamped = std::max<uint64_t>(n, 2);
  return std::max(1, CeilLog2(clamped));
}

int OrOne(uint32_t v) { return v == 0 ? 1 : static_cast<int>(v); }

core::LpSamplerParams LpParamsFromSpec(const SketchSpec& spec) {
  core::LpSamplerParams params;
  params.n = std::max<uint64_t>(spec.n, 1);
  params.p = spec.p;
  params.eps = spec.eps;
  params.delta = spec.delta;
  params.repetitions = static_cast<int>(spec.repetitions);
  params.cs_rows = static_cast<int>(spec.rows);
  params.m = static_cast<int>(spec.buckets);
  params.seed = spec.seed;
  return params;
}

SketchSpec SpecFromLpParams(SketchKind kind,
                            const core::LpSamplerParams& params) {
  SketchSpec spec;
  spec.kind = kind;
  spec.n = params.n;
  spec.p = params.p;
  spec.eps = params.eps;
  spec.delta = params.delta;
  // The resolved params reproduce the same sampler whatever the original
  // zero-valued fields were, so the round-trip pins them explicitly.
  spec.repetitions = static_cast<uint32_t>(params.repetitions);
  spec.rows = static_cast<uint32_t>(params.cs_rows);
  spec.buckets = static_cast<uint32_t>(params.m);
  spec.seed = params.seed;
  return spec;
}

}  // namespace

bool SketchSpec::operator==(const SketchSpec& o) const {
  return kind == o.kind && n == o.n && p == o.p && eps == o.eps &&
         delta == o.delta && phi == o.phi && rows == o.rows &&
         buckets == o.buckets && s == o.s && repetitions == o.repetitions &&
         seed == o.seed;
}

std::unique_ptr<LinearSketch> MakeSketch(const SketchSpec& spec) {
  const uint64_t n = std::max<uint64_t>(spec.n, 1);
  switch (spec.kind) {
    case SketchKind::kCountSketch:
      return std::make_unique<sketch::CountSketch>(
          OrOne(spec.rows), OrOne(spec.buckets), spec.seed);
    case SketchKind::kCountMin:
      return std::make_unique<sketch::CountMin>(
          OrOne(spec.rows), OrOne(spec.buckets), spec.seed);
    case SketchKind::kAmsF2:
      return std::make_unique<sketch::AmsF2>(OrOne(spec.rows),
                                             OrOne(spec.buckets), spec.seed);
    case SketchKind::kStableSketch:
      return std::make_unique<sketch::StableSketch>(spec.p, OrOne(spec.rows),
                                                    spec.seed);
    case SketchKind::kDyadicCountMin:
      return std::make_unique<sketch::DyadicCountMin>(
          LogN(spec.n), OrOne(spec.rows), OrOne(spec.buckets), spec.seed);
    case SketchKind::kDyadicCountSketch:
      return std::make_unique<sketch::DyadicCountSketch>(
          LogN(spec.n), OrOne(spec.rows), OrOne(spec.buckets), spec.seed);
    case SketchKind::kL0Estimator:
      return std::make_unique<norm::L0Estimator>(n, OrOne(spec.repetitions),
                                                 spec.seed);
    case SketchKind::kLpNormEstimator:
      return std::make_unique<norm::LpNormEstimator>(
          spec.p,
          spec.rows == 0 ? norm::LpNormEstimator::DefaultRows(n)
                         : static_cast<int>(spec.rows),
          spec.seed);
    case SketchKind::kOneSparse:
      return std::make_unique<recovery::OneSparse>(n, spec.seed);
    case SketchKind::kSparseRecovery:
      return std::make_unique<recovery::SparseRecovery>(
          n, std::max<uint64_t>(spec.s, 1), spec.seed);
    case SketchKind::kLpSampler:
      return std::make_unique<core::LpSampler>(LpParamsFromSpec(spec));
    case SketchKind::kL0Sampler:
      return std::make_unique<core::L0Sampler>(
          core::L0SamplerParams{n, spec.delta, spec.s, spec.seed, false});
    case SketchKind::kFisL0Sampler:
      return std::make_unique<core::FisL0Sampler>(
          n, spec.seed, static_cast<int>(spec.buckets));
    case SketchKind::kAkoSampler:
      return std::make_unique<core::AkoSampler>(LpParamsFromSpec(spec));
    case SketchKind::kCsHeavyHitters: {
      heavy::CsHeavyHitters::Params params;
      params.n = n;
      params.p = spec.p;
      params.phi = spec.phi;
      params.rows = static_cast<int>(spec.rows);
      params.seed = spec.seed;
      return std::make_unique<heavy::CsHeavyHitters>(params);
    }
    case SketchKind::kCmHeavyHitters: {
      heavy::CmHeavyHitters::Params params;
      params.n = n;
      params.phi = spec.phi;
      params.rows = static_cast<int>(spec.rows);
      params.seed = spec.seed;
      return std::make_unique<heavy::CmHeavyHitters>(params);
    }
    case SketchKind::kDyadicHeavyHitters:
      return std::make_unique<heavy::DyadicHeavyHitters>(LogN(spec.n),
                                                         spec.phi, spec.seed);
    case SketchKind::kDuplicateFinder:
      return std::make_unique<duplicates::DuplicateFinder>(
          duplicates::DuplicateFinder::Params{
              n, spec.delta, static_cast<int>(spec.repetitions), spec.seed});
    case SketchKind::kSparseDuplicateFinder: {
      duplicates::SparseDuplicateFinder::Params params;
      params.n = n;
      params.s = std::max<uint64_t>(spec.s, 1);
      params.delta = spec.delta;
      params.repetitions = static_cast<int>(spec.repetitions);
      params.seed = spec.seed;
      return std::make_unique<duplicates::SparseDuplicateFinder>(params);
    }
    case SketchKind::kPositiveFinder: {
      duplicates::PositiveFinder::Params params;
      params.n = n;
      if (spec.s != 0) params.s_budget = spec.s;
      params.delta = spec.delta;
      params.repetitions = static_cast<int>(spec.repetitions);
      params.seed = spec.seed;
      return std::make_unique<duplicates::PositiveFinder>(params);
    }
    case SketchKind::kMomentEstimator: {
      apps::MomentEstimator::Params params;
      params.n = n;
      if (spec.p > 2.0) params.p = spec.p;
      if (spec.repetitions != 0) {
        params.samples = static_cast<int>(spec.repetitions);
      }
      params.seed = spec.seed;
      return std::make_unique<apps::MomentEstimator>(params);
    }
  }
  return nullptr;
}

SketchSpec SpecOf(const LinearSketch& sketch) {
  SketchSpec spec;
  spec.kind = sketch.kind();
  if (const auto* lp = dynamic_cast<const core::LpSampler*>(&sketch)) {
    return SpecFromLpParams(SketchKind::kLpSampler, lp->params());
  }
  if (const auto* ako = dynamic_cast<const core::AkoSampler*>(&sketch)) {
    return SpecFromLpParams(SketchKind::kAkoSampler, ako->params());
  }
  if (const auto* l0 = dynamic_cast<const core::L0Sampler*>(&sketch)) {
    spec.n = l0->params().n;
    spec.delta = l0->params().delta;
    spec.s = l0->params().s;
    spec.seed = l0->params().seed;
    return spec;
  }
  if (const auto* hh = dynamic_cast<const heavy::CsHeavyHitters*>(&sketch)) {
    spec.n = hh->params().n;
    spec.p = hh->params().p;
    spec.phi = hh->params().phi;
    spec.rows = static_cast<uint32_t>(hh->params().rows);
    spec.seed = hh->params().seed;
    return spec;
  }
  if (const auto* cm = dynamic_cast<const heavy::CmHeavyHitters*>(&sketch)) {
    spec.n = cm->params().n;
    spec.phi = cm->params().phi;
    spec.rows = static_cast<uint32_t>(cm->params().rows);
    spec.seed = cm->params().seed;
    return spec;
  }
  if (const auto* est = dynamic_cast<const norm::LpNormEstimator*>(&sketch)) {
    spec.p = est->sketch().p();
    spec.rows = static_cast<uint32_t>(est->rows());
    spec.seed = est->sketch().seed();
    return spec;
  }
  if (const auto* dup =
          dynamic_cast<const duplicates::DuplicateFinder*>(&sketch)) {
    spec.n = dup->params().n;
    spec.delta = dup->params().delta;
    spec.repetitions = static_cast<uint32_t>(dup->params().repetitions);
    spec.seed = dup->params().seed;
    return spec;
  }
  // Internal kinds: the kind tag alone is still a valid (default-sized)
  // spec; callers that need exact reconstruction use Serialize, which
  // carries the full parameters.
  return spec;
}

Status ValidateSpec(const SketchSpec& spec) {
  // Mirrors the LPS_CHECK preconditions of the constructors MakeSketch
  // dispatches to (plus the MakeSketch zero-defaults), so a hostile
  // spec fails here as a Status instead of aborting inside a ctor.
  if (!std::isfinite(spec.p) || !std::isfinite(spec.eps) ||
      !std::isfinite(spec.delta) || !std::isfinite(spec.phi)) {
    return Status::InvalidArgument("spec has a non-finite parameter");
  }
  // Generous caps on the size fields: real sketches are polylogarithmic,
  // and the casts to int inside the params structs must stay positive.
  constexpr uint32_t kMaxDim = 1u << 20;
  constexpr uint64_t kMaxSparsity = 1ull << 22;
  if (spec.rows > kMaxDim || spec.buckets > kMaxDim ||
      spec.repetitions > kMaxDim) {
    return Status::InvalidArgument("spec rows/buckets/repetitions too large");
  }
  if (uint64_t(spec.rows) * spec.buckets > (1ull << 26)) {
    return Status::InvalidArgument("spec rows*buckets too large");
  }
  if (spec.s > kMaxSparsity) {
    return Status::InvalidArgument("spec sparsity budget too large");
  }
  const bool p_in_0_2_open = spec.p > 0 && spec.p < 2;
  const bool p_in_0_2_closed = spec.p > 0 && spec.p <= 2;
  const bool eps_ok = spec.eps > 0 && spec.eps < 1;
  const bool delta_ok = spec.delta > 0 && spec.delta < 1;
  const bool phi_ok = spec.phi > 0 && spec.phi < 1;
  // 2^61 - 1 is the GF fingerprinting modulus (SparseRecovery requires
  // n < p - 1); the dyadic trees require log2(universe) < 63.
  const bool n_fits_gf = spec.n < gf61::kP - 1;
  const bool n_fits_dyadic = spec.n <= (1ull << 62);
  switch (spec.kind) {
    case SketchKind::kCountSketch:
    case SketchKind::kCountMin:
    case SketchKind::kAmsF2:
    case SketchKind::kL0Estimator:
      return Status::OK();
    case SketchKind::kStableSketch:
    case SketchKind::kLpNormEstimator:
      if (!p_in_0_2_closed) {
        return Status::InvalidArgument("spec p must be in (0, 2]");
      }
      return Status::OK();
    case SketchKind::kDyadicCountMin:
    case SketchKind::kDyadicCountSketch:
      if (!n_fits_dyadic) {
        return Status::InvalidArgument("spec n too large for a dyadic tree");
      }
      return Status::OK();
    case SketchKind::kOneSparse:
    case SketchKind::kSparseRecovery:
      if (!n_fits_gf) {
        return Status::InvalidArgument(
            "spec n too large for GF fingerprinting");
      }
      return Status::OK();
    case SketchKind::kLpSampler:
    case SketchKind::kAkoSampler:
      if (!p_in_0_2_open) {
        return Status::InvalidArgument("spec p must be in (0, 2)");
      }
      if (!eps_ok) return Status::InvalidArgument("spec eps must be in (0, 1)");
      if (!delta_ok) {
        return Status::InvalidArgument("spec delta must be in (0, 1)");
      }
      return Status::OK();
    case SketchKind::kL0Sampler:
      if (!delta_ok) {
        return Status::InvalidArgument("spec delta must be in (0, 1)");
      }
      return Status::OK();
    case SketchKind::kFisL0Sampler:
      return Status::OK();
    case SketchKind::kCsHeavyHitters:
      if (!p_in_0_2_closed) {
        return Status::InvalidArgument("spec p must be in (0, 2]");
      }
      if (!phi_ok) return Status::InvalidArgument("spec phi must be in (0, 1)");
      return Status::OK();
    case SketchKind::kCmHeavyHitters:
      if (!phi_ok) return Status::InvalidArgument("spec phi must be in (0, 1)");
      return Status::OK();
    case SketchKind::kDyadicHeavyHitters:
      if (!phi_ok) return Status::InvalidArgument("spec phi must be in (0, 1)");
      if (!n_fits_dyadic) {
        return Status::InvalidArgument("spec n too large for a dyadic tree");
      }
      return Status::OK();
    case SketchKind::kDuplicateFinder:
      if (!delta_ok) {
        return Status::InvalidArgument("spec delta must be in (0, 1)");
      }
      return Status::OK();
    case SketchKind::kSparseDuplicateFinder:
    case SketchKind::kPositiveFinder:
      if (!delta_ok) {
        return Status::InvalidArgument("spec delta must be in (0, 1)");
      }
      if (!n_fits_gf) {
        return Status::InvalidArgument(
            "spec n too large for GF fingerprinting");
      }
      return Status::OK();
    case SketchKind::kMomentEstimator:
      return Status::OK();
  }
  return Status::InvalidArgument("unknown sketch kind");
}

uint64_t EnforcedUniverse(const SketchSpec& spec) {
  switch (spec.kind) {
    // These kinds (or a sampler/recovery structure inside them) check
    // index < n on every update; the bound is the same max(n, 1)
    // resolution MakeSketch applies.
    case SketchKind::kOneSparse:
    case SketchKind::kSparseRecovery:
    case SketchKind::kLpSampler:
    case SketchKind::kL0Sampler:
    case SketchKind::kFisL0Sampler:
    case SketchKind::kAkoSampler:
    case SketchKind::kDuplicateFinder:
    case SketchKind::kSparseDuplicateFinder:
    case SketchKind::kPositiveFinder:
    case SketchKind::kMomentEstimator:
    // The dyadic-decomposition kinds check index < 2^ceil(log2 n) at
    // every level; max(n, 1) is at most that, so enforcing it here
    // keeps the CHECK unreachable from the wire.
    case SketchKind::kDyadicCountMin:
    case SketchKind::kDyadicCountSketch:
    case SketchKind::kCsHeavyHitters:
    case SketchKind::kCmHeavyHitters:
    case SketchKind::kDyadicHeavyHitters:
      return std::max<uint64_t>(spec.n, 1);
    default:
      return 0;  // hashes arbitrary 64-bit indices
  }
}

Result<SketchKind> SketchKindFromName(const std::string& name) {
  // SketchKindName is the single source of the names; invert it by scan
  // (21 entries — not a hot path).
  for (uint32_t k = 1; k <= 21; ++k) {
    const auto kind = static_cast<SketchKind>(k);
    if (name == SketchKindName(kind)) return kind;
  }
  return Status::InvalidArgument("unknown sketch kind '" + name + "'");
}

void SerializeSpec(const SketchSpec& spec, BitWriter* writer) {
  writer->WriteBits(static_cast<uint64_t>(spec.kind), 8);
  writer->WriteU64(spec.n);
  writer->WriteDouble(spec.p);
  writer->WriteDouble(spec.eps);
  writer->WriteDouble(spec.delta);
  writer->WriteDouble(spec.phi);
  writer->WriteBits(spec.rows, 32);
  writer->WriteBits(spec.buckets, 32);
  writer->WriteU64(spec.s);
  writer->WriteBits(spec.repetitions, 32);
  writer->WriteU64(spec.seed);
}

SketchSpec DeserializeSpec(BitReader* reader) {
  SketchSpec spec;
  spec.kind = static_cast<SketchKind>(reader->ReadBits(8));
  spec.n = reader->ReadU64();
  spec.p = reader->ReadDouble();
  spec.eps = reader->ReadDouble();
  spec.delta = reader->ReadDouble();
  spec.phi = reader->ReadDouble();
  spec.rows = static_cast<uint32_t>(reader->ReadBits(32));
  spec.buckets = static_cast<uint32_t>(reader->ReadBits(32));
  spec.s = reader->ReadU64();
  spec.repetitions = static_cast<uint32_t>(reader->ReadBits(32));
  spec.seed = reader->ReadU64();
  return spec;
}

}  // namespace lps
