// SketchSpec — the one construction path for every structure in the
// library.
//
// Five PRs of growth left construction scattered across per-structure
// params structs (LpSamplerParams, CsHeavyHitters::Params, bare
// constructor argument lists, ...). Anything that needs to *name* a
// sketch across a boundary — the server's CREATE request, a saved spec
// next to a snapshot, the CLI's command parsing — would have to
// re-encode each of those shapes. SketchSpec collapses them into one
// small, wire-encodable description:
//
//     SketchSpec spec;
//     spec.kind = SketchKind::kCsHeavyHitters;
//     spec.n = 1 << 20; spec.p = 1.0; spec.phi = 0.05; spec.seed = 42;
//     auto sketch = MakeSketch(spec);       // any of the 21 kinds
//     SketchSpec back = SpecOf(*sketch);    // round-trips for the
//                                           // query-facing families
//
// MakeSketch is total over SketchKind: every kind constructs, with
// zero-valued fields resolving to the same library defaults the concrete
// params structs use. MakeEmptySketch (the Deserialize target behind
// DeserializeAnySketch) is now a thin wrapper over MakeSketch, so the
// wire-format dispatch, the server registry, and the CLI all construct
// through this single registry.
//
// Determinism contract: MakeSketch(spec) called twice yields two
// identically-seeded replicas (all randomness derives from spec.seed) —
// exactly what ParallelPipeline::Add requires of its per-shard replicas.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "src/stream/linear_sketch.h"
#include "src/util/serialize.h"
#include "src/util/status.h"

namespace lps {

/// One wire-encodable description of any constructible sketch. Fields a
/// kind does not use are ignored by MakeSketch and left at their defaults
/// by SpecOf; 0 (or 0.0) in a sized/derived field means "library
/// default", mirroring the per-structure params structs.
struct SketchSpec {
  SketchKind kind = SketchKind::kLpSampler;
  uint64_t n = 0;        ///< universe size
  double p = 1.0;        ///< Lp parameter (samplers, norms, heavy hitters)
  double eps = 0.5;      ///< relative-error target (Lp sampler)
  double delta = 0.25;   ///< failure-probability target
  double phi = 0.1;      ///< heaviness threshold (heavy hitters)
  uint32_t rows = 0;     ///< rows / groups / reps; 0 = auto
  uint32_t buckets = 0;  ///< row width / per-group; 0 = auto
  uint64_t s = 0;        ///< sparsity budget (recovery, duplicates); 0 = auto
  uint32_t repetitions = 0;  ///< parallel rounds / samples; 0 = auto
  uint64_t seed = 0;

  bool operator==(const SketchSpec& o) const;
  bool operator!=(const SketchSpec& o) const { return !(*this == o); }
};

/// Constructs a sketch of spec.kind. Total over the enum: every kind
/// builds (unused fields ignored, zeros resolve to library defaults);
/// returns nullptr only for a kind value outside the enum (corrupt wire
/// data). Two calls with equal specs produce identically-seeded replicas.
///
/// Precondition: the spec's values are in range for its kind — the
/// underlying constructors LPS_CHECK their parameters (a programming
/// error aborts). Specs that arrive from an untrusted boundary (the
/// server's CREATE/RESTORE requests) must pass ValidateSpec first.
std::unique_ptr<LinearSketch> MakeSketch(const SketchSpec& spec);

/// Checks a spec's values against the constructor preconditions of its
/// kind, as a recoverable error instead of a CHECK abort: finite
/// doubles in their documented ranges (p, eps, delta, phi), size fields
/// under generous server-side caps (so a hostile spec cannot demand an
/// unbounded allocation), universe bounds for the GF-fingerprinting and
/// dyadic kinds. OK means MakeSketch(spec) constructs without tripping
/// any precondition. Wire-facing construction paths call this before
/// MakeSketch; in-process callers may skip it.
Status ValidateSpec(const SketchSpec& spec);

/// The bound MakeSketch(spec)'s sketch enforces on update indices
/// (update paths LPS_CHECK index < bound), or 0 for the kinds that hash
/// arbitrary 64-bit indices. Wire-facing ingest paths reject an index
/// at or past this bound before it reaches the sketch.
uint64_t EnforcedUniverse(const SketchSpec& spec);

/// Recovers the construction spec of a live sketch. Exact round-trip
/// (MakeSketch(SpecOf(x)) serializes bit-identically to a reset x) for
/// the query-facing families — the samplers, heavy hitters, norm
/// estimators, and duplicate finders the CLI and server construct. For
/// the remaining internal kinds the result names the kind but may leave
/// derived fields at defaults.
SketchSpec SpecOf(const LinearSketch& sketch);

/// Inverse of SketchKindName: resolves "cs_heavy_hitters" etc. to the
/// kind tag. Status::InvalidArgument for an unknown name.
Result<SketchKind> SketchKindFromName(const std::string& name);

/// Bit-exact spec encoding — the CREATE request payload and the header of
/// every server snapshot go through these, so the wire format has one
/// source of truth.
void SerializeSpec(const SketchSpec& spec, BitWriter* writer);
SketchSpec DeserializeSpec(BitReader* reader);

}  // namespace lps
