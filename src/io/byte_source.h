// ByteSource — the async ingest front-end's byte layer.
//
// Every ingest path used to materialize its updates before the first
// Push, so long-horizon replays stalled the ParallelPipeline on
// synchronous reads. A ByteSource decouples the two: a background
// producer fills a ring of aligned buffers ahead of the consumer, so the
// pipeline ingests chunk t while the kernel reads chunk t+1. Next()
// hands out zero-copy views into the ring — no per-chunk allocation, no
// whole-file residency — and the ring's bounded depth is the
// backpressure (a slow consumer simply stops the prefetcher).
//
// Implementations:
//   - MemorySource: a view over a caller-owned buffer, cut into
//     chunk-sized views. The in-memory baseline and the decoder tests'
//     torn-boundary harness.
//   - AsyncFileReader (internal, behind MakeFileSource): double-buffered
//     prefetch of a regular file — a producer thread issues pread into
//     the ring. With -DLPS_IO_URING an io_uring backend keeps several
//     reads in flight through one ring instead of a thread, with a
//     runtime probe and fallback when the kernel lacks the syscalls —
//     the same dispatch idiom as src/kernels/ (LPS_IO env override,
//     unavailable request logs and falls back, IoBackendName() reports
//     the decision).
//   - AsyncSocketSource: the same ring fed by read() on a non-seekable
//     fd — sockets, pipes, stdin ("-" in the tools).
//
// Error discipline: I/O failures surface as Status through Next(), never
// as an abort — a hostile or vanishing input is an ordinary runtime
// condition here, exactly as in the server's frame decoding.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "src/util/status.h"

namespace lps::io {

/// A view of the next run of bytes. Valid until the next Next() call on
/// the source that returned it (the ring slot is recycled), or until the
/// source is destroyed. size == 0 means end of stream.
struct Chunk {
  const char* data = nullptr;
  size_t size = 0;
};

class ByteSource {
 public:
  virtual ~ByteSource() = default;

  /// Returns the next chunk of the stream, blocking until the producer
  /// has one ready. A zero-size chunk is end-of-stream (sticky). An
  /// error Status is also sticky: the stream is unusable after it.
  virtual Result<Chunk> Next() = 0;

  /// Total payload bytes handed out so far.
  virtual uint64_t bytes_read() const = 0;

  /// Seconds the CONSUMER spent blocked inside Next() waiting for the
  /// producer — the unoverlapped read time. Zero when the prefetcher
  /// always stays ahead; bench_io reports it as the overlap residual.
  virtual double wait_seconds() const = 0;

  /// Which backend feeds this source: "memory", "sync", "thread", or
  /// "uring".
  virtual const char* backend() const = 0;
};

/// A ByteSource over caller-owned bytes, returned in chunk_size views —
/// the zero-I/O baseline, and the way to drive the decoder through
/// arbitrary (torn) chunk boundaries in tests. The buffer must outlive
/// the source.
class MemorySource : public ByteSource {
 public:
  MemorySource(const char* data, size_t size, size_t chunk_size = 1 << 20);

  Result<Chunk> Next() override;
  uint64_t bytes_read() const override { return position_; }
  double wait_seconds() const override { return 0.0; }
  const char* backend() const override { return "memory"; }

 private:
  const char* data_;
  size_t size_;
  size_t chunk_size_;
  size_t position_ = 0;
};

/// Backend selection for file sources. kAuto resolves once per process:
/// the LPS_IO environment variable ("sync" | "thread" | "uring") when
/// set, otherwise "uring" when compiled in (-DLPS_IO_URING) and the
/// running kernel passes the probe, otherwise "thread". Asking for an
/// unavailable backend logs a note to stderr and falls back, mirroring
/// LPS_KERNELS.
enum class IoBackend { kAuto, kSync, kThread, kUring };

struct FileSourceOptions {
  /// Bytes per ring slot (one read per slot fill).
  size_t buffer_bytes = 1 << 20;
  /// Ring depth: reads the producer may run ahead of the consumer.
  size_t ring_slots = 4;
  IoBackend backend = IoBackend::kAuto;
};

/// Opens `path` ("-" = stdin) as an async-prefetched ByteSource. Regular
/// files go through the resolved file backend (pread thread or
/// io_uring); stdin and other non-seekable files stream through
/// AsyncSocketSource. Fails with InvalidArgument when the path cannot be
/// opened.
Result<std::unique_ptr<ByteSource>> MakeFileSource(
    const std::string& path, const FileSourceOptions& options = {});

/// Wraps an already-open non-seekable fd (socket, pipe) in the
/// prefetching ring. Takes ownership of the fd iff `owns_fd`.
std::unique_ptr<ByteSource> MakeSocketSource(
    int fd, bool owns_fd, const FileSourceOptions& options = {});

/// The file backend kAuto resolves to in this process ("thread",
/// "uring", or "sync"), decided once — the io analogue of
/// kernels::ActiveBackendName(), reported by `lps_cli version` and
/// bench_io.
const char* IoBackendName();

}  // namespace lps::io
