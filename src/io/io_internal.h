// Internals shared between the byte-source backends: the bounded
// prefetch ring (producer fills aligned slots ahead of the consumer;
// ring depth is the backpressure) and the io_uring hooks that
// uring_reader.cc implements whether or not the backend is compiled in.
// Not part of the public facade — include src/io/byte_source.h instead.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "src/io/byte_source.h"
#include "src/util/status.h"

namespace lps::io {

/// Ring-slot alignment: one page, so positional reads land page-aligned.
inline constexpr size_t kIoAlignment = 4096;

struct FreeDeleter {
  void operator()(char* p) const { std::free(p); }
};
using AlignedBuffer = std::unique_ptr<char, FreeDeleter>;

/// Allocates kIoAlignment-aligned storage of at least `bytes`.
AlignedBuffer AllocateAligned(size_t bytes);

/// Bounded ring of filled buffers between one producer (a prefetch
/// thread or an io_uring completion loop) and one consumer (Next()).
/// The producer blocks while every slot is filled — that bound is the
/// backpressure that keeps a fast reader from outrunning a slow
/// pipeline. The consumer blocks while no slot is filled, and that wait
/// is metered: it is exactly the read time ingestion failed to overlap.
class PrefetchRing {
 public:
  PrefetchRing(size_t slots, size_t slot_bytes);

  // Producer side.
  /// Blocks until a slot is free; returns its buffer, or nullptr once
  /// the consumer has stopped (destruction) — the producer must exit.
  char* AcquireFree();
  void CommitFilled(size_t size);
  void FinishEof();
  void FinishError(Status status);

  // Consumer side (ByteSource::Next semantics: recycles the previously
  // returned slot, then blocks for the next filled one).
  Result<Chunk> Next();
  /// Unblocks a producer stuck in AcquireFree; call before joining it.
  void Stop();

  size_t slot_bytes() const { return slot_bytes_; }
  uint64_t bytes_read() const { return bytes_read_; }
  double wait_seconds() const { return wait_seconds_; }

 private:
  struct Slot {
    AlignedBuffer buffer;
    size_t size = 0;
  };

  const size_t slot_bytes_;
  std::mutex mutex_;
  std::condition_variable can_fill_;
  std::condition_variable can_consume_;
  std::vector<Slot> slots_;
  size_t head_ = 0;        // oldest filled slot
  size_t filled_ = 0;      // filled, not yet recycled (includes held one)
  bool holding_ = false;   // consumer holds slots_[head_]
  bool done_ = false;      // producer finished (EOF or error_)
  bool stopped_ = false;   // consumer gone; producer must exit
  Status error_;
  uint64_t bytes_read_ = 0;
  double wait_seconds_ = 0;
};

/// io_uring hooks, always defined (in uring_reader.cc). When the backend
/// is not compiled in (-DLPS_IO_URING absent) or the running kernel
/// refuses io_uring_setup, UringRuntimeAvailable() is false and
/// MakeUringFileSource returns nullptr — callers fall back to the thread
/// backend, so a binary built with the option still runs everywhere.
bool UringRuntimeAvailable();
std::unique_ptr<ByteSource> MakeUringFileSource(
    int fd, const FileSourceOptions& options);

}  // namespace lps::io
