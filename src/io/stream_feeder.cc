#include "src/io/stream_feeder.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

#include "src/util/check.h"

namespace lps::io {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Bounded queue of decoded batches between the decode thread and the
/// ingesting caller. Same discipline as the pipeline's BatchQueue: a
/// full queue blocks the producer (backpressure), a drained-and-closed
/// queue tells the consumer the stream ended (with its final Status).
class DecodedQueue {
 public:
  explicit DecodedQueue(size_t capacity) : capacity_(capacity) {
    LPS_CHECK(capacity_ >= 1);
  }

  void Push(stream::UpdateStream batch) {
    std::unique_lock<std::mutex> lock(mutex_);
    can_push_.wait(lock, [this] { return queue_.size() < capacity_; });
    queue_.push_back(std::move(batch));
    can_pop_.notify_one();
  }

  void Close(Status status) {
    std::unique_lock<std::mutex> lock(mutex_);
    status_ = std::move(status);
    closed_ = true;
    can_pop_.notify_one();
  }

  /// False once the queue is closed and drained; *wait accumulates the
  /// consumer's blocked time.
  bool Pop(stream::UpdateStream* out, double* wait) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (queue_.empty() && !closed_) {
      const auto start = Clock::now();
      can_pop_.wait(lock, [this] { return !queue_.empty() || closed_; });
      *wait += SecondsSince(start);
    }
    if (queue_.empty()) return false;
    *out = std::move(queue_.front());
    queue_.pop_front();
    can_push_.notify_one();
    return true;
  }

  Status status() const {
    std::unique_lock<std::mutex> lock(mutex_);
    return status_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable can_push_;
  std::condition_variable can_pop_;
  std::deque<stream::UpdateStream> queue_;
  bool closed_ = false;
  Status status_;
};

}  // namespace

StreamFeeder::StreamFeeder(std::unique_ptr<ByteSource> source,
                           Options options)
    : source_(std::move(source)), options_(options) {
  LPS_CHECK(source_ != nullptr);
  LPS_CHECK(options_.batch_size >= 1);
  LPS_CHECK(options_.queue_batches >= 1);
}

Result<uint64_t> StreamFeeder::ReadHeader() {
  while (!decoder_.have_header() && !source_done_) {
    auto chunk = source_->Next();
    if (!chunk.ok()) return chunk.status();
    if (chunk.value().size == 0) {
      source_done_ = true;
      break;
    }
    decoder_.Consume(chunk.value().data, chunk.value().size, &pending_);
  }
  if (!decoder_.have_header()) {
    // Give Finish its shot (sub-magic-length text streams); otherwise
    // surface the structural error.
    auto status = decoder_.Finish(&pending_);
    if (!status.ok()) return status;
  }
  return decoder_.n();
}

Status StreamFeeder::DecodeAll(const BatchSink& deliver) {
  // Header-adjacent updates first, then the rest of the stream. Batches
  // are re-cut to batch_size so the sink sees a bounded granularity.
  stream::UpdateStream buffer = std::move(pending_);
  pending_ = stream::UpdateStream();
  auto drain = [&](bool final) {
    // Deliver full batches; keep a partial tail unless the stream ended.
    size_t done = 0;
    while (buffer.size() - done >= options_.batch_size) {
      deliver(buffer.data() + done, options_.batch_size);
      done += options_.batch_size;
    }
    if (final && done < buffer.size()) {
      deliver(buffer.data() + done, buffer.size() - done);
      done = buffer.size();
    }
    buffer.erase(buffer.begin(),
                 buffer.begin() + static_cast<ptrdiff_t>(done));
  };
  while (!source_done_) {
    auto chunk = source_->Next();
    if (!chunk.ok()) return chunk.status();
    if (chunk.value().size == 0) break;
    decoder_.Consume(chunk.value().data, chunk.value().size, &buffer);
    drain(/*final=*/false);
  }
  auto status = decoder_.Finish(&buffer);
  if (!status.ok()) return status;
  drain(/*final=*/true);
  return Status();
}

Result<FeedStats> StreamFeeder::Feed(const BatchSink& sink) {
  LPS_CHECK(!fed_);  // single-shot: the source was consumed
  fed_ = true;
  FeedStats stats;
  const auto start = Clock::now();
  Status status;
  if (!options_.async_decode) {
    status = DecodeAll([&](const stream::Update* updates, size_t count) {
      const auto sink_start = Clock::now();
      sink(updates, count);
      stats.sink_seconds += SecondsSince(sink_start);
    });
  } else {
    DecodedQueue queue(options_.queue_batches);
    std::thread decode([this, &queue] {
      Status decode_status =
          DecodeAll([&queue](const stream::Update* updates, size_t count) {
            queue.Push(stream::UpdateStream(updates, updates + count));
          });
      queue.Close(std::move(decode_status));
    });
    stream::UpdateStream batch;
    while (queue.Pop(&batch, &stats.ingest_wait_seconds)) {
      const auto sink_start = Clock::now();
      sink(batch.data(), batch.size());
      stats.sink_seconds += SecondsSince(sink_start);
    }
    decode.join();
    status = queue.status();
  }
  if (!status.ok()) return status;
  stats.updates = decoder_.decoded();
  stats.malformed = decoder_.malformed();
  stats.bytes = source_->bytes_read();
  stats.read_wait_seconds = source_->wait_seconds();
  stats.wall_seconds = SecondsSince(start);
  return stats;
}

// ------------------------------------------------------------ PipelineSink --

PipelineSink::PipelineSink(stream::ParallelPipeline* pipeline,
                           stream::WindowManager* window,
                           uint64_t epoch_interval)
    : pipeline_(pipeline), window_(window), interval_(epoch_interval) {
  LPS_CHECK(pipeline_ != nullptr);
  // A window manager needs epoch boundaries to seal checkpoints at.
  LPS_CHECK(window_ == nullptr || interval_ > 0);
}

void PipelineSink::CloseEpoch(uint64_t count) {
  pipeline_->MergeShards();
  if (window_ != nullptr) window_->SealEpoch(count);
}

void PipelineSink::operator()(const stream::Update* updates, size_t count) {
  while (count > 0) {
    size_t take = count;
    if (interval_ > 0) {
      take = static_cast<size_t>(
          std::min<uint64_t>(count, interval_ - fill_));
    }
    pipeline_->PushBatch(updates, take);
    updates += take;
    count -= take;
    updates_ += take;
    if (interval_ > 0) {
      fill_ += take;
      if (fill_ == interval_) {
        CloseEpoch(interval_);
        fill_ = 0;
      }
    }
  }
}

void PipelineSink::Finish() {
  if (interval_ == 0) {
    CloseEpoch(updates_);
    return;
  }
  if (fill_ > 0) {
    CloseEpoch(fill_);
    fill_ = 0;
  }
}

}  // namespace lps::io
