// StreamFeeder — drives a ByteSource through the UpdateDecoder into any
// batch sink, overlapping read, decode, and ingest.
//
// Stages (async_decode, the default): the ByteSource's prefetcher reads
// chunk t+2 while the feeder's decode thread parses chunk t+1 into
// update batches and the caller's thread ingests batch t — a three-stage
// pipeline whose wall time approaches max(read, decode, ingest) instead
// of their sum. The decoded-batch queue is bounded, so a slow sink
// backpressures the decoder, which backpressures the reader: memory
// stays at ring + queue, never the stream.
//
// Determinism: the sink sees every update exactly once, in stream
// order. Downstream chunk boundaries are the SINK's business — a
// ParallelPipeline re-cuts per-shard batches by its own fill rule — so
// feeding through this path is bit-identical to in-memory ingest for
// the same reasons the pipeline is bit-identical across thread counts
// (tests/io_test.cc holds serialized state equal across the matrix).
//
// PipelineSink is the epoch-exact composition: it feeds a
// ParallelPipeline, closing an epoch (MergeShards + WindowManager::
// SealEpoch) every `epoch_interval` updates with batches split exactly
// at the boundary — the same positions solo ingestion would seal, which
// is what keeps sharded+threaded+async windows bit-identical for the
// integer-counter kinds.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "src/io/byte_source.h"
#include "src/io/update_decoder.h"
#include "src/stream/parallel_pipeline.h"
#include "src/stream/update.h"
#include "src/stream/window_manager.h"
#include "src/util/status.h"

namespace lps::io {

/// Receives decoded updates in stream order, in feeder-sized batches.
using BatchSink = std::function<void(const stream::Update*, size_t)>;

/// What a Feed() run did and where its time went. The three *_seconds
/// components let callers compute overlap efficiency: wall close to
/// max(component) means the stages overlapped; wall close to the sum
/// means they serialized (bench_io gates on this).
struct FeedStats {
  uint64_t updates = 0;        ///< well-formed updates delivered
  uint64_t malformed = 0;      ///< records skipped by the decoder
  uint64_t bytes = 0;          ///< payload bytes consumed from the source
  double wall_seconds = 0;     ///< end-to-end Feed() duration
  double read_wait_seconds = 0;    ///< decoder blocked on the ByteSource
  double ingest_wait_seconds = 0;  ///< sink thread blocked on decoded batches
  double sink_seconds = 0;         ///< time inside the sink callbacks
};

class StreamFeeder {
 public:
  struct Options {
    /// Max updates per sink call. The default matches the pipeline's
    /// batch size, but the value does not affect final sketch state
    /// (see the determinism note above).
    size_t batch_size = 4096;
    /// Decode on a dedicated thread (three-stage overlap). When false,
    /// decode runs inline on the Feed() caller — the deterministic
    /// low-thread mode, and the honest baseline for overlap numbers.
    bool async_decode = true;
    /// Decoded batches buffered between decode and ingest; the bound is
    /// the backpressure.
    size_t queue_batches = 8;
  };

  StreamFeeder(std::unique_ptr<ByteSource> source, Options options);
  explicit StreamFeeder(std::unique_ptr<ByteSource> source)
      : StreamFeeder(std::move(source), Options{}) {}

  /// Consumes just enough of the stream to decode the trace header and
  /// returns the universe size n — call before constructing sketches.
  /// Updates decoded alongside the header are buffered for Feed().
  Result<uint64_t> ReadHeader();

  /// Streams every remaining update into `sink`. Call at most once,
  /// after ReadHeader(). Malformed records are counted, not fatal; a
  /// source I/O error is.
  Result<FeedStats> Feed(const BatchSink& sink);

  const ByteSource& source() const { return *source_; }
  UpdateDecoder::Format format() const { return decoder_.format(); }

 private:
  /// Inline (single-thread) feed loop; also the decode stage body.
  Status DecodeAll(const BatchSink& deliver);

  std::unique_ptr<ByteSource> source_;
  Options options_;
  UpdateDecoder decoder_;
  stream::UpdateStream pending_;  // decoded with the header, not yet fed
  bool fed_ = false;
  bool source_done_ = false;
};

/// A BatchSink feeding a ParallelPipeline in exact epochs. With
/// epoch_interval == 0 there are no intermediate epochs: Finish() merges
/// once (whole-stream ingest). With epoch_interval k, every k-th update
/// closes an epoch — MergeShards(), then SealEpoch(k) on the window
/// manager when one is attached — and Finish() closes the trailing
/// partial epoch. Pass the object by std::ref when handing it to Feed.
class PipelineSink {
 public:
  PipelineSink(stream::ParallelPipeline* pipeline,
               stream::WindowManager* window, uint64_t epoch_interval);

  void operator()(const stream::Update* updates, size_t count);
  /// Closes the trailing (partial) epoch; call after Feed returns.
  void Finish();

  uint64_t updates() const { return updates_; }

 private:
  void CloseEpoch(uint64_t count);

  stream::ParallelPipeline* pipeline_;
  stream::WindowManager* window_;
  uint64_t interval_;
  uint64_t fill_ = 0;      // updates since the last epoch boundary
  uint64_t updates_ = 0;
};

}  // namespace lps::io
