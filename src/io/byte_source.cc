#include "src/io/byte_source.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "src/io/io_internal.h"
#include "src/util/check.h"

namespace lps::io {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

// ----------------------------------------------------------- MemorySource --

MemorySource::MemorySource(const char* data, size_t size, size_t chunk_size)
    : data_(data), size_(size), chunk_size_(chunk_size) {
  LPS_CHECK(chunk_size_ >= 1);
}

Result<Chunk> MemorySource::Next() {
  if (position_ >= size_) return Chunk{};
  const size_t take = std::min(chunk_size_, size_ - position_);
  Chunk chunk{data_ + position_, take};
  position_ += take;
  return chunk;
}

// ----------------------------------------------------------- PrefetchRing --

AlignedBuffer AllocateAligned(size_t bytes) {
  // Page-align both the base and the length: pread into aligned buffers
  // keeps the copy path friendly to O_DIRECT-like access patterns and to
  // the kernel's own page-sized fills.
  const size_t rounded = (bytes + kIoAlignment - 1) & ~(kIoAlignment - 1);
  void* raw = std::aligned_alloc(kIoAlignment, rounded);
  LPS_CHECK(raw != nullptr);
  return AlignedBuffer(static_cast<char*>(raw));
}

PrefetchRing::PrefetchRing(size_t slots, size_t slot_bytes)
    : slot_bytes_(slot_bytes) {
  LPS_CHECK(slots >= 2);  // double-buffered at minimum: one filling, one read
  LPS_CHECK(slot_bytes >= 1);
  slots_.resize(slots);
  for (Slot& slot : slots_) slot.buffer = AllocateAligned(slot_bytes);
}

char* PrefetchRing::AcquireFree() {
  std::unique_lock<std::mutex> lock(mutex_);
  can_fill_.wait(lock, [this] { return filled_ < slots_.size() || stopped_; });
  if (stopped_) return nullptr;
  return slots_[(head_ + filled_) % slots_.size()].buffer.get();
}

void PrefetchRing::CommitFilled(size_t size) {
  std::unique_lock<std::mutex> lock(mutex_);
  slots_[(head_ + filled_) % slots_.size()].size = size;
  ++filled_;
  can_consume_.notify_one();
}

void PrefetchRing::FinishEof() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_ = true;
  can_consume_.notify_one();
}

void PrefetchRing::FinishError(Status status) {
  std::unique_lock<std::mutex> lock(mutex_);
  error_ = std::move(status);
  done_ = true;
  can_consume_.notify_one();
}

Result<Chunk> PrefetchRing::Next() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (holding_) {
    // Recycle the slot handed out by the previous Next().
    head_ = (head_ + 1) % slots_.size();
    --filled_;
    holding_ = false;
    can_fill_.notify_one();
  }
  if (filled_ == 0 && !done_) {
    const auto start = std::chrono::steady_clock::now();
    can_consume_.wait(lock, [this] { return filled_ > 0 || done_; });
    wait_seconds_ += SecondsSince(start);
  }
  if (filled_ == 0) {
    // Drained: report the terminal condition (sticky).
    if (!error_.ok()) return error_;
    return Chunk{};
  }
  const Slot& slot = slots_[head_];
  holding_ = true;
  bytes_read_ += slot.size;
  return Chunk{slot.buffer.get(), slot.size};
}

void PrefetchRing::Stop() {
  std::unique_lock<std::mutex> lock(mutex_);
  stopped_ = true;
  can_fill_.notify_all();
}

// -------------------------------------------------- thread-backed sources --

namespace {

/// Shared shape of the thread-prefetched sources: a producer thread runs
/// `fill` (a positional or streaming read) into ring slots until EOF,
/// error, or the consumer stops caring (destruction). AsyncFileReader
/// and AsyncSocketSource differ only in the fill function and whether
/// they own the fd.
class ThreadPrefetchSource : public ByteSource {
 public:
  /// fill(buffer, capacity, offset) returns bytes read (0 = EOF) or -1
  /// with errno set.
  using FillFn = ssize_t (*)(int fd, char* buffer, size_t capacity,
                             uint64_t offset);

  ThreadPrefetchSource(int fd, bool owns_fd, FillFn fill,
                       const char* backend_name,
                       const FileSourceOptions& options)
      : ring_(std::max<size_t>(options.ring_slots, 2), options.buffer_bytes),
        fd_(fd), owns_fd_(owns_fd), fill_(fill), backend_name_(backend_name) {
    producer_ = std::thread([this] { ProducerMain(); });
  }

  ~ThreadPrefetchSource() override {
    ring_.Stop();
    producer_.join();
    if (owns_fd_) ::close(fd_);
  }

  Result<Chunk> Next() override { return ring_.Next(); }
  uint64_t bytes_read() const override { return ring_.bytes_read(); }
  double wait_seconds() const override { return ring_.wait_seconds(); }
  const char* backend() const override { return backend_name_; }

 private:
  void ProducerMain() {
    uint64_t offset = 0;
    for (;;) {
      char* buffer = ring_.AcquireFree();
      if (buffer == nullptr) return;  // consumer stopped
      const ssize_t got = fill_(fd_, buffer, ring_.slot_bytes(), offset);
      if (got < 0) {
        ring_.FinishError(
            Status::Failed(std::string("read failed: ") + std::strerror(errno)));
        return;
      }
      if (got == 0) {
        ring_.FinishEof();
        return;
      }
      offset += static_cast<uint64_t>(got);
      ring_.CommitFilled(static_cast<size_t>(got));
    }
  }

  PrefetchRing ring_;
  const int fd_;
  const bool owns_fd_;
  const FillFn fill_;
  const char* backend_name_;
  std::thread producer_;
};

ssize_t FillPread(int fd, char* buffer, size_t capacity, uint64_t offset) {
  for (;;) {
    const ssize_t got =
        ::pread(fd, buffer, capacity, static_cast<off_t>(offset));
    if (got >= 0 || errno != EINTR) return got;
  }
}

ssize_t FillRead(int fd, char* buffer, size_t capacity, uint64_t /*offset*/) {
  for (;;) {
    const ssize_t got = ::read(fd, buffer, capacity);
    if (got >= 0 || errno != EINTR) return got;
  }
}

/// The no-prefetch baseline: one buffer, reads happen inline in Next().
/// All read time is consumer wait time by construction — exactly what a
/// synchronous ingest loop pays — which makes it the honest "naive"
/// reference for bench_io's overlap measurement (LPS_IO=sync).
class SyncFileSource : public ByteSource {
 public:
  SyncFileSource(int fd, bool owns_fd, size_t buffer_bytes)
      : buffer_(AllocateAligned(buffer_bytes)), capacity_(buffer_bytes),
        fd_(fd), owns_fd_(owns_fd) {}

  ~SyncFileSource() override {
    if (owns_fd_) ::close(fd_);
  }

  Result<Chunk> Next() override {
    if (done_) return Chunk{};
    const auto start = std::chrono::steady_clock::now();
    const ssize_t got = FillRead(fd_, buffer_.get(), capacity_, 0);
    wait_seconds_ += SecondsSince(start);
    if (got < 0) {
      done_ = true;
      return Status::Failed(std::string("read failed: ") +
                            std::strerror(errno));
    }
    if (got == 0) {
      done_ = true;
      return Chunk{};
    }
    bytes_read_ += static_cast<uint64_t>(got);
    return Chunk{buffer_.get(), static_cast<size_t>(got)};
  }

  uint64_t bytes_read() const override { return bytes_read_; }
  double wait_seconds() const override { return wait_seconds_; }
  const char* backend() const override { return "sync"; }

 private:
  AlignedBuffer buffer_;
  const size_t capacity_;
  const int fd_;
  const bool owns_fd_;
  bool done_ = false;
  uint64_t bytes_read_ = 0;
  double wait_seconds_ = 0;
};

// ----------------------------------------------------- backend resolution --

IoBackend ResolveAuto() {
  return UringRuntimeAvailable() ? IoBackend::kUring : IoBackend::kThread;
}

/// Resolves the process-wide file backend once, LPS_KERNELS-style: the
/// LPS_IO environment variable wins when set and satisfiable; an
/// unsatisfiable or unknown request logs a note and falls back.
IoBackend ResolvedBackend() {
  static const IoBackend resolved = [] {
    const char* env = std::getenv("LPS_IO");
    if (env == nullptr || env[0] == '\0') return ResolveAuto();
    const std::string want(env);
    if (want == "sync") return IoBackend::kSync;
    if (want == "thread") return IoBackend::kThread;
    if (want == "uring") {
      if (UringRuntimeAvailable()) return IoBackend::kUring;
      std::fprintf(stderr,
                   "lps: LPS_IO=uring but io_uring is unavailable "
                   "(not compiled in or kernel refused); using thread\n");
      return IoBackend::kThread;
    }
    std::fprintf(stderr, "lps: unknown LPS_IO='%s' (want sync|thread|uring)\n",
                 env);
    return ResolveAuto();
  }();
  return resolved;
}

}  // namespace

const char* IoBackendName() {
  switch (ResolvedBackend()) {
    case IoBackend::kSync: return "sync";
    case IoBackend::kUring: return "uring";
    case IoBackend::kAuto:
    case IoBackend::kThread: break;
  }
  return "thread";
}

std::unique_ptr<ByteSource> MakeSocketSource(int fd, bool owns_fd,
                                             const FileSourceOptions& options) {
  return std::make_unique<ThreadPrefetchSource>(fd, owns_fd, FillRead,
                                                "thread", options);
}

Result<std::unique_ptr<ByteSource>> MakeFileSource(
    const std::string& path, const FileSourceOptions& options) {
  if (path == "-") {
    // stdin is a stream: prefetch through the socket path, never seek.
    return MakeSocketSource(STDIN_FILENO, /*owns_fd=*/false, options);
  }
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::InvalidArgument("cannot open for reading: " + path);
  }
  struct stat st {};
  const bool regular = ::fstat(fd, &st) == 0 && S_ISREG(st.st_mode);
  if (!regular) {
    // Pipes / devices: positional reads are meaningless; stream them.
    return std::unique_ptr<ByteSource>(
        MakeSocketSource(fd, /*owns_fd=*/true, options));
  }
  IoBackend backend = options.backend;
  if (backend == IoBackend::kAuto) backend = ResolvedBackend();
  if (backend == IoBackend::kUring) {
    auto uring = MakeUringFileSource(fd, options);
    if (uring != nullptr) return std::unique_ptr<ByteSource>(std::move(uring));
    backend = IoBackend::kThread;  // per-file fallback (e.g. setup raced out)
  }
  if (backend == IoBackend::kSync) {
    return std::unique_ptr<ByteSource>(std::make_unique<SyncFileSource>(
        fd, /*owns_fd=*/true, options.buffer_bytes));
  }
  return std::unique_ptr<ByteSource>(std::make_unique<ThreadPrefetchSource>(
      fd, /*owns_fd=*/true, FillPread, "thread", options));
}

}  // namespace lps::io
