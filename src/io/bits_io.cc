#include "src/io/bits_io.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace lps::io {

namespace {

// Mirrors the container constant in src/util/serialize.cc ("LPSB" LE).
constexpr uint64_t kFileMagic = 0x4250534CULL;

}  // namespace

Result<BitReader> ReadBitsStreamed(ByteSource* source) {
  // The container is a pure u64-word stream: magic, bit count, payload.
  // Assemble words across chunk boundaries; validate the header as soon
  // as its two words exist, and fail fast the moment the payload
  // exceeds the declared length (never read a lying file to its end).
  std::vector<uint64_t> words;
  uint64_t declared_bits = 0;
  size_t declared_words = 0;
  bool have_header = false;
  uint64_t header[2] = {0, 0};
  size_t header_words = 0;
  char partial[sizeof(uint64_t)];
  size_t partial_len = 0;

  auto take_word = [&](uint64_t word) -> Status {
    if (!have_header) {
      header[header_words++] = word;
      if (header_words < 2) return Status();
      if (header[0] != kFileMagic) {
        return Status::InvalidArgument("not an lps bit-stream file");
      }
      declared_bits = header[1];
      declared_words = static_cast<size_t>((declared_bits + 63) / 64);
      words.reserve(std::min<size_t>(declared_words, size_t{1} << 16));
      have_header = true;
      return Status();
    }
    if (words.size() >= declared_words) {
      return Status::InvalidArgument("bit-stream file longer than declared");
    }
    words.push_back(word);
    return Status();
  };

  for (;;) {
    auto chunk = source->Next();
    if (!chunk.ok()) return chunk.status();
    const char* p = chunk.value().data;
    size_t size = chunk.value().size;
    if (size == 0) break;
    if (partial_len > 0) {
      const size_t need = sizeof(uint64_t) - partial_len;
      const size_t take = std::min(need, size);
      std::memcpy(partial + partial_len, p, take);
      partial_len += take;
      p += take;
      size -= take;
      if (partial_len < sizeof(uint64_t)) continue;
      uint64_t word;
      std::memcpy(&word, partial, sizeof(word));
      partial_len = 0;
      auto status = take_word(word);
      if (!status.ok()) return status;
    }
    while (size >= sizeof(uint64_t)) {
      uint64_t word;
      std::memcpy(&word, p, sizeof(word));
      p += sizeof(uint64_t);
      size -= sizeof(uint64_t);
      auto status = take_word(word);
      if (!status.ok()) return status;
    }
    if (size > 0) {
      std::memcpy(partial, p, size);
      partial_len = size;
    }
  }
  if (!have_header || partial_len > 0 || words.size() != declared_words) {
    return Status::InvalidArgument("truncated bit-stream file");
  }
  return BitReader(std::move(words), static_cast<size_t>(declared_bits));
}

Result<BitReader> ReadBitsStreamed(const std::string& path,
                                   const FileSourceOptions& options) {
  auto source = MakeFileSource(path, options);
  if (!source.ok()) {
    return Status::InvalidArgument("cannot open for reading: " + path);
  }
  auto reader = ReadBitsStreamed(source.value().get());
  if (!reader.ok()) {
    return Status::InvalidArgument(reader.status().message() + ": " + path);
  }
  return reader;
}

}  // namespace lps::io
