// Streamed reader for the on-disk bit-stream container
// (WriteBitsToFile's magic + bit count + packed words) — the ByteSource
// replacement for util's ReadBitsFromFile, which slurps the whole file
// with one fread. Here the container flows through the prefetch ring in
// bounded chunks, and — unlike the slurp — nothing is allocated from the
// header's CLAIMED size: the words vector grows with bytes actually
// delivered and the claim is checked against it, so a corrupt header
// can neither over-allocate nor walk past the data. The decoded
// BitReader still owns the full word vector (sketch state is queried in
// RAM — that residency bound is inherent to the container, see
// docs/operations.md), but peak transient memory is words + one ring,
// not words + a second whole-file buffer.
#pragma once

#include <string>

#include "src/io/byte_source.h"
#include "src/util/serialize.h"

namespace lps::io {

/// Reads a WriteBitsToFile container through an async ByteSource
/// ("-" = stdin). Wrong magic, truncated data, or a header/payload size
/// mismatch yield InvalidArgument — never an abort or oversized
/// allocation.
Result<BitReader> ReadBitsStreamed(const std::string& path,
                                   const FileSourceOptions& options = {});

/// Same, over an already-open source (tests, sockets).
Result<BitReader> ReadBitsStreamed(ByteSource* source);

}  // namespace lps::io
