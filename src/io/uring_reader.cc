// io_uring file backend for MakeFileSource — raw syscalls (no liburing
// dependency), compiled only behind -DLPS_IO_URING on Linux. The shape
// mirrors the kernels layer: the build option adds the backend, a
// runtime probe decides whether this kernel can run it, and every entry
// point here degrades to "unavailable" (nullptr / false) so callers fall
// back to the thread backend — a binary built with the option still runs
// on kernels without io_uring, containers that seccomp it away, etc.
//
// Unlike the thread backend there is no producer thread: up to
// ring_slots positional reads are kept in flight in the kernel at once,
// and Next() reaps completions in submission order. Offsets are assigned
// assuming full reads; a short mid-file read (rare for regular files,
// but legal) rebases the stream — in-flight later reads are invalidated
// by generation tag and resubmitted from the corrected offset — so the
// delivered byte stream is exact regardless.
#include "src/io/io_internal.h"

#if defined(LPS_IO_URING) && defined(__linux__) && \
    __has_include(<linux/io_uring.h>)
#define LPS_IO_URING_ENABLED 1
#else
#define LPS_IO_URING_ENABLED 0
#endif

#if LPS_IO_URING_ENABLED

#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <vector>

namespace lps::io {

namespace {

int SysUringSetup(unsigned entries, io_uring_params* params) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, params));
}

int SysUringEnter(int ring_fd, unsigned to_submit, unsigned min_complete,
                  unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, ring_fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

class UringFileSource : public ByteSource {
 public:
  static std::unique_ptr<ByteSource> Open(int fd,
                                          const FileSourceOptions& options) {
    auto source = std::unique_ptr<UringFileSource>(
        new UringFileSource(fd, options));
    if (!source->Init()) return nullptr;
    return std::unique_ptr<ByteSource>(std::move(source));
  }

  ~UringFileSource() override {
    if (sq_ring_ != MAP_FAILED) ::munmap(sq_ring_, sq_ring_bytes_);
    if (cq_ring_ != MAP_FAILED) ::munmap(cq_ring_, cq_ring_bytes_);
    if (sqes_ != MAP_FAILED) ::munmap(sqes_, sqes_bytes_);
    if (ring_fd_ >= 0) ::close(ring_fd_);
    ::close(fd_);
  }

  Result<Chunk> Next() override;
  uint64_t bytes_read() const override { return bytes_read_; }
  double wait_seconds() const override { return wait_seconds_; }
  const char* backend() const override { return "uring"; }

 private:
  struct Completion {
    bool ready = false;
    int64_t res = 0;
  };

  UringFileSource(int fd, const FileSourceOptions& options)
      : fd_(fd), slot_bytes_(options.buffer_bytes),
        depth_(std::max<size_t>(options.ring_slots, 2)) {}

  bool Init();
  void SubmitReads();
  bool ReapInto(Completion* slots);  // drain CQEs; false on enter failure
  /// seq -> (generation << 32 | seq % depth) user_data tag.
  uint64_t TagOf(uint64_t seq) const {
    return (generation_ << 32) | (seq % depth_);
  }

  const int fd_;
  const size_t slot_bytes_;
  const size_t depth_;

  int ring_fd_ = -1;
  void* sq_ring_ = MAP_FAILED;
  void* cq_ring_ = MAP_FAILED;
  void* sqes_ = MAP_FAILED;
  size_t sq_ring_bytes_ = 0;
  size_t cq_ring_bytes_ = 0;
  size_t sqes_bytes_ = 0;
  // SQ ring pointers.
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned* sq_array_ = nullptr;
  io_uring_sqe* sqe_array_ = nullptr;
  // CQ ring pointers.
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  io_uring_cqe* cqe_array_ = nullptr;

  std::vector<AlignedBuffer> buffers_;     // one per in-flight slot
  std::vector<iovec> iovecs_;              // READV descriptors, per slot
  std::vector<Completion> completions_;    // indexed by seq % depth_
  uint64_t generation_ = 0;                // bumped on rebase
  uint64_t next_submit_seq_ = 0;
  uint64_t next_consume_seq_ = 0;
  uint64_t next_submit_offset_ = 0;
  bool saw_eof_ = false;     // a consumed completion returned 0 bytes
  bool consumed_eof_ = false;
  bool holding_ = false;     // buffers_[<prev seq> % depth_] is exposed
  Status error_;
  uint64_t bytes_read_ = 0;
  double wait_seconds_ = 0;
};

bool UringFileSource::Init() {
  io_uring_params params;
  std::memset(&params, 0, sizeof(params));
  ring_fd_ = SysUringSetup(static_cast<unsigned>(depth_), &params);
  if (ring_fd_ < 0) return false;

  sq_ring_bytes_ = params.sq_off.array + params.sq_entries * sizeof(unsigned);
  cq_ring_bytes_ =
      params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
  sqes_bytes_ = params.sq_entries * sizeof(io_uring_sqe);
  sq_ring_ = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
  cq_ring_ = ::mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_CQ_RING);
  sqes_ = ::mmap(nullptr, sqes_bytes_, PROT_READ | PROT_WRITE,
                 MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES);
  if (sq_ring_ == MAP_FAILED || cq_ring_ == MAP_FAILED ||
      sqes_ == MAP_FAILED) {
    return false;
  }
  auto* sq = static_cast<char*>(sq_ring_);
  sq_head_ = reinterpret_cast<unsigned*>(sq + params.sq_off.head);
  sq_tail_ = reinterpret_cast<unsigned*>(sq + params.sq_off.tail);
  sq_mask_ = *reinterpret_cast<unsigned*>(sq + params.sq_off.ring_mask);
  sq_array_ = reinterpret_cast<unsigned*>(sq + params.sq_off.array);
  sqe_array_ = static_cast<io_uring_sqe*>(sqes_);
  auto* cq = static_cast<char*>(cq_ring_);
  cq_head_ = reinterpret_cast<unsigned*>(cq + params.cq_off.head);
  cq_tail_ = reinterpret_cast<unsigned*>(cq + params.cq_off.tail);
  cq_mask_ = *reinterpret_cast<unsigned*>(cq + params.cq_off.ring_mask);
  cqe_array_ = reinterpret_cast<io_uring_cqe*>(cq + params.cq_off.cqes);

  buffers_.resize(depth_);
  for (auto& buffer : buffers_) buffer = AllocateAligned(slot_bytes_);
  iovecs_.resize(depth_);
  completions_.resize(depth_);
  SubmitReads();
  return true;
}

void UringFileSource::SubmitReads() {
  // Keep one read in flight per free slot. A slot is free when its seq
  // has been consumed AND its buffer is not the one currently exposed.
  unsigned submitted = 0;
  while (!saw_eof_ && error_.ok() &&
         next_submit_seq_ < next_consume_seq_ + depth_ -
                                (holding_ ? 1u : 0u)) {
    const uint64_t seq = next_submit_seq_;
    const unsigned index = static_cast<unsigned>(seq % depth_);
    io_uring_sqe* sqe = &sqe_array_[index];
    std::memset(sqe, 0, sizeof(*sqe));
    // READV (kernel 5.1+) rather than READ (5.6+): one iovec per slot,
    // kept alive in iovecs_ until the completion is reaped.
    iovecs_[index] = {buffers_[index].get(), slot_bytes_};
    sqe->opcode = IORING_OP_READV;
    sqe->fd = fd_;
    sqe->addr = reinterpret_cast<uint64_t>(&iovecs_[index]);
    sqe->len = 1;
    sqe->off = next_submit_offset_;
    sqe->user_data = TagOf(seq);
    const unsigned tail = __atomic_load_n(sq_tail_, __ATOMIC_RELAXED);
    sq_array_[tail & sq_mask_] = index;
    __atomic_store_n(sq_tail_, tail + 1, __ATOMIC_RELEASE);
    completions_[index].ready = false;
    next_submit_offset_ += slot_bytes_;  // assumes full read; rebased if short
    ++next_submit_seq_;
    ++submitted;
  }
  if (submitted > 0) {
    if (SysUringEnter(ring_fd_, submitted, 0, 0) < 0) {
      error_ = Status::Failed(std::string("io_uring_enter failed: ") +
                              std::strerror(errno));
    }
  }
}

bool UringFileSource::ReapInto(Completion* slots) {
  const unsigned head = __atomic_load_n(cq_head_, __ATOMIC_RELAXED);
  const unsigned tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
  for (unsigned h = head; h != tail; ++h) {
    const io_uring_cqe& cqe = cqe_array_[h & cq_mask_];
    if ((cqe.user_data >> 32) != generation_) continue;  // stale after rebase
    const unsigned index = static_cast<unsigned>(cqe.user_data & 0xffffffffu);
    slots[index].ready = true;
    slots[index].res = cqe.res;
  }
  __atomic_store_n(cq_head_, tail, __ATOMIC_RELEASE);
  return true;
}

Result<Chunk> UringFileSource::Next() {
  if (holding_) {
    holding_ = false;
    ++next_consume_seq_;
  }
  if (!error_.ok()) return error_;
  if (consumed_eof_) return Chunk{};
  SubmitReads();
  const unsigned index = static_cast<unsigned>(next_consume_seq_ % depth_);
  while (!completions_[index].ready) {
    if (!error_.ok()) return error_;
    const auto start = std::chrono::steady_clock::now();
    const int rc = SysUringEnter(ring_fd_, 0, 1, IORING_ENTER_GETEVENTS);
    wait_seconds_ +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (rc < 0 && errno != EINTR) {
      error_ = Status::Failed(std::string("io_uring_enter failed: ") +
                              std::strerror(errno));
      return error_;
    }
    ReapInto(completions_.data());
  }
  const int64_t res = completions_[index].res;
  completions_[index].ready = false;
  if (res < 0) {
    error_ = Status::Failed(std::string("read failed: ") +
                            std::strerror(static_cast<int>(-res)));
    return error_;
  }
  if (res == 0) {
    consumed_eof_ = true;
    saw_eof_ = true;
    return Chunk{};
  }
  const uint64_t consumed_offset =
      next_submit_offset_ -
      (next_submit_seq_ - next_consume_seq_) * slot_bytes_;
  if (static_cast<size_t>(res) < slot_bytes_) {
    // Short read: every later in-flight offset is now wrong. Rebase —
    // invalidate them by generation and resubmit from the true offset.
    ++generation_;
    next_submit_seq_ = next_consume_seq_ + 1;
    next_submit_offset_ = consumed_offset + static_cast<uint64_t>(res);
    for (auto& completion : completions_) completion.ready = false;
  }
  holding_ = true;
  bytes_read_ += static_cast<uint64_t>(res);
  return Chunk{buffers_[index].get(), static_cast<size_t>(res)};
}

}  // namespace

bool UringRuntimeAvailable() {
  static const bool available = [] {
    io_uring_params params;
    std::memset(&params, 0, sizeof(params));
    const int fd = SysUringSetup(2, &params);
    if (fd < 0) return false;
    ::close(fd);
    return true;
  }();
  return available;
}

std::unique_ptr<ByteSource> MakeUringFileSource(
    int fd, const FileSourceOptions& options) {
  if (!UringRuntimeAvailable()) return nullptr;
  return UringFileSource::Open(fd, options);
}

}  // namespace lps::io

#else  // !LPS_IO_URING_ENABLED

namespace lps::io {

bool UringRuntimeAvailable() { return false; }

std::unique_ptr<ByteSource> MakeUringFileSource(
    int /*fd*/, const FileSourceOptions& /*options*/) {
  return nullptr;
}

}  // namespace lps::io

#endif  // LPS_IO_URING_ENABLED
