// UpdateDecoder — incremental parsing of stream traces across arbitrary
// chunk boundaries, for both trace encodings:
//
//   text (src/stream/trace.h): "# comment", "n <size>" header first,
//     then "u <index> <delta>" / "l <letter>" records, LF or CRLF.
//   binary: 8-byte magic "LPSTRC1\n", u64 LE universe size, then 16-byte
//     records of u64 LE index + i64 LE delta — the replay format for
//     disk-rate ingest (16 bytes/update instead of ~15 text chars plus
//     integer formatting; lps_cli gen --binary writes it).
//
// The format is auto-detected from the first bytes (the binary magic
// cannot begin a valid text trace). The decoder owns a carry buffer so
// records torn across ByteSource chunks — a line split mid-number, a
// binary record split mid-field — reassemble exactly; feeding the same
// bytes in any chunking decodes the same update sequence.
//
// Malformed-input policy (the PR 6/9 hostile-input discipline): a bad
// line or record — unknown tag, unparsable number, index outside
// [0, n), duplicate header, torn trailing record at EOF — is COUNTED in
// malformed() and skipped, never a CHECK abort and (past the header)
// never a hard error; a replay keeps going when one producer wrote one
// bad line. The only structural failure is a stream whose header never
// arrives: Finish() returns InvalidArgument, because without n there is
// no universe to validate against (ReadTrace rejects the same way).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/stream/update.h"
#include "src/util/status.h"

namespace lps::io {

/// Binary trace magic: "LPSTRC1\n" as a little-endian u64.
inline constexpr uint64_t kBinaryTraceMagic = 0x0A31435254'53504CULL;

class UpdateDecoder {
 public:
  enum class Format { kUnknown, kText, kBinary };

  /// Decodes `size` bytes, appending every complete well-formed record
  /// to `out` (which is NOT cleared). Bytes of a trailing partial record
  /// are carried into the next Consume call.
  void Consume(const char* data, size_t size, stream::UpdateStream* out);

  /// Signals end of stream: a carried partial record becomes one
  /// malformed count (a torn tail was never a complete record). Returns
  /// InvalidArgument iff no header was ever decoded.
  Status Finish(stream::UpdateStream* out);

  /// True once the "n <size>" header (or binary equivalent) is decoded —
  /// callers that size structures by n() gate on this.
  bool have_header() const { return have_header_; }
  uint64_t n() const { return n_; }
  Format format() const { return format_; }
  /// Records skipped under the malformed-input policy.
  uint64_t malformed() const { return malformed_; }
  /// Well-formed updates decoded (letters count as updates).
  uint64_t decoded() const { return decoded_; }

 private:
  void ConsumeText(const char* data, size_t size, stream::UpdateStream* out);
  void ConsumeBinary(const char* data, size_t size, stream::UpdateStream* out);
  /// Parses one complete text line (no terminator). Updates counters.
  void DecodeLine(const char* line, size_t size, stream::UpdateStream* out);

  Format format_ = Format::kUnknown;
  std::string carry_;  // partial record (or pre-detection prefix) bytes
  bool have_header_ = false;
  bool finished_ = false;
  bool discarding_ = false;  // inside an over-long text record; drop to \n
  bool dead_ = false;        // unusable stream (binary n == 0)
  uint64_t n_ = 0;
  uint64_t malformed_ = 0;
  uint64_t decoded_ = 0;
};

/// Writes the binary trace encoding (magic, n, 16-byte records) —
/// the counterpart of stream::WriteTrace for the text form.
void WriteBinaryTrace(std::string* out, uint64_t n,
                      const stream::UpdateStream& updates);

}  // namespace lps::io
