#include "src/io/update_decoder.h"

#include <cstring>

namespace lps::io {

namespace {

/// A text record longer than this cannot be well-formed (a tag plus two
/// 20-digit integers is under 50 bytes); the cap keeps a hostile
/// newline-free stream from growing the carry buffer without bound.
constexpr size_t kMaxTextRecordBytes = 4096;

constexpr size_t kBinaryRecordBytes = 16;  // u64 index + i64 delta

const char* SkipSpaces(const char* p, const char* end) {
  while (p < end && (*p == ' ' || *p == '\t')) ++p;
  return p;
}

/// Parses an unsigned decimal; advances *p past the digits. False when
/// no digit is present or the value overflows u64.
bool ParseU64(const char** p, const char* end, uint64_t* out) {
  const char* q = SkipSpaces(*p, end);
  if (q >= end || *q < '0' || *q > '9') return false;
  uint64_t value = 0;
  for (; q < end && *q >= '0' && *q <= '9'; ++q) {
    const uint64_t digit = static_cast<uint64_t>(*q - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *p = q;
  *out = value;
  return true;
}

bool ParseI64(const char** p, const char* end, int64_t* out) {
  const char* q = SkipSpaces(*p, end);
  bool negative = false;
  if (q < end && (*q == '-' || *q == '+')) {
    negative = (*q == '-');
    ++q;
  }
  uint64_t magnitude = 0;
  const char* digits = q;
  if (!ParseU64(&digits, end, &magnitude)) return false;
  if (digits == q) return false;
  const uint64_t limit =
      negative ? (1ULL << 63) : (1ULL << 63) - 1;  // |INT64_MIN| vs INT64_MAX
  if (magnitude > limit) return false;
  *p = digits;
  *out = negative ? -static_cast<int64_t>(magnitude - 1) - 1
                  : static_cast<int64_t>(magnitude);
  return true;
}

uint64_t LoadU64Le(const char* p) {
  uint64_t value;
  std::memcpy(&value, p, sizeof(value));
  return value;  // serialized and decoded on little-endian hosts
}

}  // namespace

void UpdateDecoder::DecodeLine(const char* line, size_t size,
                               stream::UpdateStream* out) {
  if (size > 0 && line[size - 1] == '\r') --size;  // CRLF
  const char* p = SkipSpaces(line, line + size);
  const char* end = line + size;
  if (p == end || *p == '#') return;  // blank / comment
  const char tag = *p++;
  // The tag must be a standalone token ("nn" is not a header).
  if (p < end && *p != ' ' && *p != '\t') {
    ++malformed_;
    return;
  }
  if (tag == 'n') {
    uint64_t value = 0;
    if (have_header_ || !ParseU64(&p, end, &value) || value == 0) {
      ++malformed_;  // duplicate or unparsable header line
      return;
    }
    n_ = value;
    have_header_ = true;
    return;
  }
  if (tag == 'u') {
    stream::Update u{};
    if (!have_header_ || !ParseU64(&p, end, &u.index) ||
        !ParseI64(&p, end, &u.delta) || u.index >= n_) {
      ++malformed_;
      return;
    }
    out->push_back(u);
    ++decoded_;
    return;
  }
  if (tag == 'l') {
    uint64_t letter = 0;
    if (!have_header_ || !ParseU64(&p, end, &letter) || letter >= n_) {
      ++malformed_;
      return;
    }
    out->push_back({letter, 1});
    ++decoded_;
    return;
  }
  ++malformed_;  // unknown record tag
}

void UpdateDecoder::ConsumeText(const char* data, size_t size,
                                stream::UpdateStream* out) {
  const char* p = data;
  const char* end = data + size;
  // Complete the carried partial line first.
  if (!carry_.empty() || discarding_) {
    const char* nl = static_cast<const char*>(std::memchr(p, '\n', size));
    if (nl == nullptr) {
      if (discarding_) return;  // still inside the over-long record
      if (carry_.size() + size > kMaxTextRecordBytes) {
        ++malformed_;
        carry_.clear();
        discarding_ = true;
        return;
      }
      carry_.append(p, size);
      return;
    }
    if (discarding_) {
      discarding_ = false;
    } else if (carry_.size() + static_cast<size_t>(nl - p) >
               kMaxTextRecordBytes) {
      ++malformed_;
      carry_.clear();
    } else {
      carry_.append(p, static_cast<size_t>(nl - p));
      DecodeLine(carry_.data(), carry_.size(), out);
      carry_.clear();
    }
    p = nl + 1;
  }
  // Whole lines straight out of the chunk, no copies.
  for (;;) {
    const char* nl = static_cast<const char*>(
        std::memchr(p, '\n', static_cast<size_t>(end - p)));
    if (nl == nullptr) break;
    DecodeLine(p, static_cast<size_t>(nl - p), out);
    p = nl + 1;
  }
  // Trailing partial line -> carry (or start discarding if over-long).
  if (p < end) {
    const size_t tail = static_cast<size_t>(end - p);
    if (tail > kMaxTextRecordBytes) {
      ++malformed_;
      discarding_ = true;
    } else {
      carry_.append(p, tail);
    }
  }
}

void UpdateDecoder::ConsumeBinary(const char* data, size_t size,
                                  stream::UpdateStream* out) {
  const char* p = data;
  const char* end = data + size;
  // Header: the 8-byte n field right after the magic.
  if (!have_header_) {
    while (carry_.size() < 8 && p < end) carry_.push_back(*p++);
    if (carry_.size() < 8) return;
    const uint64_t n = LoadU64Le(carry_.data());
    carry_.clear();
    if (n == 0) {
      // No universe to validate against: the stream is unusable, and
      // counting every following record as malformed would just restate
      // that. Finish() reports the missing header.
      dead_ = true;
      return;
    }
    n_ = n;
    have_header_ = true;
  }
  auto emit = [&](const char* record) {
    stream::Update u{LoadU64Le(record),
                     static_cast<int64_t>(LoadU64Le(record + 8))};
    if (u.index >= n_) {
      ++malformed_;
      return;
    }
    out->push_back(u);
    ++decoded_;
  };
  // Complete a carried partial record.
  if (!carry_.empty()) {
    while (carry_.size() < kBinaryRecordBytes && p < end) {
      carry_.push_back(*p++);
    }
    if (carry_.size() < kBinaryRecordBytes) return;
    emit(carry_.data());
    carry_.clear();
  }
  while (static_cast<size_t>(end - p) >= kBinaryRecordBytes) {
    emit(p);
    p += kBinaryRecordBytes;
  }
  if (p < end) carry_.assign(p, static_cast<size_t>(end - p));
}

void UpdateDecoder::Consume(const char* data, size_t size,
                            stream::UpdateStream* out) {
  if (finished_ || dead_ || size == 0) return;
  if (format_ == Format::kUnknown) {
    // Buffer until the magic-sized prefix can be inspected; the binary
    // magic ends in '\n', so no valid text trace can start with it.
    carry_.append(data, size);
    if (carry_.size() < sizeof(kBinaryTraceMagic)) return;
    const std::string buffered = std::move(carry_);
    carry_.clear();
    if (std::memcmp(buffered.data(), &kBinaryTraceMagic,
                    sizeof(kBinaryTraceMagic)) == 0) {
      format_ = Format::kBinary;
      ConsumeBinary(buffered.data() + sizeof(kBinaryTraceMagic),
                    buffered.size() - sizeof(kBinaryTraceMagic), out);
    } else {
      format_ = Format::kText;
      ConsumeText(buffered.data(), buffered.size(), out);
    }
    return;
  }
  if (format_ == Format::kText) {
    ConsumeText(data, size, out);
  } else {
    ConsumeBinary(data, size, out);
  }
}

Status UpdateDecoder::Finish(stream::UpdateStream* out) {
  if (finished_) {
    return have_header_ ? Status() : Status::InvalidArgument(
                                         "missing 'n <size>' header");
  }
  finished_ = true;
  if (format_ == Format::kUnknown) {
    // Short stream: fewer bytes than the magic is necessarily text. The
    // detection buffer may hold several complete lines ("n 2\nl 0") —
    // run them through the text path, not DecodeLine on the whole blob.
    format_ = Format::kText;
    const std::string buffered = std::move(carry_);
    carry_.clear();
    if (!buffered.empty()) ConsumeText(buffered.data(), buffered.size(), out);
  }
  if (format_ == Format::kText) {
    if (discarding_) {
      discarding_ = false;  // the over-long tail was already counted
    } else if (!carry_.empty()) {
      // EOF terminates the final line, newline or not (getline parity).
      DecodeLine(carry_.data(), carry_.size(), out);
      carry_.clear();
    }
  } else if (!carry_.empty()) {
    ++malformed_;  // record torn at EOF — never completed
    carry_.clear();
  }
  if (!have_header_) {
    return Status::InvalidArgument("missing 'n <size>' header");
  }
  return Status();
}

void WriteBinaryTrace(std::string* out, uint64_t n,
                      const stream::UpdateStream& updates) {
  auto append_u64 = [out](uint64_t value) {
    char bytes[8];
    std::memcpy(bytes, &value, sizeof(bytes));
    out->append(bytes, sizeof(bytes));
  };
  append_u64(kBinaryTraceMagic);
  append_u64(n);
  for (const auto& u : updates) {
    append_u64(u.index);
    append_u64(static_cast<uint64_t>(u.delta));
  }
}

}  // namespace lps::io
