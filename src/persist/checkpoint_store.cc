#include "src/persist/checkpoint_store.h"

#include <dirent.h>
#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>

#include "src/util/atomic_file.h"
#include "src/util/check.h"

namespace lps::persist {

namespace {

constexpr uint32_t kSegmentMagic = 0x5353504C;  // "LPSS" little-endian
constexpr uint32_t kSegmentVersion = 1;
constexpr size_t kSegmentHeaderBytes = 8;
constexpr size_t kFrameHeaderBytes = 8;  // body_len:u32 crc:u32
constexpr size_t kBodyPrefixBytes = 3;   // record_kind:u8 key_len:u16

void PutU32(uint32_t v, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
  out->push_back(static_cast<uint8_t>(v >> 16));
  out->push_back(static_cast<uint8_t>(v >> 24));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

Status Errno(const std::string& what, const std::string& path) {
  return Status::InvalidArgument(what + " " + path + ": " + strerror(errno));
}

Status WriteFull(int fd, const uint8_t* data, size_t size,
                 const std::string& path) {
  while (size > 0) {
    const ssize_t n = write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write failed", path);
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return Status::OK();
}

std::string SegmentName(uint64_t number, bool open_suffix) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seg-%06llu.log",
                static_cast<unsigned long long>(number));
  return open_suffix ? std::string(buf) + ".open" : std::string(buf);
}

// Parses "seg-NNNNNN.log[.open]"; returns false for other directory
// entries (temporaries, dotfiles).
bool ParseSegmentName(const std::string& name, uint64_t* number,
                      bool* is_open) {
  if (name.rfind("seg-", 0) != 0) return false;
  const size_t dash = 4;
  size_t pos = dash;
  uint64_t n = 0;
  while (pos < name.size() && name[pos] >= '0' && name[pos] <= '9') {
    n = n * 10 + static_cast<uint64_t>(name[pos] - '0');
    ++pos;
  }
  if (pos == dash) return false;
  const std::string rest = name.substr(pos);
  if (rest == ".log") {
    *is_open = false;
  } else if (rest == ".log.open") {
    *is_open = true;
  } else {
    return false;
  }
  *number = n;
  return true;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size) {
  static const auto table = [] {
    std::vector<uint32_t> t(256);
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

CheckpointStore::CheckpointStore(std::string dir, Options options)
    : dir_(std::move(dir)), options_(options) {}

CheckpointStore::~CheckpointStore() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (active_fd_ >= 0) {
    fsync(active_fd_);
    close(active_fd_);
    active_fd_ = -1;
  }
}

Result<std::unique_ptr<CheckpointStore>> CheckpointStore::Open(
    const std::string& dir, const Options& options) {
  Status st = EnsureDirectory(dir);
  if (!st.ok()) return st;
  std::unique_ptr<CheckpointStore> store(new CheckpointStore(dir, options));
  st = store->ScanExisting();
  if (!st.ok()) return st;
  return store;
}

Status CheckpointStore::ScanExisting() {
  struct Found {
    uint64_t number;
    bool is_open;
    std::string name;
  };
  std::vector<Found> found;
  DIR* d = opendir(dir_.c_str());
  if (d == nullptr) return Errno("cannot open directory", dir_);
  while (struct dirent* entry = readdir(d)) {
    uint64_t number = 0;
    bool is_open = false;
    if (ParseSegmentName(entry->d_name, &number, &is_open)) {
      found.push_back({number, is_open, entry->d_name});
    }
  }
  closedir(d);
  std::sort(found.begin(), found.end(),
            [](const Found& a, const Found& b) { return a.number < b.number; });

  bool dropping = false;  // true once a tear was found: later segments go
  for (const Found& f : found) {
    const std::string path = dir_ + "/" + f.name;
    if (dropping) {
      struct stat st;
      if (stat(path.c_str(), &st) == 0) {
        recovered_truncated_bytes_ += static_cast<uint64_t>(st.st_size);
      }
      unlink(path.c_str());
      continue;
    }
    // A crash can leave a `.open` segment behind; its contents up to the
    // tear are durable history. Seal it (rename) so the scan below
    // indexes it under its immutable name.
    std::string sealed_path = path;
    if (f.is_open) {
      sealed_path = dir_ + "/" + SegmentName(f.number, false);
      if (rename(path.c_str(), sealed_path.c_str()) != 0) {
        return Errno("cannot seal recovered segment", path);
      }
    }
    bool clean = false;
    Status st = ScanSegment(sealed_path,
                            static_cast<uint32_t>(segment_paths_.size()),
                            &clean);
    if (!st.ok()) return st;
    segment_paths_.push_back(sealed_path);
    next_segment_number_ = std::max(next_segment_number_, f.number + 1);
    if (!clean) dropping = true;
  }
  return Status::OK();
}

Status CheckpointStore::ScanSegment(const std::string& path,
                                    uint32_t segment_index, bool* clean) {
  *clean = false;
  const int fd = open(path.c_str(), O_RDONLY);
  if (fd < 0) return Errno("cannot open segment", path);
  struct stat st;
  if (fstat(fd, &st) != 0) {
    close(fd);
    return Errno("cannot stat segment", path);
  }
  std::vector<uint8_t> data(static_cast<size_t>(st.st_size));
  size_t got = 0;
  while (got < data.size()) {
    const ssize_t n = pread(fd, data.data() + got, data.size() - got,
                            static_cast<off_t>(got));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      close(fd);
      return Errno("cannot read segment", path);
    }
    got += static_cast<size_t>(n);
  }
  close(fd);

  // Walk the frames, remembering the last position where the segment was
  // still well-formed; anything after that position is a torn tail.
  size_t good = 0;
  std::vector<std::pair<std::string, RecordRef>> records;
  if (data.size() >= kSegmentHeaderBytes &&
      GetU32(data.data()) == kSegmentMagic &&
      GetU32(data.data() + 4) == kSegmentVersion) {
    size_t pos = kSegmentHeaderBytes;
    good = pos;
    while (pos + kFrameHeaderBytes <= data.size()) {
      const uint32_t body_len = GetU32(data.data() + pos);
      if (body_len < kBodyPrefixBytes ||
          body_len > data.size() - pos - kFrameHeaderBytes) {
        break;
      }
      const uint32_t want_crc = GetU32(data.data() + pos + 4);
      const uint8_t* body = data.data() + pos + kFrameHeaderBytes;
      if (Crc32(body, body_len) != want_crc) break;
      const uint8_t kind = body[0];
      const uint16_t key_len =
          static_cast<uint16_t>(body[1] | static_cast<uint16_t>(body[2]) << 8);
      if (static_cast<size_t>(key_len) + kBodyPrefixBytes > body_len) break;
      std::string key(reinterpret_cast<const char*>(body + kBodyPrefixBytes),
                      key_len);
      RecordRef ref;
      ref.segment = segment_index;
      ref.offset = pos + kFrameHeaderBytes + kBodyPrefixBytes + key_len;
      ref.size = body_len - static_cast<uint32_t>(kBodyPrefixBytes) - key_len;
      ref.kind = kind;
      records.emplace_back(std::move(key), ref);
      pos += kFrameHeaderBytes + body_len;
      good = pos;
    }
  }

  if (good == 0) {
    // Not even a valid header — crash debris from a segment that never
    // finished its first write. Remove it so it cannot shadow a future
    // segment of the same number; recovery continues (not an error).
    recovered_truncated_bytes_ += data.size();
    unlink(path.c_str());
    return Status::OK();
  }
  if (good < data.size()) {
    recovered_truncated_bytes_ += data.size() - good;
    if (truncate(path.c_str(), static_cast<off_t>(good)) != 0) {
      return Errno("cannot truncate torn tail", path);
    }
  } else {
    *clean = true;
  }
  for (auto& [key, ref] : records) {
    index_[key].push_back(ref);
  }
  return Status::OK();
}

Status CheckpointStore::OpenActiveSegment() {
  const std::string path =
      dir_ + "/" + SegmentName(next_segment_number_, /*open_suffix=*/true);
  const int fd = open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("cannot create segment", path);
  std::vector<uint8_t> header;
  PutU32(kSegmentMagic, &header);
  PutU32(kSegmentVersion, &header);
  Status st = WriteFull(fd, header.data(), header.size(), path);
  if (!st.ok()) {
    close(fd);
    unlink(path.c_str());
    return st;
  }
  ++next_segment_number_;
  segment_paths_.push_back(path);
  active_fd_ = fd;
  active_bytes_ = kSegmentHeaderBytes;
  return Status::OK();
}

Status CheckpointStore::RollActiveSegmentLocked() {
  LPS_CHECK(active_fd_ >= 0);
  const std::string open_path = segment_paths_.back();
  LPS_CHECK(open_path.size() > 5);
  const std::string sealed_path =
      open_path.substr(0, open_path.size() - 5);  // strip ".open"
  if (fsync(active_fd_) != 0) return Errno("fsync failed", open_path);
  if (close(active_fd_) != 0) return Errno("close failed", open_path);
  active_fd_ = -1;
  if (rename(open_path.c_str(), sealed_path.c_str()) != 0) {
    return Errno("cannot seal segment", open_path);
  }
  segment_paths_.back() = sealed_path;
  return SyncParentDirectory(sealed_path);
}

Status CheckpointStore::Append(const std::string& key, uint8_t record_kind,
                               const void* payload, size_t size) {
  if (key.empty() || key.size() > 0xFFFF) {
    return Status::InvalidArgument("record key length out of range");
  }
  if (size > 0xFFFFFFFFu - kBodyPrefixBytes - key.size()) {
    return Status::InvalidArgument("record payload too large");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (active_fd_ < 0) {
    Status st = OpenActiveSegment();
    if (!st.ok()) return st;
  }
  std::vector<uint8_t> body;
  body.reserve(kBodyPrefixBytes + key.size() + size);
  body.push_back(record_kind);
  body.push_back(static_cast<uint8_t>(key.size()));
  body.push_back(static_cast<uint8_t>(key.size() >> 8));
  body.insert(body.end(), key.begin(), key.end());
  const uint8_t* p = static_cast<const uint8_t*>(payload);
  body.insert(body.end(), p, p + size);

  std::vector<uint8_t> frame;
  frame.reserve(kFrameHeaderBytes + body.size());
  PutU32(static_cast<uint32_t>(body.size()), &frame);
  PutU32(Crc32(body.data(), body.size()), &frame);
  frame.insert(frame.end(), body.begin(), body.end());

  const std::string& path = segment_paths_.back();
  Status st = WriteFull(active_fd_, frame.data(), frame.size(), path);
  if (!st.ok()) return st;

  RecordRef ref;
  ref.segment = static_cast<uint32_t>(segment_paths_.size() - 1);
  ref.offset = active_bytes_ + kFrameHeaderBytes + kBodyPrefixBytes +
               key.size();
  ref.size = static_cast<uint32_t>(size);
  ref.kind = record_kind;
  index_[key].push_back(ref);
  active_bytes_ += frame.size();

  if (options_.sync_every_append && fsync(active_fd_) != 0) {
    return Errno("fsync failed", path);
  }
  if (active_bytes_ >= options_.max_segment_bytes) {
    return RollActiveSegmentLocked();
  }
  return Status::OK();
}

Status CheckpointStore::Sync() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (active_fd_ >= 0 && fsync(active_fd_) != 0) {
    return Errno("fsync failed", segment_paths_.back());
  }
  return Status::OK();
}

size_t CheckpointStore::RecordCount(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  return it == index_.end() ? 0 : it->second.size();
}

Result<std::vector<uint8_t>> CheckpointStore::ReadRecord(
    const std::string& key, size_t index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end() || index >= it->second.size()) {
    return Status::InvalidArgument("no such record: " + key + "[" +
                                   std::to_string(index) + "]");
  }
  return ReadRef(it->second[index]);
}

Result<std::vector<uint8_t>> CheckpointStore::ReadRef(
    const RecordRef& ref) const {
  const std::string& path = segment_paths_[ref.segment];
  const int fd = open(path.c_str(), O_RDONLY);
  if (fd < 0) return Errno("cannot open segment", path);
  std::vector<uint8_t> payload(ref.size);
  size_t got = 0;
  while (got < payload.size()) {
    const ssize_t n = pread(fd, payload.data() + got, payload.size() - got,
                            static_cast<off_t>(ref.offset + got));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      close(fd);
      return Errno("short segment read", path);
    }
    got += static_cast<size_t>(n);
  }
  close(fd);
  return payload;
}

uint8_t CheckpointStore::RecordKind(const std::string& key,
                                    size_t index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end() || index >= it->second.size()) return 0xFF;
  return it->second[index].kind;
}

uint64_t CheckpointStore::KeyBytes(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) return 0;
  uint64_t total = 0;
  for (const RecordRef& ref : it->second) total += ref.size;
  return total;
}

std::vector<std::string> CheckpointStore::Keys() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> keys;
  keys.reserve(index_.size());
  for (const auto& [key, refs] : index_) {
    if (!refs.empty()) keys.push_back(key);
  }
  return keys;
}

}  // namespace lps::persist
