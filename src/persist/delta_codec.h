// Delta compression for serialized sketch checkpoints.
//
// Consecutive checkpoints of a LinearSketch are near-duplicates: between
// two seals only the counters touched by that interval's updates change,
// and the parameter/seed prefix never changes. The codec exploits this by
// differencing a checkpoint's serialized words against its predecessor's
// and then byte-compressing the difference with a self-contained
// varint + zero-run-length scheme — no external compressor dependency.
//
// Two difference operators are provided, matching the two counter
// algebras in the library:
//
//   kXor  — bitwise XOR per 64-bit word. Always exact, and the natural
//           choice for the GF(2^61-1) families (fingerprints, syndromes),
//           whose group operation is modular — untouched state XORs to
//           zero regardless of representation.
//   kSub  — two's-complement subtraction per 64-bit word. Exact under
//           wraparound; for integer-valued counters that drift by small
//           amounts the difference has few significant bytes.
//
// A kKeyframe record is a delta against the all-zero stream: it decodes
// with no predecessor and anchors a chain of deltas (the spill ring cuts
// a keyframe every few records so rehydration never replays an unbounded
// chain). Round-trip is guaranteed bit-exact for every SketchKind — the
// codec never interprets the serialized bytes, so FP-scaled families are
// exactly as safe as integer ones.
//
// Compression is workload-dependent: checkpoints of a stream with
// temporal locality (a bounded working set per interval) compress by the
// fraction of untouched counters; a uniform stream that touches most
// counters per interval carries fresh entropy everywhere and is
// near-incompressible. bench_persist measures both regimes.
#pragma once

#include <cstdint>
#include <vector>

#include "src/stream/linear_sketch.h"

namespace lps::persist {

/// How a record's payload relates to its predecessor. Values are part of
/// the on-disk format: never renumber, only append.
enum class DeltaMode : uint8_t {
  kKeyframe = 0,  // delta against the all-zero stream (self-contained)
  kXor = 1,
  kSub = 2,
};

/// A compressed checkpoint record. `raw_bits` is the bit count of the
/// plaintext stream (BitWriter::bit_count()); the decoded word vector has
/// ceil(raw_bits / 64) words with trailing bits zero, matching the
/// BitWriter invariant — so decode reproduces the serialized state
/// bit-identically.
struct EncodedDelta {
  DeltaMode mode = DeltaMode::kKeyframe;
  uint64_t raw_bits = 0;
  std::vector<uint8_t> bytes;
};

/// Encodes `cur` against predecessor `prev` using `mode`. For kKeyframe
/// the predecessor is ignored (pass an empty vector). If `prev` is
/// shorter than `cur` it is zero-padded; a longer predecessor's tail is
/// ignored.
EncodedDelta EncodeDelta(DeltaMode mode, const std::vector<uint64_t>& cur,
                         size_t cur_bits, const std::vector<uint64_t>& prev,
                         size_t prev_bits);

/// Encodes `cur` with whichever of kXor / kSub yields the smaller
/// payload (ties go to kXor). With an empty predecessor this returns a
/// kKeyframe record.
EncodedDelta EncodeBestDelta(const std::vector<uint64_t>& cur,
                             size_t cur_bits,
                             const std::vector<uint64_t>& prev,
                             size_t prev_bits);

/// Inverts EncodeDelta: reconstructs the plaintext words from `delta` and
/// the same predecessor it was encoded against. Returns false (leaving
/// outputs untouched) on a malformed payload — a truncated varint, a
/// stream that does not decode to exactly raw_bits worth of bytes, or an
/// unknown mode. Never aborts: store payloads come from disk.
bool DecodeDelta(const EncodedDelta& delta, const std::vector<uint64_t>& prev,
                 size_t prev_bits, std::vector<uint64_t>* out_words,
                 size_t* out_bits);

/// The byte-compressor layer on its own (exposed for tests and for the
/// store's internal framing): LEB128 varints framing alternating
/// zero-run / literal-run spans.
std::vector<uint8_t> CompressBytes(const std::vector<uint8_t>& plain);
bool DecompressBytes(const std::vector<uint8_t>& packed, size_t plain_size,
                     std::vector<uint8_t>* out);

}  // namespace lps::persist
