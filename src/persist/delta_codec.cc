#include "src/persist/delta_codec.h"

#include <cstring>

namespace lps::persist {

namespace {

// Zero runs shorter than this stay inside the surrounding literal: a run
// boundary costs two varint bytes, so breaking a literal for fewer than
// four zeros loses ground.
constexpr size_t kMinZeroRun = 4;

void PutVarint(uint64_t v, std::vector<uint8_t>* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

bool GetVarint(const std::vector<uint8_t>& in, size_t* pos, uint64_t* out) {
  uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (*pos >= in.size()) return false;
    const uint8_t byte = in[(*pos)++];
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *out = v;
      return true;
    }
  }
  return false;  // varint longer than 64 bits
}

size_t ByteLength(size_t bits) { return ((bits + 63) / 64) * 8; }

std::vector<uint8_t> WordsToBytes(const std::vector<uint64_t>& words,
                                  size_t bits) {
  std::vector<uint8_t> bytes(ByteLength(bits), 0);
  LPS_CHECK(words.size() * 8 >= bytes.size());
  if (!bytes.empty()) std::memcpy(bytes.data(), words.data(), bytes.size());
  return bytes;
}

std::vector<uint64_t> BytesToWords(const std::vector<uint8_t>& bytes) {
  std::vector<uint64_t> words(bytes.size() / 8, 0);
  if (!bytes.empty()) std::memcpy(words.data(), bytes.data(), bytes.size());
  return words;
}

// The raw (uncompressed) difference stream for the given mode. `prev` is
// zero-padded to cur's length; its tail beyond that is ignored.
std::vector<uint8_t> DifferenceBytes(DeltaMode mode,
                                     const std::vector<uint64_t>& cur,
                                     size_t cur_bits,
                                     const std::vector<uint64_t>& prev) {
  const size_t n_words = (cur_bits + 63) / 64;
  LPS_CHECK(cur.size() >= n_words);
  std::vector<uint64_t> diff(n_words);
  for (size_t i = 0; i < n_words; ++i) {
    const uint64_t p = i < prev.size() ? prev[i] : 0;
    switch (mode) {
      case DeltaMode::kKeyframe:
        diff[i] = cur[i];
        break;
      case DeltaMode::kXor:
        diff[i] = cur[i] ^ p;
        break;
      case DeltaMode::kSub:
        diff[i] = cur[i] - p;
        break;
    }
  }
  std::vector<uint8_t> bytes(ByteLength(cur_bits), 0);
  if (!bytes.empty()) std::memcpy(bytes.data(), diff.data(), bytes.size());
  return bytes;
}

}  // namespace

std::vector<uint8_t> CompressBytes(const std::vector<uint8_t>& plain) {
  std::vector<uint8_t> out;
  out.reserve(plain.size() / 4 + 16);
  size_t pos = 0;
  while (pos < plain.size()) {
    // Greedy zero run.
    size_t zeros = 0;
    while (pos + zeros < plain.size() && plain[pos + zeros] == 0) ++zeros;
    pos += zeros;
    // Literal extends until a zero run of at least kMinZeroRun (or end).
    const size_t lit_start = pos;
    size_t streak = 0;
    while (pos < plain.size()) {
      if (plain[pos] == 0) {
        if (++streak == kMinZeroRun) {
          pos -= kMinZeroRun - 1;
          break;
        }
      } else {
        streak = 0;
      }
      ++pos;
    }
    PutVarint(zeros, &out);
    PutVarint(pos - lit_start, &out);
    out.insert(out.end(), plain.begin() + lit_start, plain.begin() + pos);
  }
  return out;
}

bool DecompressBytes(const std::vector<uint8_t>& packed, size_t plain_size,
                     std::vector<uint8_t>* out) {
  std::vector<uint8_t> plain;
  plain.reserve(plain_size);
  size_t pos = 0;
  while (plain.size() < plain_size) {
    uint64_t zeros = 0, lit = 0;
    if (!GetVarint(packed, &pos, &zeros)) return false;
    if (!GetVarint(packed, &pos, &lit)) return false;
    if (zeros > plain_size - plain.size()) return false;
    plain.resize(plain.size() + zeros, 0);
    if (lit > plain_size - plain.size()) return false;
    if (lit > packed.size() - pos) return false;
    plain.insert(plain.end(), packed.begin() + pos, packed.begin() + pos + lit);
    pos += lit;
  }
  if (pos != packed.size()) return false;  // trailing garbage
  *out = std::move(plain);
  return true;
}

EncodedDelta EncodeDelta(DeltaMode mode, const std::vector<uint64_t>& cur,
                         size_t cur_bits, const std::vector<uint64_t>& prev,
                         size_t prev_bits) {
  (void)prev_bits;  // prev's byte image is fully determined by its words
  EncodedDelta delta;
  delta.mode = mode;
  delta.raw_bits = cur_bits;
  delta.bytes = CompressBytes(DifferenceBytes(mode, cur, cur_bits, prev));
  return delta;
}

EncodedDelta EncodeBestDelta(const std::vector<uint64_t>& cur,
                             size_t cur_bits,
                             const std::vector<uint64_t>& prev,
                             size_t prev_bits) {
  if (prev.empty()) {
    return EncodeDelta(DeltaMode::kKeyframe, cur, cur_bits, prev, 0);
  }
  EncodedDelta x =
      EncodeDelta(DeltaMode::kXor, cur, cur_bits, prev, prev_bits);
  EncodedDelta s =
      EncodeDelta(DeltaMode::kSub, cur, cur_bits, prev, prev_bits);
  return s.bytes.size() < x.bytes.size() ? std::move(s) : std::move(x);
}

bool DecodeDelta(const EncodedDelta& delta, const std::vector<uint64_t>& prev,
                 size_t prev_bits, std::vector<uint64_t>* out_words,
                 size_t* out_bits) {
  (void)prev_bits;
  const size_t plain_size = ByteLength(delta.raw_bits);
  std::vector<uint8_t> diff_bytes;
  if (!DecompressBytes(delta.bytes, plain_size, &diff_bytes)) return false;
  std::vector<uint64_t> diff = BytesToWords(diff_bytes);
  std::vector<uint64_t> words(diff.size());
  for (size_t i = 0; i < diff.size(); ++i) {
    const uint64_t p = i < prev.size() ? prev[i] : 0;
    switch (delta.mode) {
      case DeltaMode::kKeyframe:
        words[i] = diff[i];
        break;
      case DeltaMode::kXor:
        words[i] = diff[i] ^ p;
        break;
      case DeltaMode::kSub:
        words[i] = diff[i] + p;
        break;
      default:
        return false;
    }
  }
  *out_words = std::move(words);
  *out_bits = static_cast<size_t>(delta.raw_bits);
  return true;
}

}  // namespace lps::persist
