// Append-only durable record store for sketch checkpoints and server
// snapshots.
//
// Layout: a directory of numbered segment files. The active segment
// carries an `.open` suffix and is appended to in place; when it reaches
// the roll threshold it is fsync'd and renamed to its sealed name (atomic
// publish), and a new active segment starts. Each segment begins with a
// magic/version header; each record is a length-prefixed frame with a
// CRC32 over its body:
//
//   segment  := header record*
//   header   := magic:u32 ("LPSS") version:u32
//   record   := body_len:u32 crc32(body):u32 body
//   body     := record_kind:u8 key_len:u16 key payload
//
// All fixed-width fields are little-endian. Records for one key form an
// ordered stream (the WindowManager spill chain; a tenant's snapshot
// history); the in-memory index is rebuilt by scanning the segments at
// Open.
//
// Crash-recovery contract: a record is durable once Append + Sync have
// returned. A crash mid-append leaves a torn tail — a truncated frame or
// one whose CRC does not match — which the recovery scan TRUNCATES
// (physically, through the atomic-rewrite helper) rather than aborting
// on (physically, via truncate(2)): everything before the tear is
// intact, everything after it was never acknowledged. A corrupt sealed
// segment likewise drops the damaged suffix and every later segment,
// preserving the log's prefix semantics.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/util/status.h"

namespace lps::persist {

class CheckpointStore {
 public:
  struct Options {
    /// Roll the active segment once it exceeds this many bytes.
    uint64_t max_segment_bytes = 64ull << 20;
    /// fsync after every Append (otherwise callers batch with Sync()).
    bool sync_every_append = false;
  };

  /// Opens (creating if needed) the store in `dir`, scanning existing
  /// segments to rebuild the index and truncating any torn tail.
  static Result<std::unique_ptr<CheckpointStore>> Open(
      const std::string& dir, const Options& options);
  static Result<std::unique_ptr<CheckpointStore>> Open(const std::string& dir) {
    return Open(dir, Options());
  }

  ~CheckpointStore();
  CheckpointStore(const CheckpointStore&) = delete;
  CheckpointStore& operator=(const CheckpointStore&) = delete;

  /// Appends one record to the active segment. `record_kind` is an
  /// application tag (the store does not interpret it). Thread-safe.
  Status Append(const std::string& key, uint8_t record_kind,
                const void* payload, size_t size);

  /// Makes every previously appended record durable.
  Status Sync();

  /// Number of records appended under `key` (across all segments).
  size_t RecordCount(const std::string& key) const;

  /// Reads the payload of the index-th record of `key` (0-based, in
  /// append order). Fails on an out-of-range index.
  Result<std::vector<uint8_t>> ReadRecord(const std::string& key,
                                          size_t index) const;

  /// The record_kind tag of the index-th record of `key`; 0xFF if out of
  /// range.
  uint8_t RecordKind(const std::string& key, size_t index) const;

  /// Total payload bytes stored under `key`.
  uint64_t KeyBytes(const std::string& key) const;

  /// Every key with at least one record, in unspecified order.
  std::vector<std::string> Keys() const;

  /// Bytes discarded by the recovery scan at Open (torn tails + corrupt
  /// suffixes). Observability only.
  uint64_t recovered_truncated_bytes() const {
    return recovered_truncated_bytes_;
  }

  const std::string& dir() const { return dir_; }

 private:
  struct RecordRef {
    uint32_t segment = 0;  // index into segment_paths_
    uint64_t offset = 0;   // payload offset within the segment file
    uint32_t size = 0;     // payload size
    uint8_t kind = 0;
  };

  CheckpointStore(std::string dir, Options options);

  Status ScanExisting();
  Status ScanSegment(const std::string& path, uint32_t segment_index,
                     bool* clean);
  Status OpenActiveSegment();
  Status RollActiveSegmentLocked();
  Result<std::vector<uint8_t>> ReadRef(const RecordRef& ref) const;

  const std::string dir_;
  const Options options_;

  mutable std::mutex mutex_;
  // Sealed + active segment paths, ascending by segment number; the last
  // entry is the active (`.open`) segment once OpenActiveSegment ran.
  std::vector<std::string> segment_paths_;
  uint64_t next_segment_number_ = 0;
  int active_fd_ = -1;
  uint64_t active_bytes_ = 0;
  std::unordered_map<std::string, std::vector<RecordRef>> index_;
  uint64_t recovered_truncated_bytes_ = 0;
};

/// CRC32 (IEEE 802.3 polynomial, reflected) over `size` bytes — the
/// record checksum. Exposed for tests.
uint32_t Crc32(const void* data, size_t size);

}  // namespace lps::persist
