#include "src/hash/kwise.h"

#include "src/kernels/kernels.h"
#include "src/util/check.h"

namespace lps::hash {

namespace gf = ::lps::gf61;

KWiseHash::KWiseHash(int k, uint64_t seed) {
  LPS_CHECK(k >= 1);
  coeffs_.resize(static_cast<size_t>(k));
  Rng rng(seed);
  for (auto& c : coeffs_) c = rng.Below(gf::kP);
}

uint64_t KWiseHash::Eval(uint64_t key) const {
  const uint64_t x = gf::Reduce(key);
  uint64_t acc = 0;
  for (size_t i = coeffs_.size(); i-- > 0;) {
    acc = gf::Add(gf::Mul(acc, x), coeffs_[i]);
  }
  return acc;
}

void KWiseHash::EvalBatch(const uint64_t* reduced_keys, size_t count,
                          uint64_t* out) const {
  kernels::Active().kwise_horner_batch(coeffs_.data(), coeffs_.size(),
                                       reduced_keys, count, out);
}

uint64_t KWiseHash::Range(uint64_t key, uint64_t range) const {
  LPS_CHECK(range > 0);
  const __uint128_t scaled = static_cast<__uint128_t>(Eval(key)) * range;
  return static_cast<uint64_t>(scaled / gf::kP);
}

double KWiseHash::Uniform01(uint64_t key) const {
  return static_cast<double>(Eval(key)) /
         static_cast<double>(gf::kP);
}

double KWiseHash::UniformPositive(uint64_t key) const {
  return (static_cast<double>(Eval(key)) + 1.0) /
         static_cast<double>(gf::kP);
}

int KWiseHash::Sign(uint64_t key) const {
  return (Eval(key) & 1) ? 1 : -1;
}

}  // namespace lps::hash
