// k-wise independent hash families over GF(2^61 - 1).
//
// A degree-(k-1) polynomial with uniform random coefficients evaluated at
// distinct points is a k-wise independent family (the classic Wegman-Carter
// construction). Every derived view (range hash, sign hash, uniform [0,1)
// scaling factors) inherits the k-wise independence of the field value.
//
// Where the paper needs specific independence:
//   - count-sketch rows use pairwise (k = 2) bucket and sign hashes [6];
//   - the Lp sampler's scaling factors t_i use k = 10*ceil(1/|p-1|)
//     (Figure 1, step 1) so that the S' and S'' sums in Lemma 3 concentrate;
//   - fingerprints and subsampling use small constant k.
#pragma once

#include <cstdint>
#include <vector>

#include "src/field/gf61.h"
#include "src/util/random.h"

namespace lps::hash {

/// A single hash function drawn from a k-wise independent family mapping
/// uint64 keys to uniform field elements in [0, 2^61 - 1).
class KWiseHash {
 public:
  /// Draws a function from the k-wise family, k >= 1, seeded deterministically.
  KWiseHash(int k, uint64_t seed);

  /// Uniform field element in [0, p).
  uint64_t Eval(uint64_t key) const;

  /// Uniform integer in [0, range). Uses the multiply-shift reduction
  /// (Eval * range) / p, whose bias is < range / p < 2^-40 for any range
  /// used in this library.
  uint64_t Range(uint64_t key, uint64_t range) const;

  /// Uniform value in [0, 1) at 2^-61 granularity.
  double Uniform01(uint64_t key) const;

  /// Uniform value in (0, 1]: never returns zero, suitable for 1/t scalings.
  double UniformPositive(uint64_t key) const;

  /// Unbiased sign in {-1, +1}.
  int Sign(uint64_t key) const;

  int k() const { return static_cast<int>(coeffs_.size()); }

  /// Random bits consumed by this function in the paper's accounting:
  /// k field elements of 61 bits each.
  size_t SeedBits() const { return coeffs_.size() * 61; }

 private:
  std::vector<uint64_t> coeffs_;  // degree k-1 polynomial, constant term first
};

}  // namespace lps::hash
