// k-wise independent hash families over GF(2^61 - 1).
//
// A degree-(k-1) polynomial with uniform random coefficients evaluated at
// distinct points is a k-wise independent family (the classic Wegman-Carter
// construction). Every derived view (range hash, sign hash, uniform [0,1)
// scaling factors) inherits the k-wise independence of the field value.
//
// Where the paper needs specific independence:
//   - count-sketch rows use pairwise (k = 2) bucket and sign hashes [6];
//   - the Lp sampler's scaling factors t_i use k = 10*ceil(1/|p-1|)
//     (Figure 1, step 1) so that the S' and S'' sums in Lemma 3 concentrate;
//   - fingerprints and subsampling use small constant k.
#pragma once

#include <cstdint>
#include <vector>

#include "src/field/gf61.h"
#include "src/util/random.h"

namespace lps::hash {

/// floor(value * range / p) for a field element `value` in [0, p) — the
/// multiply-shift reduction of KWiseHash::Range — computed without a
/// 128-bit division: because p = 2^61 - 1, splitting the product at bit 61
/// gives quotient q = x >> 61 and remainder (x & p-mask) + q, off by at
/// most one correction step. Exact, and cheap enough to inline into the
/// batch kernels' inner loops.
inline uint64_t ScaleToRange(uint64_t value, uint64_t range) {
  const __uint128_t x = static_cast<__uint128_t>(value) * range;
  uint64_t q = static_cast<uint64_t>(x >> 61);
  const uint64_t r = (static_cast<uint64_t>(x) & gf61::kP) + q;
  q += static_cast<uint64_t>(r >= gf61::kP);  // branchless single correction
  return q;
}

/// Horner evaluation of a degree-(k-1) polynomial over GF(2^61 - 1) at an
/// already-reduced point x: the body of KWiseHash::Eval, exposed so batch
/// kernels can hoist the coefficient array out of their inner loops and
/// share one Reduce(key) across many hash functions.
inline uint64_t PolyEval(const uint64_t* coeffs, size_t k, uint64_t x) {
  // Starting from the leading coefficient skips Horner's first multiply by
  // zero: k-1 field multiplies instead of k. Identical result.
  uint64_t acc = coeffs[k - 1];
  for (size_t i = k - 1; i-- > 0;) {
    acc = gf61::Add(gf61::Mul(acc, x), coeffs[i]);
  }
  return acc;
}

/// Degree-1 (pairwise) evaluation c0 + c1 * x with both coefficients
/// already in registers — the innermost operation of the count-sketch and
/// count-min batch kernels.
inline uint64_t PolyEval2(uint64_t c0, uint64_t c1, uint64_t x) {
  return gf61::Add(gf61::Mul(c1, x), c0);
}

/// A single hash function drawn from a k-wise independent family mapping
/// uint64 keys to uniform field elements in [0, 2^61 - 1).
class KWiseHash {
 public:
  /// Draws a function from the k-wise family, k >= 1, seeded deterministically.
  KWiseHash(int k, uint64_t seed);

  /// Uniform field element in [0, p).
  uint64_t Eval(uint64_t key) const;

  /// Batch Eval over keys already reduced into [0, p): out[t] is exactly
  /// Eval would return for any key reducing to xs[t]. Runs on the
  /// dispatched kernel backend (kernels::Active().kwise_horner_batch),
  /// bit-identical on every backend.
  void EvalBatch(const uint64_t* reduced_keys, size_t count,
                 uint64_t* out) const;

  /// Uniform integer in [0, range). Uses the multiply-shift reduction
  /// (Eval * range) / p, whose bias is < range / p < 2^-40 for any range
  /// used in this library.
  uint64_t Range(uint64_t key, uint64_t range) const;

  /// Uniform value in [0, 1) at 2^-61 granularity.
  double Uniform01(uint64_t key) const;

  /// Uniform value in (0, 1]: never returns zero, suitable for 1/t scalings.
  double UniformPositive(uint64_t key) const;

  /// Unbiased sign in {-1, +1}.
  int Sign(uint64_t key) const;

  int k() const { return static_cast<int>(coeffs_.size()); }

  /// The polynomial coefficients (constant term first), for batch kernels
  /// that inline the evaluation via PolyEval.
  const std::vector<uint64_t>& coefficients() const { return coeffs_; }

  /// Random bits consumed by this function in the paper's accounting:
  /// k field elements of 61 bits each.
  size_t SeedBits() const { return coeffs_.size() * 61; }

 private:
  std::vector<uint64_t> coeffs_;  // degree k-1 polynomial, constant term first
};

}  // namespace lps::hash
