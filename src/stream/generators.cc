#include "src/stream/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/util/check.h"
#include "src/util/random.h"

namespace lps::stream {

namespace {

// Fisher-Yates shuffle driven by our deterministic Rng.
template <typename T>
void Shuffle(std::vector<T>* v, Rng* rng) {
  for (size_t i = v->size(); i > 1; --i) {
    std::swap((*v)[i - 1], (*v)[rng->Below(i)]);
  }
}

// Chooses k distinct coordinates of [n] uniformly (partial Fisher-Yates).
std::vector<uint64_t> SampleDistinct(uint64_t n, uint64_t k, Rng* rng) {
  LPS_CHECK(k <= n);
  std::vector<uint64_t> pool(n);
  std::iota(pool.begin(), pool.end(), 0);
  for (uint64_t i = 0; i < k; ++i) {
    std::swap(pool[i], pool[i + rng->Below(n - i)]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace

UpdateStream UniformTurnstile(uint64_t n, uint64_t num_updates,
                              int64_t max_abs, uint64_t seed) {
  LPS_CHECK(max_abs >= 1);
  Rng rng(seed);
  UpdateStream stream;
  stream.reserve(num_updates);
  for (uint64_t t = 0; t < num_updates; ++t) {
    int64_t delta =
        1 + static_cast<int64_t>(rng.Below(static_cast<uint64_t>(max_abs)));
    if (rng.Next() & 1) delta = -delta;
    stream.push_back({rng.Below(n), delta});
  }
  return stream;
}

UpdateStream HotSetTurnstile(uint64_t n, uint64_t num_updates,
                             uint64_t hot_keys, uint64_t epoch,
                             int64_t max_abs, uint64_t seed) {
  LPS_CHECK(max_abs >= 1);
  LPS_CHECK(hot_keys >= 1 && hot_keys <= n);
  LPS_CHECK(epoch >= 1);
  Rng rng(seed);
  std::vector<uint64_t> working_set(hot_keys);
  UpdateStream stream;
  stream.reserve(num_updates);
  for (uint64_t t = 0; t < num_updates; ++t) {
    if (t % epoch == 0) {
      for (auto& key : working_set) key = rng.Below(n);
    }
    int64_t delta =
        1 + static_cast<int64_t>(rng.Below(static_cast<uint64_t>(max_abs)));
    if (rng.Next() & 1) delta = -delta;
    stream.push_back({working_set[rng.Below(hot_keys)], delta});
  }
  return stream;
}

UpdateStream ZipfianVector(uint64_t n, double alpha, int64_t scale,
                           bool signed_values, uint64_t seed) {
  LPS_CHECK(scale >= 1);
  Rng rng(seed);
  std::vector<uint64_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  Shuffle(&perm, &rng);
  UpdateStream stream;
  stream.reserve(n);
  for (uint64_t rank = 0; rank < n; ++rank) {
    const double weight =
        static_cast<double>(scale) / std::pow(static_cast<double>(rank + 1), alpha);
    int64_t value = static_cast<int64_t>(std::llround(weight));
    if (value == 0) continue;
    if (signed_values && (rng.Next() & 1)) value = -value;
    stream.push_back({perm[rank], value});
  }
  Shuffle(&stream, &rng);
  return stream;
}

UpdateStream SignVector(uint64_t n, uint64_t k, uint64_t seed) {
  Rng rng(seed);
  UpdateStream stream;
  stream.reserve(k);
  for (uint64_t i : SampleDistinct(n, k, &rng)) {
    stream.push_back({i, (rng.Next() & 1) ? int64_t{1} : int64_t{-1}});
  }
  return stream;
}

UpdateStream SparseVector(uint64_t n, uint64_t k, int64_t max_abs,
                          uint64_t seed) {
  LPS_CHECK(max_abs >= 1);
  Rng rng(seed);
  UpdateStream stream;
  for (uint64_t i : SampleDistinct(n, k, &rng)) {
    int64_t value =
        1 + static_cast<int64_t>(rng.Below(static_cast<uint64_t>(max_abs)));
    if (rng.Next() & 1) value = -value;
    // Split roughly half the coordinates into two partial updates so the
    // stream exercises accumulation, not just single writes.
    if ((rng.Next() & 1) && std::abs(value) > 1) {
      const int64_t part = value / 2;
      stream.push_back({i, part});
      stream.push_back({i, value - part});
    } else {
      stream.push_back({i, value});
    }
  }
  Shuffle(&stream, &rng);
  return stream;
}

UpdateStream InsertDeleteChurn(uint64_t n, uint64_t churn, uint64_t survivors,
                               uint64_t seed) {
  LPS_CHECK(churn + survivors <= n);
  Rng rng(seed);
  std::vector<uint64_t> coords = SampleDistinct(n, churn + survivors, &rng);
  UpdateStream stream;
  stream.reserve(2 * churn + survivors);
  for (uint64_t j = 0; j < churn; ++j) {
    const int64_t v =
        1 + static_cast<int64_t>(rng.Below(100));
    stream.push_back({coords[j], v});
  }
  for (uint64_t j = 0; j < survivors; ++j) {
    stream.push_back({coords[churn + j], 1});
  }
  // Deletions interleaved at the end, in random order.
  std::vector<size_t> order(churn);
  std::iota(order.begin(), order.end(), 0);
  Shuffle(&order, &rng);
  for (size_t j : order) {
    stream.push_back({coords[j], -stream[j].delta});
  }
  return stream;
}

UpdateStream PlantedHeavyHitters(uint64_t n, uint64_t num_heavy,
                                 int64_t heavy_value, uint64_t noise_support,
                                 bool signed_values, uint64_t seed) {
  LPS_CHECK(num_heavy + noise_support <= n);
  Rng rng(seed);
  std::vector<uint64_t> coords =
      SampleDistinct(n, num_heavy + noise_support, &rng);
  UpdateStream stream;
  stream.reserve(num_heavy + noise_support);
  for (uint64_t j = 0; j < num_heavy; ++j) {
    int64_t v = heavy_value;
    if (signed_values && (rng.Next() & 1)) v = -v;
    stream.push_back({coords[j], v});
  }
  for (uint64_t j = 0; j < noise_support; ++j) {
    int64_t v = 1;
    if (signed_values && (rng.Next() & 1)) v = -v;
    stream.push_back({coords[num_heavy + j], v});
  }
  Shuffle(&stream, &rng);
  return stream;
}

LetterStream DuplicateStream(uint64_t n, uint64_t extras, uint64_t seed) {
  Rng rng(seed);
  LetterStream letters(n);
  std::iota(letters.begin(), letters.end(), 0);
  Shuffle(&letters, &rng);
  for (uint64_t e = 0; e < extras; ++e) {
    const uint64_t letter = rng.Below(n);
    const uint64_t pos = rng.Below(letters.size() + 1);
    letters.insert(letters.begin() + static_cast<int64_t>(pos), letter);
  }
  return letters;
}

LetterStream ShortStreamWithDuplicates(uint64_t n, uint64_t s,
                                       uint64_t num_duplicates,
                                       uint64_t seed) {
  LPS_CHECK(s <= n);
  const uint64_t length = n - s;
  LPS_CHECK(2 * num_duplicates <= length);
  Rng rng(seed);
  // Choose num_duplicates letters appearing twice and length - 2*dups
  // letters appearing once, all distinct.
  const uint64_t distinct = length - num_duplicates;
  std::vector<uint64_t> letters_set = SampleDistinct(n, distinct, &rng);
  LetterStream letters;
  letters.reserve(length);
  for (uint64_t j = 0; j < distinct; ++j) letters.push_back(letters_set[j]);
  for (uint64_t j = 0; j < num_duplicates; ++j) {
    letters.push_back(letters_set[j]);
  }
  Shuffle(&letters, &rng);
  return letters;
}

UpdateStream DuplicatesReduction(uint64_t n, const LetterStream& letters) {
  UpdateStream stream;
  stream.reserve(n + letters.size());
  for (uint64_t i = 0; i < n; ++i) stream.push_back({i, -1});
  for (uint64_t letter : letters) {
    LPS_CHECK(letter < n);
    stream.push_back({letter, 1});
  }
  return stream;
}

}  // namespace lps::stream
