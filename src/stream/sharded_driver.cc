#include "src/stream/sharded_driver.h"

#include "src/util/check.h"
#include "src/util/random.h"

namespace lps::stream {

ShardedDriver::ShardedDriver(int shards, Partition partition,
                             size_t batch_size)
    : partition_(partition), batch_size_(batch_size),
      buffers_(static_cast<size_t>(shards)) {
  LPS_CHECK(shards >= 1);
  LPS_CHECK(batch_size >= 1);
  for (auto& buffer : buffers_) buffer.reserve(batch_size);
}

ShardedDriver& ShardedDriver::Add(std::string name,
                                  std::vector<LinearSketch*> replicas) {
  LPS_CHECK(replicas.size() == buffers_.size());
  for (const LinearSketch* replica : replicas) LPS_CHECK(replica != nullptr);
  sinks_.push_back(Sink{std::move(name), std::move(replicas)});
  return *this;
}

int ShardedDriver::ShardOf(const Update& u) {
  const uint64_t k = buffers_.size();
  if (partition_ == Partition::kByIndex) {
    return static_cast<int>(Mix64(u.index) % k);
  }
  return static_cast<int>(round_robin_next_++ % k);
}

void ShardedDriver::FlushShard(int s) {
  auto& buffer = buffers_[static_cast<size_t>(s)];
  if (buffer.empty()) return;
  for (auto& sink : sinks_) {
    sink.replicas[static_cast<size_t>(s)]->UpdateBatch(buffer.data(),
                                                       buffer.size());
  }
  buffer.clear();
}

size_t ShardedDriver::Drive(const Update* updates, size_t count) {
  for (size_t t = 0; t < count; ++t) Push(updates[t]);
  Flush();
  return count;
}

size_t ShardedDriver::Drive(const UpdateStream& stream) {
  return Drive(stream.data(), stream.size());
}

void ShardedDriver::Push(Update u) {
  const int s = ShardOf(u);
  auto& buffer = buffers_[static_cast<size_t>(s)];
  buffer.push_back(u);
  ++updates_driven_;
  if (buffer.size() >= batch_size_) FlushShard(s);
}

void ShardedDriver::Flush() {
  for (int s = 0; s < shards(); ++s) FlushShard(s);
}

void ShardedDriver::MergeShards() {
  Flush();
  for (auto& sink : sinks_) {
    LinearSketch* target = sink.replicas[0];
    for (size_t s = 1; s < sink.replicas.size(); ++s) {
      target->Merge(*sink.replicas[s]);
      sink.replicas[s]->Reset();
    }
  }
}

}  // namespace lps::stream
