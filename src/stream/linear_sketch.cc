#include "src/stream/linear_sketch.h"

// Construction is delegated to the MakeSketch registry (the one place
// that names every concrete LinearSketch), so the wire-format dispatch,
// the server's CREATE path, and the CLI all build through one door.
#include "src/api/sketch_spec.h"
#include "src/util/check.h"

namespace lps {

namespace {

// "LS" in ASCII; 16 bits at the front of every serialized sketch.
constexpr uint64_t kMagic = 0x4C53;

}  // namespace

const char* SketchKindName(SketchKind kind) {
  switch (kind) {
    case SketchKind::kCountSketch: return "count_sketch";
    case SketchKind::kCountMin: return "count_min";
    case SketchKind::kAmsF2: return "ams_f2";
    case SketchKind::kStableSketch: return "stable_sketch";
    case SketchKind::kDyadicCountMin: return "dyadic_count_min";
    case SketchKind::kDyadicCountSketch: return "dyadic_count_sketch";
    case SketchKind::kL0Estimator: return "l0_estimator";
    case SketchKind::kLpNormEstimator: return "lp_norm_estimator";
    case SketchKind::kOneSparse: return "one_sparse";
    case SketchKind::kSparseRecovery: return "sparse_recovery";
    case SketchKind::kLpSampler: return "lp_sampler";
    case SketchKind::kL0Sampler: return "l0_sampler";
    case SketchKind::kFisL0Sampler: return "fis_l0_sampler";
    case SketchKind::kAkoSampler: return "ako_sampler";
    case SketchKind::kCsHeavyHitters: return "cs_heavy_hitters";
    case SketchKind::kCmHeavyHitters: return "cm_heavy_hitters";
    case SketchKind::kDyadicHeavyHitters: return "dyadic_heavy_hitters";
    case SketchKind::kDuplicateFinder: return "duplicate_finder";
    case SketchKind::kSparseDuplicateFinder: return "sparse_duplicate_finder";
    case SketchKind::kPositiveFinder: return "positive_finder";
    case SketchKind::kMomentEstimator: return "moment_estimator";
  }
  return "unknown";
}

void WriteSketchHeader(BitWriter* writer, SketchKind kind) {
  writer->WriteBits(kMagic, 16);
  writer->WriteBits(static_cast<uint64_t>(kind), 8);
  writer->WriteBits(kSketchFormatVersion, 8);
}

uint32_t ReadSketchHeader(BitReader* reader, SketchKind expected) {
  LPS_CHECK(reader->ReadBits(16) == kMagic);
  LPS_CHECK(reader->ReadBits(8) == static_cast<uint64_t>(expected));
  const uint32_t version = static_cast<uint32_t>(reader->ReadBits(8));
  LPS_CHECK(version >= 1 && version <= kSketchFormatVersion);
  return version;
}

SketchKind PeekSketchKind(BitReader* reader) {
  LPS_CHECK(reader->ReadBits(16) == kMagic);
  return static_cast<SketchKind>(reader->ReadBits(8));
}

std::unique_ptr<LinearSketch> MakeEmptySketch(SketchKind kind) {
  // Throwaway parameters: Deserialize reconfigures the object to the
  // serialized ones, so the empty instance only has to construct. All
  // sizing fields are pinned to 1 so even the dyadic/recovery families
  // allocate next to nothing.
  SketchSpec spec;
  spec.kind = kind;
  spec.n = 1;
  spec.rows = 1;
  spec.buckets = 1;
  spec.s = 1;
  spec.repetitions = 1;
  return MakeSketch(spec);
}

std::unique_ptr<LinearSketch> DeserializeAnySketch(BitReader* reader) {
  const SketchKind kind = PeekSketchKind(reader);
  auto sketch = MakeEmptySketch(kind);
  if (sketch == nullptr) return nullptr;
  reader->Rewind();
  sketch->Deserialize(reader);
  return sketch;
}

}  // namespace lps
